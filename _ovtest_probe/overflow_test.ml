module Freelist = Nvml_pool.Freelist
let () =
  let words : (int64, int64) Hashtbl.t = Hashtbl.create 64 in
  let a = { Freelist.read = (fun off -> Option.value ~default:0L (Hashtbl.find_opt words off));
            write = (fun off v -> Hashtbl.replace words off v) } in
  Freelist.init a ~capacity:4096L;
  let p = Freelist.alloc a 100L in
  (* Plant a fake allocated header whose size overflows b + size *)
  let huge = Int64.logor 0x7FFFFFFFFFFFFF00L 1L in
  a.Freelist.write (Int64.add p 8L) huge;
  let bogus = Int64.add p (Int64.add 8L Freelist.header_size) in
  (match Freelist.free a bogus with
   | () -> print_endline "ACCEPTED: overflow bypassed the size check"
   | exception Freelist.Corrupt_arena m -> print_endline ("rejected: " ^ m));
  (match Freelist.check_invariants a with
   | _ -> print_endline "invariants: ok (corruption undetected)"
   | exception Freelist.Corrupt_arena m -> print_endline ("invariants caught: " ^ m))
