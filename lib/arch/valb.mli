(** The VALB — virtual-address lookaside buffer (Section V-A): a small
    fully-associative range CAM mapping a virtual address to the pool
    whose mapping covers it, accelerating va2ra in the storeP unit.
    Misses are served by the VAW walking the VATB B-tree; the walker
    refills the buffer with the whole pool range. *)

type t

val create : entries:int -> t

val lookup : t -> int64 -> int option
(** The covering pool's ID on a hit. *)

val insert : t -> base:int64 -> size:int64 -> pool:int -> unit
(** VAW refill.  A pool already resident refreshes its way in place
    (dedup — one CAM way per pool); otherwise an invalid way is filled,
    and only a full CAM evicts its LRU entry. *)

val invalidate_pool : t -> int -> unit
(** Shootdown when a pool mapping disappears; resets the freed ways'
    LRU stamps so they are the next refill victims. *)

val flush : t -> unit

(** {1 Fuzzer hooks} *)

type quirk =
  | Stale_invalidate_stamp
      (** Pre-fix: [invalidate_pool]/[flush] left LRU stamps behind, so
          a later refill evicted a valid entry over an unused way. *)
  | Duplicate_insert
      (** Pre-fix: no dedup on [insert] — repeated VAW refills let one
          pool occupy several CAM ways. *)

val enable_quirk : t -> quirk -> unit
(** Only for the model-based fuzzer's [--break] self-test. *)

val dump : t -> (int64 * int64 * int * int) list
(** Every valid entry as (base, size, pool, stamp), way order — the
    observation the fuzzer checks capacity/LRU invariants against. *)

val stats : t -> Nvml_telemetry.Stats.Hit_miss.t
(** The shared hit/miss record; the remaining accessors delegate to it. *)

val hits : t -> int
val misses : t -> int
val accesses : t -> int
val hit_rate : t -> float
val reset_stats : t -> unit
