(** The VALB — virtual-address lookaside buffer (Section V-A): a small
    fully-associative range CAM mapping a virtual address to the pool
    whose mapping covers it, accelerating va2ra in the storeP unit.
    Misses are served by the VAW walking the VATB B-tree; the walker
    refills the buffer with the whole pool range. *)

type t

val create : entries:int -> t

val lookup : t -> int64 -> int option
(** The covering pool's ID on a hit. *)

val insert : t -> base:int64 -> size:int64 -> pool:int -> unit
val invalidate_pool : t -> int -> unit
val flush : t -> unit

val stats : t -> Nvml_telemetry.Stats.Hit_miss.t
(** The shared hit/miss record; the remaining accessors delegate to it. *)

val hits : t -> int
val misses : t -> int
val accesses : t -> int
val hit_rate : t -> float
val reset_stats : t -> unit
