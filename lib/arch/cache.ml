(* A set-associative cache (or cache-like structure) with true-LRU
   replacement, keyed by integer block addresses.  Used for all three
   data-cache levels and, with a different index granularity, the TLBs.

   Only presence is tracked, not contents — the functional memory is
   elsewhere; this structure answers "would this access hit?" and keeps
   hit/miss statistics. *)

module Hit_miss = Nvml_telemetry.Stats.Hit_miss

type t = {
  sets : int;
  ways : int;
  index_shift : int; (* address bits consumed before indexing *)
  pow2 : bool; (* power-of-two set counts index by masking *)
  tags : int array; (* sets * ways, -1 = invalid *)
  stamps : int array; (* LRU timestamps *)
  mutable clock : int;
  stats : Hit_miss.t;
}

let create ~sets ~ways ~index_shift =
  if sets <= 0 then invalid_arg "Cache.create: sets must be positive";
  {
    sets;
    ways;
    index_shift;
    pow2 = sets land (sets - 1) = 0;
    tags = Array.make (sets * ways) (-1);
    stamps = Array.make (sets * ways) 0;
    clock = 0;
    stats = Hit_miss.create ();
  }

let set_of t block = if t.pow2 then block land (t.sets - 1) else block mod t.sets

(* Build an L1-like cache from a size in KiB. *)
let of_size ~kib ~ways ~line_shift =
  let lines = kib * 1024 / (1 lsl line_shift) in
  create ~sets:(lines / ways) ~ways ~index_shift:line_shift

let block_of t addr = addr lsr t.index_shift

(* Access the block containing [addr]; insert on miss; true on hit. *)
let access t addr =
  let block = block_of t addr in
  let set = set_of t block in
  let base = set * t.ways in
  t.clock <- t.clock + 1;
  let hit = ref (-1) in
  let i = ref 0 in
  while !hit < 0 && !i < t.ways do
    if Array.unsafe_get t.tags (base + !i) = block then hit := !i;
    incr i
  done;
  if !hit >= 0 then begin
    t.stamps.(base + !hit) <- t.clock;
    Hit_miss.hit t.stats;
    true
  end
  else begin
    Hit_miss.miss t.stats;
    (* Evict the LRU way. *)
    let victim = ref 0 in
    for i = 1 to t.ways - 1 do
      if t.stamps.(base + i) < t.stamps.(base + !victim) then victim := i
    done;
    t.tags.(base + !victim) <- block;
    t.stamps.(base + !victim) <- t.clock;
    false
  end

(* Probe without inserting (used by tests). *)
let probe t addr =
  let block = block_of t addr in
  let set = set_of t block in
  let base = set * t.ways in
  let rec find i =
    if i >= t.ways then false
    else t.tags.(base + i) = block || find (i + 1)
  in
  find 0

(* Invalidate the block containing [addr] if present (e.g. POLB entry
   shootdown when a pool is detached). *)
let invalidate t addr =
  let block = block_of t addr in
  let set = set_of t block in
  let base = set * t.ways in
  for i = 0 to t.ways - 1 do
    if t.tags.(base + i) = block then t.tags.(base + i) <- -1
  done

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0

let stats t = t.stats
let hits t = Hit_miss.hits t.stats
let misses t = Hit_miss.misses t.stats
let accesses t = Hit_miss.accesses t.stats
let hit_rate t = Hit_miss.hit_rate t.stats
let reset_stats t = Hit_miss.reset t.stats
