(* A set-associative cache (or cache-like structure) with true-LRU
   replacement, keyed by integer block addresses.  Used for all three
   data-cache levels and, with a different index granularity, the TLBs.

   Only presence is tracked, not contents — the functional memory is
   elsewhere; this structure answers "would this access hit?" and keeps
   hit/miss statistics. *)

module Hit_miss = Nvml_telemetry.Stats.Hit_miss

(* Deliberately re-enable a fixed bug, so the model-based fuzzer's
   [--break] self-test can prove it would have caught it.  Never set
   outside that self-test. *)
type quirk =
  | Stale_invalidate_stamp
      (* pre-fix behaviour: [invalidate] clears the tag but leaves the
         way's LRU stamp, and eviction picks the min-stamp way without
         preferring invalid ones — so a later miss can evict a *valid*
         line while the invalidated slot sits unused *)

type t = {
  sets : int;
  ways : int;
  index_shift : int; (* address bits consumed before indexing *)
  pow2 : bool; (* power-of-two set counts index by masking *)
  tags : int array; (* sets * ways, -1 = invalid *)
  stamps : int array; (* LRU timestamps *)
  mutable clock : int;
  mutable stale_stamp : bool; (* Stale_invalidate_stamp quirk enabled *)
  stats : Hit_miss.t;
}

let create ~sets ~ways ~index_shift =
  if sets <= 0 then invalid_arg "Cache.create: sets must be positive";
  {
    sets;
    ways;
    index_shift;
    pow2 = sets land (sets - 1) = 0;
    tags = Array.make (sets * ways) (-1);
    stamps = Array.make (sets * ways) 0;
    clock = 0;
    stale_stamp = false;
    stats = Hit_miss.create ();
  }

let enable_quirk t Stale_invalidate_stamp = t.stale_stamp <- true

let set_of t block = if t.pow2 then block land (t.sets - 1) else block mod t.sets

(* Build an L1-like cache from a size in KiB. *)
let of_size ~kib ~ways ~line_shift =
  let lines = kib * 1024 / (1 lsl line_shift) in
  create ~sets:(lines / ways) ~ways ~index_shift:line_shift

let block_of t addr = addr lsr t.index_shift

(* Access the block containing [addr]; insert on miss; true on hit. *)
let access t addr =
  let block = block_of t addr in
  let set = set_of t block in
  let base = set * t.ways in
  t.clock <- t.clock + 1;
  let hit = ref (-1) in
  let i = ref 0 in
  while !hit < 0 && !i < t.ways do
    if Array.unsafe_get t.tags (base + !i) = block then hit := !i;
    incr i
  done;
  if !hit >= 0 then begin
    t.stamps.(base + !hit) <- t.clock;
    Hit_miss.hit t.stats;
    true
  end
  else begin
    Hit_miss.miss t.stats;
    (* Fill an invalid way when one exists; only a full set evicts its
       LRU line.  (The quirk restores the pre-fix pure min-stamp scan,
       which — combined with the stale stamp [invalidate] used to leave
       behind — evicted valid lines while invalidated slots sat idle.) *)
    let victim = ref (-1) in
    if not t.stale_stamp then begin
      let i = ref 0 in
      while !victim < 0 && !i < t.ways do
        if Array.unsafe_get t.tags (base + !i) = -1 then victim := !i;
        incr i
      done
    end;
    if !victim < 0 then begin
      victim := 0;
      for i = 1 to t.ways - 1 do
        if t.stamps.(base + i) < t.stamps.(base + !victim) then victim := i
      done
    end;
    t.tags.(base + !victim) <- block;
    t.stamps.(base + !victim) <- t.clock;
    false
  end

(* Probe without inserting (used by tests). *)
let probe t addr =
  let block = block_of t addr in
  let set = set_of t block in
  let base = set * t.ways in
  let rec find i =
    if i >= t.ways then false
    else t.tags.(base + i) = block || find (i + 1)
  in
  find 0

(* Invalidate the block containing [addr] if present (e.g. POLB entry
   shootdown when a pool is detached).  The LRU stamp is reset with the
   tag: leaving it behind made the invalidated way look recently used,
   so a later miss would evict a valid line instead of reusing it. *)
let invalidate t addr =
  let block = block_of t addr in
  let set = set_of t block in
  let base = set * t.ways in
  for i = 0 to t.ways - 1 do
    if t.tags.(base + i) = block then begin
      t.tags.(base + i) <- -1;
      if not t.stale_stamp then t.stamps.(base + i) <- 0
    end
  done

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0

(* Debug view for the model-based fuzzer: the (tag, stamp) pairs of one
   set, way order.  Invalid ways report tag -1. *)
let ways_of_set t set =
  if set < 0 || set >= t.sets then invalid_arg "Cache.ways_of_set";
  let base = set * t.ways in
  List.init t.ways (fun i -> (t.tags.(base + i), t.stamps.(base + i)))

let sets t = t.sets
let stats t = t.stats
let hits t = Hit_miss.hits t.stats
let misses t = Hit_miss.misses t.stats
let accesses t = Hit_miss.accesses t.stats
let hit_rate t = Hit_miss.hit_rate t.stats
let reset_stats t = Hit_miss.reset t.stats
