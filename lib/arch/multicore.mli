(** The multi-core machine: N in-order cores interleaved over shared
    L2/L3/POLB/VALB/VATB state.

    Each core's instruction stream runs as an effect-based fiber that
    yields once per narrated µ-event; a seeded xorshift scheduler picks
    the next runnable core at every yield, so the interleaving is a
    pure function of (seed, per-core programs) — `--jobs N` equals
    `--jobs 1` byte for byte.  Stores broadcast to the other cores'
    private L1s (coherence shoot-downs); shared L2/L3/POLB/VALB need no
    action.  Everything runs on one OCaml domain: this is simulated
    concurrency with a reproducible schedule, not parallelism. *)

type t

type _ Effect.t += Yield : unit Effect.t
(** Performed by a core's [on_step] hook during {!run}; user code never
    performs it directly. *)

exception Aborted
(** Raised into still-paused fibers when another fiber's exception
    aborts the schedule, so their stacks unwind cleanly. *)

val create : ?seed:int -> Cpu.t array -> t
(** Build a machine over the given cores (core 0 the primary, the rest
    its siblings from {!Cpu.create_sibling}).  [seed] (default 1)
    drives the scheduler. *)

val run : t -> (int -> unit) array -> unit
(** [run t fns] runs [fns.(i) i] on core [i], interleaved per µ-event.
    With one core this is a plain call — no hooks, no scheduler — so a
    1-core machine is byte-identical to the single-core one.  An
    exception from any fiber aborts the schedule: paused siblings are
    unwound with {!Aborted} and the original exception is re-raised. *)

val atomically : (unit -> 'a) -> 'a
(** Model a hardware atomic read-modify-write: while [f] runs, the
    current machine (if any) suppresses yields, so no other core's
    µ-events interleave with it.  Outside {!run} this is just [f ()].
    The ambient machine reference is domain-local. *)

val checkpoint : unit -> unit
(** Explicit interleave point: yield once to the scheduler if a machine
    is running (and not inside {!atomically}), no-op otherwise.  For
    drivers that wrap whole operations in {!atomically} — e.g. index
    operations whose shared-allocator updates must not be split — and
    still want the schedule to interleave at operation boundaries. *)

type stats = {
  steps : int;  (** scheduling decisions taken *)
  contended_steps : int;  (** decisions with >= 2 runnable cores *)
  switches : int;  (** decisions that moved to a different core *)
  invalidations : int;  (** coherence line invalidations *)
}

val stats : t -> stats
val cores : t -> Cpu.t array
val core : t -> int -> Cpu.t
val num_cores : t -> int
