(** A set-associative cache (or cache-like structure) with true-LRU
    replacement, keyed by integer block addresses.  Tracks presence
    only — the functional memory lives elsewhere; this answers "would
    this access hit?" and keeps hit/miss statistics.  Used for the data
    caches, the TLBs and the POLB. *)

type t

val create : sets:int -> ways:int -> index_shift:int -> t
(** Non-power-of-two set counts index by modulo. *)

val of_size : kib:int -> ways:int -> line_shift:int -> t

val access : t -> int -> bool
(** Access the block containing the address; inserts on miss; [true] on
    hit. *)

val probe : t -> int -> bool
(** Presence test without insertion. *)

val invalidate : t -> int -> unit
(** Drop the block if present (e.g. POLB shootdown on pool detach). *)

val flush : t -> unit

val stats : t -> Nvml_telemetry.Stats.Hit_miss.t
(** The shared hit/miss record; the remaining accessors delegate to it. *)

val hits : t -> int
val misses : t -> int
val accesses : t -> int
val hit_rate : t -> float
val reset_stats : t -> unit
