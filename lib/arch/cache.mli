(** A set-associative cache (or cache-like structure) with true-LRU
    replacement, keyed by integer block addresses.  Tracks presence
    only — the functional memory lives elsewhere; this answers "would
    this access hit?" and keeps hit/miss statistics.  Used for the data
    caches, the TLBs and the POLB. *)

type t

val create : sets:int -> ways:int -> index_shift:int -> t
(** Non-power-of-two set counts index by modulo. *)

val of_size : kib:int -> ways:int -> line_shift:int -> t

val access : t -> int -> bool
(** Access the block containing the address; inserts on miss; [true] on
    hit. *)

val probe : t -> int -> bool
(** Presence test without insertion. *)

val invalidate : t -> int -> unit
(** Drop the block if present (e.g. POLB shootdown on pool detach), LRU
    stamp included, so the freed way is the next eviction victim. *)

val flush : t -> unit

(** {1 Fuzzer hooks} *)

type quirk =
  | Stale_invalidate_stamp
      (** Pre-fix behaviour: [invalidate] leaves the way's LRU stamp and
          eviction never prefers invalid ways, so a later miss evicts a
          valid line while the invalidated slot sits unused.  Only for
          the model-based fuzzer's [--break] self-test. *)

val enable_quirk : t -> quirk -> unit

val ways_of_set : t -> int -> (int * int) list
(** The (tag, stamp) pairs of one set in way order (tag -1 = invalid) —
    the observation the fuzzer checks LRU order against its model. *)

val sets : t -> int

val stats : t -> Nvml_telemetry.Stats.Hit_miss.t
(** The shared hit/miss record; the remaining accessors delegate to it. *)

val hits : t -> int
val misses : t -> int
val accesses : t -> int
val hit_rate : t -> float
val reset_stats : t -> unit
