(* The timing model: an interval-style in-order core in the spirit of
   the paper's Snipersim setup.  The runtime narrates execution to this
   module as a stream of micro-events (instructions, branches, memory
   accesses, translations, storeP issues); the model accumulates cycles
   and statistics.

   Cycle accounting: every instruction costs one issue cycle, which
   covers an L1-cache and L1-TLB hit; deeper levels, branch
   mispredictions, POLB/VALB latencies on the address-generation path
   and storeP structural stalls add stall cycles on top.

   Two execution speeds behind the same narration API:

   - [timing = true] (default): the cycle-accurate mode above.  Every
     entry point is bit-for-bit unchanged from the pre-split code, so
     pinned profile outputs stay byte-identical.
   - [timing = false]: the fast functional mode.  Each µ-event retires
     in its 1-cycle issue slot and no microarchitectural structure is
     touched — no branch predictor, TLBs, caches, POLB/VALB/VATB or
     storeP FSM — so [cycles = instrs] and every stall source reads 0.
     Event counts (instructions, loads, stores, storePs, branches,
     DRAM/NVM accesses) are narration-derived and stay identical to the
     cycle-accurate mode; only timing-state-dependent statistics
     (mispredictions, hit rates, POW/VAW walks, stalls) collapse.
     Functional behaviour lives outside this module entirely, so the
     verification engines keep every pointer-format check, translation
     and crash-point/media hook while skipping the timing simulation. *)

module Mem = Nvml_simmem.Mem
module Layout = Nvml_simmem.Layout
module Physmem = Nvml_simmem.Physmem
module Telemetry = Nvml_telemetry.Telemetry

(* Depth of each VAW walk into the VATB B-tree (nodes visited). *)
let vatb_depth_histo = Telemetry.histo "vatb.walk_depth"

(* Capacity of the reusable storeP operand buffer.  A storeP narrates
   at most one Rd and one Rs conversion; the slack tolerates synthetic
   multi-operand tests. *)
let xop_buffer_capacity = 8

type t = {
  cfg : Config.t;
  mem : Mem.t;
  timing : bool; (* false = fast functional mode: skip all timing state *)
  bp : Branch_predictor.t;
  l1_tlb : Cache.t;
  l2_tlb : Cache.t;
  l1 : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  polb : Cache.t; (* keyed by pool id *)
  valb : Valb.t;
  vatb : Range_btree.t; (* kernel VATB, walked by the VAW on VALB miss *)
  storep_unit : Storep_unit.t;
  (* Buffered persistency: storeP retirements skip the persist-FSM
     occupancy stall (durability moves to the epoch drain), paying only
     their translation latency.  False = eager, the pinned default. *)
  mutable relaxed_persistency : bool;
  (* Reusable storeP operand buffer: flat preallocated arrays instead of
     a per-storeP list.  [xop_pool.(i) >= 0] is a POLB op on that pool;
     [xop_pool.(i) < 0] is a VALB op on [xop_va.(i)]. *)
  xop_pool : int array;
  xop_va : int64 array;
  mutable xop_len : int;
  mutable cycles : int;
  mutable instrs : int;
  mutable loads : int;
  mutable stores : int;
  mutable storeps : int;
  mutable branches : int;
  mutable dram_accesses : int;
  mutable nvm_accesses : int;
  mutable pow_walks : int;
  mutable vaw_walks : int;
  mutable vaw_nodes : int;
  (* Cycle attribution: every cycle beyond the one-per-instruction base
     is charged to exactly one stall source, so
     [cycles = instrs + st_branch + st_tlb + st_cache + st_mem +
      st_xlate + st_storep] holds at all times.  Plain integer adds on
     paths that already pay a cache simulation — always on. *)
  mutable st_branch : int;
  mutable st_tlb : int;
  mutable st_cache : int; (* L2/L3 hit latencies *)
  mutable st_mem : int; (* DRAM/NVM access latencies *)
  mutable st_xlate : int; (* exposed POLB latency on the AGU path *)
  mutable st_storep : int; (* storeP structural stalls *)
  (* Multi-core hooks, both no-ops on a single-core machine.  [on_step]
     fires once per narrated µ-event before the event's accounting — the
     scheduler's interleave point; [on_store] fires after a completed
     store with the packed physical address — the coherence broadcast
     point.  A no-op closure per µ-event is the entire single-core cost,
     so pinned single-core outputs stay byte-identical. *)
  mutable on_step : unit -> unit;
  mutable on_store : int -> unit;
}

let no_step () = ()
let no_store (_ : int) = ()

let create ?(timing = true) cfg mem =
  (* Fast functional mode never exercises the timing components, but the
     telemetry accessors still publish them — so build degenerate
     one-entry stand-ins instead of the config-sized arrays.  The
     verification engines construct a fresh machine per crash point /
     fuzz case; skipping the L2/L3 tag arrays (tens of KWords each)
     keeps that construction off the major heap. *)
  {
    cfg;
    mem;
    timing;
    bp =
      (if timing then Branch_predictor.of_config cfg
       else Branch_predictor.create ~table_bits:0 ~history_bits:0);
    l1_tlb =
      (if timing then
         Cache.create
           ~sets:(cfg.l1_tlb_entries / cfg.l1_tlb_ways)
           ~ways:cfg.l1_tlb_ways ~index_shift:Layout.page_shift
       else Cache.create ~sets:1 ~ways:1 ~index_shift:Layout.page_shift);
    l2_tlb =
      (if timing then
         Cache.create
           ~sets:(cfg.l2_tlb_entries / cfg.l2_tlb_ways)
           ~ways:cfg.l2_tlb_ways ~index_shift:Layout.page_shift
       else Cache.create ~sets:1 ~ways:1 ~index_shift:Layout.page_shift);
    l1 =
      (if timing then
         Cache.create ~sets:cfg.l1_sets ~ways:cfg.l1_ways
           ~index_shift:cfg.line_shift
       else Cache.create ~sets:1 ~ways:1 ~index_shift:cfg.line_shift);
    l2 =
      (if timing then
         Cache.of_size ~kib:cfg.l2_kib ~ways:cfg.l2_ways
           ~line_shift:cfg.line_shift
       else Cache.create ~sets:1 ~ways:1 ~index_shift:cfg.line_shift);
    l3 =
      (if timing then
         Cache.of_size ~kib:cfg.l3_kib ~ways:cfg.l3_ways
           ~line_shift:cfg.line_shift
       else Cache.create ~sets:1 ~ways:1 ~index_shift:cfg.line_shift);
    polb =
      (if timing then Cache.create ~sets:1 ~ways:cfg.polb_entries ~index_shift:0
       else Cache.create ~sets:1 ~ways:1 ~index_shift:0);
    valb = Valb.create ~entries:(if timing then cfg.valb_entries else 1);
    vatb = Range_btree.create ();
    storep_unit =
      Storep_unit.create
        ~entries:(if timing then cfg.storep_fsm_entries else 1);
    relaxed_persistency = false;
    xop_pool = Array.make xop_buffer_capacity (-1);
    xop_va = Array.make xop_buffer_capacity 0L;
    xop_len = 0;
    cycles = 0;
    instrs = 0;
    loads = 0;
    stores = 0;
    storeps = 0;
    branches = 0;
    dram_accesses = 0;
    nvm_accesses = 0;
    pow_walks = 0;
    vaw_walks = 0;
    vaw_nodes = 0;
    st_branch = 0;
    st_tlb = 0;
    st_cache = 0;
    st_mem = 0;
    st_xlate = 0;
    st_storep = 0;
    on_step = no_step;
    on_store = no_store;
  }

(* A sibling core of [t]: private front end (branch predictor, TLBs,
   L1, storeP unit, operand buffer) and private counters, but the
   *shared* outer hierarchy — L2, L3, POLB, VALB and the kernel VATB
   are the same physical structures, so siblings contend for them. *)
let create_sibling (t : t) =
  {
    (create ~timing:t.timing t.cfg t.mem) with
    l2 = t.l2;
    l3 = t.l3;
    polb = t.polb;
    valb = t.valb;
    vatb = t.vatb;
    relaxed_persistency = t.relaxed_persistency;
  }

let set_relaxed_persistency t v = t.relaxed_persistency <- v

let set_hooks t ~on_step ~on_store =
  t.on_step <- on_step;
  t.on_store <- on_store

let clear_hooks t =
  t.on_step <- no_step;
  t.on_store <- no_store

(* Coherence: another core stored to [pa]; drop this core's private
   copy of the line.  [true] when the line was actually present.  Only
   the private L1 is touched — L2/L3 are shared between siblings — and
   [probe] (not [access]) keeps the hit/miss statistics clean. *)
let invalidate_line t pa =
  t.timing
  && Cache.probe t.l1 pa
  &&
  (Cache.invalidate t.l1 pa;
   true)

let config t = t.cfg
let timing t = t.timing

(* --- plain instructions and branches --------------------------------- *)

let instr t n =
  t.on_step ();
  t.instrs <- t.instrs + n;
  t.cycles <- t.cycles + n

(* Stall charged by the buffered-persistency drain engine (flush and
   fence µ-events).  Deliberately no [on_step]: a drain is atomic with
   respect to the multi-core scheduler — no other core's stores can
   interleave with a line flush.  Fast mode counts the events at the
   [Persist] layer instead and charges nothing here, preserving the
   cycles = instrs invariant. *)
let persist_stall t n =
  if t.timing then begin
    t.st_mem <- t.st_mem + n;
    t.cycles <- t.cycles + n
  end

let branch t ~pc ~taken =
  t.on_step ();
  t.instrs <- t.instrs + 1;
  t.branches <- t.branches + 1;
  if t.timing then begin
    let miss = Branch_predictor.branch t.bp ~pc ~taken in
    let penalty = if miss then t.cfg.branch_miss_penalty else 0 in
    t.st_branch <- t.st_branch + penalty;
    t.cycles <- t.cycles + 1 + penalty
  end
  else t.cycles <- t.cycles + 1

(* --- memory hierarchy -------------------------------------------------- *)

let tlb_stall t va =
  let stall =
    if Cache.access t.l1_tlb (Int64.to_int va) then 0
    else if Cache.access t.l2_tlb (Int64.to_int va) then
      t.cfg.l2_tlb_hit_latency
    else t.cfg.page_walk_latency
  in
  t.st_tlb <- t.st_tlb + stall;
  stall

let cache_stall t pa ~miss_latency =
  if Cache.access t.l1 pa then 0
  else if Cache.access t.l2 pa then begin
    t.st_cache <- t.st_cache + t.cfg.l2_latency;
    t.cfg.l2_latency
  end
  else if Cache.access t.l3 pa then begin
    t.st_cache <- t.st_cache + t.cfg.l3_latency;
    t.cfg.l3_latency
  end
  else begin
    t.st_mem <- t.st_mem + miss_latency;
    miss_latency
  end

(* Timing for one data access whose translation the caller already
   performed: [pa] is the packed physical address from
   [Mem.translate_pa].  Allocation-free.

   [store] matters only under a relaxed persistency model: an NVM store
   that misses the hierarchy retires at the memory controller's write
   buffer (DRAM-class latency) instead of waiting for media — the media
   write is deferred to the epoch drain, which bills it as flush
   µ-events.  Loads, and every access under the eager model, pay the
   unchanged miss latency. *)
let data_access_pa_k t ~va ~pa ~store =
  let region =
    if pa lsr Layout.page_shift >= Layout.nvm_phys_frame_base then Layout.Nvm
    else Layout.Dram
  in
  (match region with
  | Layout.Dram -> t.dram_accesses <- t.dram_accesses + 1
  | Layout.Nvm -> t.nvm_accesses <- t.nvm_accesses + 1);
  if t.timing then begin
    let miss_latency =
      match region with
      | Layout.Dram -> t.cfg.dram_latency
      | Layout.Nvm ->
          if store && t.relaxed_persistency then t.cfg.dram_latency
          else t.cfg.nvm_latency
    in
    let stall = tlb_stall t va + cache_stall t pa ~miss_latency in
    t.cycles <- t.cycles + 1 + stall
  end
  else t.cycles <- t.cycles + 1

let data_access_pa t ~va ~pa = data_access_pa_k t ~va ~pa ~store:false

let data_access t va =
  data_access_pa t ~va ~pa:(Mem.translate_pa_exn t.mem va)

let load t va =
  t.on_step ();
  t.instrs <- t.instrs + 1;
  t.loads <- t.loads + 1;
  data_access t va

let store t va =
  t.on_step ();
  t.instrs <- t.instrs + 1;
  t.stores <- t.stores + 1;
  let pa = Mem.translate_pa_exn t.mem va in
  data_access_pa_k t ~va ~pa ~store:true;
  t.on_store pa

let load_pa t ~va ~pa =
  t.on_step ();
  t.instrs <- t.instrs + 1;
  t.loads <- t.loads + 1;
  data_access_pa t ~va ~pa

let store_pa t ~va ~pa =
  t.on_step ();
  t.instrs <- t.instrs + 1;
  t.stores <- t.stores + 1;
  data_access_pa_k t ~va ~pa ~store:true;
  t.on_store pa

(* --- persistent-object translation hardware ----------------------------- *)

(* POLB lookup (ra2va): returns the latency it contributes.  On a miss
   the POW performs one POT access in kernel memory. *)
let polb_latency t ~pool =
  if Cache.access t.polb pool then t.cfg.polb_latency
  else begin
    t.pow_walks <- t.pow_walks + 1;
    t.cfg.polb_latency + t.cfg.pow_latency
  end

(* A POLB translation on the address-generation path of a load/store
   whose address register holds a relative pointer: the latency is
   exposed. *)
let polb_translate t ~pool =
  if t.timing then begin
    let lat = polb_latency t ~pool in
    t.st_xlate <- t.st_xlate + lat;
    t.cycles <- t.cycles + lat
  end

(* VALB lookup (va2ra): on a miss the VAW walks the VATB B-tree, one
   kernel access per node visited, then refills the VALB. *)
let valb_latency t ~va =
  if not t.timing then 0
  else
  match Valb.lookup t.valb va with
  | Some _ -> t.cfg.valb_latency
  | None ->
      t.vaw_walks <- t.vaw_walks + 1;
      let walk =
        match Range_btree.lookup t.vatb va with
        | Some (e, visited) ->
            Valb.insert t.valb ~base:e.Range_btree.base ~size:e.size
              ~pool:e.pool;
            visited
        | None -> Range_btree.height t.vatb (* walked to a leaf, no range *)
      in
      if Telemetry.enabled () then Telemetry.observe vatb_depth_histo walk;
      t.vaw_nodes <- t.vaw_nodes + walk;
      t.cfg.valb_latency + (walk * t.cfg.vatb_node_latency)

(* storeP: a store of a pointer value.  [xops] lists the address
   conversions the instruction's two operands require: [`Polb pool] for
   an ra2va through the POLB (Rd in relative format, or a relative Rs
   destined for a DRAM cell) and [`Valb va] for a va2ra through the VALB
   (a virtual Rs destined for an NVM cell).  Translations proceed
   concurrently inside the FSM entry; only buffer-full conditions stall
   the core.  [dst_va] is the resolved destination of the store. *)
type xop = [ `Polb of int | `Valb of int64 ]

(* Reusable operand buffer: the narration layer pushes this storeP's
   conversions (at most Rd + Rs), [store_p_buffered] drains them.  The
   push/drain pair replaces the per-storeP [xop list] allocation on the
   hot path; the latency fold visits the buffer in push order, exactly
   as the list fold visited [rd_ops @ rs_ops]. *)

let xop_reset t = t.xop_len <- 0

let xop_push_polb t ~pool =
  t.xop_pool.(t.xop_len) <- pool;
  t.xop_len <- t.xop_len + 1

let xop_push_valb t ~va =
  t.xop_pool.(t.xop_len) <- -1;
  t.xop_va.(t.xop_len) <- va;
  t.xop_len <- t.xop_len + 1

let store_p_buffered t ~dst_va ~dst_pa =
  t.on_step ();
  t.instrs <- t.instrs + 1;
  t.storeps <- t.storeps + 1;
  if t.timing then begin
    let lat = ref 0 in
    for i = 0 to t.xop_len - 1 do
      let pool = Array.unsafe_get t.xop_pool i in
      let l =
        if pool >= 0 then polb_latency t ~pool
        else valb_latency t ~va:(Array.unsafe_get t.xop_va i)
      in
      if l > !lat then lat := l
    done;
    if t.relaxed_persistency then begin
      (* Buffered persistency: the store still resolves its pointer
         formats (exposed translation latency), but retires without
         occupying the persist FSM — durability is the drain's job. *)
      t.st_xlate <- t.st_xlate + !lat;
      t.cycles <- t.cycles + !lat
    end
    else begin
      let stall =
        Storep_unit.issue t.storep_unit ~now:t.cycles ~latency:(1 + !lat)
      in
      t.st_storep <- t.st_storep + stall;
      t.cycles <- t.cycles + stall
    end
  end;
  t.xop_len <- 0;
  t.stores <- t.stores + 1;
  data_access_pa_k t ~va:dst_va ~pa:dst_pa ~store:true;
  t.on_store dst_pa

let store_p_pa t ~dst_va ~dst_pa ~(xops : xop list) =
  t.xop_len <- 0;
  List.iter
    (function
      | `Polb pool -> xop_push_polb t ~pool
      | `Valb va -> xop_push_valb t ~va)
    xops;
  store_p_buffered t ~dst_va ~dst_pa

let store_p t ~dst_va ~(xops : xop list) =
  store_p_pa t ~dst_va ~dst_pa:(Mem.translate_pa_exn t.mem dst_va) ~xops

(* --- kernel-table maintenance ------------------------------------------- *)

(* Both kernel-table hooks only feed timing state (the VAW walk and the
   lookaside shootdowns), so fast mode skips them entirely. *)
let map_pool t ~base ~size ~pool =
  if t.timing then
    Range_btree.insert t.vatb ~base ~size:(Int64.of_int size) ~pool

let unmap_pool t ~base ~pool =
  if t.timing then begin
    ignore (Range_btree.remove t.vatb base);
    Valb.invalidate_pool t.valb pool;
    Cache.invalidate t.polb pool
  end

(* Volatile microarchitectural state vanishes on crash/restart. *)
let flush_volatile t =
  Cache.flush t.l1_tlb;
  Cache.flush t.l2_tlb;
  Cache.flush t.l1;
  Cache.flush t.l2;
  Cache.flush t.l3;
  Cache.flush t.polb;
  Valb.flush t.valb;
  Storep_unit.flush t.storep_unit

(* --- statistics ----------------------------------------------------------- *)

type snapshot = {
  cycles : int;
  instrs : int;
  loads : int;
  stores : int;
  storeps : int;
  mem_accesses : int;
  branches : int;
  branch_mispredicts : int;
  polb_accesses : int;
  polb_misses : int;
  valb_accesses : int;
  valb_misses : int;
  pow_walks : int;
  vaw_walks : int;
  vaw_nodes : int;
  dram_accesses : int;
  nvm_accesses : int;
  l1_hit_rate : float;
  l2_hit_rate : float;
  l3_hit_rate : float;
  storep_stall_cycles : int;
}

let snapshot (t : t) : snapshot =
  {
    cycles = t.cycles;
    instrs = t.instrs;
    loads = t.loads;
    stores = t.stores;
    storeps = t.storeps;
    mem_accesses = t.loads + t.stores;
    branches = t.branches;
    branch_mispredicts = Branch_predictor.mispredictions t.bp;
    polb_accesses = Cache.accesses t.polb;
    polb_misses = Cache.misses t.polb;
    valb_accesses = Valb.accesses t.valb;
    valb_misses = Valb.misses t.valb;
    pow_walks = t.pow_walks;
    vaw_walks = t.vaw_walks;
    vaw_nodes = t.vaw_nodes;
    dram_accesses = t.dram_accesses;
    nvm_accesses = t.nvm_accesses;
    l1_hit_rate = Cache.hit_rate t.l1;
    l2_hit_rate = Cache.hit_rate t.l2;
    l3_hit_rate = Cache.hit_rate t.l3;
    storep_stall_cycles = Storep_unit.stall_cycles t.storep_unit;
  }

let cycles (t : t) = t.cycles

(* Where the cycles went.  [base] is one cycle per instruction; the
   stall fields partition everything above it, so
   [base + branch + tlb + cache + mem + xlate + storep = cycles]. *)
type attribution = {
  base : int;
  branch : int;
  tlb : int;
  cache : int;
  mem : int;
  xlate : int;
  storep : int;
}

let attribution (t : t) : attribution =
  {
    base = t.instrs;
    branch = t.st_branch;
    tlb = t.st_tlb;
    cache = t.st_cache;
    mem = t.st_mem;
    xlate = t.st_xlate;
    storep = t.st_storep;
  }

let attribution_total (a : attribution) =
  a.base + a.branch + a.tlb + a.cache + a.mem + a.xlate + a.storep

let diff_attribution (after : attribution) (before : attribution) =
  {
    base = after.base - before.base;
    branch = after.branch - before.branch;
    tlb = after.tlb - before.tlb;
    cache = after.cache - before.cache;
    mem = after.mem - before.mem;
    xlate = after.xlate - before.xlate;
    storep = after.storep - before.storep;
  }

let zero_attribution =
  { base = 0; branch = 0; tlb = 0; cache = 0; mem = 0; xlate = 0; storep = 0 }

let add_attribution (a : attribution) (b : attribution) =
  {
    base = a.base + b.base;
    branch = a.branch + b.branch;
    tlb = a.tlb + b.tlb;
    cache = a.cache + b.cache;
    mem = a.mem + b.mem;
    xlate = a.xlate + b.xlate;
    storep = a.storep + b.storep;
  }

(* Component accessors for telemetry publication. *)
let caches (t : t) =
  [
    ("l1_tlb", t.l1_tlb);
    ("l2_tlb", t.l2_tlb);
    ("l1", t.l1);
    ("l2", t.l2);
    ("l3", t.l3);
    ("polb", t.polb);
  ]

let valb (t : t) = t.valb
let storep (t : t) = t.storep_unit
let vatb_height (t : t) = Range_btree.height t.vatb

let diff_snapshot (after : snapshot) (before : snapshot) =
  {
    cycles = after.cycles - before.cycles;
    instrs = after.instrs - before.instrs;
    loads = after.loads - before.loads;
    stores = after.stores - before.stores;
    storeps = after.storeps - before.storeps;
    mem_accesses = after.mem_accesses - before.mem_accesses;
    branches = after.branches - before.branches;
    branch_mispredicts = after.branch_mispredicts - before.branch_mispredicts;
    polb_accesses = after.polb_accesses - before.polb_accesses;
    polb_misses = after.polb_misses - before.polb_misses;
    valb_accesses = after.valb_accesses - before.valb_accesses;
    valb_misses = after.valb_misses - before.valb_misses;
    pow_walks = after.pow_walks - before.pow_walks;
    vaw_walks = after.vaw_walks - before.vaw_walks;
    vaw_nodes = after.vaw_nodes - before.vaw_nodes;
    dram_accesses = after.dram_accesses - before.dram_accesses;
    nvm_accesses = after.nvm_accesses - before.nvm_accesses;
    l1_hit_rate = after.l1_hit_rate;
    l2_hit_rate = after.l2_hit_rate;
    l3_hit_rate = after.l3_hit_rate;
    storep_stall_cycles =
      after.storep_stall_cycles - before.storep_stall_cycles;
  }
