(** Simulator parameters, mirroring Table IV of the paper.

    Latency convention: the 1-cycle issue cost of an instruction already
    covers an L1-cache and L1-TLB hit; deeper levels charge their
    Table IV latencies as stall cycles.  Calibration notes live in
    EXPERIMENTS.md (exposed POLB hit cost, predictor sizing). *)

type t = {
  bp_table_bits : int;
  bp_history_bits : int;
  branch_miss_penalty : int;
  l1_tlb_ways : int;
  l1_tlb_entries : int;
  l2_tlb_ways : int;
  l2_tlb_entries : int;
  l2_tlb_hit_latency : int;
  page_walk_latency : int;
  line_shift : int;
  l1_ways : int;
  l1_sets : int;
  l2_ways : int;
  l2_kib : int;
  l2_latency : int;
  l3_ways : int;
  l3_kib : int;
  l3_latency : int;
  dram_latency : int;
  nvm_latency : int;
  polb_entries : int;
  polb_latency : int;
  pow_latency : int;
  valb_entries : int;
  valb_latency : int;
  vatb_node_latency : int;
  storep_fsm_entries : int;
  keep_relative_opt : bool;
      (** Section IV's "keep relative opportunistically" optimization;
          disable for the ablation study. *)
  sw_check_instrs : int;
  sw_check_branches : int;
  sw_ra2va_instrs : int;
  sw_ra2va_loads : int;
  sw_va2ra_instrs : int;
  sw_va2ra_loads : int;
  flush_latency : int;
      (** Cycles to drain one dirty 64 B line under a buffered
          persistency model (epoch/lazy); the eager model never pays
          this. *)
  fence_latency : int;
      (** Cycles to retire the fence that ends a buffered drain. *)
}

val default : t
(** The Table IV configuration. *)

val rows : t -> (string * string) list
(** Human-readable parameter dump (the Table IV reproduction). *)
