(* The storeP functional unit of Fig. 6: a buffer of outstanding
   store-pointer instructions, each with a small state machine tracking
   the Rs (va2ra) and Rd (ra2va) translations.  Translations of
   different entries proceed concurrently, so in the common case the
   conversion latency is hidden; the unit only stalls the pipeline when
   all FSM entries are busy. *)

module Telemetry = Nvml_telemetry.Telemetry

(* FSM-entry occupancy observed at each issue — how full the unit runs. *)
let occupancy_histo = Telemetry.histo "storep.occupancy"

type t = {
  busy_until : int array; (* per-entry completion cycle *)
  mutable issued : int;
  mutable stall_cycles : int;
  mutable peak_occupancy : int;
}

let create ~entries =
  {
    busy_until = Array.make entries 0;
    issued = 0;
    stall_cycles = 0;
    peak_occupancy = 0;
  }

(* Issue a storeP at cycle [now] whose translations take [latency]
   cycles inside the unit.  Returns the pipeline stall (0 when a free
   entry exists). *)
let issue t ~now ~latency =
  t.issued <- t.issued + 1;
  let victim = ref 0 in
  let occupancy = ref 0 in
  for i = 0 to Array.length t.busy_until - 1 do
    if t.busy_until.(i) > now then incr occupancy;
    if t.busy_until.(i) < t.busy_until.(!victim) then victim := i
  done;
  if !occupancy > t.peak_occupancy then t.peak_occupancy <- !occupancy;
  if Telemetry.enabled () then Telemetry.observe occupancy_histo !occupancy;
  let start = max now t.busy_until.(!victim) in
  let stall = start - now in
  t.stall_cycles <- t.stall_cycles + stall;
  t.busy_until.(!victim) <- start + latency;
  stall

let issued t = t.issued
let stall_cycles t = t.stall_cycles
let peak_occupancy t = t.peak_occupancy

let reset_stats t =
  t.issued <- 0;
  t.stall_cycles <- 0;
  t.peak_occupancy <- 0

let flush t = Array.fill t.busy_until 0 (Array.length t.busy_until) 0
