(** The timing model: an interval-style in-order core in the spirit of
    the paper's Snipersim setup.  The runtime narrates execution as
    micro-events (instructions, branches, memory accesses, translations,
    storeP issues); the model accumulates cycles and statistics.

    Cycle accounting: every instruction costs one issue cycle, which
    covers an L1-cache and L1-TLB hit; deeper levels, mispredictions,
    exposed POLB/VALB latencies and storeP structural stalls add stall
    cycles on top.

    Two-speed simulation: with [~timing:false] the core runs in fast
    functional mode — every event counter (instrs, loads, stores,
    storeps, branches, dram/nvm accesses) is still maintained, but no
    cache/TLB/predictor/lookaside/storeP state is touched and
    [cycles = instrs].  Functional outputs (and hence check outcomes,
    crash points, scrub reports) are identical in both modes. *)

type t

val create : ?timing:bool -> Config.t -> Nvml_simmem.Mem.t -> t
(** [timing] defaults to [true] (cycle-accurate mode). *)

val config : t -> Config.t

val timing : t -> bool
(** [true] iff this core models timing (cycle-accurate mode). *)

(** {2 Multi-core support}

    A sibling core shares the outer hierarchy (L2, L3, POLB, VALB and
    the kernel VATB) with its parent but has a private front end
    (branch predictor, TLBs, L1, storeP unit) and private counters.
    The hooks are the multi-core scheduler's attachment points; both
    default to no-ops, so a single-core machine is byte-identical to
    the pre-multi-core one. *)

val create_sibling : t -> t
(** A fresh core sharing [t]'s L2/L3/POLB/VALB/VATB (and the parent's
    persistency-model setting). *)

val set_relaxed_persistency : t -> bool -> unit
(** Under a relaxed (buffered) persistency model, storeP retirements
    pay only their exposed translation latency instead of the persist
    FSM occupancy stall — durability moves to the epoch drain.  [false]
    (the default) is the eager model, byte-identical to earlier
    releases. *)

val set_hooks : t -> on_step:(unit -> unit) -> on_store:(int -> unit) -> unit
(** [on_step] fires once per narrated µ-event (the interleave point);
    [on_store] fires after each completed store with the packed
    physical address (the coherence broadcast point). *)

val clear_hooks : t -> unit

val invalidate_line : t -> int -> bool
(** Coherence shoot-down: another core stored to this packed physical
    address; drop this core's private L1 copy of the line.  [true] iff
    the line was present.  No-op (and [false]) in fast mode. *)

val instr : t -> int -> unit
val branch : t -> pc:int -> taken:bool -> unit

val persist_stall : t -> int -> unit
(** Charge [n] stall cycles (attributed to memory stalls) for a
    buffered-persistency drain µ-event.  No-op in fast mode, and never
    advances the multi-core scheduler — a drain is atomic with respect
    to other cores. *)

val load : t -> int64 -> unit
val store : t -> int64 -> unit

val load_pa : t -> va:int64 -> pa:int -> unit
(** Like {!load}, but with the translation already done by the caller:
    [pa] is the packed physical address from [Mem.translate_pa].
    Allocation-free — the hot path for fused functional+timing
    accesses. *)

val store_pa : t -> va:int64 -> pa:int -> unit

val polb_translate : t -> pool:int -> unit
(** An ra2va on the address-generation path (exposed latency; a miss
    adds the POW walk). *)

val valb_latency : t -> va:int64 -> int
(** VALB lookup latency; a miss walks the VATB B-tree (one kernel
    access per node) and refills the buffer. *)

type xop = [ `Polb of int | `Valb of int64 ]

val store_p : t -> dst_va:int64 -> xops:xop list -> unit
(** A storeP instruction: the listed operand translations run
    concurrently inside an FSM entry (stalling only when the unit is
    full), then the store itself accesses memory. *)

val store_p_pa : t -> dst_va:int64 -> dst_pa:int -> xops:xop list -> unit
(** {!store_p} with the destination translation already done. *)

(** {2 Allocation-free storeP narration}

    The reusable operand buffer replaces the per-storeP [xop list] on
    the hot path: push this instruction's operand conversions (at most
    one per source register), then retire with {!store_p_buffered},
    which drains the buffer.  Equivalent to {!store_p_pa} with the same
    operands in push order. *)

val xop_reset : t -> unit
val xop_push_polb : t -> pool:int -> unit
val xop_push_valb : t -> va:int64 -> unit
val store_p_buffered : t -> dst_va:int64 -> dst_pa:int -> unit

val map_pool : t -> base:int64 -> size:int -> pool:int -> unit
(** Install the pool range in the VATB. *)

val unmap_pool : t -> base:int64 -> pool:int -> unit
(** Remove from the VATB and shoot down VALB/POLB entries. *)

val flush_volatile : t -> unit
(** Crash/restart: caches, TLBs, lookaside buffers and the storeP unit
    lose their state. *)

type snapshot = {
  cycles : int;
  instrs : int;
  loads : int;
  stores : int;
  storeps : int;
  mem_accesses : int;
  branches : int;
  branch_mispredicts : int;
  polb_accesses : int;
  polb_misses : int;
  valb_accesses : int;
  valb_misses : int;
  pow_walks : int;
  vaw_walks : int;
  vaw_nodes : int;
  dram_accesses : int;
  nvm_accesses : int;
  l1_hit_rate : float;
  l2_hit_rate : float;
  l3_hit_rate : float;
  storep_stall_cycles : int;
}

val snapshot : t -> snapshot
val cycles : t -> int
val diff_snapshot : snapshot -> snapshot -> snapshot
(** [diff_snapshot after before] — per-phase deltas. *)

(** {2 Cycle attribution}

    Every cycle beyond the one-per-instruction base is charged to
    exactly one stall source, so
    [attribution_total (attribution t) = cycles t] always holds. *)

type attribution = {
  base : int;  (** one cycle per retired instruction *)
  branch : int;  (** misprediction penalties *)
  tlb : int;  (** L2-TLB hits and page walks *)
  cache : int;  (** L2/L3 hit latencies *)
  mem : int;  (** DRAM/NVM access latencies *)
  xlate : int;  (** exposed POLB latency on the AGU path *)
  storep : int;  (** storeP structural stalls *)
}

val attribution : t -> attribution
val attribution_total : attribution -> int
val diff_attribution : attribution -> attribution -> attribution
val zero_attribution : attribution
val add_attribution : attribution -> attribution -> attribution

(** {2 Component access for telemetry publication} *)

val caches : t -> (string * Cache.t) list
(** [("l1_tlb", ...); ("l2_tlb", ...); ("l1", ...); ("l2", ...);
    ("l3", ...); ("polb", ...)] *)

val valb : t -> Valb.t
val storep : t -> Storep_unit.t
val vatb_height : t -> int
