(* The VALB — virtual address lookaside buffer — of Section V-A: a small
   fully-associative range CAM that maps a virtual address to the
   persistent pool whose mapping covers it, accelerating va2ra in the
   storeP unit.  Each entry holds (PMO starting address, PMO size,
   PMO ID); a lookup finds the covering range, TCAM-style.  Misses are
   served by the VAW walking the VATB B-tree kernel table; the walker
   refills the buffer with the whole pool range. *)

module Hit_miss = Nvml_telemetry.Stats.Hit_miss

type entry = { mutable base : int64; mutable size : int64; mutable pool : int }

type t = {
  entries : entry array;
  stamps : int array;
  mutable clock : int;
  stats : Hit_miss.t;
}

let create ~entries =
  {
    entries = Array.init entries (fun _ -> { base = 0L; size = 0L; pool = -1 });
    stamps = Array.make entries 0;
    clock = 0;
    stats = Hit_miss.create ();
  }

let find t va =
  let n = Array.length t.entries in
  let rec scan i =
    if i >= n then None
    else
      let e = t.entries.(i) in
      if e.pool >= 0 && va >= e.base && va < Int64.add e.base e.size then
        Some i
      else scan (i + 1)
  in
  scan 0

(* Look up [va]; returns the pool id on a hit. *)
let lookup t va =
  t.clock <- t.clock + 1;
  match find t va with
  | Some i ->
      Hit_miss.hit t.stats;
      t.stamps.(i) <- t.clock;
      Some t.entries.(i).pool
  | None ->
      Hit_miss.miss t.stats;
      None

(* Refill after a VAW walk. *)
let insert t ~base ~size ~pool =
  t.clock <- t.clock + 1;
  let victim = ref 0 in
  for i = 1 to Array.length t.entries - 1 do
    if t.stamps.(i) < t.stamps.(!victim) then victim := i
  done;
  let e = t.entries.(!victim) in
  e.base <- base;
  e.size <- size;
  e.pool <- pool;
  t.stamps.(!victim) <- t.clock

(* Shootdown when a pool mapping disappears. *)
let invalidate_pool t pool =
  Array.iter (fun e -> if e.pool = pool then e.pool <- -1) t.entries

let flush t = Array.iter (fun e -> e.pool <- -1) t.entries
let stats t = t.stats
let hits t = Hit_miss.hits t.stats
let misses t = Hit_miss.misses t.stats
let accesses t = Hit_miss.accesses t.stats
let hit_rate t = Hit_miss.hit_rate t.stats
let reset_stats t = Hit_miss.reset t.stats
