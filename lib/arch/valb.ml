(* The VALB — virtual address lookaside buffer — of Section V-A: a small
   fully-associative range CAM that maps a virtual address to the
   persistent pool whose mapping covers it, accelerating va2ra in the
   storeP unit.  Each entry holds (PMO starting address, PMO size,
   PMO ID); a lookup finds the covering range, TCAM-style.  Misses are
   served by the VAW walking the VATB B-tree kernel table; the walker
   refills the buffer with the whole pool range. *)

module Hit_miss = Nvml_telemetry.Stats.Hit_miss

(* Deliberately re-enable a fixed bug for the model-based fuzzer's
   [--break] self-test.  Never set outside that self-test. *)
type quirk =
  | Stale_invalidate_stamp
      (* pre-fix: [invalidate_pool]/[flush] cleared the pool id but left
         the way's LRU stamp, so a later refill evicted a valid entry
         while the invalidated way sat unused *)
  | Duplicate_insert
      (* pre-fix: [insert] never checked for an existing entry covering
         the same pool range, so repeated VAW refills let one pool
         occupy multiple CAM ways *)

type entry = { mutable base : int64; mutable size : int64; mutable pool : int }

type t = {
  entries : entry array;
  stamps : int array;
  mutable clock : int;
  mutable stale_stamp : bool;
  mutable dup_insert : bool;
  stats : Hit_miss.t;
}

let create ~entries =
  {
    entries = Array.init entries (fun _ -> { base = 0L; size = 0L; pool = -1 });
    stamps = Array.make entries 0;
    clock = 0;
    stale_stamp = false;
    dup_insert = false;
    stats = Hit_miss.create ();
  }

let enable_quirk t = function
  | Stale_invalidate_stamp -> t.stale_stamp <- true
  | Duplicate_insert -> t.dup_insert <- true

let find t va =
  let n = Array.length t.entries in
  let rec scan i =
    if i >= n then None
    else
      let e = t.entries.(i) in
      if e.pool >= 0 && va >= e.base && va < Int64.add e.base e.size then
        Some i
      else scan (i + 1)
  in
  scan 0

(* Look up [va]; returns the pool id on a hit. *)
let lookup t va =
  t.clock <- t.clock + 1;
  match find t va with
  | Some i ->
      Hit_miss.hit t.stats;
      t.stamps.(i) <- t.clock;
      Some t.entries.(i).pool
  | None ->
      Hit_miss.miss t.stats;
      None

(* Refill after a VAW walk.  A pool already resident refreshes its
   existing way in place (its range may have moved after a remap);
   otherwise fill an invalid way, and only evict LRU when the CAM is
   full.  Without the dedup, repeated refills let one pool occupy
   several ways — deflating effective capacity while inflating the
   reported hit rate. *)
let insert t ~base ~size ~pool =
  t.clock <- t.clock + 1;
  let n = Array.length t.entries in
  let victim = ref (-1) in
  (if not t.dup_insert then
     let rec dedup i =
       if i < n then
         if t.entries.(i).pool = pool then victim := i else dedup (i + 1)
     in
     dedup 0);
  (if !victim < 0 && not t.stale_stamp then
     let rec invalid i =
       if i < n then
         if t.entries.(i).pool < 0 then victim := i else invalid (i + 1)
     in
     invalid 0);
  if !victim < 0 then begin
    victim := 0;
    for i = 1 to n - 1 do
      if t.stamps.(i) < t.stamps.(!victim) then victim := i
    done
  end;
  let e = t.entries.(!victim) in
  e.base <- base;
  e.size <- size;
  e.pool <- pool;
  t.stamps.(!victim) <- t.clock

(* Shootdown when a pool mapping disappears.  Stamps are reset with the
   entry so the freed way is the next refill victim. *)
let invalidate_pool t pool =
  Array.iteri
    (fun i e ->
      if e.pool = pool then begin
        e.pool <- -1;
        if not t.stale_stamp then t.stamps.(i) <- 0
      end)
    t.entries

let flush t =
  Array.iter (fun e -> e.pool <- -1) t.entries;
  if not t.stale_stamp then Array.fill t.stamps 0 (Array.length t.stamps) 0

(* Debug view for the model-based fuzzer: every valid entry as
   (base, size, pool, stamp), way order. *)
let dump t =
  let acc = ref [] in
  for i = Array.length t.entries - 1 downto 0 do
    let e = t.entries.(i) in
    if e.pool >= 0 then acc := (e.base, e.size, e.pool, t.stamps.(i)) :: !acc
  done;
  !acc

let stats t = t.stats
let hits t = Hit_miss.hits t.stats
let misses t = Hit_miss.misses t.stats
let accesses t = Hit_miss.accesses t.stats
let hit_rate t = Hit_miss.hit_rate t.stats
let reset_stats t = Hit_miss.reset t.stats
