(* The multi-core machine: N in-order cores interleaved over shared
   L2/L3/POLB/VALB/VATB state by a seeded deterministic scheduler.

   Concurrency model.  Each core's instruction stream runs as an
   effect-based fiber; the core's [on_step] hook performs {!Yield} once
   per narrated µ-event, handing control back to the scheduler, which
   picks the next core with a seeded xorshift generator.  Everything
   runs on one OCaml domain — this is *simulated* concurrency with a
   reproducible interleaving, so `--jobs N == --jobs 1` determinism
   holds end to end: the schedule is a pure function of (seed, per-core
   programs).

   Coherence.  Stores broadcast through the core's [on_store] hook:
   every *other* core's private L1 drops the written line (shared L2/L3
   need no action).  The invalidation count is the machine's contention
   signal.

   [atomically f] models a hardware atomic read-modify-write: yields
   are suppressed while [f] runs, so no other core's µ-events interleave
   with it.  The ambient current-machine reference is domain-local, so
   share-nothing worker domains (the exec pool) can each drive their own
   machine. *)

type _ Effect.t += Yield : unit Effect.t

exception Aborted
(* Raised into paused fibers when another fiber's exception (e.g. an
   injected crash) aborts the run, so their stacks unwind and no
   one-shot continuation leaks. *)

type stats = {
  steps : int;  (* scheduling decisions taken *)
  contended_steps : int;  (* decisions with >= 2 runnable cores *)
  switches : int;  (* decisions that moved to a different core *)
  invalidations : int;  (* coherence line invalidations *)
}

type t = {
  cores : Cpu.t array;
  seed : int;
  mutable rng : int64;
  mutable suppress : int; (* [atomically] nesting depth: no yields *)
  mutable active : bool; (* inside [run]: hooks perform Yield *)
  mutable steps : int;
  mutable contended_steps : int;
  mutable switches : int;
  mutable invalidations : int;
}

let ambient : t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let create ?(seed = 1) cores =
  if Array.length cores = 0 then invalid_arg "Multicore.create: no cores";
  {
    cores;
    seed;
    rng = 0L;
    suppress = 0;
    active = false;
    steps = 0;
    contended_steps = 0;
    switches = 0;
    invalidations = 0;
  }

let cores t = t.cores
let core t i = t.cores.(i)
let num_cores t = Array.length t.cores

let stats t =
  {
    steps = t.steps;
    contended_steps = t.contended_steps;
    switches = t.switches;
    invalidations = t.invalidations;
  }

let atomically f =
  match !(Domain.DLS.get ambient) with
  | None -> f ()
  | Some t ->
      t.suppress <- t.suppress + 1;
      Fun.protect ~finally:(fun () -> t.suppress <- t.suppress - 1) f

(* An explicit interleave point for code whose µ-events are wrapped in
   [atomically] blocks (e.g. allocator-heavy operations that must not be
   split): yields once if a machine is running, no-op otherwise. *)
let checkpoint () =
  match !(Domain.DLS.get ambient) with
  | Some t when t.active && t.suppress = 0 -> Effect.perform Yield
  | _ -> ()

(* xorshift64: deterministic, allocation-free modulo boxing, never 0. *)
let next_rand t =
  let x = t.rng in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.rng <- x;
  Int64.to_int (Int64.logand x 0x3FFFFFFF_FFFFFFFFL)

type fiber_state =
  | Unstarted
  | Paused of (unit, unit) Effect.Deep.continuation
  | Running
  | Done

let run t fns =
  let n = Array.length t.cores in
  if Array.length fns <> n then
    invalid_arg "Multicore.run: one entry function per core";
  if n = 1 then fns.(0) 0 (* single core: pass-through, no hooks at all *)
  else begin
    if t.active then invalid_arg "Multicore.run: machine already running";
    t.rng <- Int64.of_int ((t.seed * 2) + 1);
    let state = Array.make n Unstarted in
    let cur = ref (-1) in
    (* One handler per fiber start; [effc] stores the paused
       continuation and returns to the scheduler loop. *)
    let handler i =
      Effect.Deep.
        {
          retc = (fun () -> state.(i) <- Done);
          exnc = raise;
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Yield ->
                  Some
                    (fun (k : (a, unit) Effect.Deep.continuation) ->
                      state.(i) <- Paused k)
              | _ -> None);
        }
    in
    (* Hooks: yield before each µ-event; broadcast each store to the
       other cores' private L1s. *)
    for i = 0 to n - 1 do
      let on_step () =
        if t.active && t.suppress = 0 then Effect.perform Yield
      in
      let on_store pa =
        if t.active then
          for j = 0 to n - 1 do
            if j <> i && Cpu.invalidate_line t.cores.(j) pa then
              t.invalidations <- t.invalidations + 1
          done
      in
      Cpu.set_hooks t.cores.(i) ~on_step ~on_store
    done;
    let ambient_ref = Domain.DLS.get ambient in
    let saved_ambient = !ambient_ref in
    ambient_ref := Some t;
    t.active <- true;
    let cleanup () =
      t.active <- false;
      ambient_ref := saved_ambient;
      Array.iter (fun c -> Cpu.clear_hooks c) t.cores;
      (* Unwind any still-paused fibers so their one-shot continuations
         are not leaked when an exception aborts the schedule. *)
      Array.iteri
        (fun i s ->
          match s with
          | Paused k -> (
              state.(i) <- Done;
              try Effect.Deep.discontinue k Aborted with _ -> ())
          | _ -> ())
        state
    in
    Fun.protect ~finally:cleanup @@ fun () ->
    let runnable = Array.make n 0 in
    let continue_ = ref true in
    while !continue_ do
      let count = ref 0 in
      for i = 0 to n - 1 do
        match state.(i) with
        | Unstarted | Paused _ ->
            runnable.(!count) <- i;
            incr count
        | Running | Done -> ()
      done;
      if !count = 0 then continue_ := false
      else begin
        t.steps <- t.steps + 1;
        if !count > 1 then t.contended_steps <- t.contended_steps + 1;
        let r = runnable.(next_rand t mod !count) in
        if !cur >= 0 && r <> !cur then t.switches <- t.switches + 1;
        cur := r;
        match state.(r) with
        | Unstarted ->
            state.(r) <- Running;
            Effect.Deep.match_with (fun () -> fns.(r) r) () (handler r)
        | Paused k ->
            state.(r) <- Running;
            Effect.Deep.continue k ()
        | Running | Done -> assert false
      end
    done
  end
