(* Simulator parameters, mirroring Table IV of the paper.

   Latency convention: the 1-cycle issue cost of an instruction already
   covers an L1 cache hit and an L1 TLB hit (both are pipelined on the
   modeled Gainestown-class core); deeper levels charge their Table IV
   latencies as stall cycles on top. *)

type t = {
  (* branch predictor (Pentium-M class: gshare over 2-bit counters) *)
  bp_table_bits : int;
  bp_history_bits : int;
  branch_miss_penalty : int; (* 8 cycles *)
  (* TLBs *)
  l1_tlb_ways : int;
  l1_tlb_entries : int;
  l2_tlb_ways : int;
  l2_tlb_entries : int;
  l2_tlb_hit_latency : int; (* 7 *)
  page_walk_latency : int; (* 30 *)
  (* caches; line size 64 B *)
  line_shift : int;
  l1_ways : int;
  l1_sets : int; (* 64 sets * 8 ways * 64 B = 32 KiB *)
  l2_ways : int;
  l2_kib : int; (* 256 KiB *)
  l2_latency : int; (* 12 *)
  l3_ways : int;
  l3_kib : int; (* 2 MiB *)
  l3_latency : int; (* 40 *)
  (* memory *)
  dram_latency : int; (* 120 cycles (45 ns) *)
  nvm_latency : int; (* 240 cycles *)
  (* persistent-object translation hardware *)
  polb_entries : int; (* 32 *)
  polb_latency : int; (* exposed cost of a POLB hit; the 3-cycle lookup
     largely overlaps with address generation on the modeled core *)
  pow_latency : int; (* POT walk: one kernel-table access *)
  valb_entries : int; (* 32 *)
  valb_latency : int; (* default = POLB latency; swept in Fig. 14 *)
  vatb_node_latency : int; (* per B-tree node touched by the VAW *)
  storep_fsm_entries : int; (* 32 outstanding storeP *)
  (* Section IV's "keep relative opportunistically" optimization: the
     compiler keeps the relative form of a recently materialized pointer
     live, so storing it back into NVM needs no VALB translation.
     Disable for the ablation study. *)
  keep_relative_opt : bool;
  (* software-check cost model (SW version):
     instructions per determineX/determineY-style check, per ra2va
     software call (pool-table lookup) and per va2ra software call
     (range lookup), plus how many branches each executes. *)
  sw_check_instrs : int;
  sw_check_branches : int;
  sw_ra2va_instrs : int;
  sw_ra2va_loads : int;
  sw_va2ra_instrs : int;
  sw_va2ra_loads : int;
  (* buffered-persistency drain costs (epoch/lazy models): cycles to
     flush one dirty 64 B line to media and to retire the drain fence.
     The eager model never pays these — stores persist in place. *)
  flush_latency : int;
  fence_latency : int;
}

let default =
  {
    bp_table_bits = 10;
    bp_history_bits = 8;
    branch_miss_penalty = 8;
    l1_tlb_ways = 4;
    l1_tlb_entries = 64;
    l2_tlb_ways = 4;
    l2_tlb_entries = 1536;
    l2_tlb_hit_latency = 7;
    page_walk_latency = 30;
    line_shift = 6;
    l1_ways = 8;
    l1_sets = 64;
    l2_ways = 8;
    l2_kib = 256;
    l2_latency = 12;
    l3_ways = 8;
    l3_kib = 2048;
    l3_latency = 40;
    dram_latency = 120;
    nvm_latency = 240;
    polb_entries = 32;
    polb_latency = 1;
    pow_latency = 40;
    valb_entries = 32;
    valb_latency = 3;
    vatb_node_latency = 40;
    storep_fsm_entries = 32;
    keep_relative_opt = true;
    sw_check_instrs = 4;
    sw_check_branches = 2;
    sw_ra2va_instrs = 10;
    sw_ra2va_loads = 2;
    sw_va2ra_instrs = 14;
    sw_va2ra_loads = 3;
    flush_latency = 40;
    fence_latency = 20;
  }

let rows t =
  [
    ("ISA", "64-bit (simulated), Gainestown-class in-order interval model");
    ("CPU", "1 core, 64 B cache line");
    ( "Branch predictor",
      Fmt.str "gshare %d-bit, miss penalty %d cycles" t.bp_history_bits
        t.branch_miss_penalty );
    ( "L1 data TLB",
      Fmt.str "%d-way, %d entries, 1 cycle" t.l1_tlb_ways t.l1_tlb_entries );
    ( "L2 shared TLB",
      Fmt.str "%d-way, %d entries, %d cycles for hit, %d cycles for miss"
        t.l2_tlb_ways t.l2_tlb_entries t.l2_tlb_hit_latency
        t.page_walk_latency );
    ( "L1 cache",
      Fmt.str "%d-way, %d sets, pipelined hit" t.l1_ways t.l1_sets );
    ("L2 cache", Fmt.str "%d-way, %d KiB, %d cycles" t.l2_ways t.l2_kib t.l2_latency);
    ("L3 cache", Fmt.str "%d-way, %d KiB, %d cycles" t.l3_ways t.l3_kib t.l3_latency);
    ( "Memory",
      Fmt.str "%d cycles for DRAM, %d cycles for NVM" t.dram_latency
        t.nvm_latency );
    ( "POLB",
      Fmt.str "%d entries, %d cycles, POW %d cycles" t.polb_entries
        t.polb_latency t.pow_latency );
    ( "VALB",
      Fmt.str "%d entries, %d cycles, VAW %d cycles/node" t.valb_entries
        t.valb_latency t.vatb_node_latency );
    ("storeP FSM", Fmt.str "%d entries" t.storep_fsm_entries);
  ]
