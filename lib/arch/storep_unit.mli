(** The storeP functional unit (Fig. 6): a buffer of outstanding
    store-pointer instructions whose Rs/Rd translations proceed
    concurrently; the pipeline stalls only when every FSM entry is
    busy. *)

type t

val create : entries:int -> t

val issue : t -> now:int -> latency:int -> int
(** Issue a storeP at cycle [now] whose translations take [latency]
    cycles inside the unit; returns the structural stall (0 when a free
    entry exists). *)

val issued : t -> int
val stall_cycles : t -> int
val peak_occupancy : t -> int

val reset_stats : t -> unit
(** Zero the issue/stall/occupancy statistics (FSM state is kept). *)

val flush : t -> unit
