(* The mini-C interpreter.  Programs execute against the runtime's
   pointer API, so the same source runs in every mode: Volatile gives
   the reference behaviour, Sw/Hw give user-transparent persistent
   references with their cost models.  Locals live in a simulated DRAM
   stack (so & of a local is a real volatile address), and the heap
   region is a parameter: DRAM for native runs, a pool for the
   libvmmalloc-style persist-everything runs of Section VII-B.

   A check [plan] (from the compiler pass) marks the expression nodes
   whose pointer properties static inference resolved; those sites are
   created static and the SW mode emits no dynamic check there. *)

open Ast

(* [Ast] redefines arithmetic symbols as expression builders; restore
   the integer operators for the interpreter's own computations. *)
let ( + ) = Stdlib.( + )
let ( = ) = Stdlib.( = )
let ( <> ) = Stdlib.( <> )
let ( > ) = Stdlib.( > )
let ( && ) = Stdlib.( && )
let ( || ) = Stdlib.( || )

module Layout = Nvml_simmem.Layout
module Mem = Nvml_simmem.Mem
module Ptr = Nvml_core.Ptr
module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Semantics = Nvml_core.Semantics

exception Runtime_error of string

let err fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

type t = {
  rt : Runtime.t;
  env : Types.env;
  program : program;
  heap : Runtime.region;
  plan : int -> bool; (* node id -> statically resolved? *)
  sites : (int, Site.t) Hashtbl.t;
  stack_base : int64;
  mutable stack_top : int64;
  mutable vars : (string * (Ptr.t * ty)) list; (* name -> (slot, type) *)
  mutable output : int64 list; (* print stream, reversed *)
  (* The "text segment": one cell per function (in the heap region, so
     function pointers are relative when the heap is persistent). *)
  fun_addr : (string, Ptr.t) Hashtbl.t;
  code_by_va : (int64, string) Hashtbl.t;
}

exception Return_exc of int64
exception Break_exc
exception Continue_exc

let stack_bytes = 1 lsl 20

let create rt ?(plan = fun _ -> false) ~heap (program : program) =
  let env = Types.check_program program in
  let stack_base = Mem.map_fresh (Runtime.mem rt) Layout.Dram stack_bytes in
  let t =
    {
      rt;
      env;
      program;
      heap;
      plan;
      sites = Hashtbl.create 256;
      stack_base;
      stack_top = stack_base;
      vars = [];
      output = [];
      fun_addr = Hashtbl.create 8;
      code_by_va = Hashtbl.create 8;
    }
  in
  (* Lay out the text segment: a cell per function whose address is the
     function's value as a pointer. *)
  List.iter
    (fun (f : func) ->
      let cell = Runtime.alloc_in rt heap 8 in
      Hashtbl.replace t.fun_addr f.fname cell;
      Hashtbl.replace t.code_by_va
        (Nvml_core.Xlate.ra2va (Runtime.xlate rt) cell)
        f.fname)
    program.funcs;
  t

(* One site per expression node; static when the plan resolved it. *)
let site t id =
  match Hashtbl.find_opt t.sites id with
  | Some s -> s
  | None ->
      let s = Site.intern ~static:(t.plan id) (Fmt.str "minic.%d" id) in
      Hashtbl.replace t.sites id s;
      s

let push_slot t bytes =
  let slot = t.stack_top in
  t.stack_top <- Int64.add t.stack_top (Int64.of_int (Layout.align_up_words bytes));
  if Int64.sub t.stack_top t.stack_base > Int64.of_int stack_bytes then
    err "stack overflow";
  slot

let bind t name ty =
  let slot = push_slot t (Types.sizeof t.env ty) in
  t.vars <- (name, (slot, ty)) :: t.vars;
  slot

let lookup t name =
  match List.assoc_opt name t.vars with
  | Some x -> x
  | None -> err "unbound variable %s" name

let var_types t = { t.env with Types.vars = List.map (fun (n, (_, ty)) -> (n, ty)) t.vars }

let type_of t e = Types.type_of (var_types t) e

let elem_size_of_ptr t ty = Types.sizeof t.env (Types.elem_ty ty)

(* Store a value into a typed cell, choosing storeP vs storeD. *)
let store_typed t ~id addr ty v =
  if Types.is_ptr ty then Runtime.store_ptr t.rt ~site:(site t id) addr ~off:0 v
  else Runtime.store_word t.rt ~site:(site t id) addr ~off:0 v

let load_typed t ~id addr ty =
  if Types.is_ptr ty then Runtime.load_ptr t.rt ~site:(site t id) addr ~off:0
  else Runtime.load_word t.rt ~site:(site t id) addr ~off:0

(* Truth of a value of type [ty] (Fig. 4 logical/conditional rows):
   a relative pointer is never null, so the test is format-agnostic. *)
let truth v = not (Int64.equal v 0L)

let map_cmp = function
  | Lt -> Semantics.Lt
  | Gt -> Semantics.Gt
  | Le -> Semantics.Le
  | Ge -> Semantics.Ge
  | Eq -> Semantics.Eq
  | Ne -> Semantics.Ne
  | _ -> assert false

let bool_to_i64 b = if b then 1L else 0L

(* --- evaluation ------------------------------------------------------- *)

let rec eval t (e : expr) : int64 =
  match e.e with
  | EInt v -> v
  | ENull -> 0L
  | ESizeof ty -> Int64.of_int (Types.sizeof t.env ty)
  | EVar v -> (
      match List.assoc_opt v t.vars with
      | Some (slot, Tarray _) -> slot (* arrays decay to the slot address *)
      | Some (slot, ty) -> load_typed t ~id:e.id slot ty
      | None -> (
          (* a bare function name is a function-pointer constant *)
          match Hashtbl.find_opt t.fun_addr v with
          | Some addr ->
              Runtime.instr t.rt 1;
              addr
          | None -> err "unbound variable %s" v))
  | EUnop (op, a) -> (
      let va = eval t a in
      Runtime.instr t.rt 1;
      match op with
      | Neg -> Int64.neg va
      | Not ->
          if Types.is_ptr (type_of t a) then
            bool_to_i64 (Runtime.ptr_is_null t.rt ~site:(site t e.id) va)
          else bool_to_i64 (Int64.equal va 0L)
      | Bnot ->
          if Types.is_ptr (type_of t a) then
            Int64.lognot (Runtime.ptr_to_int t.rt ~site:(site t e.id) va)
          else Int64.lognot va)
  | EBinop (op, a, b) -> eval_binop t e op a b
  | EAssign (lv, rhs) ->
      let v = eval t rhs in
      let addr, ty = eval_lvalue t lv in
      store_typed t ~id:e.id addr ty v;
      v
  | EDeref _ | EIndex _ | EArrow _ ->
      let addr, ty = eval_lvalue t e in
      (match ty with
      | Tarray _ -> addr (* &subarray *)
      | _ -> load_typed t ~id:e.id addr ty)
  | EAddr lv ->
      let addr, _ = eval_lvalue t lv in
      addr
  | ECall (name, args) -> eval_call t e name args
  | ECallPtr (callee, args) ->
      (* pxr(argument list): resolve the code address first (Fig. 4). *)
      let fp = eval t callee in
      let target = Runtime.ptr_to_int t.rt ~site:(site t e.id) fp in
      let fname =
        match Hashtbl.find_opt t.code_by_va target with
        | Some f -> f
        | None -> err "call through a pointer that is not a function"
      in
      dispatch t e fname (List.map (eval t) args)
  | ECast (ty, a) ->
      let v = eval t a in
      let from_ty = type_of t a in
      if ty = Tint && Types.is_ptr from_ty then
        Runtime.ptr_to_int t.rt ~site:(site t e.id) v
      else v (* (T* )p, (T* )i: bit pattern unchanged *)
  | ECond (c, a, b) ->
      let cv = eval t c in
      Runtime.instr t.rt 1;
      if Runtime.branch t.rt ~site:(site t c.id) (truth cv) then eval t a
      else eval t b
  | EIncr { pre; up; lv } ->
      let addr, ty = eval_lvalue t lv in
      let old = load_typed t ~id:e.id addr ty in
      let step =
        if Types.is_ptr ty then Int64.of_int (elem_size_of_ptr t ty) else 1L
      in
      Runtime.instr t.rt 1;
      let nv = if up then Int64.add old step else Int64.sub old step in
      store_typed t ~id:e.id addr ty nv;
      if pre then nv else old

and eval_binop t e op a b =
  match op with
  | And ->
      let va = eval t a in
      if Runtime.branch t.rt ~site:(site t a.id) (truth va) then
        bool_to_i64 (truth (eval t b))
      else 0L
  | Or ->
      let va = eval t a in
      if Runtime.branch t.rt ~site:(site t a.id) (truth va) then 1L
      else bool_to_i64 (truth (eval t b))
  | Lt | Gt | Le | Ge | Eq | Ne -> (
      let ta = type_of t a and tb = type_of t b in
      let va = eval t a in
      let vb = eval t b in
      if Types.is_ptr ta || Types.is_ptr tb then
        bool_to_i64
          (Runtime.ptr_compare t.rt ~site:(site t e.id) (map_cmp op) va vb)
      else begin
        Runtime.instr t.rt 1;
        bool_to_i64
          (Semantics.eval_comparison (map_cmp op) (Int64.compare va vb))
      end)
  | Add | Sub -> (
      let ta = type_of t a and tb = type_of t b in
      let va = eval t a in
      let vb = eval t b in
      Runtime.instr t.rt 1;
      match (ta, tb, op) with
      | Tptr _, Tint, Add ->
          Semantics.add_int va vb ~elem_size:(elem_size_of_ptr t ta)
      | Tptr _, Tint, Sub ->
          Semantics.sub_int va vb ~elem_size:(elem_size_of_ptr t ta)
      | Tint, Tptr _, Add ->
          Semantics.add_int vb va ~elem_size:(elem_size_of_ptr t tb)
      | Tptr _, Tptr _, Sub ->
          Runtime.ptr_diff t.rt ~site:(site t e.id) va vb
            ~elem_size:(elem_size_of_ptr t ta)
      | _, _, Add -> Int64.add va vb
      | _, _, Sub -> Int64.sub va vb
      | _ -> assert false)
  | Mul | Div | Mod | Band | Bor | Bxor | Shl | Shr -> (
      let va = eval t a in
      let vb = eval t b in
      Runtime.instr t.rt 1;
      match op with
      | Mul -> Int64.mul va vb
      | Div ->
          if Int64.equal vb 0L then err "division by zero" else Int64.div va vb
      | Mod ->
          if Int64.equal vb 0L then err "division by zero" else Int64.rem va vb
      | Band -> Int64.logand va vb
      | Bor -> Int64.logor va vb
      | Bxor -> Int64.logxor va vb
      | Shl -> Int64.shift_left va (Int64.to_int vb land 63)
      | Shr -> Int64.shift_right_logical va (Int64.to_int vb land 63)
      | _ -> assert false)

(* Evaluate an lvalue to (address, type of the cell). *)
and eval_lvalue t (e : expr) : Ptr.t * ty =
  match e.e with
  | EVar v ->
      let slot, ty = lookup t v in
      (slot, ty)
  | EDeref p ->
      let addr = eval t p in
      (addr, Types.elem_ty (type_of t p))
  | EIndex (p, i) ->
      let tp = type_of t p in
      let base = eval t p in
      let iv = eval t i in
      Runtime.instr t.rt 2;
      let elem = Types.elem_ty tp in
      ( Semantics.add_int base iv ~elem_size:(Types.sizeof t.env elem),
        elem )
  | EArrow (p, f) -> (
      match type_of t p with
      | Tptr (Tstruct s) ->
          let off, fty = Types.field_info t.env s f in
          let base = eval t p in
          Runtime.instr t.rt 1;
          (Ptr.add base (Int64.of_int off), fty)
      | ty -> err "-> on %a" pp_ty ty)
  | _ -> err "not an lvalue"

and eval_call t (e : expr) name args =
  match (name, args) with
  | "malloc", [ n ] ->
      let bytes = Int64.to_int (eval t n) in
      Runtime.alloc_in t.rt t.heap (max 8 bytes)
  | "pmalloc", [ n ] ->
      let bytes = Int64.to_int (eval t n) in
      Runtime.alloc_in t.rt t.heap (max 8 bytes)
  | ("free" | "pfree"), [ p ] ->
      Runtime.dealloc t.rt (eval t p);
      0L
  | "print", [ v ] ->
      let x = eval t v in
      t.output <- x :: t.output;
      0L
  | _ -> (
      (* A variable holding a function pointer may be called by name. *)
      match List.assoc_opt name t.vars with
      | Some (slot, Tfunptr) ->
          let fp = load_typed t ~id:e.id slot Tfunptr in
          let target = Runtime.ptr_to_int t.rt ~site:(site t e.id) fp in
          let fname =
            match Hashtbl.find_opt t.code_by_va target with
            | Some f -> f
            | None -> err "call through a pointer that is not a function"
          in
          dispatch t e fname (List.map (eval t) args)
      | Some _ -> err "%s is not callable" name
      | None ->
          if not (Hashtbl.mem t.env.Types.funcs name) then
            err "unknown function %s" name;
          dispatch t e name (List.map (eval t) args))

(* Invoke the user function [fname] with evaluated arguments: push a
   frame, bind parameters (pointer params convert on materialization),
   execute, pop. *)
and dispatch t (e : expr) fname arg_values =
  let f = Hashtbl.find t.env.Types.funcs fname in
  if List.length f.params <> List.length arg_values then
    err "%s: arity mismatch" fname;
  let saved_vars = t.vars in
  let saved_top = t.stack_top in
  Runtime.instr t.rt (2 + List.length arg_values);
  t.vars <- [];
  List.iter2
    (fun (pname, pty) v ->
      let slot = bind t pname pty in
      store_typed t ~id:e.id slot pty v)
    f.params arg_values;
  t.vars <- t.vars @ saved_vars;
  let result =
    try
      exec_stmts t f.body;
      0L
    with Return_exc v -> v
  in
  t.vars <- saved_vars;
  t.stack_top <- saved_top;
  result

and exec_stmts t stmts = List.iter (exec_stmt t) stmts

and exec_stmt t = function
  | SExpr e -> ignore (eval t e)
  | SDecl (v, ty, init) ->
      let slot = bind t v ty in
      (match init with
      | Some e ->
          let value = eval t e in
          store_typed t ~id:e.id slot ty value
      | None -> ())
  | SIf (c, a, b) ->
      let cv = eval t c in
      if Runtime.branch t.rt ~site:(site t c.id) (truth cv) then begin
        let saved = t.vars in
        exec_stmts t a;
        t.vars <- saved
      end
      else begin
        let saved = t.vars in
        exec_stmts t b;
        t.vars <- saved
      end
  | SWhile (c, body) ->
      let rec loop () =
        let cv = eval t c in
        if Runtime.branch t.rt ~site:(site t c.id) (truth cv) then begin
          let saved = t.vars in
          (try exec_stmts t body with Continue_exc -> ());
          t.vars <- saved;
          loop ()
        end
      in
      (try loop () with Break_exc -> ())
  | SFor (init, c, step, body) ->
      let saved_outer = t.vars in
      Option.iter (exec_stmt t) init;
      let rec loop () =
        let continue_loop =
          match c with
          | None -> true
          | Some c ->
              let cv = eval t c in
              Runtime.branch t.rt ~site:(site t c.id) (truth cv)
        in
        if continue_loop then begin
          let saved = t.vars in
          (try exec_stmts t body with Continue_exc -> ());
          t.vars <- saved;
          Option.iter (fun e -> ignore (eval t e)) step;
          loop ()
        end
      in
      (try loop () with Break_exc -> ());
      t.vars <- saved_outer
  | SBreak -> raise Break_exc
  | SContinue -> raise Continue_exc
  | SReturn (Some e) -> raise (Return_exc (eval t e))
  | SReturn None -> raise (Return_exc 0L)

type outcome = { result : int64; output : int64 list }

(* Run [main] with integer arguments. *)
let run rt ?plan ~heap (program : program) ~(args : int64 list) : outcome =
  let t = create rt ?plan ~heap program in
  let main =
    match Hashtbl.find_opt t.env.Types.funcs "main" with
    | Some f -> f
    | None -> err "program has no main"
  in
  let call_expr = Ast.call "main" [] in
  let result =
    eval_call t call_expr "main" (List.map (fun v -> Ast.i64 v) args)
  in
  ignore main;
  { result; output = List.rev t.output }
