(* Key-popularity distributions in the style of the YCSB core
   generators: uniform, (scrambled) zipfian with Gray's rejection-free
   sampler, and "latest", which is a zipfian over recency so that
   recently inserted records are the most likely to be read — the
   distribution the paper's harness uses. *)

let theta = 0.99 (* YCSB's default zipfian constant *)

type t =
  | Uniform of { mutable n : int }
  | Zipfian of zipf
  | Scrambled_zipfian of zipf
  | Latest of zipf
  | Hotspot of { mutable n : int; hot_n : int; op_frac : float }

and zipf = {
  mutable n : int;
  mutable zeta_n : float;
  alpha : float;
  zeta2 : float;
}

let zeta n =
  let s = ref 0.0 in
  for i = 1 to n do
    s := !s +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !s

let make_zipf n =
  if n < 1 then invalid_arg "Distribution: need at least one record";
  { n; zeta_n = zeta n; alpha = 1.0 /. (1.0 -. theta); zeta2 = zeta 2 }

let uniform n = Uniform { n }
let zipfian n = Zipfian (make_zipf n)
let scrambled_zipfian n = Scrambled_zipfian (make_zipf n)
let latest n = Latest (make_zipf n)

(* YCSB's hotspot generator: a fixed hot set — the first [hot_frac]
   of the initial population — receives [op_frac] of the draws; the
   remainder go uniformly to the cold records.  The hot set does not
   grow with the population, so a serving cache sized to hold it has a
   closed-form expected hit rate of [op_frac]. *)
let hotspot ?(hot_frac = 0.01) ?(op_frac = 0.9) n =
  if n < 1 then invalid_arg "Distribution: need at least one record";
  if hot_frac <= 0.0 || hot_frac > 1.0 then
    invalid_arg "Distribution.hotspot: hot_frac must be in (0, 1]";
  if op_frac < 0.0 || op_frac > 1.0 then
    invalid_arg "Distribution.hotspot: op_frac must be in [0, 1]";
  let hot_n = max 1 (int_of_float (hot_frac *. float_of_int n)) in
  Hotspot { n; hot_n = min hot_n n; op_frac }

(* splitmix64 finalizer, used to scramble zipfian ranks so popular keys
   scatter over the key space. *)
let scramble k =
  let k = Int64.mul (Int64.logxor k (Int64.shift_right_logical k 30))
      0xbf58476d1ce4e5b9L in
  let k = Int64.mul (Int64.logxor k (Int64.shift_right_logical k 27))
      0x94d049bb133111ebL in
  Int64.logxor k (Int64.shift_right_logical k 31)

(* Gray et al.'s zipfian sampler: rank 0 is the most popular. *)
let sample_zipf z rng =
  let u = Random.State.float rng 1.0 in
  let uz = u *. z.zeta_n in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 theta then 1
  else
    let eta =
      (1.0 -. Float.pow (2.0 /. float_of_int z.n) (1.0 -. theta))
      /. (1.0 -. (z.zeta2 /. z.zeta_n))
    in
    let r =
      int_of_float
        (float_of_int z.n *. Float.pow ((eta *. u) -. eta +. 1.0) z.alpha)
    in
    min (max r 0) (z.n - 1)

(* Extend the population by one record (after an insert).  The zeta sum
   grows incrementally — O(1), exact. *)
let grow t =
  match t with
  | Uniform u -> u.n <- u.n + 1
  | Hotspot h -> h.n <- h.n + 1
  | Zipfian z | Scrambled_zipfian z | Latest z ->
      z.n <- z.n + 1;
      z.zeta_n <- z.zeta_n +. (1.0 /. Float.pow (float_of_int z.n) theta)

let population = function
  | Uniform u -> u.n
  | Hotspot h -> h.n
  | Zipfian z | Scrambled_zipfian z | Latest z -> z.n

let hot_set_size = function Hotspot h -> h.hot_n | _ -> 0

(* Draw a record index in [0, population). *)
let sample t rng =
  match t with
  | Uniform u -> Random.State.int rng u.n
  | Zipfian z -> sample_zipf z rng
  | Scrambled_zipfian z ->
      (* Offset before scrambling: splitmix's finalizer fixes 0. *)
      let r = sample_zipf z rng in
      Int64.to_int
        (Int64.rem
           (Int64.logand (scramble (Int64.of_int (r + 0x9E3779B9))) Int64.max_int)
           (Int64.of_int z.n))
  | Latest z ->
      (* Most recent record (index n-1) is rank 0. *)
      let r = sample_zipf z rng in
      z.n - 1 - r
  | Hotspot h ->
      if Random.State.float rng 1.0 < h.op_frac then
        Random.State.int rng h.hot_n
      else if h.n > h.hot_n then h.hot_n + Random.State.int rng (h.n - h.hot_n)
      else Random.State.int rng h.n

let name = function
  | Uniform _ -> "uniform"
  | Zipfian _ -> "zipfian"
  | Scrambled_zipfian _ -> "scrambled-zipfian"
  | Latest _ -> "latest"
  | Hotspot _ -> "hotspot"
