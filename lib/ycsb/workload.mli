(** YCSB-style workload specifications and operation streams.

    {!paper_default} is the paper's harness preset (Section VII-A):
    10,000 records, 100,000 operations, 95 % GET / 5 % SET where every
    SET inserts a new pair, keys drawn with the "latest" distribution. *)

type dist_kind = Uniform | Zipfian | Scrambled_zipfian | Latest | Hotspot

type spec = {
  name : string;
  record_count : int;
  operation_count : int;
  read_proportion : float;
  update_proportion : float;  (** SET to an existing key *)
  insert_proportion : float;  (** SET inserting a new key *)
  scan_proportion : float;  (** multi-get over consecutive record indices *)
  rmw_proportion : float;  (** read-modify-write on an existing key *)
  scan_length : int;  (** records per scan *)
  hot_fraction : float;  (** Hotspot: fraction of records in the hot set *)
  hot_op_fraction : float;  (** Hotspot: fraction of draws hitting it *)
  distribution : dist_kind;
  seed : int;
}

val paper_default : spec
val workload_a : spec
val workload_b : spec
val workload_c : spec
val workload_d : spec

val scale : spec -> int -> spec
(** Divide record and operation counts by a factor. *)

val key_of_index : int -> int64
(** The (scrambled) key of record index [i]. *)

type op =
  | Read of int64
  | Update of int64 * int64
  | Insert of int64 * int64
  | Scan of int * int
      (** [Scan (start, len)]: multi-get of records [start .. start+len-1]
          by index; individual keys come from {!key_of_index}. *)
  | Rmw of int64 * int64
      (** [Rmw (key, delta)]: read the value of [key] and write back
          value + [delta]. *)

(** Index-level mirror of {!op}: record indices instead of keys, [int]
    values.  Used by the serving engine to encode operation streams
    compactly; keys are recomputed with {!key_of_index} at replay. *)
type idx_op =
  | IRead of int
  | IUpdate of int * int
  | IInsert of int * int
  | IScan of int * int
  | IRmw of int * int

val iter_ops : spec -> (op -> unit) -> unit
(** Stream the run-phase operations in order; deterministic per seed.
    Reads, updates, scans, and RMWs always target live keys; inserts
    always use fresh keys and extend the population. *)

val iter_idx_ops : spec -> (idx_op -> unit) -> unit
(** Same stream as {!iter_ops} at the record-index level. *)

val serving_mixes : records:int -> ops:int -> (string * spec) list
(** The serving-engine mixes at the given scale: [read-latest] (the
    paper preset), [scan-heavy], [rmw-heavy], and [hot-storm]. *)

val pp_spec : spec Fmt.t
