(* YCSB-style workload specifications and operation streams.

   The paper's harness (Section VII-A) uses a preset with 10,000
   key-value pairs, 100,000 operations, 95 % GET / 5 % SET where every
   SET inserts a *new* pair, keys drawn with the "latest" distribution
   and 8-byte keys and values.  That preset is [paper_default]; the
   other classic YCSB mixes are provided for the extended benchmarks. *)

type dist_kind = Uniform | Zipfian | Scrambled_zipfian | Latest | Hotspot

type spec = {
  name : string;
  record_count : int; (* pairs loaded before the run phase *)
  operation_count : int;
  read_proportion : float;
  update_proportion : float; (* SET to an existing key *)
  insert_proportion : float; (* SET inserting a new key *)
  scan_proportion : float; (* multi-get over consecutive record indices *)
  rmw_proportion : float; (* read-modify-write on an existing key *)
  scan_length : int; (* records per scan *)
  hot_fraction : float; (* Hotspot: fraction of records in the hot set *)
  hot_op_fraction : float; (* Hotspot: fraction of draws hitting it *)
  distribution : dist_kind;
  seed : int;
}

let paper_default =
  {
    name = "paper (95% GET / 5% insert, latest)";
    record_count = 10_000;
    operation_count = 100_000;
    read_proportion = 0.95;
    update_proportion = 0.0;
    insert_proportion = 0.05;
    scan_proportion = 0.0;
    rmw_proportion = 0.0;
    scan_length = 16;
    hot_fraction = 0.01;
    hot_op_fraction = 0.9;
    distribution = Latest;
    seed = 42;
  }

(* Classic YCSB core mixes. *)
let workload_a =
  {
    paper_default with
    name = "YCSB-A (50% read / 50% update, zipfian)";
    read_proportion = 0.5;
    update_proportion = 0.5;
    insert_proportion = 0.0;
    distribution = Scrambled_zipfian;
  }

let workload_b =
  { workload_a with
    name = "YCSB-B (95% read / 5% update, zipfian)";
    read_proportion = 0.95;
    update_proportion = 0.05 }

let workload_c =
  { workload_a with
    name = "YCSB-C (100% read, zipfian)";
    read_proportion = 1.0;
    update_proportion = 0.0 }

let workload_d =
  { workload_a with
    name = "YCSB-D (95% read / 5% insert, latest)";
    read_proportion = 0.95;
    update_proportion = 0.0;
    insert_proportion = 0.05;
    distribution = Latest }

let scale spec factor =
  {
    spec with
    record_count = max 1 (spec.record_count / factor);
    operation_count = max 1 (spec.operation_count / factor);
  }

(* The key for record index [i]: scrambled so adjacent indices do not
   produce adjacent keys (YCSB hashes "user<i>" similarly). *)
let key_of_index i = Distribution.scramble (Int64.of_int (i + 1))

type op =
  | Read of int64
  | Update of int64 * int64
  | Insert of int64 * int64
  | Scan of int * int
  | Rmw of int64 * int64

(* Index-level mirror of [op], used by the serving engine to encode
   operation streams compactly (keys are recomputed from the record
   index with [key_of_index] at replay time). *)
type idx_op =
  | IRead of int
  | IUpdate of int * int
  | IInsert of int * int
  | IScan of int * int
  | IRmw of int * int

let make_dist spec n =
  match spec.distribution with
  | Uniform -> Distribution.uniform n
  | Zipfian -> Distribution.zipfian n
  | Scrambled_zipfian -> Distribution.scrambled_zipfian n
  | Latest -> Distribution.latest n
  | Hotspot ->
      Distribution.hotspot ~hot_frac:spec.hot_fraction
        ~op_frac:spec.hot_op_fraction n

(* Stream the run-phase operations to [f] in order, at the record-index
   level.  Inserts append new record indices and extend the key
   population, exactly like the YCSB D workload; the caller loads
   records [0, record_count) first.  Branch order keeps insert as the
   catch-all so the streams of the pre-serving mixes (scan and RMW
   proportions zero) are bit-identical to earlier releases. *)
let iter_idx_ops spec f =
  let rng = Random.State.make [| spec.seed |] in
  let dist = make_dist spec spec.record_count in
  let inserted = ref spec.record_count in
  let t_read = spec.read_proportion in
  let t_update = t_read +. spec.update_proportion in
  let t_scan = t_update +. spec.scan_proportion in
  let t_rmw = t_scan +. spec.rmw_proportion in
  for opno = 1 to spec.operation_count do
    let r = Random.State.float rng 1.0 in
    if r < t_read then f (IRead (Distribution.sample dist rng))
    else if r < t_update then f (IUpdate (Distribution.sample dist rng, opno))
    else if r < t_scan then begin
      let start = Distribution.sample dist rng in
      let len = min spec.scan_length (Distribution.population dist - start) in
      f (IScan (start, max 1 len))
    end
    else if r < t_rmw then f (IRmw (Distribution.sample dist rng, opno))
    else begin
      let idx = !inserted in
      incr inserted;
      Distribution.grow dist;
      f (IInsert (idx, opno))
    end
  done

let iter_ops spec f =
  iter_idx_ops spec (fun iop ->
      match iop with
      | IRead i -> f (Read (key_of_index i))
      | IUpdate (i, opno) -> f (Update (key_of_index i, Int64.of_int opno))
      | IInsert (i, opno) -> f (Insert (key_of_index i, Int64.of_int opno))
      | IScan (start, len) -> f (Scan (start, len))
      | IRmw (i, opno) -> f (Rmw (key_of_index i, Int64.of_int opno)))

(* Serving-scale mixes for the sharded engine: the paper preset scaled
   up, plus scan-heavy, read-modify-write, and hot-key-storm mixes.
   [records]/[ops] parameterize the scale so the same presets drive
   both the quick smoke and the full-scale bench run. *)
let serving_mixes ~records ~ops =
  let base =
    { paper_default with record_count = records; operation_count = ops }
  in
  [
    ( "read-latest",
      { base with name = "read-latest (95% GET / 5% insert, latest)" } );
    ( "scan-heavy",
      {
        base with
        name = "scan-heavy (45% GET / 50% scan-16 / 5% update, zipfian)";
        read_proportion = 0.45;
        update_proportion = 0.05;
        insert_proportion = 0.0;
        scan_proportion = 0.5;
        scan_length = 16;
        distribution = Zipfian;
      } );
    ( "rmw-heavy",
      {
        base with
        name = "rmw-heavy (50% GET / 50% RMW, scrambled-zipfian)";
        read_proportion = 0.5;
        update_proportion = 0.0;
        insert_proportion = 0.0;
        rmw_proportion = 0.5;
        distribution = Scrambled_zipfian;
      } );
    ( "hot-storm",
      {
        base with
        name = "hot-storm (95% GET / 5% update, 0.1% keys take 90% ops)";
        read_proportion = 0.95;
        update_proportion = 0.05;
        insert_proportion = 0.0;
        hot_fraction = 0.001;
        hot_op_fraction = 0.9;
        distribution = Hotspot;
      } );
  ]

let pp_spec ppf s =
  Fmt.pf ppf "%s: %d records, %d ops, %.0f/%.0f/%.0f R/U/I" s.name
    s.record_count s.operation_count
    (100. *. s.read_proportion)
    (100. *. s.update_proportion)
    (100. *. s.insert_proportion);
  if s.scan_proportion > 0.0 || s.rmw_proportion > 0.0 then
    Fmt.pf ppf " +%.0f/%.0f S/M"
      (100. *. s.scan_proportion)
      (100. *. s.rmw_proportion)
