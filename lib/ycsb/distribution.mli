(** Key-popularity distributions in the style of the YCSB core
    generators: uniform, (scrambled) zipfian with Gray's rejection-free
    sampler, and "latest" — a zipfian over recency, the distribution the
    paper's harness uses. *)

type t

val theta : float
(** The zipfian constant (YCSB default 0.99). *)

val uniform : int -> t
val zipfian : int -> t
val scrambled_zipfian : int -> t
val latest : int -> t

val hotspot : ?hot_frac:float -> ?op_frac:float -> int -> t
(** YCSB hotspot generator: the first [hot_frac] (default 0.01) of the
    initial population receives [op_frac] (default 0.9) of the draws;
    the rest go uniformly to the cold records.  The hot set is fixed at
    creation and does not grow with the population, giving a serving
    cache sized to hold it a closed-form expected hit rate of
    [op_frac]. *)

val hot_set_size : t -> int
(** Number of records in the hot set; 0 for non-hotspot
    distributions. *)

val scramble : int64 -> int64
(** splitmix64 finalizer, used for key scrambling. *)

val grow : t -> unit
(** Extend the population by one record (after an insert); O(1). *)

val population : t -> int

val sample : t -> Random.State.t -> int
(** Draw a record index in [0, population). *)

val name : t -> string
