(** A multi-core runtime cluster: the primary runtime plus N-1
    {!Runtime.fork}s, one per additional core, interleaved per µ-event
    by the seeded deterministic scheduler ([Nvml_arch.Multicore]).

    Pool setup, structure creation and recovery run on the primary
    outside {!run}; only the interleaved phase goes through the
    scheduler.  Forks are volatile: after a crash of the primary,
    build a fresh cluster from the restarted primary. *)

type t

val create : ?seed:int -> cores:int -> Runtime.t -> t
(** [create ~cores primary] — core 0 is [primary], cores 1.. are forks.
    [seed] (default 1) drives the scheduler.  [cores >= 1]. *)

val primary : t -> Runtime.t
val rt : t -> int -> Runtime.t
val rts : t -> Runtime.t array
val cores : t -> int
val machine : t -> Nvml_arch.Multicore.t

val run : t -> (int -> unit) array -> unit
(** [run t fns] runs [fns.(i) i] on core [i]'s runtime, interleaved per
    µ-event.  With one core this is a plain call (byte-identical to the
    single-core machine). *)

val stats : t -> Nvml_arch.Multicore.stats
