(** Static program sites.

    Every pointer-operation call site in library or application code is
    described by a [Site.t]: a stable synthetic PC (the address of the
    check code the compiler would emit there, used to index the branch
    predictor) and a [static] flag recording whether pointer-property
    inference resolved the operand's format at compile time.

    [static = true] sites emit no dynamic check in the SW configuration
    (e.g. values flowing straight out of an allocator call); the
    default, [static = false], is the fate of library code reached
    through opaque parameters. *)

type t

val make : ?static:bool -> string -> t
(** Register a new site.  [static] defaults to [false]. *)

val intern : ?static:bool -> string -> t
(** Like {!make}, but idempotent per [(name, static)] pair: callers
    that mint sites at run time (the mini-C interpreter) get the same
    site — and the same synthetic PC — every time the same program
    point is reached again, keeping repeated in-process runs
    cycle-deterministic. *)

val pc : t -> int
val name : t -> string
val is_static : t -> bool

val check_counter : t -> Nvml_telemetry.Telemetry.counter
(** The site's dynamic-check telemetry counter (name ["site.<name>"]). *)

val checks : t -> int
(** Dynamic checks recorded at this site in the current telemetry
    sink. *)

val pp : t Fmt.t

val all : unit -> t list
(** Every site registered so far, in registration order.  Each
    non-static site is a place an explicit-API migration would edit by
    hand — the basis of the productivity analysis. *)

val with_prefix : string -> t list
(** Sites whose name starts with [prefix] (e.g. ["rb."]). *)
