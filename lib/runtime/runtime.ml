(* The execution runtime: one memory-access API with four behaviours,
   matching the four versions the paper evaluates (Section VII-A):

     Volatile — native pointers, everything in DRAM; the overhead-free
                reference point.
     Sw       — user-transparent persistent references implemented by
                compiler-inserted software checks: at every site the
                inference could not resolve statically, the generated
                code branches on the pointer format and calls software
                ra2va/va2ra, whose instructions, kernel-table loads and
                branches are all modeled.
     Hw       — user-transparent persistent references with the storeP
                instruction, POLB and VALB: conversions ride the
                address-generation path (POLB) or the storeP unit
                (POLB/VALB, latency hidden unless the FSM fills up).
                A loaded relative pointer is converted once when
                materialized and the virtual address is reused — the
                Fig. 12 effect.
     Explicit — the explicit-persistent-reference baseline [26]: object
                handles stay relative everywhere, so *every* access to a
                persistent object pays a translation plus API overhead.

   Data structures and applications are written once against this API;
   the mode is picked at runtime creation. *)

module Layout = Nvml_simmem.Layout
module Mem = Nvml_simmem.Mem
module Ptr = Nvml_core.Ptr
module Xlate = Nvml_core.Xlate
module Checks = Nvml_core.Checks
module Semantics = Nvml_core.Semantics
module Pmop = Nvml_pool.Pmop
module Valloc = Nvml_pool.Valloc
module Freelist = Nvml_pool.Freelist
module Cpu = Nvml_arch.Cpu
module Config = Nvml_arch.Config
module Telemetry = Nvml_telemetry.Telemetry
module Hit_miss = Nvml_telemetry.Stats.Hit_miss

(* Check-execution counters: how many pointer-operation executions ran
   a dynamic check versus hit a statically-resolved (elided) site — the
   execution-weighted companion of the paper's ~42 % site-count
   figure. *)
let c_checks_dynamic = Telemetry.counter "checks.dynamic"
let c_checks_elided = Telemetry.counter "checks.elided"
let c_alloc_persistent = Telemetry.counter "alloc.persistent"
let c_alloc_volatile = Telemetry.counter "alloc.volatile"
let c_dealloc = Telemetry.counter "alloc.free"
let c_crashes = Telemetry.counter "runtime.crashes"

type mode = Volatile | Sw | Hw | Explicit

let mode_name = function
  | Volatile -> "volatile"
  | Sw -> "SW"
  | Hw -> "HW"
  | Explicit -> "explicit"

let pp_mode ppf m = Fmt.string ppf (mode_name m)

let all_modes = [ Volatile; Sw; Hw; Explicit ]

type t = {
  mode : mode;
  cfg : Config.t;
  mem : Mem.t;
  pm : Pmop.t;
  mutable valloc : Valloc.t;
  x : Xlate.t;
  cpu : Cpu.t;
  mutable pot_table_va : int64; (* software POT, read by SW ra2va *)
  mutable vat_table_va : int64; (* software VAT, read by SW va2ra *)
  dram_capacity : int;
  (* The "opportunistically kept relative form" of Section IV: when the
     HW version converts a loaded relative pointer to a virtual address,
     the compiler keeps the original relative value live in a register
     for a while; storing the pointer back into NVM shortly after needs
     no VALB translation.  Modeled as a small FIFO of recent
     (virtual address -> relative form) pairs standing in for the live
     register set. *)
  reg_rel : (int64, int64) Hashtbl.t;
  reg_rel_fifo : int64 Queue.t;
  (* Store interception: called with the destination cell of every
     store that targets pool memory, before the store executes.  This
     is the paper's "compiler inserts the necessary runtime logging"
     hook: Txn.instrument points it at the undo log so legacy structure
     code becomes failure-atomic without source changes. *)
  mutable store_interceptor : (Ptr.t -> unit) option;
  (* Buffered persistency: the engine is machine state shared by every
     core ([fork]); the epoch counter is per-core — each core closes
     its own epochs, all of them draining the shared dirty-line
     buffer. *)
  persist : Persist.t;
  mutable persist_ops : int;
}

let reg_rel_capacity = 32

(* Ambient execution-mode default: engines that spin up many internal
   runtimes (model checking, fault injection) flip this around their
   whole run instead of threading [?timing] through every harness.
   Read once per [create]; workers inherit the value set before task
   submission (the pool join is a barrier), so [--jobs N] stays
   deterministic. *)
let default_timing = Atomic.make true

let set_default_timing v = Atomic.set default_timing v

let with_default_timing v f =
  let prev = Atomic.exchange default_timing v in
  Fun.protect ~finally:(fun () -> Atomic.set default_timing prev) f

let create ?(cfg = Config.default) ?(dram_capacity = 1 lsl 27) ?timing
    ?(persist = Persist.Eager) ~mode () =
  let timing =
    match timing with Some v -> v | None -> Atomic.get default_timing
  in
  let mem = Mem.create () in
  let pm = Pmop.create mem in
  let cpu = Cpu.create ~timing cfg mem in
  if not (Persist.is_eager persist) then Cpu.set_relaxed_persistency cpu true;
  {
    mode;
    cfg;
    mem;
    pm;
    valloc = Valloc.create mem ~capacity:dram_capacity;
    x = Xlate.make (Pmop.provider pm);
    cpu;
    pot_table_va = Mem.map_fresh mem Layout.Dram 65536;
    vat_table_va = Mem.map_fresh mem Layout.Dram 65536;
    dram_capacity;
    reg_rel = Hashtbl.create 64;
    reg_rel_fifo = Queue.create ();
    store_interceptor = None;
    persist = Persist.create persist (Mem.phys mem);
    persist_ops = 0;
  }

(* A sibling execution context for one more core of a multi-core
   machine: shares the primary's memory system, pools, volatile
   allocator, translation unit and kernel tables, but runs on its own
   core ({!Cpu.create_sibling}) with its own live-register
   relative-form window and store interceptor.  Forks are per-process
   volatile state: after [crash_and_restart] on the primary they are
   stale (the primary rebuilt its allocator and kernel tables) and must
   be re-created from the restarted primary. *)
let fork (t : t) =
  {
    t with
    cpu = Cpu.create_sibling t.cpu;
    reg_rel = Hashtbl.create 64;
    reg_rel_fifo = Queue.create ();
    store_interceptor = None;
    persist_ops = 0;
  }

let set_store_interceptor t f = t.store_interceptor <- f

(* A store targets pool memory when its destination cell is a relative
   pointer or a virtual address inside the NVM half.  When any pool is
   attached read-only degraded (media damage, see [Pmop]), the data
   path refuses stores into it with a typed [Media_error] — the guard
   costs one integer test while every pool is healthy. *)
let intercept_store t (cell : Ptr.t) =
  if Pmop.any_degraded t.pm then Pmop.assert_cell_writable t.pm cell;
  match t.store_interceptor with
  | None -> ()
  | Some f -> if Ptr.is_relative cell || Layout.is_nvm_va cell then f cell

(* Remember that the virtual address [va] was materialized from the
   relative pointer [rel] (both forms live in registers). *)
let remember_rel t ~va ~rel =
  if t.cfg.Config.keep_relative_opt && not (Hashtbl.mem t.reg_rel va) then begin
    if Queue.length t.reg_rel_fifo >= reg_rel_capacity then
      Hashtbl.remove t.reg_rel (Queue.pop t.reg_rel_fifo);
    Hashtbl.replace t.reg_rel va rel;
    Queue.push va t.reg_rel_fifo
  end

let recall_rel t ~va = Hashtbl.find_opt t.reg_rel va

let mode t = t.mode
let timing t = Cpu.timing t.cpu
let persist t = t.persist
let persist_model t = Persist.model t.persist
let persist_relaxed t = not (Persist.is_eager (Persist.model t.persist))

(* Drain the shared dirty-line buffer now (epoch close, pre-detach
   sync, explicit barrier).  Flush/fence µ-events and stalls are
   attributed to this core. *)
let persist_sync t = Persist.drain t.persist ~cpu:t.cpu ~cfg:t.cfg

(* One application-level operation completed on this core.  Under
   [Epoch {interval}] every [interval]-th boundary closes the epoch and
   drains; the other models do nothing here. *)
let persist_op_boundary t =
  match Persist.model t.persist with
  | Persist.Eager | Persist.Lazy_on_detach -> ()
  | Persist.Epoch { interval } ->
      t.persist_ops <- t.persist_ops + 1;
      if t.persist_ops >= interval then begin
        t.persist_ops <- 0;
        persist_sync t
      end
let cpu t = t.cpu
let mem t = t.mem
let pmop t = t.pm
let xlate t = t.x
let config t = t.cfg
let counters t = Xlate.counters t.x
let snapshot t = Cpu.snapshot t.cpu

(* --- pool management -------------------------------------------------- *)

let create_pool t ~name ~size =
  let pool = Pmop.create_pool t.pm ~name ~size in
  let base = Option.get (Pmop.pool_base t.pm pool) in
  Cpu.map_pool t.cpu ~base ~size:(Pmop.pool_size t.pm pool) ~pool;
  pool

let open_pool t name =
  let base = Pmop.open_pool t.pm name in
  let pool = Pmop.pool_id_of_name t.pm name in
  Cpu.map_pool t.cpu ~base ~size:(Pmop.pool_size t.pm pool) ~pool;
  base

let detach_pool t pool =
  (* A detach is a durability point under every model: whatever is
     still buffered drains first (this is the whole of the lazy
     model's contract). *)
  persist_sync t;
  (match Pmop.pool_base t.pm pool with
  | Some base -> Cpu.unmap_pool t.cpu ~base ~pool
  | None -> ());
  Pmop.detach_pool t.pm pool

(* Crash the machine: volatile memory, mappings and microarchitectural
   state vanish; pools survive but must be re-opened by the caller. *)
let crash_and_restart t =
  if Telemetry.enabled () then begin
    Telemetry.incr c_crashes;
    Telemetry.event "crash_and_restart"
  end;
  (* First reveal what the media actually held: buffered lines never
     reached it, so their words revert to the last-drained values. *)
  Persist.crash t.persist;
  t.persist_ops <- 0;
  List.iter
    (fun pool ->
      match Pmop.pool_base t.pm pool with
      | Some base -> Cpu.unmap_pool t.cpu ~base ~pool
      | None -> ())
    (Pmop.pool_ids t.pm);
  Pmop.crash t.pm;
  Cpu.flush_volatile t.cpu;
  t.valloc <- Valloc.create t.mem ~capacity:t.dram_capacity;
  t.pot_table_va <- Mem.map_fresh t.mem Layout.Dram 65536;
  t.vat_table_va <- Mem.map_fresh t.mem Layout.Dram 65536;
  Hashtbl.reset t.reg_rel;
  Queue.clear t.reg_rel_fifo;
  (* The interceptor is volatile (it belongs to the crashed process);
     recovery code re-registers its own via Txn.instrument if needed. *)
  t.store_interceptor <- None

(* --- generic event helpers --------------------------------------------- *)

let instr t n = Cpu.instr t.cpu n

(* A conditional branch in application/library control flow. *)
let branch t ~site taken =
  Cpu.branch t.cpu ~pc:(Site.pc site) ~taken;
  taken

(* --- software check/conversion cost models (SW mode) ------------------- *)

let count_dynamic_check t =
  let c = Xlate.counters t.x in
  c.Xlate.dynamic_checks <- c.Xlate.dynamic_checks + 1

(* The dynamic check the compiler emits at an unresolved site.  Per
   Fig. 9, the generated code *calls* the shared runtime helpers
   (determineY / determineX / pointerAssignment), so the check branches
   live at fixed PCs shared by every call site; operands of different
   formats arriving from different sites interleave at those PCs, which
   is what makes these branches hard to predict. *)
let pc_determine_y = 8
let pc_determine_x = 16

let sw_check t ~site ~pc_offset:_ (v : Ptr.t) =
  if Site.is_static site then begin
    if Telemetry.enabled () then Telemetry.incr c_checks_elided
  end
  else begin
    count_dynamic_check t;
    if Telemetry.enabled () then begin
      Telemetry.incr c_checks_dynamic;
      Telemetry.incr (Site.check_counter site)
    end;
    Cpu.instr t.cpu t.cfg.sw_check_instrs;
    Cpu.branch t.cpu ~pc:pc_determine_y ~taken:(Ptr.is_relative v);
    if t.cfg.sw_check_branches > 1 then
      Cpu.branch t.cpu ~pc:pc_determine_x
        ~taken:(Checks.determine_x v = Layout.Nvm)
  end

(* Software ra2va: a call that hashes the pool id into the in-memory
   POT and reads the base, then adds the offset. *)
let sw_ra2va t (p : Ptr.t) : int64 =
  if not (Ptr.is_relative p) then p
  else begin
    Cpu.instr t.cpu t.cfg.sw_ra2va_instrs;
    let slot = Ptr.pool_of p land 4095 in
    for i = 0 to t.cfg.sw_ra2va_loads - 1 do
      Cpu.load t.cpu
        (Int64.add t.pot_table_va (Int64.of_int ((slot * 16) + (i * 8))))
    done;
    Xlate.ra2va t.x p
  end

(* Software va2ra: a call that searches the in-memory VAT range table. *)
let sw_va2ra t (p : Ptr.t) : Ptr.t =
  if Ptr.is_relative p || Ptr.is_null p then p
  else begin
    Cpu.instr t.cpu t.cfg.sw_va2ra_instrs;
    for i = 0 to t.cfg.sw_va2ra_loads - 1 do
      Cpu.load t.cpu (Int64.add t.vat_table_va (Int64.of_int (i * 64)))
    done;
    Xlate.va2ra t.x p
  end

(* --- address resolution -------------------------------------------------- *)

(* Resolve the pointer [p] to the virtual address issued to the memory
   system, charging the mode-appropriate conversion cost. *)
let resolve t ~site (p : Ptr.t) : int64 =
  match t.mode with
  | Volatile -> p
  | Sw ->
      sw_check t ~site ~pc_offset:0 p;
      if Ptr.is_relative p then sw_ra2va t p else p
  | Hw ->
      if Ptr.is_relative p then begin
        Cpu.polb_translate t.cpu ~pool:(Ptr.pool_of p);
        Xlate.ra2va t.x p
      end
      else p
  | Explicit ->
      if Ptr.is_relative p then begin
        (* Handle-based API: dereference overhead at every access. *)
        Cpu.instr t.cpu 2;
        Cpu.polb_translate t.cpu ~pool:(Ptr.pool_of p);
        Xlate.ra2va t.x p
      end
      else p

(* --- data accesses --------------------------------------------------------- *)

let addr p off = Ptr.add p (Int64.of_int off)

(* Fused functional+timing access: translate the virtual address once
   and hand the packed physical address to both the timing model and
   the backing store (the pre-fusion code translated twice per access —
   once in [Cpu.load]/[Cpu.store], once in [Mem.read_word]). *)
let mem_load t va =
  let pa = Mem.translate_pa_exn t.mem va in
  Cpu.load_pa t.cpu ~va ~pa;
  if pa land 7 <> 0 then raise (Mem.Unaligned va);
  Mem.read_word_pa t.mem pa

let mem_store t va v =
  let pa = Mem.translate_pa_exn t.mem va in
  Cpu.store_pa t.cpu ~va ~pa;
  if pa land 7 <> 0 then raise (Mem.Unaligned va);
  Mem.write_word_pa t.mem pa v

let load_word t ~site (p : Ptr.t) ~off : int64 =
  let va = resolve t ~site (addr p off) in
  mem_load t va

let store_word t ~site (p : Ptr.t) ~off (v : int64) : unit =
  let cell = addr p off in
  intercept_store t cell;
  let va = resolve t ~site cell in
  mem_store t va v

let load_f64 t ~site p ~off = Int64.float_of_bits (load_word t ~site p ~off)
let store_f64 t ~site p ~off v = store_word t ~site p ~off (Int64.bits_of_float v)

(* Load a *pointer-typed* field.  On top of the plain load, the loaded
   value is materialized into a local, which is where the
   user-transparent schemes convert a relative value to a reusable
   virtual address (SW: inlined check + software ra2va; HW: one POLB
   translation).  The Explicit baseline keeps the raw handle and pays
   per-access translation later instead. *)
let load_ptr t ~site (p : Ptr.t) ~off : Ptr.t =
  let va = resolve t ~site (addr p off) in
  let raw = mem_load t va in
  match t.mode with
  | Volatile | Explicit -> raw
  | Sw ->
      sw_check t ~site ~pc_offset:8 raw;
      if Ptr.is_relative raw then sw_ra2va t raw else raw
  | Hw ->
      if Ptr.is_relative raw then begin
        Cpu.polb_translate t.cpu ~pool:(Ptr.pool_of raw);
        let va = Xlate.ra2va t.x raw in
        remember_rel t ~va ~rel:raw;
        va
      end
      else raw

(* Store a *pointer-typed* value into the cell at [p + off], applying
   the Fig. 3 pointerAssignment semantics: the stored representation is
   dictated by where the destination cell lives. *)
let store_ptr t ~site (p : Ptr.t) ~off (value : Ptr.t) : unit =
  let cell = addr p off in
  intercept_store t cell;
  match t.mode with
  | Volatile -> mem_store t cell value
  | Sw ->
      let va = resolve t ~site cell in
      (* Inlined pointerAssignment: checks on destination and source. *)
      sw_check t ~site ~pc_offset:16 cell;
      sw_check t ~site ~pc_offset:24 value;
      let stored =
        match Checks.determine_x cell with
        | Layout.Nvm -> sw_va2ra t value
        | Layout.Dram -> if Ptr.is_relative value then sw_ra2va t value else value
      in
      mem_store t va stored
  | Hw ->
      let dst_va = Xlate.ra2va t.x cell in
      let cell_loc = Checks.determine_x cell in
      (* Operand conversions go straight into the core's reusable xop
         buffer (destination first, then source — same order as the old
         [rd_ops @ rs_ops] lists) so the hot path allocates nothing. *)
      Cpu.xop_reset t.cpu;
      if Ptr.is_relative cell then Cpu.xop_push_polb t.cpu ~pool:(Ptr.pool_of cell);
      let stored =
        match (cell_loc, Ptr.format value) with
        | Layout.Nvm, Ptr.Relative -> value
        | Layout.Nvm, Ptr.Virtual ->
            if Ptr.is_null value then value
            else (
              (* If this virtual address was materialized from a
                 relative pointer still live in a register, the compiler
                 stores that relative form directly — no VALB needed
                 (the Section IV "keep relative opportunistically"
                 optimization). *)
              match recall_rel t ~va:value with
              | Some rel -> rel
              | None ->
                  let r = Xlate.va2ra t.x value in
                  Cpu.xop_push_valb t.cpu ~va:value;
                  r)
        | Layout.Dram, Ptr.Relative ->
            let r = Xlate.ra2va t.x value in
            Cpu.xop_push_polb t.cpu ~pool:(Ptr.pool_of value);
            r
        | Layout.Dram, Ptr.Virtual -> value
      in
      let dst_pa = Mem.translate_pa_exn t.mem dst_va in
      Cpu.store_p_buffered t.cpu ~dst_va ~dst_pa;
      if dst_pa land 7 <> 0 then raise (Mem.Unaligned dst_va);
      Nvml_simmem.Physmem.fire (Mem.phys t.mem) Nvml_simmem.Fi.Storep_retire;
      Mem.write_word_pa t.mem dst_pa stored
  | Explicit ->
      (* Handles are stored as-is; only the destination access needs a
         translation. *)
      let va = resolve t ~site cell in
      mem_store t va value

(* --- pointer predicates ----------------------------------------------------- *)

(* Charge the mode-appropriate cost for [conversions] ra2va
   translations performed inside a pointer-valued operation. *)
let charge_conversions t ~conversions ~pool =
  match t.mode with
  | Volatile | Explicit -> ()
  | Sw ->
      if conversions > 0 then
        Cpu.instr t.cpu (conversions * t.cfg.sw_ra2va_instrs)
  | Hw ->
      for _ = 1 to conversions do
        Cpu.polb_translate t.cpu ~pool:(pool ())
      done

(* Lazy: only forced when a conversion actually happened, in which case
   at least one operand is relative. *)
let some_pool p q () = if Ptr.is_relative p then Ptr.pool_of p else Ptr.pool_of q

(* p op q for relational/equality operators.  Conversion costs follow
   Fig. 4: mixed-format operands are normalized, same-pool relative
   pairs and NULL tests are translation-free. *)
let ptr_compare t ~site op (p : Ptr.t) (q : Ptr.t) : bool =
  Cpu.instr t.cpu 1;
  (match t.mode with
  | Volatile | Explicit -> ()
  | Sw ->
      sw_check t ~site ~pc_offset:0 p;
      sw_check t ~site ~pc_offset:8 q
  | Hw -> ());
  let before = (Xlate.counters t.x).Xlate.ra2va in
  let result = Semantics.compare_ptr t.x op p q in
  let conversions = (Xlate.counters t.x).Xlate.ra2va - before in
  charge_conversions t ~conversions ~pool:(some_pool p q);
  result

let ptr_eq t ~site (p : Ptr.t) (q : Ptr.t) : bool =
  ptr_compare t ~site Semantics.Eq p q

(* p - q in elements (Fig. 4 additive operators). *)
let ptr_diff t ~site (p : Ptr.t) (q : Ptr.t) ~elem_size : int64 =
  Cpu.instr t.cpu 2;
  (match t.mode with
  | Volatile | Explicit -> ()
  | Sw ->
      sw_check t ~site ~pc_offset:0 p;
      sw_check t ~site ~pc_offset:8 q
  | Hw -> ());
  let before = (Xlate.counters t.x).Xlate.ra2va in
  let result = Semantics.diff t.x p q ~elem_size in
  let conversions = (Xlate.counters t.x).Xlate.ra2va - before in
  charge_conversions t ~conversions ~pool:(some_pool p q);
  result

(* (I)p — pointer-to-integer cast: a relative pointer exposes its
   virtual address (Fig. 4 cast operators). *)
let ptr_to_int t ~site (p : Ptr.t) : int64 =
  Cpu.instr t.cpu 1;
  match t.mode with
  | Volatile -> p
  | Explicit -> Xlate.ra2va t.x p
  | Sw ->
      sw_check t ~site ~pc_offset:0 p;
      if Ptr.is_relative p then sw_ra2va t p else p
  | Hw ->
      if Ptr.is_relative p then begin
        Cpu.polb_translate t.cpu ~pool:(Ptr.pool_of p);
        Xlate.ra2va t.x p
      end
      else p

let ptr_is_null t ~site (p : Ptr.t) : bool =
  Cpu.instr t.cpu 1;
  (match t.mode with
  | Sw -> sw_check t ~site ~pc_offset:0 p
  | Volatile | Hw | Explicit -> ());
  Ptr.is_null p

(* --- allocation --------------------------------------------------------------- *)

(* Cost model for an allocator call: some bookkeeping instructions plus
   free-list traffic against the arena header. *)
let charge_alloc t ~arena_va =
  Cpu.instr t.cpu 40;
  Cpu.load t.cpu arena_va;
  Cpu.load t.cpu (Int64.add arena_va 16L);
  Cpu.store t.cpu (Int64.add arena_va 16L)

let valloc_arena_va t = Valloc.base t.valloc

let pool_arena_va t pool =
  match Pmop.pool_base t.pm pool with
  | Some base -> base
  | None -> invalid_arg "Runtime: pool not mapped"

(* Allocate [size] bytes.  [persistent] requests pool memory; in the
   Volatile configuration there is no NVM, so everything lands in DRAM
   (that version "cannot work on real NVM systems" but is the clean
   reference point).  Persistent allocations return relative-format
   pointers, as pmalloc is defined to. *)
let alloc t ?pool ~persistent size : Ptr.t =
  match (t.mode, persistent) with
  | Volatile, _ | _, false ->
      if Telemetry.enabled () then Telemetry.incr c_alloc_volatile;
      charge_alloc t ~arena_va:(valloc_arena_va t);
      Valloc.malloc t.valloc size
  | (Sw | Hw | Explicit), true ->
      let pool =
        match pool with
        | Some p -> p
        | None -> invalid_arg "Runtime.alloc: persistent alloc needs a pool"
      in
      if Telemetry.enabled () then Telemetry.incr c_alloc_persistent;
      charge_alloc t ~arena_va:(pool_arena_va t pool);
      Pmop.pmalloc t.pm ~pool size

(* Where a data structure's nodes live.  [Pool_region] degrades to DRAM
   in the Volatile configuration (that version has no NVM at all). *)
type region = Dram_region | Pool_region of int

let alloc_in t region size =
  match region with
  | Dram_region -> alloc t ~persistent:false size
  | Pool_region pool -> alloc t ~pool ~persistent:true size

(* The region an existing object lives in — how a re-attached structure
   discovers where to allocate new nodes. *)
let region_of_ptr t (p : Ptr.t) : region =
  if Ptr.is_relative p then Pool_region (Ptr.pool_of p)
  else if Layout.is_nvm_va p then
    match Pmop.pool_of_va t.pm p with
    | Some (pool, _) -> Pool_region pool
    | None -> Dram_region
  else Dram_region

let dealloc t (p : Ptr.t) : unit =
  if Telemetry.enabled () then Telemetry.incr c_dealloc;
  (* pfree is one of the functions marked as accepting relative
     addresses: a virtual address into the NVM half is converted before
     the call (the compiler inserts the va2ra). *)
  let p =
    if Ptr.is_virtual p && Layout.is_nvm_va p then Xlate.va2ra t.x p else p
  in
  if Ptr.is_relative p then begin
    charge_alloc t ~arena_va:(pool_arena_va t (Ptr.pool_of p));
    Pmop.pfree t.pm p
  end
  else begin
    charge_alloc t ~arena_va:(valloc_arena_va t);
    Valloc.free t.valloc p
  end

(* --- pool roots ----------------------------------------------------------------- *)

(* The root slot is an ordinary NVM cell inside the pool header, so the
   usual pointer store/load semantics apply to it. *)
let root_cell ~pool = Ptr.make_relative ~pool ~offset:Freelist.off_root

let set_root t ~site ~pool (p : Ptr.t) =
  store_ptr t ~site (root_cell ~pool) ~off:0 p

(* Container roots are the one anchor applications follow blindly after
   a restart, so a pointer-shaped root is bounds-checked against its
   pool's heap before it is handed out: a rotted root raises a typed
   [Media_error] here instead of dereferencing garbage downstream. *)
let get_root t ~site ~pool : Ptr.t =
  let p = load_ptr t ~site (root_cell ~pool) ~off:0 in
  Pmop.check_root_target t.pm p;
  p

(* --- telemetry publication ---------------------------------------------- *)

(* The cache-like structures keep plain module-local counters on the
   hot paths; this publishes their totals into the current telemetry
   sink in one cold pass.  Registered eagerly so the counters appear
   (as zeros) in every stats dump. *)
let pub_hit_miss =
  let handles = Hashtbl.create 16 in
  List.iter
    (fun base ->
      Hashtbl.replace handles base
        ( Telemetry.counter (base ^ ".hit"),
          Telemetry.counter (base ^ ".miss") ))
    [
      "tlb.l1"; "tlb.l2"; "cache.l1"; "cache.l2"; "cache.l3"; "polb"; "valb";
      "vspace.tc";
    ];
  fun base (hm : Hit_miss.t) ->
    let chit, cmiss = Hashtbl.find handles base in
    Telemetry.add chit (Hit_miss.hits hm);
    Telemetry.add cmiss (Hit_miss.misses hm)

let c_storep_issued = Telemetry.counter "storep.issued"
let c_storep_stalls = Telemetry.counter "storep.stall_cycles"
let c_pow_walks = Telemetry.counter "polb.pow_walks"
let c_vaw_walks = Telemetry.counter "valb.vaw_walks"
let c_vaw_nodes = Telemetry.counter "valb.vaw_nodes"
let c_dram_accesses = Telemetry.counter "mem.dram_accesses"
let c_nvm_accesses = Telemetry.counter "mem.nvm_accesses"
let c_phys_reads = Telemetry.counter "physmem.reads"
let c_phys_writes = Telemetry.counter "physmem.writes"
let c_phys_dram_frames = Telemetry.counter "physmem.dram_frames"
let c_phys_nvm_frames = Telemetry.counter "physmem.nvm_frames"
let c_x_ra2va = Telemetry.counter "xlate.ra2va"
let c_x_va2ra = Telemetry.counter "xlate.va2ra"
let c_x_checks = Telemetry.counter "xlate.dynamic_checks"

module Cache = Nvml_arch.Cache
module Valb = Nvml_arch.Valb
module Storep_unit = Nvml_arch.Storep_unit
module Vspace = Nvml_simmem.Vspace
module Physmem = Nvml_simmem.Physmem

let publish_stats t =
  if Telemetry.enabled () then begin
    List.iter
      (fun (n, c) ->
        let base =
          match n with
          | "l1_tlb" -> "tlb.l1"
          | "l2_tlb" -> "tlb.l2"
          | "polb" -> "polb"
          | n -> "cache." ^ n
        in
        pub_hit_miss base (Cache.stats c))
      (Cpu.caches t.cpu);
    pub_hit_miss "valb" (Valb.stats (Cpu.valb t.cpu));
    pub_hit_miss "vspace.tc" (Vspace.tc_stats (Mem.vspace t.mem));
    let sp = Cpu.storep t.cpu in
    Telemetry.add c_storep_issued (Storep_unit.issued sp);
    Telemetry.add c_storep_stalls (Storep_unit.stall_cycles sp);
    let s = Cpu.snapshot t.cpu in
    Telemetry.add c_pow_walks s.Cpu.pow_walks;
    Telemetry.add c_vaw_walks s.Cpu.vaw_walks;
    Telemetry.add c_vaw_nodes s.Cpu.vaw_nodes;
    Telemetry.add c_dram_accesses s.Cpu.dram_accesses;
    Telemetry.add c_nvm_accesses s.Cpu.nvm_accesses;
    let phys = Mem.phys t.mem in
    Telemetry.add c_phys_reads (Physmem.reads phys);
    Telemetry.add c_phys_writes (Physmem.writes phys);
    Telemetry.add c_phys_dram_frames (Physmem.dram_frames_allocated phys);
    Telemetry.add c_phys_nvm_frames (Physmem.nvm_frames_allocated phys);
    let xc = Xlate.counters t.x in
    Telemetry.add c_x_ra2va xc.Xlate.ra2va;
    Telemetry.add c_x_va2ra xc.Xlate.va2ra;
    Telemetry.add c_x_checks xc.Xlate.dynamic_checks;
    Persist.publish t.persist
  end
