(** Buffered persistency engine: the retention-model spectrum of
    Wang & Tuck between eager per-store persistence and epoch/lazy
    draining of dirty lines.

    The media always holds the {e newest} value of every word; under a
    relaxed model the engine remembers per dirty word the value that is
    actually durable.  {!drain} flushes whole 64-byte lines with
    explicitly modeled flush+fence µ-events ({!Fi.Flush_line},
    {!Fi.Fence}); {!crash} pokes every still-buffered word back to its
    durable value so the rebooted machine sees exactly what the media
    retained. *)

type model =
  | Eager  (** Every store persists in place — the historical behavior,
               bit-identical to the engine not existing. *)
  | Epoch of { interval : int }
      (** Drain every [interval] operations (per-core counters, shared
          drain buffer). *)
  | Lazy_on_detach  (** Drain only at pool detach / explicit sync. *)

val model_name : model -> string
(** ["eager"], ["epoch:N"], ["lazy"]. *)

val model_of_string : string -> (model, string) result
(** Inverse of {!model_name}; accepts [eager | epoch:N | lazy]. *)

val is_eager : model -> bool

type t

val create : model -> Nvml_simmem.Physmem.t -> t
(** Create the engine for one machine.  For a relaxed model this arms
    the {!Nvml_simmem.Physmem.set_persist_note} hook; an [Eager] engine
    leaves the write path untouched. *)

val model : t -> model
val pending_words : t -> int

val with_eager : t -> (unit -> 'a) -> 'a
(** Run [f] with buffering suspended: stores made inside reach media
    immediately (and un-buffer any word they overwrite).  Used by the
    undo log — log records must be durable before their epoch's data
    drains — and by recovery replay. *)

val set_drain_hook : t -> (unit -> unit) option -> unit
(** Hook run at the end of every non-empty {!drain}, after the fence:
    the undo log registers its truncation here, so a completed drain
    also retires the log entries it made redundant.  Cleared by
    {!crash}. *)

val drain : t -> cpu:Nvml_arch.Cpu.t -> cfg:Nvml_arch.Config.t -> unit
(** Drain every buffered line in ascending address order: per line one
    {!Nvml_simmem.Fi.Flush_line} µ-event (a fault-injection hook may
    raise — that line and everything after it is lost) and
    [cfg.flush_latency] stall cycles on [cpu]; then one
    {!Nvml_simmem.Fi.Fence}, [cfg.fence_latency] stall cycles and the
    drain hook.  Fast mode counts the events but charges nothing.
    No-op under [Eager] or with nothing pending. *)

val buffered_in_line : t -> frame:int -> line:int -> (int * int64) list
(** The still-buffered words of one 64-byte line, as (word index within
    the frame, durable value) pairs in address order — what a crash
    mid-flush of that line is tearing between.  Empty under [Eager]. *)

val durable_value : t -> frame:int -> word_index:int -> int64
(** What a crash at this instant would retain for the word: the
    buffered epoch-start value if dirty, the media value otherwise.
    The contract oracle's ground truth. *)

val crash : t -> unit
(** Power failure: poke every still-buffered word back to its durable
    value, forget the buffer, reset passthrough depth and drain hook.
    The persist note stays armed — the model is a property of the
    machine, not of the power cycle. *)

val publish : t -> unit
(** Fold the engine's event counts into telemetry ([persist.*]). *)

val flushes : t -> int
val fences : t -> int
val drains : t -> int
val stores_buffered : t -> int
