(** The execution runtime: one memory-access API with four behaviours,
    matching the four versions the paper evaluates (Section VII-A).

    - {b Volatile} — native pointers, everything in DRAM; the
      overhead-free reference point.
    - {b Sw} — user-transparent persistent references by
      compiler-inserted software checks; check instructions,
      kernel-table loads and branches are all modeled.
    - {b Hw} — user-transparent persistent references with the storeP
      instruction, POLB and VALB; a loaded relative pointer is converted
      once when materialized and the virtual address is reused (the
      Fig. 12 effect), and recently materialized relative forms are kept
      live so store-backs need no VALB translation (the Section IV
      "keep relative opportunistically" optimization).
    - {b Explicit} — the explicit-persistent-reference baseline: object
      handles stay relative everywhere, so every access to a persistent
      object pays a translation plus handle-API overhead.

    Data structures and applications are written once against this API;
    the mode is chosen at runtime creation, and the same code produces
    bit-identical results in every mode. *)

module Ptr = Nvml_core.Ptr
module Xlate = Nvml_core.Xlate
module Cpu = Nvml_arch.Cpu
module Config = Nvml_arch.Config

type mode = Volatile | Sw | Hw | Explicit

val mode_name : mode -> string
val pp_mode : mode Fmt.t
val all_modes : mode list

type t

val create :
  ?cfg:Config.t ->
  ?dram_capacity:int ->
  ?timing:bool ->
  ?persist:Persist.model ->
  mode:mode ->
  unit ->
  t
(** [timing] selects cycle-accurate ([true]) or fast functional
    ([false]) simulation; when omitted it falls back to the ambient
    default (see {!set_default_timing}).  Both modes perform identical
    pointer-format checks, POW/VAW translations, crash-point hooks and
    media hooks; fast mode skips all cache/TLB/predictor/storeP timing,
    so [cycles = instrs] and timing statistics read as zero.

    [persist] selects the persistency model (default {!Persist.Eager},
    which is bit-identical to the pre-existing behavior).  Relaxed
    models buffer dirty NVM lines in the machine-wide {!Persist.t}
    engine and drain them at epoch boundaries
    ({!persist_op_boundary}), explicit syncs ({!persist_sync}) and
    {!detach_pool}. *)

val mode : t -> mode

(** {1 Persistency model} *)

val persist : t -> Persist.t
(** The machine-wide buffered-persistency engine (shared by forks). *)

val persist_model : t -> Persist.model
val persist_relaxed : t -> bool
(** [true] iff the model buffers (epoch or lazy). *)

val persist_sync : t -> unit
(** Drain the shared dirty-line buffer now; flush/fence µ-events and
    stall cycles are attributed to this core.  No-op under [Eager]. *)

val persist_op_boundary : t -> unit
(** Mark the end of one application-level operation on this core.
    Under [Epoch {interval}] every [interval]-th boundary closes the
    core's epoch and drains the shared buffer; no-op otherwise. *)

val fork : t -> t
(** A sibling execution context for one more core of a multi-core
    machine: shares the primary's memory system, pools, volatile
    allocator, translation unit and kernel tables, but runs on its own
    core ({!Cpu.create_sibling} — private front end, shared
    L2/L3/POLB/VALB/VATB) with its own live-register window and store
    interceptor.  Forks are per-process volatile state: after
    {!crash_and_restart} on the primary they are stale and must be
    re-created from the restarted primary. *)

val timing : t -> bool
(** [true] iff this runtime's core models timing. *)

val set_default_timing : bool -> unit
(** Set the ambient default used by {!create} when [?timing] is
    omitted.  Process-wide; initial value is [true]. *)

val with_default_timing : bool -> (unit -> 'a) -> 'a
(** [with_default_timing v f] runs [f ()] with the ambient default set
    to [v], restoring the previous value afterwards (even on raise).
    Engines that create runtimes internally (model checking, fault
    injection) use this to switch whole runs to fast mode. *)

val cpu : t -> Cpu.t
val mem : t -> Nvml_simmem.Mem.t
val pmop : t -> Nvml_pool.Pmop.t
val xlate : t -> Xlate.t
val config : t -> Config.t
val counters : t -> Xlate.counters
val snapshot : t -> Cpu.snapshot

(** {1 Pool management} *)

val create_pool : t -> name:string -> size:int -> int
(** Create, map and register a pool; returns its ID. *)

val open_pool : t -> string -> int64
(** Re-open a pool after a crash; returns its (fresh) base address. *)

val detach_pool : t -> int -> unit
(** Unmap and detach the pool.  A detach is a durability point under
    every persistency model: the shared buffer drains first (this is
    the whole of the [Lazy_on_detach] contract). *)

val crash_and_restart : t -> unit
(** Simulated power failure plus reboot.

    Erased: all DRAM contents and virtual mappings (every pool becomes
    detached), microarchitectural state (TLBs, caches, POLB/VALB,
    storeP queue), the volatile allocator, the kept-relative register
    set, and any store interceptor ({!set_store_interceptor}) or pool
    metadata hook — they belong to the crashed process.  Survives: pool
    NVM frames (including allocator metadata, root slots and any undo
    log) and the pool registry.  The caller re-opens pools with
    {!open_pool}, which maps them at different bases. *)

(** {1 Event helpers} *)

val instr : t -> int -> unit
(** Account [n] non-memory instructions. *)

val branch : t -> site:Site.t -> bool -> bool
(** Record a conditional branch at [site] with the given outcome;
    returns the outcome for use in [if]. *)

(** {1 Data accesses} *)

val load_word : t -> site:Site.t -> Ptr.t -> off:int -> int64
val store_word : t -> site:Site.t -> Ptr.t -> off:int -> int64 -> unit
val load_f64 : t -> site:Site.t -> Ptr.t -> off:int -> float
val store_f64 : t -> site:Site.t -> Ptr.t -> off:int -> float -> unit

val load_ptr : t -> site:Site.t -> Ptr.t -> off:int -> Ptr.t
(** Load a pointer-typed field.  In the user-transparent modes the
    loaded value is materialized: a relative value is converted to a
    reusable virtual address (SW: inlined check + software ra2va; HW:
    one POLB translation).  The Explicit baseline returns the raw
    handle and pays per-access translation later instead. *)

val store_ptr : t -> site:Site.t -> Ptr.t -> off:int -> Ptr.t -> unit
(** Store a pointer-typed value, applying the Fig. 3 pointerAssignment
    semantics: the stored representation is dictated by where the
    destination cell lives.  In HW mode this is a storeP instruction. *)

val set_store_interceptor : t -> (Ptr.t -> unit) option -> unit
(** Install a function called with the destination cell of every
    {!store_word}/{!store_ptr} that targets pool memory (relative cell
    or NVM virtual address), before the store executes.  This is the
    compiler-inserted instrumentation point [Txn.instrument] uses to
    undo-log legacy stores; it is volatile state, cleared by
    {!crash_and_restart}. *)

(** {1 Pointer predicates (Fig. 4)} *)

val ptr_compare :
  t -> site:Site.t -> Nvml_core.Semantics.comparison -> Ptr.t -> Ptr.t -> bool

val ptr_eq : t -> site:Site.t -> Ptr.t -> Ptr.t -> bool
val ptr_is_null : t -> site:Site.t -> Ptr.t -> bool
val ptr_diff : t -> site:Site.t -> Ptr.t -> Ptr.t -> elem_size:int -> int64
val ptr_to_int : t -> site:Site.t -> Ptr.t -> int64

(** {1 Allocation} *)

type region = Dram_region | Pool_region of int
(** Where a structure's objects live.  [Pool_region] degrades to DRAM
    in the Volatile configuration, which has no NVM at all. *)

val alloc : t -> ?pool:int -> persistent:bool -> int -> Ptr.t
(** Allocate; persistent allocations return relative-format pointers
    (pmalloc is marked as returning relative addresses). *)

val alloc_in : t -> region -> int -> Ptr.t

val region_of_ptr : t -> Ptr.t -> region
(** The region an existing object lives in — how a re-attached
    structure discovers where to allocate new nodes. *)

val dealloc : t -> Ptr.t -> unit

(** {1 Pool roots} *)

val set_root : t -> site:Site.t -> pool:int -> Ptr.t -> unit
(** Anchor a pointer in the pool's root slot (an ordinary NVM cell, so
    pointer-store semantics apply and the stored form is relative). *)

val get_root : t -> site:Site.t -> pool:int -> Ptr.t

(** {1 Telemetry} *)

val publish_stats : t -> unit
(** Publish this runtime's structural statistics (TLB/cache/POLB/VALB
    hits and misses, storeP issue/stall totals, translation-cache and
    physical-memory traffic, translation counts) into the current
    telemetry sink as counters.  A no-op when telemetry is disabled.
    Call once, at the end of a run — the values are cumulative
    totals. *)
