(* A multi-core runtime cluster: the primary runtime plus N-1 forks,
   one per additional core, driven by the seeded µ-event scheduler in
   [Nvml_arch.Multicore].  Core 0 is the primary; cores 1.. are
   {!Runtime.fork}s sharing the memory system, pools, volatile
   allocator and kernel tables, each on a {!Cpu.create_sibling} core
   (private front end, shared L2/L3/POLB/VALB/VATB).

   Pool setup, structure creation and recovery run on the primary
   *outside* {!run}; only the interleaved phase goes through the
   scheduler.  Forks are volatile: after a crash of the primary, build
   a fresh cluster from the restarted primary. *)

module Multicore = Nvml_arch.Multicore
module Cpu = Nvml_arch.Cpu

type t = {
  rts : Runtime.t array; (* rts.(0) is the primary *)
  mc : Multicore.t;
}

let create ?(seed = 1) ~cores primary =
  if cores < 1 then invalid_arg "Cluster.create: cores must be >= 1";
  let rts =
    Array.init cores (fun i -> if i = 0 then primary else Runtime.fork primary)
  in
  let mc = Multicore.create ~seed (Array.map Runtime.cpu rts) in
  { rts; mc }

let primary t = t.rts.(0)
let rt t i = t.rts.(i)
let rts t = t.rts
let cores t = Array.length t.rts
let machine t = t.mc

let run t fns = Multicore.run t.mc fns
let stats t = Multicore.stats t.mc
