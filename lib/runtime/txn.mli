(** Persistent undo-log transactions — the crash-consistency layer the
    paper's Section VI assumes the application provides.

    The undo log lives inside the pool, so it survives crashes; every
    tracked store first appends (cell, previous value) to the log, and
    a crash that interrupts an active transaction is healed by
    {!recover}, which replays the log backwards.

    Under a relaxed persistency model ([Runtime.persist_relaxed]) the
    log's own stores are written through to media immediately
    ([Persist.with_eager]) — the write-ahead rule "log records reach
    media before their epoch's data drains" — and the log covers the
    whole open {e epoch} rather than one operation: {!commit} does not
    truncate (the committed data is still buffered), truncation happens
    when the epoch drains, and a crash before the drain rolls the whole
    epoch back to the last drained state.  {!abort} consequently also
    rolls back to the last epoch boundary, not to the start of the
    current operation. *)

module Ptr = Nvml_core.Ptr

type t

exception Log_full
exception Not_active
exception Already_active

val default_capacity : int

val create : Runtime.t -> pool:int -> ?capacity:int -> unit -> t
(** Allocate a fresh log inside [pool]. *)

val header : t -> Ptr.t
(** The log object's handle — anchor it (e.g. in the pool root) so
    {!attach} can find it after a restart. *)

val attach : Runtime.t -> Ptr.t -> t

val log_bytes : t -> int
(** Total size of the log object (header plus entry slots) — the
    pool-offset extent a fault injector must treat as covered by the
    log protocol's 8-byte-atomicity assumption. *)

val is_active : t -> bool
val count : t -> int
(** Entries currently in the log. *)

val begin_ : t -> unit
(** @raise Already_active on nested transactions. *)

val store_word : t -> site:Site.t -> Ptr.t -> off:int -> int64 -> unit
(** Logged store; the target must be pool memory.
    @raise Not_active outside a transaction.
    @raise Log_full past the log capacity. *)

val store_ptr : t -> site:Site.t -> Ptr.t -> off:int -> Ptr.t -> unit

val commit : t -> unit
val abort : t -> unit
(** Roll every logged store back, newest first. *)

type recovery = Clean | Rolled_back of int

val recover : t -> recovery
(** Post-crash: undo an interrupted transaction if the log is active.

    [Rolled_back n] restores the exact pre-transaction image when
    [n > 0].  [Rolled_back 0] and [Clean] are both possible after a
    crash {e between} the two commit stores (count is truncated before
    the active flag clears), in which case the post-transaction image
    is already durable — callers validating atomicity must accept
    either snapshot for those two results. *)

val instrument : t -> unit
(** Register this transaction as the runtime's store logger — the
    paper's "compiler inserts the necessary runtime logging": while a
    transaction is active, every store targeting pool memory through
    [Runtime.store_word]/[store_ptr] {e and} every allocator-metadata
    write (pmalloc/pfree freelist updates) is undo-logged before it
    executes, so unmodified legacy structure code becomes
    failure-atomic between {!begin_} and {!commit}.  The hooks are
    volatile: a [Runtime.crash_and_restart] clears them, and recovery
    code re-registers on a freshly {!attach}ed log if desired. *)

val uninstrument : Runtime.t -> unit
(** Clear the runtime's store interceptor and allocator hook. *)

val run : t -> (unit -> 'a) -> 'a
(** Run the function transactionally: commit on return, roll back and
    re-raise on exception. *)
