(* Per-operation latency bracketing: cycle stamps around each top-level
   persistent operation, decomposed through the cycle-attribution
   machinery into five components that sum exactly to the op's cycles,
   plus a bounded deterministic reservoir of the slowest ops with their
   marker spans for Chrome-trace dumps.

   The probe state is a handful of mutable ints reused across ops, and
   the latency recorder's cells are preallocated, so the steady-state
   bracketing cost per op is two [Cpu.attribution] reads (each one
   small record) and integer arithmetic — nothing the timing model can
   observe. *)

module Cpu = Nvml_arch.Cpu
module Telemetry = Nvml_telemetry.Telemetry
module Latency = Nvml_telemetry.Latency
module Json = Nvml_telemetry.Json

type components = {
  base : int;
  check : int;
  translation : int;
  stall : int;
  media : int;
}

let zero_components =
  { base = 0; check = 0; translation = 0; stall = 0; media = 0 }

let add_components a b =
  {
    base = a.base + b.base;
    check = a.check + b.check;
    translation = a.translation + b.translation;
    stall = a.stall + b.stall;
    media = a.media + b.media;
  }

let components_total c = c.base + c.check + c.translation + c.stall + c.media

(* The five-way grouping: base absorbs issue + TLB + cache-hit cycles;
   the other four keep their attribution source.  Each of the seven
   attribution fields is used exactly once, so the group totals sum to
   [Cpu.attribution_total]. *)
let components_of_attr (a : Cpu.attribution) =
  {
    base = a.Cpu.base + a.Cpu.tlb + a.Cpu.cache;
    check = a.Cpu.branch;
    translation = a.Cpu.xlate;
    stall = a.Cpu.storep;
    media = a.Cpu.mem;
  }

type sample = {
  op : string;
  seq : int;
  cell : string;
  cycles : int;
  comps : components;
  spans : (string * int * int) list;
}

(* Total order on samples, slowest first: more cycles, then smaller
   cell label, then smaller sequence number.  Deterministic, so the
   reservoir contents do not depend on merge order. *)
let compare_slowest a b =
  match compare b.cycles a.cycles with
  | 0 -> ( match compare a.cell b.cell with 0 -> compare a.seq b.seq | c -> c)
  | c -> c

let max_marks = 8

type t = {
  cell_label : string;
  k : int;
  lat : Latency.t;
  mutable totals : components;
  mutable next_seq : int;
  (* probe state, reused across ops *)
  mutable in_op : bool;
  mutable p_cycles : int;
  mutable p_base : int;
  mutable p_branch : int;
  mutable p_tlb : int;
  mutable p_cache : int;
  mutable p_mem : int;
  mutable p_xlate : int;
  mutable p_storep : int;
  mark_names : string array;
  mark_cycles : int array;
  mutable mark_len : int;
  mutable slow : sample list; (* sorted slowest first, length <= k *)
}

(* The telemetry-sink mirror of every recorder: op latencies also land
   in the current sink's "op.cycles" recorder (when telemetry is
   enabled), so stats documents and j1-vs-j4 merge checks see them. *)
let tl_op_cycles = Telemetry.latency "op.cycles"

let create ?(k = 8) ~cell () =
  {
    cell_label = cell;
    k = max 0 k;
    lat = Latency.create ();
    totals = zero_components;
    next_seq = 0;
    in_op = false;
    p_cycles = 0;
    p_base = 0;
    p_branch = 0;
    p_tlb = 0;
    p_cache = 0;
    p_mem = 0;
    p_xlate = 0;
    p_storep = 0;
    mark_names = Array.make max_marks "";
    mark_cycles = Array.make max_marks 0;
    mark_len = 0;
    slow = [];
  }

let cell t = t.cell_label

let op_begin t cpu =
  let a = Cpu.attribution cpu in
  t.in_op <- true;
  t.p_cycles <- Cpu.cycles cpu;
  t.p_base <- a.Cpu.base;
  t.p_branch <- a.Cpu.branch;
  t.p_tlb <- a.Cpu.tlb;
  t.p_cache <- a.Cpu.cache;
  t.p_mem <- a.Cpu.mem;
  t.p_xlate <- a.Cpu.xlate;
  t.p_storep <- a.Cpu.storep;
  t.mark_len <- 0

let mark t cpu name =
  if t.in_op && t.mark_len < max_marks then begin
    t.mark_names.(t.mark_len) <- name;
    t.mark_cycles.(t.mark_len) <- Cpu.cycles cpu - t.p_cycles;
    t.mark_len <- t.mark_len + 1
  end

(* Insert [s] into the sorted reservoir, dropping the least-slow sample
   when over capacity. *)
let admit t s =
  if t.k > 0 then begin
    let rec insert = function
      | [] -> [ s ]
      | x :: rest as l ->
          if compare_slowest s x < 0 then s :: l else x :: insert rest
    in
    let l = insert t.slow in
    t.slow <-
      (if List.length l > t.k then List.filteri (fun i _ -> i < t.k) l else l)
  end

let spans_of_marks t op cycles =
  let rec build i prev acc =
    if i >= t.mark_len then
      let acc =
        if prev < cycles && t.mark_len > 0 then (op, prev, cycles) :: acc
        else acc
      in
      List.rev acc
    else
      build (i + 1) t.mark_cycles.(i)
        ((t.mark_names.(i), prev, t.mark_cycles.(i)) :: acc)
  in
  (op, 0, cycles) :: build 0 0 []

let op_end t cpu op =
  if t.in_op then begin
    let a = Cpu.attribution cpu in
    let cycles = Cpu.cycles cpu - t.p_cycles in
    let comps =
      {
        base = a.Cpu.base - t.p_base + (a.Cpu.tlb - t.p_tlb)
               + (a.Cpu.cache - t.p_cache);
        check = a.Cpu.branch - t.p_branch;
        translation = a.Cpu.xlate - t.p_xlate;
        stall = a.Cpu.storep - t.p_storep;
        media = a.Cpu.mem - t.p_mem;
      }
    in
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    t.in_op <- false;
    Latency.record t.lat cycles;
    Telemetry.record tl_op_cycles cycles;
    t.totals <- add_components t.totals comps;
    (* Admission test without allocating: only build the sample when it
       beats the reservoir's floor. *)
    let admits =
      t.k > 0
      && (List.length t.slow < t.k
         ||
         let floor = List.nth t.slow (List.length t.slow - 1) in
         cycles > floor.cycles)
    in
    if admits then
      admit t
        {
          op;
          seq;
          cell = t.cell_label;
          cycles;
          comps;
          spans = spans_of_marks t op cycles;
        }
  end

let count t = Latency.count t.lat
let latency t = t.lat
let totals t = t.totals
let slowest t = t.slow

let tail_components t =
  List.fold_left (fun acc s -> add_components acc s.comps) zero_components t.slow

let merge_into ~dst src =
  if dst == src then invalid_arg "Oplat.merge_into: src is dst";
  Latency.merge_into ~dst:dst.lat src.lat;
  dst.totals <- add_components dst.totals src.totals;
  dst.next_seq <- dst.next_seq + src.next_seq;
  List.iter (admit dst) src.slow

let components_json ~total c =
  let frac n = Json.Float (float_of_int n /. float_of_int (max 1 total)) in
  Json.Obj
    [
      ("base", frac c.base);
      ("check", frac c.check);
      ("translation", frac c.translation);
      ("stall", frac c.stall);
      ("media", frac c.media);
    ]

let summary_json t =
  match Latency.summary_json t.lat with
  | Json.Obj fields ->
      let tail = tail_components t in
      Json.Obj
        (fields
        @ [ ("tail", components_json ~total:(components_total tail) tail) ])
  | other -> other

let write_slow_trace oc t =
  let rows =
    List.concat
      (List.mapi
         (fun tid s ->
           let span ?(args = []) name start stop =
             [
               Json.Obj
                 ([
                    ("name", Json.String name);
                    ("ph", Json.String "B");
                    ("pid", Json.Int 0);
                    ("tid", Json.Int tid);
                    ("ts", Json.Int start);
                  ]
                 @
                 match args with
                 | [] -> []
                 | args ->
                     [
                       ( "args",
                         Json.Obj
                           (List.map (fun (k, v) -> (k, Json.Int v)) args) );
                     ]);
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("ph", Json.String "E");
                   ("pid", Json.Int 0);
                   ("tid", Json.Int tid);
                   ("ts", Json.Int stop);
                 ];
             ]
           in
           match s.spans with
           | [] -> []
           | (root, start, stop) :: subs ->
               span root start stop
                 ~args:
                   [
                     ("cycles", s.cycles);
                     ("seq", s.seq);
                     ("base", s.comps.base);
                     ("check", s.comps.check);
                     ("translation", s.comps.translation);
                     ("stall", s.comps.stall);
                     ("media", s.comps.media);
                   ]
               @ List.concat_map (fun (n, a, b) -> span n a b) subs)
         t.slow)
  in
  Json.to_channel oc
    (Json.Obj
       [
         ("traceEvents", Json.List rows);
         ("displayTimeUnit", Json.String "ms");
       ]);
  output_char oc '\n'
