(* Buffered persistency engine: the retention-model spectrum between
   "every store persists in place" (eager, the historical behavior) and
   "dirty lines drain to media in batches" (epoch / lazy).

   The simulated media ([Physmem]) always holds the *newest* value of
   every word — stores land immediately so loads stay cheap.  Under a
   relaxed model this engine additionally remembers, per dirty word,
   the value that is actually durable (the value the word had at the
   last drain).  A drain flushes whole 64-byte lines with explicitly
   modeled flush+fence µ-events and forgets the saved values; a crash
   pokes every still-buffered word back to its durable value, so the
   rebooted machine sees exactly what a real buffered-persistency part
   would have retained.

   Undo-log writes (and recovery replay) run inside [with_eager]: they
   reach media immediately, which is the write-ahead guarantee "log
   records reach media before their epoch's data drains". *)

module Physmem = Nvml_simmem.Physmem
module Fi = Nvml_simmem.Fi
module Layout = Nvml_simmem.Layout
module Cpu = Nvml_arch.Cpu
module Config = Nvml_arch.Config

type model = Eager | Epoch of { interval : int } | Lazy_on_detach

let model_name = function
  | Eager -> "eager"
  | Epoch { interval } -> Fmt.str "epoch:%d" interval
  | Lazy_on_detach -> "lazy"

let model_of_string s =
  match String.lowercase_ascii s with
  | "eager" -> Ok Eager
  | "lazy" -> Ok Lazy_on_detach
  | s when String.length s > 6 && String.sub s 0 6 = "epoch:" -> (
      match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
      | Some n when n >= 1 -> Ok (Epoch { interval = n })
      | Some n -> Error (Fmt.str "epoch interval must be >= 1, got %d" n)
      | None -> Error (Fmt.str "bad epoch interval in %S" s))
  | _ ->
      Error
        (Fmt.str "unknown persistency model %S (expected eager, epoch:N or lazy)"
           s)

let is_eager = function Eager -> true | Epoch _ | Lazy_on_detach -> false

(* Words are keyed by [frame * words_per_page + word_index]; a 64-byte
   line is 8 consecutive words, so [key lsr 3] is a global line id. *)
let words_per_line = 8

type t = {
  model : model;
  pm : Physmem.t;
  pending : (int, int64) Hashtbl.t; (* packed word addr -> durable value *)
  mutable passthrough : int; (* depth of [with_eager] nesting *)
  mutable drain_hook : (unit -> unit) option;
  (* event counts (always maintained; timing mode charges cycles too) *)
  mutable stores_buffered : int;
  mutable flushes : int;
  mutable fences : int;
  mutable drains : int;
  mutable crash_dropped : int;
}

let note t ~frame ~word_index ~old_value =
  let key = (frame * Layout.words_per_page) + word_index in
  if t.passthrough > 0 then Hashtbl.remove t.pending key
  else if not (Hashtbl.mem t.pending key) then begin
    Hashtbl.add t.pending key old_value;
    t.stores_buffered <- t.stores_buffered + 1
  end

let create model pm =
  let t =
    {
      model;
      pm;
      pending = Hashtbl.create 256;
      passthrough = 0;
      drain_hook = None;
      stores_buffered = 0;
      flushes = 0;
      fences = 0;
      drains = 0;
      crash_dropped = 0;
    }
  in
  (* Eager machines leave the note unarmed: the write fast path pays
     only a null test and behavior is bit-identical to the engine not
     existing at all. *)
  if not (is_eager model) then
    Physmem.set_persist_note pm
      (Some (fun ~frame ~word_index ~old_value -> note t ~frame ~word_index ~old_value));
  t

let model t = t.model
let pending_words t = Hashtbl.length t.pending

let with_eager t f =
  if is_eager t.model then f ()
  else begin
    t.passthrough <- t.passthrough + 1;
    Fun.protect ~finally:(fun () -> t.passthrough <- t.passthrough - 1) f
  end

let set_drain_hook t hook = t.drain_hook <- hook

(* The durable value of a word: the buffered epoch-start value if the
   word is dirty, the media value otherwise.  This is what a crash at
   this instant would retain — the contract oracle's ground truth. *)
let durable_value t ~frame ~word_index =
  match Hashtbl.find_opt t.pending ((frame * Layout.words_per_page) + word_index) with
  | Some v -> v
  | None -> Physmem.peek t.pm ~frame ~word_index

(* The still-buffered words of one 64-byte line, as (word index within
   the frame, durable value) pairs in address order — what a crash
   mid-flush of this line is tearing between. *)
let buffered_in_line t ~frame ~line =
  let base = (frame * Layout.words_per_page) + (line * words_per_line) in
  List.filter_map
    (fun w ->
      Option.map
        (fun durable -> ((line * words_per_line) + w, durable))
        (Hashtbl.find_opt t.pending (base + w)))
    (List.init words_per_line Fun.id)

(* Drain every buffered line to media: per line, announce a
   [Flush_line] µ-event (a fault injector may raise here — the line and
   everything after it is then lost), mark the line's words durable and
   charge the flush; then one [Fence] and the registered drain hook
   (undo-log truncation).  Lines drain in ascending address order, so a
   drain is deterministic regardless of hashtable state. *)
let drain t ~cpu ~cfg =
  if (not (is_eager t.model)) && Hashtbl.length t.pending > 0 then begin
    t.drains <- t.drains + 1;
    let lines =
      Hashtbl.fold (fun key _ acc -> (key lsr 3) :: acc) t.pending []
      |> List.sort_uniq compare
    in
    List.iter
      (fun line_key ->
        let frame = line_key * words_per_line / Layout.words_per_page in
        let line = line_key mod (Layout.words_per_page / words_per_line) in
        Physmem.fire t.pm (Fi.Flush_line { frame; line });
        for w = 0 to words_per_line - 1 do
          Hashtbl.remove t.pending ((line_key lsl 3) lor w)
        done;
        t.flushes <- t.flushes + 1;
        Cpu.persist_stall cpu cfg.Config.flush_latency)
      lines;
    Physmem.fire t.pm Fi.Fence;
    t.fences <- t.fences + 1;
    Cpu.persist_stall cpu cfg.Config.fence_latency;
    match t.drain_hook with None -> () | Some f -> f ()
  end

(* Power failure: every still-buffered word never reached media — poke
   its durable value back over the newest one.  [poke] bypasses the
   freeze, which is exactly right: this is not a store, it is the
   revelation of what the media actually held. *)
let crash t =
  Hashtbl.iter
    (fun key durable ->
      let frame = key / Layout.words_per_page in
      let word_index = key mod Layout.words_per_page in
      Physmem.poke t.pm ~frame ~word_index durable)
    t.pending;
  t.crash_dropped <- t.crash_dropped + Hashtbl.length t.pending;
  Hashtbl.reset t.pending;
  t.passthrough <- 0;
  t.drain_hook <- None

(* --- telemetry ------------------------------------------------------- *)

module Telemetry = Nvml_telemetry.Telemetry

let c_buffered = Telemetry.counter "persist.stores_buffered"
let c_flushes = Telemetry.counter "persist.flushes"
let c_fences = Telemetry.counter "persist.fences"
let c_drains = Telemetry.counter "persist.drains"
let c_dropped = Telemetry.counter "persist.crash_dropped"

let publish t =
  if Telemetry.enabled () then begin
    Telemetry.add c_buffered t.stores_buffered;
    Telemetry.add c_flushes t.flushes;
    Telemetry.add c_fences t.fences;
    Telemetry.add c_drains t.drains;
    Telemetry.add c_dropped t.crash_dropped
  end

let flushes t = t.flushes
let fences t = t.fences
let drains t = t.drains
let stores_buffered t = t.stores_buffered
