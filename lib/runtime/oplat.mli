(** Per-operation latency bracketing in the simulated-cycle domain.

    An {!t} wraps one experiment cell: the harness brackets every
    top-level persistent operation (kv get/put, list scan, txn) with
    {!op_begin}/{!op_end}; the recorder captures the operation's cycle
    count into an HDR-style latency recorder ({!Latency}) and
    decomposes it — via the cycle-attribution machinery
    ({!Cpu.attribution}) — into five components that sum exactly to the
    operation's cycles:

    - [base] — issue cycles plus TLB and cache-hierarchy hit latencies
      (the cost any version pays to execute the op),
    - [check] — branch misprediction penalties (the software-check
      branches of SW mode),
    - [translation] — exposed POLB latency on the address-generation
      path,
    - [stall] — storeP structural stalls (POLB/VALB operand conversions
      backing up the store unit),
    - [media] — DRAM/NVM access latencies.

    The partition is exact because {!Cpu.attribution} charges every
    cycle beyond one-per-instruction to exactly one stall source:
    [base = base + tlb + cache], [check = branch],
    [translation = xlate], [stall = storep], [media = mem] covers all
    seven fields once.  In fast functional mode ([timing = false]) an
    op's cycles equal its instructions and all non-[base] components
    are zero — the invariant still holds.

    The [k] slowest operations are retained in a bounded reservoir
    with their marker span lists, dumpable as a Chrome trace
    ({!write_slow_trace}) so a p999 outlier can be explained, not just
    counted.  Ordering is deterministic: slower first, ties broken by
    cell label then sequence number, so merging per-cell recorders in
    any order yields the same reservoir. *)

module Cpu = Nvml_arch.Cpu

type components = {
  base : int;
  check : int;
  translation : int;
  stall : int;
  media : int;
}

val zero_components : components
val add_components : components -> components -> components
val components_total : components -> int

val components_of_attr : Cpu.attribution -> components
(** The five-way grouping of the seven attribution fields described
    above; [components_total (components_of_attr a) =
    Cpu.attribution_total a]. *)

type sample = {
  op : string;  (** operation kind ("get", "put", "scan", "txn", ...) *)
  seq : int;  (** per-cell operation sequence number *)
  cell : string;  (** owning cell label *)
  cycles : int;
  comps : components;
  spans : (string * int * int) list;
      (** [(name, start, stop)] marker spans, cycles relative to op
          start; the op itself spans [(op, 0, cycles)]. *)
}

type t

val create : ?k:int -> cell:string -> unit -> t
(** [k] is the slow-op reservoir capacity (default 8). *)

val cell : t -> string

val op_begin : t -> Cpu.t -> unit
(** Stamp the operation start.  Nested [op_begin] is not supported —
    one operation at a time per recorder. *)

val mark : t -> Cpu.t -> string -> unit
(** Close a marker span at the current cycle: the span runs from the
    previous mark (or the op start) to now.  Up to 8 marks per op are
    kept. *)

val op_end : t -> Cpu.t -> string -> unit
(** Finish the operation named [op]: record its cycle latency and
    attribution components, and admit it to the slow-op reservoir if it
    ranks among the [k] slowest. *)

val count : t -> int
val latency : t -> Nvml_telemetry.Latency.t

val totals : t -> components
(** Component sums over all recorded operations;
    [components_total (totals t) = Latency.sum (latency t)]. *)

val slowest : t -> sample list
(** The retained slowest operations, slowest first. *)

val tail_components : t -> components
(** Component sums over the retained slowest operations — the
    per-component attribution of the tail. *)

val merge_into : dst:t -> t -> unit
(** Merge [src]'s recorder, totals and reservoir into [dst].
    Commutative up to the deterministic sample ordering, so any merge
    order yields the same state. *)

val summary_json : t -> Nvml_telemetry.Json.t
(** [{"count", "sum", "mean", "p50", "p90", "p99", "p999", "max",
    "tail": {"base", "check", "translation", "stall", "media"}}] with
    tail components as fractions of the tail's total cycles. *)

val write_slow_trace : out_channel -> t -> unit
(** Chrome [trace_event] JSON of the retained slowest ops: one thread
    per op (slowest first), timestamps in simulated cycles, component
    breakdown in the op span's args. *)
