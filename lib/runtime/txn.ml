(* Persistent undo-log transactions — the crash-consistency mechanism
   the paper's Section VI leaves to the application ("if the call is
   enclosed in a persistent transaction... the compiler inserts the
   necessary runtime logging").  This module is that runtime: an undo
   log living *inside* the pool, so it survives crashes, plus logged
   store operations and post-crash recovery.

   Log layout (word offsets from the log object):
     0  state      (0 = idle, 1 = active)
     8  count      (valid entries)
     16 capacity
     24 first entry; each entry is 16 bytes: (cell address in relative
        format — it must survive remapping — , previous raw value)

   Protocol: every tracked store first appends (cell, old value) to the
   log and bumps the persistent count, then performs the store.  Commit
   truncates the log and clears the active flag; abort (or recovery
   after a crash that interrupted an active transaction) replays the
   log backwards. *)

module Ptr = Nvml_core.Ptr
module Xlate = Nvml_core.Xlate
module Mem = Nvml_simmem.Mem
module Physmem = Nvml_simmem.Physmem
module Fi = Nvml_simmem.Fi
module Pmop = Nvml_pool.Pmop
module Telemetry = Nvml_telemetry.Telemetry

let c_begins = Telemetry.counter "txn.begins"
let c_commits = Telemetry.counter "txn.commits"
let c_aborts = Telemetry.counter "txn.aborts"
let c_logged = Telemetry.counter "txn.logged_words"
let c_recoveries = Telemetry.counter "txn.recoveries"

let o_state = 0
let o_count = 8
let o_capacity = 16
let o_entries = 24

type t = {
  rt : Runtime.t;
  pool : int;
  log : Ptr.t;
  capacity : int;
  (* Reentrancy guard for instrumented runtimes: the log's own stores
     (appends, rollback restores, state/count updates) must not be
     re-logged by the store interceptor. *)
  mutable busy : bool;
  (* Volatile "an operation is open" flag.  Under the eager model it
     mirrors the persistent state word; under a relaxed model the log
     stays active (and accumulates entries) across the whole epoch, so
     per-operation bracketing must be tracked off-media. *)
  mutable in_op : bool;
}

exception Log_full
exception Not_active
exception Already_active

let site = Site.make ~static:true "txn.log"

let default_capacity = 4096

(* The log's own stores are kept out of the log by the [busy] guard
   and — under a relaxed persistency model — written through to media
   immediately ([Persist.with_eager]): log records must be durable
   before the epoch's data drains, or the undo information a crash
   needs could itself be lost with the epoch. *)
let with_busy t f =
  if t.busy then f ()
  else begin
    t.busy <- true;
    Fun.protect
      ~finally:(fun () -> t.busy <- false)
      (fun () -> Persist.with_eager (Runtime.persist t.rt) f)
  end

let state t = Runtime.load_word t.rt ~site t.log ~off:o_state
let count t = Int64.to_int (Runtime.load_word t.rt ~site t.log ~off:o_count)
let is_active t = Int64.equal (state t) 1L

(* Under a relaxed model a completed drain has made the epoch's data
   durable, so the log entries covering it are dead: truncate.  The
   drain engine calls this after its fence.  Epoch boundaries must sit
   between operations — a drain inside an open operation would
   truncate undo information the operation still needs. *)
let on_drain t () =
  if t.in_op then
    invalid_arg "Txn: persistency drain inside an open operation";
  if is_active t then
    with_busy t (fun () ->
        Runtime.store_word t.rt ~site t.log ~off:o_count 0L;
        Runtime.store_word t.rt ~site t.log ~off:o_state 0L)

let register_drain_hook t =
  if Runtime.persist_relaxed t.rt then
    Persist.set_drain_hook (Runtime.persist t.rt) (Some (on_drain t))

(* Allocate a fresh log inside [pool].  The header stores run in
   [with_busy] so they are immediately durable under every model — the
   log must never itself be buffered. *)
let create rt ~pool ?(capacity = default_capacity) () =
  let bytes = o_entries + (capacity * 16) in
  let log = Runtime.alloc rt ~pool ~persistent:true bytes in
  let t = { rt; pool; log; capacity; busy = false; in_op = false } in
  with_busy t (fun () ->
      Runtime.store_word rt ~site log ~off:o_state 0L;
      Runtime.store_word rt ~site log ~off:o_count 0L;
      Runtime.store_word rt ~site log ~off:o_capacity (Int64.of_int capacity));
  register_drain_hook t;
  t

let header t = t.log
let log_bytes t = o_entries + (t.capacity * 16)

(* Re-find a log after restart from its (relative) handle. *)
let attach rt log =
  let capacity =
    Int64.to_int (Runtime.load_word rt ~site log ~off:o_capacity)
  in
  let pool =
    match Runtime.region_of_ptr rt log with
    | Runtime.Pool_region p -> p
    | Runtime.Dram_region -> invalid_arg "Txn.attach: log is not persistent"
  in
  let t = { rt; pool; log; capacity; busy = false; in_op = false } in
  register_drain_hook t;
  t

let begin_ t =
  if Runtime.persist_relaxed t.rt then begin
    (* Relaxed models: the log covers the whole open epoch, so a new
       operation joins an already-active log rather than truncating
       it — the accumulated entries still protect this epoch's earlier
       (not yet drained) operations. *)
    if t.in_op then raise Already_active;
    if Telemetry.enabled () then Telemetry.incr c_begins;
    t.in_op <- true;
    if not (is_active t) then
      with_busy t (fun () ->
          Runtime.store_word t.rt ~site t.log ~off:o_count 0L;
          Runtime.store_word t.rt ~site t.log ~off:o_state 1L)
  end
  else begin
    if is_active t then raise Already_active;
    if Telemetry.enabled () then Telemetry.incr c_begins;
    t.in_op <- true;
    with_busy t (fun () ->
        Runtime.store_word t.rt ~site t.log ~off:o_count 0L;
        Runtime.store_word t.rt ~site t.log ~off:o_state 1L)
  end

(* Record the current value of [cell] before it is overwritten.  The
   logged address is the cell's relative form so it stays valid across
   crashes and remaps. *)
let log_cell t (cell : Ptr.t) =
  with_busy t (fun () ->
      let n = count t in
      if n >= t.capacity then raise Log_full;
      if Telemetry.enabled () then Telemetry.incr c_logged;
      Physmem.fire (Mem.phys (Runtime.mem t.rt)) Fi.Txn_log_append;
      let rel_cell = Xlate.va2ra (Runtime.xlate t.rt) cell in
      if not (Ptr.is_relative rel_cell) then
        invalid_arg "Txn: transactional stores must target pool memory";
      let old = Runtime.load_word t.rt ~site rel_cell ~off:0 in
      let entry_off = o_entries + (n * 16) in
      Runtime.store_word t.rt ~site t.log ~off:entry_off rel_cell;
      Runtime.store_word t.rt ~site t.log ~off:(entry_off + 8) old;
      Runtime.store_word t.rt ~site t.log ~off:o_count (Int64.of_int (n + 1)))

(* Transactional stores: log, then write through the normal runtime
   paths (so pointer-format semantics and timing apply unchanged). *)
let store_word t ~site:s (p : Ptr.t) ~off v =
  if not (is_active t) then raise Not_active;
  log_cell t (Ptr.add p (Int64.of_int off));
  Runtime.store_word t.rt ~site:s p ~off v

let store_ptr t ~site:s (p : Ptr.t) ~off v =
  if not (is_active t) then raise Not_active;
  log_cell t (Ptr.add p (Int64.of_int off));
  Runtime.store_ptr t.rt ~site:s p ~off v

(* Replay the undo log backwards, restoring the exact raw words.
   Under a relaxed model the log spans the whole open epoch, so this
   lands exactly on the last-drained (epoch-consistent) state. *)
let roll_back t =
  t.in_op <- false;
  with_busy t (fun () ->
      for i = count t - 1 downto 0 do
        let entry_off = o_entries + (i * 16) in
        let cell = Runtime.load_word t.rt ~site t.log ~off:entry_off in
        let old = Runtime.load_word t.rt ~site t.log ~off:(entry_off + 8) in
        Runtime.store_word t.rt ~site cell ~off:0 old
      done;
      Runtime.store_word t.rt ~site t.log ~off:o_count 0L;
      Runtime.store_word t.rt ~site t.log ~off:o_state 0L)

let commit t =
  if Runtime.persist_relaxed t.rt then begin
    (* The log cannot truncate yet: the operation's data is still
       buffered, and a crash before the epoch drains must roll the
       whole epoch back.  Truncation happens in [on_drain]. *)
    if not t.in_op then raise Not_active;
    if Telemetry.enabled () then Telemetry.incr c_commits;
    t.in_op <- false
  end
  else begin
    if not (is_active t) then raise Not_active;
    if Telemetry.enabled () then Telemetry.incr c_commits;
    t.in_op <- false;
    with_busy t (fun () ->
        Runtime.store_word t.rt ~site t.log ~off:o_count 0L;
        Runtime.store_word t.rt ~site t.log ~off:o_state 0L)
  end

let abort t =
  if not (if Runtime.persist_relaxed t.rt then t.in_op else is_active t) then
    raise Not_active;
  if Telemetry.enabled () then Telemetry.incr c_aborts;
  roll_back t

type recovery = Clean | Rolled_back of int

(* Post-crash recovery: an active log means the crash interrupted a
   transaction — undo it.  The log lives in pool memory, so the media
   can have damaged it between the crash and this recovery; an
   unreadable log word is re-raised with enough context to find the
   pool, rather than surfacing as a bare device error mid-rollback. *)
let recover t =
  if Telemetry.enabled () then Telemetry.incr c_recoveries;
  try
    if is_active t then begin
      let n = count t in
      if Telemetry.enabled () then
        Telemetry.event ~args:[ ("rolled_back", n) ] "txn.recover";
      roll_back t;
      Rolled_back n
    end
    else Clean
  with Nvml_media.Media.Media_error m ->
    raise
      (Nvml_media.Media.Media_error
         (Fmt.str "recovery: undo log of pool %d unreadable: %s" t.pool m))

(* --- user-transparent instrumentation ------------------------------------

   The paper's Section VI: legacy library code is not rewritten against
   [store_word]/[store_ptr] above — instead "the compiler inserts the
   necessary runtime logging" around ordinary stores inside a persistent
   transaction.  [instrument] models exactly that: it points the
   runtime's store interceptor and the pool manager's metadata hook at
   this log, so that while a transaction is active {e every} store
   targeting pool memory (including freelist updates made by pmalloc /
   pfree) is undo-logged first.  Structure code written against plain
   [Runtime.store_*] becomes failure-atomic with no source changes.

   The [busy] guard keeps the log's own stores out of the log; the
   hooks are volatile and vanish on [Runtime.crash_and_restart], so
   recovery code must re-register (or run uninstrumented). *)

let instrument t =
  Runtime.set_store_interceptor t.rt
    (Some (fun cell -> if (not t.busy) && is_active t then log_cell t cell));
  Pmop.set_meta_hook (Runtime.pmop t.rt)
    (Some
       (fun ~pool ~offset ->
         if (not t.busy) && is_active t then
           log_cell t (Ptr.make_relative ~pool ~offset)))

let uninstrument rt =
  Runtime.set_store_interceptor rt None;
  Pmop.set_meta_hook (Runtime.pmop rt) None

(* Run [f] in a transaction: commit on return, roll back on exception. *)
let run t f =
  begin_ t;
  match f () with
  | result ->
      commit t;
      result
  | exception e ->
      abort t;
      raise e
