(* Static program sites.  Every pointer-operation call site in library
   or application code is described by a [Site.t]: a stable synthetic PC
   (used to index the branch predictor, like the address of the check
   code the compiler would emit there) and a [static] flag that records
   whether the compiler's pointer-property inference resolved the
   operand's format at compile time.

   [static = true]  — inference succeeded (e.g. the value flows straight
                      from an allocator call or is a stack local): the
                      SW version emits no dynamic check here.
   [static = false] — the default for library code reached through
                      opaque function parameters: the SW version checks
                      dynamically (the ~42 % of sites of Section VII). *)

module Telemetry = Nvml_telemetry.Telemetry

type t = {
  pc : int;
  name : string;
  static : bool;
  check_counter : Telemetry.counter;
      (* dynamic checks executed at this site — registered eagerly so
         the per-site profile covers never-hit sites with a zero row *)
}

let counter = ref 0
let registry : t list ref = ref []

(* Library sites are registered at module-initialization time, but the
   mini-C interpreter mints sites while running — guard the registry so
   interpreter cells can run on worker domains. *)
let registry_lock = Mutex.create ()

let make_locked ~static name =
  let check_counter = Telemetry.counter ("site." ^ name) in
  incr counter;
  let t = { pc = !counter * 64; name; static; check_counter } in
  registry := t :: !registry;
  t

let make ?(static = false) name =
  Mutex.lock registry_lock;
  let t = make_locked ~static name in
  Mutex.unlock registry_lock;
  t

(* Sites minted while running (the mini-C interpreter) must be interned:
   a site describes a place in the *program text*, so re-running the
   same program must reuse the same synthetic PC.  Minting fresh PCs per
   run made the branch predictor's aliasing — and hence cycle counts —
   depend on how many interpreter runs preceded this one in the process. *)
let interned : (string * bool, t) Hashtbl.t = Hashtbl.create 256

let intern ?(static = false) name =
  Mutex.lock registry_lock;
  let t =
    match Hashtbl.find_opt interned (name, static) with
    | Some t -> t
    | None ->
        let t = make_locked ~static name in
        Hashtbl.replace interned (name, static) t;
        t
  in
  Mutex.unlock registry_lock;
  t

(* All sites registered so far (used by the productivity analysis: each
   non-static site is a place an explicit-API migration would have to
   edit by hand). *)
let all () = List.rev !registry

let with_prefix prefix =
  List.filter
    (fun t -> String.length t.name >= String.length prefix
              && String.sub t.name 0 (String.length prefix) = prefix)
    (all ())

let pc t = t.pc
let name t = t.name
let is_static t = t.static
let check_counter t = t.check_counter
let checks t = Telemetry.value t.check_counter

let pp ppf t =
  Fmt.pf ppf "%s@pc=0x%x%s" t.name t.pc (if t.static then " (static)" else "")
