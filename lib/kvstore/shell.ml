(* An interactive persistent key-value store: the "aha" demo of the
   whole stack.  A session owns a simulated machine with one pool and an
   index structure anchored at the pool root; commands mutate it, and
   `crash` power-cycles the machine — everything committed to the pool
   survives, relocated to a fresh mapping.

   Commands (one per line):
     put <key> <value>      insert or update (integers)
     get <key>              look up
     del <key>              remove
     size                   number of keys
     keys                   list keys in order
     crash                  power-cycle; recover from the pool root
     crash torn             power-cycle with the last persistent store torn
     stats                  timing-model counters so far
     help                   this list

   The command interpreter is a plain function over strings so tests can
   drive a session without a terminal. *)

module Mem = Nvml_simmem.Mem
module Physmem = Nvml_simmem.Physmem
module Fi = Nvml_simmem.Fi
module Cpu = Nvml_arch.Cpu
module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Intf = Nvml_structures.Intf

let site = Site.make ~static:true "shell"

type t = {
  rt : Runtime.t;
  pool : int;
  structure : Intf.ordered_map;
  mutable map_header : Nvml_core.Ptr.t;
  mutable crashes : int;
  (* Torn-crash support: every byte mask comes from this seeded state,
     so a scripted session replays bit-identically; the fi hook keeps
     the most recent NVM store (it survives power cycles, so `crash
     torn` works after recovery too). *)
  rng : Random.State.t;
  mutable last_store : (int * int * int64 * int64) option;
      (* frame, word, old, new *)
}

let pool_size = 1 lsl 22

let create ?(mode = Runtime.Hw) ?(structure = "RB") ?(seed = 0) () =
  let rt = Runtime.create ~mode () in
  let pool = Runtime.create_pool rt ~name:"shell" ~size:pool_size in
  let structure = Nvml_structures.Registry.find_map structure in
  let module M = (val structure : Intf.ORDERED_MAP) in
  let m = M.create rt (Runtime.Pool_region pool) in
  Runtime.set_root rt ~site ~pool (M.header m);
  let t =
    {
      rt;
      pool;
      structure;
      map_header = M.header m;
      crashes = 0;
      rng = Random.State.make [| 0x7e11; seed |];
      last_store = None;
    }
  in
  (match mode with
  | Runtime.Volatile -> () (* no NVM, nothing to tear *)
  | _ ->
      Physmem.set_fi_hook
        (Mem.phys (Runtime.mem rt))
        (Some
           (function
             | Fi.Pm_store { frame; word_index; old_value; new_value } ->
                 t.last_store <- Some (frame, word_index, old_value, new_value)
             | _ -> ())));
  t

(* Monomorphic operation record over the existentially typed map. *)
type ops = {
  insert : key:int64 -> value:int64 -> unit;
  find : int64 -> int64 option;
  remove : int64 -> bool;
  size : unit -> int;
  iter : (key:int64 -> value:int64 -> unit) -> unit;
  check : unit -> unit;
}

let ops t : ops =
  let module M = (val t.structure : Intf.ORDERED_MAP) in
  let m = M.attach t.rt t.map_header in
  {
    insert = (fun ~key ~value -> M.insert m ~key ~value);
    find = (fun k -> M.find m k);
    remove = (fun k -> M.remove m k);
    size = (fun () -> M.size m);
    iter = (fun f -> M.iter m f);
    check = (fun () -> M.check_invariants m);
  }

(* One command in, list of reply lines out. *)
let exec t (line : string) : string list =
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  let int_arg s =
    match Int64.of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Fmt.str "not an integer: %S" s)
  in
  match words with
  | [] -> []
  | [ "help" ] ->
      [
        "put <key> <value>   insert or update";
        "get <key>           look up";
        "del <key>           remove";
        "size                number of keys";
        "keys                list keys in order";
        "crash               power-cycle the machine";
        "crash torn          power-cycle, tearing the last persistent store";
        "stats               timing-model counters";
        "quit                leave";
      ]
  | [ "put"; k; v ] -> (
      match (int_arg k, int_arg v) with
      | Ok key, Ok value ->
          (ops t).insert ~key ~value;
          [ "ok" ]
      | Error e, _ | _, Error e -> [ "error: " ^ e ])
  | [ "get"; k ] -> (
      match int_arg k with
      | Ok key -> (
          match (ops t).find key with
          | Some v -> [ Int64.to_string v ]
          | None -> [ "(not found)" ])
      | Error e -> [ "error: " ^ e ])
  | [ "del"; k ] -> (
      match int_arg k with
      | Ok key -> if (ops t).remove key then [ "ok" ] else [ "(not found)" ]
      | Error e -> [ "error: " ^ e ])
  | [ "size" ] -> [ string_of_int ((ops t).size ()) ]
  | [ "keys" ] -> (
      let acc = ref [] in
      (ops t).iter (fun ~key ~value:_ -> acc := Int64.to_string key :: !acc);
      match List.rev !acc with [] -> [ "(empty)" ] | keys -> keys)
  | [ "crash" ] ->
      t.crashes <- t.crashes + 1;
      Runtime.crash_and_restart t.rt;
      ignore (Runtime.open_pool t.rt "shell");
      t.map_header <- Runtime.get_root t.rt ~site ~pool:t.pool;
      let o = ops t in
      o.check ();
      [
        Fmt.str "crashed and recovered (%d keys intact, crash #%d)"
          (o.size ()) t.crashes;
      ]
  | [ "crash"; "torn" ] -> (
      (* Adversarial power-cycle: the most recent persistent store is
         replaced by a seeded byte-mix of its old and new value before
         the machine goes down — the word the power failure caught
         mid-flight.  The shell's puts are not transactional, so a torn
         structure word is *expected* to be caught by the recovery
         check (that is the demo: without an undo log, sub-word tearing
         is fatal; `bench faultinject` shows the log healing it). *)
      match t.last_store with
      | None -> [ "nothing stored to the pool yet; nothing to tear" ]
      | Some (frame, word_index, old_value, new_value) ->
          let keep_old_bytes = 1 + Random.State.int t.rng 254 in
          Physmem.poke
            (Mem.phys (Runtime.mem t.rt))
            ~frame ~word_index
            (Fi.torn_word ~keep_old_bytes ~old_value ~new_value);
          t.crashes <- t.crashes + 1;
          t.last_store <- None;
          Runtime.crash_and_restart t.rt;
          ignore (Runtime.open_pool t.rt "shell");
          t.map_header <- Runtime.get_root t.rt ~site ~pool:t.pool;
          match
            let o = ops t in
            o.check ();
            o.size ()
          with
          | n ->
              [
                Fmt.str
                  "crashed with a torn store; recovered (%d keys intact, \
                   crash #%d)"
                  n t.crashes;
              ]
          | exception e ->
              [
                Fmt.str "crashed with a torn store; recovery check failed \
                         (crash #%d):"
                  t.crashes;
                "  " ^ Printexc.to_string e;
              ])
  | [ "stats" ] ->
      let s = Runtime.snapshot t.rt in
      [
        Fmt.str "cycles       %d" s.Cpu.cycles;
        Fmt.str "instructions %d" s.Cpu.instrs;
        Fmt.str "accesses     %d (%d NVM, %d storeP)" s.Cpu.mem_accesses
          s.Cpu.nvm_accesses s.Cpu.storeps;
        Fmt.str "POLB         %d accesses, %d misses" s.Cpu.polb_accesses
          s.Cpu.polb_misses;
        Fmt.str "crashes      %d" t.crashes;
      ]
  | cmd :: _ -> [ Fmt.str "unknown command %S (try help)" cmd ]
