(** The serving engine: the Section VII harness grown to production
    shape — records sharded across many pools by key hash (each shard
    an independent share-nothing simulation cell with its own runtime,
    pool, allocator and superblock), a batching front-end that
    amortizes runtime entry across a batch of requests, and an optional
    bounded-LRU DRAM front cache with write-back to NVM in the style of
    NVCache.

    Determinism: shards are share-nothing cells merged in shard-index
    order, so a parallel runner produces reports byte-identical to a
    sequential one, and a cache-enabled run drains all dirty entries
    before detach so the persistent contents (see {!type-shard.digest})
    are identical to a cache-disabled run. *)

type config = {
  structure : string;  (** index structure name, as in {!Nvml_structures.Registry} *)
  mode : Nvml_runtime.Runtime.mode;
  spec : Nvml_ycsb.Workload.spec;
  shards : int;
  batch : int;  (** requests per runtime entry; 1 = no batching *)
  front_cache : int;  (** total cache entries across all shards; 0 = off *)
  cfg : Nvml_arch.Config.t;
}

val default_config :
  ?structure:string ->
  ?mode:Nvml_runtime.Runtime.mode ->
  ?cfg:Nvml_arch.Config.t ->
  ?shards:int ->
  ?batch:int ->
  ?front_cache:int ->
  Nvml_ycsb.Workload.spec ->
  config

type cache_stats = {
  hits : int;
  misses : int;
  writebacks : int;  (** dirty entries written back (evict/scan/drain) *)
  evictions : int;
  scan_flushes : int;  (** scans that triggered a dirty flush *)
}

val hit_rate : cache_stats -> float
(** hits / (hits + misses); 0 when the cache saw no reads. *)

type shard = {
  index : int;
  records : int;  (** records loaded into this shard *)
  ops : int;  (** requests dispatched to this shard *)
  size : int;  (** final structure size *)
  found : int;
  missing : int;
  load : Nvml_arch.Cpu.snapshot;
  run : Nvml_arch.Cpu.snapshot;
  cache : cache_stats;
  digest : int64;  (** order-independent digest of the final contents *)
  oplat : Nvml_runtime.Oplat.t;
}

type t = {
  structure : string;
  mode : Nvml_runtime.Runtime.mode;
  spec : Nvml_ycsb.Workload.spec;
  shards : int;
  batch : int;
  front_cache : int;
  per_shard : shard list;  (** in shard-index order *)
  records : int;
  ops : int;  (** total requests; scan sub-gets count individually *)
  found : int;
  missing : int;
  size : int;
  load_cycles_max : int;
  run_cycles_max : int;  (** service time — shards run in parallel *)
  run_cycles_total : int;
  cache : cache_stats;
  digest : int64;  (** commutative combine of the per-shard digests *)
  oplat : Nvml_runtime.Oplat.t;  (** merged across shards, in shard order *)
}

val clock_hz : float
(** The simulated core clock implied by [Config.default] (DRAM at 120
    cycles = 45 ns, i.e. ~2.67 GHz); used to turn deterministic cycle
    counts into an ops/sec figure. *)

val ops_per_sec : t -> float
(** [ops / (run_cycles_max / clock_hz)] — deterministic simulated
    throughput (in fast functional mode, cycles are instruction
    counts). *)

val shard_of_key : shards:int -> int64 -> int
(** The shard a key lives on: [scramble key mod shards]. *)

val run : ?par:((unit -> shard) list -> shard list) -> config -> t
(** Run the configured serving workload.  [par] executes the
    share-nothing shard cells ([Pool.run pool] from bench); the default
    runs them sequentially.  Results are merged in shard-index order,
    so the report is byte-identical for any runner.  Publishes
    [serving.*] telemetry counters when telemetry is enabled. *)
