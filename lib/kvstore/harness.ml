(* The key-value store harness of Section VII-A, in the mold of the
   PMDK mapcli example: a driver that maps 8-byte keys to 8-byte values
   through a pluggable index structure, loads an initial population and
   then replays a YCSB operation stream, measuring the run phase in the
   timing model.

   The driver itself is ordinary volatile application code: its key
   buffer lives in simulated DRAM and is read on every operation, so
   volatile accesses interleave with the library's persistent accesses
   exactly as in a real run. *)

module Layout = Nvml_simmem.Layout
module Mem = Nvml_simmem.Mem
module Ptr = Nvml_core.Ptr
module Xlate = Nvml_core.Xlate
module Cpu = Nvml_arch.Cpu
module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Intf = Nvml_structures.Intf
module Linked_list = Nvml_structures.Linked_list
module Workload = Nvml_ycsb.Workload
module Telemetry = Nvml_telemetry.Telemetry
module Oplat = Nvml_runtime.Oplat

(* Harness sites: the driver is compiled with the application, where
   inference sees the allocation sites — static. *)
let s_driver = Site.make ~static:true "harness.driver"

type counter_delta = {
  dynamic_checks : int;
  abs_to_rel : int; (* va2ra conversions *)
  rel_to_abs : int; (* ra2va conversions *)
  volatile_escapes : int;
}

let counter_diff (after : Xlate.counters) (before : Xlate.counters) =
  {
    dynamic_checks = after.Xlate.dynamic_checks - before.Xlate.dynamic_checks;
    abs_to_rel = after.Xlate.va2ra - before.Xlate.va2ra;
    rel_to_abs = after.Xlate.ra2va - before.Xlate.ra2va;
    volatile_escapes = after.Xlate.volatile_escapes - before.Xlate.volatile_escapes;
  }

let copy_counters (c : Xlate.counters) =
  {
    Xlate.ra2va = c.Xlate.ra2va;
    va2ra = c.Xlate.va2ra;
    dynamic_checks = c.Xlate.dynamic_checks;
    volatile_escapes = c.Xlate.volatile_escapes;
  }

type persist_tally = {
  model : Nvml_runtime.Persist.model;
  drains : int;
  flushes : int; (* line write-backs charged by the drains *)
  fences : int;
  buffered : int; (* distinct dirty words buffered across the run *)
}

type result = {
  benchmark : string;
  mode : Runtime.mode;
  load : Cpu.snapshot; (* load-phase deltas *)
  run : Cpu.snapshot; (* run-phase deltas — what the figures report *)
  attr : Cpu.attribution; (* run-phase cycle attribution *)
  checks : counter_delta; (* run-phase conversion/check counts *)
  hits : int; (* GETs that found their key (sanity) *)
  misses : int;
  oplat : Oplat.t; (* per-op run-phase latency distribution *)
  persist : persist_tally; (* whole-run drain traffic (zero under eager) *)
}

let persist_tally rt =
  let p = Runtime.persist rt in
  let module P = Nvml_runtime.Persist in
  {
    model = P.model p;
    drains = P.drains p;
    flushes = P.flushes p;
    fences = P.fences p;
    buffered = P.stores_buffered p;
  }

let pool_size = 1 lsl 26 (* frames are lazily backed, so a roomy pool is free *)

let region_for rt mode =
  match mode with
  | Runtime.Volatile -> Runtime.Dram_region
  | _ -> Runtime.Pool_region (Runtime.create_pool rt ~name:"kv" ~size:pool_size)

(* Run one YCSB spec against one index structure in one mode.  Under a
   relaxed persistency model every run-phase operation is an epoch
   boundary candidate ([Runtime.persist_op_boundary]) and the run ends
   with a full drain, so the measured cycles include the model's
   flush+fence µ-events — durability is weakened, never dropped. *)
let run_map (module M : Intf.ORDERED_MAP) ~mode ?(cfg = Nvml_arch.Config.default)
    ?(persist = Nvml_runtime.Persist.Eager) (spec : Workload.spec) : result =
  let rt = Runtime.create ~cfg ~mode ~persist () in
  let region = region_for rt mode in
  let m = M.create rt region in
  (* Pre-generate the op stream and stage the keys in a DRAM buffer the
     driver reads back during the run. *)
  let ops = ref [] in
  Workload.iter_ops spec (fun op -> ops := op :: !ops);
  let ops = Array.of_list (List.rev !ops) in
  let key_buf =
    Mem.map_fresh (Runtime.mem rt) Layout.Dram (Array.length ops * 8)
  in
  Array.iteri
    (fun i op ->
      let key =
        match op with
        | Workload.Read k
        | Workload.Update (k, _)
        | Workload.Insert (k, _)
        | Workload.Rmw (k, _) ->
            k
        | Workload.Scan (start, _) -> Workload.key_of_index start
      in
      Mem.write_word (Runtime.mem rt) (Int64.add key_buf (Int64.of_int (i * 8))) key)
    ops;
  (* Load phase. *)
  Telemetry.span "harness.load" ~args:[ ("records", spec.Workload.record_count) ]
    (fun () ->
      for i = 0 to spec.Workload.record_count - 1 do
        M.insert m ~key:(Workload.key_of_index i) ~value:(Int64.of_int i)
      done);
  (* Close the load phase's epoch before the phase boundary, so the
     load's (large, one-off) drain bills into the load phase and the
     measured run phase carries only its own drain traffic. *)
  Runtime.persist_sync rt;
  let load = Runtime.snapshot rt in
  let a0 = Cpu.attribution (Runtime.cpu rt) in
  let c0 = copy_counters (Runtime.counters rt) in
  (* Run phase: every op is bracketed with cycle stamps so its latency
     and attribution land in the per-cell recorder. *)
  let cpu = Runtime.cpu rt in
  let ol =
    Oplat.create ~cell:(M.name ^ "/" ^ Runtime.mode_name mode) ()
  in
  let hits = ref 0 and misses = ref 0 in
  Telemetry.span "harness.run" ~args:[ ("ops", Array.length ops) ] (fun () ->
      Array.iteri
        (fun i op ->
          Oplat.op_begin ol cpu;
          (* Driver work: fetch the key from the request buffer, dispatch. *)
          let key = Runtime.load_word rt ~site:s_driver key_buf ~off:(i * 8) in
          Runtime.instr rt 10;
          Oplat.mark ol cpu "driver";
          (match op with
          | Workload.Read _ -> (
              match M.find m key with
              | Some _ -> incr hits
              | None -> incr misses)
          | Workload.Update (_, v) | Workload.Insert (_, v) ->
              M.insert m ~key ~value:v
          | Workload.Scan (start, len) ->
              (* Multi-get over consecutive record indices: the first
                 key comes from the request buffer, the rest are
                 derived by the driver. *)
              for j = 0 to len - 1 do
                let k = if j = 0 then key else Workload.key_of_index (start + j) in
                match M.find m k with
                | Some _ -> incr hits
                | None -> incr misses
              done
          | Workload.Rmw (_, delta) ->
              let v =
                match M.find m key with
                | Some v -> incr hits; v
                | None -> incr misses; 0L
              in
              M.insert m ~key ~value:(Int64.add v delta));
          Runtime.persist_op_boundary rt;
          Oplat.op_end ol cpu
            (match op with
            | Workload.Read _ -> "get"
            | Workload.Update _ -> "put"
            | Workload.Insert _ -> "insert"
            | Workload.Scan _ -> "scan"
            | Workload.Rmw _ -> "rmw"))
        ops);
  (* Close the final epoch: the run is not over until its data is
     durable, so the drain bills into the measured run phase. *)
  Runtime.persist_sync rt;
  let after = Runtime.snapshot rt in
  Runtime.publish_stats rt;
  {
    benchmark = M.name;
    mode;
    load;
    run = Cpu.diff_snapshot after load;
    attr = Cpu.diff_attribution (Cpu.attribution (Runtime.cpu rt)) a0;
    checks = counter_diff (Runtime.counters rt) c0;
    hits = !hits;
    misses = !misses;
    oplat = ol;
    persist = persist_tally rt;
  }

(* The separate LL harness: build [nodes] nodes of two pointers and a
   16-byte value, then iterate the list accumulating the values. *)
let run_ll ~mode ?(cfg = Nvml_arch.Config.default)
    ?(persist = Nvml_runtime.Persist.Eager) ?(nodes = 10_000)
    ?(iterations = 10) () : result =
  let rt = Runtime.create ~cfg ~mode ~persist () in
  let region = region_for rt mode in
  let l = Linked_list.create rt region in
  let rng = Random.State.make [| 7 |] in
  Telemetry.span "harness.load" ~args:[ ("records", nodes) ] (fun () ->
      for _ = 1 to nodes do
        Linked_list.append l
          ~v0:(Random.State.int64 rng Int64.max_int)
          ~v1:(Random.State.int64 rng Int64.max_int)
      done);
  Runtime.persist_sync rt;
  let load = Runtime.snapshot rt in
  let a0 = Cpu.attribution (Runtime.cpu rt) in
  let c0 = copy_counters (Runtime.counters rt) in
  let cpu = Runtime.cpu rt in
  let ol = Oplat.create ~cell:("LL/" ^ Runtime.mode_name mode) () in
  let sum = ref 0L in
  Telemetry.span "harness.run" ~args:[ ("ops", iterations) ] (fun () ->
      for _ = 1 to iterations do
        Oplat.op_begin ol cpu;
        sum := Linked_list.iterate_sum l;
        Runtime.persist_op_boundary rt;
        Oplat.op_end ol cpu "scan"
      done);
  Runtime.persist_sync rt;
  let after = Runtime.snapshot rt in
  Runtime.publish_stats rt;
  {
    benchmark = "LL";
    mode;
    load;
    run = Cpu.diff_snapshot after load;
    attr = Cpu.diff_attribution (Cpu.attribution (Runtime.cpu rt)) a0;
    checks = counter_diff (Runtime.counters rt) c0;
    hits = nodes;
    misses = 0;
    oplat = ol;
    persist = persist_tally rt;
  }

(* Run a named benchmark (Table III) in a mode. *)
let run_benchmark name ~mode ?cfg ?persist (spec : Workload.spec) : result =
  if String.lowercase_ascii name = "ll" then
    run_ll ~mode ?cfg ?persist ~nodes:spec.Workload.record_count ()
  else run_map (Nvml_structures.Registry.find_map name) ~mode ?cfg ?persist spec
