(** An interactive persistent key-value store over the simulator: one
    pool, one index structure anchored at the pool root, a line-oriented
    command interpreter ([put]/[get]/[del]/[size]/[keys]/[crash]/
    [stats]/[help]) and a [crash] command that power-cycles the machine
    — committed data survives, relocated to a fresh mapping.  [crash
    torn] additionally tears the most recent persistent store (a seeded
    byte-mix of its old and new value) before the power goes out. *)

module Runtime = Nvml_runtime.Runtime

type t

val create : ?mode:Runtime.mode -> ?structure:string -> ?seed:int -> unit -> t
(** [structure] names any registry structure (default "RB").  [seed]
    (default 0) drives the torn-write byte masks, and nothing else, so
    scripted sessions replay bit-identically under fault injection. *)

val exec : t -> string -> string list
(** Execute one command line; returns the reply lines. *)
