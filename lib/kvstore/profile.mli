(** The check-site / lookaside profile: run one benchmark in the SW and
    HW configurations inside a fresh telemetry scope and distill the
    Section VII observability story — which sites executed dynamic
    checks (the ~42 % figure), the POLB/VALB hit rates, and cycle
    attribution by stall source. *)

module Telemetry = Nvml_telemetry.Telemetry
module Workload = Nvml_ycsb.Workload

type site_row = { site : string; static : bool; checks : int }

type t = {
  benchmark : string;
  sw : Harness.result;
  hw : Harness.result;
  sites : site_row list;  (** by descending checks, then name *)
  counters : (string * int) list;
  histos : (string * Telemetry.histo_stats) list;
  derived : (string * float) list;
      (** includes [check_sites.dynamic_fraction], [polb.hit_rate],
          [valb.hit_rate] *)
}

val run :
  ?par:((unit -> Harness.result) list -> Harness.result list) ->
  ?cfg:Nvml_arch.Config.t ->
  benchmark:string ->
  Workload.spec ->
  t
(** Profile [benchmark].  Telemetry is force-enabled for the duration
    (restored afterwards) and recorded in a private sink.  [par] runs
    the two independent mode cells — pass [Pool.run pool] to exercise
    the parallel merge; the result is identical either way. *)

val stats_json : t -> Nvml_telemetry.Json.t
(** The stats document ([{"schema": 1, "derived": ..., "counters": ...,
    "histograms": ..., "sites": ...}]). *)
