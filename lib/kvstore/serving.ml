(* The serving engine: the Section VII harness grown to production
   shape.  Records are sharded across many pools by key hash — each
   shard is an independent simulation cell with its own runtime, pool,
   allocator and superblock, so shards are share-nothing and a parallel
   runner ([Pool.run] from bench) produces results byte-identical to a
   sequential one.  A batching front-end amortizes runtime entry across
   a batch of requests, and an optional bounded-LRU DRAM front cache
   absorbs reads and write-backs dirty entries to NVM in the style of
   NVCache: hits never touch the persistent structure, evictions and
   scans flush dirty values back, and a final drain before detach makes
   the pool contents identical to a cache-disabled run. *)

module Layout = Nvml_simmem.Layout
module Mem = Nvml_simmem.Mem
module Cpu = Nvml_arch.Cpu
module Config = Nvml_arch.Config
module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Oplat = Nvml_runtime.Oplat
module Intf = Nvml_structures.Intf
module Registry = Nvml_structures.Registry
module Workload = Nvml_ycsb.Workload
module Distribution = Nvml_ycsb.Distribution
module Telemetry = Nvml_telemetry.Telemetry

let s_driver = Site.make ~static:true "serving.driver"
let s_cache = Site.make ~static:true "serving.cache"

(* Cost model for the driver shell around the library calls: entering
   the runtime (argument marshalling, checkpoint bookkeeping) is paid
   once per batch; each request pays a small dispatch cost on top of
   its library work. *)
let batch_entry_instrs = 40
let op_dispatch_instrs = 4

(* The simulated clock, for converting deterministic cycle counts into
   an ops/sec figure: Config.default models DRAM at 120 cycles = 45 ns,
   i.e. a ~2.67 GHz core. *)
let clock_hz = 120.0 /. 45e-9

let pool_size = 1 lsl 26 (* frames are lazily backed, so roomy pools are free *)

type config = {
  structure : string;
  mode : Runtime.mode;
  spec : Workload.spec;
  shards : int;
  batch : int;
  front_cache : int; (* total cache entries across all shards; 0 = off *)
  cfg : Config.t;
}

let default_config ?(structure = "Hash") ?(mode = Runtime.Hw)
    ?(cfg = Config.default) ?(shards = 1) ?(batch = 1) ?(front_cache = 0) spec
    =
  { structure; mode; spec; shards; batch; front_cache; cfg }

type cache_stats = {
  hits : int;
  misses : int;
  writebacks : int;
  evictions : int;
  scan_flushes : int;
}

let zero_cache_stats =
  { hits = 0; misses = 0; writebacks = 0; evictions = 0; scan_flushes = 0 }

let add_cache_stats a b =
  {
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    writebacks = a.writebacks + b.writebacks;
    evictions = a.evictions + b.evictions;
    scan_flushes = a.scan_flushes + b.scan_flushes;
  }

let hit_rate c =
  let total = c.hits + c.misses in
  if total = 0 then 0.0 else float_of_int c.hits /. float_of_int total

type shard = {
  index : int;
  records : int; (* records loaded into this shard *)
  ops : int; (* requests dispatched to this shard *)
  size : int; (* final structure size *)
  found : int;
  missing : int;
  load : Cpu.snapshot;
  run : Cpu.snapshot;
  cache : cache_stats;
  digest : int64; (* order-independent content digest *)
  oplat : Oplat.t;
}

type t = {
  structure : string;
  mode : Runtime.mode;
  spec : Workload.spec;
  shards : int;
  batch : int;
  front_cache : int;
  per_shard : shard list; (* in shard-index order *)
  records : int;
  ops : int; (* total requests (scan sub-gets count individually) *)
  found : int;
  missing : int;
  size : int;
  load_cycles_max : int;
  run_cycles_max : int; (* service time: shards run in parallel *)
  run_cycles_total : int;
  cache : cache_stats;
  digest : int64;
  oplat : Oplat.t; (* merged across shards, in shard order *)
}

let ops_per_sec t =
  if t.run_cycles_max = 0 then 0.0
  else float_of_int t.ops /. (float_of_int t.run_cycles_max /. clock_hz)

(* --- sharding ----------------------------------------------------------- *)

(* Record keys are already splitmix-scrambled; re-scramble before
   taking the residue so the shard function is decorrelated from any
   other use of the key bits. *)
let shard_of_key ~shards key =
  if shards <= 1 then 0
  else
    Int64.to_int
      (Int64.rem
         (Int64.logand (Distribution.scramble key) Int64.max_int)
         (Int64.of_int shards))

(* Growable int buffer for the per-shard op streams: two words per
   request — [(record_index lsl 3) lor tag] and an auxiliary word —
   instead of a materialized constructor list, which at tens of
   millions of ops would dominate the heap. *)
module Buf = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 64 0; len = 0 }

  let push b x =
    if b.len = Array.length b.a then begin
      let a' = Array.make (2 * Array.length b.a) 0 in
      Array.blit b.a 0 a' 0 b.len;
      b.a <- a'
    end;
    b.a.(b.len) <- x;
    b.len <- b.len + 1

  let contents b = Array.sub b.a 0 b.len
end

let tag_read = 0
let tag_update = 1
let tag_insert = 2
let tag_scan = 3
let tag_rmw = 4

let tag_name = function
  | 0 -> "get"
  | 1 -> "put"
  | 2 -> "insert"
  | 3 -> "scan"
  | 4 -> "rmw"
  | _ -> assert false

(* Partition the load population and the operation stream across
   shards.  Scans become per-shard sub-gets; the first sub-get a scan
   sends to a shard carries a flush flag (aux bit 0) so the shard's
   front cache writes dirty entries back once per scan before the scan
   reads around it. *)
let partition (c : config) =
  let shards = c.shards in
  let loads = Array.init shards (fun _ -> Buf.create ()) in
  for i = 0 to c.spec.Workload.record_count - 1 do
    Buf.push loads.(shard_of_key ~shards (Workload.key_of_index i)) i
  done;
  let ops = Array.init shards (fun _ -> Buf.create ()) in
  let push_op s tag idx aux =
    Buf.push ops.(s) ((idx lsl 3) lor tag);
    Buf.push ops.(s) aux
  in
  let shard_of_index i = shard_of_key ~shards (Workload.key_of_index i) in
  let scan_mark = Array.make shards (-1) in
  let scan_id = ref 0 in
  Workload.iter_idx_ops c.spec (fun iop ->
      match iop with
      | Workload.IRead i -> push_op (shard_of_index i) tag_read i 0
      | Workload.IUpdate (i, v) -> push_op (shard_of_index i) tag_update i v
      | Workload.IInsert (i, v) -> push_op (shard_of_index i) tag_insert i v
      | Workload.IRmw (i, v) -> push_op (shard_of_index i) tag_rmw i v
      | Workload.IScan (start, len) ->
          incr scan_id;
          for j = start to start + len - 1 do
            let s = shard_of_index j in
            let flush =
              if scan_mark.(s) <> !scan_id then begin
                scan_mark.(s) <- !scan_id;
                1
              end
              else 0
            in
            push_op s tag_scan j flush
          done);
  ( Array.map Buf.contents loads,
    Array.map Buf.contents ops )

(* --- the DRAM front cache ------------------------------------------------ *)

(* A bounded LRU write-back cache in the driver's volatile memory.
   Entry values are mirrored into a simulated-DRAM slab so probes and
   fills are charged DRAM accesses in the timing model; the index
   structure itself is host-side bookkeeping (hash table + intrusive
   LRU list over slots) charged as instructions. *)
module Fcache = struct
  type t = {
    cap : int;
    rt : Runtime.t;
    slab : int64; (* simulated DRAM backing the value slots *)
    tbl : (int64, int) Hashtbl.t; (* key -> slot *)
    keys : int64 array;
    vals : int64 array;
    dirty : bool array;
    prev : int array;
    next : int array;
    mutable head : int; (* MRU; -1 when empty *)
    mutable tail : int; (* LRU *)
    mutable size : int;
    mutable hits : int;
    mutable misses : int;
    mutable writebacks : int;
    mutable evictions : int;
    mutable scan_flushes : int;
  }

  let create rt cap =
    if cap < 1 then invalid_arg "Fcache.create: capacity must be >= 1";
    {
      cap;
      rt;
      slab = Mem.map_fresh (Runtime.mem rt) Layout.Dram (cap * 8);
      tbl = Hashtbl.create (2 * cap);
      keys = Array.make cap 0L;
      vals = Array.make cap 0L;
      dirty = Array.make cap false;
      prev = Array.make cap (-1);
      next = Array.make cap (-1);
      head = -1;
      tail = -1;
      size = 0;
      hits = 0;
      misses = 0;
      writebacks = 0;
      evictions = 0;
      scan_flushes = 0;
    }

  let stats t =
    {
      hits = t.hits;
      misses = t.misses;
      writebacks = t.writebacks;
      evictions = t.evictions;
      scan_flushes = t.scan_flushes;
    }

  (* Intrusive LRU list over slots. *)
  let unlink t slot =
    let p = t.prev.(slot) and n = t.next.(slot) in
    if p >= 0 then t.next.(p) <- n else t.head <- n;
    if n >= 0 then t.prev.(n) <- p else t.tail <- p

  let push_front t slot =
    t.prev.(slot) <- -1;
    t.next.(slot) <- t.head;
    if t.head >= 0 then t.prev.(t.head) <- slot else t.tail <- slot;
    t.head <- slot

  let touch t slot =
    if t.head <> slot then begin
      unlink t slot;
      push_front t slot
    end

  let slot_load t slot =
    ignore (Runtime.load_word t.rt ~site:s_cache t.slab ~off:(slot * 8))

  let slot_store t slot v =
    Runtime.store_word t.rt ~site:s_cache t.slab ~off:(slot * 8) v

  (* Write one dirty slot back to the persistent structure. *)
  let write_back_slot t slot ~write_back =
    slot_load t slot;
    write_back t.keys.(slot) t.vals.(slot);
    t.dirty.(slot) <- false;
    t.writebacks <- t.writebacks + 1

  (* Install [key -> v] in the cache, evicting (and writing back) the
     LRU victim when full. *)
  let install t key v ~dirty ~write_back =
    Runtime.instr t.rt 2;
    match Hashtbl.find_opt t.tbl key with
    | Some slot ->
        t.vals.(slot) <- v;
        t.dirty.(slot) <- t.dirty.(slot) || dirty;
        slot_store t slot v;
        touch t slot
    | None ->
        let slot =
          if t.size < t.cap then begin
            let s = t.size in
            t.size <- t.size + 1;
            s
          end
          else begin
            let victim = t.tail in
            if t.dirty.(victim) then write_back_slot t victim ~write_back;
            Hashtbl.remove t.tbl t.keys.(victim);
            unlink t victim;
            t.evictions <- t.evictions + 1;
            victim
          end
        in
        t.keys.(slot) <- key;
        t.vals.(slot) <- v;
        t.dirty.(slot) <- dirty;
        Hashtbl.replace t.tbl key slot;
        push_front t slot;
        slot_store t slot v

  (* Serve a read: probe the cache, fall back to [find] and install the
     result clean. *)
  let get t key ~find ~write_back =
    Runtime.instr t.rt 2;
    match Hashtbl.find_opt t.tbl key with
    | Some slot ->
        slot_load t slot;
        touch t slot;
        t.hits <- t.hits + 1;
        Some t.vals.(slot)
    | None ->
        t.misses <- t.misses + 1;
        let r = find key in
        (match r with
        | Some v -> install t key v ~dirty:false ~write_back
        | None -> ());
        r

  let put t key v ~write_back = install t key v ~dirty:true ~write_back

  (* Flush every dirty entry (slot order — deterministic). *)
  let flush_dirty t ~write_back =
    for slot = 0 to t.size - 1 do
      if t.dirty.(slot) then write_back_slot t slot ~write_back
    done

  let scan_flush t ~write_back =
    t.scan_flushes <- t.scan_flushes + 1;
    flush_dirty t ~write_back

  let drain = flush_dirty
end

(* --- one shard ----------------------------------------------------------- *)

(* Order-independent digest of the structure contents: write-back
   reorders NVM allocations between cache and no-cache runs (and hash
   iteration order with them), so the contents check must not depend on
   iteration or allocation order.  Summing a scrambled per-entry hash
   is commutative and keeps collisions vanishingly unlikely. *)
let entry_hash ~key ~value =
  Distribution.scramble (Int64.logxor key (Distribution.scramble value))

let run_shard (c : config) (module M : Intf.ORDERED_MAP) ~shard
    ~(loads : int array) ~(ops : int array) () : shard =
  let rt = Runtime.create ~cfg:c.cfg ~mode:c.mode () in
  let region =
    match c.mode with
    | Runtime.Volatile -> Runtime.Dram_region
    | _ ->
        Runtime.Pool_region
          (Runtime.create_pool rt
             ~name:(Printf.sprintf "kv.shard%02d" shard)
             ~size:pool_size)
  in
  let m = M.create rt region in
  Array.iter
    (fun i -> M.insert m ~key:(Workload.key_of_index i) ~value:(Int64.of_int i))
    loads;
  let load = Runtime.snapshot rt in
  let n_ops = Array.length ops / 2 in
  (* Stage each request's primary key in a DRAM buffer the driver reads
     back per op, as in the single-pool harness. *)
  let key_buf =
    Mem.map_fresh (Runtime.mem rt) Layout.Dram (max 8 (n_ops * 8))
  in
  for j = 0 to n_ops - 1 do
    let idx = ops.(2 * j) lsr 3 in
    Mem.write_word (Runtime.mem rt)
      (Int64.add key_buf (Int64.of_int (j * 8)))
      (Workload.key_of_index idx)
  done;
  let cache =
    if c.front_cache > 0 then
      Some (Fcache.create rt (max 1 (c.front_cache / c.shards)))
    else None
  in
  let write_back key value = M.insert m ~key ~value in
  let cpu = Runtime.cpu rt in
  let ol =
    Oplat.create ~cell:(Printf.sprintf "serving/%s/shard%02d" M.name shard) ()
  in
  let found = ref 0 and missing = ref 0 in
  let j = ref 0 in
  while !j < n_ops do
    let batch_end = min n_ops (!j + c.batch) in
    (* Runtime entry and checkpoint bookkeeping, paid once per batch. *)
    Runtime.instr rt batch_entry_instrs;
    while !j < batch_end do
      let w0 = ops.(2 * !j) and aux = ops.(2 * !j + 1) in
      let tag = w0 land 7 in
      Oplat.op_begin ol cpu;
      let key = Runtime.load_word rt ~site:s_driver key_buf ~off:(!j * 8) in
      Runtime.instr rt op_dispatch_instrs;
      Oplat.mark ol cpu "driver";
      (match tag with
      | 0 (* get *) ->
          let r =
            match cache with
            | Some fc -> Fcache.get fc key ~find:(fun k -> M.find m k) ~write_back
            | None -> M.find m key
          in
          (match r with Some _ -> incr found | None -> incr missing)
      | 1 | 2 (* put / insert *) ->
          let v = Int64.of_int aux in
          (match cache with
          | Some fc -> Fcache.put fc key v ~write_back
          | None -> M.insert m ~key ~value:v)
      | 3 (* scan sub-get: flush once per scan, then bypass the cache *) ->
          (match cache with
          | Some fc when aux land 1 = 1 -> Fcache.scan_flush fc ~write_back
          | _ -> ());
          (match M.find m key with
          | Some _ -> incr found
          | None -> incr missing)
      | 4 (* rmw *) ->
          let delta = Int64.of_int aux in
          let v0 =
            match
              match cache with
              | Some fc ->
                  Fcache.get fc key ~find:(fun k -> M.find m k) ~write_back
              | None -> M.find m key
            with
            | Some v ->
                incr found;
                v
            | None ->
                incr missing;
                0L
          in
          let v1 = Int64.add v0 delta in
          (match cache with
          | Some fc -> Fcache.put fc key v1 ~write_back
          | None -> M.insert m ~key ~value:v1)
      | _ -> assert false);
      Oplat.op_end ol cpu (tag_name tag);
      incr j
    done
  done;
  (* Drain dirty entries so the persistent contents match a
     cache-disabled run, then detach. *)
  (match cache with
  | Some fc -> Fcache.drain fc ~write_back
  | None -> ());
  let after = Runtime.snapshot rt in
  let size = M.size m in
  let digest = ref 0L in
  M.iter m (fun ~key ~value -> digest := Int64.add !digest (entry_hash ~key ~value));
  (match region with
  | Runtime.Pool_region id -> Runtime.detach_pool rt id
  | Runtime.Dram_region -> ());
  Runtime.publish_stats rt;
  {
    index = shard;
    records = Array.length loads;
    ops = n_ops;
    size;
    found = !found;
    missing = !missing;
    load;
    run = Cpu.diff_snapshot after load;
    cache = (match cache with Some fc -> Fcache.stats fc | None -> zero_cache_stats);
    digest = !digest;
    oplat = ol;
  }

(* --- the engine ---------------------------------------------------------- *)

let inline_runner fs = List.map (fun f -> f ()) fs

let c_hit = Telemetry.counter "serving.cache.hit"
let c_miss = Telemetry.counter "serving.cache.miss"
let c_writeback = Telemetry.counter "serving.cache.writeback"
let c_evict = Telemetry.counter "serving.cache.evict"
let c_scan_flush = Telemetry.counter "serving.cache.scan_flush"
let c_ops = Telemetry.counter "serving.ops"

(* Run the configured serving workload.  [par] runs the share-nothing
   shard cells — [Pool.run pool] in bench, sequential by default; the
   merge below consumes results in shard-index (= submission) order, so
   the report is byte-identical either way. *)
let run ?(par = inline_runner) (c : config) : t =
  if c.shards < 1 then invalid_arg "Serving.run: shards must be >= 1";
  if c.batch < 1 then invalid_arg "Serving.run: batch must be >= 1";
  if c.front_cache < 0 then invalid_arg "Serving.run: front_cache must be >= 0";
  let (module M : Intf.ORDERED_MAP) = Registry.find_map c.structure in
  let loads, ops = partition c in
  let thunks =
    List.init c.shards (fun s ->
        fun () -> run_shard c (module M) ~shard:s ~loads:loads.(s) ~ops:ops.(s) ())
  in
  let per_shard = par thunks in
  let merged_ol = Oplat.create ~cell:(Printf.sprintf "serving/%s" M.name) () in
  List.iter (fun (s : shard) -> Oplat.merge_into ~dst:merged_ol s.oplat) per_shard;
  let sum f = List.fold_left (fun acc (s : shard) -> acc + f s) 0 per_shard in
  let maxi f =
    List.fold_left (fun acc (s : shard) -> max acc (f s)) 0 per_shard
  in
  let cache =
    List.fold_left
      (fun acc (s : shard) -> add_cache_stats acc s.cache)
      zero_cache_stats per_shard
  in
  let digest =
    List.fold_left
      (fun acc (s : shard) -> Int64.add acc s.digest)
      0L per_shard
  in
  let t =
    {
      structure = M.name;
      mode = c.mode;
      spec = c.spec;
      shards = c.shards;
      batch = c.batch;
      front_cache = c.front_cache;
      per_shard;
      records = sum (fun s -> s.records);
      ops = sum (fun s -> s.ops);
      found = sum (fun s -> s.found);
      missing = sum (fun s -> s.missing);
      size = sum (fun s -> s.size);
      load_cycles_max = maxi (fun s -> s.load.Cpu.cycles);
      run_cycles_max = maxi (fun s -> s.run.Cpu.cycles);
      run_cycles_total = sum (fun s -> s.run.Cpu.cycles);
      cache;
      digest;
      oplat = merged_ol;
    }
  in
  if Telemetry.enabled () then begin
    Telemetry.add c_hit cache.hits;
    Telemetry.add c_miss cache.misses;
    Telemetry.add c_writeback cache.writebacks;
    Telemetry.add c_evict cache.evictions;
    Telemetry.add c_scan_flush cache.scan_flushes;
    Telemetry.add c_ops t.ops
  end;
  t
