(** The key-value store harness of Section VII-A: a driver mapping
    8-byte keys to 8-byte values through a pluggable index structure,
    loading an initial population and replaying a YCSB operation stream,
    measuring the run phase in the timing model.  The driver's key
    buffer lives in simulated DRAM, so volatile accesses interleave with
    the library's persistent accesses as in a real run. *)

module Cpu = Nvml_arch.Cpu
module Xlate = Nvml_core.Xlate
module Runtime = Nvml_runtime.Runtime
module Workload = Nvml_ycsb.Workload

type counter_delta = {
  dynamic_checks : int;
  abs_to_rel : int;
  rel_to_abs : int;
  volatile_escapes : int;
}

type persist_tally = {
  model : Nvml_runtime.Persist.model;
  drains : int;
  flushes : int;  (** line write-backs charged by the drains *)
  fences : int;
  buffered : int;  (** distinct dirty words buffered across the run *)
}

type result = {
  benchmark : string;
  mode : Runtime.mode;
  load : Cpu.snapshot;  (** load-phase deltas *)
  run : Cpu.snapshot;  (** run-phase deltas — what the figures report *)
  attr : Cpu.attribution;  (** run-phase cycle attribution *)
  checks : counter_delta;  (** run-phase conversion/check counts *)
  hits : int;
  misses : int;
  oplat : Nvml_runtime.Oplat.t;
      (** per-op run-phase latencies: every get/put/insert (or LL scan
          iteration) bracketed with cycle stamps, decomposed into
          base/check/translation/stall/media components, slowest ops
          retained with spans *)
  persist : persist_tally;
      (** whole-run drain traffic of the persistency model (all zero
          under [Eager]) *)
}

val pool_size : int

val run_map :
  Nvml_structures.Intf.ordered_map ->
  mode:Runtime.mode ->
  ?cfg:Nvml_arch.Config.t ->
  ?persist:Nvml_runtime.Persist.model ->
  Workload.spec ->
  result
(** [persist] (default [Eager]) selects the machine's persistency
    model.  Under a relaxed model every run-phase operation is an epoch
    boundary candidate and the run ends with a full drain, so the
    measured cycles include the model's flush+fence µ-events. *)

val run_ll :
  mode:Runtime.mode ->
  ?cfg:Nvml_arch.Config.t ->
  ?persist:Nvml_runtime.Persist.model ->
  ?nodes:int ->
  ?iterations:int ->
  unit ->
  result
(** The separate LL harness: build [nodes] nodes, iterate accumulating
    the values. *)

val run_benchmark :
  string ->
  mode:Runtime.mode ->
  ?cfg:Nvml_arch.Config.t ->
  ?persist:Nvml_runtime.Persist.model ->
  Workload.spec ->
  result
(** Run a Table III benchmark by name ("LL" routes to {!run_ll}). *)
