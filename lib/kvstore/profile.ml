(* The check-site / lookaside profile: run one benchmark in the SW and
   HW configurations inside a fresh telemetry scope and distill the
   observability story the paper tells in Section VII —

   - which static sites executed dynamic checks and how often (the SW
     version's per-site profile; the fraction of sites needing dynamic
     checks is the paper's ~42 % figure),
   - the POLB/VALB hit rates the HW version's latency-hiding rests on,
   - where the cycles went (attribution by stall source).

   The two harness runs are independent simulation cells, so the caller
   may hand us a parallel runner ([Pool.run] from bench) — telemetry
   merges at the join make the result identical either way. *)

module Telemetry = Nvml_telemetry.Telemetry
module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Cpu = Nvml_arch.Cpu
module Workload = Nvml_ycsb.Workload

type site_row = { site : string; static : bool; checks : int }

type t = {
  benchmark : string;
  sw : Harness.result;
  hw : Harness.result;
  sites : site_row list; (* by descending checks, then name *)
  counters : (string * int) list;
  histos : (string * Telemetry.histo_stats) list;
  derived : (string * float) list;
}

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

(* One row per distinct site name.  [Site.make] is free to mint the
   same name repeatedly (re-created structures); the rows below merge
   them, consistent with the shared telemetry counter they already
   share. *)
let site_rows () =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let name = Site.name s in
      if not (Hashtbl.mem tbl name) then
        Hashtbl.replace tbl name
          { site = name; static = Site.is_static s; checks = Site.checks s })
    (Site.all ());
  Hashtbl.fold (fun _ r acc -> r :: acc) tbl []
  |> List.sort (fun a b ->
         match compare b.checks a.checks with
         | 0 -> compare a.site b.site
         | c -> c)

let inline_runner fs = List.map (fun f -> f ()) fs

(* Run the profile.  [par] runs the two independent mode cells —
   [Pool.run pool] in bench, sequential by default. *)
let run ?(par = inline_runner) ?cfg ~benchmark (spec : Workload.spec) : t =
  let was_enabled = Telemetry.enabled () in
  Telemetry.set_enabled true;
  Fun.protect ~finally:(fun () -> Telemetry.set_enabled was_enabled)
  @@ fun () ->
  Telemetry.run_with_sink (Telemetry.fresh_sink ())
  @@ fun () ->
  let sw, hw =
    match
      par
        [
          (fun () -> Harness.run_benchmark benchmark ~mode:Runtime.Sw ?cfg spec);
          (fun () -> Harness.run_benchmark benchmark ~mode:Runtime.Hw ?cfg spec);
        ]
    with
    | [ sw; hw ] -> (sw, hw)
    | _ -> assert false
  in
  let sites = site_rows () in
  let dynamic_sites = List.length (List.filter (fun r -> not r.static) sites) in
  let counters = Telemetry.counters_snapshot () in
  let cval name = try List.assoc name counters with Not_found -> 0 in
  let derived =
    [
      (* Fraction of registered pointer-operation sites the inference
         could not resolve — the paper's ~42 %. *)
      ( "check_sites.dynamic_fraction",
        ratio dynamic_sites (List.length sites) );
      (* Execution-weighted: of the check *executions* the SW version
         reached, how many actually ran (vs statically elided). *)
      ( "check_execs.dynamic_fraction",
        ratio (cval "checks.dynamic")
          (cval "checks.dynamic" + cval "checks.elided") );
      (* Lookaside hit rates, from the counters the HW run published
         (whole-run: the VALB sees most of its traffic during pool
         setup, so run-phase-only deltas can be all-zero). *)
      ( "polb.hit_rate",
        ratio (cval "polb.hit") (cval "polb.hit" + cval "polb.miss") );
      ( "valb.hit_rate",
        ratio (cval "valb.hit") (cval "valb.hit" + cval "valb.miss") );
      ( "vspace.tc.hit_rate",
        ratio (cval "vspace.tc.hit")
          (cval "vspace.tc.hit" + cval "vspace.tc.miss") );
      ("sw.slowdown", ratio sw.Harness.run.Cpu.cycles hw.Harness.run.Cpu.cycles);
    ]
  in
  {
    benchmark;
    sw;
    hw;
    sites;
    counters;
    histos = Telemetry.histos_snapshot ();
    derived;
  }

(* The stats document, built from the snapshots captured inside the
   profile's telemetry scope (the scope is gone by the time callers
   serialize).  Same schema as [Telemetry.stats_json]. *)
let stats_json (t : t) : Nvml_telemetry.Json.t =
  let module Json = Nvml_telemetry.Json in
  Json.Obj
    [
      ("schema", Json.Int 1);
      ("benchmark", Json.String t.benchmark);
      ( "derived",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) t.derived) );
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) t.counters) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, (h : Telemetry.histo_stats)) ->
               ( k,
                 Json.Obj
                   [
                     ("count", Json.Int h.Telemetry.count);
                     ("sum", Json.Int h.Telemetry.sum);
                     ("min", Json.Int h.Telemetry.min);
                     ("max", Json.Int h.Telemetry.max);
                     ("mean", Json.Float h.Telemetry.mean);
                     ( "log2_buckets",
                       Json.List
                         (List.map
                            (fun (ub, n) ->
                              Json.List [ Json.Int ub; Json.Int n ])
                            h.Telemetry.log2_buckets) );
                   ] ))
             t.histos) );
      ( "sites",
        Json.Obj
          (List.map
             (fun r ->
               ( r.site,
                 Json.Obj
                   [
                     ("static", Json.Bool r.static);
                     ("checks", Json.Int r.checks);
                   ] ))
             t.sites) );
    ]
