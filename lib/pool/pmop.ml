(* Persistent memory object pool (PMOP) manager — the OS/kernel side of
   the design: pool creation, opening (mapping into the NVM half of the
   address space), detaching, and the two kernel tables the hardware
   lookaside buffers are backed by:

     POT  (persistent object table) : pool id -> current virtual base
     VAT  (virtual address table)   : virtual range -> pool id

   Pools are long-lived: their physical NVM frames and registry entries
   survive a simulated crash; their mappings do not.  On re-open after a
   restart the manager deliberately maps pools at *different* virtual
   bases, exercising the relocatability persistent pointers exist for. *)

module Mem = Nvml_simmem.Mem
module Layout = Nvml_simmem.Layout
module Vspace = Nvml_simmem.Vspace
module Physmem = Nvml_simmem.Physmem
module Fi = Nvml_simmem.Fi
module Ptr = Nvml_core.Ptr
module Xlate = Nvml_core.Xlate
module Telemetry = Nvml_telemetry.Telemetry
module Media = Nvml_media.Media

let c_pool_creates = Telemetry.counter "pool.creates"
let c_pool_opens = Telemetry.counter "pool.opens"
let c_pmallocs = Telemetry.counter "pool.pmallocs"
let c_pfrees = Telemetry.counter "pool.pfrees"
let c_attach_verified = Telemetry.counter "media.attach.verified"
let c_attach_dirty = Telemetry.counter "media.attach.dirty"
let c_attach_degraded = Telemetry.counter "media.attach.degraded"
let c_seals = Telemetry.counter "media.seals"
let c_write_refused = Telemetry.counter "media.writes_refused"

type pool = {
  id : int;
  name : string;
  size : int; (* bytes, page-rounded *)
  frames : int list; (* persistent physical NVM frames *)
  mutable base : int64 option; (* POT entry: None when detached *)
  mutable degraded : bool;
      (* attached read-only: the superblock failed verification and was
         not (or could not be) repaired.  Volatile attach state. *)
  mutable dirtied : bool;
      (* this attach session has broken the seal (or attached a dirty
         image); the first metadata write of a sealed session verifies
         the superblock checksum, then marks the arena dirty *)
}

type t = {
  mem : Mem.t;
  pools : (int, pool) Hashtbl.t;
  by_name : (string, int) Hashtbl.t;
  mutable next_id : int;
  mutable restarts : int;
  mutable vat : (int64 * int64 * int) array;
      (* mapped pools sorted by base: (base, size, id) *)
  mutable meta_hook : (pool:int -> offset:int64 -> unit) option;
      (* called before every allocator-metadata write; lets a
         transaction undo-log freelist updates (see Txn.instrument) *)
  mutable degraded_count : int;
      (* pools currently attached read-only; lets the runtime's store
         path guard cost one integer test when everything is healthy *)
  map_generation : int ref;
      (* bumped on every mapping change; shared with the translation
         provider so Xlate can memoize pool-base lookups safely *)
}

exception Unknown_pool of string
exception Already_open of string

let create mem =
  {
    mem;
    pools = Hashtbl.create 16;
    by_name = Hashtbl.create 16;
    next_id = 1;
    restarts = 0;
    vat = [||];
    meta_hook = None;
    degraded_count = 0;
    map_generation = ref 0;
  }

let mem t = t.mem

let rebuild_vat t =
  incr t.map_generation;
  let entries =
    Hashtbl.fold
      (fun _ p acc ->
        match p.base with
        | Some base -> (base, Int64.of_int p.size, p.id) :: acc
        | None -> acc)
      t.pools []
  in
  t.vat <-
    Array.of_list
      (List.sort (fun (a, _, _) (b, _, _) -> Int64.compare a b) entries)

let find_pool t id =
  match Hashtbl.find_opt t.pools id with
  | Some p -> p
  | None -> raise (Unknown_pool (string_of_int id))

let find_pool_by_name t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> find_pool t id
  | None -> raise (Unknown_pool name)

let pool_base t id = (find_pool t id).base
let pool_id_of_name t name = (find_pool_by_name t name).id
let pool_size t id = (find_pool t id).size
let pool_ids t = Hashtbl.fold (fun id _ acc -> id :: acc) t.pools [] |> List.sort compare

let set_degraded t (p : pool) v =
  if p.degraded <> v then begin
    p.degraded <- v;
    t.degraded_count <- t.degraded_count + (if v then 1 else -1)
  end

let refuse_write (p : pool) =
  if Telemetry.enabled () then Telemetry.incr c_write_refused;
  raise
    (Media.Media_error
       (Fmt.str "%s: pool is attached read-only (degraded)" p.name))

(* Arena accessor for an open pool: reads/writes by intra-pool offset.
   Recursive because the seal-breaking write below re-enters the writer
   for the dirty marker itself. *)
let rec arena_access t (p : pool) : Freelist.access =
  match p.base with
  | None -> raise (Already_open (p.name ^ ": not mapped"))
  | Some base ->
      {
        Freelist.read = (fun off -> Mem.read_word t.mem (Int64.add base off));
        write =
          (fun off v ->
            if p.degraded then refuse_write p;
            if not p.dirtied then begin
              (* First metadata write of a sealed session: this is the
                 dereference point for the checksummed superblock —
                 verify it before trusting the free list it describes,
                 then break the seal.  Setting [dirtied] first keeps the
                 dirty marker's own write from recursing. *)
              let a = arena_access t p in
              (match Freelist.superblock_state a with
              | Freelist.Sealed | Freelist.Dirty | Freelist.Uninitialized -> ()
              | Freelist.Corrupt reason ->
                  raise
                    (Media.Media_error
                       (Fmt.str "%s: superblock: %s" p.name reason)));
              p.dirtied <- true;
              Freelist.mark_dirty a
            end;
            Physmem.fire (Mem.phys t.mem)
              (Fi.Alloc_meta_write { pool = p.id; offset = off });
            (match t.meta_hook with
            | None -> ()
            | Some f -> f ~pool:p.id ~offset:off);
            Mem.write_word t.mem (Int64.add base off) v);
      }

(* Maintenance accessor for the scrub engine: reads are still subject
   to the media model (scrub catches [Media_error] itself), but writes
   bypass the degraded refusal, the seal protocol, fault-injection
   events and the transaction hook — repair is not an application
   mutation. *)
let scrub_access t ~pool : Freelist.access =
  let p = find_pool t pool in
  match p.base with
  | None -> raise (Already_open (p.name ^ ": not mapped"))
  | Some base ->
      {
        Freelist.read = (fun off -> Mem.read_word t.mem (Int64.add base off));
        write = (fun off v -> Mem.write_word t.mem (Int64.add base off) v);
      }

let set_meta_hook t hook = t.meta_hook <- hook

(* Re-seal a quiescent pool: refresh the superblock checksum and the
   replica snapshot.  No-op for degraded (read-only) pools and for
   pools whose seal is already valid. *)
let seal_pool t ~pool =
  let p = find_pool t pool in
  if p.base <> None && (not p.degraded) && p.dirtied then begin
    Freelist.seal (arena_access t p);
    p.dirtied <- false;
    if Telemetry.enabled () then Telemetry.incr c_seals
  end

(* Create a pool: allocate its NVM frames, map it, initialize its
   embedded allocator, and return its system-wide unique id. *)
let create_pool t ~name ~size =
  if Telemetry.enabled () then Telemetry.incr c_pool_creates;
  if Hashtbl.mem t.by_name name then
    Fmt.invalid_arg "Pmop.create_pool: pool %S already exists" name;
  let size = Layout.pages_of_bytes size * Layout.page_size in
  if Int64.of_int size > Ptr.max_pool_size then
    Fmt.invalid_arg "Pmop.create_pool: %d bytes exceeds 4 GiB pool limit" size;
  let id = t.next_id in
  t.next_id <- id + 1;
  let frames =
    Nvml_simmem.Physmem.alloc_frames (Mem.phys t.mem) Layout.Nvm
      (Layout.pages_of_bytes size)
  in
  let base = Mem.map_existing t.mem Layout.Nvm frames in
  let pool =
    { id; name; size; frames; base = Some base; degraded = false; dirtied = true }
  in
  Hashtbl.replace t.pools id pool;
  Hashtbl.replace t.by_name name id;
  Freelist.init (arena_access t pool) ~capacity:(Int64.of_int size);
  (* A fresh pool starts sealed: its checksums and replica are valid
     until the first allocation of this session breaks the seal. *)
  Freelist.seal (arena_access t pool);
  pool.dirtied <- false;
  rebuild_vat t;
  id

(* Open (map) an existing pool, e.g. after a restart.  The manager skews
   the mapping base by a restart-dependent number of pages so that a
   pool never lands at the address it had in the previous run. *)
let open_pool t name =
  if Telemetry.enabled () then Telemetry.incr c_pool_opens;
  let p = find_pool_by_name t name in
  (match p.base with
  | Some _ -> raise (Already_open name)
  | None -> ());
  Vspace.skew_nvm_brk (Mem.vspace t.mem) (1 + ((t.restarts * 31 + p.id * 7) mod 61));
  let base = Mem.map_existing t.mem Layout.Nvm p.frames in
  p.base <- Some base;
  rebuild_vat t;
  (* Verified attach.  A sealed image must pass its checksum; a dirty
     image is a crash picture whose consistency the undo-log journal
     governs, exactly as before the integrity layer existed.  A corrupt
     (or unreadable) superblock degrades the attach to read-only rather
     than propagating garbage — the scrub engine decides whether the
     replica can repair it. *)
  let a = arena_access t p in
  let state =
    try Freelist.superblock_state a
    with Media.Media_error m -> Freelist.Corrupt ("unreadable: " ^ m)
  in
  (match state with
  | Freelist.Sealed ->
      set_degraded t p false;
      p.dirtied <- false;
      if Telemetry.enabled () then Telemetry.incr c_attach_verified
  | Freelist.Dirty ->
      set_degraded t p false;
      p.dirtied <- true;
      if Telemetry.enabled () then Telemetry.incr c_attach_dirty
  | Freelist.Uninitialized ->
      (* No magic and no seal: creation never completed.  If the
         replica still vouches for the pool this is media damage and
         worth a degraded attach; otherwise the image is simply gone. *)
      let cap = Int64.of_int p.size in
      if
        try Freelist.replica_intact a ~capacity:cap
        with Media.Media_error _ -> false
      then begin
        set_degraded t p true;
        p.dirtied <- true;
        if Telemetry.enabled () then Telemetry.incr c_attach_degraded
      end
      else begin
        p.base <- None;
        Mem.unmap t.mem ~base ~bytes:p.size;
        rebuild_vat t;
        raise (Freelist.Corrupt_arena (name ^ ": pool image lost its header"))
      end
  | Freelist.Corrupt _ ->
      set_degraded t p true;
      p.dirtied <- true;
      if Telemetry.enabled () then Telemetry.incr c_attach_degraded);
  base

let detach_pool t id =
  let p = find_pool t id in
  match p.base with
  | None -> ()
  | Some base ->
      (* A clean detach leaves the image sealed, so the next attach can
         verify it end to end; degraded pools are left untouched. *)
      seal_pool t ~pool:id;
      Mem.unmap t.mem ~base ~bytes:p.size;
      p.base <- None;
      set_degraded t p false;
      rebuild_vat t

(* Simulated machine crash: volatile memory and all mappings vanish;
   pool frames and the registry survive. *)
let crash t =
  Mem.crash t.mem;
  Hashtbl.iter
    (fun _ p ->
      p.base <- None;
      (* Degraded is attach-session state: the next open re-verifies the
         (persistent) checksums and re-derives it. *)
      p.degraded <- false;
      p.dirtied <- true)
    t.pools;
  t.degraded_count <- 0;
  incr t.map_generation;
  t.vat <- [||];
  t.meta_hook <- None (* hooks are volatile state — reinstall after restart *);
  t.restarts <- t.restarts + 1

let restarts t = t.restarts

(* VAT lookup: binary search the mapped ranges for one covering [va]. *)
let pool_of_va t (va : int64) =
  let vat = t.vat in
  let rec search lo hi =
    if lo > hi then None
    else
      let mid = (lo + hi) / 2 in
      let base, size, id = vat.(mid) in
      if va < base then search lo (mid - 1)
      else if va >= Int64.add base size then search (mid + 1) hi
      else Some (id, base)
  in
  search 0 (Array.length vat - 1)

(* The translation provider handed to [Nvml_core.Xlate]. *)
let provider t : Xlate.provider =
  {
    Xlate.pool_base = (fun id ->
      match Hashtbl.find_opt t.pools id with
      | Some p -> p.base
      | None -> None);
    pool_of_va = (fun va -> pool_of_va t va);
    generation = t.map_generation;
  }

(* --- persistent allocation (pmalloc / pfree) ------------------------- *)

(* pmalloc returns a *relative-format* pointer, per the paper's marking
   of allocator functions as returning relative addresses. *)
let pmalloc t ~pool size : Ptr.t =
  if Telemetry.enabled () then Telemetry.incr c_pmallocs;
  let p = find_pool t pool in
  if p.degraded then refuse_write p;
  let payload = Freelist.alloc (arena_access t p) (Int64.of_int size) in
  Ptr.make_relative ~pool ~offset:payload

let pfree t (ptr : Ptr.t) =
  if Telemetry.enabled () then Telemetry.incr c_pfrees;
  if not (Ptr.is_relative ptr) then
    invalid_arg "Pmop.pfree: not a persistent pointer";
  let p = find_pool t (Ptr.pool_of ptr) in
  if p.degraded then refuse_write p;
  Freelist.free (arena_access t p) (Ptr.offset_of ptr)

(* The per-pool root-object slot: the only well-known anchor an
   application needs to re-find its data after restart.  Values stored
   here are raw words; pointer-typed roots should be stored in relative
   format (the runtime's store-pointer path does that automatically). *)
let get_root t ~pool = Freelist.get_root (arena_access t (find_pool t pool))
let set_root t ~pool v = Freelist.set_root (arena_access t (find_pool t pool)) v

let allocated_bytes t ~pool =
  Freelist.allocated_bytes (arena_access t (find_pool t pool))

let check_pool_invariants t ~pool =
  Freelist.check_invariants (arena_access t (find_pool t pool))

(* --- degraded-mode bookkeeping for the runtime and the scrub engine -- *)

let pool_name t id = (find_pool t id).name
let pool_frames t ~pool = (find_pool t pool).frames
let is_degraded t ~pool = (find_pool t pool).degraded
let is_sealed_attach t ~pool = not (find_pool t pool).dirtied
let any_degraded t = t.degraded_count > 0

let set_pool_degraded t ~pool v = set_degraded t (find_pool t pool) v

let mark_pool_repaired t ~pool =
  let p = find_pool t pool in
  set_degraded t p false;
  p.dirtied <- false

(* Store-path guard: called by the runtime (only when [any_degraded])
   with the destination cell of every data store, in either pointer
   format.  DRAM targets are never refused. *)
let assert_cell_writable t (cell : Ptr.t) =
  let pool =
    if Ptr.is_relative cell then Some (Ptr.pool_of cell)
    else if Layout.is_nvm_va cell then
      match pool_of_va t cell with Some (id, _) -> Some id | None -> None
    else None
  in
  match pool with
  | Some id -> (
      match Hashtbl.find_opt t.pools id with
      | Some p when p.degraded -> refuse_write p
      | _ -> ())
  | None -> ()

(* Structural validation of a root pointer before the application
   dereferences it: a pointer-shaped root must land inside its own
   pool's heap.  Opaque (non-pointer) root words and DRAM targets are
   the application's business. *)
let check_root_target t (root : Ptr.t) =
  let target =
    if Ptr.is_null root then None
    else if Ptr.is_relative root then
      Some (Ptr.pool_of root, Ptr.offset_of root)
    else if Layout.is_nvm_va root then
      match pool_of_va t root with
      | Some (id, base) -> Some (id, Int64.sub root base)
      | None -> None
    else None
  in
  match target with
  | None -> ()
  | Some (id, offset) ->
      let p = find_pool t id in
      let heap_end = Freelist.heap_limit ~capacity:(Int64.of_int p.size) in
      if
        offset < Int64.add Freelist.heap_start Freelist.header_size
        || offset >= heap_end
      then
        raise
          (Media.Media_error
             (Fmt.str "%s: root pointer offset %Ld is outside the heap"
                p.name offset))
