(* Persistent memory object pool (PMOP) manager — the OS/kernel side of
   the design: pool creation, opening (mapping into the NVM half of the
   address space), detaching, and the two kernel tables the hardware
   lookaside buffers are backed by:

     POT  (persistent object table) : pool id -> current virtual base
     VAT  (virtual address table)   : virtual range -> pool id

   Pools are long-lived: their physical NVM frames and registry entries
   survive a simulated crash; their mappings do not.  On re-open after a
   restart the manager deliberately maps pools at *different* virtual
   bases, exercising the relocatability persistent pointers exist for. *)

module Mem = Nvml_simmem.Mem
module Layout = Nvml_simmem.Layout
module Vspace = Nvml_simmem.Vspace
module Physmem = Nvml_simmem.Physmem
module Fi = Nvml_simmem.Fi
module Ptr = Nvml_core.Ptr
module Xlate = Nvml_core.Xlate
module Telemetry = Nvml_telemetry.Telemetry

let c_pool_creates = Telemetry.counter "pool.creates"
let c_pool_opens = Telemetry.counter "pool.opens"
let c_pmallocs = Telemetry.counter "pool.pmallocs"
let c_pfrees = Telemetry.counter "pool.pfrees"

type pool = {
  id : int;
  name : string;
  size : int; (* bytes, page-rounded *)
  frames : int list; (* persistent physical NVM frames *)
  mutable base : int64 option; (* POT entry: None when detached *)
}

type t = {
  mem : Mem.t;
  pools : (int, pool) Hashtbl.t;
  by_name : (string, int) Hashtbl.t;
  mutable next_id : int;
  mutable restarts : int;
  mutable vat : (int64 * int64 * int) array;
      (* mapped pools sorted by base: (base, size, id) *)
  mutable meta_hook : (pool:int -> offset:int64 -> unit) option;
      (* called before every allocator-metadata write; lets a
         transaction undo-log freelist updates (see Txn.instrument) *)
}

exception Unknown_pool of string
exception Already_open of string

let create mem =
  {
    mem;
    pools = Hashtbl.create 16;
    by_name = Hashtbl.create 16;
    next_id = 1;
    restarts = 0;
    vat = [||];
    meta_hook = None;
  }

let mem t = t.mem

let rebuild_vat t =
  let entries =
    Hashtbl.fold
      (fun _ p acc ->
        match p.base with
        | Some base -> (base, Int64.of_int p.size, p.id) :: acc
        | None -> acc)
      t.pools []
  in
  t.vat <-
    Array.of_list
      (List.sort (fun (a, _, _) (b, _, _) -> Int64.compare a b) entries)

let find_pool t id =
  match Hashtbl.find_opt t.pools id with
  | Some p -> p
  | None -> raise (Unknown_pool (string_of_int id))

let find_pool_by_name t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> find_pool t id
  | None -> raise (Unknown_pool name)

let pool_base t id = (find_pool t id).base
let pool_id_of_name t name = (find_pool_by_name t name).id
let pool_size t id = (find_pool t id).size
let pool_ids t = Hashtbl.fold (fun id _ acc -> id :: acc) t.pools [] |> List.sort compare

(* Arena accessor for an open pool: reads/writes by intra-pool offset. *)
let arena_access t (p : pool) : Freelist.access =
  match p.base with
  | None -> raise (Already_open (p.name ^ ": not mapped"))
  | Some base ->
      {
        Freelist.read = (fun off -> Mem.read_word t.mem (Int64.add base off));
        write =
          (fun off v ->
            Physmem.fire (Mem.phys t.mem)
              (Fi.Alloc_meta_write { pool = p.id; offset = off });
            (match t.meta_hook with
            | None -> ()
            | Some f -> f ~pool:p.id ~offset:off);
            Mem.write_word t.mem (Int64.add base off) v);
      }

let set_meta_hook t hook = t.meta_hook <- hook

(* Create a pool: allocate its NVM frames, map it, initialize its
   embedded allocator, and return its system-wide unique id. *)
let create_pool t ~name ~size =
  if Telemetry.enabled () then Telemetry.incr c_pool_creates;
  if Hashtbl.mem t.by_name name then
    Fmt.invalid_arg "Pmop.create_pool: pool %S already exists" name;
  let size = Layout.pages_of_bytes size * Layout.page_size in
  if Int64.of_int size > Ptr.max_pool_size then
    Fmt.invalid_arg "Pmop.create_pool: %d bytes exceeds 4 GiB pool limit" size;
  let id = t.next_id in
  t.next_id <- id + 1;
  let frames =
    Nvml_simmem.Physmem.alloc_frames (Mem.phys t.mem) Layout.Nvm
      (Layout.pages_of_bytes size)
  in
  let base = Mem.map_existing t.mem Layout.Nvm frames in
  let pool = { id; name; size; frames; base = Some base } in
  Hashtbl.replace t.pools id pool;
  Hashtbl.replace t.by_name name id;
  Freelist.init (arena_access t pool) ~capacity:(Int64.of_int size);
  rebuild_vat t;
  id

(* Open (map) an existing pool, e.g. after a restart.  The manager skews
   the mapping base by a restart-dependent number of pages so that a
   pool never lands at the address it had in the previous run. *)
let open_pool t name =
  if Telemetry.enabled () then Telemetry.incr c_pool_opens;
  let p = find_pool_by_name t name in
  (match p.base with
  | Some _ -> raise (Already_open name)
  | None -> ());
  Vspace.skew_nvm_brk (Mem.vspace t.mem) (1 + ((t.restarts * 31 + p.id * 7) mod 61));
  let base = Mem.map_existing t.mem Layout.Nvm p.frames in
  p.base <- Some base;
  rebuild_vat t;
  if not (Freelist.is_initialized (arena_access t p)) then
    raise (Freelist.Corrupt_arena (name ^ ": pool image lost its header"));
  base

let detach_pool t id =
  let p = find_pool t id in
  match p.base with
  | None -> ()
  | Some base ->
      Mem.unmap t.mem ~base ~bytes:p.size;
      p.base <- None;
      rebuild_vat t

(* Simulated machine crash: volatile memory and all mappings vanish;
   pool frames and the registry survive. *)
let crash t =
  Mem.crash t.mem;
  Hashtbl.iter (fun _ p -> p.base <- None) t.pools;
  t.vat <- [||];
  t.meta_hook <- None (* hooks are volatile state — reinstall after restart *);
  t.restarts <- t.restarts + 1

let restarts t = t.restarts

(* VAT lookup: binary search the mapped ranges for one covering [va]. *)
let pool_of_va t (va : int64) =
  let vat = t.vat in
  let rec search lo hi =
    if lo > hi then None
    else
      let mid = (lo + hi) / 2 in
      let base, size, id = vat.(mid) in
      if va < base then search lo (mid - 1)
      else if va >= Int64.add base size then search (mid + 1) hi
      else Some (id, base)
  in
  search 0 (Array.length vat - 1)

(* The translation provider handed to [Nvml_core.Xlate]. *)
let provider t : Xlate.provider =
  {
    Xlate.pool_base = (fun id ->
      match Hashtbl.find_opt t.pools id with
      | Some p -> p.base
      | None -> None);
    pool_of_va = (fun va -> pool_of_va t va);
  }

(* --- persistent allocation (pmalloc / pfree) ------------------------- *)

(* pmalloc returns a *relative-format* pointer, per the paper's marking
   of allocator functions as returning relative addresses. *)
let pmalloc t ~pool size : Ptr.t =
  if Telemetry.enabled () then Telemetry.incr c_pmallocs;
  let p = find_pool t pool in
  let payload = Freelist.alloc (arena_access t p) (Int64.of_int size) in
  Ptr.make_relative ~pool ~offset:payload

let pfree t (ptr : Ptr.t) =
  if Telemetry.enabled () then Telemetry.incr c_pfrees;
  if not (Ptr.is_relative ptr) then
    invalid_arg "Pmop.pfree: not a persistent pointer";
  let p = find_pool t (Ptr.pool_of ptr) in
  Freelist.free (arena_access t p) (Ptr.offset_of ptr)

(* The per-pool root-object slot: the only well-known anchor an
   application needs to re-find its data after restart.  Values stored
   here are raw words; pointer-typed roots should be stored in relative
   format (the runtime's store-pointer path does that automatically). *)
let get_root t ~pool = Freelist.get_root (arena_access t (find_pool t pool))
let set_root t ~pool v = Freelist.set_root (arena_access t (find_pool t pool)) v

let allocated_bytes t ~pool =
  Freelist.allocated_bytes (arena_access t (find_pool t pool))

let check_pool_invariants t ~pool =
  Freelist.check_invariants (arena_access t (find_pool t pool))
