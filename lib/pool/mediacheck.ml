(* The end-to-end scrub scenario behind `nvml scrub` and the bench
   coverage matrix: build pools, seal them, switch on the media-error
   injector, and score the scrub engine against the injector's own
   ground truth.

   The scoring is exact, not statistical.  Fault placement is a pure
   function of [(seed, frame, word)] ({!Nvml_media.Media.decide}), so
   before running the scrub we can predict — from the pre-injection
   block map — every finding it must produce: which superblocks fail
   verification, where the heap walk must die, which free-list chains
   no longer parse, which roots dangle, how many objects lost payload
   words, what [--repair] can restore and what must leave the pool
   degraded.  Any disagreement between prediction and report is a
   *misprediction*: a bug in the integrity stack (or in the model), and
   the callers treat it as such.

   Each cell is share-nothing — its own machine, pools, injector and
   RNG, all derived from the cell seed — so sweeping seeds across
   domains is bit-identical to running them sequentially. *)

module Mem = Nvml_simmem.Mem
module Layout = Nvml_simmem.Layout
module Media = Nvml_media.Media
module Ptr = Nvml_core.Ptr

let ( +! ) = Int64.add
let ( -! ) = Int64.sub

type config = {
  pools : int;
  records : int;  (** objects allocated per pool before sealing *)
  rate : float;
  kinds : Media.kind list;  (** empty means all kinds *)
  seed : int;
  repair : bool;
}

type cell = {
  seed : int;
  report : Scrub.report;
  sites : int;  (** corrupt metadata words the injector planted *)
  lost_predicted : int;
  mispredictions : string list;  (** empty: ground truth and scrub agree *)
  flips : int;
  poisons : int;
  transients : int;
}

let pool_size = 65536
let sb_words = [ 0L; 8L; 16L; 24L; 40L; 48L; 56L ]

(* Deterministic population: a mix of live objects, freed holes (so the
   free list has interior nodes) and a root pointing at a live object. *)
let populate pm ~pool ~records rng =
  let live = ref [] in
  for _ = 1 to records do
    let size = 16 + Random.State.int rng 480 in
    match Pmop.pmalloc pm ~pool size with
    | ptr -> live := ptr :: !live
    | exception Freelist.Out_of_memory -> ()
  done;
  let live = List.rev !live in
  List.iteri (fun j ptr -> if j mod 3 = 0 then Pmop.pfree pm ptr) live;
  (match List.filteri (fun j _ -> j mod 3 <> 0) live with
  | ptr :: _ -> Pmop.set_root pm ~pool ptr
  | [] -> ());
  Pmop.seal_pool pm ~pool

let run_cell config =
  let mem = Mem.create () in
  let pm = Pmop.create mem in
  let ids =
    Array.init config.pools (fun i ->
        Pmop.create_pool pm ~name:(Fmt.str "cell%d" i) ~size:pool_size)
  in
  Array.iteri
    (fun i id ->
      let rng = Random.State.make [| 0x5cab; config.seed; i |] in
      populate pm ~pool:id ~records:config.records rng)
    ids;
  (* Pre-injection survey: the trusted block map of each pool. *)
  let surveys =
    Array.map
      (fun id ->
        let cap = Int64.of_int (Pmop.pool_size pm id) in
        let heap_end = Freelist.heap_limit ~capacity:cap in
        let a = Pmop.scrub_access pm ~pool:id in
        let rec go b acc =
          if b >= heap_end then List.rev acc
          else
            let size = Freelist.block_size a b in
            go (b +! size) ((b, size, Freelist.block_allocated a b) :: acc)
        in
        (go Freelist.heap_start [], cap))
      ids
  in
  let inj =
    Media.create
      ?kinds:(match config.kinds with [] -> None | ks -> Some ks)
      ~rate:config.rate ~seed:config.seed ()
  in
  Media.attach (Mem.phys mem) inj;
  (* Predict every pool's findings from the injector's pure placement
     function, *before* the scrub runs (repair writes heal words). *)
  let sites = ref 0 in
  let lost_total = ref 0 in
  let predictions =
    Array.mapi
      (fun i id ->
        let blocks, cap = surveys.(i) in
        let frames = Array.of_list (Pmop.pool_frames pm ~pool:id) in
        let fault off =
          let off = Int64.to_int off in
          Media.decide inj
            ~frame:frames.(off / Layout.page_size)
            ~word_index:(off mod Layout.page_size / 8)
        in
        let corrupt off =
          match fault off with
          | Some (Media.Bit_flip | Media.Poison_line) -> true
          | Some Media.Transient | None -> false
        in
        let poisoned off =
          match fault off with Some Media.Poison_line -> true | _ -> false
        in
        let rb = cap -! Freelist.replica_size in
        let prim_bad = List.exists corrupt sb_words in
        let rep_bad = List.exists (fun o -> corrupt (rb +! o)) sb_words in
        List.iter (fun o -> if corrupt o then incr sites) sb_words;
        List.iter (fun o -> if corrupt (rb +! o) then incr sites) sb_words;
        List.iter
          (fun (b, _, allocated) ->
            if corrupt b then incr sites;
            if (not allocated) && corrupt (b +! 8L) then incr sites)
          blocks;
        (* Replay the heap walk: it dies at the first corrupt header;
           before that, every allocated block with a poisoned payload
           word is a lost object. *)
        let rec sim bs reached lost next_bad =
          match bs with
          | [] -> (None, List.rev reached, lost, next_bad)
          | ((b, size, allocated) as blk) :: rest ->
              if corrupt b then (Some b, List.rev reached, lost, next_bad)
              else
                let poisoned_payload =
                  allocated
                  &&
                  let w = ref (b +! Freelist.header_size) in
                  let hit = ref false in
                  while !w < b +! size do
                    if poisoned !w then hit := true;
                    w := !w +! 8L
                  done;
                  !hit
                in
                sim rest (blk :: reached)
                  (if poisoned_payload then lost + 1 else lost)
                  (next_bad || ((not allocated) && corrupt (b +! 8L)))
        in
        let dead, reached, lost, next_bad = sim blocks [] 0 false in
        lost_total := !lost_total + lost;
        let restored = config.repair && prim_bad && not rep_bad in
        let usable = (not prim_bad) || restored in
        let chain = usable && dead = None && next_bad in
        let a = Pmop.scrub_access pm ~pool:id in
        let root =
          match a.Freelist.read Freelist.off_root with
          | exception Media.Media_error _ -> true
          | r ->
              dead = None
              && (not (Ptr.is_null r))
              && Ptr.is_relative r
              && Ptr.pool_of r = id
              && not
                   (List.exists
                      (fun (b, size, allocated) ->
                        allocated
                        && Ptr.offset_of r >= b +! Freelist.header_size
                        && Ptr.offset_of r < b +! size)
                      reached)
        in
        let rep_fix =
          config.repair && rep_bad && usable && dead = None && (not chain)
          && not root
        in
        let degraded =
          (prim_bad && not restored) || dead <> None || chain || root
        in
        (prim_bad, restored, rep_bad, rep_fix, dead, chain, root, lost,
         degraded))
      ids
  in
  let sc = Scrub.create pm in
  let report = Scrub.run sc ~repair:config.repair in
  (* Score the report against the predictions. *)
  let mis = ref [] in
  Array.iteri
    (fun i id ->
      let ( prim_bad,
            restored,
            rep_bad,
            rep_fix,
            dead,
            chain,
            root,
            lost,
            degraded ) =
        predictions.(i)
      in
      let misreport fmt =
        Fmt.kstr (fun m -> mis := Fmt.str "pool %d: %s" i m :: !mis) fmt
      in
      match
        List.find_opt
          (fun (r : Scrub.pool_report) -> r.Scrub.pool = id)
          report.Scrub.pools
      with
      | None -> misreport "missing from the scrub report"
      | Some pr ->
          let has pred = List.exists pred pr.Scrub.findings in
          let expect name want got =
            if want <> got then
              misreport "%s: predicted %b, scrub reported %b" name want got
          in
          expect "primary corruption" prim_bad
            (has (fun (f : Scrub.finding) ->
                 f.Scrub.kind = Scrub.Superblock_primary));
          expect "primary repair" restored
            (has (fun (f : Scrub.finding) ->
                 f.Scrub.kind = Scrub.Superblock_primary && f.Scrub.repaired));
          expect "replica corruption" rep_bad
            (has (fun (f : Scrub.finding) ->
                 f.Scrub.kind = Scrub.Superblock_replica));
          expect "replica repair" rep_fix
            (has (fun (f : Scrub.finding) ->
                 f.Scrub.kind = Scrub.Superblock_replica && f.Scrub.repaired));
          (let found =
             List.find_opt
               (fun (f : Scrub.finding) ->
                 match f.Scrub.kind with
                 | Scrub.Block_header _ -> true
                 | _ -> false)
               pr.Scrub.findings
           in
           match (dead, found) with
           | None, None -> ()
           | Some b, Some { Scrub.kind = Scrub.Block_header b'; _ }
             when Int64.equal b b' ->
               ()
           | Some b, Some { Scrub.kind = Scrub.Block_header b'; _ } ->
               misreport "walk died at %Ld, predicted %Ld" b' b
           | Some b, _ -> misreport "corrupt header at %Ld undetected" b
           | None, Some _ -> misreport "header finding on a clean heap");
          expect "free-list chain" chain
            (has (fun (f : Scrub.finding) ->
                 f.Scrub.kind = Scrub.Freelist_chain));
          expect "root reachability" root
            (has (fun (f : Scrub.finding) -> f.Scrub.kind = Scrub.Root));
          if pr.Scrub.lost_objects <> lost then
            misreport "lost objects: predicted %d, scrub reported %d" lost
              pr.Scrub.lost_objects;
          expect "degraded" degraded (Pmop.is_degraded pm ~pool:id))
    ids;
  {
    seed = config.seed;
    report;
    sites = !sites;
    lost_predicted = !lost_total;
    mispredictions = List.rev !mis;
    flips = Media.flips_served inj;
    poisons = Media.poisons_served inj;
    transients = Media.transients_served inj;
  }

let pp_summary ppf c =
  Fmt.pf ppf
    "seed %d: %d corrupt metadata site%s, %d detected, %d repaired, %d \
     unrepairable, %d object%s lost"
    c.seed c.sites
    (if c.sites = 1 then "" else "s")
    c.report.Scrub.detected c.report.Scrub.repaired
    c.report.Scrub.unrepairable c.report.Scrub.lost_objects
    (if c.report.Scrub.lost_objects = 1 then "" else "s")
