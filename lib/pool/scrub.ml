(* The scrub/repair engine: walk every attached pool, verify every
   piece of checksummed metadata, repair what the replica superblock
   can vouch for, and leave anything unrepairable in read-only degraded
   mode with a reachability report of what was lost.

   Scrubbing is read-mostly and tolerant: where the allocator raises on
   the first bad header, the scrub keeps a per-pool findings list and
   walks as far as the damage allows.  All reads go through the media
   model (a poisoned line surfaces here as a finding, not a crash);
   repair writes go through [Pmop.scrub_access], which heals the media
   locations it rewrites but bypasses the application write protocol. *)

module Media = Nvml_media.Media
module Telemetry = Nvml_telemetry.Telemetry
module Ptr = Nvml_core.Ptr

let c_runs = Telemetry.counter "media.scrub.runs"
let c_pools = Telemetry.counter "media.scrub.pools"
let c_detected = Telemetry.counter "media.scrub.detected"
let c_repaired = Telemetry.counter "media.scrub.repaired"
let c_unrepairable = Telemetry.counter "media.scrub.unrepairable"
let c_lost_objects = Telemetry.counter "media.scrub.lost_objects"

type quirk =
  | Blind_primary
      (** re-enables a pre-release bug: the scrub trusted the primary
          superblock without verifying its checksum, so primary
          corruption went undetected until the next attach *)

type finding_kind =
  | Superblock_primary
  | Superblock_replica
  | Block_header of int64  (** header offset *)
  | Freelist_chain
  | Root
  | Poisoned_payload of int64 * int  (** block offset, unreadable words *)

type finding = { kind : finding_kind; detail : string; repaired : bool }

type pool_state = Clean | Repaired | Degraded | Skipped

type pool_report = {
  pool : int;
  name : string;
  state : pool_state;
  findings : finding list;
  blocks : int;  (** blocks reached by the heap walk *)
  lost_bytes : int64;  (** heap bytes behind a corrupt header *)
  lost_objects : int;  (** allocated blocks with unreadable payload *)
}

type report = {
  pools : pool_report list;
  detected : int;
  repaired : int;
  unrepairable : int;
  lost_objects : int;
}

type t = { pm : Pmop.t; mutable blind_primary : bool }

let create pm = { pm; blind_primary = false }
let enable_quirk t Blind_primary = t.blind_primary <- true

let is_metadata = function
  | Superblock_primary | Superblock_replica | Block_header _ | Freelist_chain
  | Root ->
      true
  | Poisoned_payload _ -> false

let ( +! ) = Int64.add
let ( -! ) = Int64.sub

(* Walk the heap tiling with checksum-verified headers, stopping at the
   first corrupt or unreadable one.  Returns the blocks reached, the
   payload-poison findings, and the offset where the walk died (if it
   did). *)
let walk_heap a ~heap_end =
  let findings = ref [] in
  let blocks = ref [] in
  let rec go b =
    if Int64.equal b heap_end then None
    else
      match Freelist.header_corrupt a b with
      | exception Media.Media_error m ->
          Some (b, "header unreadable: " ^ m)
      | true -> Some (b, "header fails its checksum")
      | false ->
          let size = Freelist.block_size a b in
          let allocated = Freelist.block_allocated a b in
          if
            size < Freelist.min_block
            || Int64.rem size 16L <> 0L
            || b +! size > heap_end
          then Some (b, Fmt.str "structurally invalid size %Ld" size)
          else begin
            (if allocated then begin
               (* Reachability probe: is the object's payload readable? *)
               let poisoned = ref 0 in
               let w = ref (b +! Freelist.header_size) in
               while !w < b +! size do
                 (try ignore (a.Freelist.read !w)
                  with Media.Media_error _ -> incr poisoned);
                 w := !w +! 8L
               done;
               if !poisoned > 0 then
                 findings :=
                   {
                     kind = Poisoned_payload (b, !poisoned);
                     detail =
                       Fmt.str "object at %Ld: %d unreadable word%s"
                         (b +! Freelist.header_size) !poisoned
                         (if !poisoned = 1 then "" else "s");
                     repaired = false;
                   }
                   :: !findings
             end);
            blocks := (b, size, allocated) :: !blocks;
            go (b +! size)
          end
  in
  let dead = go Freelist.heap_start in
  (List.rev !blocks, List.rev !findings, dead)

let scrub_pool t ~repair pool =
  let pm = t.pm in
  let name = Pmop.pool_name pm pool in
  match Pmop.pool_base pm pool with
  | None ->
      {
        pool;
        name;
        state = Skipped;
        findings = [];
        blocks = 0;
        lost_bytes = 0L;
        lost_objects = 0;
      }
  | Some _ ->
      let cap = Int64.of_int (Pmop.pool_size pm pool) in
      let heap_end = Freelist.heap_limit ~capacity:cap in
      let a = Pmop.scrub_access pm ~pool in
      let findings = ref [] in
      let add kind detail repaired =
        findings := { kind; detail; repaired } :: !findings
      in
      (* Superblock verification: primary, then replica.  The quirk
         reproduces the old blind-trust behaviour for the fuzzer's
         --break self-test. *)
      let primary =
        if t.blind_primary then Freelist.Sealed
        else
          try Freelist.superblock_state a
          with Media.Media_error m -> Freelist.Corrupt ("unreadable: " ^ m)
      in
      let replica_ok =
        match Freelist.replica_state a ~capacity:cap with
        | Freelist.Sealed -> true
        | Freelist.Dirty | Freelist.Uninitialized | Freelist.Corrupt _ -> false
        | exception Media.Media_error _ -> false
      in
      let primary =
        match primary with
        | Freelist.Sealed | Freelist.Dirty -> primary
        | Freelist.Uninitialized | Freelist.Corrupt _ ->
            let detail =
              match primary with
              | Freelist.Corrupt m -> m
              | _ -> "no magic and no seal"
            in
            if repair && replica_ok then begin
              Freelist.restore_from_replica a ~capacity:cap;
              match Freelist.superblock_state a with
              | Freelist.Sealed ->
                  add Superblock_primary (detail ^ "; restored from replica")
                    true;
                  Freelist.Sealed
              | s ->
                  add Superblock_primary (detail ^ "; replica restore failed")
                    false;
                  s
            end
            else begin
              add Superblock_primary
                (if replica_ok then detail ^ " (replica intact)"
                 else detail ^ " (replica lost too)")
                false;
              primary
            end
      in
      if not replica_ok then
        (* Repairable by re-seal iff the primary side is trustworthy. *)
        add Superblock_replica "replica superblock fails verification" false;
      (* Structural walk.  With an unrepaired corrupt primary the
         superblock words cannot be trusted, but the heap tiling is
         independent of them, so the reachability walk still runs. *)
      let blocks, payload_findings, dead = walk_heap a ~heap_end in
      List.iter (fun f -> findings := f :: !findings) payload_findings;
      let lost_bytes =
        match dead with
        | None -> 0L
        | Some (b, detail) ->
            add (Block_header b) detail false;
            heap_end -! b
      in
      (* Free-list chain and accounting, meaningful only when both the
         superblock words and every header are intact. *)
      let primary_usable =
        match primary with
        | Freelist.Sealed | Freelist.Dirty -> true
        | _ -> false
      in
      if primary_usable && dead = None then begin
        match Freelist.check_invariants a with
        | (_ : int64) -> ()
        | exception Freelist.Corrupt_arena m -> add Freelist_chain m false
        | exception Media.Media_error m ->
            add Freelist_chain ("unreadable: " ^ m) false
      end;
      (* Root reachability: a pointer-shaped root must land inside an
         allocated block of its own pool.  Opaque words are not ours to
         judge; a cross-pool root is checked by the runtime instead. *)
      (match a.Freelist.read Freelist.off_root with
      | exception Media.Media_error m -> add Root ("unreadable: " ^ m) false
      | root ->
          if
            (not (Ptr.is_null root))
            && Ptr.is_relative root
            && Ptr.pool_of root = pool
            && dead = None
          then begin
            let off = Ptr.offset_of root in
            let inside (b, size, allocated) =
              allocated
              && off >= b +! Freelist.header_size
              && off < b +! size
            in
            if not (List.exists inside blocks) then
              add Root
                (Fmt.str "root %Ld points at no allocated object" off)
                false
          end);
      let findings = List.rev !findings in
      (* A damaged replica is loss of redundancy, not of data: when the
         primary side checks out completely, the re-seal below rewrites
         the replica area, which is the repair. *)
      let primary_clean =
        primary_usable && dead = None
        && List.for_all
             (fun (f : finding) ->
               match f.kind with
               | Superblock_primary -> f.repaired
               | Block_header _ | Freelist_chain | Root -> false
               | Superblock_replica | Poisoned_payload _ -> true)
             findings
      in
      let findings =
        if repair && primary_clean then
          List.map
            (fun (f : finding) ->
              match f.kind with
              | Superblock_replica ->
                  {
                    f with
                    repaired = true;
                    detail = f.detail ^ "; rewritten by re-seal";
                  }
              | _ -> f)
            findings
        else findings
      in
      (* Only damage on the primary side makes the pool unsafe to write;
         an unrepaired replica merely leaves it without a safety net. *)
      let degrading (f : finding) =
        (not f.repaired)
        &&
        match f.kind with
        | Superblock_primary | Block_header _ | Freelist_chain | Root -> true
        | Superblock_replica | Poisoned_payload _ -> false
      in
      let unrepaired_primary = List.exists degrading findings in
      let repaired_any = List.exists (fun (f : finding) -> f.repaired) findings in
      let lost_objects =
        List.length
          (List.filter
             (fun f ->
               match f.kind with Poisoned_payload _ -> true | _ -> false)
             findings)
      in
      let state =
        if unrepaired_primary then begin
          Pmop.set_pool_degraded pm ~pool true;
          Degraded
        end
        else if repaired_any then begin
          (* Every degrading finding was repaired: refresh the seal (which
             also rewrites — and thereby heals — the replica area) and
             hand the pool back read-write. *)
          Freelist.seal a;
          Pmop.mark_pool_repaired pm ~pool;
          Repaired
        end
        else if repair && Pmop.is_degraded pm ~pool then begin
          (* Degraded on a previous pass, but this full verification came
             back clean: hand the pool back. *)
          Pmop.mark_pool_repaired pm ~pool;
          Repaired
        end
        else Clean
      in
      { pool; name; state; findings; blocks = List.length blocks; lost_bytes;
        lost_objects }

let run t ~repair =
  let reports = List.map (scrub_pool t ~repair) (Pmop.pool_ids t.pm) in
  let count f = List.fold_left (fun n r -> n + f r) 0 reports in
  let detected =
    count (fun r -> List.length (List.filter (fun f -> is_metadata f.kind) r.findings))
  in
  let repaired =
    count (fun r -> List.length (List.filter (fun (f : finding) -> f.repaired) r.findings))
  in
  let unrepairable =
    count (fun r -> List.length (List.filter (fun (f : finding) -> not f.repaired) r.findings))
  in
  let lost_objects = count (fun r -> r.lost_objects) in
  if Telemetry.enabled () then begin
    Telemetry.incr c_runs;
    Telemetry.add c_pools (List.length reports);
    Telemetry.add c_detected detected;
    Telemetry.add c_repaired repaired;
    Telemetry.add c_unrepairable unrepairable;
    Telemetry.add c_lost_objects lost_objects
  end;
  { pools = reports; detected; repaired; unrepairable; lost_objects }

(* --- reporting -------------------------------------------------------- *)

let pp_kind ppf = function
  | Superblock_primary -> Fmt.string ppf "superblock"
  | Superblock_replica -> Fmt.string ppf "replica"
  | Block_header off -> Fmt.pf ppf "header@%Ld" off
  | Freelist_chain -> Fmt.string ppf "freelist"
  | Root -> Fmt.string ppf "root"
  | Poisoned_payload (off, _) -> Fmt.pf ppf "payload@%Ld" off

let pp_state ppf = function
  | Clean -> Fmt.string ppf "clean"
  | Repaired -> Fmt.string ppf "repaired"
  | Degraded -> Fmt.string ppf "DEGRADED (read-only)"
  | Skipped -> Fmt.string ppf "skipped (detached)"

let pp_pool_report ppf r =
  Fmt.pf ppf "pool %d %S: %a (%d blocks walked" r.pool r.name pp_state r.state
    r.blocks;
  if r.lost_bytes > 0L then Fmt.pf ppf ", %Ld bytes unreachable" r.lost_bytes;
  if r.lost_objects > 0 then Fmt.pf ppf ", %d objects lost" r.lost_objects;
  Fmt.pf ppf ")";
  List.iter
    (fun f ->
      Fmt.pf ppf "@,  %a: %s%s" pp_kind f.kind f.detail
        (if f.repaired then " [repaired]" else ""))
    r.findings

let pp_report ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter (fun r -> Fmt.pf ppf "%a@," pp_pool_report r) t.pools;
  Fmt.pf ppf "scrub: %d finding%s detected, %d repaired, %d unrepairable"
    t.detected
    (if t.detected = 1 then "" else "s")
    t.repaired t.unrepairable;
  if t.lost_objects > 0 then Fmt.pf ppf " (%d objects lost)" t.lost_objects;
  Fmt.pf ppf "@]"
