(** Scrub/repair engine for pool integrity metadata.

    Walks every pool of a {!Pmop.t}: verifies the primary and replica
    superblock checksums, the checksum of every block header, the
    free-list chain and accounting, and the root pointer's
    reachability; probes every allocated payload for unreadable
    (poisoned) words.  With [~repair:true] it restores a corrupt
    primary superblock from an intact replica (and vice versa, by
    re-sealing), then re-validates the arena structurally.  Pools left
    with unrepaired primary-side metadata findings are put in read-only
    degraded mode — a damaged replica alone never degrades a pool, it
    only costs redundancy; data loss (payload poison, heap cut off behind a corrupt
    header) is reported but cannot be repaired — there is no data
    redundancy, only metadata redundancy.

    Emits [media.scrub.*] telemetry counters.  Deterministic: findings
    are ordered by pool id and heap offset, never by discovery
    timing. *)

type quirk =
  | Blind_primary
      (** re-enables a pre-release bug: trust the primary superblock
          without verifying its checksum (for --break self-tests) *)

type finding_kind =
  | Superblock_primary
  | Superblock_replica
  | Block_header of int64  (** header offset *)
  | Freelist_chain
  | Root
  | Poisoned_payload of int64 * int  (** block offset, unreadable words *)

type finding = { kind : finding_kind; detail : string; repaired : bool }
type pool_state = Clean | Repaired | Degraded | Skipped

type pool_report = {
  pool : int;
  name : string;
  state : pool_state;
  findings : finding list;
  blocks : int;  (** blocks reached by the heap walk *)
  lost_bytes : int64;  (** heap bytes unreachable behind a corrupt header *)
  lost_objects : int;  (** allocated blocks with unreadable payload *)
}

type report = {
  pools : pool_report list;
  detected : int;  (** metadata findings (payload loss excluded) *)
  repaired : int;
  unrepairable : int;  (** findings of any kind left unrepaired *)
  lost_objects : int;
}

type t

val create : Pmop.t -> t
val enable_quirk : t -> quirk -> unit
val run : t -> repair:bool -> report

val pp_pool_report : pool_report Fmt.t
val pp_report : report Fmt.t
