(** End-to-end scrub scenario with exact ground-truth scoring — the
    engine behind [nvml scrub] and the bench coverage matrix.

    A {e cell} builds pools, populates and seals them, attaches a
    seeded media-error injector, and runs the scrub engine.  Because
    fault placement is a pure function of [(seed, frame, word)], the
    cell first {e predicts} every finding the scrub must produce (and
    every repair [--repair] must perform) from the pre-injection block
    map, then scores the actual report against that prediction.  A
    non-empty [mispredictions] list means the integrity stack and the
    ground truth disagree — a bug, not noise.

    Cells are share-nothing (own machine, pools, injector, RNG, all
    derived from the seed), so a seed sweep is bit-identical under any
    [--jobs] split. *)

type config = {
  pools : int;
  records : int;  (** objects allocated per pool before sealing *)
  rate : float;
  kinds : Nvml_media.Media.kind list;  (** empty means all kinds *)
  seed : int;
  repair : bool;
}

type cell = {
  seed : int;
  report : Scrub.report;
  sites : int;  (** corrupt metadata words the injector planted *)
  lost_predicted : int;
  mispredictions : string list;  (** empty: ground truth and scrub agree *)
  flips : int;
  poisons : int;
  transients : int;
}

val pool_size : int
(** Size of every pool a cell creates (bytes). *)

val run_cell : config -> cell
val pp_summary : cell Fmt.t
