(** Persistent memory object pool (PMOP) manager — the OS side of the
    design: pool creation, mapping into the NVM half of the address
    space, detaching, the POT/VAT kernel tables behind the hardware
    lookaside buffers, and the persistent allocator.

    Pools are long-lived: their physical frames and registry entries
    survive a simulated crash; their mappings do not.  Re-opening after
    a restart maps at a {e different} base, exercising relocatability. *)

module Ptr = Nvml_core.Ptr
module Xlate = Nvml_core.Xlate

type t

exception Unknown_pool of string
exception Already_open of string

val create : Nvml_simmem.Mem.t -> t
val mem : t -> Nvml_simmem.Mem.t

val create_pool : t -> name:string -> size:int -> int
(** Create, map and initialize a pool (allocator metadata lives in the
    pool's own memory); returns its system-wide unique ID.
    @raise Invalid_argument on duplicate names or sizes over 4 GiB. *)

val open_pool : t -> string -> int64
(** Map an existing pool at a fresh, restart-dependent base; returns
    the base.  @raise Already_open if it is currently mapped. *)

val detach_pool : t -> int -> unit

val crash : t -> unit
(** Simulated power failure at the pool-manager level.

    Erased: all DRAM frame contents (via {!Nvml_simmem.Mem.crash} /
    {!Nvml_simmem.Physmem.crash}), every virtual mapping (so every pool
    becomes detached), and the volatile POT/VAT tables.  Survives: each
    pool's NVM frames bit for bit — including the in-pool allocator
    metadata and root slot — plus the pool registry (names, ids, frame
    lists) which models a persistent superblock.  The restart counter
    increments, so the next {!open_pool} maps at a skewed base. *)

val restarts : t -> int
val pool_base : t -> int -> int64 option
val pool_id_of_name : t -> string -> int
val pool_size : t -> int -> int
val pool_ids : t -> int list

val pool_of_va : t -> int64 -> (int * int64) option
(** VAT lookup: the (pool, base) whose mapping covers an address. *)

val provider : t -> Xlate.provider
(** The POT/VAT view handed to {!Nvml_core.Xlate}. *)

val pmalloc : t -> pool:int -> int -> Ptr.t
(** Allocate inside a pool; returns a {e relative-format} pointer. *)

val pfree : t -> Ptr.t -> unit

val set_meta_hook : t -> (pool:int -> offset:int64 -> unit) option -> unit
(** Install a hook called before every allocator-metadata write, with
    the word's pool-relative offset.  [Txn.instrument] uses it to
    undo-log freelist updates so allocation is rolled back atomically
    with the data stores of an interrupted transaction. *)

val get_root : t -> pool:int -> int64
val set_root : t -> pool:int -> int64 -> unit
val allocated_bytes : t -> pool:int -> int64
val check_pool_invariants : t -> pool:int -> int64
