(** Persistent memory object pool (PMOP) manager — the OS side of the
    design: pool creation, mapping into the NVM half of the address
    space, detaching, the POT/VAT kernel tables behind the hardware
    lookaside buffers, and the persistent allocator.

    Pools are long-lived: their physical frames and registry entries
    survive a simulated crash; their mappings do not.  Re-opening after
    a restart maps at a {e different} base, exercising relocatability. *)

module Ptr = Nvml_core.Ptr
module Xlate = Nvml_core.Xlate

type t

exception Unknown_pool of string
exception Already_open of string

val create : Nvml_simmem.Mem.t -> t
val mem : t -> Nvml_simmem.Mem.t

val create_pool : t -> name:string -> size:int -> int
(** Create, map and initialize a pool (allocator metadata lives in the
    pool's own memory); returns its system-wide unique ID.  The fresh
    image is sealed: superblock checksum and replica valid.
    @raise Invalid_argument on duplicate names or sizes over 4 GiB. *)

val open_pool : t -> string -> int64
(** Map an existing pool at a fresh, restart-dependent base; returns
    the base.  The attach is {e verified}: a sealed image must pass its
    superblock checksum, a dirty image is trusted to the undo-log
    journal, and a corrupt or unreadable superblock attaches the pool
    {e read-only degraded} (writes raise [Media.Media_error]; see
    [Scrub] for repair) instead of propagating garbage.
    @raise Already_open if it is currently mapped.
    @raise Freelist.Corrupt_arena if the image was never initialized
    and no replica vouches for it. *)

val detach_pool : t -> int -> unit
(** Unmap; a clean detach re-seals the image first ({!seal_pool}). *)

val crash : t -> unit
(** Simulated power failure at the pool-manager level.

    Erased: all DRAM frame contents (via {!Nvml_simmem.Mem.crash} /
    {!Nvml_simmem.Physmem.crash}), every virtual mapping (so every pool
    becomes detached), and the volatile POT/VAT tables.  Survives: each
    pool's NVM frames bit for bit — including the in-pool allocator
    metadata and root slot — plus the pool registry (names, ids, frame
    lists) which models a persistent superblock.  The restart counter
    increments, so the next {!open_pool} maps at a skewed base. *)

val restarts : t -> int
val pool_base : t -> int -> int64 option
val pool_id_of_name : t -> string -> int
val pool_size : t -> int -> int
val pool_ids : t -> int list

val pool_of_va : t -> int64 -> (int * int64) option
(** VAT lookup: the (pool, base) whose mapping covers an address. *)

val provider : t -> Xlate.provider
(** The POT/VAT view handed to {!Nvml_core.Xlate}. *)

val pmalloc : t -> pool:int -> int -> Ptr.t
(** Allocate inside a pool; returns a {e relative-format} pointer. *)

val pfree : t -> Ptr.t -> unit

val set_meta_hook : t -> (pool:int -> offset:int64 -> unit) option -> unit
(** Install a hook called before every allocator-metadata write, with
    the word's pool-relative offset.  [Txn.instrument] uses it to
    undo-log freelist updates so allocation is rolled back atomically
    with the data stores of an interrupted transaction. *)

val get_root : t -> pool:int -> int64
val set_root : t -> pool:int -> int64 -> unit
val allocated_bytes : t -> pool:int -> int64
val check_pool_invariants : t -> pool:int -> int64

(** {2 Integrity and degraded mode}

    The clean/dirty seal protocol and the read-only degraded state the
    verified attach can leave a pool in.  [Scrub] drives repair. *)

val seal_pool : t -> pool:int -> unit
(** Re-seal a quiescent pool: refresh the superblock checksum and
    replica snapshot.  No-op when detached, degraded, or already
    sealed. *)

val is_sealed_attach : t -> pool:int -> bool
(** Whether the current attach session has not yet broken the seal. *)

val is_degraded : t -> pool:int -> bool
val any_degraded : t -> bool

val set_pool_degraded : t -> pool:int -> bool -> unit
(** Scrub's verdict hook: force or clear the read-only degraded state. *)

val mark_pool_repaired : t -> pool:int -> unit
(** Clear degraded state and record that the (just re-sealed) image is
    clean — the scrub engine calls this after a successful repair. *)

val pool_name : t -> int -> string
val pool_frames : t -> pool:int -> int list
(** The pool's physical NVM frames, in layout order — the media-error
    ground truth for the bench coverage matrix is computed over these. *)

val scrub_access : t -> pool:int -> Freelist.access
(** Maintenance accessor: reads still traverse the media model, writes
    bypass the degraded refusal, the seal protocol, fault-injection
    events and the transaction hook.  Repair tooling only. *)

val assert_cell_writable : t -> Ptr.t -> unit
(** Refuse (with [Media.Media_error]) a data store whose destination
    cell lies in a degraded pool.  The runtime calls this on its store
    paths only while {!any_degraded}. *)

val check_root_target : t -> Ptr.t -> unit
(** Validate a pointer-shaped root before the application follows it:
    it must land inside its own pool's heap span.  Null, opaque words
    and DRAM targets pass.  @raise Media.Media_error otherwise. *)
