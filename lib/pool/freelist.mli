(** A first-fit free-list allocator whose metadata lives entirely
    inside the arena it manages, addressed by byte offsets.  Used for
    both the persistent allocator (arena = a pool's NVM memory, so the
    heap state survives crashes by construction) and the volatile DRAM
    allocator. *)

type access = {
  read : int64 -> int64;  (** read the word at a byte offset *)
  write : int64 -> int64 -> unit;
}

exception Corrupt_arena of string
exception Out_of_memory

val magic : int64
val off_root : int64
(** Byte offset of the root-object slot inside the arena header. *)

val heap_start : int64
val header_size : int64
val min_block : int64

val is_initialized : access -> bool
val init : access -> capacity:int64 -> unit

val alloc : access -> int64 -> int64
(** First-fit allocation; returns the payload offset (16-aligned).
    @raise Out_of_memory when no block fits. *)

val free : access -> int64 -> unit
(** Free a payload offset, coalescing adjacent free blocks.
    @raise Corrupt_arena on double free, foreign offsets, or a header
    whose size is unaligned, undersized, or runs past the arena end
    (interior/stale pointers landing on application bytes). *)

val capacity : access -> int64
val allocated_bytes : access -> int64
val alloc_count : access -> int
val free_count : access -> int
val get_root : access -> int64
val set_root : access -> int64 -> unit

val check_invariants : access -> int64
(** Verify free-list ordering, bounds, non-overlap, and that the blocks
    tile the heap exactly — allocated blocks summing to the accounting
    word and every free block chained on the free list; returns total
    free bytes.
    @raise Corrupt_arena on any violation. *)
