(** A first-fit free-list allocator whose metadata lives entirely
    inside the arena it manages, addressed by byte offsets.  Used for
    both the persistent allocator (arena = a pool's NVM memory, so the
    heap state survives crashes by construction) and the volatile DRAM
    allocator.

    All allocator metadata is checksummed against media errors: block
    headers carry a CRC-16 in their spare high bits (verified on every
    dereference), and the superblock carries a CRC-32 plus an A/B
    replica in the last {!replica_size} bytes of the arena, valid while
    the arena is {e sealed} (quiescent).  The root slot is outside the
    superblock checksum — it is live application data, written through
    the data path and validated structurally by [Scrub]. *)

type access = {
  read : int64 -> int64;  (** read the word at a byte offset *)
  write : int64 -> int64 -> unit;
}

exception Corrupt_arena of string
exception Out_of_memory

val magic : int64
val off_root : int64
(** Byte offset of the root-object slot inside the arena header. *)

val off_integrity : int64
(** Byte offset of the seal/checksum word: 0 while the arena is dirty
    (in use), odd with the superblock CRC-32 in bits 16..47 when
    sealed. *)

val heap_start : int64
val header_size : int64
val min_block : int64

val replica_size : int64
(** Bytes reserved at the top of the arena for the replica superblock;
    the usable heap is [[heap_start, capacity - replica_size)]. *)

val heap_limit : capacity:int64 -> int64
(** End of the heap: [capacity - replica_size]. *)

val is_initialized : access -> bool
val init : access -> capacity:int64 -> unit
(** Lay out an empty arena, dirty (unsealed); the creator seals it once
    construction is complete. *)

val alloc : access -> int64 -> int64
(** First-fit allocation; returns the payload offset (16-aligned).
    @raise Out_of_memory when no block fits.
    @raise Corrupt_arena if a walked header fails its checksum. *)

val free : access -> int64 -> unit
(** Free a payload offset, coalescing adjacent free blocks.
    @raise Corrupt_arena on double free, foreign offsets, or a header
    that fails its checksum or structural checks (interior/stale
    pointers landing on application bytes, media rot). *)

val capacity : access -> int64
val allocated_bytes : access -> int64
val alloc_count : access -> int
val free_count : access -> int
val get_root : access -> int64
val set_root : access -> int64 -> unit

val check_invariants : access -> int64
(** Verify free-list ordering, bounds, non-overlap, and that the blocks
    tile the heap exactly — allocated blocks summing to the accounting
    word and every free block chained on the free list; returns total
    free bytes.  Every header read is checksum-verified.
    @raise Corrupt_arena on any violation. *)

(** {2 Superblock seal protocol}

    The clean/dirty protocol of a journaling filesystem's mount bit:
    {!seal} checksums the superblock and snapshots it into the replica;
    {!mark_dirty} invalidates the checksum before the first metadata
    write of a session.  A sealed arena that fails verification was
    damaged by the media; a dirty one is simply a crash image whose
    consistency the undo-log journal governs. *)

type sb_state =
  | Sealed  (** checksum present and verified *)
  | Dirty  (** in use at last power-off; trust the journal, not the CRC *)
  | Uninitialized  (** no magic, no seal: creation never completed *)
  | Corrupt of string

val seal : access -> unit
val mark_dirty : access -> unit
val is_sealed : access -> bool
val superblock_state : access -> sb_state

val replica_state : access -> capacity:int64 -> sb_state
(** Verify the replica superblock.  [capacity] comes from the pool
    registry — the primary's capacity word cannot be trusted when the
    replica is being consulted. *)

val replica_intact : access -> capacity:int64 -> bool

val restore_from_replica : access -> capacity:int64 -> unit
(** Rewrite the primary superblock (except the root slot) from the
    replica.  The caller re-validates the arena structurally afterwards:
    the replica snapshot dates from the last seal, so it only describes
    the heap faithfully if the arena has not been mutated since. *)

val header_corrupt : access -> int64 -> bool
(** Whether the block header at a byte offset fails its checksum — the
    scrub engine's tolerant probe ([alloc]/[free]/[check_invariants]
    raise instead). *)

val block_size : access -> int64 -> int64
val block_allocated : access -> int64 -> bool
val block_next : access -> int64 -> int64
