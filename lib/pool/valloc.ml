(* The volatile (DRAM) allocator — the ordinary malloc of the simulated
   process.  Shares the free-list implementation with the persistent
   allocator; the arena lives in a DRAM mapping, so its contents are
   lost on crash, exactly like a real heap.

   The free-list's integrity layer is inert here: the arena is never
   sealed (its integrity word stays 0/dirty — DRAM has no power-off
   image to verify, and the media model only covers NVM frames), so
   attach verification and the replica never come into play.  The
   header CRC still tags every block for free, though, which turns wild
   frees into a deterministic [Corrupt_arena] instead of silent heap
   corruption. *)

module Mem = Nvml_simmem.Mem
module Layout = Nvml_simmem.Layout
module Ptr = Nvml_core.Ptr

type t = { mem : Mem.t; base : int64; access : Freelist.access }

let create mem ~capacity =
  let base = Mem.map_fresh mem Layout.Dram capacity in
  let access =
    {
      Freelist.read = (fun off -> Mem.read_word mem (Int64.add base off));
      write = (fun off v -> Mem.write_word mem (Int64.add base off) v);
    }
  in
  Freelist.init access ~capacity:(Int64.of_int capacity);
  { mem; base; access }

let base t = t.base

(* malloc returns an ordinary virtual address (bit 63 = 0, bit 47 = 0). *)
let malloc t size : Ptr.t =
  let payload = Freelist.alloc t.access (Int64.of_int size) in
  Int64.add t.base payload

let free t (ptr : Ptr.t) =
  if Ptr.is_relative ptr then invalid_arg "Valloc.free: persistent pointer";
  Freelist.free t.access (Int64.sub ptr t.base)

let allocated_bytes t = Freelist.allocated_bytes t.access
let check_invariants t = Freelist.check_invariants t.access
