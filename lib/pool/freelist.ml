(* A first-fit free-list allocator whose metadata lives entirely inside
   the arena it manages, addressed by byte offsets.  Used both for the
   persistent allocator (arena = a pool's NVM memory, so the heap state
   survives crashes by construction) and the volatile DRAM allocator.

   Arena layout (byte offsets):
     0   magic
     8   capacity (bytes)
     16  offset of first free block (0 = none)
     24  bytes currently allocated (payload + headers)
     32  root-object slot (application anchor, like pmemobj's root)
     40  allocation count (stats)
     48  free count (stats)
     56  integrity word: 0 = dirty (in use); odd = sealed, with the
         CRC-32 of the superblock words in bits 16..47
     64  start of heap
     capacity-64  replica superblock: a copy of words 0..56 (minus the
         root slot, which is live application data) taken at seal time

   Block layout: a 16-byte header (word 0: block size in bytes including
   the header in bits 1..47, bit 0 = allocated flag, and a CRC-16 of the
   low 48 bits in bits 48..63; word 1: next free offset, meaningful when
   free) followed by the payload.  Sizes are multiples of 16 so payloads
   are 16-aligned; pools are capped at 4 GiB, so 47 bits of size are
   spare room and the header checksum costs no extra space or writes.

   Integrity model: every header write is checksum-tagged and every
   header read verified, so a media bit flip, a stale pointer, or
   application bytes masquerading as a header are all rejected instead
   of corrupting the accounting.  The superblock checksum is only valid
   while the arena is sealed (quiescent): the pool manager marks the
   arena dirty before the first metadata write of a session and re-seals
   on detach, the same clean/dirty protocol as a journaling filesystem's
   mount bit.  The root slot is deliberately outside the superblock
   checksum — it is written through the data path, not the allocator. *)

module Crc = Nvml_media.Crc

type access = {
  read : int64 -> int64; (* read the word at a byte offset in the arena *)
  write : int64 -> int64 -> unit;
}

let magic = 0x504D4F50L (* "PMOP" *)
let off_magic = 0L
let off_capacity = 8L
let off_free_head = 16L
let off_allocated = 24L
let off_root = 32L
let off_alloc_count = 40L
let off_free_count = 48L
let off_integrity = 56L
let heap_start = 64L
let header_size = 16L
let min_block = 32L
let replica_size = 64L

exception Corrupt_arena of string
exception Out_of_memory

let ( +! ) = Int64.add
let ( -! ) = Int64.sub

let heap_limit ~capacity = capacity -! replica_size

(* --- checksummed block headers --------------------------------------- *)

let header_payload_mask = 0x0000FFFFFFFFFFFFL

let tag_header w48 =
  Int64.logor (Int64.shift_left (Int64.of_int (Crc.crc16_low48 w48)) 48) w48

let header_fault w =
  let lo = Int64.logand w header_payload_mask in
  if Int64.to_int (Int64.shift_right_logical w 48) = Crc.crc16_low48 lo then None
  else Some lo

(* Verified header read: the CRC rejects media rot and application
   bytes alike before the size is believed.  Raises [Corrupt_arena] —
   callers that want to keep walking past damage (the scrub engine) use
   [verify_header] instead. *)
let block_size_word a b =
  let w = a.read b in
  match header_fault w with
  | None -> Int64.logand w header_payload_mask
  | Some _ ->
      raise
        (Corrupt_arena (Fmt.str "block header at %Ld fails its checksum" b))

let header_corrupt a b = header_fault (a.read b) <> None

let block_size a b = Int64.logand (block_size_word a b) (Int64.lognot 1L)
let block_allocated a b = Int64.logand (block_size_word a b) 1L = 1L
let set_block a b ~size ~allocated =
  a.write b (tag_header (if allocated then Int64.logor size 1L else size))
let block_next a b = a.read (b +! 8L)
let set_block_next a b next = a.write (b +! 8L) next

let capacity a = a.read off_capacity
let allocated_bytes a = a.read off_allocated
let alloc_count a = Int64.to_int (a.read off_alloc_count)
let free_count a = Int64.to_int (a.read off_free_count)
let get_root a = a.read off_root
let set_root a v = a.write off_root v

let is_initialized a = Int64.equal (a.read off_magic) magic

(* --- superblock seal / verify / replica ------------------------------ *)

(* Words covered by the superblock checksum, in checksum order.  The
   root slot (32) is excluded: it is live application data written
   through the data path, checked structurally by the scrub engine
   instead.  The integrity word itself (56) is excluded since it holds
   the checksum. *)
let sb_covered =
  [ off_magic; off_capacity; off_free_head; off_allocated;
    off_alloc_count; off_free_count ]

(* 0 is reserved to mean "dirty", so a checksum of 0 is remapped. *)
let sb_crc_of values =
  match Crc.crc32_words values with 0 -> 0xFFFFFFFF | c -> c

let integrity_word_of values =
  Int64.logor (Int64.shift_left (Int64.of_int (sb_crc_of values)) 16) 1L

let replica_base a = capacity a -! replica_size

let seal a =
  let values = List.map a.read sb_covered in
  let iw = integrity_word_of values in
  a.write off_integrity iw;
  let rb = replica_base a in
  List.iter2 (fun off v -> a.write (rb +! off) v) sb_covered values;
  a.write (rb +! off_integrity) iw

let mark_dirty a = a.write off_integrity 0L
let is_sealed a = Int64.logand (a.read off_integrity) 1L = 1L

type sb_state =
  | Sealed  (** checksum present and verified *)
  | Dirty  (** in use at last power-off; trust the journal, not the CRC *)
  | Uninitialized  (** no magic, no seal: creation never completed *)
  | Corrupt of string

let verify_at a ~base =
  let iw = a.read (base +! off_integrity) in
  if Int64.equal iw 0L then
    if Int64.equal (a.read (base +! off_magic)) magic then Dirty
    else Uninitialized
  else if Int64.logand iw 1L <> 1L then
    Corrupt (Fmt.str "malformed integrity word %Lx" iw)
  else
    let values = List.map (fun off -> a.read (base +! off)) sb_covered in
    let want = integrity_word_of values in
    if not (Int64.equal iw want) then Corrupt "superblock checksum mismatch"
    else if not (Int64.equal (a.read (base +! off_magic)) magic) then
      Corrupt "bad magic under a valid checksum"
    else Sealed

let superblock_state a = verify_at a ~base:0L

(* The replica is only consulted when the primary is unreadable, so its
   capacity word cannot be taken from the (possibly corrupt) primary:
   the caller supplies the registry's capacity. *)
let replica_state a ~capacity:cap =
  let base = cap -! replica_size in
  match verify_at a ~base with
  | Sealed ->
      if Int64.equal (a.read (base +! off_capacity)) cap then Sealed
      else Corrupt "replica capacity disagrees with the pool registry"
  | s -> s

let replica_intact a ~capacity =
  match replica_state a ~capacity with Sealed -> true | _ -> false

let restore_from_replica a ~capacity:cap =
  let base = cap -! replica_size in
  List.iter (fun off -> a.write off (a.read (base +! off))) sb_covered;
  a.write off_integrity (a.read (base +! off_integrity))

let init a ~capacity =
  let capacity = Int64.logand capacity (Int64.lognot 15L) in
  if capacity < heap_start +! min_block +! replica_size then
    invalid_arg "Freelist.init: arena too small";
  a.write off_magic magic;
  a.write off_capacity capacity;
  a.write off_allocated 0L;
  a.write off_root 0L;
  a.write off_alloc_count 0L;
  a.write off_free_count 0L;
  a.write off_integrity 0L;
  let heap_end = heap_limit ~capacity in
  set_block a heap_start ~size:(heap_end -! heap_start) ~allocated:false;
  set_block_next a heap_start 0L;
  a.write off_free_head heap_start

let round_to_16 n = Int64.logand (n +! 15L) (Int64.lognot 15L)

(* First-fit allocation.  Returns the payload offset. *)
let alloc a (size : int64) : int64 =
  if size <= 0L then invalid_arg "Freelist.alloc: non-positive size";
  let need = round_to_16 size +! header_size in
  let rec walk ~prev cur =
    if Int64.equal cur 0L then raise Out_of_memory
    else
      let cur_size = block_size a cur in
      if cur_size >= need then begin
        let next = block_next a cur in
        let taken =
          if cur_size -! need >= min_block then begin
            (* Split: remainder becomes a free block in place of [cur]. *)
            let rem = cur +! need in
            set_block a rem ~size:(cur_size -! need) ~allocated:false;
            set_block_next a rem next;
            (match prev with
            | None -> a.write off_free_head rem
            | Some p -> set_block_next a p rem);
            need
          end
          else begin
            (match prev with
            | None -> a.write off_free_head next
            | Some p -> set_block_next a p next);
            cur_size
          end
        in
        set_block a cur ~size:taken ~allocated:true;
        a.write off_allocated (allocated_bytes a +! taken);
        a.write off_alloc_count (a.read off_alloc_count +! 1L);
        cur +! header_size
      end
      else walk ~prev:(Some cur) (block_next a cur)
  in
  walk ~prev:None (a.read off_free_head)

(* Free with coalescing of adjacent blocks; the free list is kept sorted
   by offset so neighbours are found during insertion. *)
let free a (payload : int64) : unit =
  let b = payload -! header_size in
  let heap_end = heap_limit ~capacity:(capacity a) in
  if b < heap_start || b >= heap_end then
    raise (Corrupt_arena (Fmt.str "free: offset %Ld out of arena" payload));
  if not (block_allocated a b) then
    raise (Corrupt_arena (Fmt.str "double free at offset %Ld" payload));
  let size = block_size a b in
  (* The checksum already rejects application bytes posing as a header;
     these structural checks stay as a second line of defence against
     the 2^-16 collision and as documentation of what a header is. *)
  if size < min_block || Int64.rem size 16L <> 0L || b +! size > heap_end then
    raise
      (Corrupt_arena
         (Fmt.str "free: block at %Ld has corrupt size %Ld" payload size));
  a.write off_allocated (allocated_bytes a -! size);
  a.write off_free_count (a.read off_free_count +! 1L);
  set_block a b ~size ~allocated:false;
  (* Find insertion point: prev < b < cur. *)
  let rec find ~prev cur =
    if Int64.equal cur 0L || cur > b then (prev, cur)
    else find ~prev:(Some cur) (block_next a cur)
  in
  let prev, next = find ~prev:None (a.read off_free_head) in
  (* Link in. *)
  set_block_next a b next;
  (match prev with
  | None -> a.write off_free_head b
  | Some p -> set_block_next a p b);
  (* Coalesce with successor. *)
  (if not (Int64.equal next 0L) && Int64.equal (b +! block_size a b) next then begin
     set_block a b ~size:(block_size a b +! block_size a next)
       ~allocated:false;
     set_block_next a b (block_next a next)
   end);
  (* Coalesce with predecessor. *)
  match prev with
  | Some p when Int64.equal (p +! block_size a p) b ->
      set_block a p ~size:(block_size a p +! block_size a b) ~allocated:false;
      set_block_next a p (block_next a b)
  | Some _ | None -> ()

(* Walk the free list and verify structural invariants; returns the
   total free bytes.  Used by tests and by the quickcheck suite. *)
let check_invariants a : int64 =
  if not (is_initialized a) then raise (Corrupt_arena "bad magic");
  let heap_end = heap_limit ~capacity:(capacity a) in
  let rec walk prev cur total =
    if Int64.equal cur 0L then total
    else begin
      if cur < heap_start || cur >= heap_end then
        raise (Corrupt_arena (Fmt.str "free block %Ld out of arena" cur));
      (match prev with
      | Some p ->
          if cur <= p then raise (Corrupt_arena "free list not sorted");
          if p +! block_size a p > cur then
            raise (Corrupt_arena "overlapping free blocks")
      | None -> ());
      if block_allocated a cur then
        raise (Corrupt_arena "allocated block on free list");
      let size = block_size a cur in
      if size < min_block || Int64.rem size 16L <> 0L then
        raise (Corrupt_arena "bad free block size");
      walk (Some cur) (block_next a cur) (total +! size)
    end
  in
  let free_total = walk None (a.read off_free_head) 0L in
  if free_total +! allocated_bytes a <> heap_end -! heap_start then
    raise
      (Corrupt_arena
         (Fmt.str "accounting mismatch: free %Ld + allocated %Ld <> heap %Ld"
            free_total (allocated_bytes a) (heap_end -! heap_start)));
  (* Whole-heap walk: blocks must tile [heap_start, heap_end) exactly,
     every free block must be one the free-list walk above visited, and
     the allocated blocks must sum to the header's accounting word (the
     check above trusts that word; this one recomputes it). *)
  let free_set = Hashtbl.create 16 in
  let rec collect cur =
    if not (Int64.equal cur 0L) then begin
      Hashtbl.replace free_set cur ();
      collect (block_next a cur)
    end
  in
  collect (a.read off_free_head);
  let rec tile b alloc_sum free_seen =
    if Int64.equal b heap_end then (alloc_sum, free_seen)
    else if b > heap_end then
      raise (Corrupt_arena (Fmt.str "block at %Ld overruns the arena" b))
    else begin
      let size = block_size a b in
      if size < min_block || Int64.rem size 16L <> 0L || b +! size > heap_end
      then
        raise (Corrupt_arena (Fmt.str "block at %Ld has corrupt size %Ld" b size));
      if block_allocated a b then tile (b +! size) (alloc_sum +! size) free_seen
      else begin
        if not (Hashtbl.mem free_set b) then
          raise
            (Corrupt_arena (Fmt.str "free block at %Ld not on the free list" b));
        tile (b +! size) alloc_sum (free_seen + 1)
      end
    end
  in
  let alloc_sum, free_seen = tile heap_start 0L 0 in
  if alloc_sum <> allocated_bytes a then
    raise
      (Corrupt_arena
         (Fmt.str "allocated accounting %Ld but blocks sum to %Ld"
            (allocated_bytes a) alloc_sum));
  if free_seen <> Hashtbl.length free_set then
    raise (Corrupt_arena "free list references blocks outside the heap walk");
  free_total
