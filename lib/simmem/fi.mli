(** Fault-injection events: the vocabulary of persistence-relevant
    actions announced through {!Physmem.set_fi_hook}.

    Events fire {e before} the action they describe takes effect, so a
    hook that raises suppresses the announced store — crashing "at event
    [k]" leaves the machine with events [0..k-1] applied and event [k]
    (and everything after it) lost. *)

type event =
  | Pm_store of {
      frame : int;
      word_index : int;
      old_value : int64;
      new_value : int64;
    }  (** A word store about to land in an NVM frame. *)
  | Storep_retire  (** A hardware storeP about to retire its value. *)
  | Txn_log_append  (** The undo log about to append an entry. *)
  | Alloc_meta_write of { pool : int; offset : int64 }
      (** The pool allocator about to update freelist metadata;
          [offset] is the word's pool-relative offset. *)
  | Flush_line of { frame : int; line : int }
      (** The persistency engine about to drain one buffered 64-byte
          line ([line] is the line index inside [frame]) to media.
          Crashing here loses this line and every un-drained line
          after it. *)
  | Fence  (** The persistency engine about to retire a drain fence. *)

val kind_name : event -> string
(** Short stable tag for reports: ["pm_store"], ["storep"],
    ["log_append"], ["alloc_meta"], ["flush"], ["fence"]. *)

val torn_word : keep_old_bytes:int -> old_value:int64 -> new_value:int64 -> int64
(** Byte-granular mix of [old_value] and [new_value]: bit [i] of
    [keep_old_bytes] (an 8-bit mask) keeps the {e old} byte in lane
    [i].  [0xFF] reproduces the old word, [0x00] the new one; anything
    else is a torn write. *)
