(* A process virtual address space: a page table mapping virtual pages to
   physical frames, plus simple bump reservations for fresh mapping bases
   in each half of the address space.

   The page table is volatile kernel state: a simulated crash clears it;
   persistent pools are re-mapped (possibly at different bases) when they
   are re-opened after restart. *)

exception Fault of int64
(* Raised on access to an unmapped virtual address. *)

(* Translations are served from a direct-mapped software cache in front
   of the page-table hashtable: the simulator performs one translation
   per simulated access, so this cache is the hottest lookup in the
   whole system.  Entries are (vpage, frame) pairs indexed by the low
   vpage bits; [tc_vpage.(i) = -1] marks an empty slot. *)
let tc_bits = 12
let tc_size = 1 lsl tc_bits

module Hit_miss = Nvml_telemetry.Stats.Hit_miss

type t = {
  page_table : (int, int) Hashtbl.t; (* virtual page -> physical frame *)
  (* Contiguous mappings — a fresh arena, a pool's frame run — are one
     [(first vpage, pages, first frame)] segment instead of a hashtable
     entry per page: a 128 MiB DRAM arena is one cons cell, not 32768
     inserts.  The verification engines boot a fresh machine per crash
     point / fuzz case, so mapping cost sits on their hot path.  The
     list stays short (arena, kernel tables, pools); it is scanned only
     on a translation-cache *and* page-table miss, and each page's
     translation then refills the cache. *)
  mutable segments : (int * int * int) list;
  tc_vpage : int array; (* translation-cache tags, -1 = empty *)
  tc_frame : int array;
  tc_stats : Hit_miss.t; (* translation-cache hits/misses *)
  mutable dram_brk : int64; (* next fresh VA in the DRAM half *)
  mutable nvm_brk : int64; (* next fresh VA in the NVM half *)
}

let create () =
  {
    page_table = Hashtbl.create 4096;
    segments = [];
    tc_vpage = Array.make tc_size (-1);
    tc_frame = Array.make tc_size 0;
    tc_stats = Hit_miss.create ();
    (* Leave the first page unmapped so VA 0 (NULL) always faults. *)
    dram_brk = Int64.of_int Layout.page_size;
    nvm_brk = Layout.nvm_va_base;
  }

let reserve t region bytes =
  let size = Int64.of_int (Layout.pages_of_bytes bytes * Layout.page_size) in
  match region with
  | Layout.Dram ->
      let base = t.dram_brk in
      t.dram_brk <- Int64.add base size;
      if t.dram_brk >= Layout.nvm_va_base then
        invalid_arg "Vspace.reserve: DRAM half exhausted";
      base
  | Layout.Nvm ->
      let base = t.nvm_brk in
      t.nvm_brk <- Int64.add base size;
      if t.nvm_brk >= Layout.va_limit then
        invalid_arg "Vspace.reserve: NVM half exhausted";
      base

(* Skip some pages in the NVM half, so that re-opened pools land at a
   different base than before — exercising pointer relocatability. *)
let skew_nvm_brk t pages =
  t.nvm_brk <-
    Int64.add t.nvm_brk (Int64.of_int (pages * Layout.page_size))

let map_page t ~vpage ~frame =
  Hashtbl.replace t.page_table vpage frame;
  let idx = vpage land (tc_size - 1) in
  t.tc_vpage.(idx) <- vpage;
  t.tc_frame.(idx) <- frame

let map_range t ~base ~frames =
  assert (Int64.logand base (Int64.of_int (Layout.page_size - 1)) = 0L);
  List.iteri
    (fun i frame -> map_page t ~vpage:(Layout.page_of_va base + i) ~frame)
    frames

(* Map [pages] consecutive pages onto [pages] consecutive frames in one
   segment.  Equivalent to [map_range] with the list
   [first_frame; first_frame + 1; ...] but O(1). *)
let map_seg t ~vpage ~pages ~first_frame =
  if pages > 0 then t.segments <- (vpage, pages, first_frame) :: t.segments

(* Drop [first, first + pages) from the segment list, splitting any
   segment the range lands inside. *)
let seg_unmap t ~first ~pages =
  let last = first + pages - 1 in
  if
    List.exists
      (fun (v0, n, _) -> first <= v0 + n - 1 && last >= v0)
      t.segments
  then
    t.segments <-
      List.concat_map
        (fun ((v0, n, f0) as seg) ->
          let v1 = v0 + n - 1 in
          if last < v0 || first > v1 then [ seg ]
          else
            (if first > v0 then [ (v0, first - v0, f0) ] else [])
            @
            if last < v1 then [ (last + 1, v1 - last, f0 + (last + 1 - v0)) ]
            else [])
        t.segments

let unmap_range t ~base ~pages =
  let first = Layout.page_of_va base in
  for vpage = first to first + pages - 1 do
    Hashtbl.remove t.page_table vpage;
    let idx = vpage land (tc_size - 1) in
    if t.tc_vpage.(idx) = vpage then t.tc_vpage.(idx) <- -1
  done;
  seg_unmap t ~first ~pages

(* Frame backing the page of [va], or -1 when unmapped. *)
let frame_of_va t va =
  let vpage = Layout.page_of_va va in
  let idx = vpage land (tc_size - 1) in
  if Array.unsafe_get t.tc_vpage idx = vpage then begin
    Hit_miss.hit t.tc_stats;
    Array.unsafe_get t.tc_frame idx
  end
  else begin
    Hit_miss.miss t.tc_stats;
    match Hashtbl.find_opt t.page_table vpage with
    | Some frame ->
        Array.unsafe_set t.tc_vpage idx vpage;
        Array.unsafe_set t.tc_frame idx frame;
        frame
    | None ->
        let rec scan = function
          | [] -> -1
          | (v0, n, f0) :: rest ->
              if vpage >= v0 && vpage < v0 + n then begin
                let frame = f0 + (vpage - v0) in
                Array.unsafe_set t.tc_vpage idx vpage;
                Array.unsafe_set t.tc_frame idx frame;
                frame
              end
              else scan rest
        in
        scan t.segments
  end

(* Packed translation: the physical address as an unboxed int
   ([frame * page_size + offset]), or -1 on fault.  The hot path —
   avoids the option/tuple allocations of [translate]. *)
let translate_pa t va =
  let frame = frame_of_va t va in
  if frame < 0 then -1
  else (frame lsl Layout.page_shift) lor Layout.page_offset_of_va va

let translate t va =
  let frame = frame_of_va t va in
  if frame < 0 then None else Some (frame, Layout.page_offset_of_va va)

let translate_exn t va =
  let frame = frame_of_va t va in
  if frame < 0 then raise (Fault va)
  else (frame, Layout.page_offset_of_va va)

let is_mapped t va = translate t va <> None

let mapped_pages t =
  Hashtbl.length t.page_table
  + List.fold_left (fun acc (_, n, _) -> acc + n) 0 t.segments

let tc_stats t = t.tc_stats
let reset_stats t = Hit_miss.reset t.tc_stats

(* Crash: all virtual mappings are volatile kernel state and vanish.
   The bump pointers are reset too — a fresh process address space. *)
let crash t =
  Hashtbl.reset t.page_table;
  t.segments <- [];
  Array.fill t.tc_vpage 0 tc_size (-1);
  t.dram_brk <- Int64.of_int Layout.page_size;
  t.nvm_brk <- Layout.nvm_va_base
