(* A process virtual address space: a page table mapping virtual pages to
   physical frames, plus simple bump reservations for fresh mapping bases
   in each half of the address space.

   The page table is volatile kernel state: a simulated crash clears it;
   persistent pools are re-mapped (possibly at different bases) when they
   are re-opened after restart. *)

exception Fault of int64
(* Raised on access to an unmapped virtual address. *)

(* Translations are served from a direct-mapped software cache in front
   of the page-table hashtable: the simulator performs one translation
   per simulated access, so this cache is the hottest lookup in the
   whole system.  Entries are (vpage, frame) pairs indexed by the low
   vpage bits; [tc_vpage.(i) = -1] marks an empty slot. *)
let tc_bits = 12
let tc_size = 1 lsl tc_bits

module Hit_miss = Nvml_telemetry.Stats.Hit_miss

type t = {
  page_table : (int, int) Hashtbl.t; (* virtual page -> physical frame *)
  tc_vpage : int array; (* translation-cache tags, -1 = empty *)
  tc_frame : int array;
  tc_stats : Hit_miss.t; (* translation-cache hits/misses *)
  mutable dram_brk : int64; (* next fresh VA in the DRAM half *)
  mutable nvm_brk : int64; (* next fresh VA in the NVM half *)
}

let create () =
  {
    page_table = Hashtbl.create 4096;
    tc_vpage = Array.make tc_size (-1);
    tc_frame = Array.make tc_size 0;
    tc_stats = Hit_miss.create ();
    (* Leave the first page unmapped so VA 0 (NULL) always faults. *)
    dram_brk = Int64.of_int Layout.page_size;
    nvm_brk = Layout.nvm_va_base;
  }

let reserve t region bytes =
  let size = Int64.of_int (Layout.pages_of_bytes bytes * Layout.page_size) in
  match region with
  | Layout.Dram ->
      let base = t.dram_brk in
      t.dram_brk <- Int64.add base size;
      if t.dram_brk >= Layout.nvm_va_base then
        invalid_arg "Vspace.reserve: DRAM half exhausted";
      base
  | Layout.Nvm ->
      let base = t.nvm_brk in
      t.nvm_brk <- Int64.add base size;
      if t.nvm_brk >= Layout.va_limit then
        invalid_arg "Vspace.reserve: NVM half exhausted";
      base

(* Skip some pages in the NVM half, so that re-opened pools land at a
   different base than before — exercising pointer relocatability. *)
let skew_nvm_brk t pages =
  t.nvm_brk <-
    Int64.add t.nvm_brk (Int64.of_int (pages * Layout.page_size))

let map_page t ~vpage ~frame =
  Hashtbl.replace t.page_table vpage frame;
  let idx = vpage land (tc_size - 1) in
  t.tc_vpage.(idx) <- vpage;
  t.tc_frame.(idx) <- frame

let map_range t ~base ~frames =
  assert (Int64.logand base (Int64.of_int (Layout.page_size - 1)) = 0L);
  List.iteri
    (fun i frame -> map_page t ~vpage:(Layout.page_of_va base + i) ~frame)
    frames

let unmap_range t ~base ~pages =
  let first = Layout.page_of_va base in
  for vpage = first to first + pages - 1 do
    Hashtbl.remove t.page_table vpage;
    let idx = vpage land (tc_size - 1) in
    if t.tc_vpage.(idx) = vpage then t.tc_vpage.(idx) <- -1
  done

(* Frame backing the page of [va], or -1 when unmapped. *)
let frame_of_va t va =
  let vpage = Layout.page_of_va va in
  let idx = vpage land (tc_size - 1) in
  if Array.unsafe_get t.tc_vpage idx = vpage then begin
    Hit_miss.hit t.tc_stats;
    Array.unsafe_get t.tc_frame idx
  end
  else begin
    Hit_miss.miss t.tc_stats;
    match Hashtbl.find_opt t.page_table vpage with
    | Some frame ->
        Array.unsafe_set t.tc_vpage idx vpage;
        Array.unsafe_set t.tc_frame idx frame;
        frame
    | None -> -1
  end

(* Packed translation: the physical address as an unboxed int
   ([frame * page_size + offset]), or -1 on fault.  The hot path —
   avoids the option/tuple allocations of [translate]. *)
let translate_pa t va =
  let frame = frame_of_va t va in
  if frame < 0 then -1
  else (frame lsl Layout.page_shift) lor Layout.page_offset_of_va va

let translate t va =
  let frame = frame_of_va t va in
  if frame < 0 then None else Some (frame, Layout.page_offset_of_va va)

let translate_exn t va =
  let frame = frame_of_va t va in
  if frame < 0 then raise (Fault va)
  else (frame, Layout.page_offset_of_va va)

let is_mapped t va = translate t va <> None

let mapped_pages t = Hashtbl.length t.page_table

let tc_stats t = t.tc_stats
let reset_stats t = Hit_miss.reset t.tc_stats

(* Crash: all virtual mappings are volatile kernel state and vanish.
   The bump pointers are reset too — a fresh process address space. *)
let crash t =
  Hashtbl.reset t.page_table;
  Array.fill t.tc_vpage 0 tc_size (-1);
  t.dram_brk <- Int64.of_int Layout.page_size;
  t.nvm_brk <- Layout.nvm_va_base
