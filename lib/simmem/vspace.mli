(** A process virtual address space: the page table mapping virtual
    pages to physical frames, plus bump reservations for fresh mapping
    bases in each half.  Volatile kernel state: a crash clears it. *)

exception Fault of int64
(** Access to an unmapped virtual address. *)

type t

val create : unit -> t

val reserve : t -> Layout.region -> int -> int64
(** Reserve a fresh page-aligned virtual range in the given half;
    returns its base. *)

val skew_nvm_brk : t -> int -> unit
(** Skip pages in the NVM half so re-opened pools land at different
    bases — exercising pointer relocatability. *)

val map_page : t -> vpage:int -> frame:int -> unit
val map_range : t -> base:int64 -> frames:int list -> unit

val map_seg : t -> vpage:int -> pages:int -> first_frame:int -> unit
(** Map [pages] consecutive pages onto consecutive frames starting at
    [first_frame], as one O(1) segment instead of a page-table entry
    per page.  Translation results are identical to the equivalent
    {!map_range}. *)

val unmap_range : t -> base:int64 -> pages:int -> unit

val translate : t -> int64 -> (int * int) option
(** [translate t va] is [(frame, page offset)] or [None]. *)

val translate_pa : t -> int64 -> int
(** Packed allocation-free translation: the physical address
    [frame * page_size + offset] as an unboxed int, or -1 on fault.
    Served from a direct-mapped software translation cache in front of
    the page table. *)

val translate_exn : t -> int64 -> int * int
(** @raise Fault when unmapped. *)

val is_mapped : t -> int64 -> bool
val mapped_pages : t -> int

val tc_stats : t -> Nvml_telemetry.Stats.Hit_miss.t
(** Hit/miss record of the software translation cache in front of the
    page table. *)

val reset_stats : t -> unit

val crash : t -> unit
(** All mappings vanish and the reservation pointers reset. *)
