(** Simulated physical memory: DRAM and NVM frame spaces allocated on
    demand, with word-granular access.  A simulated {!crash} erases all
    DRAM frames and leaves NVM frames intact — the property the whole
    persistence stack builds on. *)

type frame = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

val create : unit -> t
val region_of_frame : int -> Layout.region
val alloc_frame : t -> Layout.region -> int
val alloc_frames : t -> Layout.region -> int -> int list
val frame_exists : t -> int -> bool
(** Whether the frame's backing storage has been materialized (frames
    are backed lazily on first touch). *)

val frame_reserved : t -> int -> bool
(** Whether the frame number has been handed out by [alloc_frame]. *)

val storage : t -> int -> frame

val phys_addr_of : frame:int -> offset:int -> int64
val frame_of_phys : int64 -> int

val read_word : t -> frame:int -> word_index:int -> int64
val write_word : t -> frame:int -> word_index:int -> int64 -> unit

val read_pa : t -> int -> int64
(** Word at the packed physical address [frame * page_size + offset]
    (as produced by {!Vspace.translate_pa}); allocation-free. *)

val write_pa : t -> int -> int64 -> unit

val crash : t -> unit
(** DRAM frames lose their contents and are released, and the DRAM
    frame counter is recycled; NVM frames survive untouched. *)

val dram_frames_allocated : t -> int
val nvm_frames_allocated : t -> int
val reads : t -> int
val writes : t -> int

val reset_stats : t -> unit
(** Zero the read/write counters (frame-allocation counts are state,
    not statistics, and are kept). *)
