(** Simulated physical memory: DRAM and NVM frame spaces allocated on
    demand, with word-granular access.  A simulated {!crash} erases all
    DRAM frames and leaves NVM frames intact — the property the whole
    persistence stack builds on. *)

type frame = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

val create : unit -> t
val region_of_frame : int -> Layout.region
val alloc_frame : t -> Layout.region -> int
val alloc_frames : t -> Layout.region -> int -> int list

val alloc_frame_run : t -> Layout.region -> int -> int
(** Reserve [n] consecutive frame numbers and return the first — the
    numbering [n] successive {!alloc_frame} calls would produce,
    without building the list. *)


val frame_exists : t -> int -> bool
(** Whether the frame's backing storage has been materialized (frames
    are backed lazily on first touch). *)

val frame_reserved : t -> int -> bool
(** Whether the frame number has been handed out by [alloc_frame]. *)

val storage : t -> int -> frame

val phys_addr_of : frame:int -> offset:int -> int64
val frame_of_phys : int64 -> int

val read_word : t -> frame:int -> word_index:int -> int64
val write_word : t -> frame:int -> word_index:int -> int64 -> unit

val read_pa : t -> int -> int64
(** Word at the packed physical address [frame * page_size + offset]
    (as produced by {!Vspace.translate_pa}); allocation-free. *)

val write_pa : t -> int -> int64 -> unit

val crash : t -> unit
(** Simulated power failure at the media level.

    Erased: the contents of every DRAM frame (their backing storage is
    released and the DRAM frame counter recycled, so old DRAM frame
    numbers are dead).  Survives: every NVM frame, bit for bit, along
    with the NVM frame counter and any armed fault-injection hook.
    A {!set_frozen} freeze is lifted — power is back.  Higher layers
    add their own crash semantics on top: see {!Vspace.crash} (all
    mappings), {!Mem.crash}, and [Pmop.crash] (pool registry and pool
    frames survive; volatile tables vanish). *)

val dram_frames_allocated : t -> int
val nvm_frames_allocated : t -> int
val reads : t -> int
val writes : t -> int

val reset_stats : t -> unit
(** Zero the read/write counters (frame-allocation counts are state,
    not statistics, and are kept). *)

(** {2 Fault injection}

    One hook per machine sees every persistence-relevant event
    {e before} it takes effect ({!Fi.event}); raising from the hook
    therefore suppresses the announced store.  The hook survives
    {!crash} so an injector can observe recovery too. *)

val set_fi_hook : t -> (Fi.event -> unit) option -> unit
(** Arm or disarm the fault-injection hook.  The unarmed write path
    pays only a null test; the armed path additionally reads the old
    value of every NVM word stored. *)

val fi_armed : t -> bool

val fire : t -> Fi.event -> unit
(** Announce an event from an upper layer ([Txn], [Pmop], [Runtime])
    to the hook, if armed and not frozen.  No-op otherwise. *)

val set_frozen : t -> bool -> unit
(** A frozen machine drops every store (reads still work): it models
    the instant of power loss, so code unwinding from a crash exception
    cannot accidentally keep writing to the media.  {!crash} unfreezes. *)

val frozen : t -> bool

(** {2 Media model}

    One read hook and one write note per machine let a media-error
    model ([Nvml_media.Media]) sit under every NVM access: the read
    hook sees each word leaving a frame and may transform it (bit rot)
    or raise (a poisoned line); the write note fires after a store
    lands, so the model can heal a re-written location.  Both hooks
    survive {!crash} — device defects outlive power cycles. *)

val set_media_read : t -> (frame:int -> word_index:int -> int64 -> int64) option -> unit
val set_media_write_note : t -> (frame:int -> word_index:int -> unit) option -> unit
val media_armed : t -> bool

val set_persist_note :
  t -> (frame:int -> word_index:int -> old_value:int64 -> unit) option -> unit
(** Arm or disarm the persistency-engine note: an armed note sees every
    NVM word store {e after} the fi hook has let it through but
    {e before} the word lands, with the still-durable [old_value] of
    the location.  A buffered persistency model ([Persist]) uses it to
    record the word as dirty-but-volatile; the unarmed write path pays
    only a null test.  Survives {!crash} management by the caller: the
    hook itself is left untouched by {!crash}. *)

val peek : t -> frame:int -> word_index:int -> int64
(** Raw word read: no counters, no hook, no media model. *)

val poke : t -> frame:int -> word_index:int -> int64 -> unit
(** Raw word write: no counters, no hook, ignores freezing, and does
    {e not} fire the media write note (so it never heals a media
    fault).  This is the injectors' backdoor for planting torn words
    ({!Fi.torn_word}) at the crash point and for corrupting checksummed
    metadata by hand in tests. *)
