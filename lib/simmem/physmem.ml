(* Simulated physical memory: two frame spaces (DRAM and NVM), allocated
   on demand.  Frame contents are 64-bit words in unboxed bigarrays so the
   simulator can hold millions of words cheaply.

   A simulated crash erases the contents of every DRAM frame but leaves
   NVM frames intact — this is the property the rest of the stack builds
   persistence on. *)

type frame =
  (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  frames : (int, frame) Hashtbl.t;
  (* Last-frame memo: consecutive accesses overwhelmingly hit the same
     frame, so one equality test usually replaces the hashtable probe. *)
  mutable memo_frame : int;
  mutable memo_storage : frame;
  mutable next_dram_frame : int;
  mutable next_nvm_frame : int;
  mutable dram_frames_allocated : int;
  mutable nvm_frames_allocated : int;
  mutable reads : int;
  mutable writes : int;
  (* Fault injection: an armed hook sees every persistence-relevant
     event before it takes effect; a frozen machine drops all stores
     (power is off, nothing lands on the media any more). *)
  mutable fi_hook : (Fi.event -> unit) option;
  mutable frozen : bool;
  (* Media model: an armed read hook sees every word leaving an NVM
     frame and may transform it (bit rot) or raise (poisoned line); the
     write note lets the model heal a location that is re-written. *)
  mutable media_read : (frame:int -> word_index:int -> int64 -> int64) option;
  mutable media_write : (frame:int -> word_index:int -> unit) option;
  (* Persistency model: an armed note sees every NVM word store after
     the fi hook has let it through but before it lands, so a buffered
     persistency engine can record the word as dirty-but-volatile. *)
  mutable persist_note :
    (frame:int -> word_index:int -> old_value:int64 -> unit) option;
}

let no_storage : frame =
  Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout 0

let create () =
  {
    frames = Hashtbl.create 4096;
    memo_frame = -1;
    memo_storage = no_storage;
    next_dram_frame = 1 (* frame 0 reserved so phys addr 0 is never valid *);
    next_nvm_frame = Layout.nvm_phys_frame_base;
    dram_frames_allocated = 0;
    nvm_frames_allocated = 0;
    reads = 0;
    writes = 0;
    fi_hook = None;
    frozen = false;
    media_read = None;
    media_write = None;
    persist_note = None;
  }

let region_of_frame frame =
  if frame >= Layout.nvm_phys_frame_base then Layout.Nvm else Layout.Dram

let fresh_frame_storage () =
  let a = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout
      Layout.words_per_page in
  Bigarray.Array1.fill a 0L;
  a

(* Frame numbers are handed out eagerly; the backing storage is
   created on first touch, so memory stays proportional to the pages a
   simulation actually uses rather than to what it maps. *)
let alloc_frame t region =
  match region with
  | Layout.Dram ->
      let f = t.next_dram_frame in
      t.next_dram_frame <- f + 1;
      t.dram_frames_allocated <- t.dram_frames_allocated + 1;
      f
  | Layout.Nvm ->
      let f = t.next_nvm_frame in
      t.next_nvm_frame <- f + 1;
      t.nvm_frames_allocated <- t.nvm_frames_allocated + 1;
      f

(* Reserve [n] consecutive frame numbers; returns the first.  Same
   numbering as [n] successive [alloc_frame] calls, without building
   the list — contiguous mappings pair this with [Vspace.map_seg]. *)
let alloc_frame_run t region n =
  match region with
  | Layout.Dram ->
      let f = t.next_dram_frame in
      t.next_dram_frame <- f + n;
      t.dram_frames_allocated <- t.dram_frames_allocated + n;
      f
  | Layout.Nvm ->
      let f = t.next_nvm_frame in
      t.next_nvm_frame <- f + n;
      t.nvm_frames_allocated <- t.nvm_frames_allocated + n;
      f

let alloc_frames t region n = List.init n (fun _ -> alloc_frame t region)

let frame_exists t frame = Hashtbl.mem t.frames frame

let frame_reserved t frame =
  (frame >= 1 && frame < t.next_dram_frame)
  || (frame >= Layout.nvm_phys_frame_base && frame < t.next_nvm_frame)

let storage t frame =
  if frame = t.memo_frame then t.memo_storage
  else
    let s =
      match Hashtbl.find_opt t.frames frame with
      | Some s -> s
      | None ->
          if not (frame_reserved t frame) then
            Fmt.invalid_arg "Physmem: access to unallocated frame %d" frame;
          let s = fresh_frame_storage () in
          Hashtbl.replace t.frames frame s;
          s
    in
    t.memo_frame <- frame;
    t.memo_storage <- s;
    s

(* Physical addresses: frame number * page size + offset. *)
let phys_addr_of ~frame ~offset =
  Int64.add
    (Int64.shift_left (Int64.of_int frame) Layout.page_shift)
    (Int64.of_int offset)

let frame_of_phys pa = Int64.to_int (Int64.shift_right_logical pa Layout.page_shift)

let read_word t ~frame ~word_index =
  t.reads <- t.reads + 1;
  let v = Bigarray.Array1.get (storage t frame) word_index in
  match t.media_read with None -> v | Some f -> f ~frame ~word_index v

(* Fire a [Pm_store] for a word about to land in an NVM frame.  Only
   called with a hook armed; reading the old value costs a frame lookup,
   which is why the unarmed paths below skip this entirely. *)
let announce_nvm_store t f frame word_index value =
  if frame >= Layout.nvm_phys_frame_base then
    f
      (Fi.Pm_store
         {
           frame;
           word_index;
           old_value = Bigarray.Array1.get (storage t frame) word_index;
           new_value = value;
         })

(* Tell the persistency engine about an NVM word store the fi hook let
   through.  Fires between the fi announcement and the bigarray set, so
   a crash raised from the hook never records a phantom dirty word. *)
let note_persist_store t frame word_index =
  match t.persist_note with
  | None -> ()
  | Some f ->
      if frame >= Layout.nvm_phys_frame_base then
        f ~frame ~word_index
          ~old_value:(Bigarray.Array1.get (storage t frame) word_index)

let write_word t ~frame ~word_index value =
  if not t.frozen then begin
    t.writes <- t.writes + 1;
    (match t.fi_hook with
    | None -> ()
    | Some f -> announce_nvm_store t f frame word_index value);
    note_persist_store t frame word_index;
    Bigarray.Array1.set (storage t frame) word_index value;
    match t.media_write with None -> () | Some f -> f ~frame ~word_index
  end

(* Packed-address accessors: [pa] is [frame * page_size + offset] as an
   unboxed int (as produced by [Vspace.translate_pa]).  The word index
   is always in range because offsets are page-bounded, so the bigarray
   bound check is elided. *)
let read_pa t pa =
  t.reads <- t.reads + 1;
  let v =
    Bigarray.Array1.unsafe_get
      (storage t (pa lsr Layout.page_shift))
      ((pa land (Layout.page_size - 1)) lsr 3)
  in
  match t.media_read with
  | None -> v
  | Some f ->
      f ~frame:(pa lsr Layout.page_shift)
        ~word_index:((pa land (Layout.page_size - 1)) lsr 3)
        v

let note_media_write t pa =
  match t.media_write with
  | None -> ()
  | Some f ->
      f ~frame:(pa lsr Layout.page_shift)
        ~word_index:((pa land (Layout.page_size - 1)) lsr 3)

let write_pa t pa value =
  match t.fi_hook with
  | None ->
      if not t.frozen then begin
        t.writes <- t.writes + 1;
        (if t.persist_note <> None then
           note_persist_store t (pa lsr Layout.page_shift)
             ((pa land (Layout.page_size - 1)) lsr 3));
        Bigarray.Array1.unsafe_set
          (storage t (pa lsr Layout.page_shift))
          ((pa land (Layout.page_size - 1)) lsr 3)
          value;
        note_media_write t pa
      end
  | Some f ->
      if not t.frozen then begin
        t.writes <- t.writes + 1;
        let frame = pa lsr Layout.page_shift in
        let word_index = (pa land (Layout.page_size - 1)) lsr 3 in
        announce_nvm_store t f frame word_index value;
        note_persist_store t frame word_index;
        Bigarray.Array1.unsafe_set (storage t frame) word_index value;
        note_media_write t pa
      end

(* Hook management and the raw backdoors the injector itself uses. *)

let set_fi_hook t hook = t.fi_hook <- hook
let fi_armed t = t.fi_hook <> None

let fire t event =
  match t.fi_hook with
  | Some f when not t.frozen -> f event
  | _ -> ()

let set_frozen t frozen = t.frozen <- frozen
let frozen t = t.frozen

let set_media_read t hook = t.media_read <- hook
let set_media_write_note t hook = t.media_write <- hook
let media_armed t = t.media_read <> None || t.media_write <> None
let set_persist_note t hook = t.persist_note <- hook

let peek t ~frame ~word_index =
  Bigarray.Array1.get (storage t frame) word_index

let poke t ~frame ~word_index value =
  Bigarray.Array1.set (storage t frame) word_index value

(* Crash semantics: DRAM frames lose their contents and are released;
   NVM frames survive untouched.  The DRAM frame counter is recycled
   too — the old frame numbers are dead (every DRAM mapping is gone),
   and without the reset repeated crash/restart cycles leak DRAM frame
   IDs (and physical address space) monotonically. *)
let crash t =
  let dram_frames =
    Hashtbl.fold
      (fun frame _ acc ->
        match region_of_frame frame with
        | Layout.Dram -> frame :: acc
        | Layout.Nvm -> acc)
      t.frames []
  in
  List.iter (Hashtbl.remove t.frames) dram_frames;
  t.memo_frame <- -1;
  t.memo_storage <- no_storage;
  t.next_dram_frame <- 1;
  t.dram_frames_allocated <- 0;
  (* Power is back: the media accepts stores again.  The fi hook stays
     armed — an injector that wants to observe the recovery run (or a
     shell tracking stores across power cycles) keeps its view.  The
     media hooks survive too: NVM defects are a property of the device,
     not of the power cycle, so a crash mid-scrub replays bit-identical
     faults from the same (seed, point). *)
  t.frozen <- false

let dram_frames_allocated t = t.dram_frames_allocated
let nvm_frames_allocated t = t.nvm_frames_allocated
let reads t = t.reads
let writes t = t.writes

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0
