(* Fault-injection event vocabulary.

   Every persistence-relevant action in the stack is announced as one of
   these events through the per-machine hook installed with
   [Physmem.set_fi_hook].  The fault-injection engine counts them on a
   reference run and then re-runs the workload, raising out of the hook
   at a chosen event index to simulate a power failure at that exact
   point in the store stream.

   Events fire *before* the action takes effect, so a hook that raises
   suppresses the store it announces: crashing "at event k" means the
   machine dies with events [0, k-1] applied and event [k] lost. *)

type event =
  | Pm_store of {
      frame : int;
      word_index : int;
      old_value : int64;
      new_value : int64;
    }
      (* A word store about to land in an NVM frame. *)
  | Storep_retire (* A hardware storeP is about to retire its value. *)
  | Txn_log_append (* The undo log is about to append an entry. *)
  | Alloc_meta_write of { pool : int; offset : int64 }
      (* The pool allocator is about to update freelist metadata. *)
  | Flush_line of { frame : int; line : int }
      (* The persistency engine is about to drain one buffered 64-byte
         line ([line] is the line index inside [frame]) to media. *)
  | Fence (* The persistency engine is about to retire a drain fence. *)

let kind_name = function
  | Pm_store _ -> "pm_store"
  | Storep_retire -> "storep"
  | Txn_log_append -> "log_append"
  | Alloc_meta_write _ -> "alloc_meta"
  | Flush_line _ -> "flush"
  | Fence -> "fence"

(* A torn word mixes the old and new value at byte granularity: bit [i]
   of [keep_old_bytes] selects the old byte for byte lane [i].  This is
   the adversarial sub-word model for media that only guarantees 8-byte
   atomicity per *aligned word* but where a crash mid-cacheline-flush
   can leave any byte-level interleaving of old and new data. *)
let torn_word ~keep_old_bytes ~old_value ~new_value =
  let mask = ref 0L in
  for byte = 0 to 7 do
    if keep_old_bytes land (1 lsl byte) <> 0 then
      mask := Int64.logor !mask (Int64.shift_left 0xFFL (8 * byte))
  done;
  Int64.logor
    (Int64.logand old_value !mask)
    (Int64.logand new_value (Int64.lognot !mask))
