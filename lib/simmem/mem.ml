(* The combined simulated memory: physical frames plus one process
   address space, with word- and byte-granular accessors keyed by virtual
   address.  This is the functional backing store; timing is modeled
   separately in [nvml_arch] from the event stream the runtime emits. *)

type t = { phys : Physmem.t; vspace : Vspace.t }

exception Unaligned of int64

let create () = { phys = Physmem.create (); vspace = Vspace.create () }

let phys t = t.phys
let vspace t = t.vspace

(* Map [bytes] fresh bytes of [region] memory at a fresh virtual base.
   Returns the base VA.  Physical frames come from the matching region. *)
let map_fresh t region bytes =
  let base = Vspace.reserve t.vspace region bytes in
  let pages = Layout.pages_of_bytes bytes in
  let first_frame = Physmem.alloc_frame_run t.phys region pages in
  Vspace.map_seg t.vspace ~vpage:(Layout.page_of_va base) ~pages ~first_frame;
  base

(* Map an existing list of physical frames (e.g. a persistent pool's
   frames after restart) at a fresh virtual base in the NVM half.
   Pool frames were handed out consecutively, so the list compresses
   into (usually one) O(1) segments. *)
let map_existing t region frames =
  let bytes = List.length frames * Layout.page_size in
  let base = Vspace.reserve t.vspace region bytes in
  let vpage0 = Layout.page_of_va base in
  let rec runs i = function
    | [] -> ()
    | f0 :: rest ->
        let rec eat n = function
          | f :: tl when f = f0 + n -> eat (n + 1) tl
          | tl -> (n, tl)
        in
        let n, tl = eat 1 rest in
        Vspace.map_seg t.vspace ~vpage:(vpage0 + i) ~pages:n ~first_frame:f0;
        runs (i + n) tl
  in
  runs 0 frames;
  base

let unmap t ~base ~bytes =
  Vspace.unmap_range t.vspace ~base ~pages:(Layout.pages_of_bytes bytes)

let check_word_aligned va =
  if not (Layout.is_word_aligned va) then raise (Unaligned va)

(* Translate a virtual address; raises [Vspace.Fault] if unmapped. *)
let phys_of_va t va =
  let frame, offset = Vspace.translate_exn t.vspace va in
  Physmem.phys_addr_of ~frame ~offset

(* Packed allocation-free translation: the physical address as an
   unboxed int, or -1 when unmapped. *)
let translate_pa t va = Vspace.translate_pa t.vspace va

let translate_pa_exn t va =
  let pa = Vspace.translate_pa t.vspace va in
  if pa < 0 then raise (Vspace.Fault va) else pa

(* Functional access through an already-translated packed physical
   address — lets callers that also feed the timing model translate
   once per simulated access instead of twice. *)
let read_word_pa t pa = Physmem.read_pa t.phys pa
let write_word_pa t pa value = Physmem.write_pa t.phys pa value

let read_word t va =
  check_word_aligned va;
  Physmem.read_pa t.phys (translate_pa_exn t va)

let write_word t va value =
  check_word_aligned va;
  Physmem.write_pa t.phys (translate_pa_exn t va) value

let read_byte t va =
  let word = read_word t (Int64.logand va (Int64.lognot 7L)) in
  let shift = 8 * Int64.to_int (Int64.logand va 7L) in
  Int64.to_int (Int64.logand (Int64.shift_right_logical word shift) 0xFFL)

let write_byte t va byte =
  let aligned = Int64.logand va (Int64.lognot 7L) in
  let shift = 8 * Int64.to_int (Int64.logand va 7L) in
  let mask = Int64.shift_left 0xFFL shift in
  let old = read_word t aligned in
  let cleared = Int64.logand old (Int64.lognot mask) in
  let inserted = Int64.shift_left (Int64.of_int (byte land 0xFF)) shift in
  write_word t aligned (Int64.logor cleared inserted)

let read_f64 t va = Int64.float_of_bits (read_word t va)
let write_f64 t va x = write_word t va (Int64.bits_of_float x)

(* Fixed-width string helpers: store up to [len] bytes starting at [va].
   Used by the key-value harness for 8-byte keys/values.  Aligned 8-byte
   runs move whole words (the simulated word layout is little-endian, so
   byte i of an aligned word sits at bits 8*i); the ragged edges keep
   byte-granular read-modify-write semantics. *)
let write_string t va s =
  let n = String.length s in
  let lead = min n ((8 - Int64.to_int (Int64.logand va 7L)) land 7) in
  for i = 0 to lead - 1 do
    write_byte t (Int64.add va (Int64.of_int i)) (Char.code s.[i])
  done;
  let i = ref lead in
  while n - !i >= 8 do
    write_word t (Int64.add va (Int64.of_int !i)) (String.get_int64_le s !i);
    i := !i + 8
  done;
  for i = !i to n - 1 do
    write_byte t (Int64.add va (Int64.of_int i)) (Char.code s.[i])
  done

let read_string t va len =
  let lead = min len ((8 - Int64.to_int (Int64.logand va 7L)) land 7) in
  let b = Bytes.create len in
  for i = 0 to lead - 1 do
    Bytes.set b i (Char.chr (read_byte t (Int64.add va (Int64.of_int i))))
  done;
  let i = ref lead in
  while len - !i >= 8 do
    Bytes.set_int64_le b !i (read_word t (Int64.add va (Int64.of_int !i)));
    i := !i + 8
  done;
  for i = !i to len - 1 do
    Bytes.set b i (Char.chr (read_byte t (Int64.add va (Int64.of_int i))))
  done;
  Bytes.unsafe_to_string b

let crash t =
  Physmem.crash t.phys;
  Vspace.crash t.vspace
