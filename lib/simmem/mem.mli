(** The combined simulated memory: physical frames plus one process
    address space, with word-, byte-, float- and string-granular
    accessors keyed by virtual address.  This is the functional backing
    store; timing is modeled separately in [nvml_arch]. *)

type t

exception Unaligned of int64

val create : unit -> t
val phys : t -> Physmem.t
val vspace : t -> Vspace.t

val map_fresh : t -> Layout.region -> int -> int64
(** Map fresh memory of a region at a fresh base; returns the base. *)

val map_existing : t -> Layout.region -> int list -> int64
(** Map existing physical frames (e.g. a pool's after restart) at a
    fresh base. *)

val unmap : t -> base:int64 -> bytes:int -> unit

val phys_of_va : t -> int64 -> int64
(** @raise Vspace.Fault when unmapped. *)

val translate_pa : t -> int64 -> int
(** Packed allocation-free translation: the physical address
    [frame * page_size + offset] as an unboxed int, or -1 when
    unmapped. *)

val translate_pa_exn : t -> int64 -> int
(** @raise Vspace.Fault when unmapped. *)

val read_word_pa : t -> int -> int64
(** Word at a packed physical address from {!translate_pa} — for
    callers that translate once and feed both the timing model and the
    functional store. *)

val write_word_pa : t -> int -> int64 -> unit

val read_word : t -> int64 -> int64
(** @raise Unaligned on a non-8-byte-aligned address. *)

val write_word : t -> int64 -> int64 -> unit
val read_byte : t -> int64 -> int
val write_byte : t -> int64 -> int -> unit
val read_f64 : t -> int64 -> float
val write_f64 : t -> int64 -> float -> unit
val write_string : t -> int64 -> string -> unit
val read_string : t -> int64 -> int -> string

val crash : t -> unit
(** Simulated power failure: erases every DRAM frame's contents
    ({!Physmem.crash}) and every virtual mapping ({!Vspace.crash});
    NVM frames survive bit for bit. *)
