(* Structure content snapshots: the ordered (key, value) image of a map,
   captured through its [iter].  The fault-injection checker compares a
   recovered structure against the pre- and post-transaction snapshots
   recorded on the reference run, so equality and first-divergence
   reporting live here rather than in every test. *)

type t = (int64 * int64) list

let capture iter =
  let acc = ref [] in
  iter (fun ~key ~value -> acc := (key, value) :: !acc);
  List.rev !acc

let size = List.length

let equal (a : t) (b : t) =
  try List.for_all2 (fun (ka, va) (kb, vb) -> ka = kb && va = vb) a b
  with Invalid_argument _ -> false

(* The first point where two snapshots diverge, for violation reports:
   [None] when equal. *)
let diff_summary (a : t) (b : t) =
  if equal a b then None
  else if size a <> size b then
    Some (Fmt.str "%d entries vs %d" (size a) (size b))
  else
    let rec first i a b =
      match (a, b) with
      | (ka, va) :: a', (kb, vb) :: b' ->
          if ka = kb && va = vb then first (i + 1) a' b'
          else
            Some
              (Fmt.str "entry %d: (%Ld, %Ld) vs (%Ld, %Ld)" i ka va kb vb)
      | _ -> None
    in
    first 0 a b

let pp ppf (t : t) =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:Fmt.comma (fun ppf (k, v) -> Fmt.pf ppf "%Ld:%Ld" k v))
    t
