(* A durably-linearizable concurrent linked set for the multi-core
   machine: a singly linked list over a pre-sized node arena, published
   by head insertion.

   Arena.  The nodes live in a fixed array allocated at creation, and
   every insert targets a caller-chosen slot (in practice: a
   deterministic function of (core, op index)).  No allocator runs
   inside the measured window, so a crash can never catch allocator
   metadata mid-update — the only persistent state in flight is the
   node payload and the head pointer.

   Insert protocol: write the key into the slot (the node is still
   unreachable, so this is crash-benign), then — as one modeled atomic
   read-modify-write ({!Nvml_arch.Multicore.atomically}) — link the
   node to the current head and swing the head pointer.  The head-swing
   store is the durability point: crash before it and the node is
   unreachable (operation not completed), crash at or after it and the
   node is recovered with key and next already in place (stores reach
   the media in program order).  Hence recovered contents always sit
   between the completed and the invoked insert sets — per core a
   prefix of its insertion order, since each core inserts sequentially.

   FliT marking brackets the publish + flush of each node; readers sync
   the header and each visited node through the table, eliding flushes
   on quiescent objects. *)

module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Ptr = Nvml_core.Ptr
module Multicore = Nvml_arch.Multicore

let s_hdr = Site.make "conc.list.header"
let s_node = Site.make "conc.list.node"
let s_iter = Site.make "conc.list.iter"

(* Header layout (byte offsets). *)
let h_head = 0 (* ptr: most recently published node *)
let h_cap = 8 (* word: arena capacity in slots *)
let h_slots = 16 (* slot 0 starts here *)

(* Slot layout. *)
let o_key = 0
let o_next = 8
let slot_size = 16

type t = { header : Ptr.t; capacity : int; flit : Flit.t }
type handle = { rt : Runtime.t; shared : t }

let create rt region ~capacity =
  if capacity < 1 then invalid_arg "Conc_list.create: capacity must be >= 1";
  let header = Runtime.alloc_in rt region (h_slots + (slot_size * capacity)) in
  Runtime.store_ptr rt ~site:s_hdr header ~off:h_head Ptr.null;
  Runtime.store_word rt ~site:s_hdr header ~off:h_cap (Int64.of_int capacity);
  { header; capacity; flit = Flit.create () }

let attach rt header =
  let capacity =
    Int64.to_int (Runtime.load_word rt ~site:s_hdr header ~off:h_cap)
  in
  { header; capacity; flit = Flit.create () }

let header t = t.header
let flit t = t.flit
let capacity t = t.capacity
let handle shared rt = { rt; shared }

let slot_off i = h_slots + (slot_size * i)
let slot_ptr shared i = Ptr.add shared.header (Int64.of_int (slot_off i))

(* Publish [key] in arena slot [slot].  Each slot must be used at most
   once per crash epoch. *)
let insert { rt; shared } ~slot ~key =
  if slot < 0 || slot >= shared.capacity then
    invalid_arg "Conc_list.insert: slot out of range";
  let node = slot_ptr shared slot in
  (* Payload first: the node is unreachable until the head swings. *)
  Runtime.store_word rt ~site:s_node shared.header ~off:(slot_off slot + o_key)
    key;
  Flit.writer_begin rt shared.flit node;
  (* Link + publish as one modeled atomic RMW: no other core's µ-events
     interleave between reading the head and swinging it. *)
  Multicore.atomically (fun () ->
      let head = Runtime.load_ptr rt ~site:s_node shared.header ~off:h_head in
      Runtime.store_ptr rt ~site:s_node shared.header
        ~off:(slot_off slot + o_next)
        head;
      Runtime.store_ptr rt ~site:s_hdr shared.header ~off:h_head node);
  Flit.writer_flush rt shared.flit node;
  Flit.writer_end rt shared.flit node

(* Walk the published chain, newest first.  Readers sync the header and
   every visited node through the FliT table.  The walk is bounded by
   the arena capacity, so a corrupted chain raises instead of hanging. *)
let iter { rt; shared } f =
  Flit.reader_sync rt shared.flit shared.header;
  let node = ref (Runtime.load_ptr rt ~site:s_hdr shared.header ~off:h_head) in
  let steps = ref 0 in
  while
    Runtime.branch rt ~site:s_iter
      (not (Runtime.ptr_is_null rt ~site:s_iter !node))
  do
    if !steps > shared.capacity then failwith "Conc_list: chain exceeds arena";
    incr steps;
    Flit.reader_sync rt shared.flit !node;
    f (Runtime.load_word rt ~site:s_iter !node ~off:o_key);
    node := Runtime.load_ptr rt ~site:s_iter !node ~off:o_next
  done

let size h =
  let n = ref 0 in
  iter h (fun _ -> incr n);
  !n

let mem h key =
  let found = ref false in
  iter h (fun k -> if k = key then found := true);
  !found

(* The chain as it would be recovered, with every word read through
   [read] (byte offset within the header object -> raw word).  The
   header must be the relative-format handle; stored node pointers are
   relative too, so the walk needs no live translation machinery.  The
   contract oracle passes a durable-value reader here to predict the
   exact post-crash contents under a buffered persistency model —
   including torn mid-drain chains where a drained head points at
   not-yet-drained (still zero) slots. *)
let keys_via ~capacity ~header read =
  let hdr_off = Ptr.offset_of header in
  let keys = ref [] in
  let node = ref (read h_head) in
  let steps = ref 0 in
  while not (Ptr.is_null !node) do
    if !steps > capacity then failwith "Conc_list: chain exceeds arena";
    incr steps;
    let off = Int64.to_int (Int64.sub (Ptr.offset_of !node) hdr_off) in
    keys := read (off + o_key) :: !keys;
    node := read (off + o_next)
  done;
  List.rev !keys

(* Recovery-side contents, newest first (no FliT traffic — the table
   died with the process). *)
let recovered_keys rt (t : t) =
  let site = s_iter in
  let keys = ref [] in
  let node = ref (Runtime.load_ptr rt ~site t.header ~off:h_head) in
  let steps = ref 0 in
  while not (Runtime.ptr_is_null rt ~site !node) do
    if !steps > t.capacity then failwith "Conc_list: chain exceeds arena";
    incr steps;
    keys := Runtime.load_word rt ~site !node ~off:o_key :: !keys;
    node := Runtime.load_ptr rt ~site !node ~off:o_next
  done;
  List.rev !keys
