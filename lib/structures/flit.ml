(* FliT-style per-object flush marking (see PAPERS.md): every
   persistent object carries a *volatile* counter of in-flight writers.
   A writer increments the counter, performs its persistent writes,
   flushes them, then decrements.  A reader that needs the object
   durable before acting on it checks the counter: zero means every
   write it can observe has already been flushed by its writer, so the
   reader's flush is *elided*; non-zero means a concurrent writer may
   still hold the line dirty, so the flush is *issued*.

   The table is volatile by design — it vanishes on crash — which is
   sound because a zero count only ever elides flushes some writer has
   already performed; it never weakens the writer-side protocol that
   durable linearizability rests on.

   The counter read-modify-writes model hardware atomics: they touch no
   µ-event between the load and the store, so the multi-core scheduler
   cannot interleave another core inside them. *)

module Runtime = Nvml_runtime.Runtime
module Ptr = Nvml_core.Ptr

type t = {
  counts : (Ptr.t, int) Hashtbl.t; (* object -> in-flight writers *)
  mutable writer_flushes : int;
  mutable issued : int; (* reader flushes issued (writer in flight) *)
  mutable elided : int; (* reader flushes elided (object quiescent) *)
  mutable persist_elided : int; (* flushes absorbed by a relaxed model *)
}

let create () =
  {
    counts = Hashtbl.create 64;
    writer_flushes = 0;
    issued = 0;
    elided = 0;
    persist_elided = 0;
  }

(* Modeled instruction costs. *)
let mark_instrs = 2 (* the marking atomic increment / decrement *)
let check_instrs = 1 (* the reader's counter load + test *)
let flush_instrs = 4 (* a flush + its ordering fence *)

let count t (p : Ptr.t) =
  match Hashtbl.find_opt t.counts p with Some n -> n | None -> 0

let writer_begin rt t (p : Ptr.t) =
  Runtime.instr rt mark_instrs;
  Hashtbl.replace t.counts p (count t p + 1)

(* Under a relaxed persistency model the per-store flush+fence is the
   cost the model exists to remove: durability moves to the epoch
   drain, so the flush instructions are elided entirely (counted in
   [persist_elided] — this is the epoch model's cycle-savings story).
   Under the eager model the charge is unchanged. *)
let writer_flush rt t (_ : Ptr.t) =
  if Runtime.persist_relaxed rt then
    t.persist_elided <- t.persist_elided + 1
  else begin
    Runtime.instr rt flush_instrs;
    t.writer_flushes <- t.writer_flushes + 1
  end

let writer_end rt t (p : Ptr.t) =
  Runtime.instr rt mark_instrs;
  match count t p - 1 with
  | 0 -> Hashtbl.remove t.counts p
  | n when n > 0 -> Hashtbl.replace t.counts p n
  | _ -> invalid_arg "Flit.writer_end: unbalanced"

let reader_sync rt t (p : Ptr.t) =
  Runtime.instr rt check_instrs;
  if count t p > 0 then begin
    if Runtime.persist_relaxed rt then
      t.persist_elided <- t.persist_elided + 1
    else begin
      Runtime.instr rt flush_instrs;
      t.issued <- t.issued + 1
    end
  end
  else t.elided <- t.elided + 1

let pending t = Hashtbl.length t.counts
let writer_flushes t = t.writer_flushes
let issued t = t.issued
let elided t = t.elided
let persist_elided t = t.persist_elided
