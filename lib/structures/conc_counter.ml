(* A durably-linearizable concurrent counter for the multi-core
   machine: one persistent 8-byte cell per core, counter value = sum of
   cells.  Each core increments only its own cell, so the single-word
   cell store is the operation's durability point — a crash at any
   enumerated persistence event leaves the recovered value between the
   completed and the invoked increment counts (the crash-resilient
   object criterion).

   FliT marking: a writer marks its cell around the update + flush; a
   reader summing the cells syncs each cell through the table, eliding
   the flush whenever no writer is in flight on it.  The cells of
   different cores share cache lines (they are adjacent words), so a
   contended run also exercises coherence: every cell store shoots the
   line out of the other cores' private L1s. *)

module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Ptr = Nvml_core.Ptr

let s_hdr = Site.make "conc.ctr.header"
let s_cell = Site.make "conc.ctr.cell"

(* Header layout (byte offsets). *)
let h_cells = 0 (* word: number of cells *)
let h_base = 8 (* cells start here, one word per core *)

type t = { header : Ptr.t; cells : int; flit : Flit.t }
type handle = { rt : Runtime.t; shared : t; core : int }

let create rt region ~cells =
  if cells < 1 then invalid_arg "Conc_counter.create: cells must be >= 1";
  let header = Runtime.alloc_in rt region (h_base + (8 * cells)) in
  Runtime.store_word rt ~site:s_hdr header ~off:h_cells (Int64.of_int cells);
  for i = 0 to cells - 1 do
    Runtime.store_word rt ~site:s_cell header ~off:(h_base + (8 * i)) 0L
  done;
  { header; cells; flit = Flit.create () }

let attach rt header =
  let cells =
    Int64.to_int (Runtime.load_word rt ~site:s_hdr header ~off:h_cells)
  in
  { header; cells; flit = Flit.create () }

let header t = t.header
let flit t = t.flit
let cells t = t.cells

let handle shared rt ~core =
  if core < 0 || core >= shared.cells then
    invalid_arg "Conc_counter.handle: core out of range";
  { rt; shared; core }

let cell_off core = h_base + (8 * core)
let cell_ptr shared core = Ptr.add shared.header (Int64.of_int (cell_off core))

(* Increment this core's cell.  The cell store is the durability
   point; the FliT mark brackets the update + flush. *)
let incr { rt; shared; core } delta =
  let cell = cell_ptr shared core in
  Flit.writer_begin rt shared.flit cell;
  let off = cell_off core in
  let v = Runtime.load_word rt ~site:s_cell shared.header ~off in
  Runtime.store_word rt ~site:s_cell shared.header ~off (Int64.add v delta);
  Flit.writer_flush rt shared.flit cell;
  Flit.writer_end rt shared.flit cell

(* Sum the cells, syncing each through the FliT table (flush issued
   only when a writer is in flight on that cell). *)
let read { rt; shared; core = _ } =
  let sum = ref 0L in
  for i = 0 to shared.cells - 1 do
    Flit.reader_sync rt shared.flit (cell_ptr shared i);
    sum :=
      Int64.add !sum
        (Runtime.load_word rt ~site:s_cell shared.header ~off:(cell_off i))
  done;
  !sum

(* The value as it would be recovered, with every cell read through
   [read] (byte offset within the header object -> raw word).  The
   contract oracle passes a durable-value reader here to predict the
   exact post-crash counter under a buffered persistency model. *)
let value_via ~cells read =
  let sum = ref 0L in
  for i = 0 to cells - 1 do
    sum := Int64.add !sum (read (cell_off i))
  done;
  !sum

(* Recovery-side read: the value as found after a crash (no FliT
   traffic — the table died with the process). *)
let recovered_value rt (t : t) =
  let sum = ref 0L in
  for i = 0 to t.cells - 1 do
    sum :=
      Int64.add !sum
        (Runtime.load_word rt ~site:s_cell t.header ~off:(cell_off i))
  done;
  !sum
