(** Structure content snapshots: the ordered (key, value) image of a
    map, as visited by its [iter].  Used by the fault-injection checker
    to compare a recovered structure against the pre- and
    post-transaction images recorded on the reference run. *)

type t = (int64 * int64) list

val capture : ((key:int64 -> value:int64 -> unit) -> unit) -> t
(** [capture (fun f -> M.iter m f)] — the entries in iteration order. *)

val size : t -> int
val equal : t -> t -> bool

val diff_summary : t -> t -> string option
(** Human-readable first divergence ([None] when equal). *)

val pp : t Fmt.t
