(* The canonical contended workload over the multi-core machine, shared
   by the fault-injection engine, the model checker, the bench
   `concurrent` experiment and `nvml kv --cores`: every core hammers
   one shared {!Conc_counter} and one shared {!Conc_list}, with
   periodic reads so the FliT table sees both in-flight and quiescent
   objects (issued *and* elided flushes).

   Per-core op [j]: increment the counter, then publish key
   [(core+1) << 32 | j] into list slot [core * ops_per_core + j].  Both
   sub-operations are bracketed by the [mark] callback — the
   fault-injection engine uses it to know, at every persistence event,
   exactly which operations were invoked and which had completed. *)

module Runtime = Nvml_runtime.Runtime
module Cluster = Nvml_runtime.Cluster

type phase = Ctr_invoke | Ctr_done | List_invoke | List_done

type setup = {
  cluster : Cluster.t;
  counter : Conc_counter.t;
  list : Conc_list.t;
  cores : int;
  ops_per_core : int;
  read_every : int;
}

let key ~core ~op =
  Int64.logor (Int64.shift_left (Int64.of_int (core + 1)) 32) (Int64.of_int op)

let decode_key k =
  (Int64.to_int (Int64.shift_right_logical k 32) - 1, Int64.to_int (Int64.logand k 0xFFFFFFFFL))

(* Build the structures on [primary] (outside the scheduler) and the
   cluster around it.  The caller owns pool/root management. *)
let setup ?(sched_seed = 1) ?(read_every = 4) ~cores ~ops_per_core primary
    ~pool =
  let region = Runtime.Pool_region pool in
  let counter = Conc_counter.create primary region ~cells:cores in
  let list = Conc_list.create primary region ~capacity:(cores * ops_per_core) in
  let cluster = Cluster.create ~seed:sched_seed ~cores primary in
  { cluster; counter; list; cores; ops_per_core; read_every }

let no_mark ~core:_ ~op:_ _ = ()

(* Run the interleaved phase.  Deterministic: a pure function of the
   setup parameters and the scheduler seed. *)
let run ?(mark = no_mark) s =
  let body core =
    let rt = Cluster.rt s.cluster core in
    let ch = Conc_counter.handle s.counter rt ~core in
    let lh = Conc_list.handle s.list rt in
    for j = 0 to s.ops_per_core - 1 do
      mark ~core ~op:j Ctr_invoke;
      Conc_counter.incr ch 1L;
      mark ~core ~op:j Ctr_done;
      mark ~core ~op:j List_invoke;
      Conc_list.insert lh ~slot:((core * s.ops_per_core) + j) ~key:(key ~core ~op:j);
      mark ~core ~op:j List_done;
      (* End of one application-level operation on this core: under an
         epoch model every interval-th boundary drains this core's
         epoch through the shared buffer. *)
      Runtime.persist_op_boundary rt;
      if (j + 1) mod s.read_every = 0 then ignore (Conc_counter.read ch);
      if (j + 1) mod (s.read_every * 4) = 0 then
        ignore (Conc_list.mem lh (key ~core ~op:j))
    done
  in
  Cluster.run s.cluster (Array.init s.cores (fun _ -> body))
