(** FliT-style per-object flush marking: a volatile table of in-flight
    writer counts that lets readers elide flushes on quiescent objects.

    Writer protocol: {!writer_begin}, persistent writes,
    {!writer_flush}, {!writer_end}.  Reader protocol: {!reader_sync}
    before acting on the object — issues a flush only when a writer is
    in flight, elides it otherwise.  The table vanishes on crash, which
    is sound: a zero count only elides flushes a writer already
    performed.

    The counter updates model hardware atomics (no µ-event between load
    and store, so the multi-core scheduler cannot split them). *)

module Runtime = Nvml_runtime.Runtime
module Ptr = Nvml_core.Ptr

type t

val create : unit -> t
val writer_begin : Runtime.t -> t -> Ptr.t -> unit
val writer_flush : Runtime.t -> t -> Ptr.t -> unit
val writer_end : Runtime.t -> t -> Ptr.t -> unit

val reader_sync : Runtime.t -> t -> Ptr.t -> unit
(** Make the object durable from the reader's side: flush if a writer
    is in flight, elide otherwise. *)

val count : t -> Ptr.t -> int
(** In-flight writers currently marked on the object. *)

val pending : t -> int
(** Objects with a non-zero count (0 at quiescence). *)

val writer_flushes : t -> int
val issued : t -> int
val elided : t -> int

val persist_elided : t -> int
(** Flushes absorbed by a relaxed persistency model
    ([Runtime.persist_relaxed]): durability moved to the epoch drain,
    so neither the writer- nor the reader-side flush instructions were
    charged. *)
