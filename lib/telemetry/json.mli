(** A minimal JSON tree — emission for the stats/trace dumps, parsing
    for the schema checks.  Zero dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
val to_string : t -> string
val to_channel : out_channel -> t -> unit

val of_string : string -> (t, string) result
(** Parse a complete JSON document (ASCII; [\u] escapes above 127
    degrade to ['?']). *)

val member : string -> t -> t option
val path : string list -> t -> t option
(** [path ["a"; "b"] t] follows nested object members. *)
