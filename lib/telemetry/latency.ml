(* HDR-style log-bucketed latency recorder.

   Slot layout: values 0 .. 2^p - 1 (p = precision_bits) map to slot v
   — exact, width-1 slots.  A value v >= 2^p with k = floor(log2 v)
   maps to slot

     2^p * (k - p) + (v lsr (k - p))

   where [v lsr (k - p)] is in [2^p, 2^(p+1)), so each power-of-two
   range [2^k, 2^(k+1)) is split into 2^p sub-buckets of width
   2^(k-p).  Reporting a slot's upper bound therefore overestimates any
   value in the slot by less than 2^(k-p) / 2^k = 2^-p — the
   documented relative error bound.  The slot index is monotone in v,
   so rank order is preserved and percentile extraction is a cumulative
   walk.

   Everything is plain mutable ints plus one preallocated int array:
   [record] allocates nothing. *)

let precision_bits = 5
let sub_count = 1 lsl precision_bits
let rel_error_bound = 1.0 /. float_of_int sub_count

(* Largest major bucket: OCaml ints are 63-bit, floor(log2 max_int) = 61. *)
let max_log2 = 61
let num_slots = sub_count * (max_log2 - precision_bits + 1) + sub_count

let[@inline] msb v =
  (* floor(log2 v) for v >= 1, by halving — allocation-free. *)
  let k = ref 0 and v = ref v in
  while !v > 1 do
    incr k;
    v := !v lsr 1
  done;
  !k

let slot_of v =
  if v < sub_count then if v < 0 then 0 else v
  else
    let k = msb v in
    (sub_count * (k - precision_bits)) + (v lsr (k - precision_bits))

(* Inverse: the largest value mapping to slot [s].  Slots below
   2 * sub_count are width-1 (slot s holds exactly value s). *)
let slot_upper_bound s =
  if s < 2 * sub_count then s
  else
    let k = (s / sub_count) + precision_bits - 1 in
    let m = (s mod sub_count) + sub_count in
    ((m + 1) lsl (k - precision_bits)) - 1

type t = {
  mutable count : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
  slots : int array;
}

let create () =
  { count = 0; sum = 0; vmin = max_int; vmax = 0; slots = Array.make num_slots 0 }

let record t v =
  let v = if v < 0 then 0 else v in
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  let s = slot_of v in
  t.slots.(s) <- t.slots.(s) + 1

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.vmin
let max_value t = if t.count = 0 then 0 else t.vmax

let mean t =
  if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let percentile t q =
  if t.count = 0 then 0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int t.count)) in
    let rank = if rank < 1 then 1 else if rank > t.count then t.count else rank in
    let cum = ref 0 and s = ref 0 and found = ref (-1) in
    while !found < 0 && !s < num_slots do
      cum := !cum + t.slots.(!s);
      if !cum >= rank then found := !s;
      incr s
    done;
    let ub = slot_upper_bound (if !found < 0 then num_slots - 1 else !found) in
    if ub > t.vmax then t.vmax else ub
  end

let merge_into ~dst src =
  if dst == src then invalid_arg "Latency.merge_into: src is dst";
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum + src.sum;
  if src.vmin < dst.vmin then dst.vmin <- src.vmin;
  if src.vmax > dst.vmax then dst.vmax <- src.vmax;
  Array.iteri
    (fun i n -> if n <> 0 then dst.slots.(i) <- dst.slots.(i) + n)
    src.slots

let copy t =
  {
    count = t.count;
    sum = t.sum;
    vmin = t.vmin;
    vmax = t.vmax;
    slots = Array.copy t.slots;
  }

let reset t =
  t.count <- 0;
  t.sum <- 0;
  t.vmin <- max_int;
  t.vmax <- 0;
  Array.fill t.slots 0 num_slots 0

type summary = {
  count : int;
  sum : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
  max : int;
}

let summary (t : t) : summary =
  {
    count = t.count;
    sum = t.sum;
    mean = mean t;
    p50 = percentile t 0.50;
    p90 = percentile t 0.90;
    p99 = percentile t 0.99;
    p999 = percentile t 0.999;
    max = max_value t;
  }

let summary_json t =
  let s = summary t in
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("sum", Json.Int s.sum);
      ("mean", Json.Float s.mean);
      ("p50", Json.Int s.p50);
      ("p90", Json.Int s.p90);
      ("p99", Json.Int s.p99);
      ("p999", Json.Int s.p999);
      ("max", Json.Int s.max);
    ]
