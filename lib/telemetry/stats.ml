(* The one hit/miss statistics record shared by every cache-like
   structure in the simulator (data caches, TLBs, POLB, VALB, the
   Vspace translation cache).  Before this module each structure kept
   its own pair of mutable counters with slightly different accessors;
   normalizing them gives the telemetry layer a single shape to
   publish. *)

module Hit_miss = struct
  type t = { mutable hits : int; mutable misses : int }

  let create () = { hits = 0; misses = 0 }
  let hit t = t.hits <- t.hits + 1
  let miss t = t.misses <- t.misses + 1
  let hits t = t.hits
  let misses t = t.misses
  let accesses t = t.hits + t.misses

  let hit_rate t =
    let total = accesses t in
    if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

  let reset t =
    t.hits <- 0;
    t.misses <- 0

  let add ~into:(a : t) (b : t) =
    a.hits <- a.hits + b.hits;
    a.misses <- a.misses + b.misses
end

(* The uniform statistics surface a cache-like component exposes; every
   hit/miss structure in [nvml_arch] and [nvml_simmem] satisfies it. *)
module type HIT_MISS_SOURCE = sig
  type t

  val hits : t -> int
  val misses : t -> int
  val accesses : t -> int
  val hit_rate : t -> float
  val reset_stats : t -> unit
end
