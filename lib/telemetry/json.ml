(* A minimal JSON tree: just enough to emit the stats/trace files and to
   parse them back in the schema checks.  Zero dependencies, so every
   layer of the simulator can use it. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- emission ----------------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Floats print as %.6g, with a trailing ".0" forced onto integral
   values so they read back as floats. *)
let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.6g" x

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 1024 in
  emit buf t;
  Buffer.contents buf

let to_channel oc t = output_string oc (to_string t)

(* --- parsing ------------------------------------------------------------- *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    && (match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> error c (Printf.sprintf "expected '%c'" ch)

let parse_literal c word value =
  if
    c.pos + String.length word <= String.length c.s
    && String.sub c.s c.pos (String.length word) = word
  then begin
    c.pos <- c.pos + String.length word;
    value
  end
  else error c ("expected " ^ word)

let parse_string_raw c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.s then error c "unterminated string";
    match c.s.[c.pos] with
    | '"' -> c.pos <- c.pos + 1
    | '\\' ->
        c.pos <- c.pos + 1;
        (if c.pos >= String.length c.s then error c "unterminated escape";
         match c.s.[c.pos] with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
             if c.pos + 4 >= String.length c.s then error c "short \\u escape";
             let hex = String.sub c.s (c.pos + 1) 4 in
             (match int_of_string_opt ("0x" ^ hex) with
             | Some n when n < 128 -> Buffer.add_char buf (Char.chr n)
             | Some _ -> Buffer.add_char buf '?' (* non-ASCII: placeholder *)
             | None -> error c "bad \\u escape");
             c.pos <- c.pos + 4
         | _ -> error c "bad escape");
        c.pos <- c.pos + 1;
        go ()
    | ch ->
        Buffer.add_char buf ch;
        c.pos <- c.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.s && is_num_char c.s.[c.pos] do
    c.pos <- c.pos + 1
  done;
  let tok = String.sub c.s start (c.pos - start) in
  match int_of_string_opt tok with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt tok with
      | Some x -> Float x
      | None -> error c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '"' -> String (parse_string_raw c)
  | Some '{' ->
      expect c '{';
      skip_ws c;
      if peek c = Some '}' then begin
        c.pos <- c.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let k = parse_string_raw c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> error c "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      expect c '[';
      skip_ws c;
      if peek c = Some ']' then begin
        c.pos <- c.pos + 1;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (v :: acc)
          | _ -> error c "expected ',' or ']'"
        in
        List (elements [])
      end
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error "trailing garbage"
      else Ok v
  | exception Parse_error m -> Error m

(* --- accessors ------------------------------------------------------------ *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

(* Dotted-path member lookup into nested objects. *)
let rec path keys t =
  match keys with
  | [] -> Some t
  | k :: rest -> ( match member k t with Some v -> path rest v | None -> None)
