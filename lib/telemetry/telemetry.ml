(* The cross-layer telemetry subsystem: typed counters and histograms
   registered by name, a bounded ring-buffer event tracer with spans,
   and per-domain sinks that the [nvml_exec] pool merges
   deterministically at join — so [--jobs N] telemetry equals
   [--jobs 1] telemetry.

   Design rules:

   - Metric *names* live in one process-wide registry (mutex-guarded;
     structures register their metrics at module-initialization time,
     worker domains may mint more while running).  A registered id is
     stable for the life of the process.
   - Metric *values* live in sinks.  Each domain has a current sink
     (domain-local state); [Pool.run] gives every task a fresh sink and
     merges them into the submitter's sink in submission order, which
     makes parallel telemetry bit-identical to sequential telemetry.
   - Everything is gated on the process-wide [enabled] flag.  Callers
     on simulator hot paths write
     [if Telemetry.enabled () then Telemetry.incr c] — one atomic load
     when telemetry is off, which is the shipped default.  The timing
     model never reads telemetry, so enabling it cannot change a single
     simulated cycle.
   - Trace events carry no wall-clock timestamps: ordering is logical
     (position in the merged stream), so traces are deterministic too.
     Cycle attribution comes from the simulated counters, which are
     deterministic by construction. *)

(* --- enable flag ---------------------------------------------------------- *)

let flag = Atomic.make false

let enabled () = Atomic.get flag [@@inline]
let set_enabled b = Atomic.set flag b

let () =
  match Sys.getenv_opt "NVML_TELEMETRY" with
  | Some ("1" | "true" | "on" | "yes") -> set_enabled true
  | _ -> ()

(* --- registry -------------------------------------------------------------- *)

type kind = Counter | Histo | Lat

type counter = int
type histo = int
type latency = int

let registry_lock = Mutex.create ()
let ids : (string, int) Hashtbl.t = Hashtbl.create 128
let names : string array ref = ref (Array.make 0 "")
let kinds : kind array ref = ref (Array.make 0 Counter)
let registered = ref 0

let intern kind name =
  Mutex.lock registry_lock;
  let id =
    match Hashtbl.find_opt ids name with
    | Some id ->
        if !kinds.(id) <> kind then begin
          Mutex.unlock registry_lock;
          invalid_arg
            (Printf.sprintf "Telemetry: %S registered with a different kind"
               name)
        end;
        id
    | None ->
        let id = !registered in
        if id >= Array.length !names then begin
          let cap = max 64 (2 * Array.length !names) in
          let ns = Array.make cap "" and ks = Array.make cap Counter in
          Array.blit !names 0 ns 0 id;
          Array.blit !kinds 0 ks 0 id;
          names := ns;
          kinds := ks
        end;
        !names.(id) <- name;
        !kinds.(id) <- kind;
        incr registered;
        Hashtbl.replace ids name id;
        id
  in
  Mutex.unlock registry_lock;
  id

let counter name = intern Counter name
let histo name = intern Histo name
let latency name = intern Lat name

(* A stable snapshot of (id, name, kind) rows for dump functions. *)
let registry_rows () =
  Mutex.lock registry_lock;
  let n = !registered in
  let rows = List.init n (fun id -> (id, !names.(id), !kinds.(id))) in
  Mutex.unlock registry_lock;
  rows

(* --- histograms ------------------------------------------------------------ *)

(* Power-of-two buckets: bucket [i] counts observations whose value [v]
   satisfies [2^(i-1) < v <= 2^i] (bucket 0 holds v <= 1, including
   zero and negatives). *)
let histo_buckets = 63

type histo_data = {
  mutable count : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
  buckets : int array;
}

let fresh_histo () =
  { count = 0; sum = 0; vmin = max_int; vmax = min_int;
    buckets = Array.make histo_buckets 0 }

let bucket_of v =
  if v <= 1 then 0
  else
    let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v lsr 1) in
    let b = log2 0 (v - 1) + 1 in
    min b (histo_buckets - 1)

let histo_observe h v =
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let histo_merge ~into:(a : histo_data) (b : histo_data) =
  a.count <- a.count + b.count;
  a.sum <- a.sum + b.sum;
  if b.vmin < a.vmin then a.vmin <- b.vmin;
  if b.vmax > a.vmax then a.vmax <- b.vmax;
  Array.iteri (fun i n -> a.buckets.(i) <- a.buckets.(i) + n) b.buckets

(* --- trace events ----------------------------------------------------------- *)

type phase = Begin | End | Instant

type event = { ename : string; phase : phase; args : (string * int) list }

let default_trace_capacity = ref 8192
let set_trace_capacity n = default_trace_capacity := max 0 n

(* --- sinks -------------------------------------------------------------------- *)

type sink = {
  mutable counters : int array; (* indexed by registry id *)
  mutable histos : histo_data option array;
  mutable lats : Latency.t option array;
  ring : event option array; (* bounded tracer; oldest overwritten *)
  mutable ring_start : int; (* index of the oldest event *)
  mutable ring_len : int;
  mutable events_total : int; (* all events ever offered to the ring *)
}

let fresh_sink () =
  {
    counters = Array.make 0 0;
    histos = Array.make 0 None;
    lats = Array.make 0 None;
    ring = Array.make !default_trace_capacity None;
    ring_start = 0;
    ring_len = 0;
    events_total = 0;
  }

(* The current sink of this domain.  Workers get a fresh one; the pool
   swaps in a per-task sink around each task it runs. *)
let sink_key = Domain.DLS.new_key fresh_sink

let current_sink () = Domain.DLS.get sink_key

let run_with_sink s f =
  let saved = Domain.DLS.get sink_key in
  Domain.DLS.set sink_key s;
  Fun.protect ~finally:(fun () -> Domain.DLS.set sink_key saved) f

let ensure_counters s id =
  if id >= Array.length s.counters then begin
    let cap = max 64 (max (id + 1) (2 * Array.length s.counters)) in
    let a = Array.make cap 0 in
    Array.blit s.counters 0 a 0 (Array.length s.counters);
    s.counters <- a
  end

let ensure_histo s id =
  if id >= Array.length s.histos then begin
    let cap = max 64 (max (id + 1) (2 * Array.length s.histos)) in
    let a = Array.make cap None in
    Array.blit s.histos 0 a 0 (Array.length s.histos);
    s.histos <- a
  end;
  match s.histos.(id) with
  | Some h -> h
  | None ->
      let h = fresh_histo () in
      s.histos.(id) <- Some h;
      h

let ensure_lat s id =
  if id >= Array.length s.lats then begin
    let cap = max 64 (max (id + 1) (2 * Array.length s.lats)) in
    let a = Array.make cap None in
    Array.blit s.lats 0 a 0 (Array.length s.lats);
    s.lats <- a
  end;
  match s.lats.(id) with
  | Some l -> l
  | None ->
      let l = Latency.create () in
      s.lats.(id) <- Some l;
      l

(* --- recording --------------------------------------------------------------- *)

let add c n =
  if enabled () then begin
    let s = current_sink () in
    ensure_counters s c;
    s.counters.(c) <- s.counters.(c) + n
  end

let incr c = add c 1

let observe h v =
  if enabled () then histo_observe (ensure_histo (current_sink ()) h) v

let record l v =
  if enabled () then Latency.record (ensure_lat (current_sink ()) l) v

let push_event s e =
  s.events_total <- s.events_total + 1;
  let cap = Array.length s.ring in
  if cap > 0 then
    if s.ring_len < cap then begin
      s.ring.((s.ring_start + s.ring_len) mod cap) <- Some e;
      s.ring_len <- s.ring_len + 1
    end
    else begin
      (* Full: overwrite the oldest. *)
      s.ring.(s.ring_start) <- Some e;
      s.ring_start <- (s.ring_start + 1) mod cap
    end

let event ?(args = []) ename =
  if enabled () then
    push_event (current_sink ()) { ename; phase = Instant; args }

let span ?(args = []) ename f =
  if not (enabled ()) then f ()
  else begin
    push_event (current_sink ()) { ename; phase = Begin; args };
    Fun.protect
      ~finally:(fun () ->
        push_event (current_sink ()) { ename; phase = End; args = [] })
      f
  end

(* --- merge -------------------------------------------------------------------- *)

(* Merge [src] into [dst], appending trace events after [dst]'s.
   Applied in submission order at pool join, this reproduces the
   sequential stream: counters and histograms commute, and the bounded
   ring drops exactly the events a sequential run would also have
   dropped (an overwritten event is always older than the [capacity]
   events that follow it in the same sink). *)
let merge_into ~dst src =
  if dst == src then invalid_arg "Telemetry.merge_into: src is dst";
  Array.iteri
    (fun id n ->
      if n <> 0 then begin
        ensure_counters dst id;
        dst.counters.(id) <- dst.counters.(id) + n
      end)
    src.counters;
  Array.iteri
    (fun id h ->
      match h with
      | None -> ()
      | Some h -> histo_merge ~into:(ensure_histo dst id) h)
    src.histos;
  Array.iteri
    (fun id l ->
      match l with
      | None -> ()
      | Some l -> Latency.merge_into ~dst:(ensure_lat dst id) l)
    src.lats;
  let dropped_before = src.events_total - src.ring_len in
  for i = 0 to src.ring_len - 1 do
    match src.ring.((src.ring_start + i) mod Array.length src.ring) with
    | Some e -> push_event dst e
    | None -> ()
  done;
  dst.events_total <- dst.events_total + dropped_before

(* --- reading ------------------------------------------------------------------- *)

let value c =
  let s = current_sink () in
  if c < Array.length s.counters then s.counters.(c) else 0

type histo_stats = {
  count : int;
  sum : int;
  min : int;
  max : int;
  mean : float;
  log2_buckets : (int * int) list; (* (bucket upper bound, count), non-empty only *)
}

let stats_of_histo (h : histo_data) =
  {
    count = h.count;
    sum = h.sum;
    min = (if h.count = 0 then 0 else h.vmin);
    max = (if h.count = 0 then 0 else h.vmax);
    mean =
      (if h.count = 0 then 0.0 else float_of_int h.sum /. float_of_int h.count);
    log2_buckets =
      List.filteri (fun _ (_, n) -> n > 0)
        (List.init histo_buckets (fun i ->
             ((if i >= 62 then max_int else 1 lsl i), h.buckets.(i))));
  }

(* Sorted by name, every registered counter included (zeros too), so
   the dump schema is independent of execution order. *)
let counters_snapshot () =
  let s = current_sink () in
  registry_rows ()
  |> List.filter_map (fun (id, name, kind) ->
         match kind with
         | Counter ->
             Some
               (name, if id < Array.length s.counters then s.counters.(id) else 0)
         | Histo | Lat -> None)
  |> List.sort compare

let histos_snapshot () =
  let s = current_sink () in
  registry_rows ()
  |> List.filter_map (fun (id, name, kind) ->
         match kind with
         | Histo when id < Array.length s.histos -> (
             match s.histos.(id) with
             | Some h -> Some (name, stats_of_histo h)
             | None -> None)
         | _ -> None)
  |> List.sort compare

let lats_snapshot () =
  let s = current_sink () in
  registry_rows ()
  |> List.filter_map (fun (id, name, kind) ->
         match kind with
         | Lat when id < Array.length s.lats -> (
             match s.lats.(id) with
             | Some l when Latency.count l > 0 -> Some (name, l)
             | _ -> None)
         | _ -> None)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let events_snapshot () =
  let s = current_sink () in
  List.init s.ring_len (fun i ->
      match s.ring.((s.ring_start + i) mod Array.length s.ring) with
      | Some e -> e
      | None -> assert false)

let events_total () = (current_sink ()).events_total
let events_dropped () =
  let s = current_sink () in
  s.events_total - s.ring_len

let reset_current () =
  let s = current_sink () in
  Array.fill s.counters 0 (Array.length s.counters) 0;
  Array.fill s.histos 0 (Array.length s.histos) None;
  Array.fill s.lats 0 (Array.length s.lats) None;
  Array.fill s.ring 0 (Array.length s.ring) None;
  s.ring_start <- 0;
  s.ring_len <- 0;
  s.events_total <- 0

(* --- dumps ---------------------------------------------------------------------- *)

let stats_json ~derived () =
  let counters =
    List.map (fun (name, v) -> (name, Json.Int v)) (counters_snapshot ())
  in
  let histos =
    List.map
      (fun (name, h) ->
        ( name,
          Json.Obj
            [
              ("count", Json.Int h.count);
              ("sum", Json.Int h.sum);
              ("min", Json.Int h.min);
              ("max", Json.Int h.max);
              ("mean", Json.Float h.mean);
              ( "log2_buckets",
                Json.List
                  (List.map
                     (fun (ub, n) -> Json.List [ Json.Int ub; Json.Int n ])
                     h.log2_buckets) );
            ] ))
      (histos_snapshot ())
  in
  let lats =
    List.map (fun (name, l) -> (name, Latency.summary_json l)) (lats_snapshot ())
  in
  Json.Obj
    [
      ("schema", Json.Int 1);
      ( "derived",
        Json.Obj
          (List.map (fun (name, v) -> (name, Json.Float v)) derived) );
      ("counters", Json.Obj counters);
      ("histograms", Json.Obj histos);
      ("latencies", Json.Obj lats);
      ("events_total", Json.Int (events_total ()));
      ("events_dropped", Json.Int (events_dropped ()));
    ]

let write_stats_json ?(derived = []) oc =
  Json.to_channel oc (stats_json ~derived ());
  output_char oc '\n'

(* Chrome trace_event format (JSON Object Format), loadable in
   chrome://tracing or Perfetto.  Timestamps are logical: the position
   of the event in the merged stream, in "microseconds". *)
let write_chrome_trace oc =
  let events = events_snapshot () in
  let rows =
    List.mapi
      (fun i e ->
        let ph =
          match e.phase with Begin -> "B" | End -> "E" | Instant -> "i"
        in
        Json.Obj
          ([
             ("name", Json.String e.ename);
             ("ph", Json.String ph);
             ("pid", Json.Int 0);
             ("tid", Json.Int 0);
             ("ts", Json.Int i);
           ]
          @ (match e.phase with
            | Instant -> [ ("s", Json.String "t") ]
            | Begin | End -> [])
          @
          match e.args with
          | [] -> []
          | args ->
              [
                ( "args",
                  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) args) );
              ]))
      events
  in
  Json.to_channel oc
    (Json.Obj
       [
         ("traceEvents", Json.List rows);
         ("displayTimeUnit", Json.String "ms");
       ]);
  output_char oc '\n'
