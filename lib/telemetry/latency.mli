(** HDR-style log-bucketed latency recorder for the simulated-cycle
    domain.

    Values are bucketed by a power-of-two major bucket plus
    {!precision_bits} sub-bucket bits: a value [v >= 2^precision_bits]
    with [k = floor(log2 v)] lands in a sub-bucket of width
    [2^(k - precision_bits)], so the reported percentile (the
    sub-bucket's upper bound) overestimates the exact rank value by at
    most a factor of [1 + 2^-precision_bits] — the documented relative
    error bound {!rel_error_bound}.  Values below [2^precision_bits]
    are recorded exactly.  [min], [max], [count] and [sum] are always
    exact.

    The slot array is preallocated at {!create}, so {!record} performs
    no allocation — safe on simulator hot paths.  {!merge_into} adds
    cell counts and is commutative and associative, so merging per-task
    recorders in any order yields the same state as recording the same
    multiset sequentially: [--jobs N] output is bit-identical to
    [--jobs 1]. *)

type t

val precision_bits : int
(** Sub-bucket precision (5): 32 sub-buckets per power of two. *)

val rel_error_bound : float
(** [2^-precision_bits] = 1/32 = 3.125%: percentiles never
    underestimate and overestimate by strictly less than this fraction
    of the exact value. *)

val create : unit -> t

val record : t -> int -> unit
(** Record one observation (negative values clamp to 0).
    Allocation-free. *)

val count : t -> int
val sum : t -> int

val min_value : t -> int
(** Exact smallest recorded value; 0 when empty. *)

val max_value : t -> int
(** Exact largest recorded value; 0 when empty. *)

val mean : t -> float

val percentile : t -> float -> int
(** [percentile t q] for [q] in [0, 1]: an upper bound on the value at
    rank [ceil (q * count)], within {!rel_error_bound} of the exact
    rank value and clamped to [max_value t].  0 when empty. *)

val merge_into : dst:t -> t -> unit
(** Add [src]'s cells into [dst].  Commutative, associative. *)

val copy : t -> t
val reset : t -> unit

type summary = {
  count : int;
  sum : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
  max : int;
}

val summary : t -> summary

val summary_json : t -> Json.t
(** [{"count": ..., "sum": ..., "mean": ..., "p50": ..., "p90": ...,
    "p99": ..., "p999": ..., "max": ...}] *)

(**/**)

val slot_of : int -> int
(** Exposed for tests: the slot index a value maps to. *)

val slot_upper_bound : int -> int
(** Exposed for tests: the largest value mapping to a slot. *)
