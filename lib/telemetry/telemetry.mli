(** Cross-layer telemetry: named counters and histograms, a bounded
    ring-buffer event tracer with spans, and per-domain sinks that the
    execution pool merges deterministically at join.

    All recording is gated on a process-wide flag (off by default, also
    settable via the [NVML_TELEMETRY] environment variable).  Hot-path
    callers write [if Telemetry.enabled () then Telemetry.incr c]; when
    the flag is off the cost is one atomic load.  The timing model never
    reads telemetry, so enabling it cannot change simulated cycles. *)

(** {1 Enable flag} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Registry}

    Metrics are registered by name in a process-wide, mutex-guarded
    registry.  Registering the same name twice returns the same handle;
    registering a name as both a counter and a histogram raises
    [Invalid_argument]. *)

type counter
type histo
type latency

val counter : string -> counter
val histo : string -> histo

val latency : string -> latency
(** A named HDR-style latency recorder (see {!Latency}): log-bucketed
    with {!Latency.precision_bits} sub-bucket bits, so percentiles are
    within {!Latency.rel_error_bound} of exact. *)

(** {1 Recording}

    Values accumulate in the calling domain's current {!sink}. *)

val incr : counter -> unit
val add : counter -> int -> unit
val observe : histo -> int -> unit

val record : latency -> int -> unit
(** Record one latency observation; allocation-free once the sink's
    recorder exists (first call per sink allocates it). *)

val event : ?args:(string * int) list -> string -> unit
(** Record an instant event in the bounded trace ring. *)

val span : ?args:(string * int) list -> string -> (unit -> 'a) -> 'a
(** [span name f] brackets [f ()] with begin/end trace events.  The end
    event is recorded even if [f] raises. *)

val set_trace_capacity : int -> unit
(** Ring capacity for subsequently created sinks (default 8192).  When
    full, the oldest events are overwritten. *)

(** {1 Sinks}

    A sink holds counter/histogram values and the trace ring for one
    execution context.  Each domain has a current sink; the pool runs
    every task in a fresh sink and merges them into the submitter's
    sink in submission order, making [--jobs N] output bit-identical to
    [--jobs 1]. *)

type sink

val fresh_sink : unit -> sink
val current_sink : unit -> sink

val run_with_sink : sink -> (unit -> 'a) -> 'a
(** [run_with_sink s f] makes [s] the calling domain's current sink for
    the duration of [f ()], restoring the previous sink afterwards. *)

val merge_into : dst:sink -> sink -> unit
(** Fold [src]'s values into [dst]: counters and histogram cells add;
    trace events append after [dst]'s existing events. *)

(** {1 Reading}

    All snapshots read the calling domain's current sink and are sorted
    by metric name, so their shape does not depend on execution order. *)

val value : counter -> int

type histo_stats = {
  count : int;
  sum : int;
  min : int;
  max : int;
  mean : float;
  log2_buckets : (int * int) list;
      (** [(upper_bound, count)] for non-empty power-of-two buckets:
          bucket with bound [b] counts observations [v] with
          [prev_bound < v <= b]. *)
}

val counters_snapshot : unit -> (string * int) list
(** Every registered counter (zeros included), sorted by name. *)

val histos_snapshot : unit -> (string * histo_stats) list
(** Histograms with at least one observation, sorted by name. *)

val lats_snapshot : unit -> (string * Latency.t) list
(** Latency recorders with at least one observation, sorted by name. *)

type phase = Begin | End | Instant

type event = { ename : string; phase : phase; args : (string * int) list }

val events_snapshot : unit -> event list
(** The events still in the trace ring, oldest first. *)

val events_total : unit -> int
val events_dropped : unit -> int

val reset_current : unit -> unit
(** Zero all values and clear the trace ring of the current sink. *)

(** {1 Dumps} *)

val stats_json : derived:(string * float) list -> unit -> Json.t
(** Stats document: [{"schema": 1, "derived": {...}, "counters": {...},
    "histograms": {...}, "latencies": {...}, ...}].  [derived] carries
    precomputed rates (e.g. ["valb.hit_rate"]); latency entries are
    {!Latency.summary_json} rows. *)

val write_stats_json : ?derived:(string * float) list -> out_channel -> unit

val write_chrome_trace : out_channel -> unit
(** Chrome [trace_event] JSON (load in [chrome://tracing] or Perfetto).
    Timestamps are logical positions in the merged event stream. *)
