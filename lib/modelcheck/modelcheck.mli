(** Component registry and driver for the model-based fuzzer.

    Each registered component pairs the simulated implementation with a
    reference model (see {!Harnesses}); [run] replays seeded op streams
    against a selection of them, optionally across a domain pool, and
    reports per-component results with shrunk counterexamples. *)

type spec = {
  name : string;
  breakable : bool;
      (** the component has a quirk that re-enables a fixed bug, so
          --break self-tests can assert the fuzzer finds it *)
  scale : int;  (** op-cost divisor applied to the requested op count *)
  make : break:bool -> Engine.packed;
}

val specs : unit -> spec list
val names : unit -> string list

exception Unknown_component of string

val select : string list -> spec list
(** Resolve component names; [[]] selects everything and ["structures"]
    expands to every registered container.
    @raise Unknown_component on a name not in {!names}. *)

type entry = { spec_name : string; breakable : bool; result : Engine.result }
type report = { entries : entry list; violations : int }

val run :
  ?pool:Nvml_exec.Pool.t ->
  ?break:bool ->
  ?timing:bool ->
  components:string list ->
  ops:int ->
  seed:int ->
  unit ->
  report
(** Fuzz the selected components with the same [seed].  [break] enables
    each component's quirks (planted bugs) first.  With [pool] the
    components run on the domain pool; results keep submission order, so
    output is identical to the sequential run.  [timing] defaults to
    [false]: model checking compares only functional outputs, so the
    internal runtimes use fast functional simulation; pass [true] to
    run the cycle-accurate core (identical verdicts, slower). *)

val break_run_ok : report -> bool
(** A --break run succeeds iff every breakable component reported a
    violation and no other component did. *)

val pp_report : report Fmt.t
