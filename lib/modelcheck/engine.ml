(* The model-based differential fuzzing engine: seeded op streams,
   step-by-step observational-equivalence checking against a reference
   model, and greedy counterexample shrinking.

   Everything is deterministic in (component, seed, ops): generation
   draws only from a seeded [Random.State] the applies never touch, so
   a reported seed replays bit-identically — including under a parallel
   runner, where each component run is share-nothing. *)

module Telemetry = Nvml_telemetry.Telemetry

exception Violation of string

type 'op harness = {
  component : string;
  gen : Random.State.t -> 'op;
  init : seed:int -> ('op -> unit);
  pp : 'op -> string;
}

type packed = Packed : 'op harness -> packed

type counterexample = {
  step : int;
  message : string;
  trace : string list;
  shrunk_from : int;
}

type result = {
  component : string;
  seed : int;
  ops : int;
  ops_run : int;
  violation : counterexample option;
}

(* fuzz.* telemetry: enough for check_stats to assert the fuzzer really
   ran, and for bench trend lines on violation counts. *)
let c_runs = Telemetry.counter "fuzz.runs"
let c_ops = Telemetry.counter "fuzz.ops"
let c_violations = Telemetry.counter "fuzz.violations"
let c_shrink_replays = Telemetry.counter "fuzz.shrink_replays"

let rng_of ~component ~seed =
  Random.State.make [| 0x6e766d6c; Hashtbl.hash component; seed |]

let message_of = function
  | Violation m -> m
  | e -> "unexpected exception: " ^ Printexc.to_string e

(* Replay [ops] on a fresh instance; the violation message if any. *)
let replay h ~seed ops =
  if Telemetry.enabled () then Telemetry.incr c_shrink_replays;
  let apply = h.init ~seed in
  let rec go = function
    | [] -> None
    | op :: rest -> (
        match apply op with
        | () -> go rest
        | exception e -> Some (message_of e))
  in
  go ops

(* Greedy delta-debugging: repeatedly try to drop chunk-sized windows,
   halving the chunk, under a bounded replay budget.  The result still
   fails (possibly with a different message — any violation counts). *)
let shrink h ~seed ops =
  let budget = ref 256 in
  let still_fails ops =
    !budget > 0
    && (decr budget;
        replay h ~seed ops <> None)
  in
  let rec pass ops chunk =
    if chunk < 1 then ops
    else begin
      let arr = Array.of_list ops in
      let n = Array.length arr in
      let keep = Array.make n true in
      let lo = ref 0 in
      while !lo < n do
        let hi = min n (!lo + chunk) in
        let saved = Array.sub keep !lo (hi - !lo) in
        Array.fill keep !lo (hi - !lo) false;
        let candidate =
          List.filteri (fun i _ -> keep.(i)) (Array.to_list arr)
        in
        if candidate = [] || not (still_fails candidate) then
          Array.blit saved 0 keep !lo (hi - !lo);
        lo := hi
      done;
      let kept = List.filteri (fun i _ -> keep.(i)) ops in
      pass kept (min chunk (List.length kept) / 2)
    end
  in
  let ops = pass ops (max 1 (List.length ops / 2)) in
  (* Final polish: drop single ops. *)
  if List.length ops > 1 then pass ops 1 else ops

let run (Packed h) ~ops ~seed =
  if Telemetry.enabled () then Telemetry.incr c_runs;
  let rng = rng_of ~component:h.component ~seed in
  let apply = h.init ~seed in
  let trace = ref [] in
  let violation = ref None in
  let step = ref 0 in
  while !violation = None && !step < ops do
    let op = h.gen rng in
    trace := op :: !trace;
    (match apply op with
    | () -> ()
    | exception e -> violation := Some (message_of e));
    incr step
  done;
  if Telemetry.enabled () then Telemetry.add c_ops !step;
  let violation =
    match !violation with
    | None -> None
    | Some message ->
        if Telemetry.enabled () then Telemetry.incr c_violations;
        let prefix = List.rev !trace in
        let shrunk = shrink h ~seed prefix in
        Some
          {
            step = !step - 1;
            message;
            trace = List.map h.pp shrunk;
            shrunk_from = List.length prefix;
          }
  in
  { component = h.component; seed; ops; ops_run = !step; violation }

let pp_result ppf r =
  match r.violation with
  | None ->
      Fmt.pf ppf "%-16s seed %-6d %6d ops    ok" r.component r.seed r.ops_run
  | Some v ->
      Fmt.pf ppf "%-16s seed %-6d %6d ops    VIOLATION at step %d@,  %s@,"
        r.component r.seed r.ops_run v.step v.message;
      Fmt.pf ppf "  counterexample (%d ops, shrunk from %d):"
        (List.length v.trace) v.shrunk_from;
      List.iteri (fun i op -> Fmt.pf ppf "@,    %2d. %s" (i + 1) op) v.trace
