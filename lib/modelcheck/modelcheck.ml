(* The component registry and the fuzzing driver behind `nvml fuzz`. *)

module Registry = Nvml_structures.Registry
module Pool = Nvml_exec.Pool
module Runtime = Nvml_runtime.Runtime

type spec = {
  name : string;
  breakable : bool;
      (* has a quirk that re-enables a fixed bug for --break self-tests *)
  scale : int; (* op-cost divisor: heavy harnesses run ops/scale ops *)
  make : break:bool -> Engine.packed;
}

let structure_spec (module M : Nvml_structures.Intf.ORDERED_MAP) =
  {
    name = "structures:" ^ M.name;
    breakable = false;
    scale = 4;
    make = (fun ~break:_ -> Harnesses.Structure_h.harness (module M));
  }

let specs () =
  [
    {
      name = "cache";
      breakable = true;
      scale = 1;
      make = (fun ~break -> Harnesses.Cache_h.harness ~break ());
    };
    {
      name = "valb";
      breakable = true;
      scale = 1;
      make = (fun ~break -> Harnesses.Valb_h.harness ~break ());
    };
    {
      name = "storep";
      breakable = false;
      scale = 1;
      make = (fun ~break:_ -> Harnesses.Storep_h.harness ());
    };
    {
      name = "vatb";
      breakable = false;
      scale = 1;
      make = (fun ~break:_ -> Harnesses.Vatb_h.harness ());
    };
    {
      name = "freelist";
      breakable = false;
      scale = 1;
      make = (fun ~break:_ -> Harnesses.Freelist_h.harness ());
    };
    {
      name = "pmop";
      breakable = false;
      scale = 2;
      make = (fun ~break:_ -> Harnesses.Pmop_h.harness ());
    };
    {
      name = "media";
      breakable = true;
      scale = 4;
      make = (fun ~break -> Harnesses.Media_h.harness ~break ());
    };
  ]
  @ List.map structure_spec Registry.all_maps
  @ [
      {
        name = "semantics";
        breakable = false;
        scale = 16;
        make = (fun ~break:_ -> Harnesses.Semantics_h.harness ());
      };
      {
        name = "zipf";
        breakable = false;
        scale = 1;
        make = (fun ~break:_ -> Harnesses.Zipf_h.harness ());
      };
      {
        (* Schedule enumeration over seeded interleavings of the
           multi-core machine: every op is a complete contended
           episode, so the harness runs few of them. *)
        name = "conc";
        breakable = false;
        scale = 64;
        make = (fun ~break:_ -> Harnesses.Conc_h.harness ());
      };
    ]

let names () = List.map (fun s -> s.name) (specs ())

exception Unknown_component of string

(* "structures" expands to every registered container; [] means all. *)
let select requested =
  let all = specs () in
  match requested with
  | [] -> all
  | req ->
      List.concat_map
        (fun name ->
          if name = "structures" then
            List.filter
              (fun s ->
                String.length s.name > 11
                && String.sub s.name 0 11 = "structures:")
              all
          else
            match List.find_opt (fun s -> s.name = name) all with
            | Some s -> [ s ]
            | None -> raise (Unknown_component name))
        req

type entry = { spec_name : string; breakable : bool; result : Engine.result }
type report = { entries : entry list; violations : int }

let run ?pool ?(break = false) ?(timing = false) ~components ~ops ~seed () =
  (* Model checking only compares functional outputs, so the engines
     default to fast functional simulation; [~timing:true] restores the
     cycle-accurate core (the results are identical either way). *)
  Runtime.with_default_timing timing @@ fun () ->
  let selected = select components in
  let tasks =
    List.map
      (fun s () ->
        let ops = max 1 (ops / s.scale) in
        let result = Engine.run (s.make ~break) ~ops ~seed in
        { spec_name = s.name; breakable = s.breakable; result })
      selected
  in
  let entries =
    match pool with
    | Some p -> Pool.run p tasks
    | None -> List.map (fun t -> t ()) tasks
  in
  let violations =
    List.length
      (List.filter (fun e -> e.result.Engine.violation <> None) entries)
  in
  { entries; violations }

(* A --break run succeeds when the fuzzer finds every planted bug and
   nothing else: each quirk-capable component must report a violation,
   every other component must stay clean. *)
let break_run_ok report =
  List.for_all
    (fun e ->
      let violated = e.result.Engine.violation <> None in
      if e.breakable then violated else not violated)
    report.entries

let pp_report ppf report =
  List.iter
    (fun e -> Fmt.pf ppf "@[<v>%a@]@." Engine.pp_result e.result)
    report.entries;
  let n = List.length report.entries in
  if report.violations = 0 then
    Fmt.pf ppf "fuzz: %d component run%s, no violations@." n
      (if n = 1 then "" else "s")
  else
    Fmt.pf ppf "fuzz: %d component run%s, %d VIOLATION%s@." n
      (if n = 1 then "" else "s")
      report.violations
      (if report.violations = 1 then "" else "S")
