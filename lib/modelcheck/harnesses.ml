(* One harness per simulated component: the real implementation and a
   small, obviously-correct reference model executed side by side on a
   seeded random op stream, with observational equivalence and
   structural invariants checked after every op.

   The models deliberately use the dumbest data representation that can
   express the spec (MRU-first lists, sorted block lists, Stdlib maps):
   they are the executable form of the prose in the corresponding .mli,
   and any divergence — either direction — is a finding. *)

module Cache = Nvml_arch.Cache
module Valb = Nvml_arch.Valb
module Storep = Nvml_arch.Storep_unit
module Btree = Nvml_arch.Range_btree
module Freelist = Nvml_pool.Freelist
module Pmop = Nvml_pool.Pmop
module Scrub = Nvml_pool.Scrub
module Media = Nvml_media.Media
module Mem = Nvml_simmem.Mem
module Ptr = Nvml_core.Ptr
module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Registry = Nvml_structures.Registry
module Intf = Nvml_structures.Intf
module Distribution = Nvml_ycsb.Distribution
module Corpus = Nvml_minic.Corpus
module Interp = Nvml_minic.Interp
module Inference = Nvml_comp.Inference
module Telemetry = Nvml_telemetry.Telemetry

let fail fmt = Fmt.kstr (fun m -> raise (Engine.Violation m)) fmt
let site = Site.make ~static:true "fuzz"

(* --- POLB / set-associative cache ---------------------------------------- *)

(* Model: per set, the resident blocks most-recently-used first. *)
module Cache_h = struct
  type op = Access of int | Probe of int | Invalidate of int | Flush

  let sets = 4
  let ways = 3
  let shift = 4

  let pp = function
    | Access a -> Fmt.str "access 0x%x" a
    | Probe a -> Fmt.str "probe 0x%x" a
    | Invalidate a -> Fmt.str "invalidate 0x%x" a
    | Flush -> "flush"

  let gen rng =
    let addr () = Random.State.int rng (24 lsl shift) in
    match Random.State.int rng 100 with
    | n when n < 70 -> Access (addr ())
    | n when n < 85 -> Probe (addr ())
    | n when n < 97 -> Invalidate (addr ())
    | _ -> Flush

  let check_state c model =
    for s = 0 to sets - 1 do
      let valid =
        List.filter (fun (tag, _) -> tag >= 0) (Cache.ways_of_set c s)
      in
      let by_recency =
        List.sort (fun (_, a) (_, b) -> compare b a) valid |> List.map fst
      in
      if by_recency <> model.(s) then
        fail "cache set %d: LRU order %a, model %a" s
          Fmt.(Dump.list int) by_recency
          Fmt.(Dump.list int) model.(s)
    done

  let harness ~break () =
    Engine.Packed
      {
        Engine.component = "cache";
        gen;
        pp;
        init =
          (fun ~seed:_ ->
            let c = Cache.create ~sets ~ways ~index_shift:shift in
            if break then Cache.enable_quirk c Cache.Stale_invalidate_stamp;
            let model = Array.make sets [] in
            fun op ->
              (match op with
              | Access a ->
                  let block = a lsr shift in
                  let s = block land (sets - 1) in
                  let hit = List.mem block model.(s) in
                  let rest = List.filter (( <> ) block) model.(s) in
                  model.(s) <-
                    block
                    :: (if (not hit) && List.length rest = ways then
                          List.filteri (fun i _ -> i < ways - 1) rest
                        else rest);
                  let sut = Cache.access c a in
                  if sut <> hit then
                    fail "access 0x%x: cache says %b, model says %b" a sut hit
              | Probe a ->
                  let block = a lsr shift in
                  let hit = List.mem block model.(block land (sets - 1)) in
                  let sut = Cache.probe c a in
                  if sut <> hit then
                    fail "probe 0x%x: cache says %b, model says %b" a sut hit
              | Invalidate a ->
                  let block = a lsr shift in
                  let s = block land (sets - 1) in
                  model.(s) <- List.filter (( <> ) block) model.(s);
                  Cache.invalidate c a
              | Flush ->
                  Array.fill model 0 sets [];
                  Cache.flush c);
              check_state c model);
      }
end

(* --- VALB range CAM ------------------------------------------------------- *)

(* Model: the resident (pool, base, size) entries most-recently-used
   first, at most one entry per pool.  Pools live at disjoint ranges,
   with a second "relocated" range per pool to exercise remap dedup. *)
module Valb_h = struct
  type op =
    | Lookup of int * int * int (* pool, version, delta *)
    | Insert of int * int (* pool, version *)
    | Invalidate_pool of int
    | Flush

  let entries = 4
  let npools = 6
  let size = 0x1000L

  let base pool version =
    Int64.of_int (0x10000 + (pool * 0x4000) + (version * 0x2000))

  let pp = function
    | Lookup (p, v, d) -> Fmt.str "lookup pool=%d v=%d +0x%x" p v d
    | Insert (p, v) -> Fmt.str "insert pool=%d v=%d" p v
    | Invalidate_pool p -> Fmt.str "invalidate-pool %d" p
    | Flush -> "flush"

  let gen rng =
    let pool () = Random.State.int rng npools in
    match Random.State.int rng 100 with
    | n when n < 45 ->
        Lookup (pool (), Random.State.int rng 2, Random.State.int rng 0x2000)
    | n when n < 85 -> Insert (pool (), Random.State.int rng 2)
    | n when n < 96 -> Invalidate_pool (pool ())
    | _ -> Flush

  let check_state v model =
    let dump = Valb.dump v in
    let pools = List.map (fun (_, _, p, _) -> p) dump in
    if List.length pools <> List.length (List.sort_uniq compare pools) then
      fail "valb holds duplicate ways for one pool: %a"
        Fmt.(Dump.list int) pools;
    let by_recency =
      List.sort (fun (_, _, _, a) (_, _, _, b) -> compare b a) dump
      |> List.map (fun (b, s, p, _) -> (p, b, s))
    in
    if by_recency <> !model then
      fail "valb state %a, model %a"
        Fmt.(Dump.list (Dump.pair int (Dump.pair int64 int64)))
        (List.map (fun (p, b, s) -> (p, (b, s))) by_recency)
        Fmt.(Dump.list (Dump.pair int (Dump.pair int64 int64)))
        (List.map (fun (p, b, s) -> (p, (b, s))) !model)

  let harness ~break () =
    Engine.Packed
      {
        Engine.component = "valb";
        gen;
        pp;
        init =
          (fun ~seed:_ ->
            let v = Valb.create ~entries in
            if break then begin
              Valb.enable_quirk v Valb.Duplicate_insert;
              Valb.enable_quirk v Valb.Stale_invalidate_stamp
            end;
            let model = ref [] in
            fun op ->
              (match op with
              | Lookup (p, ver, delta) ->
                  let va = Int64.add (base p ver) (Int64.of_int delta) in
                  let expected =
                    List.find_opt
                      (fun (_, b, s) -> va >= b && va < Int64.add b s)
                      !model
                  in
                  (match expected with
                  | Some ((p', _, _) as e) ->
                      model := e :: List.filter (( <> ) e) !model;
                      let sut = Valb.lookup v va in
                      if sut <> Some p' then
                        fail "lookup 0x%Lx: valb says %a, model says pool %d"
                          va
                          Fmt.(Dump.option int)
                          sut p'
                  | None ->
                      let sut = Valb.lookup v va in
                      if sut <> None then
                        fail "lookup 0x%Lx: valb says %a, model says miss" va
                          Fmt.(Dump.option int)
                          sut)
              | Insert (p, ver) ->
                  let b = base p ver in
                  Valb.insert v ~base:b ~size ~pool:p;
                  let rest =
                    List.filter (fun (p', _, _) -> p' <> p) !model
                  in
                  model :=
                    (p, b, size)
                    :: (if List.length rest = entries then
                          List.filteri (fun i _ -> i < entries - 1) rest
                        else rest)
              | Invalidate_pool p ->
                  Valb.invalidate_pool v p;
                  model := List.filter (fun (p', _, _) -> p' <> p) !model
              | Flush ->
                  Valb.flush v;
                  model := []);
              check_state v model);
      }
end

(* --- storeP unit ---------------------------------------------------------- *)

(* Model: the multiset of per-entry completion cycles; an issue takes
   the earliest-free entry, stalling until it drains if all are busy. *)
module Storep_h = struct
  type op = Issue of int * int (* time advance, unit latency *)

  let entries = 3

  let pp (Issue (dt, lat)) = Fmt.str "issue dt=%d latency=%d" dt lat

  let gen rng =
    Issue (Random.State.int rng 4, 1 + Random.State.int rng 15)

  let harness () =
    Engine.Packed
      {
        Engine.component = "storep";
        gen;
        pp;
        init =
          (fun ~seed:_ ->
            let u = Storep.create ~entries in
            let busy = ref (List.init entries (fun _ -> 0)) in
            let now = ref 0 in
            let issued = ref 0 in
            let stalls = ref 0 in
            let peak = ref 0 in
            fun (Issue (dt, latency)) ->
              now := !now + dt;
              let occupancy =
                List.length (List.filter (fun b -> b > !now) !busy)
              in
              if occupancy > !peak then peak := occupancy;
              let earliest = List.fold_left min max_int !busy in
              let start = max !now earliest in
              let stall = start - !now in
              let rec replace = function
                | [] -> assert false
                | b :: rest when b = earliest -> (start + latency) :: rest
                | b :: rest -> b :: replace rest
              in
              busy := replace !busy;
              incr issued;
              stalls := !stalls + stall;
              let sut = Storep.issue u ~now:!now ~latency in
              if sut <> stall then
                fail "issue at t=%d latency %d: unit stalls %d, model %d"
                  !now latency sut stall;
              if Storep.issued u <> !issued then
                fail "issued count %d, model %d" (Storep.issued u) !issued;
              if Storep.stall_cycles u <> !stalls then
                fail "stall cycles %d, model %d" (Storep.stall_cycles u)
                  !stalls;
              if Storep.peak_occupancy u <> !peak then
                fail "peak occupancy %d, model %d" (Storep.peak_occupancy u)
                  !peak);
      }
end

(* --- VATB range B-tree ----------------------------------------------------- *)

(* Model: a slot-indexed table of mapped sizes; slot [i] owns base
   [i * 0x10000], so ranges are disjoint by construction, as pool
   mappings are. *)
module Vatb_h = struct
  type op =
    | Insert of int * int (* slot, pages *)
    | Remove of int
    | Lookup of int * int (* slot, delta *)
    | Check

  let slots = 48

  let base slot = Int64.of_int (slot * 0x10000)

  let pp = function
    | Insert (s, p) -> Fmt.str "insert slot=%d pages=%d" s p
    | Remove s -> Fmt.str "remove slot=%d" s
    | Lookup (s, d) -> Fmt.str "lookup slot=%d +0x%x" s d
    | Check -> "check-invariants"

  let gen rng =
    let slot () = Random.State.int rng slots in
    match Random.State.int rng 100 with
    | n when n < 40 -> Insert (slot (), 1 + Random.State.int rng 16)
    | n when n < 60 -> Remove (slot ())
    | n when n < 90 -> Lookup (slot (), Random.State.int rng 0x10000)
    | _ -> Check

  let harness () =
    Engine.Packed
      {
        Engine.component = "vatb";
        gen;
        pp;
        init =
          (fun ~seed:_ ->
            let t = Btree.create () in
            let model = Hashtbl.create 32 in
            fun op ->
              match op with
              | Insert (slot, pages) ->
                  let size = Int64.of_int (pages * 0x1000) in
                  Btree.insert t ~base:(base slot) ~size ~pool:slot;
                  Hashtbl.replace model slot size
              | Remove slot ->
                  let removed = Btree.remove t (base slot) in
                  let expected = Hashtbl.mem model slot in
                  Hashtbl.remove model slot;
                  if removed <> expected then
                    fail "remove slot %d: tree says %b, model says %b" slot
                      removed expected
              | Lookup (slot, delta) ->
                  let va = Int64.add (base slot) (Int64.of_int delta) in
                  let expected =
                    match Hashtbl.find_opt model slot with
                    | Some size when Int64.of_int delta < size -> Some slot
                    | _ -> None
                  in
                  (match (Btree.lookup t va, expected) with
                  | None, None -> ()
                  | Some (e, visited), Some pool ->
                      if e.Btree.pool <> pool then
                        fail "lookup 0x%Lx: pool %d, model %d" va
                          e.Btree.pool pool;
                      if visited < 1 || visited > Btree.height t then
                        fail "lookup walked %d nodes in a height-%d tree"
                          visited (Btree.height t)
                  | Some (e, _), None ->
                      fail "lookup 0x%Lx: hit pool %d, model says miss" va
                        e.Btree.pool
                  | None, Some pool ->
                      fail "lookup 0x%Lx: miss, model says pool %d" va pool)
              | Check ->
                  Btree.check_invariants t;
                  if Btree.length t <> Hashtbl.length model then
                    fail "tree has %d ranges, model %d" (Btree.length t)
                      (Hashtbl.length model);
                  List.iter
                    (fun (e : Btree.entry) ->
                      match Hashtbl.find_opt model e.pool with
                      | Some size
                        when Int64.equal e.base (base e.pool)
                             && Int64.equal e.size size ->
                          ()
                      | _ ->
                          fail "tree entry (0x%Lx, %Ld, pool %d) not in model"
                            e.base e.size e.pool)
                    (Btree.to_list t));
      }
end

(* --- free-list allocator --------------------------------------------------- *)

(* Model: the heap as a sorted list of (offset, size, allocated) blocks
   tiling [heap_start, capacity); first-fit is a scan in offset order,
   which is exactly the sorted free list the implementation keeps. *)
module Fl_model = struct
  type block = { off : int64; size : int64; allocated : bool }
  type t = { mutable blocks : block list; cap : int64 }

  let ( +! ) = Int64.add
  let ( -! ) = Int64.sub

  let create cap =
    {
      blocks =
        [
          {
            off = Freelist.heap_start;
            (* The top [replica_size] bytes hold the replica superblock,
               outside the heap tiling. *)
            size = cap -! Freelist.replica_size -! Freelist.heap_start;
            allocated = false;
          };
        ];
      cap;
    }

  let round16 n = Int64.logand (n +! 15L) (Int64.lognot 15L)

  exception No_fit

  let alloc t size =
    let need = round16 size +! Freelist.header_size in
    let rec go acc = function
      | [] -> raise No_fit
      | b :: rest when (not b.allocated) && b.size >= need ->
          let taken, rest' =
            if b.size -! need >= Freelist.min_block then
              ( need,
                { off = b.off +! need; size = b.size -! need; allocated = false }
                :: rest )
            else (b.size, rest)
          in
          ( List.rev_append acc
              ({ off = b.off; size = taken; allocated = true } :: rest'),
            b.off +! Freelist.header_size )
      | b :: rest -> go (b :: acc) rest
    in
    let blocks, payload = go [] t.blocks in
    t.blocks <- blocks;
    payload

  let coalesce blocks =
    let rec go = function
      | a :: b :: rest
        when (not a.allocated) && (not b.allocated)
             && Int64.equal (a.off +! a.size) b.off ->
          go ({ a with size = a.size +! b.size } :: rest)
      | a :: rest -> a :: go rest
      | [] -> []
    in
    go blocks

  let free t payload =
    let off = payload -! Freelist.header_size in
    t.blocks <-
      coalesce
        (List.map
           (fun b -> if Int64.equal b.off off then { b with allocated = false } else b)
           t.blocks)

  let allocated_bytes t =
    List.fold_left
      (fun acc b -> if b.allocated then acc +! b.size else acc)
      0L t.blocks

  let live t =
    List.filter_map
      (fun b ->
        if b.allocated then Some (b.off +! Freelist.header_size, b.size)
        else None)
      t.blocks

  let is_live t payload =
    List.exists (fun (p, _) -> Int64.equal p payload) (live t)
end

module Freelist_h = struct
  type op =
    | Alloc of int
    | Free of int (* index into the live list *)
    | Free_bogus of int (* offset selector *)
    | Scribble of int * int64 (* live index, planted word *)
    | Check

  let cap = 8192L

  let pp = function
    | Alloc n -> Fmt.str "alloc %d" n
    | Free i -> Fmt.str "free #%d" i
    | Free_bogus off -> Fmt.str "free-bogus sel=%d" off
    | Scribble (i, w) -> Fmt.str "scribble #%d word=0x%Lx" i w
    | Check -> "check-invariants"

  let gen rng =
    match Random.State.int rng 100 with
    | n when n < 38 -> Alloc (1 + Random.State.int rng 600)
    | n when n < 62 -> Free (Random.State.int rng 64)
    | n when n < 74 ->
        (* Plant either a fake allocated header whose size runs past the
           arena (the pre-fix [free] accepted those) or an even word
           that fails the allocated-bit test. *)
        let w =
          if Random.State.bool rng then
            Int64.logor
              (Int64.logand
                 (Int64.of_int (8192 + Random.State.int rng 16384))
                 (Int64.lognot 15L))
              1L
          else Int64.of_int (Random.State.int rng 1000 * 2)
        in
        Scribble (Random.State.int rng 64, w)
    | n when n < 88 -> Free_bogus (Random.State.int rng 8192)
    | _ -> Check

  (* A tiny word-addressed arena; reads of never-written words are 0,
     like fresh simulated memory. *)
  let make_arena () =
    let words : (int64, int64) Hashtbl.t = Hashtbl.create 256 in
    let a =
      {
        Freelist.read =
          (fun off -> Option.value ~default:0L (Hashtbl.find_opt words off));
        write = (fun off v -> Hashtbl.replace words off v);
      }
    in
    (a, words)

  let check a model =
    ignore (Freelist.check_invariants a);
    let sut = Freelist.allocated_bytes a in
    let want = Fl_model.allocated_bytes model in
    if not (Int64.equal sut want) then
      fail "allocated %Ld bytes, model %Ld" sut want

  let harness () =
    Engine.Packed
      {
        Engine.component = "freelist";
        gen;
        pp;
        init =
          (fun ~seed:_ ->
            let a, words = make_arena () in
            Freelist.init a ~capacity:cap;
            let model = Fl_model.create cap in
            fun op ->
              match op with
              | Alloc n -> (
                  let sut =
                    match Freelist.alloc a (Int64.of_int n) with
                    | p -> Some p
                    | exception Freelist.Out_of_memory -> None
                  in
                  let want =
                    match Fl_model.alloc model (Int64.of_int n) with
                    | p -> Some p
                    | exception Fl_model.No_fit -> None
                  in
                  match (sut, want) with
                  | None, None -> ()
                  | Some p, Some q when Int64.equal p q -> ()
                  | Some p, Some q ->
                      fail "alloc %d: payload %Ld, model %Ld" n p q
                  | Some _, None ->
                      fail "alloc %d: model is out of memory, allocator isn't"
                        n
                  | None, Some _ ->
                      fail "alloc %d: out of memory, but the model fits" n)
              | Free i -> (
                  match Fl_model.live model with
                  | [] -> ()
                  | live ->
                      let payload, _ =
                        List.nth live (i mod List.length live)
                      in
                      Freelist.free a payload;
                      Fl_model.free model payload;
                      check a model)
              | Free_bogus sel ->
                  let payload =
                    Int64.logand
                      (Int64.add Freelist.heap_start (Int64.of_int sel))
                      (Int64.lognot 7L)
                  in
                  if Fl_model.is_live model payload then begin
                    Freelist.free a payload;
                    Fl_model.free model payload;
                    check a model
                  end
                  else begin
                    (match Freelist.free a payload with
                    | () ->
                        fail "free of bogus offset %Ld accepted" payload
                    | exception Freelist.Corrupt_arena _ -> ());
                    check a model
                  end
              | Scribble (i, w) -> (
                  (* Application bytes inside a live payload: arbitrary,
                     and none of the allocator's business. *)
                  match Fl_model.live model with
                  | [] -> ()
                  | live ->
                      let payload, size =
                        List.nth live (i mod List.length live)
                      in
                      let payload_words =
                        Int64.to_int (Int64.div size 8L) - 2
                      in
                      if payload_words > 0 then
                        Hashtbl.replace words
                          (Int64.add payload
                             (Int64.of_int
                                (8 * (i mod payload_words))))
                          w)
              | Check -> check a model);
      }
end

(* --- the pool manager (freelists + crash/reopen) -------------------------- *)

module Pmop_h = struct
  type op =
    | Pmalloc of int * int (* pool index, size *)
    | Pfree of int * int (* pool index, live-list selector *)
    | Set_root of int * int64
    | Crash
    | Check

  let npools = 3
  let pool_size = 65536

  let pp = function
    | Pmalloc (p, n) -> Fmt.str "pmalloc pool=%d %d" p n
    | Pfree (p, i) -> Fmt.str "pfree pool=%d #%d" p i
    | Set_root (p, v) -> Fmt.str "set-root pool=%d 0x%Lx" p v
    | Crash -> "crash+reopen"
    | Check -> "check-invariants"

  let gen rng =
    let pool () = Random.State.int rng npools in
    match Random.State.int rng 100 with
    | n when n < 40 -> Pmalloc (pool (), 1 + Random.State.int rng 3000)
    | n when n < 65 -> Pfree (pool (), Random.State.int rng 64)
    | n when n < 78 ->
        Set_root (pool (), Random.State.int64 rng Int64.max_int)
    | n when n < 86 -> Crash
    | _ -> Check

  let harness () =
    Engine.Packed
      {
        Engine.component = "pmop";
        gen;
        pp;
        init =
          (fun ~seed:_ ->
            let pm = Pmop.create (Mem.create ()) in
            let name i = Fmt.str "fz%d" i in
            let ids =
              Array.init npools (fun i ->
                  Pmop.create_pool pm ~name:(name i) ~size:pool_size)
            in
            let models =
              Array.init npools (fun _ ->
                  Fl_model.create (Int64.of_int pool_size))
            in
            let roots = Array.make npools 0L in
            let check_pool i =
              ignore (Pmop.check_pool_invariants pm ~pool:ids.(i));
              let sut = Pmop.allocated_bytes pm ~pool:ids.(i) in
              let want = Fl_model.allocated_bytes models.(i) in
              if not (Int64.equal sut want) then
                fail "pool %d: allocated %Ld bytes, model %Ld" i sut want;
              let root = Pmop.get_root pm ~pool:ids.(i) in
              if not (Int64.equal root roots.(i)) then
                fail "pool %d: root 0x%Lx, model 0x%Lx" i root roots.(i)
            in
            fun op ->
              match op with
              | Pmalloc (p, n) -> (
                  let sut =
                    match Pmop.pmalloc pm ~pool:ids.(p) n with
                    | ptr -> Some (Ptr.offset_of ptr)
                    | exception Freelist.Out_of_memory -> None
                  in
                  let want =
                    match Fl_model.alloc models.(p) (Int64.of_int n) with
                    | off -> Some off
                    | exception Fl_model.No_fit -> None
                  in
                  match (sut, want) with
                  | None, None -> ()
                  | Some o, Some w when Int64.equal o w -> ()
                  | Some o, Some w ->
                      fail "pmalloc pool %d: offset %Ld, model %Ld" p o w
                  | Some _, None ->
                      fail "pmalloc pool %d: model OOM, allocator isn't" p
                  | None, Some _ ->
                      fail "pmalloc pool %d: OOM, but the model fits" p)
              | Pfree (p, i) -> (
                  match Fl_model.live models.(p) with
                  | [] -> ()
                  | live ->
                      let payload, _ =
                        List.nth live (i mod List.length live)
                      in
                      Pmop.pfree pm
                        (Ptr.make_relative ~pool:ids.(p) ~offset:payload);
                      Fl_model.free models.(p) payload;
                      check_pool p)
              | Set_root (p, v) ->
                  Pmop.set_root pm ~pool:ids.(p) v;
                  roots.(p) <- v
              | Crash ->
                  (* Power failure: mappings vanish, NVM frames survive;
                     every pool must re-open with its heap intact. *)
                  Pmop.crash pm;
                  for i = 0 to npools - 1 do
                    ignore (Pmop.open_pool pm (name i))
                  done;
                  for i = 0 to npools - 1 do
                    check_pool i
                  done
              | Check ->
                  for i = 0 to npools - 1 do
                    check_pool i
                  done);
      }
end

(* --- media faults: integrity metadata vs a corruption ledger -------------- *)

(* The reference model here is a per-pool *corruption ledger*: exactly
   which metadata words we flipped (primary superblock, replica
   superblock, block headers), keyed by offset and remembering the
   original value so a second flip of the same bit un-plants it.  The
   ledger predicts, exactly:

     - which findings a scrub must report (and which [--repair] must
       fix: a corrupt primary is restored from an intact replica, a
       corrupt replica is rewritten by the re-seal),
     - which pools must come back read-only degraded after a crash,
     - which allocator calls must be refused ([Media_error]) or
       detected ([Corrupt_arena]) before mutating anything.

   Bit flips are planted through [Pmop.scrub_access], the same raw
   bypass the repair engine writes through.  Superblock flips are only
   planted while the pool is sealed — on a dirty pool the checksum is
   legitimately stale, exactly the window the journal (not the CRC)
   covers, so a flip there would be undetectable by design. *)
module Media_h = struct
  type op =
    | Pmalloc of int * int (* pool index, size *)
    | Pfree of int * int (* pool index, live-list selector *)
    | Set_root of int * int64
    | Seal of int
    | Flip_sb of int * int * int (* pool, superblock-word selector, bit *)
    | Flip_replica of int * int * int
    | Flip_header of int * int * int (* pool, live-block selector, bit *)
    | Scrub of bool (* with --repair? *)
    | Crash
    | Check

  let npools = 2
  let pool_size = 32768

  (* The seven checksum-relevant superblock words: magic, capacity,
     free head, allocated bytes, alloc/free counters, integrity word.
     The root slot (32) is excluded from the checksum by design. *)
  let sb_words = [| 0L; 8L; 16L; 24L; 40L; 48L; 56L |]

  let pp = function
    | Pmalloc (p, n) -> Fmt.str "pmalloc pool=%d %d" p n
    | Pfree (p, i) -> Fmt.str "pfree pool=%d #%d" p i
    | Set_root (p, v) -> Fmt.str "set-root pool=%d 0x%Lx" p v
    | Seal p -> Fmt.str "seal pool=%d" p
    | Flip_sb (p, w, b) ->
        Fmt.str "flip-superblock pool=%d word=%d bit=%d" p w b
    | Flip_replica (p, w, b) ->
        Fmt.str "flip-replica pool=%d word=%d bit=%d" p w b
    | Flip_header (p, i, b) -> Fmt.str "flip-header pool=%d #%d bit=%d" p i b
    | Scrub true -> "scrub --repair"
    | Scrub false -> "scrub"
    | Crash -> "crash+reopen"
    | Check -> "check-invariants"

  let gen rng =
    let pool () = Random.State.int rng npools in
    (* Flip bits stay below 13 so a corrupted free-head / capacity word
       still lands inside the mapping: the walk must die on a checksum,
       not on an unmapped address. *)
    let bit () = Random.State.int rng 13 in
    match Random.State.int rng 100 with
    | n when n < 20 -> Pmalloc (pool (), 1 + Random.State.int rng 2000)
    | n when n < 34 -> Pfree (pool (), Random.State.int rng 64)
    | n when n < 42 -> Set_root (pool (), Random.State.int64 rng Int64.max_int)
    | n when n < 50 -> Seal (pool ())
    | n when n < 60 -> Flip_sb (pool (), Random.State.int rng 7, bit ())
    | n when n < 68 -> Flip_replica (pool (), Random.State.int rng 7, bit ())
    | n when n < 74 ->
        Flip_header (pool (), Random.State.int rng 64, Random.State.int rng 64)
    | n when n < 88 -> Scrub (Random.State.bool rng)
    | n when n < 94 -> Crash
    | _ -> Check

  let harness ~break () =
    Engine.Packed
      {
        Engine.component = "media";
        gen;
        pp;
        init =
          (fun ~seed:_ ->
            let pm = Pmop.create (Mem.create ()) in
            let name i = Fmt.str "mz%d" i in
            let ids =
              Array.init npools (fun i ->
                  Pmop.create_pool pm ~name:(name i) ~size:pool_size)
            in
            let models =
              Array.init npools (fun _ ->
                  Fl_model.create (Int64.of_int pool_size))
            in
            let roots = Array.make npools 0L in
            (* Corruption ledgers: flipped word offset -> original value. *)
            let sb_bad = Array.init npools (fun _ -> Hashtbl.create 7) in
            let rep_bad = Array.init npools (fun _ -> Hashtbl.create 7) in
            let hdr_bad = Array.init npools (fun _ -> Hashtbl.create 7) in
            (* [create_pool] hands every pool back sealed. *)
            let sealed = Array.make npools true in
            let degraded = Array.make npools false in
            let walkable i =
              Hashtbl.length sb_bad.(i) = 0
              && Hashtbl.length hdr_bad.(i) = 0
              && not degraded.(i)
            in
            let check_pool i =
              ignore (Pmop.check_pool_invariants pm ~pool:ids.(i));
              let sut = Pmop.allocated_bytes pm ~pool:ids.(i) in
              let want = Fl_model.allocated_bytes models.(i) in
              if not (Int64.equal sut want) then
                fail "pool %d: allocated %Ld bytes, model %Ld" i sut want;
              let root = Pmop.get_root pm ~pool:ids.(i) in
              if not (Int64.equal root roots.(i)) then
                fail "pool %d: root 0x%Lx, model 0x%Lx" i root roots.(i)
            in
            let check_flags () =
              Array.iteri
                (fun i id ->
                  let sut = Pmop.is_degraded pm ~pool:id in
                  if sut <> degraded.(i) then
                    fail "pool %d: degraded=%b, model says %b" i sut
                      degraded.(i))
                ids
            in
            (* Flip one bit through the scrub bypass, maintaining the
               ledger: flipping a word back to its original value
               un-plants it. *)
            let flip p table off bit =
              let a = Pmop.scrub_access pm ~pool:ids.(p) in
              let v = a.Freelist.read off in
              let v' = Int64.logxor v (Int64.shift_left 1L bit) in
              a.Freelist.write off v';
              match Hashtbl.find_opt table off with
              | None -> Hashtbl.replace table off v
              | Some original ->
                  if Int64.equal v' original then Hashtbl.remove table off
            in
            (* An allocator call against corrupted sealed metadata must
               raise — and detection precedes the first write, so no
               state may have changed. *)
            let expect_detected what p f =
              match f () with
              | _ -> fail "%s on corrupted pool %d succeeded" what p
              | exception (Engine.Violation _ as e) -> raise e
              | exception _ -> ()
            in
            let expect_refused what p f =
              match f () with
              | _ -> fail "%s on degraded pool %d was not refused" what p
              | exception Media.Media_error _ -> ()
            in
            fun op ->
              match op with
              | Pmalloc (p, n) ->
                  if degraded.(p) then
                    expect_refused "pmalloc" p (fun () ->
                        Pmop.pmalloc pm ~pool:ids.(p) n)
                  else if sealed.(p) && Hashtbl.length sb_bad.(p) > 0 then
                    expect_detected "pmalloc" p (fun () ->
                        Pmop.pmalloc pm ~pool:ids.(p) n)
                  else begin
                    let sut =
                      match Pmop.pmalloc pm ~pool:ids.(p) n with
                      | ptr -> Some (Ptr.offset_of ptr)
                      | exception Freelist.Out_of_memory -> None
                    in
                    let want =
                      match Fl_model.alloc models.(p) (Int64.of_int n) with
                      | off -> Some off
                      | exception Fl_model.No_fit -> None
                    in
                    match (sut, want) with
                    | None, None -> ()
                    | Some o, Some w when Int64.equal o w ->
                        sealed.(p) <- false
                    | Some o, Some w ->
                        fail "pmalloc pool %d: offset %Ld, model %Ld" p o w
                    | Some _, None ->
                        fail "pmalloc pool %d: model OOM, allocator isn't" p
                    | None, Some _ ->
                        fail "pmalloc pool %d: OOM, but the model fits" p
                  end
              | Pfree (p, i) -> (
                  if degraded.(p) then
                    (* Refusal is eager: even a wild pointer must bounce
                       off the read-only gate before being validated. *)
                    expect_refused "pfree" p (fun () ->
                        Pmop.pfree pm
                          (Ptr.make_relative ~pool:ids.(p)
                             ~offset:
                               (Int64.add Freelist.heap_start
                                  Freelist.header_size)))
                  else
                    match Fl_model.live models.(p) with
                    | [] -> ()
                    | live ->
                        let payload, _ =
                          List.nth live (i mod List.length live)
                        in
                        let ptr =
                          Ptr.make_relative ~pool:ids.(p) ~offset:payload
                        in
                        let blk = Int64.sub payload Freelist.header_size in
                        if sealed.(p) && Hashtbl.length sb_bad.(p) > 0 then
                          expect_detected "pfree" p (fun () ->
                              Pmop.pfree pm ptr)
                        else if Hashtbl.mem hdr_bad.(p) blk then (
                          match Pmop.pfree pm ptr with
                          | () ->
                              fail
                                "pool %d: free over a corrupt header at %Ld \
                                 accepted"
                                p blk
                          | exception Freelist.Corrupt_arena _ -> ())
                        else begin
                          Pmop.pfree pm ptr;
                          Fl_model.free models.(p) payload;
                          sealed.(p) <- false;
                          if walkable p then check_pool p
                        end)
              | Set_root (p, v) ->
                  if degraded.(p) then
                    expect_refused "set-root" p (fun () ->
                        Pmop.set_root pm ~pool:ids.(p) v)
                  else if sealed.(p) && Hashtbl.length sb_bad.(p) > 0 then
                    expect_detected "set-root" p (fun () ->
                        Pmop.set_root pm ~pool:ids.(p) v)
                  else begin
                    Pmop.set_root pm ~pool:ids.(p) v;
                    roots.(p) <- v;
                    sealed.(p) <- false
                  end
              | Seal p ->
                  Pmop.seal_pool pm ~pool:ids.(p);
                  if (not degraded.(p)) && not sealed.(p) then begin
                    sealed.(p) <- true;
                    (* Sealing rewrites the whole replica area. *)
                    Hashtbl.reset rep_bad.(p)
                  end
              | Flip_sb (p, w, b) ->
                  if sealed.(p) then flip p sb_bad.(p) sb_words.(w) b
              | Flip_replica (p, w, b) ->
                  let rb =
                    Int64.sub (Int64.of_int pool_size) Freelist.replica_size
                  in
                  flip p rep_bad.(p) (Int64.add rb sb_words.(w)) b
              | Flip_header (p, i, b) -> (
                  match Fl_model.live models.(p) with
                  | [] -> ()
                  | live ->
                      let payload, _ =
                        List.nth live (i mod List.length live)
                      in
                      let blk = Int64.sub payload Freelist.header_size in
                      flip p hdr_bad.(p) blk b)
              | Scrub r ->
                  let sc = Scrub.create pm in
                  if break then Scrub.enable_quirk sc Scrub.Blind_primary;
                  let report = Scrub.run sc ~repair:r in
                  Array.iteri
                    (fun i id ->
                      let pr =
                        match
                          List.find_opt
                            (fun (pr : Scrub.pool_report) -> pr.Scrub.pool = id)
                            report.Scrub.pools
                        with
                        | Some pr -> pr
                        | None -> fail "scrub skipped pool %d" i
                      in
                      let sb0 = Hashtbl.length sb_bad.(i) > 0 in
                      let rep0 = Hashtbl.length rep_bad.(i) > 0 in
                      let hdr0 = Hashtbl.length hdr_bad.(i) > 0 in
                      let has pred =
                        List.exists
                          (fun (f : Scrub.finding) -> pred f)
                          pr.Scrub.findings
                      in
                      let prim (f : Scrub.finding) =
                        f.Scrub.kind = Scrub.Superblock_primary
                      in
                      let repl (f : Scrub.finding) =
                        f.Scrub.kind = Scrub.Superblock_replica
                      in
                      let hdrk (f : Scrub.finding) =
                        match f.Scrub.kind with
                        | Scrub.Block_header _ -> true
                        | _ -> false
                      in
                      let spurious (f : Scrub.finding) =
                        match f.Scrub.kind with
                        | Scrub.Freelist_chain | Scrub.Root
                        | Scrub.Poisoned_payload _ ->
                            true
                        | _ -> false
                      in
                      if has prim <> sb0 then
                        fail "pool %d: scrub %s primary-superblock corruption"
                          i
                          (if sb0 then "missed" else "invented");
                      if has repl <> rep0 then
                        fail "pool %d: scrub %s replica corruption" i
                          (if rep0 then "missed" else "invented");
                      if has hdrk <> hdr0 then
                        fail "pool %d: scrub %s block-header corruption" i
                          (if hdr0 then "missed" else "invented");
                      if has spurious then
                        fail "pool %d: scrub reported a spurious finding" i;
                      (* Repair predictions: a corrupt primary is
                         restored iff the replica vouches; a corrupt
                         replica is rewritten iff the whole primary side
                         checks out. *)
                      let restored = r && sb0 && not rep0 in
                      let rep_fix = r && rep0 && (not sb0) && not hdr0 in
                      let prim_fixed =
                        has (fun f -> prim f && f.Scrub.repaired)
                      in
                      if prim_fixed <> restored then
                        fail "pool %d: primary repaired=%b, model says %b" i
                          prim_fixed restored;
                      let repl_fixed =
                        has (fun f -> repl f && f.Scrub.repaired)
                      in
                      if repl_fixed <> rep_fix then
                        fail "pool %d: replica repaired=%b, model says %b" i
                          repl_fixed rep_fix;
                      if restored then Hashtbl.reset sb_bad.(i);
                      if rep_fix then Hashtbl.reset rep_bad.(i);
                      let deg_now = (sb0 && not restored) || hdr0 in
                      if deg_now then degraded.(i) <- true
                      else if r then degraded.(i) <- false;
                      (* else: a degraded pool stays degraded even if the
                         damage was reverted bit-by-bit — only a repair
                         pass hands it back. *)
                      if (restored || rep_fix) && not degraded.(i) then
                        (* [Repaired] pools are re-sealed. *)
                        sealed.(i) <- true)
                    ids;
                  check_flags ();
                  for i = 0 to npools - 1 do
                    if walkable i then check_pool i
                  done
              | Crash ->
                  Pmop.crash pm;
                  for i = 0 to npools - 1 do
                    ignore (Pmop.open_pool pm (name i));
                    (* The verified attach degrades exactly the pools
                       whose primary superblock no longer checks out. *)
                    degraded.(i) <- Hashtbl.length sb_bad.(i) > 0
                  done;
                  check_flags ();
                  for i = 0 to npools - 1 do
                    if walkable i then check_pool i
                  done
              | Check ->
                  check_flags ();
                  for i = 0 to npools - 1 do
                    if walkable i then check_pool i
                  done);
      }
end

(* --- persistent containers ------------------------------------------------- *)

module I64_map = Map.Make (Int64)

(* One harness per Table III structure (plus the extended set), driven
   through the full runtime in HW mode with crash/re-attach cycles;
   the model is a Stdlib map. *)
module Structure_h = struct
  type op =
    | Insert of int * int64
    | Find of int
    | Remove of int
    | Iter
    | Check
    | Crash

  let keys = 120

  let key k = Int64.of_int (1009 + (k * 7))

  let pp = function
    | Insert (k, v) -> Fmt.str "insert %Ld=%Ld" (key k) v
    | Find k -> Fmt.str "find %Ld" (key k)
    | Remove k -> Fmt.str "remove %Ld" (key k)
    | Iter -> "iter"
    | Check -> "check-invariants"
    | Crash -> "crash+reattach"

  let gen rng =
    let k () = Random.State.int rng keys in
    match Random.State.int rng 100 with
    | n when n < 38 -> Insert (k (), Random.State.int64 rng 1_000_000L)
    | n when n < 62 -> Find (k ())
    | n when n < 78 -> Remove (k ())
    | n when n < 84 -> Iter
    | n when n < 94 -> Check
    | _ -> Crash

  let harness (module M : Intf.ORDERED_MAP) =
    Engine.Packed
      {
        Engine.component = "structures:" ^ M.name;
        gen;
        pp;
        init =
          (fun ~seed:_ ->
            let rt = Runtime.create ~mode:Runtime.Hw () in
            let pool = Runtime.create_pool rt ~name:"fuzz" ~size:(1 lsl 21) in
            let m = ref (M.create rt (Runtime.Pool_region pool)) in
            Runtime.set_root rt ~site ~pool (M.header !m);
            let model = ref I64_map.empty in
            fun op ->
              match op with
              | Insert (k, v) ->
                  M.insert !m ~key:(key k) ~value:v;
                  model := I64_map.add (key k) v !model
              | Find k ->
                  let sut = M.find !m (key k) in
                  let want = I64_map.find_opt (key k) !model in
                  if sut <> want then
                    fail "find %Ld: %a, model %a" (key k)
                      Fmt.(Dump.option int64)
                      sut
                      Fmt.(Dump.option int64)
                      want
              | Remove k ->
                  let sut = M.remove !m (key k) in
                  let want = I64_map.mem (key k) !model in
                  model := I64_map.remove (key k) !model;
                  if sut <> want then
                    fail "remove %Ld: %b, model %b" (key k) sut want
              | Iter ->
                  let acc = ref [] in
                  M.iter !m (fun ~key ~value -> acc := (key, value) :: !acc);
                  let got = List.sort compare !acc in
                  let want = I64_map.bindings !model in
                  if got <> want then
                    fail "iter: %d bindings, model %d (or contents differ)"
                      (List.length got) (List.length want)
              | Check ->
                  M.check_invariants !m;
                  if M.size !m <> I64_map.cardinal !model then
                    fail "size %d, model %d" (M.size !m)
                      (I64_map.cardinal !model)
              | Crash ->
                  Runtime.crash_and_restart rt;
                  ignore (Runtime.open_pool rt "fuzz");
                  let header = Runtime.get_root rt ~site ~pool in
                  m := M.attach rt header);
      }
end

(* --- cross-layer: SW vs HW pointer semantics -------------------------------- *)

(* Each op replays one corpus program under four configurations and
   checks (a) bit-identical outputs everywhere, and (b) that the
   [checks.*]/per-site telemetry agrees with [Comp.Inference]'s static
   classification: a site the inference resolved must never execute a
   dynamic check, and enabling the plan can only remove checks. *)
module Semantics_h = struct
  type op = Program of int

  let pp (Program i) =
    let name, _ = List.nth Corpus.all (i mod List.length Corpus.all) in
    Fmt.str "program %s" name

  let gen rng = Program (Random.State.int rng (List.length Corpus.all))

  let counter_value counters name =
    Option.value ~default:0 (List.assoc_opt name counters)

  let site_prefix = "site.minic."

  let run_in ~mode ~persistent ?plan prog =
    Telemetry.run_with_sink (Telemetry.fresh_sink ()) @@ fun () ->
    let rt = Runtime.create ~mode () in
    let heap =
      if persistent then
        Runtime.Pool_region (Runtime.create_pool rt ~name:"heap" ~size:(1 lsl 22))
      else Runtime.Dram_region
    in
    let out = (Interp.run rt ?plan ~heap prog ~args:[]).Interp.output in
    let counters = Telemetry.counters_snapshot () in
    let fired_sites =
      List.filter_map
        (fun (n, v) ->
          let pl = String.length site_prefix in
          if v > 0 && String.length n > pl && String.sub n 0 pl = site_prefix
          then int_of_string_opt (String.sub n pl (String.length n - pl))
          else None)
        counters
    in
    (out, counter_value counters "checks.dynamic", fired_sites)

  let harness () =
    Engine.Packed
      {
        Engine.component = "semantics";
        gen;
        pp;
        init =
          (fun ~seed:_ ->
            fun (Program i) ->
             let name, prog =
               List.nth Corpus.all (i mod List.length Corpus.all)
             in
             let inference = Inference.infer prog in
             let plan = Inference.plan inference in
             let was = Telemetry.enabled () in
             Telemetry.set_enabled true;
             Fun.protect
               ~finally:(fun () -> Telemetry.set_enabled was)
               (fun () ->
                 let reference, _, _ =
                   run_in ~mode:Runtime.Volatile ~persistent:false prog
                 in
                 let sw, sw_checks, sw_fired =
                   run_in ~mode:Runtime.Sw ~persistent:true ~plan prog
                 in
                 let sw_noplan, sw_noplan_checks, _ =
                   run_in ~mode:Runtime.Sw ~persistent:true prog
                 in
                 let hw, _, _ =
                   run_in ~mode:Runtime.Hw ~persistent:true ~plan prog
                 in
                 if sw <> reference then
                   fail "%s: SW output diverges from the volatile reference"
                     name;
                 if hw <> reference then
                   fail "%s: HW output diverges from the volatile reference"
                     name;
                 if sw_noplan <> reference then
                   fail
                     "%s: SW output without check elision diverges — the \
                      checks are not semantics-preserving"
                     name;
                 List.iter
                   (fun id ->
                     if plan id then
                       fail
                         "%s: site minic.%d is statically resolved but \
                          executed a dynamic check"
                         name id)
                   sw_fired;
                 if sw_checks > sw_noplan_checks then
                   fail
                     "%s: the inference plan added dynamic checks (%d with \
                      plan, %d without)"
                     name sw_checks sw_noplan_checks));
      }
end

(* --- cross-layer: YCSB distribution statistics ------------------------------ *)

(* Gray's sampler maps u to rank 0 exactly when u*zeta_n < 1 and to
   rank 1 exactly when u*zeta_n < 1 + 0.5^theta, so those rank
   probabilities have closed forms; the empirical frequencies must land
   within a binomial confidence band.  "Latest" re-maps rank r to index
   n-1-r, so its most-recent index inherits rank 0's probability. *)
module Zipf_h = struct
  type op = Draw of int | Grow of int | Check

  let batch = 500
  let n0 = 300

  let pp = function
    | Draw s -> Fmt.str "draw %dx (salt %d)" batch s
    | Grow g -> Fmt.str "grow +%d" g
    | Check -> "check-frequencies"

  let gen rng =
    match Random.State.int rng 100 with
    | n when n < 70 -> Draw (Random.State.int rng 1_000_000)
    | n when n < 80 -> Grow (1 + Random.State.int rng 40)
    | _ -> Check

  let zeta n =
    let s = ref 0.0 in
    for i = 1 to n do
      s := !s +. (1.0 /. Float.pow (float_of_int i) Distribution.theta)
    done;
    !s

  let harness () =
    Engine.Packed
      {
        Engine.component = "zipf";
        gen;
        pp;
        init =
          (fun ~seed ->
            let draw_rng = Random.State.make [| 0x7a69; seed |] in
            let n = ref n0 in
            let zipf = Distribution.zipfian n0 in
            let latest = Distribution.latest n0 in
            let scrambled = Distribution.scrambled_zipfian n0 in
            let total = ref 0 in
            let z0 = ref 0 in
            let z1 = ref 0 in
            let l0 = ref 0 in
            let in_range what s =
              if s < 0 || s >= !n then
                fail "%s sample %d outside [0, %d)" what s !n
            in
            fun op ->
              match op with
              | Draw _ ->
                  for _ = 1 to batch do
                    let z = Distribution.sample zipf draw_rng in
                    in_range "zipfian" z;
                    if z = 0 then incr z0;
                    if z = 1 then incr z1;
                    let l = Distribution.sample latest draw_rng in
                    in_range "latest" l;
                    if l = !n - 1 then incr l0;
                    in_range "scrambled"
                      (Distribution.sample scrambled draw_rng)
                  done;
                  total := !total + batch
              | Grow g ->
                  for _ = 1 to g do
                    Distribution.grow zipf;
                    Distribution.grow latest;
                    Distribution.grow scrambled;
                    incr n
                  done;
                  if
                    Distribution.population zipf <> !n
                    || Distribution.population latest <> !n
                  then
                    fail "population %d after growth, model %d"
                      (Distribution.population zipf) !n;
                  (* frequencies below are per-population: restart *)
                  total := 0;
                  z0 := 0;
                  z1 := 0;
                  l0 := 0
              | Check ->
                  if !total >= 3000 then begin
                    let zn = zeta !n in
                    let expect what count p =
                      let freq = float_of_int count /. float_of_int !total in
                      let sigma =
                        sqrt (p *. (1.0 -. p) /. float_of_int !total)
                      in
                      let tol = (6.0 *. sigma) +. 0.004 in
                      if Float.abs (freq -. p) > tol then
                        fail
                          "%s frequency %.4f, closed form %.4f (tolerance \
                           %.4f over %d draws)"
                          what freq p tol !total
                    in
                    expect "zipfian rank-0" !z0 (1.0 /. zn);
                    expect "zipfian rank-1" !z1
                      (Float.pow 0.5 Distribution.theta /. zn);
                    expect "latest most-recent" !l0 (1.0 /. zn)
                  end);
      }
end

(* --- the multi-core machine against its sequential model ----------------- *)

(* Schedule enumeration over seeded interleavings: every op runs one
   complete contended episode (fresh machine, N cores hammering the
   shared Conc_counter/Conc_list) twice with the same scheduler seed
   and checks

     - determinism: both runs retire the identical per-core cycle and
       instruction counts and identical scheduler statistics;
     - the sequential model: final counter value and list contents are
       exactly what a serial execution produces (the structures are
       linearizable, so every interleaving must agree);
     - FliT quiescence: no in-flight writer marks survive the episode,
       and reader syncs split exactly into issued + elided flushes;
     - the per-core attribution-equals-cycles invariant. *)
module Conc_h = struct
  module Cluster = Nvml_runtime.Cluster
  module Cpu = Nvml_arch.Cpu
  module Flit = Nvml_structures.Flit
  module Conc_counter = Nvml_structures.Conc_counter
  module Conc_list = Nvml_structures.Conc_list
  module Conc_workload = Nvml_structures.Conc_workload

  type op = Episode of { sched_seed : int; cores : int; ops_per_core : int }

  let pp (Episode { sched_seed; cores; ops_per_core }) =
    Fmt.str "episode seed=%d cores=%d ops/core=%d" sched_seed cores
      ops_per_core

  let gen rng =
    Episode
      {
        sched_seed = Random.State.int rng 1_000_000;
        cores = 2 + Random.State.int rng 2;
        ops_per_core = 2 + Random.State.int rng 9;
      }

  type run_result = {
    value : int64;
    keys : int64 list;
    per_core : (int * int) list; (* (cycles, instrs) per core *)
    sched : Nvml_arch.Multicore.stats;
    pending : int;
    syncs : int * int; (* issued, elided *)
  }

  let run_episode ~sched_seed ~cores ~ops_per_core =
    let rt = Runtime.create ~mode:Runtime.Hw () in
    let pool = Runtime.create_pool rt ~name:"mc-conc" ~size:(1 lsl 22) in
    let s =
      Conc_workload.setup ~sched_seed ~cores ~ops_per_core rt ~pool
    in
    Conc_workload.run s;
    let cluster = s.Conc_workload.cluster in
    let counter = s.Conc_workload.counter in
    let list = s.Conc_workload.list in
    Array.iter
      (fun cpu ->
        let a = Cpu.attribution cpu in
        if Cpu.attribution_total a <> Cpu.cycles cpu then
          raise
            (Engine.Violation
               (Fmt.str "core attribution %d <> cycles %d"
                  (Cpu.attribution_total a) (Cpu.cycles cpu))))
      (Nvml_arch.Multicore.cores (Cluster.machine cluster));
    let primary = Cluster.primary cluster in
    let fc = Conc_counter.flit counter and fl = Conc_list.flit list in
    {
      value =
        Conc_counter.read (Conc_counter.handle counter primary ~core:0);
      keys =
        List.sort compare (Conc_list.recovered_keys primary list);
      per_core =
        Array.to_list
          (Array.map
             (fun cpu -> (Cpu.cycles cpu, (Cpu.snapshot cpu).Cpu.instrs))
             (Nvml_arch.Multicore.cores (Cluster.machine cluster)));
      sched = Cluster.stats cluster;
      pending = Flit.pending fc + Flit.pending fl;
      syncs =
        ( Flit.issued fc + Flit.issued fl,
          Flit.elided fc + Flit.elided fl );
    }

  let harness () =
    Engine.Packed
      {
        Engine.component = "conc";
        gen;
        pp;
        init =
          (fun ~seed:_ ->
            fun (Episode { sched_seed; cores; ops_per_core }) ->
              let fail fmt = Fmt.kstr (fun m -> raise (Engine.Violation m)) fmt in
              let a = run_episode ~sched_seed ~cores ~ops_per_core in
              let b = run_episode ~sched_seed ~cores ~ops_per_core in
              if a <> b then
                fail "same-seed episodes diverge (seed %d)" sched_seed;
              let total = cores * ops_per_core in
              if a.value <> Int64.of_int total then
                fail "counter %Ld, model %d" a.value total;
              let expected =
                List.sort compare
                  (List.concat_map
                     (fun c ->
                       List.init ops_per_core (fun j ->
                           Conc_workload.key ~core:c ~op:j))
                     (List.init cores Fun.id))
              in
              if a.keys <> expected then
                fail "list contents diverge from the sequential model";
              if a.pending <> 0 then
                fail "%d FliT marks still pending at quiescence" a.pending;
              let issued, elided = a.syncs in
              if issued < 0 || elided <= 0 then
                fail "reader syncs: %d issued, %d elided" issued elided;
              if a.sched.Nvml_arch.Multicore.steps = 0 && cores > 1 then
                fail "scheduler took no steps on a %d-core episode" cores);
      }
end
