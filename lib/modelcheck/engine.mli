(** The model-based differential fuzzing engine.

    A component under test is packaged as a {!harness}: a seeded op
    generator plus a factory that builds a fresh instance — the real
    component and its obviously-correct reference model side by side —
    and returns an apply function that executes one op on both and
    raises {!Violation} on any observable divergence or broken
    invariant.

    [run] replays a seeded random op stream against the harness; on a
    violation it shrinks the failing prefix (greedy delta-debugging
    with a bounded replay budget) and reports the minimal op trace,
    which replays bit-identically from (component, seed). *)

exception Violation of string
(** Raised by a harness [apply] when the component diverges from its
    model or breaks an invariant.  Any other exception escaping [apply]
    is reported as a violation too (the model said it must not
    happen). *)

type 'op harness = {
  component : string;  (** registry name, also salts the op stream *)
  gen : Random.State.t -> 'op;
  init : seed:int -> ('op -> unit);
      (** build a fresh component + model pair; the returned closure
          applies one op to both and checks equivalence *)
  pp : 'op -> string;
}

type packed = Packed : 'op harness -> packed

type counterexample = {
  step : int;  (** index of the failing op in the original stream *)
  message : string;
  trace : string list;  (** shrunk op sequence, pretty-printed *)
  shrunk_from : int;  (** length of the original failing prefix *)
}

type result = {
  component : string;
  seed : int;
  ops : int;  (** op-stream length requested *)
  ops_run : int;  (** ops applied before stopping *)
  violation : counterexample option;
}

val run : packed -> ops:int -> seed:int -> result
(** Deterministic in (component, seed, ops): the op stream depends only
    on those, never on wall time or the component's behaviour. *)

val pp_result : result Fmt.t
