(** One fuzzing harness per simulated component: the implementation and
    an obviously-correct reference model run in lockstep on a seeded op
    stream, raising {!Engine.Violation} on any observable divergence.

    [~break:true] re-enables the component's fixed bugs (quirks) so a
    self-test can assert the fuzzer still finds them. *)

module Cache_h : sig
  val harness : break:bool -> unit -> Engine.packed
  (** POLB set-associative cache vs per-set MRU lists: hit/miss results,
      residency, and exact LRU order after every op. *)
end

module Valb_h : sig
  val harness : break:bool -> unit -> Engine.packed
  (** VALB range CAM vs an MRU entry list: lookups, one-way-per-pool
      dedup, remapped-base refills, shootdowns and flushes. *)
end

module Storep_h : sig
  val harness : unit -> Engine.packed
  (** storeP unit vs a completion-time multiset: per-issue stalls and
      the issued/stall/peak-occupancy statistics. *)
end

module Vatb_h : sig
  val harness : unit -> Engine.packed
  (** VATB range B-tree vs a slot table: lookups, removals, rebalance
      invariants, and lookup path length bounded by the tree height. *)
end

module Freelist_h : sig
  val harness : unit -> Engine.packed
  (** In-arena first-fit allocator vs a sorted block-list model,
      including scribbled application bytes and bogus frees that the
      allocator must reject. *)
end

module Pmop_h : sig
  val harness : unit -> Engine.packed
  (** Pool manager: per-pool heaps and roots vs block-list models,
      across crash/reopen cycles. *)
end

module Media_h : sig
  val harness : break:bool -> unit -> Engine.packed
  (** Integrity metadata under injected bit flips, vs a per-pool
      corruption ledger: the ledger predicts every scrub finding, what
      [--repair] restores (primary from replica, replica by re-seal),
      which pools attach read-only degraded after a crash, and which
      allocator calls must be refused or detected before mutating
      anything.  The [Blind_primary] quirk re-enables a scrub that
      trusted the primary superblock without checksumming it. *)
end

module Structure_h : sig
  val harness : Nvml_structures.Intf.ordered_map -> Engine.packed
  (** One persistent container (in HW mode, through the full runtime)
      vs [Stdlib.Map], with crash/re-attach cycles. *)
end

module Semantics_h : sig
  val harness : unit -> Engine.packed
  (** Cross-layer: each op replays one corpus program under volatile,
      SW (with and without the inference plan) and HW configurations,
      checking output equality and that telemetry's per-site check
      counters agree with the static classification. *)
end

module Zipf_h : sig
  val harness : unit -> Engine.packed
  (** Cross-layer: empirical rank frequencies of the zipfian/latest
      samplers vs the closed-form Gray probabilities. *)
end

module Conc_h : sig
  val harness : unit -> Engine.packed
  (** The multi-core machine vs its sequential model: every op runs a
      complete contended episode (fresh cluster, seeded interleaving)
      twice, checking schedule determinism, agreement of the shared
      Conc_counter/Conc_list contents with a serial execution, FliT
      quiescence and the per-core attribution-equals-cycles
      invariant. *)
end
