(** Translation between the two pointer formats.

    [ra2va] resolves a relative pointer to the virtual address of its
    target through the POT (pool ID → current base); [va2ra] finds the
    pool covering a virtual address through the VAT (range → pool) and
    re-expresses the address relative to it.  The pool manager supplies
    both tables as a first-class {!provider}. *)

type provider = {
  pool_base : int -> int64 option;
      (** POT lookup: pool ID → mapped virtual base, [None] if the pool
          is detached. *)
  pool_of_va : int64 -> (int * int64) option;
      (** VAT lookup: virtual address → (pool ID, pool base) of the
          covering pool, [None] if the address is in no pool. *)
  generation : int ref;
      (** The provider must bump this on every mapping change (pool
          create, open, detach, crash).  Translation memoizes repeated
          [pool_base] lookups and uses the generation to invalidate, so
          a stale bump means stale translations. *)
}

(** Conversion and check accounting (reported in Table V). *)
type counters = {
  mutable ra2va : int;  (** relative → absolute conversions *)
  mutable va2ra : int;  (** absolute → relative conversions *)
  mutable dynamic_checks : int;  (** software format/location checks *)
  mutable volatile_escapes : int;
      (** DRAM virtual addresses stored into NVM unconverted *)
}

val fresh_counters : unit -> counters
val add_counters : counters -> counters -> unit

type t

val make : provider -> t
val counters : t -> counters

exception Pool_detached of int
(** [ra2va] on a pointer whose pool is no longer mapped (Fig. 10). *)

exception Not_in_pool of int64
(** [va2ra] on an NVM virtual address not covered by any pool. *)

val ra2va : t -> Ptr.t -> int64
(** Relative → virtual.  Virtual-format input (including NULL) passes
    through unchanged.
    @raise Pool_detached if the pool is unmapped. *)

val va2ra : t -> Ptr.t -> Ptr.t
(** Virtual → relative.  Relative input and NULL pass through.  A DRAM
    virtual address has no relative form and is returned unchanged,
    counted as a volatile escape.
    @raise Not_in_pool on an NVM address outside every pool. *)

val effective_va : t -> Ptr.t -> int64
(** The virtual address a pointer designates, whatever its format — the
    address issued to the memory system on a dereference. *)
