(* The runtime checks of Fig. 3: [determine_x], [determine_y] and
   [pointer_assignment].  These are the software fallback the SW version
   executes at every pointer-operation site the compiler could not
   resolve statically; the HW version implements the same logic in the
   storeP functional unit. *)

module Layout = Nvml_simmem.Layout
module Telemetry = Nvml_telemetry.Telemetry

(* Outcome counters for the dynamic checks: which branch each
   pointerAssignment took, and how many derefs needed an ra2va. *)
let c_pa_keep_relative = Telemetry.counter "check.pointer_assignment.keep_relative"
let c_pa_keep_virtual = Telemetry.counter "check.pointer_assignment.keep_virtual"
let c_pa_va2ra = Telemetry.counter "check.pointer_assignment.va2ra"
let c_pa_ra2va = Telemetry.counter "check.pointer_assignment.ra2va"
let c_deref = Telemetry.counter "check.deref"

(* determineY: format of a pointer value — one sign test. *)
let determine_y (p : Ptr.t) : Ptr.format = Ptr.format p

(* determineX: location of the cell a pointer designates.  A relative
   pointer is necessarily into NVM; a virtual address is classified by
   bit 47. *)
let determine_x (p : Ptr.t) : Ptr.location = Ptr.location p

let count_check (x : Xlate.t) =
  (Xlate.counters x).dynamic_checks <- (Xlate.counters x).dynamic_checks + 1

(* pointerAssignment(to, p) from Fig. 3: decide the representation in
   which the pointer value [value] must be stored into the cell
   designated by [dst]:

     destination in NVM  -> store relative form  (va2ra if needed)
     destination in DRAM -> store virtual form   (ra2va if needed)

   Returns the value to store.  [dst] itself may be in either format. *)
let pointer_assignment (x : Xlate.t) ~(dst : Ptr.t) ~(value : Ptr.t) : Ptr.t =
  count_check x;
  let tl = Telemetry.enabled () in
  match determine_x dst with
  | Nvm -> (
      count_check x;
      match determine_y value with
      | Relative ->
          if tl then Telemetry.incr c_pa_keep_relative;
          value
      | Virtual ->
          if tl then Telemetry.incr c_pa_va2ra;
          Xlate.va2ra x value)
  | Dram -> (
      count_check x;
      match determine_y value with
      | Relative ->
          if tl then Telemetry.incr c_pa_ra2va;
          Xlate.ra2va x value
      | Virtual ->
          if tl then Telemetry.incr c_pa_keep_virtual;
          value)

(* Resolve a pointer to the virtual address to issue to memory on a
   dereference, counting the dynamic check the SW version performs. *)
let checked_deref (x : Xlate.t) (p : Ptr.t) : int64 =
  count_check x;
  if Telemetry.enabled () then Telemetry.incr c_deref;
  Xlate.ra2va x p
