(* Address translation between the two pointer formats.

   Translation needs the kernel's view of persistent pools: the POT maps
   a pool ID to its current virtual base (backing [ra2va]) and the VAT
   maps a virtual address to the pool covering it (backing [va2ra]).
   The pool manager in [nvml_pool] supplies these as a first-class
   [provider] so this core library stays independent of it. *)

module Layout = Nvml_simmem.Layout

type provider = {
  pool_base : int -> int64 option;
      (* POT lookup: pool id -> mapped virtual base, None if detached *)
  pool_of_va : int64 -> (int * int64) option;
      (* VAT lookup: virtual address -> (pool id, pool base) of the pool
         whose mapping covers it, None if the VA is in no pool *)
  generation : int ref;
      (* bumped by the provider on every mapping change (create, open,
         detach, crash); lets translation memoize lookups safely *)
}

(* Conversion/check accounting, reported in Table V. *)
type counters = {
  mutable ra2va : int; (* relative -> absolute conversions *)
  mutable va2ra : int; (* absolute -> relative conversions *)
  mutable dynamic_checks : int; (* software format/location checks *)
  mutable volatile_escapes : int; (* DRAM VAs stored into NVM unconverted *)
}

let fresh_counters () =
  { ra2va = 0; va2ra = 0; dynamic_checks = 0; volatile_escapes = 0 }

let add_counters a b =
  a.ra2va <- a.ra2va + b.ra2va;
  a.va2ra <- a.va2ra + b.va2ra;
  a.dynamic_checks <- a.dynamic_checks + b.dynamic_checks;
  a.volatile_escapes <- a.volatile_escapes + b.volatile_escapes

type t = {
  provider : provider;
  counters : counters;
  (* One-entry pool -> base memo over [provider.pool_base].  Pointer
     chases hit the same pool again and again, so this caches the last
     successful POT lookup.  A hit also requires the provider's mapping
     generation to be unchanged, so remaps and detaches (including ones
     done directly on the pool manager) invalidate it automatically.
     [memo_pool = -1] means empty.  Counters are never short-circuited —
     they are functional outputs. *)
  mutable memo_pool : int;
  mutable memo_base : int64;
  mutable memo_gen : int;
}

let make provider =
  {
    provider;
    counters = fresh_counters ();
    memo_pool = -1;
    memo_base = 0L;
    memo_gen = -1;
  }

let counters t = t.counters

exception Pool_detached of int
(* ra2va on a pointer whose pool is no longer mapped (paper, Fig. 10). *)

exception Not_in_pool of int64
(* va2ra on an NVM virtual address not covered by any pool mapping. *)

(* Relative -> virtual.  NULL converts to NULL (C11: null pointers stay
   null under conversion); virtual-format input passes through. *)
let ra2va t (p : Ptr.t) : int64 =
  if not (Ptr.is_relative p) then p
  else begin
    t.counters.ra2va <- t.counters.ra2va + 1;
    let pool = Ptr.pool_of p in
    if pool = t.memo_pool && !(t.provider.generation) = t.memo_gen then
      Int64.add t.memo_base (Ptr.offset_of p)
    else
      match t.provider.pool_base pool with
      | Some base ->
          t.memo_pool <- pool;
          t.memo_base <- base;
          t.memo_gen <- !(t.provider.generation);
          Int64.add base (Ptr.offset_of p)
      | None -> raise (Pool_detached pool)
  end

(* Virtual -> relative.  A DRAM virtual address has no relative form;
   the paper's design stores it unchanged (sound within a run, dangling
   across restarts, exactly like storing a stack address in C).  We count
   the event so experiments can report it. *)
let va2ra t (p : Ptr.t) : Ptr.t =
  if Ptr.is_relative p then p
  else if Ptr.is_null p then Ptr.null
  else
    match Layout.region_of_va p with
    | Layout.Dram ->
        t.counters.volatile_escapes <- t.counters.volatile_escapes + 1;
        p
    | Layout.Nvm -> (
        t.counters.va2ra <- t.counters.va2ra + 1;
        match t.provider.pool_of_va p with
        | Some (pool, base) ->
            Ptr.make_relative ~pool ~offset:(Int64.sub p base)
        | None -> raise (Not_in_pool p))

(* The virtual address a pointer designates, whatever its format — the
   address actually issued to the memory system on a dereference. *)
let effective_va t (p : Ptr.t) : int64 = ra2va t p
