(* Deterministic media-error injection for the simulated NVM.

   Placement is a pure hash of (seed, frame, word): whether a location
   is faulty — and how — never depends on when or how often it is read.
   The only mutable state is the healed set (locations re-written since
   the fault surfaced) and local statistics, both owned by the injector
   instance, so per-domain injectors are share-nothing and a --jobs N
   run replays the exact faults of the sequential one. *)

module Physmem = Nvml_simmem.Physmem
module Layout = Nvml_simmem.Layout
module Telemetry = Nvml_telemetry.Telemetry

exception Media_error of string

type kind = Bit_flip | Poison_line | Transient

let all_kinds = [ Bit_flip; Poison_line; Transient ]

let kind_name = function
  | Bit_flip -> "flip"
  | Poison_line -> "poison"
  | Transient -> "transient"

let kind_of_name = function
  | "flip" -> Some Bit_flip
  | "poison" -> Some Poison_line
  | "transient" -> Some Transient
  | _ -> None

let words_per_line = 8
let retry_budget = 4

let c_flips = Telemetry.counter "media.read.flips"
let c_poisons = Telemetry.counter "media.read.poisons"
let c_transients = Telemetry.counter "media.read.transient_faults"
let c_retries = Telemetry.counter "media.read.retries"
let c_heals = Telemetry.counter "media.healed_words"

type t = {
  seed : int;
  rate : float;
  flips : bool;
  poisons : bool;
  transients : bool;
  region : (int * int) option;
  healed : (int, unit) Hashtbl.t; (* key: frame * words_per_page + word *)
  mutable flips_served : int;
  mutable poisons_served : int;
  mutable transients_served : int;
}

let create ?(kinds = all_kinds) ?region ~rate ~seed () =
  {
    seed;
    rate;
    flips = List.mem Bit_flip kinds;
    poisons = List.mem Poison_line kinds;
    transients = List.mem Transient kinds;
    region;
    healed = Hashtbl.create 64;
    flips_served = 0;
    poisons_served = 0;
    transients_served = 0;
  }

(* SplitMix64-style finalizer: decorrelates (seed, frame, word, salt)
   into 64 well-mixed bits.  The low 32 bits serve as a uniform draw
   against [rate]; higher bits pick the flipped bit / failure count. *)
let mix (a : int64) (b : int64) =
  let z = Int64.add (Int64.mul a 0x9E3779B97F4A7C15L) b in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash t ~salt ~frame ~index =
  mix
    (mix (Int64.of_int ((t.seed * 4) + salt)) (Int64.of_int frame))
    (Int64.of_int index)

let hits t h =
  Int64.to_float (Int64.logand h 0xFFFFFFFFL) /. 4294967296.0 < t.rate

let in_scope t frame =
  frame >= Layout.nvm_phys_frame_base
  && match t.region with None -> true | Some (lo, hi) -> frame >= lo && frame <= hi

(* Pure placement: poison (line-granular) shadows flip shadows
   transient, so one word has at most one fault kind. *)
let decide t ~frame ~word_index =
  if t.rate <= 0.0 || not (in_scope t frame) then None
  else if
    t.poisons && hits t (hash t ~salt:1 ~frame ~index:(word_index / words_per_line))
  then Some Poison_line
  else if t.flips && hits t (hash t ~salt:2 ~frame ~index:word_index) then
    Some Bit_flip
  else if t.transients && hits t (hash t ~salt:3 ~frame ~index:word_index) then
    Some Transient
  else None

let key ~frame ~word_index = (frame * Layout.words_per_page) + word_index
let healed t ~frame ~word_index = Hashtbl.mem t.healed (key ~frame ~word_index)

let on_read t ~frame ~word_index v =
  match decide t ~frame ~word_index with
  | None -> v
  | Some _ when healed t ~frame ~word_index -> v
  | Some Poison_line ->
      t.poisons_served <- t.poisons_served + 1;
      if Telemetry.enabled () then Telemetry.incr c_poisons;
      raise
        (Media_error
           (Fmt.str "uncorrectable poisoned line at frame %d line %d" frame
              (word_index / words_per_line)))
  | Some Bit_flip ->
      t.flips_served <- t.flips_served + 1;
      if Telemetry.enabled () then Telemetry.incr c_flips;
      let bit =
        Int64.to_int
          (Int64.logand
             (Int64.shift_right_logical (hash t ~salt:2 ~frame ~index:word_index) 32)
             63L)
      in
      Int64.logxor v (Int64.shift_left 1L bit)
  | Some Transient ->
      (* The device fails 1–2 reads deterministically, then delivers the
         data; the retry loop is internal, only its cost is visible. *)
      let fails =
        1
        + Int64.to_int
            (Int64.logand
               (Int64.shift_right_logical (hash t ~salt:3 ~frame ~index:word_index) 40)
               1L)
      in
      t.transients_served <- t.transients_served + 1;
      if Telemetry.enabled () then begin
        Telemetry.incr c_transients;
        Telemetry.add c_retries fails
      end;
      if fails >= retry_budget then
        raise
          (Media_error
             (Fmt.str "read of frame %d word %d failed %d retries" frame
                word_index retry_budget))
      else v

(* A store re-establishes the cell: the fault is gone until the media
   model is re-seeded.  Only locations that actually carry a fault are
   tracked, so the healed set stays small. *)
let on_write t ~frame ~word_index =
  match decide t ~frame ~word_index with
  | None -> ()
  | Some _ ->
      let k = key ~frame ~word_index in
      if not (Hashtbl.mem t.healed k) then begin
        Hashtbl.replace t.healed k ();
        if Telemetry.enabled () then Telemetry.incr c_heals
      end

let attach phys t =
  Physmem.set_media_read phys
    (Some (fun ~frame ~word_index v -> on_read t ~frame ~word_index v));
  Physmem.set_media_write_note phys
    (Some (fun ~frame ~word_index -> on_write t ~frame ~word_index))

let detach phys =
  Physmem.set_media_read phys None;
  Physmem.set_media_write_note phys None

let flips_served t = t.flips_served
let poisons_served t = t.poisons_served
let transients_served t = t.transients_served
let healed_words t = Hashtbl.length t.healed
