(** Seeded, deterministic NVM media-error injector.

    Real persistent-memory devices return wrong or unreadable bytes:
    wear-induced single-bit flips, uncorrectable poisoned cache lines,
    and transient read failures that clear after a retry.  This module
    models all three as a {e pure function of [(seed, frame, word)]} —
    fault placement does not depend on access order, so a crash/reopen
    cycle, a re-run, or a different [--jobs] split replays bit-identical
    faults.  Each injector instance owns all of its mutable state
    (healed words, local fault counts), so per-domain instances are
    share-nothing.

    A fault lives at a media location until the location is written
    again: any store through the normal memory path re-establishes the
    cell ("heals" it), exactly like rewriting a poisoned line on real
    hardware.  Raw {!Nvml_simmem.Physmem.poke} writes do {e not} heal —
    that is the backdoor tests use to plant corruption by hand. *)

exception Media_error of string
(** Raised on an uncorrectable media fault (a poisoned line, a retry
    budget exhausted) and by the integrity layer above ([Freelist],
    [Pmop], [Scrub]) when checksummed metadata fails verification or a
    degraded pool refuses a write.  Typed so callers can distinguish
    device trouble from logic bugs ([Corrupt_arena]). *)

type kind =
  | Bit_flip  (** a single flipped bit in one 64-bit word *)
  | Poison_line  (** an uncorrectable 64-byte line: reads raise *)
  | Transient  (** a read that fails, then succeeds within the retry budget *)

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_name : string -> kind option

type t

val create :
  ?kinds:kind list ->
  ?region:int * int ->
  rate:float ->
  seed:int ->
  unit ->
  t
(** [create ~rate ~seed ()] — [rate] is the per-word (per-line for
    poison) fault probability for each enabled [kind]; [region]
    restricts injection to an inclusive physical frame range.  Faults
    are only ever injected into NVM frames, whatever the region. *)

val attach : Nvml_simmem.Physmem.t -> t -> unit
(** Install the injector's read/write hooks into the machine.  The
    hooks survive {!Nvml_simmem.Physmem.crash}: the media does not
    forget its defects just because power was lost. *)

val detach : Nvml_simmem.Physmem.t -> unit

val decide : t -> frame:int -> word_index:int -> kind option
(** The pure placement function: which fault, if any, lives at this
    word when it has not been healed.  This is the injection ground
    truth the bench coverage matrix is scored against. *)

val healed : t -> frame:int -> word_index:int -> bool

val words_per_line : int
(** Words per poison granule (a 64-byte line = 8 words). *)

val retry_budget : int
(** Reads retried at most this many times before a transient fault
    becomes a {!Media_error}.  Injected transients always clear within
    the budget; the counter [media.read.retries] records the cost. *)

(** {2 Per-injector fault statistics}

    Local counts (independent of the telemetry gate) for reports. *)

val flips_served : t -> int
val poisons_served : t -> int
val transients_served : t -> int
val healed_words : t -> int
