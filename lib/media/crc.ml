(* CRC-32 (IEEE, reflected, poly 0xEDB88320) over little-endian byte
   streams of 64-bit words.  The 256-entry table is built exactly once
   at module init and holds plain (unboxed) native ints — CRC-32 state
   fits in 32 bits, so 63-bit ints carry it losslessly and the hot loop
   does no Int32 boxing.  All entry points are pure after init. *)

let table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

let[@inline] step crc byte =
  Array.unsafe_get table ((crc lxor byte) land 0xFF) lxor (crc lsr 8)

let crc32_bytes_of_word crc ~bytes (w : int64) =
  let crc = ref crc in
  for i = 0 to bytes - 1 do
    let b = Int64.to_int (Int64.shift_right_logical w (8 * i)) land 0xFF in
    crc := step !crc b
  done;
  !crc

let finish crc = crc lxor 0xFFFFFFFF

let crc32_words words =
  finish
    (List.fold_left (fun c w -> crc32_bytes_of_word c ~bytes:8 w) 0xFFFFFFFF words)

let crc16_low48 w =
  let c = finish (crc32_bytes_of_word 0xFFFFFFFF ~bytes:6 w) in
  (c lxor (c lsr 16)) land 0xFFFF
