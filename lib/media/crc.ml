(* CRC-32 (IEEE, reflected, poly 0xEDB88320) over little-endian byte
   streams of 64-bit words.  A 256-entry table is built once at module
   init; all entry points are pure after that. *)

let table =
  let t = Array.make 256 0l in
  for n = 0 to 255 do
    let c = ref (Int32.of_int n) in
    for _ = 0 to 7 do
      c :=
        if Int32.logand !c 1l <> 0l then
          Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
        else Int32.shift_right_logical !c 1
    done;
    t.(n) <- !c
  done;
  t

let step crc byte =
  Int32.logxor
    table.(Int32.to_int (Int32.logand (Int32.logxor crc (Int32.of_int byte)) 0xFFl))
    (Int32.shift_right_logical crc 8)

let crc32_bytes_of_word crc ~bytes (w : int64) =
  let crc = ref crc in
  for i = 0 to bytes - 1 do
    let b = Int64.to_int (Int64.shift_right_logical w (8 * i)) land 0xFF in
    crc := step !crc b
  done;
  !crc

let finish crc = Int32.to_int (Int32.logxor crc 0xFFFFFFFFl) land 0xFFFFFFFF

let crc32_words words =
  finish (List.fold_left (fun c w -> crc32_bytes_of_word c ~bytes:8 w) 0xFFFFFFFFl words)

let crc16_low48 w =
  let c = finish (crc32_bytes_of_word 0xFFFFFFFFl ~bytes:6 w) in
  (c lxor (c lsr 16)) land 0xFFFF
