(** Table-driven CRC-32 (IEEE 802.3 polynomial, reflected) over 64-bit
    words, plus a folded 16-bit variant sized for the spare high bits of
    an allocator block header.  Pure functions: the integrity layer and
    the scrub engine must agree on checksums across domains, so nothing
    here may depend on ambient state. *)

val crc32_words : int64 list -> int
(** CRC-32 of the words' little-endian byte sequences, in [0, 2^32). *)

val crc16_low48 : int64 -> int
(** 16-bit checksum of the low 48 bits of a word (the storable part of
    a block header), in [0, 2^16).  Folded from the CRC-32 so single-bit
    errors anywhere in the 48 bits are always detected. *)
