(* A fixed-size domain worker pool for running independent simulation
   cells in parallel.

   A *cell* is a self-contained simulation: it builds its own
   [Runtime.t] machine (memory, caches, translation hardware, RNG state
   seeded from the workload spec), runs, and returns a result value.
   Cells share nothing, so running them on worker domains is
   deterministic: [run] returns results in submission order, and the
   values are bit-identical to a sequential execution regardless of the
   number of workers or the interleaving the scheduler picks.

   With [jobs = 1] no domains are spawned at all and [run] executes the
   tasks inline in the calling domain, preserving the exact sequential
   behaviour (including any output ordering of the tasks themselves).

   Telemetry: when recording is enabled, every task runs in a fresh
   telemetry sink, and [run] merges the task sinks into the caller's
   current sink in submission order after all tasks finish.  Counters
   and histograms commute, and each task's bounded event ring keeps its
   own last-capacity suffix, so the merged stream is exactly what an
   inline [jobs = 1] execution would have accumulated — [--jobs N]
   telemetry is bit-identical to [--jobs 1]. *)

module Telemetry = Nvml_telemetry.Telemetry

type task = unit -> unit

type t = {
  jobs : int;
  mutable workers : unit Domain.t array; (* empty when [jobs = 1] *)
  queue : task Queue.t;
  lock : Mutex.t;
  work_available : Condition.t;
  mutable live : bool;
}

(* Worker body: drain the queue until shutdown. *)
let rec worker_loop t =
  Mutex.lock t.lock;
  let rec next () =
    if not t.live then None
    else
      match Queue.take_opt t.queue with
      | Some task -> Some task
      | None ->
          Condition.wait t.work_available t.lock;
          next ()
  in
  let task = next () in
  Mutex.unlock t.lock;
  match task with
  | None -> ()
  | Some task ->
      task ();
      worker_loop t

let default_jobs () =
  match Sys.getenv_opt "NVML_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> invalid_arg "NVML_JOBS must be a positive integer")
  | None -> Domain.recommended_domain_count ()

let create ?jobs () =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let t =
    {
      jobs;
      workers = [||];
      queue = Queue.create ();
      lock = Mutex.create ();
      work_available = Condition.create ();
      live = true;
    }
  in
  if jobs > 1 then
    t.workers <- Array.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

(* Run every task, returning results in submission order.  If any task
   raised, the exception of the earliest-submitted failed task is
   re-raised (with its backtrace) after all tasks have finished — a
   deterministic choice independent of scheduling. *)
let run (type a) t (fs : (unit -> a) list) : a list =
  if not t.live then invalid_arg "Pool.run: pool is shut down";
  match fs with
  | [] -> []
  | fs when t.jobs = 1 || List.length fs = 1 -> List.map (fun f -> f ()) fs
  | fs ->
      let n = List.length fs in
      let results : (a, exn * Printexc.raw_backtrace) result option array =
        Array.make n None
      in
      (* Per-task telemetry sinks, merged below in submission order. *)
      let sinks =
        if Telemetry.enabled () then
          Some (Array.init n (fun _ -> Telemetry.fresh_sink ()))
        else None
      in
      let remaining = ref n in
      let all_done = Condition.create () in
      List.iteri
        (fun i f ->
          let task () =
            let body () =
              try Ok (f ())
              with e -> Error (e, Printexc.get_raw_backtrace ())
            in
            let r =
              match sinks with
              | Some sinks -> Telemetry.run_with_sink sinks.(i) body
              | None -> body ()
            in
            Mutex.lock t.lock;
            results.(i) <- Some r;
            decr remaining;
            if !remaining = 0 then Condition.signal all_done;
            Mutex.unlock t.lock
          in
          Mutex.lock t.lock;
          Queue.add task t.queue;
          Condition.signal t.work_available;
          Mutex.unlock t.lock)
        fs;
      Mutex.lock t.lock;
      while !remaining > 0 do
        Condition.wait all_done t.lock
      done;
      Mutex.unlock t.lock;
      (match sinks with
      | Some sinks ->
          let dst = Telemetry.current_sink () in
          Array.iter (fun s -> Telemetry.merge_into ~dst s) sinks
      | None -> ());
      Array.to_list results
      |> List.map (function
           | Some (Ok v) -> v
           | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false)

(* Map over a list through the pool. *)
let map t f xs = run t (List.map (fun x () -> f x) xs)

let shutdown t =
  if t.live then begin
    Mutex.lock t.lock;
    t.live <- false;
    Condition.broadcast t.work_available;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.workers
  end
