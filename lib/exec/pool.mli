(** A fixed-size domain worker pool for running independent simulation
    cells in parallel.

    Cells are share-nothing (each builds its own [Runtime.t] machine and
    derives all randomness from its workload spec's seed), so results
    are bit-identical to a sequential run regardless of worker count or
    scheduling.  [run] returns results in submission order.

    When telemetry recording is enabled, each task runs in a fresh
    telemetry sink and [run] merges the sinks into the caller's current
    sink in submission order at the join — so telemetry, too, is
    bit-identical to a sequential run. *)

type t

val default_jobs : unit -> int
(** The [NVML_JOBS] environment variable if set (must be a positive
    integer), else [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs] worker domains (default {!default_jobs}).
    With [jobs = 1] no domains are spawned; {!run} executes inline in
    the calling domain, preserving exact sequential behaviour. *)

val jobs : t -> int

val run : t -> (unit -> 'a) list -> 'a list
(** Execute every task, returning results in submission order.  If
    tasks raised, the exception of the earliest-submitted failed task
    is re-raised after all tasks finish — deterministic regardless of
    scheduling.  Not reentrant: call from the owning domain only.
    @raise Invalid_argument after {!shutdown}. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] is [run t] over [fun () -> f x]. *)

val shutdown : t -> unit
(** Stop and join the workers.  Idempotent. *)
