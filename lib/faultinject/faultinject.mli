(** Systematic crash-point fault injection for the persistence stack.

    A reference pass counts every persistence-relevant event
    ({!Nvml_simmem.Fi.event}) of a workload and snapshots the structure
    at every operation boundary; then each chosen event index is
    replayed on a fresh machine that loses power exactly there (the
    interrupted store never lands, the media freezes, DRAM and all
    mappings vanish).  After reboot, pool re-open and [Txn.recover],
    the checker validates recovery status, structural invariants,
    pointer reachability, atomicity against the pre/post-transaction
    snapshots, and persistent-freelist consistency.

    Operations run under [Txn.instrument]: plain [Runtime.store_*]
    calls in legacy structure code are undo-logged transparently, so
    the sweep exercises exactly the user-transparent persistence story
    the paper argues for. *)

module Runtime = Nvml_runtime.Runtime
module Txn = Nvml_runtime.Txn
module Snapshot = Nvml_structures.Snapshot

(** {1 Workloads} *)

type instance = {
  header : Nvml_core.Ptr.t;
  step : int -> unit;  (** run operation [i] (wrapped in a txn by the engine) *)
  snapshot : unit -> Snapshot.t;
  check : unit -> unit;  (** raise on broken structural invariants *)
}

type workload = {
  name : string;
  ops : int;
  setup : Runtime.t -> pool:int -> instance;
  reattach : Runtime.t -> Nvml_core.Ptr.t -> instance;
}

val counter_workload : ?cells:int -> ?ops:int -> unit -> workload
(** Flat persistent counter array; each op is a transaction of three
    scattered stores.  The smallest interesting sweep target. *)

val kv_workload :
  ?structure:string -> ?records:int -> ?ops:int -> ?seed:int -> unit -> workload
(** The KV-harness shape: populate a Table III structure ([structure]
    as in [Registry.find_map]), then replay a YCSB stream with every
    seventh op replaced by a remove (so pfree is exercised too). *)

(** {1 Sweep specification} *)

type spec = {
  every_n : int;  (** crash at events [0, n, 2n, ...] when [at] is empty *)
  at : int list;  (** explicit event indices (out-of-range ones dropped) *)
  torn : bool;
      (** additionally tear the interrupted word (seeded byte mix of
          old/new) — except undo-log words, which the log protocol's
          8-byte-atomicity assumption covers *)
  seed : int;  (** drives the torn byte masks *)
  max_points : int option;  (** bound the sweep (for smoke runs) *)
  break_recovery : bool;
      (** checker self-test: skip [Txn.recover] after the crash and
          let the checker prove it notices *)
}

val default_spec : spec
(** Every event, no tearing, seed 1, unbounded, recovery intact. *)

(** {1 Results} *)

type tally = {
  pm_stores : int;
  storeps : int;
  log_appends : int;
  meta_writes : int;
}

type outcome = {
  point : int;
  op : int;
  kind : string;
  recovery : Txn.recovery;
  torn_injected : bool;
  violations : string list;
}

type report = {
  workload : string;
  ops : int;
  events : int;
  tally : tally;
  outcomes : outcome list;  (** in event-index order *)
  clean : int;
  rolled_back : int;
  torn_injected : int;
  violations : (int * string) list;
}

val run :
  ?par:((unit -> outcome) list -> outcome list) ->
  ?mode:Runtime.mode ->
  ?spec:spec ->
  ?timing:bool ->
  workload ->
  report
(** Run the sweep.  Each crash pass builds a share-nothing machine, so
    [par] (e.g. [Nvml_exec.Pool.run pool]) may run them on worker
    domains: results are in submission order and identical to the
    sequential default.  [mode] defaults to [Hw].  [timing] defaults to
    [false]: crash-point enumeration and recovery verdicts are
    functional, so the sweep uses fast functional simulation; pass
    [true] for the cycle-accurate core (identical report, slower).
    @raise Invalid_argument for [Volatile] mode. *)

val pp_tally : tally Fmt.t

val pp_report : report Fmt.t
(** Multi-line summary inside a vertical box: counts per event kind,
    recovery totals, and every violation with its crash point. *)
