(** Systematic crash-point fault injection for the persistence stack.

    A reference pass counts every persistence-relevant event
    ({!Nvml_simmem.Fi.event}) of a workload and snapshots the structure
    at every operation boundary; then each chosen event index is
    replayed on a fresh machine that loses power exactly there (the
    interrupted store never lands, the media freezes, DRAM and all
    mappings vanish).  After reboot, pool re-open and [Txn.recover],
    the checker validates recovery status, structural invariants,
    pointer reachability, atomicity against the pre/post-transaction
    snapshots, and persistent-freelist consistency.

    Operations run under [Txn.instrument]: plain [Runtime.store_*]
    calls in legacy structure code are undo-logged transparently, so
    the sweep exercises exactly the user-transparent persistence story
    the paper argues for.

    Under a relaxed persistency model ([?persist]) the reference pass
    doubles as a {e contract oracle}: a pure pass over the µ-event
    schedule that predicts, for every crash point, the exact recovery
    verdict and the exact operation boundary the recovered state must
    equal (the legitimately lost op suffix).  Crash passes then check
    the observation against the prediction in both directions — losing
    more than predicted and retaining more than predicted are both
    hard violations. *)

module Runtime = Nvml_runtime.Runtime
module Persist = Nvml_runtime.Persist
module Txn = Nvml_runtime.Txn
module Snapshot = Nvml_structures.Snapshot

(** {1 Workloads} *)

type instance = {
  header : Nvml_core.Ptr.t;
  step : int -> unit;  (** run operation [i] (wrapped in a txn by the engine) *)
  snapshot : unit -> Snapshot.t;
  check : unit -> unit;  (** raise on broken structural invariants *)
}

type workload = {
  name : string;
  ops : int;
  setup : Runtime.t -> pool:int -> instance;
  reattach : Runtime.t -> Nvml_core.Ptr.t -> instance;
}

val counter_workload : ?cells:int -> ?ops:int -> unit -> workload
(** Flat persistent counter array; each op is a transaction of three
    scattered stores.  The smallest interesting sweep target. *)

val kv_workload :
  ?structure:string -> ?records:int -> ?ops:int -> ?seed:int -> unit -> workload
(** The KV-harness shape: populate a Table III structure ([structure]
    as in [Registry.find_map]), then replay a YCSB stream with every
    seventh op replaced by a remove (so pfree is exercised too). *)

(** {1 Sweep specification} *)

type spec = {
  every_n : int;  (** crash at events [0, n, 2n, ...] when [at] is empty *)
  at : int list;
      (** explicit event indices; an out-of-range index raises
          [Invalid_argument] naming the valid range rather than
          silently running zero passes *)
  torn : bool;
      (** additionally tear the interrupted word (seeded byte mix of
          old/new) — except undo-log words, which the log protocol's
          8-byte-atomicity assumption covers *)
  seed : int;  (** drives the torn byte masks *)
  max_points : int option;  (** bound the sweep (for smoke runs) *)
  break_recovery : bool;
      (** checker self-test: skip [Txn.recover] after the crash and
          let the checker prove it notices *)
}

val default_spec : spec
(** Every event, no tearing, seed 1, unbounded, recovery intact. *)

(** {1 Results} *)

type tally = {
  pm_stores : int;
  storeps : int;
  log_appends : int;
  meta_writes : int;
  flushes : int;  (** drain [Flush_line] µ-events (relaxed models only) *)
  fences : int;  (** drain [Fence] µ-events (relaxed models only) *)
}

type outcome = {
  point : int;
  op : int;
  kind : string;
  recovery : Txn.recovery;
  lost_ops : int;
      (** committed {e mutating} operations whose effects the
          persistency model legitimately let die at this point —
          read-only ops leave nothing to lose and are not counted
          (always 0 under eager) *)
  torn_injected : bool;
  violations : string list;
}

type report = {
  workload : string;
  persist : string;  (** {!Persist.model_name} of the swept model *)
  ops : int;
  events : int;
  tally : tally;
  outcomes : outcome list;  (** in event-index order *)
  clean : int;
  rolled_back : int;
  suffix_lost : int;  (** points at which >= 1 committed op was lost *)
  torn_injected : int;
  violations : (int * string) list;
}

val run :
  ?par:((unit -> outcome) list -> outcome list) ->
  ?mode:Runtime.mode ->
  ?persist:Persist.model ->
  ?spec:spec ->
  ?timing:bool ->
  workload ->
  report
(** Run the sweep.  Each crash pass builds a share-nothing machine, so
    [par] (e.g. [Nvml_exec.Pool.run pool]) may run them on worker
    domains: results are in submission order and identical to the
    sequential default.  [mode] defaults to [Hw]; [persist] to
    [Persist.Eager] (per-operation atomicity, the historical checker,
    now expressed as the oracle's degenerate case).  [timing] defaults
    to [false]: crash-point enumeration and recovery verdicts are
    functional, so the sweep uses fast functional simulation; pass
    [true] for the cycle-accurate core (identical report, slower).
    @raise Invalid_argument for [Volatile] mode or an out-of-range
    [spec.at] index. *)

val pp_tally : tally Fmt.t

val pp_report : report Fmt.t
(** Multi-line summary inside a vertical box: counts per event kind,
    recovery totals, and every violation with its crash point. *)

(** {1 Multi-core durability sweep}

    Crash-at-any-event verification for the durably-linearizable
    concurrent structures ([Conc_counter], [Conc_list]) on the
    multi-core machine.  No transactions: the oracle is the
    crash-resilient-object criterion — after a crash at any enumerated
    persistence event of any core, the recovered state must lie
    between the completed and the invoked operation sets (counter
    value within [sum completed, sum invoked]; per-core list contents
    an insertion-order prefix of length within the same bounds).  The
    reference pass records the seeded interleaving's invoked/completed
    state at every event; each crash pass replays the identical
    schedule on a share-nothing machine. *)

type conc_spec = {
  cores : int;
  ops_per_core : int;
  sched_seed : int;  (** drives the µ-event interleaving *)
  conc_every_n : int;  (** crash at events [0, n, 2n, ...] *)
  conc_max_points : int option;  (** bound the sweep (for smoke runs) *)
}

val default_conc_spec : conc_spec
(** 2 cores, 8 ops per core, scheduler seed 1, every event. *)

type conc_outcome = {
  conc_point : int;
  conc_kind : string;
  conc_violations : string list;
}

type conc_report = {
  conc_cores : int;
  conc_ops : int;
  conc_events : int;
  conc_outcomes : conc_outcome list;  (** in event-index order *)
  conc_violation_list : (int * string) list;
}

val run_conc :
  ?par:((unit -> conc_outcome) list -> conc_outcome list) ->
  ?mode:Runtime.mode ->
  ?persist:Persist.model ->
  ?spec:conc_spec ->
  ?timing:bool ->
  unit ->
  conc_report
(** Run the multi-core sweep.  Same parallelism and determinism
    contract as {!run}: crash passes are share-nothing, so [par] may
    run them on worker domains with results identical to the
    sequential default ([--jobs N == --jobs 1]).  Under a relaxed
    [persist] model the per-core epochs drain through the shared
    buffer, and the recovered counter/chain must equal the oracle's
    durable-value prediction at every point (the durable-linearizability
    bounds are additionally enforced under [Eager]).
    @raise Invalid_argument for [Volatile] mode. *)

val pp_conc_report : conc_report Fmt.t
