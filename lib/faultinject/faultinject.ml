(* Systematic crash-point fault injection for the persistence stack.

   The engine runs a workload twice over.  A *reference* pass counts
   every persistence-relevant event (NVM word stores, storeP
   retirements, undo-log appends, allocator-metadata writes — see
   [Nvml_simmem.Fi]) and records the structure's contents at every
   operation boundary.  Then, for each chosen event index k, a *crash*
   pass replays the identical workload on a fresh machine and kills the
   power at event k: the fi hook raises before the store lands and the
   media is frozen so nothing written during unwinding reaches it.  The
   machine is then rebooted ([Runtime.crash_and_restart] — DRAM,
   mappings and microarchitectural state gone), the pool re-opened at a
   skewed base, the undo log recovered, and the checker validates:

     - recovery returns [Clean] or [Rolled_back n];
     - the structure's invariants hold and its contents walk does not
       dangle (every pointer reached through the re-opened pool still
       resolves);
     - atomicity: contents equal the pre-transaction snapshot (always
       acceptable; mandatory when [Rolled_back n > 0]) or the
       post-transaction snapshot (acceptable for [Clean] and
       [Rolled_back 0], which happen when the crash splits the two
       commit stores);
     - the persistent freelist is consistent and its allocated-byte
       total matches the pre- or post-transaction figure under the same
       rule.

   Workloads run their operations under [Txn.instrument], the paper's
   "compiler inserts the necessary runtime logging": structure code
   calls plain [Runtime.store_*] and every pool store (and pmalloc /
   pfree metadata write) is undo-logged transparently.

   Torn writes: with [torn] set, the word interrupted at the crash
   point is additionally replaced by a seeded byte-granular mix of its
   old and new value ([Fi.torn_word]) — unless the word belongs to the
   undo log itself, which relies on the 8-byte-atomicity guarantee real
   NVM provides for aligned word stores (the same assumption PMDK's
   undo log makes).  Every torn data word was undo-logged before being
   stored, so recovery must heal it; the checker verifies that.  Under
   a relaxed persistency model the interesting tear moves to the
   [Flush_line] µ-events: a crash mid-drain leaves one word of the
   interrupted line as a byte mix of its durable and its buffered
   value.

   Contract oracle.  Under a relaxed persistency model ([--persist
   epoch:N | lazy]) losing an op suffix at a crash is *legitimate* —
   the model's contract is weaker, not broken.  The reference pass
   therefore doubles as a pure oracle over the µ-event schedule: it
   tracks the durable values of the undo log's control words (which
   are write-through under every model) and predicts, for every event
   index, the exact recovery outcome ([Clean] / [Rolled_back n]) and
   the exact op boundary whose snapshot the recovered state must
   equal.  The crash passes then check the observed recovery against
   the prediction in both directions: a state that lost more than
   predicted AND a state that retained more than predicted are both
   hard failures.  The eager model is the degenerate case: the oracle
   predicts per-operation atomicity, strictly subsuming the pre/post
   snapshot rule described above. *)

module Layout = Nvml_simmem.Layout
module Mem = Nvml_simmem.Mem
module Physmem = Nvml_simmem.Physmem
module Fi = Nvml_simmem.Fi
module Ptr = Nvml_core.Ptr
module Xlate = Nvml_core.Xlate
module Pmop = Nvml_pool.Pmop
module Runtime = Nvml_runtime.Runtime
module Persist = Nvml_runtime.Persist
module Site = Nvml_runtime.Site
module Txn = Nvml_runtime.Txn
module Intf = Nvml_structures.Intf
module Registry = Nvml_structures.Registry
module Snapshot = Nvml_structures.Snapshot
module Workload = Nvml_ycsb.Workload
module Telemetry = Nvml_telemetry.Telemetry

let site = Site.make ~static:true "faultinject"

let c_points = Telemetry.counter "fi.points"
let c_clean = Telemetry.counter "fi.recovered_clean"
let c_rolled_back = Telemetry.counter "fi.recovered_rolled_back"
let c_torn = Telemetry.counter "fi.torn_injected"
let c_violations = Telemetry.counter "fi.violations"
let c_suffix_lost = Telemetry.counter "fi.suffix_lost"

(* --- workloads ---------------------------------------------------------- *)

(* A bootable instance: [step i] runs operation [i] (the engine wraps
   it in a transaction), [snapshot] walks the contents, [check] raises
   on broken structural invariants. *)
type instance = {
  header : Ptr.t;
  step : int -> unit;
  snapshot : unit -> Snapshot.t;
  check : unit -> unit;
}

type workload = {
  name : string;
  ops : int;
  setup : Runtime.t -> pool:int -> instance;
  reattach : Runtime.t -> Ptr.t -> instance;
}

(* A flat array of persistent counters, [ops] transactions of three
   scattered stores each — the smallest workload whose transactions
   have interesting intermediate states. *)
let counter_workload ?(cells = 8) ?(ops = 3) () =
  let o_cell i = 8 + (i * 8) in
  let instance rt header =
    {
      header;
      step =
        (fun i ->
          let v = Int64.of_int (i + 1) in
          Runtime.store_word rt ~site header ~off:(o_cell (i mod cells)) v;
          Runtime.store_word rt ~site header ~off:(o_cell ((i + 3) mod cells)) v;
          Runtime.store_word rt ~site header
            ~off:(o_cell ((i + 5) mod cells))
            (Int64.neg v));
      snapshot =
        (fun () ->
          List.init cells (fun i ->
              ( Int64.of_int i,
                Runtime.load_word rt ~site header ~off:(o_cell i) )));
      check =
        (fun () ->
          let n = Runtime.load_word rt ~site header ~off:0 in
          if n <> Int64.of_int cells then
            Fmt.failwith "counter header: %Ld cells, expected %d" n cells);
    }
  in
  {
    name = "counter";
    ops;
    setup =
      (fun rt ~pool ->
        let header =
          Runtime.alloc rt ~pool ~persistent:true (8 + (cells * 8))
        in
        Runtime.store_word rt ~site header ~off:0 (Int64.of_int cells);
        for i = 0 to cells - 1 do
          Runtime.store_word rt ~site header ~off:(o_cell i) 0L
        done;
        instance rt header);
    reattach = (fun rt header -> instance rt header);
  }

(* The KV harness shape: populate a Table III structure, then replay a
   YCSB stream, with every seventh slot replaced by a remove so
   pfree's freelist updates are exercised under rollback too. *)
let kv_workload ?(structure = "RB") ?(records = 30) ?(ops = 100) ?(seed = 42)
    () =
  let (module M : Intf.ORDERED_MAP) = Registry.find_map structure in
  let spec =
    {
      Workload.paper_default with
      record_count = records;
      operation_count = ops;
      seed;
    }
  in
  let op_arr =
    let acc = ref [] in
    Workload.iter_ops spec (fun op -> acc := op :: !acc);
    Array.of_list (List.rev !acc)
  in
  let instance m =
    {
      header = M.header m;
      step =
        (fun i ->
          if i mod 7 = 3 then
            ignore (M.remove m (Workload.key_of_index (i * 3 mod records)))
          else
            match op_arr.(i) with
            | Workload.Read k -> ignore (M.find m k)
            | Workload.Update (k, v) | Workload.Insert (k, v) ->
                M.insert m ~key:k ~value:v
            | Workload.Scan (start, len) ->
                for j = start to start + len - 1 do
                  ignore (M.find m (Workload.key_of_index j))
                done
            | Workload.Rmw (k, d) ->
                let v =
                  match M.find m k with Some v -> v | None -> 0L
                in
                M.insert m ~key:k ~value:(Int64.add v d));
      snapshot = (fun () -> Snapshot.capture (fun f -> M.iter m f));
      check = (fun () -> M.check_invariants m);
    }
  in
  {
    name = "kv-" ^ M.name;
    ops = Array.length op_arr;
    setup =
      (fun rt ~pool ->
        let m = M.create rt (Runtime.Pool_region pool) in
        for i = 0 to records - 1 do
          M.insert m ~key:(Workload.key_of_index i) ~value:(Int64.of_int i)
        done;
        instance m);
    reattach = (fun rt header -> instance (M.attach rt header));
  }

(* --- sweep specification and report ------------------------------------- *)

type spec = {
  every_n : int;  (* crash at events 0, n, 2n, ... (when [at] is empty) *)
  at : int list;  (* explicit event indices instead *)
  torn : bool;
  seed : int;
  max_points : int option;
  break_recovery : bool;
      (* checker self-test: skip Txn.recover and let the checker prove
         it notices the un-rolled-back state *)
}

let default_spec =
  {
    every_n = 1;
    at = [];
    torn = false;
    seed = 1;
    max_points = None;
    break_recovery = false;
  }

type tally = {
  pm_stores : int;
  storeps : int;
  log_appends : int;
  meta_writes : int;
  flushes : int;  (* drain Flush_line µ-events (relaxed models only) *)
  fences : int;  (* drain Fence µ-events (relaxed models only) *)
}

type outcome = {
  point : int;  (* the event index the crash interrupted *)
  op : int;  (* the operation that event belonged to *)
  kind : string;  (* Fi.kind_name of the interrupted event *)
  recovery : Txn.recovery;
  lost_ops : int;  (* committed ops whose effects the model let die *)
  torn_injected : bool;
  violations : string list;
}

type report = {
  workload : string;
  persist : string;  (* Persist.model_name of the swept model *)
  ops : int;
  events : int;
  tally : tally;
  outcomes : outcome list;
  clean : int;
  rolled_back : int;
  suffix_lost : int;  (* points at which >= 1 committed op was lost *)
  torn_injected : int;
  violations : (int * string) list;  (* (point, message) *)
}

(* --- engine ------------------------------------------------------------- *)

let pool_size = 1 lsl 22

exception Crash_now
(* Raised from the fi hook at the crash point; private to the engine
   (and never escapes: the replay loop catches it). *)

(* Build a fresh machine, pool, workload instance and instrumented
   transaction; anchor [txn header; structure header] in a root block.
   Under a relaxed model the undo log covers a whole epoch instead of a
   single operation (a lazy run is one epoch!), so the log gets a much
   larger arena; setup is then drained so the machine starts from a
   fully durable state — the drain fires before the fi hook installs,
   so reference and crash passes count identical event schedules. *)
let boot ~mode ~persist w =
  let rt = Runtime.create ~mode ~persist () in
  let pool = Runtime.create_pool rt ~name:"fi" ~size:pool_size in
  let inst = w.setup rt ~pool in
  let txn =
    if Persist.is_eager persist then Txn.create rt ~pool ()
    else Txn.create rt ~pool ~capacity:16384 ()
  in
  let root = Runtime.alloc rt ~pool ~persistent:true 16 in
  Runtime.store_ptr rt ~site root ~off:0 (Txn.header txn);
  Runtime.store_ptr rt ~site root ~off:8 inst.header;
  Runtime.set_root rt ~site ~pool root;
  Txn.instrument txn;
  Runtime.persist_sync rt;
  (rt, pool, txn, inst)

(* One workload operation: a transaction, then the persistency model's
   op-boundary hook (which drains the epoch every [interval] ops). *)
let run_op rt txn inst i =
  Txn.begin_ txn;
  inst.step i;
  Txn.commit txn;
  Runtime.persist_op_boundary rt

(* The physical (frame, word) spans occupied by the undo log.  Pool
   frames are stable across crashes, so spans computed at boot remain
   valid at the crash point even though the virtual base changes on
   re-open. *)
let log_spans rt txn =
  let va = Xlate.ra2va (Runtime.xlate rt) (Txn.header txn) in
  let bytes = Txn.log_bytes txn in
  let spans = ref [] in
  let off = ref 0 in
  while !off < bytes do
    let pa =
      Mem.translate_pa_exn (Runtime.mem rt) (Int64.add va (Int64.of_int !off))
    in
    let frame = pa lsr Layout.page_shift in
    let w0 = (pa land (Layout.page_size - 1)) lsr 3 in
    let len =
      min (Layout.page_size - (pa land (Layout.page_size - 1))) (bytes - !off)
    in
    spans := (frame, w0, w0 + ((len - 1) lsr 3)) :: !spans;
    off := !off + len
  done;
  !spans

let in_spans spans ~frame ~word_index =
  List.exists
    (fun (f, w0, w1) -> f = frame && word_index >= w0 && word_index <= w1)
    spans

type reference = {
  total : int;
  ref_tally : tally;
  op_start : int array;  (* event index at which each op began *)
  expected : Snapshot.t array;  (* contents after ops [0, i) *)
  alloc_bytes : int64 array;  (* pool allocated bytes after ops [0, i) *)
  mutated : bool array;  (* op i changed the contents or the allocation *)
  pred_recovery : Txn.recovery array;
      (* oracle: the exact recovery verdict for a crash at event k *)
  pred_boundary : int array;
      (* oracle: the op boundary the recovered state must equal *)
}

(* The reference pass doubles as the contract oracle.  It mirrors the
   *durable* state of the undo log's control words (state at byte 0,
   count at byte 8) by watching their physical locations through the
   Pm_store events — log stores are write-through under every model,
   so the media value IS the durable value.  From that mirror it
   predicts, for every event index, exactly what a crash there must
   recover to:

     durable state = 1, count = n > 0  ->  Rolled_back n, landing on
         the epoch-start boundary [reset_p] (the last boundary whose
         data fully drained);
     durable state = 1, count = 0      ->  Rolled_back 0 (the crash
         split a truncation), landing on the newest durable boundary;
     durable state = 0                 ->  Clean, newest durable
         boundary.

   The prediction for event k is recorded *before* the mirror absorbs
   event k's store: the fi hook fires before the store lands, so a
   crash at k sees only events [0, k).  Under the eager model this
   machinery degenerates to per-operation atomicity (the epoch is one
   operation), making the exact check strictly stronger than the old
   pre/post-snapshot rule. *)
let reference ~mode ~persist w =
  let rt, pool, txn, inst = boot ~mode ~persist w in
  let phys = Mem.phys (Runtime.mem rt) in
  (* Physical (frame, word) locations of the log's control words; pool
     frames are stable, so these stay valid for the whole run. *)
  let loc off =
    let va =
      Int64.add
        (Xlate.ra2va (Runtime.xlate rt) (Txn.header txn))
        (Int64.of_int off)
    in
    let pa = Mem.translate_pa_exn (Runtime.mem rt) va in
    (pa lsr Layout.page_shift, (pa land (Layout.page_size - 1)) lsr 3)
  in
  let state_loc = loc 0 and count_loc = loc 8 in
  let total = ref 0 in
  let pm = ref 0 and sp = ref 0 and la = ref 0 and mw = ref 0 in
  let fl = ref 0 and fe = ref 0 in
  (* Oracle mirror: durable log state/count, the newest fully durable
     op boundary ([completed]) and the boundary a whole-epoch rollback
     lands on ([reset_p]). *)
  let d_state = ref 0 and d_count = ref 0 in
  let completed = ref 0 and reset_p = ref 0 in
  let cur = ref 0 in
  let preds = ref [] in
  Physmem.set_fi_hook phys
    (Some
       (fun ev ->
         incr total;
         preds :=
           (if !d_state = 1 && !d_count > 0 then
              (Txn.Rolled_back !d_count, !reset_p)
            else if !d_state = 1 then (Txn.Rolled_back 0, !completed)
            else (Txn.Clean, !completed))
           :: !preds;
         match ev with
         | Fi.Pm_store { frame; word_index; new_value; _ } ->
             incr pm;
             if (frame, word_index) = state_loc then
               d_state := Int64.to_int new_value
             else if (frame, word_index) = count_loc then begin
               let n = Int64.to_int new_value in
               (if n = 0 then
                  if !d_count > 0 then begin
                    (* Truncation of a non-empty log: every entry just
                       became redundant, so the boundary the current
                       operation is closing is durable. *)
                    completed := !cur + 1;
                    reset_p := !cur + 1
                  end
                  else reset_p := !completed);
               d_count := n
             end
         | Fi.Storep_retire -> incr sp
         | Fi.Txn_log_append -> incr la
         | Fi.Alloc_meta_write _ -> incr mw
         | Fi.Flush_line _ -> incr fl
         | Fi.Fence -> incr fe));
  let allocated () = Pmop.allocated_bytes (Runtime.pmop rt) ~pool in
  let expected = Array.make (w.ops + 1) (inst.snapshot ()) in
  let alloc_bytes = Array.make (w.ops + 1) (allocated ()) in
  let op_start = Array.make (w.ops + 1) 0 in
  for i = 0 to w.ops - 1 do
    op_start.(i) <- !total;
    cur := i;
    run_op rt txn inst i;
    expected.(i + 1) <- inst.snapshot ();
    alloc_bytes.(i + 1) <- allocated ()
  done;
  op_start.(w.ops) <- !total;
  Physmem.set_fi_hook phys None;
  let preds = Array.of_list (List.rev !preds) in
  {
    total = !total;
    ref_tally =
      {
        pm_stores = !pm;
        storeps = !sp;
        log_appends = !la;
        meta_writes = !mw;
        flushes = !fl;
        fences = !fe;
      };
    op_start;
    expected;
    alloc_bytes;
    mutated =
      Array.init w.ops (fun i ->
          (not (Snapshot.equal expected.(i + 1) expected.(i)))
          || alloc_bytes.(i + 1) <> alloc_bytes.(i));
    pred_recovery = Array.map fst preds;
    pred_boundary = Array.map snd preds;
  }

(* The operation event [point] belongs to: the last op started at or
   before it. *)
let op_of_point r point =
  let rec go i = if i = 0 || r.op_start.(i) <= point then i else go (i - 1) in
  go (Array.length r.op_start - 2)

(* One crash pass: replay, die at event [point], reboot, recover, and
   check the outcome against the oracle's prediction for that point —
   exact in both directions.  Fresh share-nothing machine per point, so
   passes can run on worker domains in any order. *)
let crash_run ~mode ~persist w r spec point =
  let rt, pool, txn, inst = boot ~mode ~persist w in
  let phys = Mem.phys (Runtime.mem rt) in
  let spans = if spec.torn then log_spans rt txn else [] in
  let rng = Random.State.make [| 0x5eed; spec.seed; point |] in
  let idx = ref 0 in
  let kind = ref "" in
  let torn_injected = ref false in
  (* A tear at a [Flush_line] targets a still-buffered word: the flush
     was interrupted mid-line, so the media keeps a byte mix of the
     word's durable and buffered values.  The poke must wait until
     after [Persist.crash] has reverted the buffer (an immediate poke
     would be overwritten by the revert), so it is recorded here and
     applied after the reboot. *)
  let torn_later = ref None in
  Physmem.set_fi_hook phys
    (Some
       (fun ev ->
         let i = !idx in
         incr idx;
         if i = point then begin
           kind := Fi.kind_name ev;
           (if spec.torn then
              match ev with
              | Fi.Pm_store { frame; word_index; old_value; new_value }
                when not (in_spans spans ~frame ~word_index) ->
                  let keep_old_bytes = 1 + Random.State.int rng 254 in
                  Physmem.poke phys ~frame ~word_index
                    (Fi.torn_word ~keep_old_bytes ~old_value ~new_value);
                  torn_injected := true
              | Fi.Flush_line { frame; line } -> (
                  match
                    List.filter
                      (fun (w, _) -> not (in_spans spans ~frame ~word_index:w))
                      (Persist.buffered_in_line (Runtime.persist rt) ~frame
                         ~line)
                  with
                  | [] -> ()
                  | words ->
                      let w, durable =
                        List.nth words
                          (Random.State.int rng (List.length words))
                      in
                      let keep_old_bytes = 1 + Random.State.int rng 254 in
                      torn_later :=
                        Some
                          ( frame,
                            w,
                            Fi.torn_word ~keep_old_bytes ~old_value:durable
                              ~new_value:
                                (Physmem.peek phys ~frame ~word_index:w) );
                      torn_injected := true)
              | _ -> ());
           (* Power off: nothing written while unwinding may land. *)
           Physmem.set_frozen phys true;
           raise Crash_now
         end));
  let crashed = ref false in
  (try
     for i = 0 to w.ops - 1 do
       run_op rt txn inst i
     done
   with Crash_now -> crashed := true);
  Physmem.set_fi_hook phys None;
  if not !crashed then
    Fmt.invalid_arg "Faultinject: crash point %d past the last event" point;
  let op = op_of_point r point in
  let pred = r.pred_recovery.(point) in
  let boundary = r.pred_boundary.(point) in
  let violations = ref [] in
  let add msg = violations := msg :: !violations in
  (* Reboot.  crash_and_restart reverts still-buffered words to their
     durable values and clears the instrumentation hooks along with the
     rest of the volatile state. *)
  Runtime.crash_and_restart rt;
  (match !torn_later with
  | None -> ()
  | Some (frame, word_index, torn) -> Physmem.poke phys ~frame ~word_index torn);
  let pp_recovery ppf = function
    | Txn.Clean -> Fmt.pf ppf "clean"
    | Txn.Rolled_back n -> Fmt.pf ppf "rolled back %d" n
  in
  let recovery =
    match
      ignore (Runtime.open_pool rt "fi");
      let root = Runtime.get_root rt ~site ~pool in
      let txn' = Txn.attach rt (Runtime.load_ptr rt ~site root ~off:0) in
      let recovery =
        if spec.break_recovery then Txn.Clean else Txn.recover txn'
      in
      (recovery, Runtime.load_ptr rt ~site root ~off:8)
    with
    | recovery, hdr ->
        (* The oracle's contract is exact in both directions: the
           observed recovery verdict must be the predicted one, and the
           recovered state must equal the predicted boundary's snapshot
           — losing more than predicted and retaining more than
           predicted are both hard failures. *)
        if recovery <> pred then
          add
            (Fmt.str "contract: recovery %a, oracle predicted %a" pp_recovery
               recovery pp_recovery pred);
        let want = r.expected.(boundary) in
        (try
           let inst' = w.reattach rt hdr in
           (try inst'.check ()
            with e -> add ("invariant check: " ^ Printexc.to_string e));
           (try
              let got = inst'.snapshot () in
              if not (Snapshot.equal got want) then
                add
                  (Fmt.str "contract: state differs from predicted boundary %d%a"
                     boundary
                     (Fmt.option (fun ppf d -> Fmt.pf ppf ": %s" d))
                     (Snapshot.diff_summary got want))
            with e -> add ("contents walk dangled: " ^ Printexc.to_string e))
         with e -> add ("reattach failed: " ^ Printexc.to_string e));
        (try
           ignore (Pmop.check_pool_invariants (Runtime.pmop rt) ~pool);
           let got = Pmop.allocated_bytes (Runtime.pmop rt) ~pool in
           let want = r.alloc_bytes.(boundary) in
           if got <> want then
             add
               (Fmt.str
                  "contract: freelist has %Ld bytes allocated, predicted \
                   boundary %d has %Ld"
                  got boundary want)
         with e -> add ("freelist: " ^ Printexc.to_string e));
        recovery
    | exception e ->
        add ("recovery failed: " ^ Printexc.to_string e);
        Txn.Clean
  in
  {
    point;
    op;
    kind = !kind;
    recovery;
    (* Committed ops in [boundary, op) whose effects died with the
       epoch.  Read-only ops in the window are not counted: they left
       nothing behind to lose (which is also why the oracle's
       log-derived boundary can trail [op] under eager without any
       effect actually lost). *)
    lost_ops =
      (let n = ref 0 in
       for i = boundary to op - 1 do
         if r.mutated.(i) then incr n
       done;
       !n);
    torn_injected = !torn_injected;
    violations = List.rev !violations;
  }

(* --- the sweep ---------------------------------------------------------- *)

let points_of r spec =
  let pts =
    match spec.at with
    | [] ->
        let n = max 1 spec.every_n in
        List.init ((r.total + n - 1) / n) (fun i -> i * n)
    | at ->
        (* An out-of-range index must not silently shrink the sweep to
           zero passes — fail loudly with the valid range instead. *)
        List.iter
          (fun p ->
            if p < 0 || p >= r.total then
              Fmt.invalid_arg
                "faultinject: crash point %d is out of range (this workload \
                 has events 0..%d)"
                p (r.total - 1))
          at;
        List.sort_uniq compare at
  in
  match spec.max_points with
  | None -> pts
  | Some m -> List.filteri (fun i _ -> i < m) pts

(* Run the sweep.  [par] maps the per-point thunks (share-nothing,
   order-independent) to their results in submission order — pass
   [Nvml_exec.Pool.run pool] for a parallel sweep; results are
   identical to the sequential default. *)
let run ?(par = List.map (fun f -> f ())) ?(mode = Runtime.Hw)
    ?(persist = Persist.Eager) ?(spec = default_spec) ?(timing = false) w =
  (match mode with
  | Runtime.Volatile ->
      invalid_arg "Faultinject.run: the Volatile mode has nothing to recover"
  | _ -> ());
  (* Crash-point enumeration and recovery verdicts are functional, so
     the reference pass and every crash pass default to the fast core;
     [~timing:true] restores cycle-accurate simulation (same report). *)
  Runtime.with_default_timing timing @@ fun () ->
  let r = reference ~mode ~persist w in
  let points = points_of r spec in
  let outcomes =
    par (List.map (fun p () -> crash_run ~mode ~persist w r spec p) points)
  in
  let count f = List.length (List.filter f outcomes) in
  let report =
    {
      workload = w.name;
      persist = Persist.model_name persist;
      ops = w.ops;
      events = r.total;
      tally = r.ref_tally;
      outcomes;
      clean = count (fun o -> o.recovery = Txn.Clean);
      rolled_back =
        count (fun o -> match o.recovery with Txn.Rolled_back _ -> true | _ -> false);
      suffix_lost = count (fun o -> o.lost_ops > 0);
      torn_injected = count (fun o -> o.torn_injected);
      violations =
        List.concat_map
          (fun o -> List.map (fun v -> (o.point, v)) o.violations)
          outcomes;
    }
  in
  if Telemetry.enabled () then begin
    Telemetry.add c_points (List.length report.outcomes);
    Telemetry.add c_clean report.clean;
    Telemetry.add c_rolled_back report.rolled_back;
    Telemetry.add c_suffix_lost report.suffix_lost;
    Telemetry.add c_torn report.torn_injected;
    Telemetry.add c_violations (List.length report.violations)
  end;
  report

(* --- rendering ---------------------------------------------------------- *)

let pp_tally ppf t =
  Fmt.pf ppf "%d pm_store, %d storep, %d log_append, %d alloc_meta"
    t.pm_stores t.storeps t.log_appends t.meta_writes;
  (* Drain µ-events exist only under a relaxed model; eager output is
     pinned byte-identical to the pre-engine renderer. *)
  if t.flushes > 0 || t.fences > 0 then
    Fmt.pf ppf ", %d flush, %d fence" t.flushes t.fences

let pp_report ppf r =
  Fmt.pf ppf "@[<v>";
  Fmt.pf ppf "workload %s: %d ops, %d events (%a)@," r.workload r.ops r.events
    pp_tally r.tally;
  if r.persist <> "eager" then
    Fmt.pf ppf "  persistency model %s: contract oracle armed@," r.persist;
  Fmt.pf ppf "  %d crash points: %d recovered clean, %d rolled back"
    (List.length r.outcomes) r.clean r.rolled_back;
  if r.suffix_lost > 0 then
    Fmt.pf ppf ", %d lost a committed suffix (as predicted)" r.suffix_lost;
  if r.torn_injected > 0 then Fmt.pf ppf ", %d torn words injected" r.torn_injected;
  Fmt.pf ppf "@,";
  (match r.violations with
  | [] -> Fmt.pf ppf "  no violations"
  | vs ->
      Fmt.pf ppf "  %d VIOLATIONS:" (List.length vs);
      List.iter
        (fun (o : outcome) ->
          if o.violations <> [] then
            Fmt.pf ppf "@,    point %d (op %d, at %s, %s):%a" o.point o.op
              o.kind
              (match o.recovery with
              | Txn.Clean -> "clean"
              | Txn.Rolled_back n -> Fmt.str "rolled back %d" n)
              (Fmt.list ~sep:Fmt.nop (fun ppf v -> Fmt.pf ppf "@,      %s" v))
              o.violations)
        r.outcomes);
  Fmt.pf ppf "@]"

(* --- multi-core durability sweep ---------------------------------------- *)

(* Crash-at-any-event verification for the durably-linearizable
   concurrent structures on the multi-core machine.  No transactions
   here: the structures promise crash-resilience by construction
   (single-word durability points, pre-sized arenas), and the oracle is
   Khyzha & Lahav's crash-resilient-object criterion — after a crash at
   any enumerated persistence event of any core, the recovered state
   must sit between the completed and the invoked operation sets:

     - recovered counter value within [sum completed, sum invoked];
     - per core, the recovered list keys are exactly a prefix of that
       core's insertion order, with length within
       [completed_c, invoked_c].

   The reference pass runs the seeded interleaving once, recording at
   every persistence event which operations each core had invoked and
   completed; each crash pass replays the identical schedule (same
   scheduler seed, share-nothing machine) and kills the power at one
   event. *)

module Cluster = Nvml_runtime.Cluster
module Conc_workload = Nvml_structures.Conc_workload
module Conc_counter = Nvml_structures.Conc_counter
module Conc_list = Nvml_structures.Conc_list

type conc_spec = {
  cores : int;
  ops_per_core : int;
  sched_seed : int;  (* drives the µ-event interleaving *)
  conc_every_n : int;
  conc_max_points : int option;
}

let default_conc_spec =
  {
    cores = 2;
    ops_per_core = 8;
    sched_seed = 1;
    conc_every_n = 1;
    conc_max_points = None;
  }

type conc_outcome = {
  conc_point : int;
  conc_kind : string;
  conc_violations : string list;
}

type conc_report = {
  conc_cores : int;
  conc_ops : int;  (* total operations = cores * ops_per_core *)
  conc_events : int;
  conc_outcomes : conc_outcome list;
  conc_violation_list : (int * string) list;
}

(* Per-core invoked/completed counts for both structures — the marker
   state snapshotted at every persistence event. *)
type conc_marks = {
  ctr_invoked : int array;
  ctr_done : int array;
  list_invoked : int array;
  list_done : int array;
}

let copy_marks m =
  {
    ctr_invoked = Array.copy m.ctr_invoked;
    ctr_done = Array.copy m.ctr_done;
    list_invoked = Array.copy m.list_invoked;
    list_done = Array.copy m.list_done;
  }

let conc_boot ~mode ~persist spec =
  let rt = Runtime.create ~mode ~persist () in
  let pool = Runtime.create_pool rt ~name:"conc" ~size:pool_size in
  let s =
    Conc_workload.setup ~sched_seed:spec.sched_seed ~cores:spec.cores
      ~ops_per_core:spec.ops_per_core rt ~pool
  in
  (* Anchor both structure headers in a root block, as an application
     would, so recovery can find them after the pool re-opens at a
     skewed base. *)
  let root = Runtime.alloc rt ~pool ~persistent:true 16 in
  Runtime.store_ptr rt ~site root ~off:0
    (Conc_counter.header s.Conc_workload.counter);
  Runtime.store_ptr rt ~site root ~off:8
    (Conc_list.header s.Conc_workload.list);
  Runtime.set_root rt ~site ~pool root;
  (* Setup becomes durable before the fi hook installs, so reference
     and crash passes count identical event schedules. *)
  Runtime.persist_sync rt;
  (rt, pool, s)

let mark_of m ~core = function
  | Conc_workload.Ctr_invoke -> m.ctr_invoked.(core) <- m.ctr_invoked.(core) + 1
  | Conc_workload.Ctr_done -> m.ctr_done.(core) <- m.ctr_done.(core) + 1
  | Conc_workload.List_invoke ->
      m.list_invoked.(core) <- m.list_invoked.(core) + 1
  | Conc_workload.List_done -> m.list_done.(core) <- m.list_done.(core) + 1

type conc_ref = {
  conc_total : int;
  marks : conc_marks array;  (* invoked/completed state per event *)
  pred_counter : int64 array;  (* oracle: exact recovered counter value *)
  pred_keys : int64 list array;  (* oracle: exact recovered chain, newest first *)
}

(* A reader that resolves byte offsets within a structure's header
   object to the *durable* value of that word — what the media would
   retain on a crash right now.  Valid only while the mapping is live
   (the reference pass). *)
let durable_reader rt header =
  let base = Xlate.ra2va (Runtime.xlate rt) header in
  let p = Runtime.persist rt in
  let mem = Runtime.mem rt in
  fun off ->
    let pa = Mem.translate_pa_exn mem (Int64.add base (Int64.of_int off)) in
    Persist.durable_value p
      ~frame:(pa lsr Layout.page_shift)
      ~word_index:((pa land (Layout.page_size - 1)) lsr 3)

let conc_reference ~mode ~persist spec =
  let rt, _pool, s = conc_boot ~mode ~persist spec in
  let phys = Mem.phys (Runtime.mem rt) in
  let m =
    {
      ctr_invoked = Array.make spec.cores 0;
      ctr_done = Array.make spec.cores 0;
      list_invoked = Array.make spec.cores 0;
      list_done = Array.make spec.cores 0;
    }
  in
  let ctr_hdr = Conc_counter.header s.Conc_workload.counter in
  let list_hdr = Conc_list.header s.Conc_workload.list in
  let list_cap = Conc_list.capacity s.Conc_workload.list in
  let read_ctr = durable_reader rt ctr_hdr in
  let read_list = durable_reader rt list_hdr in
  let snaps = ref [] in
  let preds = ref [] in
  let total = ref 0 in
  (* The hook fires *before* the event's effect, so both the
     invoked/completed snapshot and the durable-value walk describe the
     exact state a crash at that event would expose.  The durable walk
     is the contract oracle: under a relaxed model it predicts the
     precise post-crash counter value and chain — including mid-drain
     states where a drained head pointer reaches not-yet-drained
     (still zero) slots. *)
  Physmem.set_fi_hook phys
    (Some
       (fun _ev ->
         snaps := copy_marks m :: !snaps;
         preds :=
           ( Conc_counter.value_via ~cells:spec.cores read_ctr,
             Conc_list.keys_via ~capacity:list_cap ~header:list_hdr read_list )
           :: !preds;
         incr total));
  Conc_workload.run ~mark:(fun ~core ~op:_ phase -> mark_of m ~core phase) s;
  Physmem.set_fi_hook phys None;
  let preds = Array.of_list (List.rev !preds) in
  {
    conc_total = !total;
    marks = Array.of_list (List.rev !snaps);
    pred_counter = Array.map fst preds;
    pred_keys = Array.map snd preds;
  }

let sum = Array.fold_left ( + ) 0

let conc_crash_run ~mode ~persist spec (cref : conc_ref) point =
  let rt, pool, s = conc_boot ~mode ~persist spec in
  let phys = Mem.phys (Runtime.mem rt) in
  let idx = ref 0 in
  let kind = ref "" in
  Physmem.set_fi_hook phys
    (Some
       (fun ev ->
         let i = !idx in
         incr idx;
         if i = point then begin
           kind := Fi.kind_name ev;
           (* Power off: nothing written while unwinding may land. *)
           Physmem.set_frozen phys true;
           raise Crash_now
         end));
  let crashed = ref false in
  (try Conc_workload.run s with Crash_now -> crashed := true);
  Physmem.set_fi_hook phys None;
  if not !crashed then
    Fmt.invalid_arg "Faultinject: conc crash point %d past the last event"
      point;
  let snap = cref.marks.(point) in
  let violations = ref [] in
  let add msg = violations := msg :: !violations in
  Runtime.crash_and_restart rt;
  (try
     ignore (Runtime.open_pool rt "conc");
     let root = Runtime.get_root rt ~site ~pool in
     let ctr = Conc_counter.attach rt (Runtime.load_ptr rt ~site root ~off:0) in
     let lst = Conc_list.attach rt (Runtime.load_ptr rt ~site root ~off:8) in
     if Conc_counter.cells ctr <> spec.cores then
       add
         (Fmt.str "counter header: %d cells, expected %d"
            (Conc_counter.cells ctr) spec.cores);
     (* Contract oracle: the recovered state must be byte-exact what
        the durable-value walk at this event predicted — under every
        model.  Retaining more than predicted is as much a failure as
        losing more. *)
     let v = Conc_counter.recovered_value rt ctr in
     if v <> cref.pred_counter.(point) then
       add
         (Fmt.str "contract: counter recovered %Ld, oracle predicted %Ld" v
            cref.pred_counter.(point));
     (match Conc_list.recovered_keys rt lst with
     | exception e -> add ("list walk: " ^ Printexc.to_string e)
     | keys ->
         if keys <> cref.pred_keys.(point) then
           add
             (Fmt.str
                "contract: list recovered [%a], oracle predicted [%a]"
                Fmt.(list ~sep:semi int64)
                keys
                Fmt.(list ~sep:semi int64)
                cref.pred_keys.(point));
         (* The durable-linearizability bounds additionally hold under
            the eager model (under a relaxed model a drained head may
            legitimately reach not-yet-drained slots, so the chain is
            checked only against the oracle's exact prediction). *)
         if Persist.is_eager persist then begin
           let v = Int64.to_int v in
           let lo = sum snap.ctr_done and hi = sum snap.ctr_invoked in
           if v < lo || v > hi then
             add
               (Fmt.str
                  "counter: recovered %d, outside [completed %d, invoked %d]"
                  v lo hi);
           let per_core = Array.make spec.cores [] in
           List.iter
             (fun k ->
               let c, j = Conc_workload.decode_key k in
               if c < 0 || c >= spec.cores || j < 0 || j >= spec.ops_per_core
               then add (Fmt.str "list: foreign key %Lx" k)
               else per_core.(c) <- j :: per_core.(c))
             keys;
           for c = 0 to spec.cores - 1 do
             let js = List.sort compare per_core.(c) in
             let n = List.length js in
             if js <> List.init n Fun.id then
               add
                 (Fmt.str "list: core %d keys are not a prefix of its order" c)
             else if n < snap.list_done.(c) || n > snap.list_invoked.(c) then
               add
                 (Fmt.str
                    "list: core %d recovered %d inserts, outside [completed \
                     %d, invoked %d]"
                    c n snap.list_done.(c) snap.list_invoked.(c))
           done
         end)
   with e -> add ("recovery failed: " ^ Printexc.to_string e));
  { conc_point = point; conc_kind = !kind; conc_violations = List.rev !violations }

let run_conc ?(par = List.map (fun f -> f ())) ?(mode = Runtime.Hw)
    ?(persist = Persist.Eager) ?(spec = default_conc_spec) ?(timing = false) ()
    =
  (match mode with
  | Runtime.Volatile ->
      invalid_arg "Faultinject.run_conc: the Volatile mode has nothing to recover"
  | _ -> ());
  if spec.cores < 1 then invalid_arg "Faultinject.run_conc: cores must be >= 1";
  Runtime.with_default_timing timing @@ fun () ->
  let cref = conc_reference ~mode ~persist spec in
  let total = cref.conc_total in
  let points =
    let n = max 1 spec.conc_every_n in
    let pts = List.init ((total + n - 1) / n) (fun i -> i * n) in
    match spec.conc_max_points with
    | None -> pts
    | Some m -> List.filteri (fun i _ -> i < m) pts
  in
  let outcomes =
    par (List.map (fun p () -> conc_crash_run ~mode ~persist spec cref p) points)
  in
  let report =
    {
      conc_cores = spec.cores;
      conc_ops = spec.cores * spec.ops_per_core;
      conc_events = total;
      conc_outcomes = outcomes;
      conc_violation_list =
        List.concat_map
          (fun o -> List.map (fun v -> (o.conc_point, v)) o.conc_violations)
          outcomes;
    }
  in
  if Telemetry.enabled () then begin
    Telemetry.add c_points (List.length report.conc_outcomes);
    Telemetry.add c_violations (List.length report.conc_violation_list)
  end;
  report

let pp_conc_report ppf r =
  Fmt.pf ppf "@[<v>";
  Fmt.pf ppf
    "conc workload: %d cores, %d ops, %d events, seeded interleaving@,"
    r.conc_cores r.conc_ops r.conc_events;
  Fmt.pf ppf "  %d crash points" (List.length r.conc_outcomes);
  (match r.conc_violation_list with
  | [] -> Fmt.pf ppf ", no durability violations"
  | vs ->
      Fmt.pf ppf ", %d VIOLATIONS:" (List.length vs);
      List.iter (fun (p, v) -> Fmt.pf ppf "@,    point %d: %s" p v) vs);
  Fmt.pf ppf "@]"
