(* nvml — command-line driver for the user-transparent persistent
   reference simulator.

     nvml kv --structure RB --mode hw --records 10000 --ops 100000
     nvml kv --structure RB --stats stats.json --trace trace.json
     nvml stats --structure RB -o stats.json
     nvml knn --mode sw
     nvml soundness
     nvml inference
     nvml info *)

open Cmdliner
module Cpu = Nvml_arch.Cpu
module Config = Nvml_arch.Config
module Runtime = Nvml_runtime.Runtime
module Harness = Nvml_kvstore.Harness
module Workload = Nvml_ycsb.Workload
module Iris = Nvml_mlkit.Iris
module Knn = Nvml_mlkit.Knn
module Corpus = Nvml_minic.Corpus
module Interp = Nvml_minic.Interp
module Inference = Nvml_comp.Inference
module Pool = Nvml_exec.Pool
module Faultinject = Nvml_faultinject.Faultinject
module Modelcheck = Nvml_modelcheck.Modelcheck
module Engine = Nvml_modelcheck.Engine
module Telemetry = Nvml_telemetry.Telemetry
module Json = Nvml_telemetry.Json
module Profile = Nvml_kvstore.Profile
module Serving = Nvml_kvstore.Serving
module Media = Nvml_media.Media
module Mediacheck = Nvml_pool.Mediacheck
module Scrub = Nvml_pool.Scrub
module Oplat = Nvml_runtime.Oplat
module Latency = Nvml_telemetry.Latency
module Cluster = Nvml_runtime.Cluster
module Multicore = Nvml_arch.Multicore
module Registry = Nvml_structures.Registry
module Intf = Nvml_structures.Intf
module Persist = Nvml_runtime.Persist

(* --- shared argument converters ---------------------------------------- *)

let mode_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "volatile" | "native" -> Ok Runtime.Volatile
    | "sw" -> Ok Runtime.Sw
    | "hw" -> Ok Runtime.Hw
    | "explicit" -> Ok Runtime.Explicit
    | _ -> Error (`Msg "expected volatile|sw|hw|explicit")
  in
  Arg.conv (parse, Runtime.pp_mode)

let mode_arg =
  Arg.(
    value
    & opt mode_conv Runtime.Hw
    & info [ "mode"; "m" ] ~docv:"MODE"
        ~doc:"Execution mode: volatile, sw, hw or explicit.")

let persist_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Persist.model_of_string s) in
  Arg.conv (parse, fun ppf m -> Fmt.string ppf (Persist.model_name m))

let persist_arg =
  Arg.(
    value
    & opt persist_conv Persist.Eager
    & info [ "persist" ] ~docv:"MODEL"
        ~doc:
          "Persistency model: $(b,eager) (every store durable in place, the \
           default — byte-identical to previous releases), $(b,epoch:N) \
           (buffer dirty NVM lines and drain them with modeled flush+fence \
           µ-events every N operations) or $(b,lazy) (drain only at pool \
           detach / end of run).  Relaxed models trade a bounded window of \
           committed-but-lost operations after a crash for cheaper stores.")

(* Case-insensitive membership for name-list validation. *)
let known name names =
  List.exists
    (fun n -> String.lowercase_ascii n = String.lowercase_ascii name)
    names

let dist_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "uniform" -> Ok Workload.Uniform
    | "zipfian" -> Ok Workload.Zipfian
    | "scrambled" | "scrambled-zipfian" -> Ok Workload.Scrambled_zipfian
    | "latest" -> Ok Workload.Latest
    | "hotspot" -> Ok Workload.Hotspot
    | _ -> Error (`Msg "expected uniform|zipfian|scrambled|latest|hotspot")
  in
  let print ppf d =
    Fmt.string ppf
      (match d with
      | Workload.Uniform -> "uniform"
      | Workload.Zipfian -> "zipfian"
      | Workload.Scrambled_zipfian -> "scrambled"
      | Workload.Latest -> "latest"
      | Workload.Hotspot -> "hotspot")
  in
  Arg.conv (parse, print)

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for multi-cell commands (0 = NVML_JOBS env var, \
           else the recommended domain count). Cells are share-nothing, so \
           results match --jobs 1 exactly.")

let resolve_jobs n = if n >= 1 then n else Pool.default_jobs ()

let cores_arg =
  Arg.(
    value & opt int 1
    & info [ "cores" ] ~docv:"N"
        ~doc:
          "Simulated cores: interleave $(docv) per-core instruction streams \
           over shared L2/L3/POLB/VALB state with a seeded deterministic \
           scheduler. 1 (the default) is the single-core machine, \
           byte-identical to previous releases.")

let print_cluster_stats cluster =
  let s = Cluster.stats cluster in
  Fmt.epr
    "scheduler: %d steps (%d contended), %d switches, %d coherence \
     invalidations@."
    s.Multicore.steps s.Multicore.contended_steps s.Multicore.switches
    s.Multicore.invalidations

(* --- kv ------------------------------------------------------------------ *)

let print_result (r : Harness.result) =
  let s = r.Harness.run in
  Fmt.pr "benchmark    %s (%s)@." r.Harness.benchmark
    (Runtime.mode_name r.Harness.mode);
  Fmt.pr "cycles       %d (load phase: %d)@." s.Cpu.cycles
    r.Harness.load.Cpu.cycles;
  Fmt.pr "instructions %d  IPC %.3f@." s.Cpu.instrs
    (float_of_int s.Cpu.instrs /. float_of_int (max 1 s.Cpu.cycles));
  Fmt.pr "accesses     %d loads, %d stores (%d storeP, %d NVM)@." s.Cpu.loads
    s.Cpu.stores s.Cpu.storeps s.Cpu.nvm_accesses;
  Fmt.pr "branches     %d (%d mispredicted)@." s.Cpu.branches
    s.Cpu.branch_mispredicts;
  Fmt.pr "translation  POLB %d (miss %d), VALB %d (miss %d)@."
    s.Cpu.polb_accesses s.Cpu.polb_misses s.Cpu.valb_accesses
    s.Cpu.valb_misses;
  Fmt.pr "checks       %d dynamic, %d abs->rel, %d rel->abs@."
    r.Harness.checks.Harness.dynamic_checks r.Harness.checks.Harness.abs_to_rel
    r.Harness.checks.Harness.rel_to_abs;
  Fmt.pr "GETs         %d hits, %d misses@." r.Harness.hits r.Harness.misses

(* The [--latency] report: percentile ladder, whole-run component
   attribution, and the retained slowest operations with their
   component breakdowns. *)
let print_latency (ol : Oplat.t) =
  if Oplat.count ol = 0 then
    Fmt.pr "@.per-op latency: no operations recorded@."
  else begin
    let s = Latency.summary (Oplat.latency ol) in
    Fmt.pr "@.per-op latency (cycles, %d ops)@." s.Latency.count;
    Fmt.pr "  p50 %d  p90 %d  p99 %d  p999 %d  max %d  mean %.1f@."
      s.Latency.p50 s.Latency.p90 s.Latency.p99 s.Latency.p999 s.Latency.max
      s.Latency.mean;
    let tot = Oplat.totals ol in
    let all = float_of_int (max 1 (Oplat.components_total tot)) in
    let pct n = 100. *. float_of_int n /. all in
    Fmt.pr
      "  attribution  base %.1f%%  check %.1f%%  translation %.1f%%  stall \
       %.1f%%  media %.1f%%@."
      (pct tot.Oplat.base) (pct tot.Oplat.check) (pct tot.Oplat.translation)
      (pct tot.Oplat.stall) (pct tot.Oplat.media);
    Fmt.pr "  slowest ops:@.";
    List.iter
      (fun (sm : Oplat.sample) ->
        Fmt.pr
          "    %-6s #%-7d %9d cycles  base %d  check %d  translation %d  \
           stall %d  media %d@."
          sm.Oplat.op sm.Oplat.seq sm.Oplat.cycles sm.Oplat.comps.Oplat.base
          sm.Oplat.comps.Oplat.check sm.Oplat.comps.Oplat.translation
          sm.Oplat.comps.Oplat.stall sm.Oplat.comps.Oplat.media)
      (Oplat.slowest ol)
  end

(* The serving-engine report: configuration, simulated throughput,
   front-cache behaviour, and a per-shard balance table. *)
let print_serving (t : Serving.t) =
  Fmt.pr "serving      %s (%s), %d shards, batch %d, front cache %d@."
    t.Serving.structure
    (Runtime.mode_name t.Serving.mode)
    t.Serving.shards t.Serving.batch t.Serving.front_cache;
  Fmt.pr "workload     %a@." Workload.pp_spec t.Serving.spec;
  Fmt.pr "requests     %d (%d found, %d missing), final size %d@."
    t.Serving.ops t.Serving.found t.Serving.missing t.Serving.size;
  Fmt.pr "cycles       %d service (max shard), %d total, load max %d@."
    t.Serving.run_cycles_max t.Serving.run_cycles_total
    t.Serving.load_cycles_max;
  Fmt.pr "throughput   %.3f Mops/s simulated (%.2f GHz clock)@."
    (Serving.ops_per_sec t /. 1e6)
    (Serving.clock_hz /. 1e9);
  if t.Serving.front_cache > 0 then begin
    let c = t.Serving.cache in
    Fmt.pr
      "front cache  %.1f%% hit rate (%d hits / %d misses), %d write-backs, \
       %d evictions, %d scan flushes@."
      (100. *. Serving.hit_rate c)
      c.Serving.hits c.Serving.misses c.Serving.writebacks c.Serving.evictions
      c.Serving.scan_flushes
  end;
  Fmt.pr "digest       %016Lx@." t.Serving.digest;
  if t.Serving.shards > 1 then begin
    Fmt.pr "%-8s %10s %10s %14s %10s@." "shard" "records" "requests" "cycles"
      "hit rate";
    List.iter
      (fun (s : Serving.shard) ->
        Fmt.pr "%-8d %10d %10d %14d %9.1f%%@." s.Serving.index
          s.Serving.records s.Serving.ops s.Serving.run.Cpu.cycles
          (100. *. Serving.hit_rate s.Serving.cache))
      t.Serving.per_shard
  end

(* Workload arguments shared by [kv] and [stats]. *)
let structure_arg =
  Arg.(
    value & opt string "RB"
    & info [ "structure"; "s" ] ~docv:"NAME"
        ~doc:"Index structure: LL, Hash, RB, Splay, AVL, SG, Skip, BTree or Radix.")

let records_arg =
  Arg.(value & opt int 10_000 & info [ "records" ] ~doc:"Initial records.")

let ops_arg =
  Arg.(value & opt int 100_000 & info [ "ops" ] ~doc:"Run-phase operations.")

let dist_arg =
  Arg.(
    value
    & opt dist_conv Workload.Latest
    & info [ "distribution"; "d" ] ~doc:"Key distribution.")

let spec_of ~records ~ops ~dist =
  {
    Workload.paper_default with
    Workload.record_count = records;
    operation_count = ops;
    distribution = dist;
  }

let kv_cmd =
  let stats_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats" ] ~docv:"FILE"
          ~doc:"Record telemetry during the run and write the stats JSON \
                document to $(docv).")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Record telemetry during the run and write a Chrome \
                trace_event file to $(docv) (load in chrome://tracing or \
                Perfetto).")
  in
  let compare_arg =
    Arg.(
      value & flag
      & info [ "compare" ]
          ~doc:
            "Run all four execution modes (in parallel when --jobs > 1) and \
             print a comparative table instead of a single-mode report.")
  in
  let latency_arg =
    Arg.(
      value & flag
      & info [ "latency" ]
          ~doc:
            "Print the per-operation latency report: cycle-domain \
             percentiles (p50/p90/p99/p999/max), whole-run component \
             attribution and the slowest retained operations.")
  in
  let fast_arg =
    Arg.(
      value & flag
      & info [ "fast" ]
          ~doc:
            "Fast functional mode: skip cache/TLB/branch/storeP timing \
             models. Latencies then read cycles = instructions with all \
             non-base components zero.")
  in
  let slow_trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "slow-trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event file of the slowest retained \
             operations (one thread per op, simulated cycles as \
             timestamps) to $(docv).")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Serving engine: shard records across $(docv) independent \
             pools by key hash. Any of --shards/--batch/--front-cache/--mix \
             selects the serving engine instead of the single-pool harness.")
  in
  let batch_arg =
    Arg.(
      value & opt int 1
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Serving engine: requests per runtime entry; the entry cost is \
             amortized across the batch.")
  in
  let front_cache_arg =
    Arg.(
      value & opt int 0
      & info [ "front-cache" ] ~docv:"ENTRIES"
          ~doc:
            "Serving engine: total DRAM front-cache entries across all \
             shards (bounded LRU, write-back to NVM); 0 disables the \
             cache. May exceed the record count, in which case the cache \
             simply never evicts.")
  in
  let mix_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "mix" ] ~docv:"NAME"
          ~doc:
            "Serving engine: run a named serving mix (read-latest, \
             scan-heavy, rmw-heavy or hot-storm) at --records/--ops scale \
             instead of the --distribution preset.")
  in
  let run structure mode persist records ops dist compare jobs stats_file
      trace_file latency fast slow_trace shards batch front_cache mix cores =
    let reject fmt = Fmt.kstr (fun m -> Fmt.epr "%s@." m; exit 1) fmt in
    if shards < 1 then reject "--shards must be >= 1, got %d" shards;
    if batch < 1 then reject "--batch must be >= 1, got %d" batch;
    if front_cache < 0 then
      reject "--front-cache must be >= 0, got %d" front_cache;
    if cores < 1 then reject "--cores must be >= 1, got %d" cores;
    let spec = spec_of ~records ~ops ~dist in
    (* With [--stats]/[--trace], record the run in a fresh telemetry
       sink and dump it before returning (the dumps read the sink). *)
    let dump () =
      let write flag path emit =
        match open_out path with
        | oc ->
            emit oc;
            close_out oc;
            Fmt.epr "%s written to %s@." flag path
        | exception Sys_error msg ->
            Fmt.epr "--%s: %s@." flag msg;
            exit 1
      in
      Option.iter
        (fun path -> write "stats" path Telemetry.write_stats_json)
        stats_file;
      Option.iter
        (fun path -> write "trace" path Telemetry.write_chrome_trace)
        trace_file
    in
    let instrumented f =
      if stats_file = None && trace_file = None then f ()
      else begin
        Telemetry.set_enabled true;
        Telemetry.run_with_sink (Telemetry.fresh_sink ()) (fun () ->
            let r = f () in
            dump ();
            r)
      end
    in
    let write_slow_trace oplats =
      Option.iter
        (fun path ->
          let agg = Oplat.create ~cell:structure () in
          List.iter (fun o -> Oplat.merge_into ~dst:agg o) oplats;
          match open_out path with
          | oc ->
              Oplat.write_slow_trace oc agg;
              close_out oc;
              Fmt.epr "slow-op trace written to %s@." path
          | exception Sys_error msg ->
              Fmt.epr "--slow-trace: %s@." msg;
              exit 1)
        slow_trace
    in
    let with_timing f =
      if fast then Runtime.with_default_timing false f else f ()
    in
    let serving = shards > 1 || batch > 1 || front_cache > 0 || mix <> None in
    if serving && compare then begin
      Fmt.epr "--compare is not supported with the serving engine flags@.";
      exit 1
    end;
    if cores > 1 && serving then
      reject
        "--cores > 1 is not supported with the serving-engine flags \
         (--shards/--batch/--front-cache/--mix)";
    if cores > 1 && compare then
      reject "--cores > 1 is not supported with --compare";
    if serving && not (Persist.is_eager persist) then
      reject
        "--persist %s is not supported with the serving-engine flags \
         (--shards/--batch/--front-cache/--mix); the serving engine is \
         eager-only"
        (Persist.model_name persist);
    (* Validate the structure name up front so a typo produces the valid
       list instead of an uncaught exception deep in a harness. *)
    (let valid = if serving then Registry.map_names else Registry.benchmark_names in
     if not (known structure valid) then
       reject "--structure expects %s, got %S" (String.concat "|" valid)
         structure);
    with_timing @@ fun () ->
    instrumented @@ fun () ->
    if cores > 1 then begin
      (* Replicated multi-core run: each core drives its own index
         instance (in its own pool, so persistent-allocator metadata
         stays disjoint) through the seeded µ-event scheduler; the cores
         contend on the shared L2/L3/POLB/VALB. *)
      let (module M : Intf.ORDERED_MAP) =
        try Registry.find_map structure
        with Invalid_argument m -> reject "%s" m
      in
      let rt = Runtime.create ~mode ~timing:(not fast) ~persist () in
      let cluster = Cluster.create ~cores rt in
      let region i =
        if mode = Runtime.Volatile then Runtime.Dram_region
        else
          Runtime.Pool_region
            (Runtime.create_pool rt
               ~name:(Printf.sprintf "kv%d" i)
               ~size:(1 lsl 26))
      in
      let regions = Array.init cores region in
      let body core =
        let crt = Cluster.rt cluster core in
        let m = M.create crt regions.(core) in
        for i = 0 to records - 1 do
          M.insert m ~key:(Workload.key_of_index i) ~value:(Int64.of_int i)
        done;
        Workload.iter_ops spec (fun op ->
            (match op with
            | Workload.Read k -> ignore (M.find m k)
            | Workload.Update (k, v) | Workload.Insert (k, v) ->
                M.insert m ~key:k ~value:v
            | Workload.Scan (start, len) ->
                for j = start to start + len - 1 do
                  ignore (M.find m (Workload.key_of_index j))
                done
            | Workload.Rmw (k, d) ->
                let v = match M.find m k with Some v -> v | None -> 0L in
                M.insert m ~key:k ~value:(Int64.add v d));
            (* Per-core epoch boundary: each core's op count drives its
               own epoch clock; the drains serialize through the shared
               persist engine. *)
            Runtime.persist_op_boundary crt)
      in
      Cluster.run cluster (Array.init cores (fun _ -> body));
      Runtime.persist_sync rt;
      Fmt.pr "multi-core kv  %s (%s), %d cores, %d records + %d ops per core@."
        M.name (Runtime.mode_name mode) cores records ops;
      Array.iteri
        (fun i crt ->
          let s = Runtime.snapshot crt in
          Fmt.pr "core %d      %d cycles, %d instructions, IPC %.3f@." i
            s.Cpu.cycles s.Cpu.instrs
            (float_of_int s.Cpu.instrs /. float_of_int (max 1 s.Cpu.cycles)))
        (Cluster.rts cluster);
      print_cluster_stats cluster
    end
    else if serving then begin
      let spec =
        match mix with
        | None -> spec
        | Some name -> (
            match
              List.assoc_opt name (Workload.serving_mixes ~records ~ops)
            with
            | Some s -> s
            | None ->
                let valid =
                  List.map fst (Workload.serving_mixes ~records ~ops)
                in
                reject "--mix expects %s, got %S" (String.concat "|" valid)
                  name)
      in
      let config =
        Serving.default_config ~structure ~mode ~shards ~batch ~front_cache
          spec
      in
      let jobs = resolve_jobs jobs in
      let report =
        if jobs <= 1 then Serving.run config
        else begin
          let pool = Pool.create ~jobs () in
          Fun.protect
            ~finally:(fun () -> Pool.shutdown pool)
            (fun () -> Serving.run ~par:(Pool.run pool) config)
        end
      in
      print_serving report;
      if latency then print_latency report.Serving.oplat;
      write_slow_trace [ report.Serving.oplat ]
    end
    else if not compare then begin
      let r = Harness.run_benchmark structure ~mode ~persist spec in
      print_result r;
      if latency then print_latency r.Harness.oplat;
      write_slow_trace [ r.Harness.oplat ]
    end
    else begin
      let modes =
        [ Runtime.Volatile; Runtime.Explicit; Runtime.Sw; Runtime.Hw ]
      in
      let pool = Pool.create ~jobs:(resolve_jobs jobs) () in
      let results =
        Fun.protect
          ~finally:(fun () -> Pool.shutdown pool)
          (fun () ->
            Pool.map pool
              (fun mode -> Harness.run_benchmark structure ~mode ~persist spec)
              modes)
      in
      let base =
        match results with
        | r :: _ -> float_of_int r.Harness.run.Cpu.cycles
        | [] -> 1.
      in
      Fmt.pr "%-10s %14s %9s %12s %10s@." "mode" "cycles" "vs vol"
        "NVM accesses" "checks";
      List.iter
        (fun (r : Harness.result) ->
          let s = r.Harness.run in
          Fmt.pr "%-10s %14d %8.2fx %12d %10d@."
            (Runtime.mode_name r.Harness.mode)
            s.Cpu.cycles
            (float_of_int s.Cpu.cycles /. base)
            s.Cpu.nvm_accesses r.Harness.checks.Harness.dynamic_checks)
        results;
      if latency then begin
        Fmt.pr "@.per-op latency (cycles)@.";
        Fmt.pr "%-10s %9s %9s %9s %9s %9s@." "mode" "p50" "p90" "p99" "p999"
          "max";
        List.iter
          (fun (r : Harness.result) ->
            let s = Latency.summary (Oplat.latency r.Harness.oplat) in
            Fmt.pr "%-10s %9d %9d %9d %9d %9d@."
              (Runtime.mode_name r.Harness.mode)
              s.Latency.p50 s.Latency.p90 s.Latency.p99 s.Latency.p999
              s.Latency.max)
          results
      end;
      write_slow_trace
        (List.map (fun (r : Harness.result) -> r.Harness.oplat) results)
    end
  in
  Cmd.v
    (Cmd.info "kv" ~doc:"Run a YCSB workload against an index structure.")
    Term.(
      const run $ structure_arg $ mode_arg $ persist_arg $ records_arg
      $ ops_arg $ dist_arg $ compare_arg $ jobs_arg $ stats_arg $ trace_arg
      $ latency_arg $ fast_arg $ slow_trace_arg $ shards_arg $ batch_arg
      $ front_cache_arg $ mix_arg $ cores_arg)

(* --- stats --------------------------------------------------------------- *)

let stats_cmd =
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"FILE"
          ~doc:"Write the stats JSON document to $(docv).")
  in
  let run structure records ops dist output jobs =
    let spec = spec_of ~records ~ops ~dist in
    let pool = Pool.create ~jobs:(resolve_jobs jobs) () in
    let p =
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () -> Profile.run ~par:(Pool.run pool) ~benchmark:structure spec)
    in
    Fmt.pr "telemetry profile: %s (SW and HW cells)@." structure;
    List.iter
      (fun (k, v) -> Fmt.pr "  %-30s %.4f@." k v)
      p.Profile.derived;
    Fmt.pr "top check sites:@.";
    List.iteri
      (fun i (r : Profile.site_row) ->
        if i < 8 then
          Fmt.pr "  %-30s %s %d@." r.Profile.site
            (if r.Profile.static then "static " else "dynamic")
            r.Profile.checks)
      p.Profile.sites;
    match output with
    | Some path -> (
        match open_out path with
        | oc ->
            Json.to_channel oc (Profile.stats_json p);
            output_char oc '\n';
            close_out oc;
            Fmt.epr "stats written to %s@." path
        | exception Sys_error msg ->
            Fmt.epr "--output: %s@." msg;
            exit 1)
    | None -> ()
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Profile a YCSB run: per-site dynamic checks, POLB/VALB hit rates, \
          cycle attribution.")
    Term.(
      const run $ structure_arg $ records_arg $ ops_arg $ dist_arg $ output
      $ jobs_arg)

(* --- knn ------------------------------------------------------------------- *)

let knn_cmd =
  let k = Arg.(value & opt int 3 & info [ "k" ] ~doc:"Neighbours to consider.") in
  let run mode k =
    let rt = Runtime.create ~mode () in
    let placement =
      match mode with
      | Runtime.Volatile -> Knn.all_dram
      | _ ->
          let pool = Runtime.create_pool rt ~name:"knn" ~size:(1 lsl 21) in
          Knn.paper_placement ~pool
    in
    let data = Iris.generate () in
    let t =
      Knn.create rt placement ~n:Iris.total_samples
        ~dims:Iris.features_per_sample ~k
    in
    Knn.load_input t data.Iris.features;
    let s0 = Runtime.snapshot rt in
    Knn.run rt t;
    let s = Cpu.diff_snapshot (Runtime.snapshot rt) s0 in
    Fmt.pr "KNN (k=%d, %s): %d cycles, %d memory accesses, accuracy %.1f%%@."
      k (Runtime.mode_name mode) s.Cpu.cycles s.Cpu.mem_accesses
      (100. *. Knn.accuracy t data.Iris.labels)
  in
  Cmd.v
    (Cmd.info "knn" ~doc:"Run the KNN case study on the iris dataset.")
    Term.(const run $ mode_arg $ k)

(* --- soundness ---------------------------------------------------------------- *)

let soundness_cmd =
  let run jobs =
    let configs =
      [ (Runtime.Sw, false); (Runtime.Sw, true); (Runtime.Hw, false);
        (Runtime.Hw, true) ]
    in
    let check (name, program) =
      let run_in mode persistent =
        let rt = Runtime.create ~mode () in
        let heap =
          if persistent then
            Runtime.Pool_region
              (Runtime.create_pool rt ~name:"heap" ~size:(1 lsl 22))
          else Runtime.Dram_region
        in
        (Interp.run rt ~heap program ~args:[]).Interp.output
      in
      let reference = run_in Runtime.Volatile false in
      List.map
        (fun (mode, persistent) ->
          (name, mode, persistent, run_in mode persistent = reference))
        configs
    in
    let pool = Pool.create ~jobs:(resolve_jobs jobs) () in
    let rows =
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () -> List.concat (Pool.map pool check Corpus.all))
    in
    let failures = List.length (List.filter (fun (_, _, _, ok) -> not ok) rows) in
    List.iter
      (fun (name, mode, persistent, ok) ->
        Fmt.pr "%-14s %-8s heap=%-4s %s@." name (Runtime.mode_name mode)
          (if persistent then "NVM" else "DRAM")
          (if ok then "ok" else "MISMATCH"))
      rows;
    if failures = 0 then Fmt.pr "all corpus runs sound@."
    else Fmt.pr "%d mismatches@." failures
  in
  Cmd.v
    (Cmd.info "soundness"
       ~doc:"Replay the mini-C corpus under every configuration.")
    Term.(const run $ jobs_arg)

(* --- inference ------------------------------------------------------------------ *)

let inference_cmd =
  let run () =
    List.iter
      (fun (name, program) ->
        let r = Inference.infer program in
        Fmt.pr "%-14s %3d pointer-op sites, %3d still checked (%.0f%%)@." name
          r.Inference.total_sites r.Inference.checked_sites
          (100. *. Inference.fraction_checked r))
      Corpus.all
  in
  Cmd.v
    (Cmd.info "inference"
       ~doc:"Run the pointer-property inference over the corpus.")
    Term.(const run $ const ())

(* --- run / compile mini-C source files ---------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_file path =
  try Nvml_minic.Parser.parse_program (read_file path) with
  | Nvml_minic.Lexer.Lex_error (m, l, c) ->
      Fmt.epr "%s:%d:%d: lexical error: %s@." path l c m;
      exit 1
  | Nvml_minic.Parser.Parse_error (m, l, c) ->
      Fmt.epr "%s:%d:%d: syntax error: %s@." path l c m;
      exit 1

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"A mini-C source file.")

(* Shared across the verification engines (fuzz, faultinject, scrub):
   they default to fast functional simulation and offer the
   cycle-accurate core as an opt-out. *)
let timing_arg =
  Arg.(
    value & flag
    & info [ "timing" ]
        ~doc:
          "Run the cycle-accurate core instead of the default fast \
           functional mode.  Functional results (checks, crash points, \
           verdicts, reports) are identical either way; only wall-clock \
           and timing statistics differ.")

let run_cmd =
  let persistent =
    Arg.(
      value & flag
      & info [ "persistent"; "p" ]
          ~doc:"Place the heap in a persistent pool (libvmmalloc-style).")
  in
  let fast_arg =
    Arg.(
      value & flag
      & info [ "fast" ]
          ~doc:
            "Fast functional mode: skip cache/TLB/branch/storeP timing \
             (cycles = instructions).  Program output is identical to \
             the default cycle-accurate run.")
  in
  let run path mode persist persistent fast cores =
    if cores < 1 then begin
      Fmt.epr "--cores must be >= 1, got %d@." cores;
      exit 1
    end;
    let program = parse_file path in
    let rt = Runtime.create ~timing:(not fast) ~mode ~persist () in
    let report_errors f =
      try f () with
      | Nvml_minic.Types.Type_error m ->
          Fmt.epr "type error: %s@." m;
          exit 1
      | Nvml_minic.Interp.Runtime_error m ->
          Fmt.epr "runtime error: %s@." m;
          exit 1
    in
    if cores = 1 then begin
      let heap =
        if persistent && mode <> Runtime.Volatile then
          Runtime.Pool_region
            (Runtime.create_pool rt ~name:"heap" ~size:(1 lsl 22))
        else Runtime.Dram_region
      in
      let s0 = Runtime.snapshot rt in
      report_errors (fun () ->
          let outcome = Nvml_minic.Interp.run rt ~heap program ~args:[] in
          List.iter (Fmt.pr "%Ld@.") outcome.Nvml_minic.Interp.output);
      (* Mini-C has no operation boundaries, so a relaxed model treats
         the whole program as one epoch; close it before reporting. *)
      Runtime.persist_sync rt;
      let s = Cpu.diff_snapshot (Runtime.snapshot rt) s0 in
      Fmt.epr "[%s, heap=%s] %d cycles, %d instructions, %d memory accesses@."
        (Runtime.mode_name mode)
        (if persistent then "NVM" else "DRAM")
        s.Cpu.cycles s.Cpu.instrs s.Cpu.mem_accesses
    end
    else begin
      (* One replica of the program per core (each with its own heap, so
         persistent-allocator metadata stays disjoint), interleaved per
         µ-event over the shared cache hierarchy. *)
      let cluster = Cluster.create ~cores rt in
      let heaps =
        Array.init cores (fun i ->
            if persistent && mode <> Runtime.Volatile then
              Runtime.Pool_region
                (Runtime.create_pool rt
                   ~name:(Printf.sprintf "heap%d" i)
                   ~size:(1 lsl 22))
            else Runtime.Dram_region)
      in
      let outputs = Array.make cores [] in
      let body core =
        let outcome =
          Nvml_minic.Interp.run (Cluster.rt cluster core) ~heap:heaps.(core)
            program ~args:[]
        in
        outputs.(core) <- outcome.Nvml_minic.Interp.output
      in
      report_errors (fun () ->
          Cluster.run cluster (Array.init cores (fun _ -> body)));
      Runtime.persist_sync rt;
      Array.iteri
        (fun i out ->
          List.iter (fun v -> Fmt.pr "[core %d] %Ld@." i v) out)
        outputs;
      Array.iteri
        (fun i crt ->
          let s = Runtime.snapshot crt in
          Fmt.epr
            "[core %d] [%s, heap=%s] %d cycles, %d instructions, %d memory \
             accesses@."
            i
            (Runtime.mode_name mode)
            (if persistent then "NVM" else "DRAM")
            s.Cpu.cycles s.Cpu.instrs s.Cpu.mem_accesses)
        (Cluster.rts cluster);
      print_cluster_stats cluster
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Interpret a mini-C source file on the simulator.")
    Term.(
      const run $ file_arg $ mode_arg $ persist_arg $ persistent $ fast_arg
      $ cores_arg)

let compile_cmd =
  let run path =
    let program = parse_file path in
    print_endline (Nvml_comp.Codegen.generated_source program)
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Show the Fig. 9-style instrumented code the SW compiler pass \
          generates for a mini-C source file.")
    Term.(const run $ file_arg)

(* --- faultinject ------------------------------------------------------------------------ *)

let faultinject_cmd =
  let workload_arg =
    Arg.(
      value & opt string "kv"
      & info [ "workload"; "w" ] ~docv:"NAME"
          ~doc:
            "Workload to sweep: $(b,kv) (YCSB stream against --structure), \
             $(b,counter) (3-store transactions over a flat array) or \
             $(b,conc) (the durably-linearizable concurrent structures on \
             the --cores multi-core machine; --seed drives the schedule, \
             --ops is per core).")
  in
  let records_arg =
    Arg.(
      value & opt int 30
      & info [ "records" ] ~doc:"Initial records (kv workload).")
  in
  let ops_arg =
    Arg.(value & opt int 100 & info [ "ops" ] ~doc:"Run-phase operations.")
  in
  let every_n_arg =
    Arg.(
      value & opt int 1
      & info [ "every-n"; "n" ] ~docv:"N"
          ~doc:
            "Crash at every $(docv)th persistence event (1 = exhaustive). \
             Ignored when --at is given.")
  in
  let at_arg =
    Arg.(
      value & opt_all int []
      & info [ "at" ] ~docv:"EVENT"
          ~doc:
            "Crash at this exact event index (repeatable).  An out-of-range \
             index exits with an error naming the workload's valid event \
             range.")
  in
  let torn_arg =
    Arg.(
      value & flag
      & info [ "torn" ]
          ~doc:
            "Additionally tear the interrupted store: the word is replaced \
             by a seeded byte-mix of its old and new value, modelling a \
             power failure mid-write.  Undo-log words are exempt (the log \
             protocol assumes 8-byte atomicity).")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Seed for the torn byte masks; sweeps with the same seed replay \
             bit-identically.")
  in
  let max_points_arg =
    Arg.(
      value & opt (some int) None
      & info [ "max-points" ] ~docv:"N"
          ~doc:"Stop after the first $(docv) crash points (smoke runs).")
  in
  let break_arg =
    Arg.(
      value & flag
      & info [ "break-recovery" ]
          ~doc:
            "Checker self-test: skip log recovery after each crash and \
             report the violations the checker finds.")
  in
  let run mode persist workload structure records ops every_n at torn seed
      max_points break_recovery jobs timing cores =
    (* [--at] out of range (and any other sweep-setup misuse) surfaces
       as Invalid_argument; turn it into a clean CLI error. *)
    let checked f = try f () with Invalid_argument m -> Fmt.epr "%s@." m; exit 1 in
    if String.lowercase_ascii workload = "conc" then begin
      (* Multi-core sweep: crash at every enumerated persistence event of
         any core of the seeded interleaving; [--seed] drives the
         schedule, [--ops] is per core. *)
      if cores < 1 then begin
        Fmt.epr "--cores must be >= 1, got %d@." cores;
        exit 1
      end;
      let spec =
        {
          Faultinject.cores;
          ops_per_core = ops;
          sched_seed = seed;
          conc_every_n = max 1 every_n;
          conc_max_points = max_points;
        }
      in
      let pool = Pool.create ~jobs:(resolve_jobs jobs) () in
      let report =
        Fun.protect
          ~finally:(fun () -> Pool.shutdown pool)
          (fun () ->
            checked (fun () ->
                Faultinject.run_conc ~par:(Pool.run pool) ~mode ~persist ~spec
                  ~timing ()))
      in
      Fmt.pr "%a@." Faultinject.pp_conc_report report;
      if report.Faultinject.conc_violation_list <> [] then exit 1
    end
    else
    let w =
      match String.lowercase_ascii workload with
      | "counter" -> Faultinject.counter_workload ~ops ()
      | "kv" -> Faultinject.kv_workload ~structure ~records ~ops ()
      | other ->
          Fmt.epr "--workload expects kv, counter or conc, got %S@." other;
          exit 2
    in
    let spec =
      {
        Faultinject.every_n = max 1 every_n;
        at;
        torn;
        seed;
        max_points;
        break_recovery;
      }
    in
    let pool = Pool.create ~jobs:(resolve_jobs jobs) () in
    let report =
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          checked (fun () ->
              Faultinject.run ~par:(Pool.run pool) ~mode ~persist ~spec ~timing
                w))
    in
    Fmt.pr "%a@." Faultinject.pp_report report;
    if report.Faultinject.violations <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "faultinject"
       ~doc:
         "Crash-point fault injection: re-run a workload, losing power at \
          every chosen persistence event, and check that recovery restores \
          a consistent state."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "A reference pass counts every persistence-relevant event of \
              the workload (persistent stores, storeP retirements, undo-log \
              appends, allocator metadata writes).  Each selected event \
              index is then replayed on a fresh machine that crashes \
              exactly there; after reboot, pool re-open and log recovery, \
              the checker validates structural invariants, pointer \
              reachability, transaction atomicity against pre/post-op \
              snapshots, and the persistent freelist.";
           `P
             "Under a relaxed persistency model (--persist epoch:N or lazy) \
              the sweep additionally arms the contract oracle: a pure pass \
              over the reference µ-event schedule predicts, for every crash \
              point, exactly which committed operation suffix is legitimately \
              lost, and recovery must land on precisely that predicted epoch \
              boundary — losing more or less than the contract allows is a \
              violation either way.";
           `P "Exits 1 if any crash point produced a violation.";
         ])
    Term.(
      const run $ mode_arg $ persist_arg $ workload_arg $ structure_arg
      $ records_arg $ ops_arg $ every_n_arg $ at_arg $ torn_arg $ seed_arg
      $ max_points_arg $ break_arg $ jobs_arg $ timing_arg $ cores_arg)

(* --- fuzz ----------------------------------------------------------------------------- *)

let fuzz_cmd =
  let component_arg =
    Arg.(
      value & opt_all string []
      & info [ "component"; "c" ] ~docv:"NAME"
          ~doc:
            "Component to fuzz (repeatable; default all). One of cache, \
             valb, storep, vatb, freelist, pmop, semantics, zipf, \
             structures (all containers) or structures:$(i,NAME).")
  in
  let ops_arg =
    Arg.(
      value & opt int 256
      & info [ "ops" ] ~docv:"N"
          ~doc:
            "Ops per component run (heavyweight harnesses scale this \
             down; see DESIGN.md).")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Stream seed. A run is deterministic in (component, seed, \
             ops), so a reported violation replays bit-identically.")
  in
  let seeds_arg =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Sweep $(docv) consecutive seeds starting at --seed.")
  in
  let break_arg =
    Arg.(
      value & flag
      & info [ "break" ]
          ~doc:
            "Fuzzer self-test: re-enable the historical bugs (quirks) in \
             quirk-capable components and demand the fuzzer finds each \
             one while every other component stays clean.")
  in
  let stats_arg =
    Arg.(
      value & opt (some string) None
      & info [ "stats" ] ~docv:"FILE"
          ~doc:
            "Record telemetry (fuzz.* counters included) and write the \
             stats JSON document to $(docv).")
  in
  let run components ops seed seeds break jobs stats_file timing =
    let instrumented f =
      match stats_file with
      | None -> f ()
      | Some path ->
          (* Enable telemetry for the whole run (not per component) so
             parallel workers all see one stable enabled flag. *)
          Telemetry.set_enabled true;
          Telemetry.run_with_sink (Telemetry.fresh_sink ()) (fun () ->
              let r = f () in
              (match open_out path with
              | oc ->
                  Telemetry.write_stats_json oc;
                  close_out oc;
                  Fmt.epr "stats written to %s@." path
              | exception Sys_error msg ->
                  Fmt.epr "--stats: %s@." msg;
                  exit 1);
              r)
    in
    let pool = Pool.create ~jobs:(resolve_jobs jobs) () in
    let reports =
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          instrumented @@ fun () ->
          List.init seeds (fun i ->
              match
                Modelcheck.run ~pool ~break ~timing ~components ~ops
                  ~seed:(seed + i) ()
              with
              | report -> report
              | exception Modelcheck.Unknown_component name ->
                  Fmt.epr "unknown component %S (known: %s)@." name
                    (String.concat ", " (Modelcheck.names ()));
                  exit 2))
    in
    List.iter (Fmt.pr "%a" Modelcheck.pp_report) reports;
    if break then begin
      if List.for_all Modelcheck.break_run_ok reports then
        Fmt.pr "fuzz --break: every planted bug was found@."
      else begin
        Fmt.pr "fuzz --break: self-test FAILED (a planted bug escaped, or \
                a clean component reported a violation)@.";
        exit 1
      end
    end
    else
      List.iter
        (fun (r : Modelcheck.report) ->
          if r.Modelcheck.violations > 0 then begin
            List.iter
              (fun (e : Modelcheck.entry) ->
                match e.Modelcheck.result.Engine.violation with
                | Some _ ->
                    Fmt.pr "replay: nvml fuzz --component %s --seed %d \
                            --ops %d@."
                      e.Modelcheck.spec_name e.Modelcheck.result.Engine.seed
                      ops
                | None -> ())
              r.Modelcheck.entries;
            exit 1
          end)
        reports
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Model-based differential fuzzing of the simulated components."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Each component (POLB cache, VALB, storeP unit, VATB B-tree, \
              freelist allocator, pool manager, every persistent container, \
              plus two cross-layer properties: SW-vs-HW pointer-semantics \
              equivalence on the mini-C corpus and YCSB distribution \
              statistics) runs in lockstep with an obviously-correct \
              reference model on a seeded random op stream.  Any divergence \
              or broken invariant is shrunk to a minimal counterexample by \
              greedy delta-debugging and reported with a replayable seed.";
           `P "Exits 1 on any violation (or a failed --break self-test).";
         ])
    Term.(
      const run $ component_arg $ ops_arg $ seed_arg $ seeds_arg $ break_arg
      $ jobs_arg $ stats_arg $ timing_arg)

(* --- scrub ---------------------------------------------------------------------------- *)

let scrub_cmd =
  let pools_arg =
    Arg.(value & opt int 3 & info [ "pools" ] ~docv:"N" ~doc:"Pools per cell.")
  in
  let records_arg =
    Arg.(
      value & opt int 48
      & info [ "records" ] ~docv:"N"
          ~doc:
            "Objects allocated per pool before sealing (a third are freed \
             again so the free list has interior nodes).")
  in
  let rate_arg =
    Arg.(
      value & opt float 5e-4
      & info [ "rate" ] ~docv:"R"
          ~doc:
            "Per-word (per-line for poison) fault probability for each \
             enabled kind; 0 disables injection.")
  in
  let kinds_arg =
    Arg.(
      value & opt_all string []
      & info [ "kinds" ] ~docv:"KIND"
          ~doc:
            "Fault kinds to inject (repeatable): $(b,flip), $(b,poison), \
             $(b,transient). Default: all three.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Cell seed (population and fault placement); a cell replays \
             bit-identically from (seed, rate, kinds).")
  in
  let seeds_arg =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Sweep $(docv) consecutive seeds starting at --seed.")
  in
  let repair_arg =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:
            "Repair what the replica superblock can vouch for and re-seal; \
             without it the scrub only reports and degrades.")
  in
  let report_arg =
    Arg.(
      value & flag
      & info [ "report" ]
          ~doc:
            "Print the full per-pool findings report for every cell, not \
             just the summary line.")
  in
  let allow_loss_arg =
    Arg.(
      value & flag
      & info [ "allow-loss" ]
          ~doc:"Exit 0 even when unrepairable damage remains (smoke runs).")
  in
  let stats_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats" ] ~docv:"FILE"
          ~doc:
            "Record telemetry (media.* counters included) and write the \
             stats JSON document to $(docv).")
  in
  let run pools records rate kinds seed seeds repair report allow_loss jobs
      stats_file timing =
    (* The scrub engine drives raw memory with no simulated core, so it
       is already purely functional; --timing is accepted for CLI
       uniformity with fuzz/faultinject and changes nothing. *)
    ignore (timing : bool);
    let kinds =
      List.map
        (fun k ->
          match Media.kind_of_name k with
          | Some k -> k
          | None ->
              Fmt.epr "--kinds expects flip, poison or transient, got %S@." k;
              exit 2)
        kinds
    in
    let replay_flags =
      Fmt.str "--rate %g%s%s" rate
        (String.concat ""
           (List.map (fun k -> " --kinds " ^ Media.kind_name k) kinds))
        (if repair then " --repair" else "")
    in
    let instrumented f =
      match stats_file with
      | None -> f ()
      | Some path ->
          Telemetry.set_enabled true;
          Telemetry.run_with_sink (Telemetry.fresh_sink ()) (fun () ->
              let r = f () in
              (match open_out path with
              | oc ->
                  Telemetry.write_stats_json oc;
                  close_out oc;
                  Fmt.epr "stats written to %s@." path
              | exception Sys_error msg ->
                  Fmt.epr "--stats: %s@." msg;
                  exit 1);
              r)
    in
    let pool = Pool.create ~jobs:(resolve_jobs jobs) () in
    let cells =
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          instrumented @@ fun () ->
          Pool.run pool
            (List.init seeds (fun i () ->
                 Mediacheck.run_cell
                   {
                     Mediacheck.pools;
                     records;
                     rate;
                     kinds;
                     seed = seed + i;
                     repair;
                   })))
    in
    List.iter
      (fun (c : Mediacheck.cell) ->
        Fmt.pr "%a@." Mediacheck.pp_summary c;
        if report then Fmt.pr "%a@." Scrub.pp_report c.Mediacheck.report;
        List.iter
          (fun m -> Fmt.pr "  MISPREDICTION %s@." m)
          c.Mediacheck.mispredictions)
      cells;
    let mispredicted =
      List.filter (fun c -> c.Mediacheck.mispredictions <> []) cells
    in
    if mispredicted <> [] then begin
      List.iter
        (fun (c : Mediacheck.cell) ->
          Fmt.pr
            "scrub: report disagrees with the injection ground truth — \
             replay: nvml scrub --seed %d %s@."
            c.Mediacheck.seed replay_flags)
        mispredicted;
      exit 2
    end;
    let lossy =
      List.filter
        (fun (c : Mediacheck.cell) ->
          c.Mediacheck.report.Scrub.unrepairable > 0)
        cells
    in
    if lossy <> [] && not allow_loss then begin
      List.iter
        (fun (c : Mediacheck.cell) ->
          Fmt.pr "replay: nvml scrub --seed %d %s --report@." c.Mediacheck.seed
            replay_flags)
        lossy;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "Verify and repair pool integrity metadata under seeded media-error \
          injection."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Each cell builds pools on a fresh machine, populates and seals \
              them, switches on the media-error injector (bit flips, \
              poisoned lines, transient read faults — a pure function of \
              (seed, frame, word)), and runs the scrub engine: every \
              superblock checksum (primary and replica), every block-header \
              checksum, the free-list chain, root reachability, and a \
              payload probe of every live object.  With $(b,--repair) a \
              corrupt primary superblock is restored from an intact replica \
              and a corrupt replica is rewritten by re-sealing; pools with \
              unrepairable primary-side damage are left attached read-only \
              (degraded).";
           `P
             "Because fault placement is pure, the cell predicts every \
              finding from the injector's ground truth before the scrub \
              runs, and the two are compared exactly: any disagreement is \
              reported as a MISPREDICTION and exits 2.  Exits 1 (with a \
              replayable seed) if unrepairable damage remains and \
              $(b,--allow-loss) was not given.";
         ])
    Term.(
      const run $ pools_arg $ records_arg $ rate_arg $ kinds_arg $ seed_arg
      $ seeds_arg $ repair_arg $ report_arg $ allow_loss_arg $ jobs_arg
      $ stats_arg $ timing_arg)

(* --- shell ---------------------------------------------------------------------------- *)

let shell_cmd =
  let structure =
    Arg.(
      value & opt string "RB"
      & info [ "structure"; "s" ] ~doc:"Index structure backing the store.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Seed for the 'crash torn' byte masks, so scripted sessions \
             replay bit-identically.")
  in
  let run mode structure seed =
    let shell = Nvml_kvstore.Shell.create ~mode ~structure ~seed () in
    Fmt.pr "persistent KV store (%s on %s) — 'help' for commands, 'quit' to \
            leave@."
      structure (Runtime.mode_name mode);
    let rec loop () =
      Fmt.pr "nvml> %!";
      match In_channel.input_line stdin with
      | None | Some "quit" | Some "exit" -> Fmt.pr "bye@."
      | Some line ->
          List.iter (Fmt.pr "%s@.") (Nvml_kvstore.Shell.exec shell line);
          loop ()
    in
    loop ()
  in
  Cmd.v
    (Cmd.info "shell"
       ~doc:"Interactive persistent key-value store with a crash command.")
    Term.(const run $ mode_arg $ structure $ seed)

(* --- info ------------------------------------------------------------------------- *)

let info_cmd =
  let run () =
    Fmt.pr "simulated machine:@.";
    List.iter
      (fun (k, v) -> Fmt.pr "  %-18s %s@." k v)
      (Config.rows Config.default);
    Fmt.pr "benchmark structures: %s@."
      (String.concat ", " Nvml_structures.Registry.benchmark_names)
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print the simulated machine configuration.")
    Term.(const run $ const ())

let () =
  let doc = "user-transparent persistent references on simulated NVM" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "nvml" ~version:"1.0.0" ~doc)
          [ kv_cmd; stats_cmd; knn_cmd; soundness_cmd; inference_cmd; run_cmd;
            compile_cmd; faultinject_cmd; fuzz_cmd; scrub_cmd; shell_cmd;
            info_cmd ]))
