(* A key-value store on NVM: run a YCSB workload against one of the six
   benchmark index structures in each of the four system configurations
   and compare the timing-model results — a miniature of the paper's
   Fig. 11 experiment.

     dune exec examples/kv_ycsb.exe            # RB tree, small workload
     dune exec examples/kv_ycsb.exe -- Splay   # another structure *)

module Cpu = Nvml_arch.Cpu
module Runtime = Nvml_runtime.Runtime
module Harness = Nvml_kvstore.Harness
module Workload = Nvml_ycsb.Workload

let () =
  let structure = if Array.length Sys.argv > 1 then Sys.argv.(1) else "RB" in
  let spec = Workload.scale Workload.paper_default 10 in
  Fmt.pr "workload: %a@." Workload.pp_spec spec;
  Fmt.pr "index structure: %s@.@." structure;
  let volatile = Harness.run_benchmark structure ~mode:Runtime.Volatile spec in
  Fmt.pr "%-10s %12s %10s %9s %12s %11s@." "version" "cycles" "vs native"
    "storeP" "mispredicts" "dyn.checks";
  List.iter
    (fun mode ->
      let r =
        if mode = Runtime.Volatile then volatile
        else Harness.run_benchmark structure ~mode spec
      in
      let s = r.Harness.run in
      Fmt.pr "%-10s %12d %9.2fx %9d %12d %11d@." (Runtime.mode_name mode)
        s.Cpu.cycles
        (float_of_int s.Cpu.cycles
        /. float_of_int volatile.Harness.run.Cpu.cycles)
        s.Cpu.storeps s.Cpu.branch_mispredicts
        r.Harness.checks.Harness.dynamic_checks)
    Runtime.all_modes;
  Fmt.pr "@.All %d GETs hit in every configuration — the four versions are@."
    volatile.Harness.hits;
  Fmt.pr "functionally identical; only the pointer machinery differs.@."
