(* Crash recovery with a legacy container: a red-black tree built by
   code with zero NVM awareness survives a machine crash inside a
   persistent pool, is recovered through the pool root, and keeps its
   full structural invariants — across several crash cycles, with the
   pool landing at a different virtual base every time.

     dune exec examples/crash_recovery.exe *)

module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Ptr = Nvml_core.Ptr
module Rb = Nvml_structures.Rb_tree

let site = Site.make ~static:true "crash_recovery"

let () =
  let rt = Runtime.create ~mode:Runtime.Hw () in
  let pool = Runtime.create_pool rt ~name:"store" ~size:(1 lsl 22) in
  let tree = Rb.create rt (Runtime.Pool_region pool) in
  Runtime.set_root rt ~site ~pool (Rb.header tree);

  let inserted = ref 0 in
  let tree = ref tree in
  for round = 1 to 4 do
    (* Mutate the persistent tree. *)
    for i = 1 to 250 do
      let key = Int64.of_int ((round * 1000) + i) in
      Rb.insert !tree ~key ~value:(Int64.mul key 2L);
      incr inserted
    done;
    (* Delete some keys from a previous round, too. *)
    if round > 1 then
      for i = 1 to 50 do
        let key = Int64.of_int (((round - 1) * 1000) + i) in
        if Rb.remove !tree key then decr inserted
      done;
    Fmt.pr "round %d: tree has %d keys@." round (Rb.size !tree);

    (* Power off. *)
    Runtime.crash_and_restart rt;
    ignore (Runtime.open_pool rt "store");
    let root = Runtime.get_root rt ~site ~pool in
    assert (not (Ptr.is_null root));
    tree := Rb.attach rt root;

    (* Everything is still there, and it is still a red-black tree. *)
    Rb.check_invariants !tree;
    assert (Rb.size !tree = !inserted);
    Fmt.pr "  after crash %d: recovered %d keys, invariants hold@." round
      (Rb.size !tree)
  done;

  (* Spot-check some values. *)
  assert (Rb.find !tree 1200L = Some 2400L);
  assert (Rb.find !tree 1001L = None);
  Fmt.pr "@.4 crash/recovery cycles; the tree re-mapped at a different@.";
  Fmt.pr "address each time and every relative pointer stayed valid.@."
