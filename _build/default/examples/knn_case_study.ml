(* The KNN case study (paper Sec. VII-E): a machine-learning kernel
   whose matrices — one input, one internal, two outputs — can each live
   in DRAM or NVM.  With user-transparent persistent references the same
   kernel binary handles all 16 placement combinations; we persist
   everything except the input, classify the iris dataset, crash-test
   nothing (see crash_recovery.ml for that) and compare configurations.

     dune exec examples/knn_case_study.exe *)

module Cpu = Nvml_arch.Cpu
module Runtime = Nvml_runtime.Runtime
module Matrix = Nvml_mlkit.Matrix
module Iris = Nvml_mlkit.Iris
module Knn = Nvml_mlkit.Knn

let run mode =
  let rt = Runtime.create ~mode () in
  let placement =
    match mode with
    | Runtime.Volatile -> Knn.all_dram
    | _ ->
        let pool = Runtime.create_pool rt ~name:"knn" ~size:(1 lsl 21) in
        Knn.paper_placement ~pool
  in
  let data = Iris.generate () in
  let t =
    Knn.create rt placement ~n:Iris.total_samples
      ~dims:Iris.features_per_sample ~k:3
  in
  Knn.load_input t data.Iris.features;
  let s0 = Runtime.snapshot rt in
  Knn.run rt t;
  let s1 = Runtime.snapshot rt in
  (Knn.accuracy t data.Iris.labels, Cpu.diff_snapshot s1 s0)

let () =
  Fmt.pr "KNN (k=3) on the synthetic iris dataset (150 samples, 4 features)@.";
  Fmt.pr "distance + neighbour matrices persisted; input stays volatile@.@.";
  let acc, volatile = run Runtime.Volatile in
  Fmt.pr "%-10s %12s %10s %10s@." "version" "cycles" "vs native" "accuracy";
  List.iter
    (fun mode ->
      let a, s =
        if mode = Runtime.Volatile then (acc, volatile) else run mode
      in
      Fmt.pr "%-10s %12d %9.2fx %9.1f%%@." (Runtime.mode_name mode)
        s.Cpu.cycles
        (float_of_int s.Cpu.cycles /. float_of_int volatile.Cpu.cycles)
        (100. *. a))
    Runtime.all_modes;
  Fmt.pr "@.Porting this kernel to NVM changed the four allocation sites@.";
  Fmt.pr "(one per matrix). An explicit-pointer port would rewrite every@.";
  Fmt.pr "matrix access — and need 16 code versions for the 16 placements.@."
