(* Crash consistency with persistent transactions (paper, Sec. VI):
   a tiny "bank" whose account balances live in a pool.  A transfer
   must move money atomically — a crash between the debit and the
   credit would otherwise lose it.  The undo log (itself in the pool)
   heals the interrupted transfer on recovery.

     dune exec examples/txn_transfer.exe *)

module Runtime = Nvml_runtime.Runtime
module Txn = Nvml_runtime.Txn
module Site = Nvml_runtime.Site

let site = Site.make ~static:true "bank"

let balance rt accounts i = Runtime.load_word rt ~site accounts ~off:(i * 8)

let total rt accounts =
  let t = ref 0L in
  for i = 0 to 3 do
    t := Int64.add !t (balance rt accounts i)
  done;
  !t

let () =
  let rt = Runtime.create ~mode:Runtime.Hw () in
  let pool = Runtime.create_pool rt ~name:"bank" ~size:(1 lsl 20) in
  let accounts = Runtime.alloc rt ~pool ~persistent:true 32 in
  let txn = Txn.create rt ~pool () in
  Runtime.set_root rt ~site ~pool (Txn.header txn);
  for i = 0 to 3 do
    Runtime.store_word rt ~site accounts ~off:(i * 8) 1000L
  done;
  Fmt.pr "opening balances: 4 x 1000, total %Ld@." (total rt accounts);

  (* A committed transfer. *)
  Txn.run txn (fun () ->
      Txn.store_word txn ~site accounts ~off:0
        (Int64.sub (balance rt accounts 0) 250L);
      Txn.store_word txn ~site accounts ~off:8
        (Int64.add (balance rt accounts 1) 250L));
  Fmt.pr "after committed transfer of 250: [%Ld %Ld %Ld %Ld], total %Ld@."
    (balance rt accounts 0) (balance rt accounts 1) (balance rt accounts 2)
    (balance rt accounts 3) (total rt accounts);

  (* A transfer interrupted by a crash between debit and credit. *)
  Txn.begin_ txn;
  Txn.store_word txn ~site accounts ~off:16
    (Int64.sub (balance rt accounts 2) 400L);
  Fmt.pr "debited 400 from account 2... and the machine dies.@.";
  Runtime.crash_and_restart rt;
  ignore (Runtime.open_pool rt "bank");
  let txn' = Txn.attach rt (Runtime.get_root rt ~site ~pool) in
  (match Txn.recover txn' with
  | Txn.Rolled_back n -> Fmt.pr "recovery rolled back %d logged store(s)@." n
  | Txn.Clean -> Fmt.pr "recovery found a clean log@.");
  Fmt.pr "after recovery: [%Ld %Ld %Ld %Ld], total %Ld@."
    (balance rt accounts 0) (balance rt accounts 1) (balance rt accounts 2)
    (balance rt accounts 3) (total rt accounts);
  assert (total rt accounts = 4000L);
  Fmt.pr "no money was created or destroyed.@."
