(* Quickstart: user-transparent persistent references in five minutes.

   A "legacy" doubly linked list (written with no NVM awareness at all —
   see lib/structures/linked_list.ml) is placed in a persistent pool
   just by picking the allocator region.  The machine then crashes; the
   pool is re-opened at a *different* virtual base, and the same list is
   traversed again through relative pointers that survived relocation.

     dune exec examples/quickstart.exe *)

module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Ptr = Nvml_core.Ptr
module Ll = Nvml_structures.Linked_list
module Pmop = Nvml_pool.Pmop

let site = Site.make ~static:true "quickstart"

let () =
  (* A machine with the hardware support (storeP + POLB/VALB). *)
  let rt = Runtime.create ~mode:Runtime.Hw () in

  (* 1. Create a persistent memory object pool. *)
  let pool = Runtime.create_pool rt ~name:"tasks" ~size:(1 lsl 20) in
  let base1 = Option.get (Pmop.pool_base (Runtime.pmop rt) pool) in
  Fmt.pr "pool 'tasks' mapped at 0x%Lx@." base1;

  (* 2. Use the legacy library with persistent allocation — the ONLY
     NVM-specific decision is the region argument. *)
  let todo = Ll.create rt (Runtime.Pool_region pool) in
  List.iteri
    (fun i label -> Ll.append todo ~v0:(Int64.of_int i) ~v1:label)
    [ 100L; 200L; 300L; 400L ];
  Fmt.pr "built a list of %d nodes, value sum = %Ld@." (Ll.length todo)
    (Ll.iterate_sum todo);

  (* 3. Anchor it in the pool root so it can be found after restart. *)
  Runtime.set_root rt ~site ~pool (Ll.header todo);

  (* 4. Crash.  DRAM, mappings, caches — all gone. *)
  Runtime.crash_and_restart rt;
  Fmt.pr "-- machine crashed and restarted --@.";

  (* 5. Re-open the pool: it lands at a different virtual base. *)
  ignore (Runtime.open_pool rt "tasks");
  let base2 = Option.get (Pmop.pool_base (Runtime.pmop rt) pool) in
  Fmt.pr "pool 'tasks' re-mapped at 0x%Lx (was 0x%Lx)@." base2 base1;
  assert (base2 <> base1);

  (* 6. The same library code walks the relocated list. *)
  let todo' = Ll.attach rt (Runtime.get_root rt ~site ~pool) in
  Ll.check_invariants todo';
  Fmt.pr "recovered %d nodes, value sum = %Ld@." (Ll.length todo')
    (Ll.iterate_sum todo');
  Fmt.pr "every pointer stored in NVM is in relative format; every one we@.";
  Fmt.pr "dereferenced was translated transparently. Done.@."
