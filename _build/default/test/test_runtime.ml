(* Tests for the execution runtime: mode-specific pointer behaviour,
   conversion/check accounting, allocation placement, crash/restart and
   root anchoring. *)

module Layout = Nvml_simmem.Layout
module Ptr = Nvml_core.Ptr
module Xlate = Nvml_core.Xlate
module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Cpu = Nvml_arch.Cpu

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)

let site = Site.make "test.site"
let static_site = Site.make ~static:true "test.static"

let make mode =
  let rt = Runtime.create ~mode () in
  let pool =
    match mode with
    | Runtime.Volatile -> -1
    | _ -> Runtime.create_pool rt ~name:"t" ~size:(1 lsl 20)
  in
  (rt, pool)

(* --- functional equivalence across modes -------------------------------- *)

let test_word_roundtrip_all_modes () =
  List.iter
    (fun mode ->
      let rt, pool = make mode in
      let region =
        match mode with
        | Runtime.Volatile -> Runtime.Dram_region
        | _ -> Runtime.Pool_region pool
      in
      let p = Runtime.alloc_in rt region 64 in
      Runtime.store_word rt ~site p ~off:16 99L;
      check_i64
        (Fmt.str "roundtrip in %a" Runtime.pp_mode mode)
        99L
        (Runtime.load_word rt ~site p ~off:16))
    Runtime.all_modes

let test_ptr_roundtrip_all_modes () =
  List.iter
    (fun mode ->
      let rt, pool = make mode in
      let region =
        match mode with
        | Runtime.Volatile -> Runtime.Dram_region
        | _ -> Runtime.Pool_region pool
      in
      let a = Runtime.alloc_in rt region 64 in
      let b = Runtime.alloc_in rt region 64 in
      Runtime.store_ptr rt ~site a ~off:0 b;
      let b' = Runtime.load_ptr rt ~site a ~off:0 in
      (* The loaded pointer must designate the same object, whatever
         its format in this mode. *)
      check_bool
        (Fmt.str "pointer designates same object in %a" Runtime.pp_mode mode)
        true
        (Runtime.ptr_eq rt ~site b b');
      Runtime.store_word rt ~site b' ~off:8 7L;
      check_i64 "data reachable through reloaded pointer" 7L
        (Runtime.load_word rt ~site b ~off:8))
    Runtime.all_modes

(* --- stored representation ------------------------------------------------ *)

let stored_bits rt p off =
  (* Peek at the raw stored word, bypassing the runtime. *)
  let va = Xlate.ra2va (Runtime.xlate rt) (Ptr.add p (Int64.of_int off)) in
  Nvml_simmem.Mem.read_word (Runtime.mem rt) va

let test_nvm_cells_hold_relative_format () =
  List.iter
    (fun mode ->
      let rt, pool = make mode in
      let region = Runtime.Pool_region pool in
      let a = Runtime.alloc_in rt region 64 in
      let b = Runtime.alloc_in rt region 64 in
      (* Store b (possibly as a VA) into a's field: must be relative. *)
      let b_va = Xlate.ra2va (Runtime.xlate rt) b in
      let value = match mode with Runtime.Hw | Runtime.Sw -> b_va | _ -> b in
      Runtime.store_ptr rt ~site a ~off:0 value;
      let raw = stored_bits rt a 0 in
      match mode with
      | Runtime.Explicit | Runtime.Sw | Runtime.Hw ->
          check_bool
            (Fmt.str "NVM cell holds relative bits in %a" Runtime.pp_mode mode)
            true (Ptr.is_relative raw);
          check_i64 "and exactly the allocation's relative form" b raw
      | Runtime.Volatile -> ())
    [ Runtime.Sw; Runtime.Hw; Runtime.Explicit ]

let test_dram_cells_hold_virtual_format () =
  List.iter
    (fun mode ->
      let rt, pool = make mode in
      let a = Runtime.alloc_in rt Runtime.Dram_region 64 in
      let b = Runtime.alloc_in rt (Runtime.Pool_region pool) 64 in
      Runtime.store_ptr rt ~site a ~off:0 b;
      let raw = stored_bits rt a 0 in
      match mode with
      | Runtime.Sw | Runtime.Hw ->
          check_bool
            (Fmt.str "DRAM cell holds VA bits in %a" Runtime.pp_mode mode)
            true (Ptr.is_virtual raw)
      | Runtime.Explicit ->
          (* The explicit model keeps handles everywhere. *)
          check_bool "explicit keeps the handle" true (Ptr.is_relative raw)
      | Runtime.Volatile -> ())
    [ Runtime.Sw; Runtime.Hw; Runtime.Explicit ]

(* --- allocation placement --------------------------------------------------- *)

let test_volatile_mode_everything_dram () =
  let rt, _ = make Runtime.Volatile in
  let p = Runtime.alloc_in rt (Runtime.Pool_region 1) 64 in
  check_bool "volatile mode ignores pool regions" true
    (Ptr.is_virtual p && not (Layout.is_nvm_va p))

let test_persistent_alloc_is_relative () =
  List.iter
    (fun mode ->
      let rt, pool = make mode in
      let p = Runtime.alloc_in rt (Runtime.Pool_region pool) 64 in
      check_bool
        (Fmt.str "pmalloc relative in %a" Runtime.pp_mode mode)
        true (Ptr.is_relative p))
    [ Runtime.Sw; Runtime.Hw; Runtime.Explicit ]

(* --- accounting --------------------------------------------------------------- *)

let test_sw_counts_dynamic_checks () =
  let rt, pool = make Runtime.Sw in
  let p = Runtime.alloc_in rt (Runtime.Pool_region pool) 64 in
  let c0 = (Runtime.counters rt).Xlate.dynamic_checks in
  ignore (Runtime.load_word rt ~site p ~off:0);
  let c1 = (Runtime.counters rt).Xlate.dynamic_checks in
  check_bool "SW load emits a dynamic check" true (c1 > c0);
  (* Static sites are check-free. *)
  ignore (Runtime.load_word rt ~site:static_site p ~off:0);
  let c2 = (Runtime.counters rt).Xlate.dynamic_checks in
  check_int "static site emits no check" c1 c2

let test_hw_no_dynamic_checks () =
  let rt, pool = make Runtime.Hw in
  let p = Runtime.alloc_in rt (Runtime.Pool_region pool) 64 in
  ignore (Runtime.load_word rt ~site p ~off:0);
  Runtime.store_ptr rt ~site p ~off:8 p;
  check_int "HW emits no software checks" 0
    (Runtime.counters rt).Xlate.dynamic_checks

let test_hw_polb_on_relative_deref () =
  let rt, pool = make Runtime.Hw in
  let p = Runtime.alloc_in rt (Runtime.Pool_region pool) 64 in
  let s0 = Runtime.snapshot rt in
  ignore (Runtime.load_word rt ~site p ~off:0);
  let s1 = Runtime.snapshot rt in
  check_int "relative deref goes through POLB" 1
    (s1.Cpu.polb_accesses - s0.Cpu.polb_accesses)

let test_hw_storep_on_pointer_store () =
  let rt, pool = make Runtime.Hw in
  let p = Runtime.alloc_in rt (Runtime.Pool_region pool) 64 in
  let q = Runtime.alloc_in rt (Runtime.Pool_region pool) 64 in
  let s0 = Runtime.snapshot rt in
  Runtime.store_ptr rt ~site p ~off:0 q;
  let s1 = Runtime.snapshot rt in
  check_int "pointer store is a storeP" 1 (s1.Cpu.storeps - s0.Cpu.storeps);
  (* Plain data store is not. *)
  Runtime.store_word rt ~site p ~off:8 1L;
  let s2 = Runtime.snapshot rt in
  check_int "data store is storeD" 0 (s2.Cpu.storeps - s1.Cpu.storeps)

let test_explicit_translates_every_access () =
  let rt, pool = make Runtime.Explicit in
  let p = Runtime.alloc_in rt (Runtime.Pool_region pool) 64 in
  let s0 = Runtime.snapshot rt in
  for _ = 1 to 10 do
    ignore (Runtime.load_word rt ~site p ~off:0)
  done;
  let s1 = Runtime.snapshot rt in
  check_int "ten accesses, ten translations" 10
    (s1.Cpu.polb_accesses - s0.Cpu.polb_accesses)

let test_hw_translation_reuse_beats_explicit () =
  (* The Fig. 12 effect: loading one pointer then touching many fields
     through it costs one translation under HW, many under Explicit. *)
  let run mode =
    let rt, pool = make mode in
    let a = Runtime.alloc_in rt (Runtime.Pool_region pool) 64 in
    let b = Runtime.alloc_in rt (Runtime.Pool_region pool) 64 in
    Runtime.store_ptr rt ~site a ~off:0 b;
    let s0 = Runtime.snapshot rt in
    let p = Runtime.load_ptr rt ~site a ~off:0 in
    for i = 0 to 5 do
      ignore (Runtime.load_word rt ~site p ~off:(8 * i))
    done;
    let s1 = Runtime.snapshot rt in
    s1.Cpu.polb_accesses - s0.Cpu.polb_accesses
  in
  let hw = run Runtime.Hw and explicit = run Runtime.Explicit in
  check_bool
    (Fmt.str "HW (%d) fewer translations than Explicit (%d)" hw explicit)
    true (hw < explicit)

let test_sw_emits_more_branches () =
  let run mode =
    let rt, pool = make mode in
    let p = Runtime.alloc_in rt (Runtime.Pool_region pool) 64 in
    let s0 = Runtime.snapshot rt in
    for _ = 1 to 20 do
      ignore (Runtime.load_word rt ~site p ~off:0)
    done;
    let s1 = Runtime.snapshot rt in
    s1.Cpu.branches - s0.Cpu.branches
  in
  check_bool "SW executes check branches, HW none" true
    (run Runtime.Sw > run Runtime.Hw)

(* --- crash / restart ------------------------------------------------------------- *)

let test_crash_restart_with_root () =
  List.iter
    (fun mode ->
      let rt, pool = make mode in
      let node = Runtime.alloc_in rt (Runtime.Pool_region pool) 64 in
      Runtime.store_word rt ~site node ~off:8 1234L;
      Runtime.set_root rt ~site ~pool node;
      Runtime.crash_and_restart rt;
      ignore (Runtime.open_pool rt "t");
      let root = Runtime.get_root rt ~site ~pool in
      check_bool
        (Fmt.str "root found after restart in %a" Runtime.pp_mode mode)
        false
        (Runtime.ptr_is_null rt ~site root);
      check_i64 "data intact" 1234L (Runtime.load_word rt ~site root ~off:8))
    [ Runtime.Sw; Runtime.Hw; Runtime.Explicit ]

let test_crash_detached_pool_faults () =
  let rt, pool = make Runtime.Hw in
  let node = Runtime.alloc_in rt (Runtime.Pool_region pool) 64 in
  Runtime.detach_pool rt pool;
  check_bool "detached pool deref faults" true
    (try
       ignore (Runtime.load_word rt ~site node ~off:0);
       false
     with Xlate.Pool_detached _ -> true)

(* --- properties --------------------------------------------------------------------- *)

let prop_mode_equivalence =
  (* The same program (random word stores into two objects linked by a
     pointer) observes identical values in all four modes. *)
  QCheck.Test.make ~name:"programs observe identical values in every mode"
    ~count:50
    QCheck.(list_of_size Gen.(int_range 1 30) (pair (int_bound 7) small_int))
    (fun writes ->
      let run mode =
        let rt, pool = make mode in
        let region =
          match mode with
          | Runtime.Volatile -> Runtime.Dram_region
          | _ -> Runtime.Pool_region pool
        in
        let a = Runtime.alloc_in rt region 64 in
        let b = Runtime.alloc_in rt region 64 in
        Runtime.store_ptr rt ~site a ~off:0 b;
        List.iter
          (fun (slot, v) ->
            let target = Runtime.load_ptr rt ~site a ~off:0 in
            Runtime.store_word rt ~site target ~off:(8 * slot)
              (Int64.of_int v))
          writes;
        let target = Runtime.load_ptr rt ~site a ~off:0 in
        List.map
          (fun i -> Runtime.load_word rt ~site target ~off:(8 * i))
          [ 0; 1; 2; 3; 4; 5; 6; 7 ]
      in
      let reference = run Runtime.Volatile in
      List.for_all
        (fun mode -> run mode = reference)
        [ Runtime.Sw; Runtime.Hw; Runtime.Explicit ])

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_mode_equivalence ]

let () =
  Alcotest.run "runtime"
    [
      ( "equivalence",
        [
          Alcotest.test_case "word roundtrip" `Quick
            test_word_roundtrip_all_modes;
          Alcotest.test_case "pointer roundtrip" `Quick
            test_ptr_roundtrip_all_modes;
        ] );
      ( "representation",
        [
          Alcotest.test_case "NVM cells relative" `Quick
            test_nvm_cells_hold_relative_format;
          Alcotest.test_case "DRAM cells virtual" `Quick
            test_dram_cells_hold_virtual_format;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "volatile is DRAM-only" `Quick
            test_volatile_mode_everything_dram;
          Alcotest.test_case "pmalloc relative" `Quick
            test_persistent_alloc_is_relative;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "SW dynamic checks" `Quick
            test_sw_counts_dynamic_checks;
          Alcotest.test_case "HW no software checks" `Quick
            test_hw_no_dynamic_checks;
          Alcotest.test_case "HW POLB on deref" `Quick
            test_hw_polb_on_relative_deref;
          Alcotest.test_case "HW storeP on pointer store" `Quick
            test_hw_storep_on_pointer_store;
          Alcotest.test_case "Explicit per-access translation" `Quick
            test_explicit_translates_every_access;
          Alcotest.test_case "translation reuse (Fig. 12)" `Quick
            test_hw_translation_reuse_beats_explicit;
          Alcotest.test_case "SW branch volume" `Quick
            test_sw_emits_more_branches;
        ] );
      ( "crash",
        [
          Alcotest.test_case "restart with root" `Quick
            test_crash_restart_with_root;
          Alcotest.test_case "detached pool faults" `Quick
            test_crash_detached_pool_faults;
        ] );
      ("properties", qsuite);
    ]
