(* Multi-pool stress: structures spanning many pools exercise the
   translation hardware's capacity mechanisms (POLB/VALB eviction, POW
   and VAW walks) and cross-pool pointer semantics, which single-pool
   workloads never touch. *)

module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Ptr = Nvml_core.Ptr
module Cpu = Nvml_arch.Cpu

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)

let site = Site.make "multipool.harness"

(* Build a chain of [n] nodes round-robin across [pools] pools;
   node layout: next(0), value(8). *)
let build_chain rt pools n =
  let npools = Array.length pools in
  let head = ref Ptr.null in
  for i = n - 1 downto 0 do
    let node =
      Runtime.alloc rt ~pool:pools.(i mod npools) ~persistent:true 16
    in
    Runtime.store_ptr rt ~site node ~off:0 !head;
    Runtime.store_word rt ~site node ~off:8 (Int64.of_int i);
    head := node
  done;
  !head

let sum_chain rt head =
  let sum = ref 0L in
  let node = ref head in
  while not (Runtime.ptr_is_null rt ~site !node) do
    sum := Int64.add !sum (Runtime.load_word rt ~site !node ~off:8);
    node := Runtime.load_ptr rt ~site !node ~off:0
  done;
  !sum

let make_pools rt n =
  Array.init n (fun i ->
      Runtime.create_pool rt ~name:(Fmt.str "p%d" i) ~size:(1 lsl 16))

let expected_sum n = Int64.of_int (n * (n - 1) / 2)

let test_cross_pool_chain_all_modes () =
  List.iter
    (fun mode ->
      let rt = Runtime.create ~mode () in
      let pools = make_pools rt 8 in
      let head = build_chain rt pools 200 in
      check_i64
        (Fmt.str "cross-pool chain sums correctly in %a" Runtime.pp_mode mode)
        (expected_sum 200) (sum_chain rt head))
    [ Runtime.Sw; Runtime.Hw; Runtime.Explicit ]

let test_polb_evicts_beyond_capacity () =
  let rt = Runtime.create ~mode:Runtime.Hw () in
  let cfg = Runtime.config rt in
  let npools = (2 * cfg.Nvml_arch.Config.polb_entries) in
  let pools = make_pools rt npools in
  let head = build_chain rt pools (npools * 4) in
  let s0 = Runtime.snapshot rt in
  ignore (sum_chain rt head);
  let s1 = Cpu.diff_snapshot (Runtime.snapshot rt) s0 in
  check_bool "POLB misses under capacity pressure" true (s1.Cpu.polb_misses > 0);
  check_bool "POW walks happened" true (s1.Cpu.pow_walks > 0)

let test_single_pool_no_misses_when_warm () =
  let rt = Runtime.create ~mode:Runtime.Hw () in
  let pools = make_pools rt 1 in
  let head = build_chain rt pools 100 in
  ignore (sum_chain rt head) (* warm the POLB *);
  let s0 = Runtime.snapshot rt in
  ignore (sum_chain rt head);
  let s1 = Cpu.diff_snapshot (Runtime.snapshot rt) s0 in
  check_int "no POLB misses with one hot pool" 0 s1.Cpu.polb_misses

let test_vaw_walks_with_many_pools () =
  (* Force VALB pressure: disable the keep-relative optimization so
     pointer store-backs go through va2ra, with more pools than VALB
     entries. *)
  let cfg =
    { Nvml_arch.Config.default with Nvml_arch.Config.keep_relative_opt = false }
  in
  let rt = Runtime.create ~cfg ~mode:Runtime.Hw () in
  let pools = make_pools rt 64 in
  let head = build_chain rt pools 512 in
  (* Rewrite every next pointer (store-backs of loaded VAs). *)
  let node = ref head in
  let s0 = Runtime.snapshot rt in
  while not (Runtime.ptr_is_null rt ~site !node) do
    let next = Runtime.load_ptr rt ~site !node ~off:0 in
    Runtime.store_ptr rt ~site !node ~off:0 next;
    node := next
  done;
  let s1 = Cpu.diff_snapshot (Runtime.snapshot rt) s0 in
  check_bool "VALB was exercised" true (s1.Cpu.valb_accesses > 100);
  check_bool "VALB misses under 64 pools" true (s1.Cpu.valb_misses > 0);
  check_bool "VAW walked the VATB B-tree" true (s1.Cpu.vaw_nodes > 0);
  check_i64 "chain still sums correctly" (expected_sum 512) (sum_chain rt head)

let test_detach_middle_pool_faults_only_its_nodes () =
  let rt = Runtime.create ~mode:Runtime.Hw () in
  let pools = make_pools rt 4 in
  (* One node per pool, chained. *)
  let head = build_chain rt pools 4 in
  Runtime.detach_pool rt pools.(2);
  (* Nodes 0 and 1 are still reachable (pools 0,1 mapped). *)
  let n0 = head in
  check_i64 "node 0 readable" 0L (Runtime.load_word rt ~site n0 ~off:8);
  let n1 = Runtime.load_ptr rt ~site n0 ~off:0 in
  check_i64 "node 1 readable" 1L (Runtime.load_word rt ~site n1 ~off:8);
  (* Node 2 lives in the detached pool: dereferencing faults. *)
  check_bool "detached pool faults" true
    (try
       ignore (Runtime.load_ptr rt ~site n1 ~off:0);
       false
     with Nvml_core.Xlate.Pool_detached _ -> true)

let test_crash_reopen_subset () =
  (* Only some pools are re-opened after a crash; the others' nodes
     fault, the re-opened ones work. *)
  let rt = Runtime.create ~mode:Runtime.Hw () in
  let pools = make_pools rt 3 in
  let heads =
    Array.map
      (fun pool ->
        let node = Runtime.alloc rt ~pool ~persistent:true 16 in
        Runtime.store_word rt ~site node ~off:8 (Int64.of_int pool);
        node)
      pools
  in
  Runtime.crash_and_restart rt;
  ignore (Runtime.open_pool rt "p0");
  ignore (Runtime.open_pool rt "p2");
  check_i64 "pool 0 node back" (Int64.of_int pools.(0))
    (Runtime.load_word rt ~site heads.(0) ~off:8);
  check_i64 "pool 2 node back" (Int64.of_int pools.(2))
    (Runtime.load_word rt ~site heads.(2) ~off:8);
  check_bool "unopened pool faults" true
    (try
       ignore (Runtime.load_word rt ~site heads.(1) ~off:8);
       false
     with Nvml_core.Xlate.Pool_detached _ -> true)

let prop_cross_pool_sum =
  QCheck.Test.make ~name:"cross-pool chains sum correctly at any fan-out"
    ~count:30
    QCheck.(pair (int_range 1 20) (int_range 1 300))
    (fun (npools, nodes) ->
      let rt = Runtime.create ~mode:Runtime.Hw () in
      let pools = make_pools rt npools in
      let head = build_chain rt pools nodes in
      Int64.equal (sum_chain rt head) (expected_sum nodes))

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_cross_pool_sum ]

let () =
  Alcotest.run "multipool"
    [
      ( "chains",
        [
          Alcotest.test_case "cross-pool all modes" `Quick
            test_cross_pool_chain_all_modes;
          Alcotest.test_case "POLB eviction" `Quick
            test_polb_evicts_beyond_capacity;
          Alcotest.test_case "warm single pool" `Quick
            test_single_pool_no_misses_when_warm;
          Alcotest.test_case "VAW under pressure" `Quick
            test_vaw_walks_with_many_pools;
        ] );
      ( "detach",
        [
          Alcotest.test_case "middle pool" `Quick
            test_detach_middle_pool_faults_only_its_nodes;
          Alcotest.test_case "crash + subset reopen" `Quick
            test_crash_reopen_subset;
        ] );
      ("properties", qsuite);
    ]
