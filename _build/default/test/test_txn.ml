(* Tests for the persistent undo-log transaction layer: commit/abort
   semantics, crash recovery mid-transaction, log persistence across
   remapping, and a property test against a reference model. *)

module Runtime = Nvml_runtime.Runtime
module Txn = Nvml_runtime.Txn
module Site = Nvml_runtime.Site
module Ptr = Nvml_core.Ptr

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)

let site = Site.make ~static:true "test.txn"

let make () =
  let rt = Runtime.create ~mode:Runtime.Hw () in
  let pool = Runtime.create_pool rt ~name:"t" ~size:(1 lsl 21) in
  (rt, pool)

let test_commit_persists () =
  let rt, pool = make () in
  let txn = Txn.create rt ~pool () in
  let cell = Runtime.alloc rt ~pool ~persistent:true 16 in
  Runtime.store_word rt ~site cell ~off:0 1L;
  Txn.begin_ txn;
  Txn.store_word txn ~site cell ~off:0 2L;
  Txn.commit txn;
  check_i64 "committed value" 2L (Runtime.load_word rt ~site cell ~off:0);
  check_bool "idle after commit" false (Txn.is_active txn)

let test_abort_restores () =
  let rt, pool = make () in
  let txn = Txn.create rt ~pool () in
  let cell = Runtime.alloc rt ~pool ~persistent:true 32 in
  Runtime.store_word rt ~site cell ~off:0 10L;
  Runtime.store_word rt ~site cell ~off:8 20L;
  Txn.begin_ txn;
  Txn.store_word txn ~site cell ~off:0 11L;
  Txn.store_word txn ~site cell ~off:8 21L;
  Txn.store_word txn ~site cell ~off:0 12L;
  Txn.abort txn;
  check_i64 "first word restored" 10L (Runtime.load_word rt ~site cell ~off:0);
  check_i64 "second word restored" 20L (Runtime.load_word rt ~site cell ~off:8)

let test_crash_mid_txn_rolls_back () =
  let rt, pool = make () in
  let txn = Txn.create rt ~pool () in
  let cell = Runtime.alloc rt ~pool ~persistent:true 16 in
  Runtime.store_word rt ~site cell ~off:0 100L;
  Runtime.store_word rt ~site cell ~off:8 200L;
  (* Anchor both the log and the data in the pool root area. *)
  Runtime.set_root rt ~site ~pool (Txn.header txn);
  Txn.begin_ txn;
  Txn.store_word txn ~site cell ~off:0 999L;
  Txn.store_word txn ~site cell ~off:8 888L;
  (* CRASH before commit. *)
  Runtime.crash_and_restart rt;
  ignore (Runtime.open_pool rt "t");
  let txn' = Txn.attach rt (Runtime.get_root rt ~site ~pool) in
  (match Txn.recover txn' with
  | Txn.Rolled_back n -> check_int "two entries undone" 2 n
  | Txn.Clean -> Alcotest.fail "expected rollback");
  check_i64 "first word rolled back" 100L (Runtime.load_word rt ~site cell ~off:0);
  check_i64 "second word rolled back" 200L
    (Runtime.load_word rt ~site cell ~off:8);
  check_bool "log idle after recovery" false (Txn.is_active txn')

let test_crash_after_commit_is_clean () =
  let rt, pool = make () in
  let txn = Txn.create rt ~pool () in
  let cell = Runtime.alloc rt ~pool ~persistent:true 16 in
  Runtime.set_root rt ~site ~pool (Txn.header txn);
  Txn.begin_ txn;
  Txn.store_word txn ~site cell ~off:0 7L;
  Txn.commit txn;
  Runtime.crash_and_restart rt;
  ignore (Runtime.open_pool rt "t");
  let txn' = Txn.attach rt (Runtime.get_root rt ~site ~pool) in
  check_bool "clean recovery" true (Txn.recover txn' = Txn.Clean);
  check_i64 "committed value persisted" 7L (Runtime.load_word rt ~site cell ~off:0)

let test_pointer_stores_transactional () =
  let rt, pool = make () in
  let txn = Txn.create rt ~pool () in
  let a = Runtime.alloc rt ~pool ~persistent:true 16 in
  let b = Runtime.alloc rt ~pool ~persistent:true 16 in
  let c = Runtime.alloc rt ~pool ~persistent:true 16 in
  Runtime.store_ptr rt ~site a ~off:0 b;
  Txn.begin_ txn;
  Txn.store_ptr txn ~site a ~off:0 c;
  check_bool "points to c inside txn" true
    (Runtime.ptr_eq rt ~site (Runtime.load_ptr rt ~site a ~off:0) c);
  Txn.abort txn;
  check_bool "points to b again after abort" true
    (Runtime.ptr_eq rt ~site (Runtime.load_ptr rt ~site a ~off:0) b);
  (* The restored cell must hold relative format. *)
  let raw =
    Nvml_simmem.Mem.read_word (Runtime.mem rt)
      (Nvml_core.Xlate.ra2va (Runtime.xlate rt) a)
  in
  check_bool "restored bits are relative" true (Ptr.is_relative raw)

let test_run_wrapper () =
  let rt, pool = make () in
  let txn = Txn.create rt ~pool () in
  let cell = Runtime.alloc rt ~pool ~persistent:true 16 in
  Runtime.store_word rt ~site cell ~off:0 1L;
  (* Successful body commits. *)
  Txn.run txn (fun () -> Txn.store_word txn ~site cell ~off:0 2L);
  check_i64 "committed" 2L (Runtime.load_word rt ~site cell ~off:0);
  (* Raising body rolls back and re-raises. *)
  check_bool "exception propagates" true
    (try
       let (_ : int) =
         Txn.run txn (fun () ->
             Txn.store_word txn ~site cell ~off:0 3L;
             failwith "boom")
       in
       false
     with Failure _ -> true);
  check_i64 "rolled back" 2L (Runtime.load_word rt ~site cell ~off:0)

let test_protocol_errors () =
  let rt, pool = make () in
  let txn = Txn.create rt ~pool () in
  let cell = Runtime.alloc rt ~pool ~persistent:true 16 in
  check_bool "store outside txn rejected" true
    (try
       Txn.store_word txn ~site cell ~off:0 1L;
       false
     with Txn.Not_active -> true);
  Txn.begin_ txn;
  check_bool "nested begin rejected" true
    (try
       Txn.begin_ txn;
       false
     with Txn.Already_active -> true);
  Txn.commit txn;
  check_bool "double commit rejected" true
    (try
       Txn.commit txn;
       false
     with Txn.Not_active -> true)

let test_volatile_target_rejected () =
  let rt, pool = make () in
  let txn = Txn.create rt ~pool () in
  let dram = Runtime.alloc rt ~persistent:false 16 in
  Txn.begin_ txn;
  check_bool "DRAM target rejected" true
    (try
       Txn.store_word txn ~site dram ~off:0 1L;
       false
     with Invalid_argument _ -> true)

let test_log_full () =
  let rt, pool = make () in
  let txn = Txn.create rt ~pool ~capacity:4 () in
  let cell = Runtime.alloc rt ~pool ~persistent:true 16 in
  Txn.begin_ txn;
  for _ = 1 to 4 do
    Txn.store_word txn ~site cell ~off:0 1L
  done;
  check_bool "fifth logged store overflows" true
    (try
       Txn.store_word txn ~site cell ~off:0 1L;
       false
     with Txn.Log_full -> true)

(* Property: an interleaving of committed and aborted transactions over
   an 8-cell array always matches a reference model where aborted
   transactions never happened. *)
let prop_txn_matches_reference =
  QCheck.Test.make ~name:"commit/abort interleavings match reference" ~count:60
    QCheck.(
      list_of_size
        Gen.(int_range 1 20)
        (pair bool (small_list (pair (int_bound 7) (int_bound 1000)))))
    (fun script ->
      let rt, pool = make () in
      let txn = Txn.create rt ~pool () in
      let arr = Runtime.alloc rt ~pool ~persistent:true 64 in
      let shadow = Array.make 8 0L in
      List.iter
        (fun (commit, writes) ->
          Txn.begin_ txn;
          let staged = Array.copy shadow in
          List.iter
            (fun (slot, v) ->
              staged.(slot) <- Int64.of_int v;
              Txn.store_word txn ~site arr ~off:(slot * 8) (Int64.of_int v))
            writes;
          if commit then begin
            Txn.commit txn;
            Array.blit staged 0 shadow 0 8
          end
          else Txn.abort txn)
        script;
      Array.for_all Fun.id
        (Array.init 8 (fun i ->
             Int64.equal (Runtime.load_word rt ~site arr ~off:(i * 8)) shadow.(i))))

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_txn_matches_reference ]

let () =
  Alcotest.run "txn"
    [
      ( "basic",
        [
          Alcotest.test_case "commit persists" `Quick test_commit_persists;
          Alcotest.test_case "abort restores" `Quick test_abort_restores;
          Alcotest.test_case "run wrapper" `Quick test_run_wrapper;
          Alcotest.test_case "pointer stores" `Quick
            test_pointer_stores_transactional;
        ] );
      ( "crash",
        [
          Alcotest.test_case "mid-txn rollback" `Quick
            test_crash_mid_txn_rolls_back;
          Alcotest.test_case "post-commit clean" `Quick
            test_crash_after_commit_is_clean;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "errors" `Quick test_protocol_errors;
          Alcotest.test_case "volatile target" `Quick
            test_volatile_target_rejected;
          Alcotest.test_case "log full" `Quick test_log_full;
        ] );
      ("properties", qsuite);
    ]
