(* Tests for mini-C and the compiler pass: the interpreter's own
   behaviour, the Section VII-B soundness experiment (every corpus
   program produces identical output with the heap in DRAM and with the
   heap in a persistent pool, in every runtime mode), and the
   check-elimination statistics of the inference. *)

module Runtime = Nvml_runtime.Runtime
module Ast = Nvml_minic.Ast
module Types = Nvml_minic.Types
module Interp = Nvml_minic.Interp
module Corpus = Nvml_minic.Corpus
module Inference = Nvml_comp.Inference

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_out = Alcotest.(check (list int64))

let run_program ?plan ~mode ~persistent_heap program =
  let rt = Runtime.create ~mode () in
  let heap =
    if persistent_heap && mode <> Runtime.Volatile then
      Runtime.Pool_region (Runtime.create_pool rt ~name:"heap" ~size:(1 lsl 22))
    else Runtime.Dram_region
  in
  let outcome = Interp.run rt ?plan ~heap program ~args:[] in
  outcome.Interp.output

(* --- interpreter unit tests -------------------------------------------- *)

let prog_of_main body = Ast.prog [ Ast.fn "main" body ]

let test_arith () =
  let open Ast in
  let p =
    prog_of_main
      [
        SExpr (call "print" [ int_ 2 + (int_ 3 * int_ 4) ]);
        SExpr (call "print" [ binop Mod (int_ 17) (int_ 5) ]);
        SExpr (call "print" [ cond (int_ 0) (int_ 1) (int_ 2) ]);
        SReturn (Some (int_ 0));
      ]
  in
  check_out "arith" [ 14L; 2L; 2L ]
    (run_program ~mode:Runtime.Volatile ~persistent_heap:false p)

let test_while_loop () =
  let open Ast in
  let p =
    prog_of_main
      [
        SDecl ("i", Tint, Some (int_ 0));
        SDecl ("acc", Tint, Some (int_ 0));
        SWhile
          ( var "i" < int_ 10,
            [
              SExpr (assign (var "acc") (var "acc" + var "i"));
              SExpr (pre_incr (var "i"));
            ] );
        SExpr (call "print" [ var "acc" ]);
        SReturn None;
      ]
  in
  check_out "sum 0..9" [ 45L ]
    (run_program ~mode:Runtime.Volatile ~persistent_heap:false p)

let test_heap_roundtrip () =
  let open Ast in
  let p =
    prog_of_main
      [
        SDecl ("p", Tptr Tint, Some (cast (Tptr Tint) (call "malloc" [ int_ 8 ])));
        SExpr (assign (deref (var "p")) (int_ 55));
        SExpr (call "print" [ deref (var "p") ]);
        SExpr (call "free" [ var "p" ]);
        SReturn None;
      ]
  in
  List.iter
    (fun mode ->
      check_out
        (Fmt.str "heap roundtrip in %a" Runtime.pp_mode mode)
        [ 55L ]
        (run_program ~mode ~persistent_heap:true p))
    Runtime.all_modes

let test_type_errors_detected () =
  let open Ast in
  let bad = prog_of_main [ SExpr (deref (int_ 3)); SReturn None ] in
  check_bool "deref of int rejected" true
    (try
       ignore (Types.check_program bad);
       false
     with Types.Type_error _ -> true)

let test_sizeof () =
  let open Ast in
  let s = { sname = "s3"; fields = [ ("a", Tint); ("b", Tptr Tint); ("c", Tint) ] } in
  let p =
    prog ~structs:[ s ]
      [
        fn "main"
          [
            SExpr (call "print" [ sizeof (Tstruct "s3") ]);
            SExpr (call "print" [ sizeof (Tptr (Tstruct "s3")) ]);
            SExpr (call "print" [ sizeof (Tarray (Tint, 5)) ]);
            SReturn None;
          ];
      ]
  in
  check_out "sizes" [ 24L; 8L; 40L ]
    (run_program ~mode:Runtime.Volatile ~persistent_heap:false p)

let test_recursion_depth () =
  let open Ast in
  let p =
    prog
      [
        fn "down" ~params:[ ("n", Tint) ]
          [
            SIf (var "n" == int_ 0, [ SReturn (Some (int_ 0)) ], []);
            SReturn (Some (int_ 1 + call "down" [ var "n" - int_ 1 ]));
          ];
        fn "main" [ SExpr (call "print" [ call "down" [ int_ 200 ] ]); SReturn None ];
      ]
  in
  check_out "depth 200" [ 200L ]
    (run_program ~mode:Runtime.Hw ~persistent_heap:true p)

(* --- soundness: volatile vs persistent heap, all modes ------------------- *)

let soundness_case (name, program) =
  Alcotest.test_case name `Slow (fun () ->
      let reference =
        run_program ~mode:Runtime.Volatile ~persistent_heap:false program
      in
      check_bool "reference output nonempty" true (reference <> []);
      List.iter
        (fun mode ->
          (* Native heap. *)
          check_out
            (Fmt.str "%s, DRAM heap, %a" name Runtime.pp_mode mode)
            reference
            (run_program ~mode ~persistent_heap:false program);
          (* libvmmalloc-style persistent heap. *)
          check_out
            (Fmt.str "%s, NVM heap, %a" name Runtime.pp_mode mode)
            reference
            (run_program ~mode ~persistent_heap:true program))
        [ Runtime.Sw; Runtime.Hw ])

let soundness_with_plan_case (name, program) =
  Alcotest.test_case (name ^ " (inferred plan)") `Slow (fun () ->
      (* Check elision must not change behaviour. *)
      let reference =
        run_program ~mode:Runtime.Volatile ~persistent_heap:false program
      in
      let inference = Inference.infer ~heap_relative:true program in
      let plan = Inference.plan inference in
      check_out
        (name ^ " with inferred plan")
        reference
        (run_program ~plan ~mode:Runtime.Sw ~persistent_heap:true program))

(* --- inference ------------------------------------------------------------ *)

let test_inference_counts_sites () =
  let r = Inference.infer (Corpus.find "linked_list") in
  check_bool "found pointer-op sites" true (r.Inference.total_sites > 10);
  check_bool "some checks remain" true (r.Inference.checked_sites > 0);
  check_bool "some checks eliminated" true
    (r.Inference.checked_sites < r.Inference.total_sites)

let test_inference_resolves_local_malloc () =
  (* array_sum only manipulates a locally-allocated array: inference
     should resolve most sites. *)
  let r = Inference.infer (Corpus.find "array_sum") in
  check_bool
    (Fmt.str "array_sum mostly resolved (%.0f%% checked)"
       (100. *. Inference.fraction_checked r))
    true
    (Inference.fraction_checked r < 0.5)

let test_inference_conservative_on_params () =
  (* Pointers loaded out of NVM-reachable cells have unknown format, so
     traversal code that chases loaded pointers keeps its checks. *)
  List.iter
    (fun name ->
      let r = Inference.infer (Corpus.find name) in
      check_bool (name ^ ": loaded-pointer chasing stays checked") true
        (Inference.fraction_checked r > 0.0))
    [ "linked_list"; "binary_tree" ];
  (* By contrast, a program whose pointers are all normalized locals is
     fully resolved: the checks moved to the (already counted)
     materialization sites. *)
  let r = Inference.infer (Corpus.find "mixed_stores") in
  check_bool "normalized-locals program fully resolved" true
    (Inference.fraction_checked r = 0.0)

let test_inference_volatile_heap () =
  (* With a DRAM heap nothing is ever relative: everything resolves. *)
  let r = Inference.infer ~heap_relative:false (Corpus.find "array_sum") in
  check_int "no checks with a volatile heap" 0 r.Inference.checked_sites

let test_corpus_average_elimination () =
  (* Across the corpus, a substantial share of sites is eliminated but
     a substantial share remains — the paper reports ~42 % remaining. *)
  let fractions =
    List.map (fun (_, p) -> Inference.fraction_checked (Inference.infer p)) Corpus.all
  in
  let avg = List.fold_left ( +. ) 0.0 fractions /. float_of_int (List.length fractions) in
  check_bool (Fmt.str "average checked fraction %.2f in (0.1, 0.9)" avg) true
    (avg > 0.1 && avg < 0.9)

let () =
  Alcotest.run "minic"
    [
      ( "interpreter",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "while" `Quick test_while_loop;
          Alcotest.test_case "heap roundtrip" `Quick test_heap_roundtrip;
          Alcotest.test_case "type errors" `Quick test_type_errors_detected;
          Alcotest.test_case "sizeof" `Quick test_sizeof;
          Alcotest.test_case "recursion" `Quick test_recursion_depth;
        ] );
      ("soundness", List.map soundness_case Corpus.all);
      ("soundness-with-plan", List.map soundness_with_plan_case Corpus.all);
      ( "inference",
        [
          Alcotest.test_case "counts sites" `Quick test_inference_counts_sites;
          Alcotest.test_case "resolves local malloc" `Quick
            test_inference_resolves_local_malloc;
          Alcotest.test_case "conservative on params" `Quick
            test_inference_conservative_on_params;
          Alcotest.test_case "volatile heap" `Quick test_inference_volatile_heap;
          Alcotest.test_case "corpus average" `Quick
            test_corpus_average_elimination;
        ] );
    ]
