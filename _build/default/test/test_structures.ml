(* Tests for the six benchmark data structures: functional correctness
   against a reference map, structural invariants after random churn,
   behaviour in all four runtime modes, and crash recovery through pool
   roots. *)

module Ptr = Nvml_core.Ptr
module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module S = Nvml_structures
module I64Map = Map.Make (Int64)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)

let site = Site.make "test.harness"

let make_rt mode =
  let rt = Runtime.create ~mode () in
  let region =
    match mode with
    | Runtime.Volatile -> Runtime.Dram_region
    | _ ->
        Runtime.Pool_region (Runtime.create_pool rt ~name:"s" ~size:(1 lsl 22))
  in
  (rt, region)

(* --- generic ordered-map tests, instantiated per structure ------------- *)

let test_empty (module M : S.Intf.ORDERED_MAP) mode () =
  let rt, region = make_rt mode in
  let m = M.create rt region in
  check_int "empty size" 0 (M.size m);
  check_bool "find on empty" true (M.find m 42L = None);
  check_bool "remove on empty" false (M.remove m 42L);
  M.check_invariants m

let test_insert_find (module M : S.Intf.ORDERED_MAP) mode () =
  let rt, region = make_rt mode in
  let m = M.create rt region in
  for i = 1 to 100 do
    M.insert m ~key:(Int64.of_int (i * 7 mod 101)) ~value:(Int64.of_int i)
  done;
  M.check_invariants m;
  check_int "size" 100 (M.size m);
  check_bool "present key" true (M.find m 7L <> None);
  check_bool "absent key" true (M.find m 1000L = None)

let test_update (module M : S.Intf.ORDERED_MAP) mode () =
  let rt, region = make_rt mode in
  let m = M.create rt region in
  M.insert m ~key:5L ~value:1L;
  M.insert m ~key:5L ~value:2L;
  check_int "update does not grow" 1 (M.size m);
  check_bool "updated value" true (M.find m 5L = Some 2L);
  M.check_invariants m

let test_remove (module M : S.Intf.ORDERED_MAP) mode () =
  let rt, region = make_rt mode in
  let m = M.create rt region in
  for i = 1 to 50 do
    M.insert m ~key:(Int64.of_int i) ~value:(Int64.of_int (i * 10))
  done;
  for i = 1 to 50 do
    if i mod 2 = 0 then
      check_bool (Fmt.str "removed %d" i) true (M.remove m (Int64.of_int i))
  done;
  M.check_invariants m;
  check_int "half removed" 25 (M.size m);
  for i = 1 to 50 do
    let expected = if i mod 2 = 1 then Some (Int64.of_int (i * 10)) else None in
    check_bool (Fmt.str "key %d state" i) true
      (M.find m (Int64.of_int i) = expected)
  done;
  check_bool "re-remove fails" false (M.remove m 2L)

let test_iter_sorted (module M : S.Intf.ORDERED_MAP) mode () =
  let rt, region = make_rt mode in
  let m = M.create rt region in
  let keys = [ 5L; 1L; 9L; 3L; 7L; 2L; 8L ] in
  List.iter (fun k -> M.insert m ~key:k ~value:(Int64.neg k)) keys;
  let seen = ref [] in
  M.iter m (fun ~key ~value ->
      check_i64 "value follows key" (Int64.neg key) value;
      seen := key :: !seen);
  check_int "all visited" (List.length keys) (List.length !seen);
  if M.name <> "Hash" then
    check_bool "tree iteration ascending" true
      (List.rev !seen = List.sort Int64.compare keys)

let test_against_reference (module M : S.Intf.ORDERED_MAP) mode () =
  let rt, region = make_rt mode in
  let m = M.create rt region in
  let reference = ref I64Map.empty in
  let rng = Random.State.make [| 2024 |] in
  for step = 1 to 600 do
    let key = Int64.of_int (Random.State.int rng 120) in
    let op = Random.State.int rng 10 in
    if op < 5 then begin
      let value = Int64.of_int step in
      M.insert m ~key ~value;
      reference := I64Map.add key value !reference
    end
    else if op < 8 then begin
      let got = M.find m key in
      let expected = I64Map.find_opt key !reference in
      if got <> expected then
        Alcotest.failf "%s: find %Ld mismatch at step %d" M.name key step
    end
    else begin
      let got = M.remove m key in
      let expected = I64Map.mem key !reference in
      reference := I64Map.remove key !reference;
      if got <> expected then
        Alcotest.failf "%s: remove %Ld mismatch at step %d" M.name key step
    end;
    if step mod 100 = 0 then M.check_invariants m
  done;
  M.check_invariants m;
  check_int "final size agrees" (I64Map.cardinal !reference) (M.size m);
  I64Map.iter
    (fun k v ->
      if M.find m k <> Some v then Alcotest.failf "%s: lost key %Ld" M.name k)
    !reference

let test_crash_recovery (module M : S.Intf.ORDERED_MAP) mode () =
  let rt = Runtime.create ~mode () in
  let pool = Runtime.create_pool rt ~name:"s" ~size:(1 lsl 22) in
  let m = M.create rt (Runtime.Pool_region pool) in
  for i = 1 to 200 do
    M.insert m ~key:(Int64.of_int i) ~value:(Int64.of_int (i * 3))
  done;
  Runtime.set_root rt ~site ~pool (M.header m);
  Runtime.crash_and_restart rt;
  ignore (Runtime.open_pool rt "s");
  let m' = M.attach rt (Runtime.get_root rt ~site ~pool) in
  M.check_invariants m';
  check_int "size after recovery" 200 (M.size m');
  for i = 1 to 200 do
    check_bool
      (Fmt.str "key %d after recovery" i)
      true
      (M.find m' (Int64.of_int i) = Some (Int64.of_int (i * 3)))
  done

let per_map_cases (module M : S.Intf.ORDERED_MAP) =
  let quick name f = Alcotest.test_case name `Quick f in
  ( M.name,
    [
      quick "empty" (test_empty (module M) Runtime.Hw);
      quick "insert-find" (test_insert_find (module M) Runtime.Hw);
      quick "update" (test_update (module M) Runtime.Hw);
      quick "remove" (test_remove (module M) Runtime.Hw);
      quick "iter sorted" (test_iter_sorted (module M) Runtime.Hw);
      quick "vs reference (volatile)"
        (test_against_reference (module M) Runtime.Volatile);
      quick "vs reference (SW)" (test_against_reference (module M) Runtime.Sw);
      quick "vs reference (HW)" (test_against_reference (module M) Runtime.Hw);
      quick "vs reference (explicit)"
        (test_against_reference (module M) Runtime.Explicit);
      quick "crash recovery (HW)" (test_crash_recovery (module M) Runtime.Hw);
      quick "crash recovery (SW)" (test_crash_recovery (module M) Runtime.Sw);
    ] )

(* --- linked list ----------------------------------------------------------- *)

module Ll = S.Linked_list

let test_ll_append_iterate mode () =
  let rt, region = make_rt mode in
  let l = Ll.create rt region in
  let expected = ref 0L in
  for i = 1 to 100 do
    let v0 = Int64.of_int i and v1 = Int64.of_int (i * 2) in
    Ll.append l ~v0 ~v1;
    expected := Int64.add !expected (Int64.add v0 v1)
  done;
  check_int "length" 100 (Ll.length l);
  check_i64 "sum" !expected (Ll.iterate_sum l);
  Ll.check_invariants l

let test_ll_prepend () =
  let rt, region = make_rt Runtime.Hw in
  let l = Ll.create rt region in
  Ll.append l ~v0:2L ~v1:0L;
  Ll.prepend l ~v0:1L ~v1:0L;
  Ll.append l ~v0:3L ~v1:0L;
  let order = ref [] in
  Ll.iter l (fun ~v0 ~v1:_ -> order := v0 :: !order);
  check_bool "order" true (List.rev !order = [ 1L; 2L; 3L ]);
  Ll.check_invariants l

let test_ll_remove () =
  let rt, region = make_rt Runtime.Hw in
  let l = Ll.create rt region in
  List.iter (fun i -> Ll.append l ~v0:i ~v1:0L) [ 1L; 2L; 3L; 4L ];
  check_bool "remove middle" true (Ll.remove_value l 2L);
  check_bool "remove head" true (Ll.remove_value l 1L);
  check_bool "remove tail" true (Ll.remove_value l 4L);
  check_bool "remove absent" false (Ll.remove_value l 9L);
  check_int "one left" 1 (Ll.length l);
  Ll.check_invariants l

let test_ll_crash_recovery () =
  let rt = Runtime.create ~mode:Runtime.Hw () in
  let pool = Runtime.create_pool rt ~name:"ll" ~size:(1 lsl 22) in
  let l = Ll.create rt (Runtime.Pool_region pool) in
  for i = 1 to 50 do
    Ll.append l ~v0:(Int64.of_int i) ~v1:(Int64.of_int i)
  done;
  let sum_before = Ll.iterate_sum l in
  Runtime.set_root rt ~site ~pool (Ll.header l);
  Runtime.crash_and_restart rt;
  ignore (Runtime.open_pool rt "ll");
  let l' = Ll.attach rt (Runtime.get_root rt ~site ~pool) in
  Ll.check_invariants l';
  check_i64 "sum preserved across crash" sum_before (Ll.iterate_sum l')

(* --- mode-equivalence property across all structures ------------------------ *)

let prop_structure_mode_equivalence (module M : S.Intf.ORDERED_MAP) =
  QCheck.Test.make
    ~name:(Fmt.str "%s behaves identically in all four modes" M.name)
    ~count:25
    QCheck.(
      list_of_size
        Gen.(int_range 1 60)
        (pair (int_bound 2) (int_bound 40)))
    (fun script ->
      let run mode =
        let rt, region = make_rt mode in
        let m = M.create rt region in
        let out = ref [] in
        List.iter
          (fun (op, k) ->
            let key = Int64.of_int k in
            match op with
            | 0 -> M.insert m ~key ~value:(Int64.mul key 5L)
            | 1 -> out := (M.find m key <> None) :: !out
            | _ -> out := M.remove m key :: !out)
          script;
        M.check_invariants m;
        (M.size m, !out)
      in
      let reference = run Runtime.Volatile in
      List.for_all
        (fun mode -> run mode = reference)
        [ Runtime.Sw; Runtime.Hw; Runtime.Explicit ])

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    (List.map prop_structure_mode_equivalence S.Registry.all_maps)

let () =
  Alcotest.run "structures"
    (List.map per_map_cases S.Registry.all_maps
    @ [
        ( "LL",
          [
            Alcotest.test_case "append+iterate (HW)" `Quick
              (test_ll_append_iterate Runtime.Hw);
            Alcotest.test_case "append+iterate (SW)" `Quick
              (test_ll_append_iterate Runtime.Sw);
            Alcotest.test_case "append+iterate (volatile)" `Quick
              (test_ll_append_iterate Runtime.Volatile);
            Alcotest.test_case "append+iterate (explicit)" `Quick
              (test_ll_append_iterate Runtime.Explicit);
            Alcotest.test_case "prepend" `Quick test_ll_prepend;
            Alcotest.test_case "remove" `Quick test_ll_remove;
            Alcotest.test_case "crash recovery" `Quick test_ll_crash_recovery;
          ] );
        ("mode-equivalence", qsuite);
      ])
