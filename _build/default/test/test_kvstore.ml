(* Tests for the KV-store harness: sanity of results across modes and
   the qualitative relationships the evaluation section reports (SW
   slower than HW, HW close to volatile, Explicit translating far more
   than HW). *)

module Cpu = Nvml_arch.Cpu
module Runtime = Nvml_runtime.Runtime
module Harness = Nvml_kvstore.Harness
module W = Nvml_ycsb.Workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A scaled-down spec so the suite stays fast. *)
let small = W.scale W.paper_default 50 (* 200 records, 2000 ops *)

let test_all_reads_hit () =
  List.iter
    (fun mode ->
      let r = Harness.run_map (module Nvml_structures.Registry.Rb) ~mode small in
      check_int (Fmt.str "no misses in %a" Runtime.pp_mode mode) 0 r.Harness.misses;
      check_bool "some hits" true (r.Harness.hits > 0))
    Runtime.all_modes

let test_same_behaviour_across_modes () =
  let hits mode =
    (Harness.run_map (module Nvml_structures.Registry.Avl) ~mode small)
      .Harness.hits
  in
  let reference = hits Runtime.Volatile in
  List.iter
    (fun mode -> check_int "hit counts equal across modes" reference (hits mode))
    [ Runtime.Sw; Runtime.Hw; Runtime.Explicit ]

let run_cycles name mode =
  (Harness.run_benchmark name ~mode small).Harness.run.Cpu.cycles

let test_sw_slowest_hw_close () =
  List.iter
    (fun name ->
      let volatile = run_cycles name Runtime.Volatile in
      let hw = run_cycles name Runtime.Hw in
      let sw = run_cycles name Runtime.Sw in
      check_bool (name ^ ": SW slower than HW") true (sw > hw);
      check_bool (name ^ ": HW within 2x of volatile") true
        (float_of_int hw /. float_of_int volatile < 2.0);
      check_bool (name ^ ": SW has real overhead vs volatile") true
        (float_of_int sw /. float_of_int volatile > 1.2))
    [ "RB"; "Hash"; "LL" ]

let test_hw_beats_explicit () =
  List.iter
    (fun name ->
      let hw = run_cycles name Runtime.Hw in
      let explicit = run_cycles name Runtime.Explicit in
      check_bool
        (Fmt.str "%s: HW (%d) faster than Explicit (%d)" name hw explicit)
        true (hw < explicit))
    [ "RB"; "AVL"; "LL" ]

let test_explicit_translates_more () =
  let polb mode =
    let r = Harness.run_map (module Nvml_structures.Registry.Rb) ~mode small in
    r.Harness.run.Cpu.polb_accesses
  in
  check_bool
    (Fmt.str "Explicit POLB traffic (%d) exceeds HW's (%d)"
       (polb Runtime.Explicit) (polb Runtime.Hw))
    true
    (float_of_int (polb Runtime.Explicit) > 1.5 *. float_of_int (polb Runtime.Hw))

let test_sw_checks_dominate () =
  let r = Harness.run_map (module Nvml_structures.Registry.Rb) ~mode:Runtime.Sw small in
  check_bool "dynamic checks in the millions per 100k ops scale" true
    (r.Harness.checks.Harness.dynamic_checks > 10 * small.W.operation_count);
  let rhw = Harness.run_map (module Nvml_structures.Registry.Rb) ~mode:Runtime.Hw small in
  check_int "HW run has zero dynamic checks" 0
    rhw.Harness.checks.Harness.dynamic_checks

let test_sw_mispredicts_worse () =
  let mp mode =
    (Harness.run_map (module Nvml_structures.Registry.Splay) ~mode small)
      .Harness.run.Cpu.branch_mispredicts
  in
  check_bool "SW mispredicts more than volatile" true
    (mp Runtime.Sw > mp Runtime.Volatile)

let test_storep_fraction_small () =
  let r = Harness.run_map (module Nvml_structures.Registry.Rb) ~mode:Runtime.Hw small in
  let s = r.Harness.run in
  let frac = float_of_int s.Cpu.storeps /. float_of_int s.Cpu.mem_accesses in
  check_bool (Fmt.str "storeP fraction small (%.4f)" frac) true (frac < 0.05);
  check_bool "valb accesses rarer than polb" true
    (s.Cpu.valb_accesses < s.Cpu.polb_accesses)

let test_ll_harness () =
  let r = Harness.run_ll ~mode:Runtime.Hw ~nodes:500 ~iterations:2 () in
  check_bool "LL run did work" true (r.Harness.run.Cpu.loads > 1000);
  check_int "benchmark name" 0 (compare r.Harness.benchmark "LL")

let test_nvm_accesses_only_in_persistent_modes () =
  let nvm mode =
    (Harness.run_map (module Nvml_structures.Registry.Hash) ~mode small)
      .Harness.run.Cpu.nvm_accesses
  in
  check_int "volatile never touches NVM" 0 (nvm Runtime.Volatile);
  check_bool "HW touches NVM" true (nvm Runtime.Hw > 0)

let () =
  Alcotest.run "kvstore"
    [
      ( "harness",
        [
          Alcotest.test_case "all reads hit" `Quick test_all_reads_hit;
          Alcotest.test_case "same behaviour across modes" `Quick
            test_same_behaviour_across_modes;
          Alcotest.test_case "LL harness" `Quick test_ll_harness;
          Alcotest.test_case "NVM access placement" `Quick
            test_nvm_accesses_only_in_persistent_modes;
        ] );
      ( "paper-shapes",
        [
          Alcotest.test_case "SW slowest, HW close" `Slow
            test_sw_slowest_hw_close;
          Alcotest.test_case "HW beats Explicit" `Slow test_hw_beats_explicit;
          Alcotest.test_case "Explicit translates more" `Quick
            test_explicit_translates_more;
          Alcotest.test_case "SW checks dominate" `Quick
            test_sw_checks_dominate;
          Alcotest.test_case "SW mispredicts worse" `Quick
            test_sw_mispredicts_worse;
          Alcotest.test_case "storeP fraction small" `Quick
            test_storep_fraction_small;
        ] );
    ]
