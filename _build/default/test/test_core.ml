(* Tests for the core contribution: pointer representation, format
   discrimination, translation, the Fig. 3 runtime checks and the Fig. 4
   C11 pointer-operation semantics. *)

module Layout = Nvml_simmem.Layout
module Mem = Nvml_simmem.Mem
module Ptr = Nvml_core.Ptr
module Xlate = Nvml_core.Xlate
module Checks = Nvml_core.Checks
module Semantics = Nvml_core.Semantics
module Pmop = Nvml_pool.Pmop

let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A small world with two pools for translation tests. *)
type world = {
  pm : Pmop.t;
  x : Xlate.t;
  pool_a : int;
  pool_b : int;
  base_a : int64;
  base_b : int64;
}

let make_world () =
  let mem = Mem.create () in
  let pm = Pmop.create mem in
  let pool_a = Pmop.create_pool pm ~name:"A" ~size:65536 in
  let pool_b = Pmop.create_pool pm ~name:"B" ~size:65536 in
  let x = Xlate.make (Pmop.provider pm) in
  let base_a = Option.get (Pmop.pool_base pm pool_a) in
  let base_b = Option.get (Pmop.pool_base pm pool_b) in
  { pm; x; pool_a; pool_b; base_a; base_b }

(* --- representation --------------------------------------------------- *)

let test_tagging () =
  let p = Ptr.make_relative ~pool:5 ~offset:0x1234L in
  check_bool "relative" true (Ptr.is_relative p);
  check_int "pool id" 5 (Ptr.pool_of p);
  check_i64 "offset" 0x1234L (Ptr.offset_of p);
  check_bool "virtual VA" true (Ptr.is_virtual 0x1000L);
  check_bool "null is virtual" true (Ptr.is_virtual Ptr.null)

let test_tag_bounds () =
  let p = Ptr.make_relative ~pool:Ptr.max_pool_id ~offset:0xFFFFFFFFL in
  check_int "max pool id survives" Ptr.max_pool_id (Ptr.pool_of p);
  check_i64 "max offset survives" 0xFFFFFFFFL (Ptr.offset_of p);
  Alcotest.check_raises "pool id too large"
    (Invalid_argument
       (Fmt.str "Ptr.make_relative: pool id %d out of range"
          (Ptr.max_pool_id + 1)))
    (fun () ->
      ignore (Ptr.make_relative ~pool:(Ptr.max_pool_id + 1) ~offset:0L))

let test_location () =
  let rel = Ptr.make_relative ~pool:1 ~offset:0L in
  check_bool "relative is NVM" true (Ptr.location rel = Layout.Nvm);
  check_bool "low VA is DRAM" true (Ptr.location 0x1000L = Layout.Dram);
  check_bool "high VA is NVM" true
    (Ptr.location Layout.nvm_va_base = Layout.Nvm)

let test_determine_xy () =
  let w = make_world () in
  let rel = Pmop.pmalloc w.pm ~pool:w.pool_a 64 in
  check_bool "determineY relative" true
    (Checks.determine_y rel = Ptr.Relative);
  check_bool "determineY virtual" true (Checks.determine_y 0x1000L = Ptr.Virtual);
  check_bool "determineX of relative is NVM" true
    (Checks.determine_x rel = Layout.Nvm);
  check_bool "determineX of pool VA is NVM" true
    (Checks.determine_x w.base_a = Layout.Nvm);
  check_bool "determineX of DRAM VA" true (Checks.determine_x 0x2000L = Layout.Dram)

(* --- translation ------------------------------------------------------- *)

let test_ra2va_va2ra_roundtrip () =
  let w = make_world () in
  let rel = Pmop.pmalloc w.pm ~pool:w.pool_a 64 in
  let va = Xlate.ra2va w.x rel in
  check_bool "translated into pool A range" true
    (va >= w.base_a && va < Int64.add w.base_a 65536L);
  let rel' = Xlate.va2ra w.x va in
  check_i64 "roundtrip" rel rel';
  check_int "one ra2va counted" 1 (Xlate.counters w.x).Xlate.ra2va;
  check_int "one va2ra counted" 1 (Xlate.counters w.x).Xlate.va2ra

let test_ra2va_identity_on_va () =
  let w = make_world () in
  check_i64 "VA passes through" 0x4000L (Xlate.ra2va w.x 0x4000L);
  check_i64 "NULL passes through" 0L (Xlate.ra2va w.x Ptr.null)

let test_va2ra_dram_escape () =
  let w = make_world () in
  let v = Xlate.va2ra w.x 0x4000L in
  check_i64 "DRAM VA stored unchanged" 0x4000L v;
  check_int "escape counted" 1 (Xlate.counters w.x).Xlate.volatile_escapes

let test_pool_detach_fault () =
  let w = make_world () in
  let rel = Pmop.pmalloc w.pm ~pool:w.pool_b 64 in
  Pmop.detach_pool w.pm w.pool_b;
  Alcotest.check_raises "detached pool faults"
    (Xlate.Pool_detached w.pool_b) (fun () ->
      ignore (Xlate.ra2va w.x rel))

let test_relocation () =
  (* The essence of persistent pointers: after crash + reopen at a new
     base, the same relative pointer resolves to the new mapping. *)
  let w = make_world () in
  let rel = Pmop.pmalloc w.pm ~pool:w.pool_a 64 in
  let va1 = Xlate.ra2va w.x rel in
  Mem.write_word (Pmop.mem w.pm) va1 77L;
  Pmop.crash w.pm;
  let base' = Pmop.open_pool w.pm "A" in
  check_bool "remapped at a different base" true (base' <> w.base_a);
  let va2 = Xlate.ra2va w.x rel in
  check_bool "pointer follows the pool" true
    (va2 >= base' && va2 < Int64.add base' 65536L);
  check_i64 "data reachable through relocated pointer" 77L
    (Mem.read_word (Pmop.mem w.pm) va2)

(* --- Fig. 3 pointerAssignment ----------------------------------------- *)

let test_pointer_assignment_matrix () =
  let w = make_world () in
  let rel = Pmop.pmalloc w.pm ~pool:w.pool_a 64 in
  let va = Xlate.ra2va w.x rel in
  let dram_cell = 0x3000L in
  let nvm_cell = Pmop.pmalloc w.pm ~pool:w.pool_b 8 in
  (* pny = pxr : store relative as-is *)
  check_i64 "NVM <- relative keeps relative" rel
    (Checks.pointer_assignment w.x ~dst:nvm_cell ~value:rel);
  (* pny = pxv : convert to relative *)
  check_i64 "NVM <- virtual converts" rel
    (Checks.pointer_assignment w.x ~dst:nvm_cell ~value:va);
  (* pdy = pxr : convert to virtual *)
  check_i64 "DRAM <- relative converts" va
    (Checks.pointer_assignment w.x ~dst:dram_cell ~value:rel);
  (* pdy = pxv : store as-is *)
  check_i64 "DRAM <- virtual keeps" va
    (Checks.pointer_assignment w.x ~dst:dram_cell ~value:va)

let test_pointer_assignment_null () =
  let w = make_world () in
  let nvm_cell = Pmop.pmalloc w.pm ~pool:w.pool_a 8 in
  check_i64 "NULL into NVM stays NULL" 0L
    (Checks.pointer_assignment w.x ~dst:nvm_cell ~value:Ptr.null);
  check_i64 "NULL into DRAM stays NULL" 0L
    (Checks.pointer_assignment w.x ~dst:0x3000L ~value:Ptr.null)

let test_pointer_assignment_via_nvm_va_dst () =
  (* The destination may itself be given as an NVM virtual address. *)
  let w = make_world () in
  let rel = Pmop.pmalloc w.pm ~pool:w.pool_a 64 in
  let va = Xlate.ra2va w.x rel in
  let nvm_cell = Pmop.pmalloc w.pm ~pool:w.pool_b 8 in
  let nvm_cell_va = Xlate.ra2va w.x nvm_cell in
  check_i64 "NVM-VA destination still stores relative" rel
    (Checks.pointer_assignment w.x ~dst:nvm_cell_va ~value:va)

let test_dram_va_into_nvm_escape () =
  let w = make_world () in
  let nvm_cell = Pmop.pmalloc w.pm ~pool:w.pool_a 8 in
  let stored = Checks.pointer_assignment w.x ~dst:nvm_cell ~value:0x5000L in
  check_i64 "DRAM VA stored unconverted" 0x5000L stored;
  check_bool "escape recorded" true
    ((Xlate.counters w.x).Xlate.volatile_escapes >= 1)

(* --- Fig. 4 semantics --------------------------------------------------- *)

let test_cast_ops () =
  let w = make_world () in
  let rel = Pmop.pmalloc w.pm ~pool:w.pool_a 64 in
  let va = Xlate.ra2va w.x rel in
  check_i64 "(T* )p identity" rel (Semantics.cast_ptr rel);
  check_i64 "(T* )i identity" 0x42L (Semantics.cast_int_to_ptr 0x42L);
  check_i64 "(I)pxv is the VA" va (Semantics.cast_ptr_to_int w.x va);
  check_i64 "(I)pxr is the VA too" va (Semantics.cast_ptr_to_int w.x rel)

let test_additive_ops () =
  let w = make_world () in
  let rel = Pmop.pmalloc w.pm ~pool:w.pool_a 64 in
  let va = Xlate.ra2va w.x rel in
  let rel8 = Semantics.add_int rel 1L ~elem_size:8 in
  check_bool "p+i keeps relative format" true (Ptr.is_relative rel8);
  check_i64 "p+i moves the offset" (Int64.add (Ptr.offset_of rel) 8L)
    (Ptr.offset_of rel8);
  check_i64 "same element via either format" (Int64.add va 8L)
    (Xlate.ra2va w.x rel8);
  check_i64 "p-i undoes p+i" rel (Semantics.sub_int rel8 1L ~elem_size:8);
  check_i64 "incr = add elem" rel8 (Semantics.incr rel ~elem_size:8);
  check_i64 "decr undoes incr" rel (Semantics.decr rel8 ~elem_size:8)

let test_diff_ops () =
  let w = make_world () in
  let rel = Pmop.pmalloc w.pm ~pool:w.pool_a 128 in
  let va = Xlate.ra2va w.x rel in
  let rel3 = Semantics.add_int rel 3L ~elem_size:8 in
  let c0 = (Xlate.counters w.x).Xlate.ra2va in
  check_i64 "pxr - pxr' same pool, no translation" 3L
    (Semantics.diff w.x rel3 rel ~elem_size:8);
  check_int "no ra2va used" c0 (Xlate.counters w.x).Xlate.ra2va;
  check_i64 "pxr - pxv mixed" 3L
    (Semantics.diff w.x rel3 va ~elem_size:8);
  check_i64 "pxv - pxr mixed" (-3L)
    (Semantics.diff w.x va rel3 ~elem_size:8)

let test_relational_ops () =
  let w = make_world () in
  let rel = Pmop.pmalloc w.pm ~pool:w.pool_a 64 in
  let va = Xlate.ra2va w.x rel in
  let rel2 = Semantics.add_int rel 2L ~elem_size:8 in
  check_bool "pxr < pxr'" true (Semantics.compare_ptr w.x Semantics.Lt rel rel2);
  check_bool "pxr == pxv same object" true (Semantics.equal_ptr w.x rel va);
  check_bool "pxv == pxr symmetric" true (Semantics.equal_ptr w.x va rel);
  check_bool "pxr != pxr+2" true
    (Semantics.compare_ptr w.x Semantics.Ne rel rel2);
  check_bool "p == NULL false for relative" false
    (Semantics.equal_ptr w.x rel Ptr.null);
  check_bool "NULL == NULL" true (Semantics.equal_ptr w.x Ptr.null Ptr.null);
  check_bool "p >= p" true (Semantics.compare_ptr w.x Semantics.Ge rel rel)

let test_cross_pool_relational () =
  let w = make_world () in
  let pa = Pmop.pmalloc w.pm ~pool:w.pool_a 64 in
  let pb = Pmop.pmalloc w.pm ~pool:w.pool_b 64 in
  (* Cross-pool comparison must agree with VA comparison. *)
  let va_a = Xlate.ra2va w.x pa and va_b = Xlate.ra2va w.x pb in
  check_bool "cross-pool < agrees with VA order" (va_a < va_b)
    (Semantics.compare_ptr w.x Semantics.Lt pa pb);
  check_bool "cross-pool equality is false" false
    (Semantics.equal_ptr w.x pa pb)

let test_logical_ops () =
  let w = make_world () in
  let rel = Pmop.pmalloc w.pm ~pool:w.pool_a 8 in
  check_bool "relative pointer is truthy" true (Semantics.is_true rel);
  check_bool "VA pointer is truthy" true (Semantics.is_true 0x1000L);
  check_bool "NULL is falsy" false (Semantics.is_true Ptr.null);
  check_bool "!NULL" true (Semantics.logical_not Ptr.null);
  check_bool "!p" false (Semantics.logical_not rel)

let test_postfix_ops () =
  let w = make_world () in
  let rel = Pmop.pmalloc w.pm ~pool:w.pool_a 128 in
  let va = Xlate.ra2va w.x rel in
  check_i64 "p[i] address" (Int64.add va 24L)
    (Semantics.index_address w.x rel 3L ~elem_size:8);
  check_i64 "p->field address" (Int64.add va 16L)
    (Semantics.member_address w.x rel ~field_offset:16);
  check_i64 "call target through pxr" va (Semantics.call_target w.x rel)

let test_sizeof () =
  check_int "sizeof p" 8 Semantics.sizeof_ptr;
  check_int "alignof p" 8 Semantics.alignof_ptr

(* --- properties --------------------------------------------------------- *)

let prop_tag_roundtrip =
  QCheck.Test.make ~name:"relative tag pack/unpack roundtrip" ~count:500
    QCheck.(pair (int_bound Ptr.max_pool_id) (int_bound 0x3FFFFFFF))
    (fun (pool, off) ->
      let offset = Int64.of_int off in
      let p = Ptr.make_relative ~pool ~offset in
      Ptr.is_relative p && Ptr.pool_of p = pool
      && Int64.equal (Ptr.offset_of p) offset)

let prop_translation_consistent =
  QCheck.Test.make ~name:"ra2va/va2ra inverse inside a pool" ~count:200
    QCheck.(int_bound 4000)
    (fun off ->
      let w = make_world () in
      let rel = Pmop.pmalloc w.pm ~pool:w.pool_a 4096 in
      let p = Ptr.add rel (Int64.of_int (off land lnot 7)) in
      let va = Xlate.ra2va w.x p in
      Int64.equal (Xlate.va2ra w.x va) p)

let prop_assignment_formats =
  QCheck.Test.make
    ~name:"pointerAssignment always stores the format its cell demands"
    ~count:200
    QCheck.(pair bool bool)
    (fun (dst_nvm, src_rel) ->
      let w = make_world () in
      let rel = Pmop.pmalloc w.pm ~pool:w.pool_a 64 in
      let value = if src_rel then rel else Xlate.ra2va w.x rel in
      let dst =
        if dst_nvm then Pmop.pmalloc w.pm ~pool:w.pool_b 8 else 0x3000L
      in
      let stored = Checks.pointer_assignment w.x ~dst ~value in
      if dst_nvm then Ptr.is_relative stored else Ptr.is_virtual stored)

let prop_compare_agrees_with_va =
  QCheck.Test.make
    ~name:"pointer comparison agrees with VA comparison in any format mix"
    ~count:300
    QCheck.(triple (int_bound 500) (int_bound 500) (pair bool bool))
    (fun (i, j, (fi, fj)) ->
      let w = make_world () in
      let arr = Pmop.pmalloc w.pm ~pool:w.pool_a 4096 in
      let p = Ptr.add arr (Int64.of_int (i * 8)) in
      let q = Ptr.add arr (Int64.of_int (j * 8)) in
      let p = if fi then p else Xlate.ra2va w.x p in
      let q = if fj then q else Xlate.ra2va w.x q in
      Semantics.compare_ptr w.x Semantics.Lt p q = (i < j)
      && Semantics.equal_ptr w.x p q = (i = j))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_tag_roundtrip;
      prop_translation_consistent;
      prop_assignment_formats;
      prop_compare_agrees_with_va;
    ]

let () =
  Alcotest.run "core"
    [
      ( "representation",
        [
          Alcotest.test_case "tagging" `Quick test_tagging;
          Alcotest.test_case "bounds" `Quick test_tag_bounds;
          Alcotest.test_case "location" `Quick test_location;
          Alcotest.test_case "determineXY" `Quick test_determine_xy;
        ] );
      ( "translation",
        [
          Alcotest.test_case "roundtrip" `Quick test_ra2va_va2ra_roundtrip;
          Alcotest.test_case "identity on VA" `Quick test_ra2va_identity_on_va;
          Alcotest.test_case "DRAM escape" `Quick test_va2ra_dram_escape;
          Alcotest.test_case "pool detach" `Quick test_pool_detach_fault;
          Alcotest.test_case "relocation" `Quick test_relocation;
        ] );
      ( "pointer-assignment",
        [
          Alcotest.test_case "four-way matrix" `Quick
            test_pointer_assignment_matrix;
          Alcotest.test_case "NULL" `Quick test_pointer_assignment_null;
          Alcotest.test_case "NVM-VA destination" `Quick
            test_pointer_assignment_via_nvm_va_dst;
          Alcotest.test_case "DRAM-VA escape" `Quick
            test_dram_va_into_nvm_escape;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "casts" `Quick test_cast_ops;
          Alcotest.test_case "additive" `Quick test_additive_ops;
          Alcotest.test_case "difference" `Quick test_diff_ops;
          Alcotest.test_case "relational" `Quick test_relational_ops;
          Alcotest.test_case "cross-pool relational" `Quick
            test_cross_pool_relational;
          Alcotest.test_case "logical" `Quick test_logical_ops;
          Alcotest.test_case "postfix" `Quick test_postfix_ops;
          Alcotest.test_case "sizeof" `Quick test_sizeof;
        ] );
      ("properties", qsuite);
    ]
