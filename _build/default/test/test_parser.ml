(* Tests for the mini-C surface syntax: lexer, parser, pretty-printer
   roundtrip, behavioural equivalence of parsed vs. embedded programs,
   and the Fig. 9-style instrumentation codegen. *)

module Runtime = Nvml_runtime.Runtime
module Ast = Nvml_minic.Ast
module Lexer = Nvml_minic.Lexer
module Parser = Nvml_minic.Parser
module Pretty = Nvml_minic.Pretty
module Interp = Nvml_minic.Interp
module Corpus = Nvml_minic.Corpus
module Inference = Nvml_comp.Inference
module Codegen = Nvml_comp.Codegen

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_out = Alcotest.(check (list int64))

let run_program ~mode ~persistent program =
  let rt = Runtime.create ~mode () in
  let heap =
    if persistent then
      Runtime.Pool_region (Runtime.create_pool rt ~name:"heap" ~size:(1 lsl 22))
    else Runtime.Dram_region
  in
  (Interp.run rt ~heap program ~args:[]).Interp.output


(* --- lexer -------------------------------------------------------------- *)

let tokens src = List.map (fun t -> t.Lexer.token) (Lexer.tokenize src)

let test_lex_basic () =
  check_bool "number + ident" true
    (tokens "42 foo"
    = [ Lexer.INT_LIT 42L; Lexer.IDENT "foo"; Lexer.EOF ]);
  check_bool "hex" true (tokens "0xFF" = [ Lexer.INT_LIT 255L; Lexer.EOF ]);
  check_bool "keywords" true
    (tokens "int while NULL"
    = [ Lexer.KW_INT; Lexer.KW_WHILE; Lexer.KW_NULL; Lexer.EOF ])

let test_lex_operators () =
  check_bool "compound operators" true
    (tokens "-> ++ -- <= >= == != && || << >>"
    = [
        Lexer.ARROW; Lexer.PLUSPLUS; Lexer.MINUSMINUS; Lexer.LE; Lexer.GE;
        Lexer.EQ; Lexer.NE; Lexer.ANDAND; Lexer.OROR; Lexer.SHL; Lexer.SHR;
        Lexer.EOF;
      ]);
  check_bool "minus vs arrow" true
    (tokens "a-b" = [ Lexer.IDENT "a"; Lexer.MINUS; Lexer.IDENT "b"; Lexer.EOF ])

let test_lex_comments () =
  check_bool "line comment" true
    (tokens "1 // two three\n4" = [ Lexer.INT_LIT 1L; Lexer.INT_LIT 4L; Lexer.EOF ]);
  check_bool "block comment" true
    (tokens "1 /* x\ny */ 2" = [ Lexer.INT_LIT 1L; Lexer.INT_LIT 2L; Lexer.EOF ])

let test_lex_errors () =
  check_bool "stray char" true
    (try
       ignore (tokens "a $ b");
       false
     with Lexer.Lex_error (_, 1, _) -> true);
  check_bool "unterminated comment" true
    (try
       ignore (tokens "1 /* oops");
       false
     with Lexer.Lex_error _ -> true)

(* --- parser: expression shapes ------------------------------------------- *)

let expr_str s = Pretty.expr_text (Parser.parse_expr_string s)

let test_parse_precedence () =
  check_str "mul binds over add" "1 + 2 * 3" (expr_str "1 + 2 * 3");
  check_str "parens preserved where needed" "(1 + 2) * 3"
    (expr_str "(1 + 2) * 3");
  check_str "relational vs logic" "a < b && c < d" (expr_str "a < b && c < d");
  check_str "assignment is rightmost" "a = b = 3" (expr_str "a = b = 3");
  check_str "unary binds tighter" "-a * b" (expr_str "-a * b");
  check_str "deref then arrow" "(*p)->f" (expr_str "(*p)->f")

let test_parse_postfix_chains () =
  check_str "index chain" "rows[1][2]" (expr_str "rows[1][2]");
  check_str "arrow chain" "a->b->c" (expr_str "a->b->c");
  check_str "post incr on deref" "(*p)++" (expr_str "(*p)++");
  check_str "call with args" "f(1, x, g(2))" (expr_str "f(1, x, g(2))")

let test_parse_casts () =
  check_str "cast of call" "(int*)malloc(8)" (expr_str "(int * ) malloc(8)");
  check_str "cast to int" "(int)p - (int)q" (expr_str "(int)p - (int)q");
  check_str "sizeof" "sizeof(struct node)" (expr_str "sizeof(struct node)");
  check_str "cond" "p ? 1 : 0" (expr_str "p ? 1 : 0")

let test_parse_errors () =
  let bad s =
    try
      ignore (Parser.parse_expr_string s);
      false
    with Parser.Parse_error _ -> true
  in
  check_bool "unbalanced paren" true (bad "(1 + 2");
  check_bool "missing operand" true (bad "1 +");
  check_bool "stray bracket" true (bad "a[1");
  let bad_prog s =
    try
      ignore (Parser.parse_program s);
      false
    with Parser.Parse_error _ -> true
  in
  check_bool "missing semi" true (bad_prog "int main() { return 0 }");
  check_bool "bad toplevel" true (bad_prog "42;")

let test_parse_for_break_continue () =
  let src =
    {|
int main() {
  int sum = 0;
  for (int i = 0; i < 20; ++i) {
    if (i % 2 == 1) { continue; }
    if (i > 10) { break; }
    sum = sum + i;
  }
  print(sum);
  return 0;
}
|}
  in
  let program = Parser.parse_program src in
  check_out "for with break/continue" [ 30L ] (* 0+2+4+6+8+10 *)
    (run_program ~mode:Runtime.Volatile ~persistent:false program);
  (* Roundtrips through the printer. *)
  let text = Pretty.program_text program in
  check_str "for roundtrip" text
    (Pretty.program_text (Parser.parse_program text))

let test_parse_function_pointers () =
  let src =
    {|
int twice(int x) { return x * 2; }
int main() {
  fnptr f = twice;
  print(f(21));
  fnptr g = f;
  print((g)(10));
  print(g == twice);
  return 0;
}
|}
  in
  let program = Parser.parse_program src in
  List.iter
    (fun mode ->
      check_out
        (Fmt.str "function pointers in %a" Runtime.pp_mode mode)
        [ 42L; 20L; 1L ]
        (run_program ~mode ~persistent:true program))
    [ Runtime.Volatile; Runtime.Sw; Runtime.Hw ]

(* --- roundtrip: print(parse(print(p))) is stable --------------------------- *)

let test_roundtrip_corpus () =
  List.iter
    (fun (name, program) ->
      let text1 = Pretty.program_text program in
      let reparsed =
        try Parser.parse_program text1
        with Parser.Parse_error (m, l, c) ->
          Alcotest.failf "%s: reparse failed at %d:%d: %s" name l c m
      in
      let text2 = Pretty.program_text reparsed in
      check_str (name ^ " roundtrip stable") text1 text2)
    Corpus.all

(* --- behaviour: a parsed source program runs like the embedded one --------- *)

let linked_list_source =
  {|
struct node {
  int value;
  struct node* next;
};

int main() {
  struct node* head = NULL;
  int i = 0;
  while (i < 8) {
    struct node* n = (struct node*) malloc(sizeof(struct node));
    n->value = i;
    n->next = head;
    head = n;
    ++i;
  }
  struct node* p = head;
  int sum = 0;
  while (p != NULL) {
    sum = sum + p->value;
    p = p->next;
  }
  print(sum);
  /* reverse in place */
  struct node* prev = NULL;
  p = head;
  while (p != NULL) {
    struct node* nx = p->next;
    p->next = prev;
    prev = p;
    p = nx;
  }
  print(prev->value);
  return 0;
}
|}

let test_parsed_program_behaviour () =
  let parsed = Parser.parse_program linked_list_source in
  let reference = run_program ~mode:Runtime.Volatile ~persistent:false parsed in
  check_out "same output as embedded corpus version" reference
    (run_program ~mode:Runtime.Volatile ~persistent:false
       (Corpus.find "linked_list"));
  (* And it is sound under the persistent heap in SW/HW. *)
  List.iter
    (fun mode ->
      check_out
        (Fmt.str "parsed source sound in %a" Runtime.pp_mode mode)
        reference
        (run_program ~mode ~persistent:true parsed))
    [ Runtime.Sw; Runtime.Hw ]

let test_parse_whole_struct_program () =
  let src =
    {|
struct pair { int a; int b; };
int get(struct pair* p) { return p->a + p->b; }
int main() {
  struct pair* p = (struct pair*) malloc(sizeof(struct pair));
  p->a = 30;
  p->b = 12;
  print(get(p));
  return 0;
}
|}
  in
  let program = Parser.parse_program src in
  check_int "two functions" 2 (List.length program.Ast.funcs);
  check_int "one struct" 1 (List.length program.Ast.structs);
  check_out "runs" [ 42L ]
    (run_program ~mode:Runtime.Hw ~persistent:true program)

(* --- codegen (Fig. 9) ---------------------------------------------------------- *)

(* The paper's Fig. 9 example: a linked-list Append through opaque
   parameters. *)
let append_source =
  {|
struct Node { int value; struct Node* next; };
void Append(struct Node* p, struct Node* n) {
  if (p != n) {
    p->next = n;
  }
  return;
}
int main() {
  struct Node* a = (struct Node*) malloc(sizeof(struct Node));
  struct Node* b = (struct Node*) malloc(sizeof(struct Node));
  a->next = NULL;
  b->next = NULL;
  Append(a, b);
  print(a->next == b);
  return 0;
}
|}

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_codegen_inserts_checks () =
  let program = Parser.parse_program append_source in
  let generated = Codegen.generated_source program in
  check_bool "determineY conditionals appear" true
    (contains ~needle:"determineY" generated);
  check_bool "ra2va calls appear" true (contains ~needle:"ra2va" generated);
  check_bool "pointerAssignment call appears" true
    (contains ~needle:"pointerAssignment" generated)

let test_codegen_nothing_with_volatile_heap () =
  let program = Parser.parse_program append_source in
  let generated = Codegen.generated_source ~heap_relative:false program in
  check_bool "no checks with a DRAM heap" false
    (contains ~needle:"determineY" generated
    || contains ~needle:"pointerAssignment" generated)

let test_codegen_resolved_sites_unchecked () =
  (* array_sum is fully resolved: conversions may appear but no dynamic
     determineY checks. *)
  let generated = Codegen.generated_source (Corpus.find "array_sum") in
  check_bool "no dynamic checks in resolved program" false
    (contains ~needle:"determineY" generated)

(* --- fuzz: random expressions survive print -> parse -> print ------------------ *)

let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map Ast.int_ (int_bound 100);
        map Ast.var (oneofl [ "a"; "b"; "p"; "q" ]);
        return Ast.null;
      ]
  in
  let ty_gen =
    oneofl
      [ Ast.Tint; Ast.Tptr Ast.Tint; Ast.Tptr (Ast.Tstruct "node"); Ast.Tfunptr ]
  in
  let binop_gen =
    oneofl
      [
        Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Lt; Ast.Gt; Ast.Le;
        Ast.Ge; Ast.Eq; Ast.Ne; Ast.And; Ast.Or; Ast.Band; Ast.Bor; Ast.Bxor;
        Ast.Shl; Ast.Shr;
      ]
  in
  fix
    (fun self n ->
      if n <= 0 then leaf
      else
        let sub = self (n / 2) in
        oneof
          [
            leaf;
            map2 (fun op (a, b) -> Ast.binop op a b) binop_gen (pair sub sub);
            map (fun a -> Ast.unop Ast.Not a) sub;
            map (fun a -> Ast.unop Ast.Bnot a) sub;
            map (fun a -> Ast.unop Ast.Neg a) sub;
            map Ast.deref sub;
            map Ast.addr sub;
            map2 Ast.index sub sub;
            map (fun a -> Ast.arrow a "next") sub;
            map2 (fun a b -> Ast.assign a b) sub sub;
            map2 (fun c (a, b) -> Ast.cond c a b) sub (pair sub sub);
            map2 (fun ty a -> Ast.cast ty a) ty_gen sub;
            map Ast.sizeof ty_gen;
            map (fun args -> Ast.call "f" args) (list_size (int_bound 3) sub);
            map2 (fun callee args -> Ast.call_ptr callee args) sub
              (list_size (int_bound 2) sub);
            map Ast.pre_incr sub;
            map Ast.post_decr sub;
          ])
    6

let prop_print_parse_print_stable =
  QCheck.Test.make ~name:"random expressions: print/parse/print is stable"
    ~count:500
    (QCheck.make ~print:Pretty.expr_text gen_expr)
    (fun e ->
      let text1 = Pretty.expr_text e in
      match Parser.parse_expr_string text1 with
      | reparsed -> Pretty.expr_text reparsed = text1
      | exception Parser.Parse_error (m, l, c) ->
          QCheck.Test.fail_reportf "parse error at %d:%d: %s in %S" l c m text1)

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_print_parse_print_stable ]

let () =
  Alcotest.run "parser"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lex_basic;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "errors" `Quick test_lex_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "postfix chains" `Quick test_parse_postfix_chains;
          Alcotest.test_case "casts" `Quick test_parse_casts;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "struct program" `Quick
            test_parse_whole_struct_program;
          Alcotest.test_case "for/break/continue" `Quick
            test_parse_for_break_continue;
          Alcotest.test_case "function pointers" `Quick
            test_parse_function_pointers;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "corpus print-parse-print" `Quick
            test_roundtrip_corpus;
          Alcotest.test_case "parsed behaviour" `Quick
            test_parsed_program_behaviour;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "checks inserted" `Quick
            test_codegen_inserts_checks;
          Alcotest.test_case "volatile heap clean" `Quick
            test_codegen_nothing_with_volatile_heap;
          Alcotest.test_case "resolved unchecked" `Quick
            test_codegen_resolved_sites_unchecked;
        ] );
      ("fuzz", qsuite);
    ]
