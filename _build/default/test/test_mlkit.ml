(* Tests for the matrix library and the KNN case study. *)

module Runtime = Nvml_runtime.Runtime
module Matrix = Nvml_mlkit.Matrix
module Iris = Nvml_mlkit.Iris
module Knn = Nvml_mlkit.Knn
module Cpu = Nvml_arch.Cpu

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let make mode =
  let rt = Runtime.create ~mode () in
  let pool =
    match mode with
    | Runtime.Volatile -> -1
    | _ -> Runtime.create_pool rt ~name:"ml" ~size:(1 lsl 22)
  in
  (rt, pool)

let test_matrix_basics () =
  let rt, pool = make Runtime.Hw in
  let m = Matrix.create rt (Runtime.Pool_region pool) ~rows:3 ~cols:4 in
  check_int "rows" 3 (Matrix.rows m);
  check_int "cols" 4 (Matrix.cols m);
  Matrix.set m 1 2 3.5;
  check_float "get back" 3.5 (Matrix.get m 1 2);
  check_float "untouched is zero" 0.0 (Matrix.get m 0 0)

let test_matrix_of_arrays_roundtrip () =
  let rt, _ = make Runtime.Volatile in
  let a = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |] in
  let m = Matrix.of_arrays rt Runtime.Dram_region a in
  check_bool "roundtrip" true (Matrix.to_arrays m = a)

let test_matrix_fill () =
  let rt, pool = make Runtime.Sw in
  let m = Matrix.create rt (Runtime.Pool_region pool) ~rows:4 ~cols:4 in
  Matrix.fill m 7.0;
  check_float "filled" 7.0 (Matrix.get m 3 3)

let test_iris_shape () =
  let d = Iris.generate () in
  check_int "150 samples" 150 (Array.length d.Iris.features);
  check_int "4 features" 4 (Array.length d.Iris.features.(0));
  check_int "150 labels" 150 (Array.length d.Iris.labels);
  check_int "3 classes" 3
    (List.length (List.sort_uniq compare (Array.to_list d.Iris.labels)))

let test_iris_deterministic () =
  let a = Iris.generate () and b = Iris.generate () in
  check_bool "same seed, same data" true (a.Iris.features = b.Iris.features)

let run_knn mode =
  let rt, pool = make mode in
  let placement =
    match mode with
    | Runtime.Volatile -> Knn.all_dram
    | _ -> Knn.paper_placement ~pool
  in
  let data = Iris.generate () in
  let t =
    Knn.create rt placement ~n:Iris.total_samples
      ~dims:Iris.features_per_sample ~k:3
  in
  Knn.load_input t data.Iris.features;
  let before = Runtime.snapshot rt in
  Knn.run rt t;
  let after = Runtime.snapshot rt in
  (Knn.accuracy t data.Iris.labels, Cpu.diff_snapshot after before)

let test_knn_accuracy () =
  (* Separated synthetic clusters: leave-one-out 3-NN should be easy. *)
  let acc, _ = run_knn Runtime.Volatile in
  check_bool (Fmt.str "accuracy %.2f > 0.9" acc) true (acc > 0.9)

let test_knn_same_answer_all_modes () =
  let reference, _ = run_knn Runtime.Volatile in
  List.iter
    (fun mode ->
      let acc, _ = run_knn mode in
      check_float
        (Fmt.str "accuracy equal in %a" Runtime.pp_mode mode)
        reference acc)
    [ Runtime.Sw; Runtime.Hw; Runtime.Explicit ]

let test_knn_hw_overhead_marginal () =
  let _, vol = run_knn Runtime.Volatile in
  let _, hw = run_knn Runtime.Hw in
  let ratio = float_of_int hw.Cpu.cycles /. float_of_int vol.Cpu.cycles in
  check_bool (Fmt.str "HW/volatile = %.3f < 1.5" ratio) true (ratio < 1.5)

let test_knn_sw_slowdown_substantial () =
  let _, vol = run_knn Runtime.Volatile in
  let _, sw = run_knn Runtime.Sw in
  let ratio = float_of_int sw.Cpu.cycles /. float_of_int vol.Cpu.cycles in
  check_bool (Fmt.str "SW/volatile = %.2f > 1.5" ratio) true (ratio > 1.5)

let test_all_16_placements_work () =
  let rt, pool = make Runtime.Hw in
  let data = Iris.generate () in
  let placements = Knn.all_placements ~pool in
  check_int "16 combinations" 16 (List.length placements);
  (* Run a reduced problem under every placement; same accuracy. *)
  let small = Array.sub data.Iris.features 0 60 in
  let labels = Array.sub data.Iris.labels 0 60 in
  let accs =
    List.map
      (fun placement ->
        let t = Knn.create rt placement ~n:60 ~dims:4 ~k:3 in
        Knn.load_input t small;
        Knn.run rt t;
        Knn.accuracy t labels)
      placements
  in
  match accs with
  | first :: rest ->
      List.iteri
        (fun i acc ->
          check_float (Fmt.str "placement %d accuracy" i) first acc)
        rest
  | [] -> Alcotest.fail "no placements"

let () =
  Alcotest.run "mlkit"
    [
      ( "matrix",
        [
          Alcotest.test_case "basics" `Quick test_matrix_basics;
          Alcotest.test_case "of_arrays" `Quick test_matrix_of_arrays_roundtrip;
          Alcotest.test_case "fill" `Quick test_matrix_fill;
        ] );
      ( "iris",
        [
          Alcotest.test_case "shape" `Quick test_iris_shape;
          Alcotest.test_case "deterministic" `Quick test_iris_deterministic;
        ] );
      ( "knn",
        [
          Alcotest.test_case "accuracy" `Quick test_knn_accuracy;
          Alcotest.test_case "same answer all modes" `Slow
            test_knn_same_answer_all_modes;
          Alcotest.test_case "HW overhead marginal" `Slow
            test_knn_hw_overhead_marginal;
          Alcotest.test_case "SW slowdown substantial" `Slow
            test_knn_sw_slowdown_substantial;
          Alcotest.test_case "16 placements" `Slow test_all_16_placements_work;
        ] );
    ]
