(* Tests for the timing model: caches, branch predictor, the VATB
   B-tree, VALB, storeP unit, cycle accounting and the Table II cost
   model. *)

module Layout = Nvml_simmem.Layout
module Mem = Nvml_simmem.Mem
module Cache = Nvml_arch.Cache
module Bp = Nvml_arch.Branch_predictor
module Btree = Nvml_arch.Range_btree
module Valb = Nvml_arch.Valb
module Storep = Nvml_arch.Storep_unit
module Cpu = Nvml_arch.Cpu
module Config = Nvml_arch.Config
module Hw_cost = Nvml_arch.Hw_cost

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- cache ----------------------------------------------------------- *)

let test_cache_hit_after_miss () =
  let c = Cache.create ~sets:4 ~ways:2 ~index_shift:6 in
  check_bool "first access misses" false (Cache.access c 0x1000);
  check_bool "second access hits" true (Cache.access c 0x1000);
  check_bool "same line hits" true (Cache.access c 0x103F);
  check_bool "next line misses" false (Cache.access c 0x1040)

let test_cache_lru_eviction () =
  let c = Cache.create ~sets:1 ~ways:2 ~index_shift:6 in
  ignore (Cache.access c 0x000);
  ignore (Cache.access c 0x040);
  ignore (Cache.access c 0x000); (* touch A: B becomes LRU *)
  ignore (Cache.access c 0x080); (* evicts B *)
  check_bool "A survives" true (Cache.probe c 0x000);
  check_bool "B evicted" false (Cache.probe c 0x040);
  check_bool "C present" true (Cache.probe c 0x080)

let test_cache_sets_independent () =
  let c = Cache.create ~sets:2 ~ways:1 ~index_shift:6 in
  ignore (Cache.access c 0x000); (* set 0 *)
  ignore (Cache.access c 0x040); (* set 1 *)
  check_bool "set 0 kept" true (Cache.probe c 0x000);
  check_bool "set 1 kept" true (Cache.probe c 0x040)

let test_cache_invalidate () =
  let c = Cache.create ~sets:1 ~ways:4 ~index_shift:0 in
  ignore (Cache.access c 7);
  Cache.invalidate c 7;
  check_bool "invalidated" false (Cache.probe c 7)

let test_cache_of_size () =
  (* 256 KiB, 8-way, 64 B lines = 512 sets. *)
  let c = Cache.of_size ~kib:256 ~ways:8 ~line_shift:6 in
  ignore (Cache.access c 0);
  check_bool "accessible" true (Cache.probe c 0)

(* --- branch predictor --------------------------------------------------- *)

let test_bp_learns_bias () =
  let bp = Bp.create ~table_bits:10 ~history_bits:8 in
  (* A loop-like branch: always taken.  After warmup, no misses. *)
  for _ = 1 to 100 do
    ignore (Bp.branch bp ~pc:0x40 ~taken:true)
  done;
  Bp.reset_stats bp;
  for _ = 1 to 100 do
    ignore (Bp.branch bp ~pc:0x40 ~taken:true)
  done;
  check_int "steady-state misses" 0 (Bp.mispredictions bp)

let test_bp_random_hurts () =
  let bp = Bp.create ~table_bits:10 ~history_bits:8 in
  let rng = Random.State.make [| 7 |] in
  let misses = ref 0 in
  for _ = 1 to 2000 do
    if Bp.branch bp ~pc:0x40 ~taken:(Random.State.bool rng) then incr misses
  done;
  check_bool "random branches mispredict a lot" true (!misses > 400)

let test_bp_alternating_learnable () =
  (* A strict alternation is captured by global history. *)
  let bp = Bp.create ~table_bits:12 ~history_bits:8 in
  let taken = ref false in
  for _ = 1 to 500 do
    taken := not !taken;
    ignore (Bp.branch bp ~pc:0x80 ~taken:!taken)
  done;
  Bp.reset_stats bp;
  for _ = 1 to 500 do
    taken := not !taken;
    ignore (Bp.branch bp ~pc:0x80 ~taken:!taken)
  done;
  check_bool "alternation learned" true (Bp.miss_rate bp < 0.05)

(* --- range B-tree ---------------------------------------------------------- *)

let test_btree_basic () =
  let t = Btree.create () in
  Btree.insert t ~base:0x1000L ~size:0x1000L ~pool:1;
  Btree.insert t ~base:0x5000L ~size:0x2000L ~pool:2;
  (match Btree.lookup t 0x1800L with
  | Some (e, _) -> check_int "pool 1 found" 1 e.Btree.pool
  | None -> Alcotest.fail "missing range");
  (match Btree.lookup t 0x6FFFL with
  | Some (e, _) -> check_int "pool 2 found" 2 e.Btree.pool
  | None -> Alcotest.fail "missing range 2");
  check_bool "gap misses" true (Btree.lookup t 0x3000L = None);
  check_bool "below misses" true (Btree.lookup t 0x0L = None);
  check_bool "end is exclusive" true (Btree.lookup t 0x7000L = None)

let test_btree_many_and_remove () =
  let t = Btree.create () in
  for i = 0 to 199 do
    Btree.insert t
      ~base:(Int64.of_int (i * 0x10000))
      ~size:0x8000L ~pool:i
  done;
  Btree.check_invariants t;
  check_int "count" 200 (Btree.length t);
  check_bool "height reasonable" true (Btree.height t <= 4);
  (* Remove the even pools. *)
  for i = 0 to 199 do
    if i mod 2 = 0 then
      check_bool "removed" true (Btree.remove t (Int64.of_int (i * 0x10000)))
  done;
  Btree.check_invariants t;
  check_int "count after removal" 100 (Btree.length t);
  for i = 0 to 199 do
    let found = Btree.lookup t (Int64.of_int ((i * 0x10000) + 0x100)) <> None in
    check_bool (Fmt.str "pool %d presence" i) (i mod 2 = 1) found
  done

let test_btree_lookup_reports_walk () =
  let t = Btree.create () in
  for i = 0 to 499 do
    Btree.insert t ~base:(Int64.of_int (i * 0x10000)) ~size:0x8000L ~pool:i
  done;
  match Btree.lookup t 0x100L with
  | Some (_, visited) ->
      check_bool "walk length within height" true
        (visited >= 1 && visited <= Btree.height t)
  | None -> Alcotest.fail "expected hit"

let prop_btree_matches_reference =
  QCheck.Test.make ~name:"B-tree agrees with a reference map under churn"
    ~count:60
    QCheck.(
      list_of_size
        Gen.(int_range 1 120)
        (pair bool (int_bound 300)))
    (fun script ->
      let t = Btree.create () in
      let reference = Hashtbl.create 64 in
      List.iter
        (fun (insert, slot) ->
          let base = Int64.of_int (slot * 0x10000) in
          if insert then begin
            Btree.insert t ~base ~size:0x8000L ~pool:slot;
            Hashtbl.replace reference slot ()
          end
          else begin
            let removed = Btree.remove t base in
            let expected = Hashtbl.mem reference slot in
            Hashtbl.remove reference slot;
            if removed <> expected then failwith "remove mismatch"
          end)
        script;
      Btree.check_invariants t;
      Hashtbl.length reference = Btree.length t
      && Hashtbl.fold
           (fun slot () acc ->
             acc
             && Btree.lookup t (Int64.of_int ((slot * 0x10000) + 4)) <> None)
           reference true)

(* --- VALB -------------------------------------------------------------------- *)

let test_valb_hit_miss () =
  let v = Valb.create ~entries:2 in
  check_bool "cold miss" true (Valb.lookup v 0x1000L = None);
  Valb.insert v ~base:0x1000L ~size:0x1000L ~pool:3;
  check_bool "hit in range" true (Valb.lookup v 0x1800L = Some 3);
  check_bool "miss out of range" true (Valb.lookup v 0x2000L = None)

let test_valb_lru_and_shootdown () =
  let v = Valb.create ~entries:2 in
  Valb.insert v ~base:0x1000L ~size:0x100L ~pool:1;
  Valb.insert v ~base:0x2000L ~size:0x100L ~pool:2;
  ignore (Valb.lookup v 0x1000L); (* touch pool 1 *)
  Valb.insert v ~base:0x3000L ~size:0x100L ~pool:3; (* evicts pool 2 *)
  check_bool "pool 1 kept" true (Valb.lookup v 0x1000L = Some 1);
  check_bool "pool 2 evicted" true (Valb.lookup v 0x2000L = None);
  Valb.invalidate_pool v 1;
  check_bool "pool 1 shot down" true (Valb.lookup v 0x1000L = None)

(* --- storeP unit --------------------------------------------------------------- *)

let test_storep_no_stall_when_free () =
  let u = Storep.create ~entries:4 in
  check_int "no stall" 0 (Storep.issue u ~now:0 ~latency:10);
  check_int "no stall 2" 0 (Storep.issue u ~now:1 ~latency:10)

let test_storep_stalls_when_full () =
  let u = Storep.create ~entries:2 in
  ignore (Storep.issue u ~now:0 ~latency:10);
  ignore (Storep.issue u ~now:0 ~latency:10);
  let stall = Storep.issue u ~now:0 ~latency:10 in
  check_int "third storeP waits for a slot" 10 stall;
  check_bool "stall recorded" true (Storep.stall_cycles u >= 10)

let test_storep_frees_after_latency () =
  let u = Storep.create ~entries:1 in
  ignore (Storep.issue u ~now:0 ~latency:5);
  check_int "free again at t=5" 0 (Storep.issue u ~now:5 ~latency:5)

(* --- CPU accounting --------------------------------------------------------------- *)

let make_cpu () =
  let mem = Mem.create () in
  let cpu = Cpu.create Config.default mem in
  (mem, cpu)

let test_cpu_instr_cycles () =
  let _, cpu = make_cpu () in
  Cpu.instr cpu 10;
  check_int "1 cycle per instruction" 10 (Cpu.cycles cpu)

let test_cpu_nvm_slower_than_dram () =
  let mem, cpu = make_cpu () in
  let d = Mem.map_fresh mem Layout.Dram 4096 in
  let n = Mem.map_fresh mem Layout.Nvm 4096 in
  (* Cold miss each: DRAM access then NVM access, distinct cache sets. *)
  let c0 = Cpu.cycles cpu in
  Cpu.load cpu d;
  let dram_cost = Cpu.cycles cpu - c0 in
  let c1 = Cpu.cycles cpu in
  Cpu.load cpu n;
  let nvm_cost = Cpu.cycles cpu - c1 in
  check_bool "cold NVM load slower than cold DRAM load" true
    (nvm_cost > dram_cost);
  (* Warm hits cost the same (1 cycle). *)
  let c2 = Cpu.cycles cpu in
  Cpu.load cpu d;
  Cpu.load cpu n;
  check_int "both warm hits pipelined" 2 (Cpu.cycles cpu - c2)

let test_cpu_polb_translate () =
  let _, cpu = make_cpu () in
  let c0 = Cpu.cycles cpu in
  Cpu.polb_translate cpu ~pool:5;
  let miss_cost = Cpu.cycles cpu - c0 in
  let c1 = Cpu.cycles cpu in
  Cpu.polb_translate cpu ~pool:5;
  let hit_cost = Cpu.cycles cpu - c1 in
  check_bool "POLB miss costs the POW walk" true (miss_cost > hit_cost);
  check_int "POLB hit costs its latency" Config.default.Config.polb_latency
    hit_cost

let test_cpu_storep_valb_walk () =
  let mem, cpu = make_cpu () in
  let dst = Mem.map_fresh mem Layout.Nvm 4096 in
  Cpu.map_pool cpu ~base:dst ~size:4096 ~pool:9;
  Cpu.store_p cpu ~dst_va:dst ~xops:[ `Valb dst ];
  let s = Cpu.snapshot cpu in
  check_int "one storeP" 1 s.Cpu.storeps;
  check_int "one VALB access" 1 s.Cpu.valb_accesses;
  check_int "one VALB miss (cold)" 1 s.Cpu.valb_misses;
  check_int "one VAW walk" 1 s.Cpu.vaw_walks;
  (* Second one hits the VALB. *)
  Cpu.store_p cpu ~dst_va:dst ~xops:[ `Valb dst ];
  let s2 = Cpu.snapshot cpu in
  check_int "second VALB access hits" 1 s2.Cpu.valb_misses

let test_cpu_unmap_shootdown () =
  let mem, cpu = make_cpu () in
  let base = Mem.map_fresh mem Layout.Nvm 4096 in
  Cpu.map_pool cpu ~base ~size:4096 ~pool:4;
  Cpu.store_p cpu ~dst_va:base ~xops:[ `Valb base ];
  Cpu.unmap_pool cpu ~base ~pool:4;
  Cpu.store_p cpu ~dst_va:base ~xops:[ `Valb base ];
  let s = Cpu.snapshot cpu in
  check_int "VALB misses twice after shootdown" 2 s.Cpu.valb_misses

let test_cpu_branch_counts () =
  let _, cpu = make_cpu () in
  for _ = 1 to 50 do
    Cpu.branch cpu ~pc:0x10 ~taken:true
  done;
  let s = Cpu.snapshot cpu in
  check_int "branches counted" 50 s.Cpu.branches;
  check_bool "few mispredicts on a biased branch" true
    (s.Cpu.branch_mispredicts <= 2)

let test_cpu_snapshot_diff () =
  let _, cpu = make_cpu () in
  Cpu.instr cpu 5;
  let a = Cpu.snapshot cpu in
  Cpu.instr cpu 7;
  Cpu.branch cpu ~pc:4 ~taken:true;
  let b = Cpu.snapshot cpu in
  let d = Cpu.diff_snapshot b a in
  check_int "instr delta" 8 d.Cpu.instrs;
  check_int "branch delta" 1 d.Cpu.branches

let test_cpu_tlb_hierarchy () =
  let mem, cpu = make_cpu () in
  (* Touch more pages than the 64-entry L1 TLB holds: later re-touches
     must hit the L2 TLB (7-cycle stalls), not free L1 hits. *)
  let base = Mem.map_fresh mem Layout.Dram (256 * 4096) in
  for p = 0 to 255 do
    Cpu.load cpu (Int64.add base (Int64.of_int (p * 4096)))
  done;
  let c0 = Cpu.cycles cpu in
  Cpu.load cpu base;
  (* page 0 was evicted from the 64-entry L1 TLB by pages 64..255 *)
  let cost = Cpu.cycles cpu - c0 in
  check_bool "re-touch pays an L2 TLB or walk stall" true (cost > 1)

let test_non_pow2_sets () =
  (* The 1536-entry L2 TLB has 384 sets — modulo indexing must work. *)
  let c = Cache.create ~sets:384 ~ways:4 ~index_shift:12 in
  for i = 0 to 999 do
    ignore (Cache.access c (i * 4096))
  done;
  check_int "all accesses accounted" 1000 (Cache.accesses c);
  check_bool "some hits after wrap" true (Cache.probe c (999 * 4096))

(* --- Table II cost model ------------------------------------------------------------ *)

let test_hw_cost_table2 () =
  let structures = Hw_cost.of_config Config.default in
  check_int "three structures" 3 (List.length structures);
  check_int "total bytes" 1280 (Hw_cost.total_bytes_all structures);
  let total_area = Hw_cost.total_area_all structures in
  check_bool "total area close to 0.0479 mm^2" true
    (abs_float (total_area -. 0.0479) < 0.002);
  let fraction = Hw_cost.fraction_of_die structures in
  check_bool "fraction of die ~0.059%" true
    (abs_float ((fraction *. 100.) -. 0.059) < 0.005)

let test_hw_cost_per_structure () =
  List.iter
    (fun s ->
      let expected_bytes =
        match s.Hw_cost.name with "FSM" -> 512 | _ -> 384
      in
      check_int (s.Hw_cost.name ^ " bytes") expected_bytes
        (Hw_cost.total_bytes s))
    (Hw_cost.of_config Config.default)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_btree_matches_reference ]

let () =
  Alcotest.run "arch"
    [
      ( "cache",
        [
          Alcotest.test_case "hit after miss" `Quick test_cache_hit_after_miss;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "sets independent" `Quick
            test_cache_sets_independent;
          Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
          Alcotest.test_case "of_size" `Quick test_cache_of_size;
        ] );
      ( "branch-predictor",
        [
          Alcotest.test_case "learns bias" `Quick test_bp_learns_bias;
          Alcotest.test_case "random hurts" `Quick test_bp_random_hurts;
          Alcotest.test_case "alternation" `Quick test_bp_alternating_learnable;
        ] );
      ( "range-btree",
        [
          Alcotest.test_case "basics" `Quick test_btree_basic;
          Alcotest.test_case "many + remove" `Quick test_btree_many_and_remove;
          Alcotest.test_case "walk length" `Quick
            test_btree_lookup_reports_walk;
        ] );
      ( "valb",
        [
          Alcotest.test_case "hit/miss" `Quick test_valb_hit_miss;
          Alcotest.test_case "LRU + shootdown" `Quick
            test_valb_lru_and_shootdown;
        ] );
      ( "storep-unit",
        [
          Alcotest.test_case "no stall when free" `Quick
            test_storep_no_stall_when_free;
          Alcotest.test_case "stalls when full" `Quick
            test_storep_stalls_when_full;
          Alcotest.test_case "frees after latency" `Quick
            test_storep_frees_after_latency;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "instr cycles" `Quick test_cpu_instr_cycles;
          Alcotest.test_case "NVM slower than DRAM" `Quick
            test_cpu_nvm_slower_than_dram;
          Alcotest.test_case "POLB translate" `Quick test_cpu_polb_translate;
          Alcotest.test_case "storeP + VALB walk" `Quick
            test_cpu_storep_valb_walk;
          Alcotest.test_case "unmap shootdown" `Quick test_cpu_unmap_shootdown;
          Alcotest.test_case "branch counts" `Quick test_cpu_branch_counts;
          Alcotest.test_case "snapshot diff" `Quick test_cpu_snapshot_diff;
          Alcotest.test_case "TLB hierarchy" `Quick test_cpu_tlb_hierarchy;
          Alcotest.test_case "non-pow2 sets" `Quick test_non_pow2_sets;
        ] );
      ( "hw-cost",
        [
          Alcotest.test_case "Table II totals" `Quick test_hw_cost_table2;
          Alcotest.test_case "per structure" `Quick test_hw_cost_per_structure;
        ] );
      ("properties", qsuite);
    ]
