(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation section (and the supporting analyses) against the
   simulated machine.

   Usage:
     dune exec bench/main.exe                 # everything, paper scale
     dune exec bench/main.exe -- --quick      # 10x smaller workloads
     dune exec bench/main.exe -- fig11 table5 # selected experiments
     dune exec bench/main.exe -- --list       *)

module Workload = Nvml_ycsb.Workload

let all_experiments : (string * string * (Experiments.ctx -> unit)) list =
  [
    ("table2", "HW structure storage cost", Experiments.table2);
    ("table3", "benchmark inventory", Experiments.table3);
    ("table4", "simulator parameters", Experiments.table4);
    ("table5", "dynamic checks and conversions (SW)", Experiments.table5);
    ("fig11", "execution time normalized to volatile", Experiments.fig11);
    ("fig12", "translation-reuse codelet", Experiments.fig12);
    ("fig9", "compiler-generated code sample", Experiments.fig9);
    ("fig13", "branch mispredictions normalized", Experiments.fig13);
    ("fig14", "VALB/VAW latency sensitivity", Experiments.fig14);
    ("fig15", "translation-hardware access fractions", Experiments.fig15);
    ("table6", "relocation overhead comparison", Experiments.table6);
    ("knn", "KNN case study + productivity", Experiments.knn);
    ("soundness", "mini-C corpus soundness runs", Experiments.soundness);
    ("compiler", "pointer-property inference stats", Experiments.compiler);
    ("productivity", "library migration cost table", Experiments.productivity);
    ("ablation", "design-choice ablations", Experiments.ablation);
    ("extended", "extended structure set", Experiments.extended);
    ("multipool", "pool-count capacity sweep", Experiments.multipool);
    ("txn", "transaction overhead", Experiments.txn_overhead);
    ("sweep", "NVM latency and working-set sweeps", Experiments.sweep);
    ("micro", "bechamel micro-benchmarks", Experiments.micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> a <> "--") args in
  if List.mem "--list" args then begin
    List.iter
      (fun (name, doc, _) -> Printf.printf "%-14s %s\n" name doc)
      all_experiments;
    exit 0
  end;
  let quick = List.mem "--quick" args in
  let verbose = not (List.mem "--quiet" args) in
  let selected =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  let spec =
    if quick then Workload.scale Workload.paper_default 10
    else Workload.paper_default
  in
  let ctx = { Experiments.spec; verbose } in
  let chosen =
    match selected with
    | [] -> all_experiments
    | names ->
        List.map
          (fun n ->
            match
              List.find_opt (fun (name, _, _) -> name = n) all_experiments
            with
            | Some e -> e
            | None ->
                Printf.eprintf "unknown experiment %S (try --list)\n" n;
                exit 1)
          names
  in
  Printf.printf
    "nvml benchmark harness — workload: %s%s\n"
    (Fmt.str "%a" Workload.pp_spec spec)
    (if quick then " [quick]" else "");
  let t0 = Unix.gettimeofday () in
  List.iter (fun (_, _, f) -> f ctx) chosen;
  Printf.printf "\nTotal wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
