bench/main.mli:
