bench/main.ml: Array Experiments Fmt List Nvml_ycsb Printf String Sys Unix
