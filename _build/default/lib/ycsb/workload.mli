(** YCSB-style workload specifications and operation streams.

    {!paper_default} is the paper's harness preset (Section VII-A):
    10,000 records, 100,000 operations, 95 % GET / 5 % SET where every
    SET inserts a new pair, keys drawn with the "latest" distribution. *)

type dist_kind = Uniform | Zipfian | Scrambled_zipfian | Latest

type spec = {
  name : string;
  record_count : int;
  operation_count : int;
  read_proportion : float;
  update_proportion : float;  (** SET to an existing key *)
  insert_proportion : float;  (** SET inserting a new key *)
  distribution : dist_kind;
  seed : int;
}

val paper_default : spec
val workload_a : spec
val workload_b : spec
val workload_c : spec
val workload_d : spec

val scale : spec -> int -> spec
(** Divide record and operation counts by a factor. *)

val key_of_index : int -> int64
(** The (scrambled) key of record index [i]. *)

type op =
  | Read of int64
  | Update of int64 * int64
  | Insert of int64 * int64

val iter_ops : spec -> (op -> unit) -> unit
(** Stream the run-phase operations in order; deterministic per seed.
    Reads and updates always target live keys; inserts always use fresh
    keys and extend the population. *)

val pp_spec : spec Fmt.t
