lib/ycsb/workload.ml: Distribution Fmt Int64 Random
