lib/ycsb/distribution.mli: Random
