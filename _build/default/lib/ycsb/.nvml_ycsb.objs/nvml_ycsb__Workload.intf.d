lib/ycsb/workload.mli: Fmt
