lib/ycsb/distribution.ml: Float Int64 Random
