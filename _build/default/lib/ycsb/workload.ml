(* YCSB-style workload specifications and operation streams.

   The paper's harness (Section VII-A) uses a preset with 10,000
   key-value pairs, 100,000 operations, 95 % GET / 5 % SET where every
   SET inserts a *new* pair, keys drawn with the "latest" distribution
   and 8-byte keys and values.  That preset is [paper_default]; the
   other classic YCSB mixes are provided for the extended benchmarks. *)

type dist_kind = Uniform | Zipfian | Scrambled_zipfian | Latest

type spec = {
  name : string;
  record_count : int; (* pairs loaded before the run phase *)
  operation_count : int;
  read_proportion : float;
  update_proportion : float; (* SET to an existing key *)
  insert_proportion : float; (* SET inserting a new key *)
  distribution : dist_kind;
  seed : int;
}

let paper_default =
  {
    name = "paper (95% GET / 5% insert, latest)";
    record_count = 10_000;
    operation_count = 100_000;
    read_proportion = 0.95;
    update_proportion = 0.0;
    insert_proportion = 0.05;
    distribution = Latest;
    seed = 42;
  }

(* Classic YCSB core mixes. *)
let workload_a =
  {
    name = "YCSB-A (50% read / 50% update, zipfian)";
    record_count = 10_000;
    operation_count = 100_000;
    read_proportion = 0.5;
    update_proportion = 0.5;
    insert_proportion = 0.0;
    distribution = Scrambled_zipfian;
    seed = 42;
  }

let workload_b =
  { workload_a with
    name = "YCSB-B (95% read / 5% update, zipfian)";
    read_proportion = 0.95;
    update_proportion = 0.05 }

let workload_c =
  { workload_a with
    name = "YCSB-C (100% read, zipfian)";
    read_proportion = 1.0;
    update_proportion = 0.0 }

let workload_d =
  { workload_a with
    name = "YCSB-D (95% read / 5% insert, latest)";
    read_proportion = 0.95;
    update_proportion = 0.0;
    insert_proportion = 0.05;
    distribution = Latest }

let scale spec factor =
  {
    spec with
    record_count = max 1 (spec.record_count / factor);
    operation_count = max 1 (spec.operation_count / factor);
  }

(* The key for record index [i]: scrambled so adjacent indices do not
   produce adjacent keys (YCSB hashes "user<i>" similarly). *)
let key_of_index i = Distribution.scramble (Int64.of_int (i + 1))

type op =
  | Read of int64
  | Update of int64 * int64
  | Insert of int64 * int64

let make_dist spec n =
  match spec.distribution with
  | Uniform -> Distribution.uniform n
  | Zipfian -> Distribution.zipfian n
  | Scrambled_zipfian -> Distribution.scrambled_zipfian n
  | Latest -> Distribution.latest n

(* Stream the run-phase operations to [f] in order.  Inserts append new
   record indices and extend the key population, exactly like the YCSB
   D workload; the caller loads records [0, record_count) first. *)
let iter_ops spec f =
  let rng = Random.State.make [| spec.seed |] in
  let dist = make_dist spec spec.record_count in
  let inserted = ref spec.record_count in
  for opno = 1 to spec.operation_count do
    let r = Random.State.float rng 1.0 in
    if r < spec.read_proportion then
      f (Read (key_of_index (Distribution.sample dist rng)))
    else if r < spec.read_proportion +. spec.update_proportion then
      f
        (Update
           ( key_of_index (Distribution.sample dist rng),
             Int64.of_int opno ))
    else begin
      let idx = !inserted in
      incr inserted;
      Distribution.grow dist;
      f (Insert (key_of_index idx, Int64.of_int opno))
    end
  done

let pp_spec ppf s =
  Fmt.pf ppf "%s: %d records, %d ops, %.0f/%.0f/%.0f R/U/I" s.name
    s.record_count s.operation_count
    (100. *. s.read_proportion)
    (100. *. s.update_proportion)
    (100. *. s.insert_proportion)
