lib/arch/valb.ml: Array Int64
