lib/arch/hw_cost.mli: Config
