lib/arch/storep_unit.mli:
