lib/arch/range_btree.mli:
