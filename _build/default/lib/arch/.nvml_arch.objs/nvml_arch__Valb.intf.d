lib/arch/valb.mli:
