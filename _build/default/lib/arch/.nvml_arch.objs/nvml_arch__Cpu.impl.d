lib/arch/cpu.ml: Branch_predictor Cache Config Int64 List Nvml_simmem Range_btree Storep_unit Valb
