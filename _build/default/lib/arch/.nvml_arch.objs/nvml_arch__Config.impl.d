lib/arch/config.ml: Fmt
