lib/arch/storep_unit.ml: Array
