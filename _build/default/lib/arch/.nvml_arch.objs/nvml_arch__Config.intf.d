lib/arch/config.mli:
