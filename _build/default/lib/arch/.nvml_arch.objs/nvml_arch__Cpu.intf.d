lib/arch/cpu.mli: Config Nvml_simmem
