lib/arch/cache.mli:
