lib/arch/branch_predictor.ml: Bool Bytes Char Config
