lib/arch/branch_predictor.mli: Config
