lib/arch/hw_cost.ml: Config List
