lib/arch/range_btree.ml: Array Int64
