(** A gshare branch predictor: global history XOR branch PC indexing a
    table of 2-bit saturating counters — the Pentium-M-class predictor
    of Table IV. *)

type t

val create : table_bits:int -> history_bits:int -> t
val of_config : Config.t -> t

val branch : t -> pc:int -> taken:bool -> bool
(** Record a branch outcome; [true] when the predictor had it wrong
    (the CPU model charges the penalty). *)

val predictions : t -> int
val mispredictions : t -> int
val miss_rate : t -> float
val reset_stats : t -> unit
