(** The VATB kernel table: a B-tree mapping virtual-address ranges to
    persistent-pool IDs (the Range-TLB-style structure the paper
    adopts).  The VAW walks root-to-leaf, one kernel-memory access per
    node, so {!lookup} also reports how many nodes it visited.

    Ranges are keyed by base address and never overlap. *)

type entry = { base : int64; size : int64; pool : int }

type t

val degree : int
val create : unit -> t
val length : t -> int
val height : t -> int

val insert : t -> base:int64 -> size:int64 -> pool:int -> unit
(** Insert or replace the range starting at [base]. *)

val remove : t -> int64 -> bool
(** Remove the range with the given base; [true] if it existed. *)

val lookup : t -> int64 -> (entry * int) option
(** The range containing the address, plus the number of nodes visited
    during the descent. *)

val mem : t -> int64 -> bool
val to_list : t -> entry list
(** All entries in ascending base order. *)

val check_invariants : t -> unit
(** Key ordering, occupancy bounds, uniform leaf depth and range
    disjointness.  @raise Failure on violation. *)
