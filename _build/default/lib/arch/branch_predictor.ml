(* A gshare branch predictor: global history XOR branch PC indexes a
   table of 2-bit saturating counters.  The Pentium-M-class predictor of
   Table IV is approximated by this structure with an 8-cycle
   misprediction penalty charged by the CPU model. *)

type t = {
  table : Bytes.t; (* 2-bit counters, one per byte for simplicity *)
  mask : int;
  history_mask : int;
  mutable history : int;
  mutable predictions : int;
  mutable mispredictions : int;
}

let create ~table_bits ~history_bits =
  let size = 1 lsl table_bits in
  {
    table = Bytes.make size '\002' (* weakly taken *);
    mask = size - 1;
    history_mask = (1 lsl history_bits) - 1;
    history = 0;
    predictions = 0;
    mispredictions = 0;
  }

let of_config (c : Config.t) =
  create ~table_bits:c.bp_table_bits ~history_bits:c.bp_history_bits

let index t ~pc = (pc lxor t.history) land t.mask

(* Record the outcome of a branch at [pc]; returns [true] if the
   predictor had it wrong (the CPU charges the penalty). *)
let branch t ~pc ~taken =
  let i = index t ~pc in
  let counter = Char.code (Bytes.get t.table i) in
  let predicted_taken = counter >= 2 in
  let counter' =
    if taken then min 3 (counter + 1) else max 0 (counter - 1)
  in
  Bytes.set t.table i (Char.chr counter');
  t.history <- ((t.history lsl 1) lor Bool.to_int taken) land t.history_mask;
  t.predictions <- t.predictions + 1;
  let miss = predicted_taken <> taken in
  if miss then t.mispredictions <- t.mispredictions + 1;
  miss

let predictions t = t.predictions
let mispredictions t = t.mispredictions

let miss_rate t =
  if t.predictions = 0 then 0.0
  else float_of_int t.mispredictions /. float_of_int t.predictions

let reset_stats t =
  t.predictions <- 0;
  t.mispredictions <- 0
