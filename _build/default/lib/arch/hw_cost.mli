(** The Table II hardware cost model: per-structure entry sizes, entry
    counts, total bytes, and an analytic SRAM/CAM area estimate standing
    in for CACTI at 45 nm, calibrated to the paper's reported values. *)

type structure_kind = Fsm_buffer | Lookaside_cam

type structure = {
  name : string;
  kind : structure_kind;
  entry_bytes : int;
  num_entries : int;
}

val area_per_byte : structure_kind -> float
val total_bytes : structure -> int
val area_mm2 : structure -> float
val of_config : Config.t -> structure list
val total_bytes_all : structure list -> int
val total_area_all : structure list -> float

val reference_die_mm2 : float
(** Die area of the 45 nm octal-core reference processor. *)

val fraction_of_die : structure list -> float
