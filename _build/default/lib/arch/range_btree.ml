(* The VATB kernel table: a B-tree mapping virtual-address ranges to
   persistent pool IDs, as adopted from the Range TLB proposal the paper
   cites.  The VAW (virtual-address walker) performs a root-to-leaf
   descent; every node it touches costs one kernel-memory access, so
   [lookup] also reports the number of nodes visited.

   Ranges are keyed by their base address and never overlap (pool
   mappings are disjoint by construction).  Classic B-tree with minimum
   degree [degree]: every node except the root holds between degree-1
   and 2*degree-1 keys. *)

let degree = 4
let max_keys = (2 * degree) - 1
let min_keys = degree - 1

type entry = { base : int64; size : int64; pool : int }

type node = {
  mutable nkeys : int;
  keys : entry array; (* slots [0, nkeys) valid *)
  children : node option array; (* slots [0, nkeys] valid unless leaf *)
  mutable leaf : bool;
}

type t = { mutable root : node; mutable count : int }

let dummy_entry = { base = 0L; size = 0L; pool = -1 }

let new_node ~leaf =
  {
    nkeys = 0;
    keys = Array.make max_keys dummy_entry;
    children = Array.make (max_keys + 1) None;
    leaf;
  }

let create () = { root = new_node ~leaf:true; count = 0 }

let length t = t.count

let child n i =
  match n.children.(i) with
  | Some c -> c
  | None -> invalid_arg "Range_btree: missing child"

(* --- lookup ----------------------------------------------------------- *)

(* Find the range containing [va].  Returns the entry and the number of
   B-tree nodes visited during the descent. *)
let lookup t (va : int64) : (entry * int) option =
  let rec descend node visited =
    (* Find the first key with base > va; the candidate range is the one
       just before it. *)
    let rec scan i = if i < node.nkeys && node.keys.(i).base <= va then scan (i + 1) else i in
    let i = scan 0 in
    let candidate = if i > 0 then Some node.keys.(i - 1) else None in
    match candidate with
    | Some e when va < Int64.add e.base e.size -> Some (e, visited)
    | _ ->
        if node.leaf then None
        else descend (child node i) (visited + 1)
  in
  descend t.root 1

let mem t va = lookup t va <> None

(* --- insertion ---------------------------------------------------------- *)

let split_child parent i =
  let full = child parent i in
  let right = new_node ~leaf:full.leaf in
  right.nkeys <- min_keys;
  Array.blit full.keys degree right.keys 0 min_keys;
  if not full.leaf then Array.blit full.children degree right.children 0 degree;
  full.nkeys <- min_keys;
  (* Shift parent's keys/children to make room. *)
  for j = parent.nkeys downto i + 1 do
    parent.keys.(j) <- parent.keys.(j - 1)
  done;
  for j = parent.nkeys + 1 downto i + 2 do
    parent.children.(j) <- parent.children.(j - 1)
  done;
  parent.keys.(i) <- full.keys.(min_keys);
  parent.children.(i + 1) <- Some right;
  parent.nkeys <- parent.nkeys + 1

let rec insert_nonfull node (e : entry) =
  let rec find i = if i < node.nkeys && node.keys.(i).base < e.base then find (i + 1) else i in
  let i = find 0 in
  if i < node.nkeys && Int64.equal node.keys.(i).base e.base then
    node.keys.(i) <- e (* replace: remap of the same base *)
  else if node.leaf then begin
    for j = node.nkeys downto i + 1 do
      node.keys.(j) <- node.keys.(j - 1)
    done;
    node.keys.(i) <- e;
    node.nkeys <- node.nkeys + 1
  end
  else begin
    let i =
      if (child node i).nkeys = max_keys then begin
        split_child node i;
        if e.base > node.keys.(i).base then i + 1 else i
      end
      else i
    in
    if i < node.nkeys && Int64.equal node.keys.(i).base e.base then
      node.keys.(i) <- e
    else insert_nonfull (child node i) e
  end

let insert t ~base ~size ~pool =
  if size <= 0L then invalid_arg "Range_btree.insert: non-positive size";
  let e = { base; size; pool } in
  let existed = lookup t base <> None in
  (if t.root.nkeys = max_keys then begin
     let new_root = new_node ~leaf:false in
     new_root.children.(0) <- Some t.root;
     t.root <- new_root;
     split_child new_root 0
   end);
  insert_nonfull t.root e;
  if not existed then t.count <- t.count + 1

(* --- deletion ----------------------------------------------------------- *)

let rec max_entry node =
  if node.leaf then node.keys.(node.nkeys - 1)
  else max_entry (child node node.nkeys)

let rec min_entry node =
  if node.leaf then node.keys.(0) else min_entry (child node 0)

(* Merge child i, parent key i and child i+1 into child i. *)
let merge_children node i =
  let left = child node i and right = child node (i + 1) in
  left.keys.(left.nkeys) <- node.keys.(i);
  Array.blit right.keys 0 left.keys (left.nkeys + 1) right.nkeys;
  if not left.leaf then
    Array.blit right.children 0 left.children (left.nkeys + 1)
      (right.nkeys + 1);
  left.nkeys <- left.nkeys + 1 + right.nkeys;
  for j = i to node.nkeys - 2 do
    node.keys.(j) <- node.keys.(j + 1)
  done;
  for j = i + 1 to node.nkeys - 1 do
    node.children.(j) <- node.children.(j + 1)
  done;
  node.children.(node.nkeys) <- None;
  node.nkeys <- node.nkeys - 1

(* Ensure child i of [node] has at least [degree] keys before descent. *)
let fill node i =
  if i > 0 && (child node (i - 1)).nkeys > min_keys then begin
    (* Borrow from the left sibling through the parent. *)
    let c = child node i and left = child node (i - 1) in
    for j = c.nkeys - 1 downto 0 do
      c.keys.(j + 1) <- c.keys.(j)
    done;
    if not c.leaf then
      for j = c.nkeys downto 0 do
        c.children.(j + 1) <- c.children.(j)
      done;
    c.keys.(0) <- node.keys.(i - 1);
    if not c.leaf then c.children.(0) <- left.children.(left.nkeys);
    node.keys.(i - 1) <- left.keys.(left.nkeys - 1);
    left.children.(left.nkeys) <- None;
    left.nkeys <- left.nkeys - 1;
    c.nkeys <- c.nkeys + 1;
    i
  end
  else if i < node.nkeys && (child node (i + 1)).nkeys > min_keys then begin
    (* Borrow from the right sibling. *)
    let c = child node i and right = child node (i + 1) in
    c.keys.(c.nkeys) <- node.keys.(i);
    if not c.leaf then c.children.(c.nkeys + 1) <- right.children.(0);
    node.keys.(i) <- right.keys.(0);
    for j = 0 to right.nkeys - 2 do
      right.keys.(j) <- right.keys.(j + 1)
    done;
    if not right.leaf then
      for j = 0 to right.nkeys - 1 do
        right.children.(j) <- right.children.(j + 1)
      done;
    right.children.(right.nkeys) <- None;
    right.nkeys <- right.nkeys - 1;
    c.nkeys <- c.nkeys + 1;
    i
  end
  else begin
    if i < node.nkeys then begin
      merge_children node i;
      i
    end
    else begin
      merge_children node (i - 1);
      i - 1
    end
  end

let rec remove_from node (base : int64) : bool =
  let rec find i = if i < node.nkeys && node.keys.(i).base < base then find (i + 1) else i in
  let i = find 0 in
  if i < node.nkeys && Int64.equal node.keys.(i).base base then
    if node.leaf then begin
      for j = i to node.nkeys - 2 do
        node.keys.(j) <- node.keys.(j + 1)
      done;
      node.nkeys <- node.nkeys - 1;
      true
    end
    else if (child node i).nkeys > min_keys then begin
      let pred = max_entry (child node i) in
      node.keys.(i) <- pred;
      remove_from (child node i) pred.base
    end
    else if (child node (i + 1)).nkeys > min_keys then begin
      let succ = min_entry (child node (i + 1)) in
      node.keys.(i) <- succ;
      remove_from (child node (i + 1)) succ.base
    end
    else begin
      merge_children node i;
      remove_from (child node i) base
    end
  else if node.leaf then false
  else begin
    let i = if (child node i).nkeys = min_keys then fill node i else i in
    (* After a fill the separator may have moved into child i. *)
    remove_from (child node (min i node.nkeys)) base
  end

let remove t (base : int64) : bool =
  let removed = remove_from t.root base in
  if removed then begin
    t.count <- t.count - 1;
    if t.root.nkeys = 0 && not t.root.leaf then t.root <- child t.root 0
  end;
  removed

(* --- diagnostics --------------------------------------------------------- *)

let rec node_height node =
  if node.leaf then 1 else 1 + node_height (child node 0)

let height t = node_height t.root

let to_list t =
  let rec walk node acc =
    if node.leaf then
      Array.to_list (Array.sub node.keys 0 node.nkeys) @ acc
    else begin
      let acc = ref acc in
      for i = node.nkeys downto 0 do
        acc := walk (child node i) !acc;
        if i > 0 then acc := node.keys.(i - 1) :: !acc
      done;
      !acc
    end
  in
  walk t.root []

(* Structural invariants, used by the property tests: key ordering,
   occupancy bounds, uniform leaf depth, non-overlapping ranges. *)
let check_invariants t =
  let rec check node ~is_root ~depth leaf_depth =
    if node.nkeys > max_keys then failwith "node overfull";
    if (not is_root) && node.nkeys < min_keys then failwith "node underfull";
    for i = 1 to node.nkeys - 1 do
      if node.keys.(i - 1).base >= node.keys.(i).base then
        failwith "keys out of order"
    done;
    if node.leaf then begin
      match !leaf_depth with
      | None -> leaf_depth := Some depth
      | Some d -> if d <> depth then failwith "leaves at different depths"
    end
    else
      for i = 0 to node.nkeys do
        let c = child node i in
        if i > 0 && c.keys.(0).base <= node.keys.(i - 1).base then
          failwith "child keys not greater than separator";
        if i < node.nkeys && c.keys.(c.nkeys - 1).base >= node.keys.(i).base
        then failwith "child keys not smaller than separator";
        check c ~is_root:false ~depth:(depth + 1) leaf_depth
      done
  in
  check t.root ~is_root:true ~depth:0 (ref None);
  (* Ranges must not overlap. *)
  let entries = to_list t in
  let rec disjoint = function
    | a :: (b :: _ as rest) ->
        if Int64.add a.base a.size > b.base then failwith "overlapping ranges";
        disjoint rest
    | _ -> ()
  in
  disjoint entries
