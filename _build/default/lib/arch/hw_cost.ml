(* The Table II hardware cost model: per-structure entry sizes, entry
   counts, total bytes, and an analytic SRAM/CAM area estimate standing
   in for CACTI at a 45 nm process.  The per-byte constants are
   calibrated against the paper's reported values so the regenerated
   table matches Table II. *)

type structure_kind = Fsm_buffer | Lookaside_cam

type structure = {
  name : string;
  kind : structure_kind;
  entry_bytes : int;
  num_entries : int;
}

(* mm^2 per byte at 45 nm: plain SRAM register file (FSM buffer) vs the
   denser CAM arrays used for the lookaside buffers. *)
let area_per_byte = function
  | Fsm_buffer -> 4.00e-5
  | Lookaside_cam -> 3.57e-5

let total_bytes s = s.entry_bytes * s.num_entries

let area_mm2 s = float_of_int (total_bytes s) *. area_per_byte s.kind

let of_config (c : Config.t) =
  [
    {
      name = "FSM";
      kind = Fsm_buffer;
      entry_bytes = 16;
      num_entries = c.storep_fsm_entries;
    };
    {
      name = "POLB";
      kind = Lookaside_cam;
      entry_bytes = 12;
      num_entries = c.polb_entries;
    };
    {
      name = "VALB";
      kind = Lookaside_cam;
      entry_bytes = 12;
      num_entries = c.valb_entries;
    };
  ]

let total_bytes_all structures =
  List.fold_left (fun acc s -> acc + total_bytes s) 0 structures

let total_area_all structures =
  List.fold_left (fun acc s -> acc +. area_mm2 s) 0.0 structures

(* Die area of a 45 nm octal-core Nehalem-class processor, used for the
   "fraction of die" figure the paper quotes (0.059 %). *)
let reference_die_mm2 = 81.2

let fraction_of_die structures =
  total_area_all structures /. reference_die_mm2
