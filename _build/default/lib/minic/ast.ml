(* Mini-C: a small C-like language covering the full pointer-operation
   repertoire of the paper's Fig. 4 — casts, unary operators, pointer
   assignment, pointer arithmetic and difference, relational/equality
   and logical operators, conditional expressions, indexing, member
   access through pointers, and address-of.

   The soundness experiments of Section VII-B are reproduced by running
   corpus programs under the volatile allocator and under
   pmalloc-everything (the libvmmalloc setup) and comparing outputs;
   the compiler experiments run the pointer-property inference over the
   same ASTs. *)

type ty =
  | Tint (* 64-bit *)
  | Tptr of ty
  | Tstruct of string
  | Tarray of ty * int
  | Tvoid
  | Tfunptr (* opaque pointer-to-function; calls return int *)

let rec pp_ty ppf = function
  | Tint -> Fmt.string ppf "int"
  | Tptr t -> Fmt.pf ppf "%a*" pp_ty t
  | Tstruct s -> Fmt.pf ppf "struct %s" s
  | Tarray (t, n) -> Fmt.pf ppf "%a[%d]" pp_ty t n
  | Tvoid -> Fmt.string ppf "void"
  | Tfunptr -> Fmt.string ppf "fnptr"

type struct_def = { sname : string; fields : (string * ty) list }

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Gt | Le | Ge | Eq | Ne
  | And | Or
  | Band | Bor | Bxor | Shl | Shr

type unop = Neg | Not | Bnot

(* Every expression node carries a unique id assigned by the builder;
   the compiler pass keys its check-elimination decisions on these ids
   and the interpreter keys branch-predictor PCs on them. *)
type expr = { id : int; e : expr_desc }

and expr_desc =
  | EInt of int64
  | ENull
  | EVar of string
  | EUnop of unop * expr
  | EBinop of binop * expr * expr
  | EAssign of expr * expr (* lvalue = value *)
  | EDeref of expr
  | EAddr of expr (* &lvalue *)
  | EIndex of expr * expr (* pointer[index] *)
  | EArrow of expr * string (* pointer->field *)
  | ECall of string * expr list
  | ECallPtr of expr * expr list (* call through a function pointer *)
  | ECast of ty * expr
  | ECond of expr * expr * expr
  | ESizeof of ty
  | EIncr of { pre : bool; up : bool; lv : expr } (* ++/-- pre/post *)

type stmt =
  | SExpr of expr
  | SDecl of string * ty * expr option
  | SIf of expr * stmt list * stmt list
  | SWhile of expr * stmt list
  | SFor of stmt option * expr option * expr option * stmt list
      (* for (init; cond; step) body — native so continue skips to step *)
  | SBreak
  | SContinue
  | SReturn of expr option

type func = {
  fname : string;
  params : (string * ty) list;
  ret : ty;
  body : stmt list;
}

type program = { structs : struct_def list; funcs : func list }

(* --- builders -------------------------------------------------------- *)

let next_id = ref 0

let mk e =
  incr next_id;
  { id = !next_id; e }

let int_ i = mk (EInt (Int64.of_int i))
let i64 i = mk (EInt i)
let null = mk ENull
let var v = mk (EVar v)
let unop op e = mk (EUnop (op, e))
let binop op a b = mk (EBinop (op, a, b))
let assign lv e = mk (EAssign (lv, e))
let deref e = mk (EDeref e)
let addr e = mk (EAddr e)
let index a i = mk (EIndex (a, i))
let arrow p f = mk (EArrow (p, f))
let call f args = mk (ECall (f, args))
let call_ptr f args = mk (ECallPtr (f, args))
let cast ty e = mk (ECast (ty, e))
let cond c a b = mk (ECond (c, a, b))
let sizeof ty = mk (ESizeof ty)
let pre_incr lv = mk (EIncr { pre = true; up = true; lv })
let post_incr lv = mk (EIncr { pre = false; up = true; lv })
let pre_decr lv = mk (EIncr { pre = true; up = false; lv })
let post_decr lv = mk (EIncr { pre = false; up = false; lv })

let ( + ) a b = binop Add a b
let ( - ) a b = binop Sub a b
let ( * ) a b = binop Mul a b
let ( < ) a b = binop Lt a b
let ( > ) a b = binop Gt a b
let ( <= ) a b = binop Le a b
let ( >= ) a b = binop Ge a b
let ( == ) a b = binop Eq a b
let ( != ) a b = binop Ne a b
let ( && ) a b = binop And a b
let ( || ) a b = binop Or a b

let fn fname ?(params = []) ?(ret = Tint) body = { fname; params; ret; body }
let prog ?(structs = []) funcs = { structs; funcs }

(* --- generic traversal ------------------------------------------------ *)

let rec iter_expr f (e : expr) =
  f e;
  match e.e with
  | EInt _ | ENull | EVar _ | ESizeof _ -> ()
  | EUnop (_, a) | EDeref a | EAddr a | ECast (_, a) | EArrow (a, _) ->
      iter_expr f a
  | EBinop (_, a, b) | EAssign (a, b) | EIndex (a, b) ->
      iter_expr f a;
      iter_expr f b
  | ECond (a, b, c) ->
      iter_expr f a;
      iter_expr f b;
      iter_expr f c
  | ECall (_, args) -> List.iter (iter_expr f) args
  | ECallPtr (callee, args) ->
      iter_expr f callee;
      List.iter (iter_expr f) args
  | EIncr { lv; _ } -> iter_expr f lv

let rec iter_stmt ~expr ~stmt (s : stmt) =
  stmt s;
  match s with
  | SExpr e -> iter_expr expr e
  | SDecl (_, _, Some e) -> iter_expr expr e
  | SDecl (_, _, None) -> ()
  | SIf (c, a, b) ->
      iter_expr expr c;
      List.iter (iter_stmt ~expr ~stmt) a;
      List.iter (iter_stmt ~expr ~stmt) b
  | SWhile (c, body) ->
      iter_expr expr c;
      List.iter (iter_stmt ~expr ~stmt) body
  | SFor (init, c, step, body) ->
      Option.iter (iter_stmt ~expr ~stmt) init;
      Option.iter (iter_expr expr) c;
      Option.iter (iter_expr expr) step;
      List.iter (iter_stmt ~expr ~stmt) body
  | SBreak | SContinue -> ()
  | SReturn (Some e) -> iter_expr expr e
  | SReturn None -> ()

let iter_func ~expr ~stmt (f : func) = List.iter (iter_stmt ~expr ~stmt) f.body
