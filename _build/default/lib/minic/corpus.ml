(* The soundness corpus: mini-C programs collectively covering every
   pointer-operation row of Fig. 4 — casts, unary operators, pointer
   assignment in all location/format combinations, pointer arithmetic
   and difference, relational/equality/logical operators, conditional
   expressions, indexing, member access and calls through pointers.

   Section VII-B's experiment is reproduced by running each program
   twice — heap in DRAM (native) and heap in a pool (libvmmalloc) — and
   comparing outputs. *)

open Ast



let print e = SExpr (call "print" [ e ])

(* --- 1: array fill/sum via indexing and pointer increment -------------- *)

let array_sum =
  prog
    [
      fn "main"
        [
          SDecl ("a", Tptr Tint, Some (cast (Tptr Tint) (call "malloc" [ int_ 80 ])));
          SDecl ("i", Tint, Some (int_ 0));
          SWhile
            ( var "i" < int_ 10,
              [
                SExpr (assign (index (var "a") (var "i")) (var "i" * var "i"));
                SExpr (pre_incr (var "i"));
              ] );
          (* Sum with a moving pointer and pointer comparison. *)
          SDecl ("p", Tptr Tint, Some (var "a"));
          SDecl ("last", Tptr Tint, Some (var "a" + int_ 10));
          SDecl ("sum", Tint, Some (int_ 0));
          SWhile
            ( binop Lt (var "p") (var "last"),
              [
                SExpr (assign (var "sum") (var "sum" + deref (var "p")));
                SExpr (post_incr (var "p"));
              ] );
          print (var "sum");
          (* Pointer difference: p - a = 10 elements. *)
          print (var "p" - var "a");
          SExpr (call "free" [ var "a" ]);
          SReturn (Some (var "sum"));
        ];
    ]

(* --- 2: singly linked list build, traverse, in-place reverse ------------ *)

let node_struct =
  { sname = "node"; fields = [ ("value", Tint); ("next", Tptr (Tstruct "node")) ] }

let linked_list =
  prog ~structs:[ node_struct ]
    [
      fn "main"
        [
          SDecl ("head", Tptr (Tstruct "node"), Some null);
          SDecl ("i", Tint, Some (int_ 0));
          SWhile
            ( var "i" < int_ 8,
              [
                SDecl
                  ( "n",
                    Tptr (Tstruct "node"),
                    Some
                      (cast (Tptr (Tstruct "node"))
                         (call "malloc" [ sizeof (Tstruct "node") ])) );
                SExpr (assign (arrow (var "n") "value") (var "i"));
                SExpr (assign (arrow (var "n") "next") (var "head"));
                SExpr (assign (var "head") (var "n"));
                SExpr (pre_incr (var "i"));
              ] );
          (* Traverse and sum. *)
          SDecl ("p", Tptr (Tstruct "node"), Some (var "head"));
          SDecl ("sum", Tint, Some (int_ 0));
          SWhile
            ( binop Ne (var "p") null,
              [
                SExpr (assign (var "sum") (var "sum" + arrow (var "p") "value"));
                SExpr (assign (var "p") (arrow (var "p") "next"));
              ] );
          print (var "sum");
          (* In-place reverse. *)
          SDecl ("prev", Tptr (Tstruct "node"), Some null);
          SExpr (assign (var "p") (var "head"));
          SWhile
            ( binop Ne (var "p") null,
              [
                SDecl ("nx", Tptr (Tstruct "node"), Some (arrow (var "p") "next"));
                SExpr (assign (arrow (var "p") "next") (var "prev"));
                SExpr (assign (var "prev") (var "p"));
                SExpr (assign (var "p") (var "nx"));
              ] );
          (* First element after reversal should be 0. *)
          print (arrow (var "prev") "value");
          SReturn (Some (int_ 0));
        ];
    ]

(* --- 3: swap through pointer parameters (opaque to inference) ---------- *)

let swap =
  prog
    [
      fn "do_swap"
        ~params:[ ("x", Tptr Tint); ("y", Tptr Tint) ]
        ~ret:Tvoid
        [
          SDecl ("tmp", Tint, Some (deref (var "x")));
          SExpr (assign (deref (var "x")) (deref (var "y")));
          SExpr (assign (deref (var "y")) (var "tmp"));
          SReturn None;
        ];
      fn "main"
        [
          SDecl ("a", Tint, Some (int_ 3));
          SDecl ("b", Tint, Some (int_ 9));
          (* Stack addresses into a function — the pdy/pxv cases. *)
          SExpr (call "do_swap" [ addr (var "a"); addr (var "b") ]);
          print (var "a");
          print (var "b");
          (* Heap addresses through the same function. *)
          SDecl ("h", Tptr Tint, Some (cast (Tptr Tint) (call "malloc" [ int_ 16 ])));
          SExpr (assign (index (var "h") (int_ 0)) (int_ 100));
          SExpr (assign (index (var "h") (int_ 1)) (int_ 200));
          SExpr
            (call "do_swap"
               [ addr (deref (var "h")); addr (index (var "h") (int_ 1)) ]);
          print (index (var "h") (int_ 0));
          print (index (var "h") (int_ 1));
          SReturn (Some (int_ 0));
        ];
    ]

(* --- 4: pointer arithmetic in every direction --------------------------- *)

let pointer_arith =
  prog
    [
      fn "main"
        [
          SDecl ("a", Tptr Tint, Some (cast (Tptr Tint) (call "malloc" [ int_ 64 ])));
          SDecl ("i", Tint, Some (int_ 0));
          SWhile
            ( var "i" < int_ 8,
              [
                SExpr (assign (index (var "a") (var "i")) (int_ 10 * var "i"));
                SExpr (pre_incr (var "i"));
              ] );
          SDecl ("p", Tptr Tint, Some (var "a" + int_ 3)); (* p + i *)
          print (deref (var "p"));
          SDecl ("q", Tptr Tint, Some (binop Add (int_ 2) (var "a"))); (* i + p *)
          print (deref (var "q"));
          SExpr (assign (var "p") (var "p" - int_ 1)); (* p - i *)
          print (deref (var "p"));
          print (var "p" - var "q"); (* pointer difference: 0 *)
          print (binop Eq (var "p") (var "q")); (* equality across copies *)
          print (binop Le (var "a") (var "p"));
          print (binop Gt (var "p") (var "a"));
          (* p[i] with a moved base *)
          print (index (var "p") (int_ 4));
          SReturn (Some (int_ 0));
        ];
    ]

(* --- 5: casts between integers and pointers ------------------------------ *)

let casts =
  prog
    [
      fn "main"
        [
          SDecl ("a", Tptr Tint, Some (cast (Tptr Tint) (call "malloc" [ int_ 32 ])));
          SExpr (assign (index (var "a") (int_ 2)) (int_ 77));
          (* (I)p, integer arithmetic on the address, back to (T* )i. *)
          SDecl ("raw", Tint, Some (cast Tint (var "a")));
          SDecl ("p", Tptr Tint, Some (cast (Tptr Tint) (var "raw" + int_ 16)));
          print (deref (var "p"));
          (* Addresses via (I) of two pointers differ by 16 bytes. *)
          print (cast Tint (var "p") - cast Tint (var "a"));
          (* NULL round-trips. *)
          SDecl ("z", Tptr Tint, Some (cast (Tptr Tint) (int_ 0)));
          print (unop Not (var "z"));
          SReturn (Some (int_ 0));
        ];
    ]

(* --- 6: logical and conditional operators on pointers -------------------- *)

let cond_logic =
  prog
    [
      fn "main"
        [
          SDecl ("a", Tptr Tint, Some (cast (Tptr Tint) (call "malloc" [ int_ 8 ])));
          SDecl ("z", Tptr Tint, Some null);
          SExpr (assign (deref (var "a")) (int_ 5));
          (* p ? e : e *)
          print (cond (var "a") (int_ 1) (int_ 0));
          print (cond (var "z") (int_ 1) (int_ 0));
          (* !p, p && q, p || q *)
          print (unop Not (var "a"));
          print (unop Not (var "z"));
          print (var "a" && var "a");
          print (var "z" || var "a");
          print (var "z" && var "a");
          (* Deref guarded by the pointer itself. *)
          print (cond (var "a") (deref (var "a")) (int_ (-1)));
          SReturn (Some (int_ 0));
        ];
    ]

(* --- 7: binary search tree through an opaque insert function ------------- *)

let tree_struct =
  {
    sname = "tnode";
    fields =
      [
        ("key", Tint);
        ("left", Tptr (Tstruct "tnode"));
        ("right", Tptr (Tstruct "tnode"));
      ];
  }

let binary_tree =
  prog ~structs:[ tree_struct ]
    [
      fn "insert"
        ~params:[ ("root", Tptr (Tstruct "tnode")); ("key", Tint) ]
        ~ret:(Tptr (Tstruct "tnode"))
        [
          SIf
            ( binop Eq (var "root") null,
              [
                SDecl
                  ( "n",
                    Tptr (Tstruct "tnode"),
                    Some
                      (cast (Tptr (Tstruct "tnode"))
                         (call "malloc" [ sizeof (Tstruct "tnode") ])) );
                SExpr (assign (arrow (var "n") "key") (var "key"));
                SExpr (assign (arrow (var "n") "left") null);
                SExpr (assign (arrow (var "n") "right") null);
                SReturn (Some (var "n"));
              ],
              [] );
          SIf
            ( var "key" < arrow (var "root") "key",
              [
                SExpr
                  (assign (arrow (var "root") "left")
                     (call "insert" [ arrow (var "root") "left"; var "key" ]));
              ],
              [
                SExpr
                  (assign (arrow (var "root") "right")
                     (call "insert" [ arrow (var "root") "right"; var "key" ]));
              ] );
          SReturn (Some (var "root"));
        ];
      fn "sum"
        ~params:[ ("root", Tptr (Tstruct "tnode")) ]
        [
          SIf (binop Eq (var "root") null, [ SReturn (Some (int_ 0)) ], []);
          SReturn
            (Some
               (arrow (var "root") "key"
               + call "sum" [ arrow (var "root") "left" ]
               + call "sum" [ arrow (var "root") "right" ]));
        ];
      fn "main"
        [
          SDecl ("root", Tptr (Tstruct "tnode"), Some null);
          SDecl ("i", Tint, Some (int_ 0));
          SWhile
            ( var "i" < int_ 16,
              [
                SExpr
                  (assign (var "root")
                     (call "insert" [ var "root"; binop Mod (var "i" * int_ 7) (int_ 16) ]));
                SExpr (pre_incr (var "i"));
              ] );
          print (call "sum" [ var "root" ]);
          SReturn (Some (int_ 0));
        ];
    ]

(* --- 8: pointer-to-pointer (matrix as array of row pointers) ------------- *)

let ptr_to_ptr =
  prog
    [
      fn "main"
        [
          SDecl
            ( "rows",
              Tptr (Tptr Tint),
              Some (cast (Tptr (Tptr Tint)) (call "malloc" [ int_ 32 ])) );
          SDecl ("r", Tint, Some (int_ 0));
          SWhile
            ( var "r" < int_ 4,
              [
                SExpr
                  (assign (index (var "rows") (var "r"))
                     (cast (Tptr Tint) (call "malloc" [ int_ 32 ])));
                SDecl ("c", Tint, Some (int_ 0));
                SWhile
                  ( var "c" < int_ 4,
                    [
                      SExpr
                        (assign
                           (index (index (var "rows") (var "r")) (var "c"))
                           (var "r" * int_ 4 + var "c"));
                      SExpr (pre_incr (var "c"));
                    ] );
                SExpr (pre_incr (var "r"));
              ] );
          (* Trace: sum of diagonal. *)
          SDecl ("i", Tint, Some (int_ 0));
          SDecl ("acc", Tint, Some (int_ 0));
          SWhile
            ( var "i" < int_ 4,
              [
                SExpr
                  (assign (var "acc")
                     (var "acc" + index (index (var "rows") (var "i")) (var "i")));
                SExpr (pre_incr (var "i"));
              ] );
          print (var "acc");
          SReturn (Some (int_ 0));
        ];
    ]

(* --- 9: increments and decrements, pre and post, on both kinds ----------- *)

let incr_ops =
  prog
    [
      fn "main"
        [
          SDecl ("a", Tptr Tint, Some (cast (Tptr Tint) (call "malloc" [ int_ 40 ])));
          SDecl ("i", Tint, Some (int_ 0));
          SWhile
            ( var "i" < int_ 5,
              [
                SExpr (assign (index (var "a") (var "i")) (var "i" + int_ 1));
                SExpr (post_incr (var "i"));
              ] );
          SDecl ("p", Tptr Tint, Some (var "a"));
          print (deref (post_incr (var "p"))); (* 1, then p moves *)
          print (deref (var "p")); (* 2 *)
          print (deref (pre_incr (var "p"))); (* 3 *)
          SExpr (pre_decr (var "p"));
          print (deref (var "p")); (* 2 *)
          SDecl ("n", Tint, Some (int_ 10));
          print (post_decr (var "n")); (* 10 *)
          print (pre_decr (var "n")); (* 8 *)
          SReturn (Some (int_ 0));
        ];
    ]

(* --- 10: a struct graph with cross and self references ------------------- *)

let graph_struct =
  {
    sname = "gnode";
    fields =
      [
        ("id", Tint);
        ("peer", Tptr (Tstruct "gnode"));
        ("self", Tptr (Tstruct "gnode"));
      ];
  }

let struct_graph =
  prog ~structs:[ graph_struct ]
    [
      fn "main"
        [
          SDecl
            ( "a",
              Tptr (Tstruct "gnode"),
              Some (cast (Tptr (Tstruct "gnode"))
                      (call "malloc" [ sizeof (Tstruct "gnode") ])) );
          SDecl
            ( "b",
              Tptr (Tstruct "gnode"),
              Some (cast (Tptr (Tstruct "gnode"))
                      (call "malloc" [ sizeof (Tstruct "gnode") ])) );
          SExpr (assign (arrow (var "a") "id") (int_ 1));
          SExpr (assign (arrow (var "b") "id") (int_ 2));
          SExpr (assign (arrow (var "a") "peer") (var "b"));
          SExpr (assign (arrow (var "b") "peer") (var "a"));
          SExpr (assign (arrow (var "a") "self") (var "a"));
          (* Chase: a->peer->peer->self->id = 1 *)
          print (arrow (arrow (arrow (arrow (var "a") "peer") "peer") "self") "id");
          (* Self-reference equality. *)
          print (binop Eq (arrow (var "a") "self") (var "a"));
          print (binop Eq (arrow (var "a") "peer") (var "a"));
          SReturn (Some (int_ 0));
        ];
    ]

(* --- 11: deep call chains keep pointers opaque ---------------------------- *)

let call_chain =
  prog
    [
      fn "read3" ~params:[ ("p", Tptr Tint) ] [ SReturn (Some (deref (var "p"))) ];
      fn "read2" ~params:[ ("p", Tptr Tint) ]
        [ SReturn (Some (call "read3" [ var "p" ])) ];
      fn "read1" ~params:[ ("p", Tptr Tint) ]
        [ SReturn (Some (call "read2" [ var "p" ])) ];
      fn "main"
        [
          SDecl ("h", Tptr Tint, Some (cast (Tptr Tint) (call "malloc" [ int_ 8 ])));
          SExpr (assign (deref (var "h")) (int_ 1234));
          print (call "read1" [ var "h" ]);
          SDecl ("s", Tint, Some (int_ 777));
          print (call "read1" [ addr (var "s") ]);
          SReturn (Some (int_ 0));
        ];
    ]

(* --- 12: recursion with only scalars (control-flow reference) ------------- *)

let fibonacci =
  prog
    [
      fn "fib" ~params:[ ("n", Tint) ]
        [
          SIf (var "n" < int_ 2, [ SReturn (Some (var "n")) ], []);
          SReturn (Some (call "fib" [ var "n" - int_ 1 ] + call "fib" [ var "n" - int_ 2 ]));
        ];
      fn "main" [ print (call "fib" [ int_ 15 ]); SReturn (Some (int_ 0)) ];
    ]

(* --- 13: mixed volatile/persistent stores through one helper -------------- *)

let mixed_stores =
  prog
    [
      fn "put" ~params:[ ("dst", Tptr Tint); ("v", Tint) ] ~ret:Tvoid
        [ SExpr (assign (deref (var "dst")) (var "v")); SReturn None ];
      fn "main"
        [
          SDecl ("heap", Tptr Tint, Some (cast (Tptr Tint) (call "malloc" [ int_ 8 ])));
          SDecl ("stack", Tint, Some (int_ 0));
          (* Same store site hits NVM heap and DRAM stack alternately —
             the case that defeats static inference. *)
          SDecl ("i", Tint, Some (int_ 0));
          SWhile
            ( var "i" < int_ 10,
              [
                SIf
                  ( binop Mod (var "i") (int_ 2) == int_ 0,
                    [ SExpr (call "put" [ var "heap"; var "i" ]) ],
                    [ SExpr (call "put" [ addr (var "stack"); var "i" ]) ] );
                SExpr (pre_incr (var "i"));
              ] );
          print (deref (var "heap"));
          print (var "stack");
          SReturn (Some (int_ 0));
        ];
    ]

(* --- 14: doubly linked list, forward and backward traversal --------------- *)

let dnode_struct =
  {
    sname = "dnode";
    fields =
      [
        ("value", Tint);
        ("next", Tptr (Tstruct "dnode"));
        ("prev", Tptr (Tstruct "dnode"));
      ];
  }

let dlist_walk =
  prog ~structs:[ dnode_struct ]
    [
      fn "main"
        [
          SDecl ("head", Tptr (Tstruct "dnode"), Some null);
          SDecl ("tail", Tptr (Tstruct "dnode"), Some null);
          SDecl ("i", Tint, Some (int_ 0));
          SWhile
            ( var "i" < int_ 10,
              [
                SDecl
                  ( "n",
                    Tptr (Tstruct "dnode"),
                    Some
                      (cast (Tptr (Tstruct "dnode"))
                         (call "malloc" [ sizeof (Tstruct "dnode") ])) );
                SExpr (assign (arrow (var "n") "value") (var "i" * int_ 3));
                SExpr (assign (arrow (var "n") "next") null);
                SExpr (assign (arrow (var "n") "prev") (var "tail"));
                SIf
                  ( binop Eq (var "tail") null,
                    [ SExpr (assign (var "head") (var "n")) ],
                    [ SExpr (assign (arrow (var "tail") "next") (var "n")) ] );
                SExpr (assign (var "tail") (var "n"));
                SExpr (pre_incr (var "i"));
              ] );
          (* Forward sum through loaded next pointers. *)
          SDecl ("p", Tptr (Tstruct "dnode"), Some (var "head"));
          SDecl ("fwd", Tint, Some (int_ 0));
          SWhile
            ( binop Ne (var "p") null,
              [
                SExpr (assign (var "fwd") (var "fwd" + arrow (var "p") "value"));
                SExpr (assign (var "p") (arrow (var "p") "next"));
              ] );
          print (var "fwd");
          (* Backward sum through loaded prev pointers. *)
          SExpr (assign (var "p") (var "tail"));
          SDecl ("bwd", Tint, Some (int_ 0));
          SWhile
            ( binop Ne (var "p") null,
              [
                SExpr (assign (var "bwd") (var "bwd" + arrow (var "p") "value"));
                SExpr (assign (var "p") (arrow (var "p") "prev"));
              ] );
          print (var "bwd");
          print (binop Eq (var "fwd") (var "bwd"));
          (* Link symmetry: head->next->prev == head *)
          print
            (binop Eq
               (arrow (arrow (var "head") "next") "prev")
               (var "head"));
          SReturn (Some (int_ 0));
        ];
    ]

(* --- 15: sorted insertion into a list through loaded pointers ------------- *)

let sorted_insert =
  prog ~structs:[ node_struct ]
    [
      (* Insert preserving ascending order; head passed and returned. *)
      fn "ins"
        ~params:[ ("head", Tptr (Tstruct "node")); ("v", Tint) ]
        ~ret:(Tptr (Tstruct "node"))
        [
          SDecl
            ( "n",
              Tptr (Tstruct "node"),
              Some
                (cast (Tptr (Tstruct "node"))
                   (call "malloc" [ sizeof (Tstruct "node") ])) );
          SExpr (assign (arrow (var "n") "value") (var "v"));
          SIf
            ( binop Eq (var "head") null
              || var "v" < arrow (var "head") "value",
              [
                SExpr (assign (arrow (var "n") "next") (var "head"));
                SReturn (Some (var "n"));
              ],
              [] );
          SDecl ("p", Tptr (Tstruct "node"), Some (var "head"));
          SWhile
            ( binop Ne (arrow (var "p") "next") null
              && arrow (arrow (var "p") "next") "value" < var "v",
              [ SExpr (assign (var "p") (arrow (var "p") "next")) ] );
          SExpr (assign (arrow (var "n") "next") (arrow (var "p") "next"));
          SExpr (assign (arrow (var "p") "next") (var "n"));
          SReturn (Some (var "head"));
        ];
      fn "main"
        [
          SDecl ("head", Tptr (Tstruct "node"), Some null);
          SDecl ("i", Tint, Some (int_ 0));
          SWhile
            ( var "i" < int_ 12,
              [
                SExpr
                  (assign (var "head")
                     (call "ins" [ var "head"; binop Mod (var "i" * int_ 5) (int_ 13) ]));
                SExpr (pre_incr (var "i"));
              ] );
          (* Verify sortedness and emit the sequence. *)
          SDecl ("p", Tptr (Tstruct "node"), Some (var "head"));
          SDecl ("sorted", Tint, Some (int_ 1));
          SWhile
            ( binop Ne (var "p") null,
              [
                print (arrow (var "p") "value");
                SIf
                  ( binop Ne (arrow (var "p") "next") null
                    && arrow (arrow (var "p") "next") "value"
                       < arrow (var "p") "value",
                    [ SExpr (assign (var "sorted") (int_ 0)) ],
                    [] );
                SExpr (assign (var "p") (arrow (var "p") "next"));
              ] );
          print (var "sorted");
          SReturn (Some (int_ 0));
        ];
    ]

(* --- 16: tree with parent pointers, walking up from a leaf ---------------- *)

let pnode_struct =
  {
    sname = "pnode";
    fields =
      [
        ("key", Tint);
        ("left", Tptr (Tstruct "pnode"));
        ("right", Tptr (Tstruct "pnode"));
        ("up", Tptr (Tstruct "pnode"));
      ];
  }

let parent_walk =
  prog ~structs:[ pnode_struct ]
    [
      fn "main"
        [
          (* Build a left spine of 6 nodes with parent links. *)
          SDecl
            ( "root",
              Tptr (Tstruct "pnode"),
              Some
                (cast (Tptr (Tstruct "pnode"))
                   (call "malloc" [ sizeof (Tstruct "pnode") ])) );
          SExpr (assign (arrow (var "root") "key") (int_ 0));
          SExpr (assign (arrow (var "root") "left") null);
          SExpr (assign (arrow (var "root") "right") null);
          SExpr (assign (arrow (var "root") "up") null);
          SDecl ("cur", Tptr (Tstruct "pnode"), Some (var "root"));
          SDecl ("i", Tint, Some (int_ 1));
          SWhile
            ( var "i" < int_ 6,
              [
                SDecl
                  ( "n",
                    Tptr (Tstruct "pnode"),
                    Some
                      (cast (Tptr (Tstruct "pnode"))
                         (call "malloc" [ sizeof (Tstruct "pnode") ])) );
                SExpr (assign (arrow (var "n") "key") (var "i"));
                SExpr (assign (arrow (var "n") "left") null);
                SExpr (assign (arrow (var "n") "right") null);
                SExpr (assign (arrow (var "n") "up") (var "cur"));
                SExpr (assign (arrow (var "cur") "left") (var "n"));
                SExpr (assign (var "cur") (var "n"));
                SExpr (pre_incr (var "i"));
              ] );
          (* Walk back up, accumulating keys and counting depth. *)
          SDecl ("depth", Tint, Some (int_ 0));
          SDecl ("acc", Tint, Some (int_ 0));
          SWhile
            ( binop Ne (var "cur") null,
              [
                SExpr (assign (var "acc") (var "acc" + arrow (var "cur") "key"));
                SExpr (assign (var "cur") (arrow (var "cur") "up"));
                SExpr (pre_incr (var "depth"));
              ] );
          print (var "acc");
          print (var "depth");
          SReturn (Some (int_ 0));
        ];
    ]

(* --- 17: function pointers, including persistent ones (pxr(args)) --------- *)

let op_struct =
  {
    sname = "op";
    fields = [ ("f", Tfunptr); ("next", Tptr (Tstruct "op")) ];
  }

let function_pointers =
  prog ~structs:[ op_struct ]
    [
      fn "add2" ~params:[ ("x", Tint) ] [ SReturn (Some (var "x" + int_ 2)) ];
      fn "triple" ~params:[ ("x", Tint) ] [ SReturn (Some (var "x" * int_ 3)) ];
      fn "main"
        [
          (* A function pointer in a local. *)
          SDecl ("g", Tfunptr, Some (var "add2"));
          print (call "g" [ int_ 5 ]);
          (* Function pointers stored inside persistent structs: a
             pipeline of operations applied in order. *)
          SDecl
            ( "first",
              Tptr (Tstruct "op"),
              Some
                (cast (Tptr (Tstruct "op"))
                   (call "malloc" [ sizeof (Tstruct "op") ])) );
          SDecl
            ( "second",
              Tptr (Tstruct "op"),
              Some
                (cast (Tptr (Tstruct "op"))
                   (call "malloc" [ sizeof (Tstruct "op") ])) );
          SExpr (assign (arrow (var "first") "f") (var "triple"));
          SExpr (assign (arrow (var "first") "next") (var "second"));
          SExpr (assign (arrow (var "second") "f") (var "add2"));
          SExpr (assign (arrow (var "second") "next") null);
          SDecl ("acc", Tint, Some (int_ 7));
          SDecl ("p", Tptr (Tstruct "op"), Some (var "first"));
          SWhile
            ( binop Ne (var "p") null,
              [
                (* pxr(argument list): the pointer loaded from the
                   (possibly persistent) struct is resolved, then
                   called. *)
                SExpr
                  (assign (var "acc") (call_ptr (arrow (var "p") "f") [ var "acc" ]));
                SExpr (assign (var "p") (arrow (var "p") "next"));
              ] );
          print (var "acc"); (* (7*3)+2 = 23 *)
          (* Function pointer equality. *)
          print (binop Eq (var "g") (var "add2"));
          print (binop Eq (var "g") (var "triple"));
          SReturn (Some (int_ 0));
        ];
    ]

(* --- 18: for loops with break and continue --------------------------------- *)

let loops =
  prog
    [
      fn "main"
        [
          SDecl ("a", Tptr Tint, Some (cast (Tptr Tint) (call "malloc" [ int_ 80 ])));
          (* for (i = 0; i < 10; ++i) a[i] = i * i; *)
          SFor
            ( Some (SDecl ("i", Tint, Some (int_ 0))),
              Some (var "i" < int_ 10),
              Some (pre_incr (var "i")),
              [ SExpr (assign (index (var "a") (var "i")) (var "i" * var "i")) ]
            );
          (* Sum even-indexed squares, stopping at the first > 40. *)
          SDecl ("sum", Tint, Some (int_ 0));
          SFor
            ( Some (SDecl ("j", Tint, Some (int_ 0))),
              Some (var "j" < int_ 10),
              Some (pre_incr (var "j")),
              [
                SIf
                  (binop Mod (var "j") (int_ 2) == int_ 1, [ SContinue ], []);
                SIf (index (var "a") (var "j") > int_ 40, [ SBreak ], []);
                SExpr
                  (assign (var "sum") (var "sum" + index (var "a") (var "j")));
              ] );
          print (var "sum"); (* 0 + 4 + 16 = 20, breaks at j=8 (64) *)
          (* break/continue inside while. *)
          SDecl ("k", Tint, Some (int_ 0));
          SDecl ("count", Tint, Some (int_ 0));
          SWhile
            ( int_ 1,
              [
                SExpr (pre_incr (var "k"));
                SIf (var "k" > int_ 100, [ SBreak ], []);
                SIf
                  (binop Mod (var "k") (int_ 7) != int_ 0, [ SContinue ], []);
                SExpr (pre_incr (var "count"));
              ] );
          print (var "count"); (* multiples of 7 up to 100: 14 *)
          SReturn (Some (int_ 0));
        ];
    ]

(* --- the corpus ------------------------------------------------------------ *)

let all : (string * program) list =
  [
    ("array_sum", array_sum);
    ("linked_list", linked_list);
    ("swap", swap);
    ("pointer_arith", pointer_arith);
    ("casts", casts);
    ("cond_logic", cond_logic);
    ("binary_tree", binary_tree);
    ("ptr_to_ptr", ptr_to_ptr);
    ("incr_ops", incr_ops);
    ("struct_graph", struct_graph);
    ("call_chain", call_chain);
    ("fibonacci", fibonacci);
    ("mixed_stores", mixed_stores);
    ("dlist_walk", dlist_walk);
    ("sorted_insert", sorted_insert);
    ("parent_walk", parent_walk);
    ("function_pointers", function_pointers);
    ("loops", loops);
  ]

let find name =
  match List.assoc_opt name all with
  | Some p -> p
  | None -> Fmt.invalid_arg "Corpus: unknown program %S" name
