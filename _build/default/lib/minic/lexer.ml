(* Lexer for mini-C surface syntax.  Supports decimal and hex integer
   literals, identifiers and keywords, the full operator set of the
   Fig. 4 repertoire, and both comment styles. *)

type token =
  | INT_LIT of int64
  | IDENT of string
  (* keywords *)
  | KW_INT
  | KW_VOID
  | KW_STRUCT
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_BREAK
  | KW_CONTINUE
  | KW_FNPTR
  | KW_RETURN
  | KW_SIZEOF
  | KW_NULL
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | QUESTION
  | COLON
  (* operators *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | ASSIGN
  | LT
  | GT
  | LE
  | GE
  | EQ
  | NE
  | ANDAND
  | OROR
  | SHL
  | SHR
  | ARROW
  | PLUSPLUS
  | MINUSMINUS
  | EOF

type located = { token : token; line : int; col : int }

exception Lex_error of string * int * int

let keyword_of = function
  | "int" -> Some KW_INT
  | "void" -> Some KW_VOID
  | "struct" -> Some KW_STRUCT
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "for" -> Some KW_FOR
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | "fnptr" -> Some KW_FNPTR
  | "return" -> Some KW_RETURN
  | "sizeof" -> Some KW_SIZEOF
  | "NULL" -> Some KW_NULL
  | _ -> None

let token_name = function
  | INT_LIT v -> Fmt.str "integer %Ld" v
  | IDENT s -> Fmt.str "identifier %S" s
  | KW_INT -> "'int'"
  | KW_VOID -> "'void'"
  | KW_STRUCT -> "'struct'"
  | KW_IF -> "'if'"
  | KW_ELSE -> "'else'"
  | KW_WHILE -> "'while'"
  | KW_FOR -> "'for'"
  | KW_BREAK -> "'break'"
  | KW_CONTINUE -> "'continue'"
  | KW_FNPTR -> "'fnptr'"
  | KW_RETURN -> "'return'"
  | KW_SIZEOF -> "'sizeof'"
  | KW_NULL -> "'NULL'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | SEMI -> "';'"
  | COMMA -> "','"
  | QUESTION -> "'?'"
  | COLON -> "':'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | AMP -> "'&'"
  | PIPE -> "'|'"
  | CARET -> "'^'"
  | TILDE -> "'~'"
  | BANG -> "'!'"
  | ASSIGN -> "'='"
  | LT -> "'<'"
  | GT -> "'>'"
  | LE -> "'<='"
  | GE -> "'>='"
  | EQ -> "'=='"
  | NE -> "'!='"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | SHL -> "'<<'"
  | SHR -> "'>>'"
  | ARROW -> "'->'"
  | PLUSPLUS -> "'++'"
  | MINUSMINUS -> "'--'"
  | EOF -> "end of input"

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of the beginning of the current line *)
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | _ -> ());
  st.pos <- st.pos + 1

let col st = st.pos - st.bol + 1

let error st fmt =
  Fmt.kstr (fun s -> raise (Lex_error (s, st.line, col st))) fmt

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '/' -> (
      match peek2 st with
      | Some '/' ->
          while peek st <> None && peek st <> Some '\n' do
            advance st
          done;
          skip_trivia st
      | Some '*' ->
          advance st;
          advance st;
          let rec close () =
            match (peek st, peek2 st) with
            | Some '*', Some '/' ->
                advance st;
                advance st
            | None, _ -> error st "unterminated comment"
            | _ ->
                advance st;
                close ()
          in
          close ();
          skip_trivia st
      | _ -> ())
  | _ -> ()

let lex_number st =
  let start = st.pos in
  let hex =
    peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X')
  in
  if hex then begin
    advance st;
    advance st;
    while (match peek st with Some c -> is_hex c | None -> false) do
      advance st
    done
  end
  else
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
  let text = String.sub st.src start (st.pos - start) in
  match Int64.of_string_opt text with
  | Some v -> INT_LIT v
  | None -> error st "bad integer literal %S" text

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match keyword_of text with Some kw -> kw | None -> IDENT text

let next_token st : located =
  skip_trivia st;
  let line = st.line and c0 = col st in
  let mk token = { token; line; col = c0 } in
  match peek st with
  | None -> mk EOF
  | Some c when is_digit c -> mk (lex_number st)
  | Some c when is_ident_start c -> mk (lex_ident st)
  | Some c ->
      let two tok =
        advance st;
        advance st;
        mk tok
      in
      let one tok =
        advance st;
        mk tok
      in
      (match (c, peek2 st) with
      | '-', Some '>' -> two ARROW
      | '-', Some '-' -> two MINUSMINUS
      | '+', Some '+' -> two PLUSPLUS
      | '<', Some '=' -> two LE
      | '>', Some '=' -> two GE
      | '<', Some '<' -> two SHL
      | '>', Some '>' -> two SHR
      | '=', Some '=' -> two EQ
      | '!', Some '=' -> two NE
      | '&', Some '&' -> two ANDAND
      | '|', Some '|' -> two OROR
      | '(', _ -> one LPAREN
      | ')', _ -> one RPAREN
      | '{', _ -> one LBRACE
      | '}', _ -> one RBRACE
      | '[', _ -> one LBRACKET
      | ']', _ -> one RBRACKET
      | ';', _ -> one SEMI
      | ',', _ -> one COMMA
      | '?', _ -> one QUESTION
      | ':', _ -> one COLON
      | '+', _ -> one PLUS
      | '-', _ -> one MINUS
      | '*', _ -> one STAR
      | '/', _ -> one SLASH
      | '%', _ -> one PERCENT
      | '&', _ -> one AMP
      | '|', _ -> one PIPE
      | '^', _ -> one CARET
      | '~', _ -> one TILDE
      | '!', _ -> one BANG
      | '=', _ -> one ASSIGN
      | '<', _ -> one LT
      | '>', _ -> one GT
      | _ -> error st "unexpected character %C" c)

(* Tokenize a whole source string. *)
let tokenize src : located list =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  let rec go acc =
    let t = next_token st in
    if t.token = EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []
