(** Recursive-descent parser for mini-C surface syntax, producing the
    same AST the embedded builders produce.  Covers the full Fig. 4
    pointer-operation repertoire plus [for]/[break]/[continue] and
    [fnptr] function-pointer declarations. *)

exception Parse_error of string * int * int
(** message, line, column *)

val parse_program : string -> Ast.program
val parse_expr_string : string -> Ast.expr
