(* Static typing for mini-C: sizes, struct layouts, expression typing.
   Every scalar is one 64-bit word, so sizeof(int) = sizeof(T* ) = 8 and
   struct fields are word-aligned — matching the simulated machine. *)

open Ast

(* [Ast] redefines arithmetic symbols as expression builders; restore
   the integer operators for this module's own computations. *)
let ( + ) = Stdlib.( + )
let ( * ) = Stdlib.( * )
let ( = ) = Stdlib.( = )

exception Type_error of string

let err fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

type env = {
  structs : (string, struct_def) Hashtbl.t;
  funcs : (string, func) Hashtbl.t;
  mutable vars : (string * ty) list; (* innermost scope first *)
}

let make_env (p : program) =
  let structs = Hashtbl.create 8 and funcs = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace structs s.sname s) p.structs;
  List.iter (fun f -> Hashtbl.replace funcs f.fname f) p.funcs;
  { structs; funcs; vars = [] }

let struct_def env name =
  match Hashtbl.find_opt env.structs name with
  | Some s -> s
  | None -> err "unknown struct %s" name

let rec sizeof env = function
  | Tint | Tptr _ | Tfunptr -> 8
  | Tvoid -> err "sizeof void"
  | Tarray (t, n) -> n * sizeof env t
  | Tstruct name ->
      List.fold_left
        (fun acc (_, ty) -> acc + sizeof env ty)
        0 (struct_def env name).fields

(* Byte offset and type of a struct field. *)
let field_info env sname fname =
  let rec scan off = function
    | [] -> err "struct %s has no field %s" sname fname
    | (f, ty) :: rest ->
        if f = fname then (off, ty) else scan (off + sizeof env ty) rest
  in
  scan 0 (struct_def env sname).fields

(* Variables shadow functions; a bare function name is a function
   pointer constant. *)
let var_type env v =
  match List.assoc_opt v env.vars with
  | Some ty -> ty
  | None ->
      if Hashtbl.mem env.funcs v then Tfunptr
      else err "unbound variable %s" v

let is_ptr = function
  | Tptr _ | Tfunptr -> true
  | Tint | Tstruct _ | Tarray _ | Tvoid -> false

let elem_ty = function
  | Tptr t -> t
  | Tarray (t, _) -> t
  | ty -> err "dereference of non-pointer %a" pp_ty ty

let is_funptr = function Tfunptr -> true | _ -> false

(* The type of an expression under [env].  Arrays decay to pointers in
   value contexts, as in C. *)
let rec type_of env (e : expr) : ty =
  match e.e with
  | EInt _ -> Tint
  | ENull -> Tptr Tvoid
  | ESizeof _ -> Tint
  | EVar v -> (
      match var_type env v with Tarray (t, _) -> Tptr t | ty -> ty)
  | EUnop ((Neg | Not | Bnot), _) -> Tint
  | EBinop (op, a, b) -> (
      match op with
      | Lt | Gt | Le | Ge | Eq | Ne | And | Or -> Tint
      | Add | Sub -> (
          let ta = type_of env a and tb = type_of env b in
          match (ta, tb, op) with
          | Tptr t, Tint, _ -> Tptr t
          | Tint, Tptr t, Add -> Tptr t
          | Tptr _, Tptr _, Sub -> Tint
          | Tint, Tint, _ -> Tint
          | _ -> err "ill-typed additive operands")
      | Mul | Div | Mod | Band | Bor | Bxor | Shl | Shr -> Tint)
  | EAssign (lv, _) -> lvalue_type env lv
  | EDeref p -> elem_ty (type_of env p)
  | EAddr lv -> Tptr (lvalue_type env lv)
  | EIndex (p, _) -> elem_ty (type_of env p)
  | EArrow (p, f) -> (
      match type_of env p with
      | Tptr (Tstruct s) -> snd (field_info env s f)
      | ty -> err "-> on %a" pp_ty ty)
  | ECallPtr (callee, _) ->
      if not (is_funptr (type_of env callee)) then
        err "call through non-function-pointer %a" pp_ty (type_of env callee);
      Tint
  | ECall (name, _) -> (
      (* A variable of function-pointer type shadows functions and may
         be called by name. *)
      match List.assoc_opt name env.vars with
      | Some Tfunptr -> Tint
      | Some ty -> err "%s (of type %a) is not callable" name pp_ty ty
      | None -> (
          match name with
          | "malloc" | "pmalloc" -> Tptr Tvoid
          | "free" | "pfree" | "print" -> Tvoid
          | _ -> (
              match Hashtbl.find_opt env.funcs name with
              | Some f -> f.ret
              | None -> err "unknown function %s" name)))
  | ECast (ty, _) -> ty
  | ECond (_, a, b) ->
      let ta = type_of env a in
      let tb = type_of env b in
      if is_ptr ta then ta else if is_ptr tb then tb else ta
  | EIncr { lv; _ } -> lvalue_type env lv

(* The type of an lvalue (no array decay). *)
and lvalue_type env (e : expr) : ty =
  match e.e with
  | EVar v -> var_type env v
  | EDeref p -> elem_ty (type_of env p)
  | EIndex (p, _) -> elem_ty (type_of env p)
  | EArrow (p, f) -> (
      match type_of env p with
      | Tptr (Tstruct s) -> snd (field_info env s f)
      | ty -> err "-> on %a" pp_ty ty)
  | _ -> err "not an lvalue"

(* A light well-formedness pass: every expression in the program types,
   declared initializers match scalar-ness, conditions are scalars. *)
let check_program (p : program) =
  let env = make_env p in
  let check_func (f : func) =
    let saved = env.vars in
    env.vars <- f.params @ env.vars;
    let rec check_stmt = function
      | SExpr e -> ignore (type_of env e)
      | SDecl (v, ty, init) ->
          (match init with Some e -> ignore (type_of env e) | None -> ());
          env.vars <- (v, ty) :: env.vars
      | SIf (c, a, b) ->
          ignore (type_of env c);
          let s = env.vars in
          List.iter check_stmt a;
          env.vars <- s;
          List.iter check_stmt b;
          env.vars <- s
      | SWhile (c, body) ->
          ignore (type_of env c);
          let s = env.vars in
          List.iter check_stmt body;
          env.vars <- s
      | SFor (init, c, step, body) ->
          let s = env.vars in
          Option.iter check_stmt init;
          Option.iter (fun e -> ignore (type_of env e)) c;
          Option.iter (fun e -> ignore (type_of env e)) step;
          List.iter check_stmt body;
          env.vars <- s
      | SBreak | SContinue -> ()
      | SReturn (Some e) -> ignore (type_of env e)
      | SReturn None -> ()
    in
    List.iter check_stmt f.body;
    env.vars <- saved
  in
  List.iter check_func p.funcs;
  env
