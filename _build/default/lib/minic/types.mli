(** Static typing for mini-C: sizes, struct layouts, expression typing.
    Every scalar is one 64-bit word, so [sizeof(int) = sizeof(T* ) = 8]
    and struct fields are word-aligned — matching the simulated
    machine. *)

open Ast

exception Type_error of string

type env = {
  structs : (string, struct_def) Hashtbl.t;
  funcs : (string, func) Hashtbl.t;
  mutable vars : (string * ty) list;  (** innermost scope first *)
}

val make_env : program -> env
val struct_def : env -> string -> struct_def
val sizeof : env -> ty -> int

val field_info : env -> string -> string -> int * ty
(** Byte offset and type of a struct field. *)

val var_type : env -> string -> ty
(** Variables shadow functions; a bare function name types as
    [Tfunptr].  @raise Type_error when unbound. *)

val is_ptr : ty -> bool
(** Pointer-like (including [Tfunptr]): stored with pointer-store
    semantics. *)

val is_funptr : ty -> bool
val elem_ty : ty -> ty

val type_of : env -> expr -> ty
(** Arrays decay to pointers in value contexts, as in C. *)

val lvalue_type : env -> expr -> ty
(** No array decay.  @raise Type_error on non-lvalues. *)

val check_program : program -> env
(** Well-formedness: every expression types.  Returns the environment
    for later queries. *)
