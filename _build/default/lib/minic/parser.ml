(* Recursive-descent parser for mini-C surface syntax, producing the
   same AST the embedded builders produce.

   Grammar sketch:

     program   := (struct_def | func)*
     struct_def:= "struct" IDENT "{" (type IDENT ";")* "}" ";"
     type      := ("int" | "void" | "struct" IDENT) "*"*
     func      := type IDENT "(" param,* ")" "{" stmt* "}"
     stmt      := type IDENT ("[" INT "]")? ("=" expr)? ";"
                | "if" "(" expr ")" block ("else" block)?
                | "while" "(" expr ")" block
                | "return" expr? ";"  |  expr ";"
     expr      := assignment; standard C precedence below that, with
                  casts, unary * & ! ~ - ++ --, postfix [] -> ++ --
                  and calls. *)

open Lexer

exception Parse_error of string * int * int

type state = { mutable tokens : located list }

let fail (t : located) fmt =
  Fmt.kstr (fun s -> raise (Parse_error (s, t.line, t.col))) fmt

let current st =
  match st.tokens with t :: _ -> t | [] -> assert false (* EOF is kept *)

let peek st = (current st).token

let peek2 st =
  match st.tokens with _ :: t :: _ -> t.token | _ -> EOF

let advance st =
  match st.tokens with
  | _ :: (_ :: _ as rest) -> st.tokens <- rest
  | _ -> ()

let expect st token =
  let t = current st in
  if t.token = token then advance st
  else fail t "expected %s, found %s" (token_name token) (token_name t.token)

let expect_ident st =
  let t = current st in
  match t.token with
  | IDENT name ->
      advance st;
      name
  | other -> fail t "expected identifier, found %s" (token_name other)

(* --- types ------------------------------------------------------------ *)

let starts_type = function
  | KW_INT | KW_VOID | KW_STRUCT | KW_FNPTR -> true
  | _ -> false

let parse_base_type st : Ast.ty =
  let t = current st in
  match t.token with
  | KW_INT ->
      advance st;
      Ast.Tint
  | KW_VOID ->
      advance st;
      Ast.Tvoid
  | KW_STRUCT ->
      advance st;
      Ast.Tstruct (expect_ident st)
  | KW_FNPTR ->
      advance st;
      Ast.Tfunptr
  | other -> fail t "expected a type, found %s" (token_name other)

let parse_type st : Ast.ty =
  let base = parse_base_type st in
  let rec stars ty =
    if peek st = STAR then begin
      advance st;
      stars (Ast.Tptr ty)
    end
    else ty
  in
  stars base

(* --- expressions -------------------------------------------------------- *)

(* Binary operator precedence (higher binds tighter). *)
let binop_of = function
  | OROR -> Some (Ast.Or, 1)
  | ANDAND -> Some (Ast.And, 2)
  | PIPE -> Some (Ast.Bor, 3)
  | CARET -> Some (Ast.Bxor, 4)
  | AMP -> Some (Ast.Band, 5)
  | EQ -> Some (Ast.Eq, 6)
  | NE -> Some (Ast.Ne, 6)
  | LT -> Some (Ast.Lt, 7)
  | GT -> Some (Ast.Gt, 7)
  | LE -> Some (Ast.Le, 7)
  | GE -> Some (Ast.Ge, 7)
  | SHL -> Some (Ast.Shl, 8)
  | SHR -> Some (Ast.Shr, 8)
  | PLUS -> Some (Ast.Add, 9)
  | MINUS -> Some (Ast.Sub, 9)
  | STAR -> Some (Ast.Mul, 10)
  | SLASH -> Some (Ast.Div, 10)
  | PERCENT -> Some (Ast.Mod, 10)
  | _ -> None

let rec parse_expr st : Ast.expr = parse_assignment st

and parse_assignment st =
  let lhs = parse_conditional st in
  if peek st = ASSIGN then begin
    advance st;
    let rhs = parse_assignment st in
    Ast.assign lhs rhs
  end
  else lhs

and parse_conditional st =
  let c = parse_binary st 1 in
  if peek st = QUESTION then begin
    advance st;
    let a = parse_expr st in
    expect st COLON;
    let b = parse_conditional st in
    Ast.cond c a b
  end
  else c

and parse_binary st min_prec =
  let rec loop lhs =
    match binop_of (peek st) with
    | Some (op, prec) when prec >= min_prec ->
        advance st;
        let rhs = parse_binary st (prec + 1) in
        loop (Ast.binop op lhs rhs)
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  let t = current st in
  match t.token with
  | BANG ->
      advance st;
      Ast.unop Ast.Not (parse_unary st)
  | TILDE ->
      advance st;
      Ast.unop Ast.Bnot (parse_unary st)
  | MINUS ->
      advance st;
      Ast.unop Ast.Neg (parse_unary st)
  | STAR ->
      advance st;
      Ast.deref (parse_unary st)
  | AMP ->
      advance st;
      Ast.addr (parse_unary st)
  | PLUSPLUS ->
      advance st;
      Ast.pre_incr (parse_unary st)
  | MINUSMINUS ->
      advance st;
      Ast.pre_decr (parse_unary st)
  | KW_SIZEOF ->
      advance st;
      expect st LPAREN;
      let ty = parse_type st in
      expect st RPAREN;
      Ast.sizeof ty
  | LPAREN when starts_type (peek2 st) ->
      (* cast: "(" type ")" unary *)
      advance st;
      let ty = parse_type st in
      expect st RPAREN;
      Ast.cast ty (parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec loop e =
    match peek st with
    | LBRACKET ->
        advance st;
        let i = parse_expr st in
        expect st RBRACKET;
        loop (Ast.index e i)
    | ARROW ->
        advance st;
        loop (Ast.arrow e (expect_ident st))
    | PLUSPLUS ->
        advance st;
        loop (Ast.post_incr e)
    | MINUSMINUS ->
        advance st;
        loop (Ast.post_decr e)
    | LPAREN ->
        (* call through a computed function pointer *)
        advance st;
        let rec args acc =
          if peek st = RPAREN then List.rev acc
          else
            let a = parse_expr st in
            if peek st = COMMA then begin
              advance st;
              args (a :: acc)
            end
            else List.rev (a :: acc)
        in
        let arguments = args [] in
        expect st RPAREN;
        loop (Ast.call_ptr e arguments)
    | _ -> e
  in
  loop (parse_primary st)

and parse_primary st =
  let t = current st in
  match t.token with
  | INT_LIT v ->
      advance st;
      Ast.i64 v
  | KW_NULL ->
      advance st;
      Ast.null
  | IDENT name -> (
      advance st;
      match peek st with
      | LPAREN ->
          advance st;
          let rec args acc =
            if peek st = RPAREN then List.rev acc
            else
              let a = parse_expr st in
              if peek st = COMMA then begin
                advance st;
                args (a :: acc)
              end
              else List.rev (a :: acc)
          in
          let arguments = args [] in
          expect st RPAREN;
          Ast.call name arguments
      | _ -> Ast.var name)
  | LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st RPAREN;
      e
  | other -> fail t "expected an expression, found %s" (token_name other)

(* --- statements ------------------------------------------------------------ *)

let rec parse_stmt st : Ast.stmt =
  let t = current st in
  match t.token with
  | KW_IF ->
      advance st;
      expect st LPAREN;
      let c = parse_expr st in
      expect st RPAREN;
      let then_body = parse_block st in
      let else_body =
        if peek st = KW_ELSE then begin
          advance st;
          parse_block st
        end
        else []
      in
      Ast.SIf (c, then_body, else_body)
  | KW_WHILE ->
      advance st;
      expect st LPAREN;
      let c = parse_expr st in
      expect st RPAREN;
      Ast.SWhile (c, parse_block st)
  | KW_FOR ->
      advance st;
      expect st LPAREN;
      let init =
        if peek st = SEMI then begin
          advance st;
          None
        end
        else Some (parse_stmt st) (* consumes its own ';' *)
      in
      let c =
        if peek st = SEMI then None else Some (parse_expr st)
      in
      expect st SEMI;
      let step = if peek st = RPAREN then None else Some (parse_expr st) in
      expect st RPAREN;
      Ast.SFor (init, c, step, parse_block st)
  | KW_BREAK ->
      advance st;
      expect st SEMI;
      Ast.SBreak
  | KW_CONTINUE ->
      advance st;
      expect st SEMI;
      Ast.SContinue
  | KW_RETURN ->
      advance st;
      if peek st = SEMI then begin
        advance st;
        Ast.SReturn None
      end
      else begin
        let e = parse_expr st in
        expect st SEMI;
        Ast.SReturn (Some e)
      end
  | tok when starts_type tok ->
      let ty = parse_type st in
      let name = expect_ident st in
      let ty =
        if peek st = LBRACKET then begin
          advance st;
          let n =
            match peek st with
            | INT_LIT v ->
                advance st;
                Int64.to_int v
            | other -> fail (current st) "expected array size, found %s" (token_name other)
          in
          expect st RBRACKET;
          Ast.Tarray (ty, n)
        end
        else ty
      in
      let init =
        if peek st = ASSIGN then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      expect st SEMI;
      Ast.SDecl (name, ty, init)
  | _ ->
      let e = parse_expr st in
      expect st SEMI;
      Ast.SExpr e

and parse_block st : Ast.stmt list =
  if peek st = LBRACE then begin
    advance st;
    let rec stmts acc =
      if peek st = RBRACE then begin
        advance st;
        List.rev acc
      end
      else stmts (parse_stmt st :: acc)
    in
    stmts []
  end
  else [ parse_stmt st ]

(* --- top level ---------------------------------------------------------------- *)

let parse_struct_def st : Ast.struct_def =
  expect st KW_STRUCT;
  let sname = expect_ident st in
  expect st LBRACE;
  let rec fields acc =
    if peek st = RBRACE then begin
      advance st;
      List.rev acc
    end
    else begin
      let ty = parse_type st in
      let name = expect_ident st in
      expect st SEMI;
      fields ((name, ty) :: acc)
    end
  in
  let fields = fields [] in
  expect st SEMI;
  { Ast.sname; fields }

let parse_func st ~ret ~fname : Ast.func =
  expect st LPAREN;
  let rec params acc =
    if peek st = RPAREN then List.rev acc
    else begin
      let ty = parse_type st in
      let name = expect_ident st in
      let acc = (name, ty) :: acc in
      if peek st = COMMA then begin
        advance st;
        params acc
      end
      else List.rev acc
    end
  in
  let params = params [] in
  expect st RPAREN;
  expect st LBRACE;
  let rec body acc =
    if peek st = RBRACE then begin
      advance st;
      List.rev acc
    end
    else body (parse_stmt st :: acc)
  in
  { Ast.fname; params; ret; body = body [] }

let parse_program (src : string) : Ast.program =
  let st = { tokens = Lexer.tokenize src } in
  let rec toplevel structs funcs =
    match peek st with
    | EOF -> { Ast.structs = List.rev structs; funcs = List.rev funcs }
    | KW_STRUCT when (match peek2 st with IDENT _ -> true | _ -> false)
                     && (match st.tokens with
                        | _ :: _ :: t :: _ -> t.token = LBRACE
                        | _ -> false) ->
        let s = parse_struct_def st in
        toplevel (s :: structs) funcs
    | tok when starts_type tok ->
        let ret = parse_type st in
        let fname = expect_ident st in
        let f = parse_func st ~ret ~fname in
        toplevel structs (f :: funcs)
    | other ->
        fail (current st) "expected a declaration, found %s" (token_name other)
  in
  toplevel [] []

let parse_expr_string (src : string) : Ast.expr =
  let st = { tokens = Lexer.tokenize src } in
  let e = parse_expr st in
  expect st EOF;
  e
