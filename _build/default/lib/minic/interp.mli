(** The mini-C interpreter.  Programs execute against the runtime's
    pointer API, so one source runs in every mode: Volatile gives the
    reference behaviour; Sw/Hw give user-transparent persistent
    references with their cost models.  Locals live in a simulated DRAM
    stack; the heap region is a parameter (DRAM for native runs, a pool
    for the libvmmalloc-style persist-everything runs of Sec. VII-B).

    A check [plan] from the compiler pass marks expression nodes whose
    pointer properties were statically resolved; those sites are created
    static and the SW mode emits no dynamic check there. *)

module Runtime = Nvml_runtime.Runtime

exception Runtime_error of string

type outcome = { result : int64; output : int64 list }

val run :
  Runtime.t ->
  ?plan:(int -> bool) ->
  heap:Runtime.region ->
  Ast.program ->
  args:int64 list ->
  outcome
(** Execute [main].  [plan id] answers "statically resolved?" per
    expression node id (defaults to all-dynamic).
    @raise Runtime_error on dynamic errors (unbound names, division by
    zero, stack overflow, calls to unknown functions). *)
