lib/minic/lexer.ml: Fmt Int64 List String
