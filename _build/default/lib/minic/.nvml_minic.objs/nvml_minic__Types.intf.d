lib/minic/types.mli: Ast Hashtbl
