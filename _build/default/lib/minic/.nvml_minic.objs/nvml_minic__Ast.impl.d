lib/minic/ast.ml: Fmt Int64 List Option
