lib/minic/lexer.mli:
