lib/minic/interp.ml: Ast Fmt Hashtbl Int64 List Nvml_core Nvml_runtime Nvml_simmem Option Stdlib Types
