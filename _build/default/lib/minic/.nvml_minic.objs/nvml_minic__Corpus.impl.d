lib/minic/corpus.ml: Ast Fmt List
