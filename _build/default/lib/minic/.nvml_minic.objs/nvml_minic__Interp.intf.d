lib/minic/interp.mli: Ast Nvml_runtime
