lib/minic/pretty.ml: Ast Fmt Int64 List Stdlib String
