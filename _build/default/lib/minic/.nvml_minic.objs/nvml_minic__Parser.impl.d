lib/minic/parser.ml: Ast Fmt Int64 Lexer List
