lib/minic/types.ml: Ast Fmt Hashtbl List Option Stdlib
