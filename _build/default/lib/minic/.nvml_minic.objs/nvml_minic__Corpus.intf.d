lib/minic/corpus.mli: Ast
