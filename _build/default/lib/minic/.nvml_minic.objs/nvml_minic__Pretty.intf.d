lib/minic/pretty.mli: Ast
