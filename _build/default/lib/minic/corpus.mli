(** The soundness corpus: mini-C programs collectively covering every
    pointer-operation row of the paper's Fig. 4.  Section VII-B's
    experiment replays each under native and pmalloc-everything heaps
    and compares outputs. *)

val all : (string * Ast.program) list

val find : string -> Ast.program
(** @raise Invalid_argument on unknown names. *)
