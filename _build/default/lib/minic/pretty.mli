(** Pretty-printer: mini-C AST back to C-like surface syntax, with
    precedence-aware parenthesization so that [parse (print p)] is
    structurally identical to [p].  Also displays the Fig. 9-style
    instrumented code the compiler pass produces. *)

val ty_text : Ast.ty -> string
val expr_text : Ast.expr -> string
val func_text : Ast.func -> string
val struct_text : Ast.struct_def -> string
val program_text : Ast.program -> string
