(* Pretty-printer: mini-C AST back to C-like surface syntax, with
   precedence-aware parenthesization so that parse(print(p)) is
   structurally identical to p.  Also used to display the Fig. 9-style
   instrumented code the compiler pass produces. *)

open Ast

(* [Ast] redefines arithmetic symbols as expression builders; restore
   the integer operators for this module's own computations. *)
let ( + ) = Stdlib.( + )
let ( * ) = Stdlib.( * )
let ( < ) = Stdlib.( < )
let ( > ) = Stdlib.( > )
let ( && ) = Stdlib.( && )
let ( - ) = Stdlib.( - )

let binop_text = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

(* Mirrors the parser's precedence table. *)
let binop_prec = function
  | Or -> 1
  | And -> 2
  | Bor -> 3
  | Bxor -> 4
  | Band -> 5
  | Eq | Ne -> 6
  | Lt | Gt | Le | Ge -> 7
  | Shl | Shr -> 8
  | Add | Sub -> 9
  | Mul | Div | Mod -> 10

let prec_assign = 0
let prec_cond = 1 (* conditional binds tighter than assignment *)
let prec_unary = 11
let prec_postfix = 12
let prec_primary = 13

let rec ty_text = function
  | Tint -> "int"
  | Tvoid -> "void"
  | Tfunptr -> "fnptr"
  | Tstruct s -> "struct " ^ s
  | Tptr t -> ty_text t ^ "*"
  | Tarray (t, n) -> Fmt.str "%s[%d]" (ty_text t) n

(* Precedence of an expression's own production. *)
let expr_prec (e : expr) =
  match e.e with
  | EInt _ | ENull | EVar _ | ECall _ -> prec_primary
  | EIndex _ | EArrow _ | ECallPtr _ -> prec_postfix
  | EIncr { pre; _ } -> if pre then prec_unary else prec_postfix
  | EUnop _ | EDeref _ | EAddr _ | ECast _ | ESizeof _ -> prec_unary
  | EBinop (op, _, _) -> binop_prec op
  | ECond _ -> prec_cond
  | EAssign _ -> prec_assign

let rec expr_text (e : expr) = at_prec 0 e

(* Prefix an operator, inserting a space when the operand's first
   character would glue into a different token ("&" before "&x" must
   not become "&&x"). *)
and prefix op text =
  let glues =
    String.length text > 0
    &&
    match (op.[String.length op - 1], text.[0]) with
    | '&', '&' | '-', '-' | '+', '+' -> true
    | _ -> false
  in
  if glues then op ^ " " ^ text else op ^ text

(* Render [e], parenthesizing when its precedence is below [min]. *)
and at_prec min (e : expr) =
  let body =
    match e.e with
    | EInt v -> Int64.to_string v
    | ENull -> "NULL"
    | EVar v -> v
    | EUnop (Not, a) -> prefix "!" (at_prec prec_unary a)
    | EUnop (Bnot, a) -> prefix "~" (at_prec prec_unary a)
    | EUnop (Neg, a) -> prefix "-" (at_prec prec_unary a)
    | EDeref a -> prefix "*" (at_prec prec_unary a)
    | EAddr a -> prefix "&" (at_prec prec_unary a)
    | ECast (ty, a) -> Fmt.str "(%s)%s" (ty_text ty) (at_prec prec_unary a)
    | ESizeof ty -> Fmt.str "sizeof(%s)" (ty_text ty)
    | EIncr { pre = true; up; lv } ->
        prefix (if up then "++" else "--") (at_prec prec_unary lv)
    | EIncr { pre = false; up; lv } ->
        at_prec prec_postfix lv ^ if up then "++" else "--"
    | EIndex (a, i) -> Fmt.str "%s[%s]" (at_prec prec_postfix a) (at_prec 0 i)
    | EArrow (a, f) -> Fmt.str "%s->%s" (at_prec prec_postfix a) f
    | ECall (f, args) ->
        Fmt.str "%s(%s)" f (String.concat ", " (List.map (at_prec 0) args))
    | ECallPtr (callee, args) ->
        Fmt.str "%s(%s)"
          (at_prec prec_postfix callee)
          (String.concat ", " (List.map (at_prec 0) args))
    | EBinop (op, a, b) ->
        let p = binop_prec op in
        (* left-associative: right operand needs strictly higher prec *)
        Fmt.str "%s %s %s" (at_prec p a) (binop_text op) (at_prec (p + 1) b)
    | ECond (c, a, b) ->
        (* condition: above ?:; then-arm: any expression; else-arm:
           conditional-expression (assignments need parens, as in C) *)
        Fmt.str "%s ? %s : %s" (at_prec 2 c) (at_prec 0 a) (at_prec prec_cond b)
    | EAssign (lv, rhs) ->
        Fmt.str "%s = %s" (at_prec prec_unary lv) (at_prec prec_assign rhs)
  in
  if expr_prec e < min then "(" ^ body ^ ")" else body

let indent n = String.make (n * 2) ' '

(* A declaration renders array types C-style: "int a[5]". *)
let decl_text name ty =
  match ty with
  | Tarray (t, n) -> Fmt.str "%s %s[%d]" (ty_text t) name n
  | _ -> Fmt.str "%s %s" (ty_text ty) name

let rec stmt_lines depth (s : stmt) : string list =
  let pad = indent depth in
  match s with
  | SExpr e -> [ pad ^ expr_text e ^ ";" ]
  | SDecl (name, ty, None) -> [ pad ^ decl_text name ty ^ ";" ]
  | SDecl (name, ty, Some e) ->
      [ Fmt.str "%s%s = %s;" pad (decl_text name ty) (expr_text e) ]
  | SReturn None -> [ pad ^ "return;" ]
  | SReturn (Some e) -> [ Fmt.str "%sreturn %s;" pad (expr_text e) ]
  | SWhile (c, body) ->
      (Fmt.str "%swhile (%s) {" pad (expr_text c))
      :: List.concat_map (stmt_lines (depth + 1)) body
      @ [ pad ^ "}" ]
  | SIf (c, then_body, []) ->
      (Fmt.str "%sif (%s) {" pad (expr_text c))
      :: List.concat_map (stmt_lines (depth + 1)) then_body
      @ [ pad ^ "}" ]
  | SIf (c, then_body, else_body) ->
      (Fmt.str "%sif (%s) {" pad (expr_text c))
      :: List.concat_map (stmt_lines (depth + 1)) then_body
      @ [ pad ^ "} else {" ]
      @ List.concat_map (stmt_lines (depth + 1)) else_body
      @ [ pad ^ "}" ]
  | SBreak -> [ pad ^ "break;" ]
  | SContinue -> [ pad ^ "continue;" ]
  | SFor (init, c, step, body) ->
      let init_text =
        match init with
        | None -> ""
        | Some s -> (
            (* render the init statement inline, without its newline *)
            match stmt_lines 0 s with
            | [ line ] -> String.sub line 0 (String.length line - 1)
            | _ -> failwith "for-init must be a simple statement")
      in
      let cond_text = match c with None -> "" | Some e -> expr_text e in
      let step_text = match step with None -> "" | Some e -> expr_text e in
      (Fmt.str "%sfor (%s; %s; %s) {" pad init_text cond_text step_text)
      :: List.concat_map (stmt_lines (depth + 1)) body
      @ [ pad ^ "}" ]

let func_text (f : func) =
  let params =
    String.concat ", " (List.map (fun (n, ty) -> decl_text n ty) f.params)
  in
  let header = Fmt.str "%s %s(%s) {" (ty_text f.ret) f.fname params in
  String.concat "\n"
    ((header :: List.concat_map (stmt_lines 1) f.body) @ [ "}" ])

let struct_text (s : struct_def) =
  let fields =
    List.map (fun (n, ty) -> Fmt.str "  %s;" (decl_text n ty)) s.fields
  in
  String.concat "\n"
    ((Fmt.str "struct %s {" s.sname :: fields) @ [ "};" ])

let program_text (p : program) =
  String.concat "\n\n"
    (List.map struct_text p.structs @ List.map func_text p.funcs)
