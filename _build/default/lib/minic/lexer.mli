(** Lexer for mini-C surface syntax: decimal and hex integer literals,
    identifiers and keywords, the full operator set of the Fig. 4
    repertoire, and both C comment styles. *)

type token =
  | INT_LIT of int64
  | IDENT of string
  | KW_INT
  | KW_VOID
  | KW_STRUCT
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_BREAK
  | KW_CONTINUE
  | KW_FNPTR
  | KW_RETURN
  | KW_SIZEOF
  | KW_NULL
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | QUESTION
  | COLON
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | ASSIGN
  | LT
  | GT
  | LE
  | GE
  | EQ
  | NE
  | ANDAND
  | OROR
  | SHL
  | SHR
  | ARROW
  | PLUSPLUS
  | MINUSMINUS
  | EOF

type located = { token : token; line : int; col : int }

exception Lex_error of string * int * int
(** message, line, column *)

val token_name : token -> string
(** Human-readable token description for error messages. *)

val tokenize : string -> located list
(** Tokenize a whole source string; the result always ends with [EOF].
    @raise Lex_error on stray characters or unterminated comments. *)
