(** The code-generation half of the compiler pass (paper, Fig. 9):
    rewrite every pointer-operation site into the explicit runtime calls
    the SW version executes — [determineY]/[ra2va] conditionals at
    dynamically checked sites, bare [ra2va] where inference proved the
    operand relative, and [pointerAssignment] at unresolved pointer
    stores.  The output is a display program in C syntax. *)

module Ast = Nvml_minic.Ast

val instrument : Inference.result -> Ast.program -> Ast.program

val generated_source : ?heap_relative:bool -> Ast.program -> string
(** Infer, instrument and pretty-print in one step. *)
