(* The compiler-based method of Section V-B: a whole-program dataflow
   inference of pointer *format* properties over mini-C, used to elide
   dynamic checks at sites whose operands are statically resolved.

   The lattice, per pointer-valued variable or expression:

       Bottom  —  no information yet (unreached)
       Va      —  always a virtual address (e.g. & of a local)
       Rel     —  always a relative address (e.g. a pmalloc result)
       Either  —  both reach it: a dynamic check is required

   The pass starts from the marked allocator functions (malloc/pmalloc
   return relative addresses when the heap is persistent) and address-of
   operations (virtual), and propagates through assignments, loads and
   calls to a fixpoint.  Function parameters join the properties of all
   call-site arguments — the interprocedural flow whose imprecision
   leaves the ~42 % of dynamic checks the paper reports. *)

module Ast = Nvml_minic.Ast
module Types = Nvml_minic.Types
open Ast

(* [Ast] redefines comparison symbols as expression builders; restore
   the stdlib operators for this module's own logic. *)
let ( < ) = Stdlib.( < )
let ( = ) = Stdlib.( = )
let ( <> ) = Stdlib.( <> )
let ( && ) = Stdlib.( && )
let ( || ) = Stdlib.( || )

type prop = Bottom | Va | Rel | Either

let join a b =
  match (a, b) with
  | Bottom, x | x, Bottom -> x
  | Va, Va -> Va
  | Rel, Rel -> Rel
  | _ -> Either

let pp_prop ppf p =
  Fmt.string ppf
    (match p with
    | Bottom -> "bottom"
    | Va -> "va"
    | Rel -> "rel"
    | Either -> "either")

type result = {
  expr_props : (int, prop) Hashtbl.t; (* pointer-typed expression nodes *)
  needs_check : (int, bool) Hashtbl.t; (* pointer-op site -> dynamic check? *)
  total_sites : int;
  checked_sites : int;
}

let fraction_checked r =
  if r.total_sites = 0 then 0.0
  else float_of_int r.checked_sites /. float_of_int r.total_sites

(* Statically resolved sites get [static = true] interpreter sites. *)
let plan r id =
  match Hashtbl.find_opt r.needs_check id with
  | Some needed -> not needed
  | None -> false

type state = {
  env : Types.env;
  heap_relative : bool; (* persistent heap: malloc returns Rel *)
  vars : (string * string, prop) Hashtbl.t; (* (function, var) -> prop *)
  returns : (string, prop) Hashtbl.t; (* function -> return prop *)
  expr_props : (int, prop) Hashtbl.t;
  mutable changed : bool;
}

let get_var st ~func v =
  Option.value ~default:Bottom (Hashtbl.find_opt st.vars (func, v))

let set_var st ~func v p =
  let old = get_var st ~func v in
  let p' = join old p in
  if p' <> old then begin
    Hashtbl.replace st.vars (func, v) p';
    st.changed <- true
  end

let get_return st f = Option.value ~default:Bottom (Hashtbl.find_opt st.returns f)

let set_return st f p =
  let old = get_return st f in
  let p' = join old p in
  if p' <> old then begin
    Hashtbl.replace st.returns f p';
    st.changed <- true
  end

let record st (e : expr) p =
  let old = Option.value ~default:Bottom (Hashtbl.find_opt st.expr_props e.id) in
  let p' = join old p in
  if p' <> old then Hashtbl.replace st.expr_props e.id p'

(* Property of a pointer value loaded from memory: a cell reached
   through a known-relative address is in NVM, where stored pointers
   are kept in relative format; anything else is unknown — unless the
   heap is volatile, in which case no relative pointer can exist and
   every load yields a virtual address. *)
let loaded_prop st addr_prop =
  if not st.heap_relative then
    match addr_prop with Bottom -> Bottom | Va | Rel | Either -> Va
  else match addr_prop with Rel -> Rel | Bottom -> Bottom | Va | Either -> Either

(* One pass over an expression; returns its format property when the
   expression has pointer type (Va/Rel/Either), or Bottom otherwise. *)
let rec flow st ~func ~tenv (e : expr) : prop =
  let ty = Types.type_of tenv e in
  let p =
    match e.e with
    | EInt _ -> if Types.is_ptr ty then Either else Bottom
    | ENull -> Va (* the null pointer needs no conversion either way *)
    | ESizeof _ -> Bottom
    | EVar v ->
        if not (Types.is_ptr ty) then Bottom
        else if
          (not (List.mem_assoc v tenv.Types.vars))
          && Hashtbl.mem st.env.Types.funcs v
        then
          (* a bare function name: its code cell lives in the heap *)
          if st.heap_relative then Rel else Va
        else get_var st ~func v
    | EUnop (_, a) ->
        ignore (flow st ~func ~tenv a);
        Bottom
    | EBinop (op, a, b) -> (
        let pa = flow st ~func ~tenv a in
        let pb = flow st ~func ~tenv b in
        match op with
        | Add | Sub when Types.is_ptr ty ->
            (* pointer arithmetic preserves the operand's format *)
            join pa pb
        | _ -> Bottom)
    | EAssign (lv, rhs) ->
        let pr = flow st ~func ~tenv rhs in
        flow_lvalue_store st ~func ~tenv lv pr;
        if Types.is_ptr ty then assigned_prop lv pr else Bottom
    | EDeref a ->
        let pa = flow st ~func ~tenv a in
        if Types.is_ptr ty then loaded_prop st pa else Bottom
    | EAddr lv ->
        ignore (flow_lvalue st ~func ~tenv lv);
        Va
    | EIndex (a, i) ->
        let pa = flow st ~func ~tenv a in
        ignore (flow st ~func ~tenv i);
        if Types.is_ptr ty then loaded_prop st pa else Bottom
    | EArrow (a, _) ->
        let pa = flow st ~func ~tenv a in
        if Types.is_ptr ty then loaded_prop st pa else Bottom
    | ECallPtr (callee, args) ->
        ignore (flow st ~func ~tenv callee);
        List.iter (fun a -> ignore (flow st ~func ~tenv a)) args;
        Bottom
    | ECall (name, args) when List.assoc_opt name tenv.Types.vars = Some Tfunptr
      ->
        (* indirect call through a function-pointer variable *)
        List.iter (fun a -> ignore (flow st ~func ~tenv a)) args;
        Bottom
    | ECall (name, args) -> (
        let arg_props = List.map (flow st ~func ~tenv) args in
        match name with
        | "malloc" | "pmalloc" -> if st.heap_relative then Rel else Va
        | "free" | "pfree" | "print" -> Bottom
        | _ -> (
            match Hashtbl.find_opt st.env.Types.funcs name with
            | Some callee ->
                List.iter2
                  (fun (pname, pty) ap ->
                    if Types.is_ptr pty then
                      set_var st ~func:name pname
                        (if ap = Bottom then Bottom else ap))
                  callee.params arg_props;
                if Types.is_ptr ty then get_return st name else Bottom
            | None -> if Types.is_ptr ty then Either else Bottom))
    | ECast (cty, a) ->
        let pa = flow st ~func ~tenv a in
        if Types.is_ptr cty then
          if Types.is_ptr (Types.type_of tenv a) then pa
          else if (match a.e with EInt 0L -> true | _ -> false) then Va
          else Either
        else Bottom
    | ECond (c, a, b) ->
        ignore (flow st ~func ~tenv c);
        let pa = flow st ~func ~tenv a in
        let pb = flow st ~func ~tenv b in
        if Types.is_ptr ty then join pa pb else Bottom
    | EIncr { lv; _ } ->
        let p = flow_lvalue st ~func ~tenv lv in
        (* value written back has the same format *)
        flow_lvalue_store st ~func ~tenv lv p;
        p
  in
  if Types.is_ptr ty then record st e p;
  p

(* Property of the value currently held by an lvalue. *)
and flow_lvalue st ~func ~tenv (e : expr) : prop =
  match e.e with
  | EVar v -> get_var st ~func v
  | EDeref a -> loaded_prop st (flow st ~func ~tenv a)
  | EIndex (a, i) ->
      ignore (flow st ~func ~tenv i);
      loaded_prop st (flow st ~func ~tenv a)
  | EArrow (a, _) -> loaded_prop st (flow st ~func ~tenv a)
  | _ -> Either

(* Record the effect of storing a pointer of property [p] into [lv]. *)
and flow_lvalue_store st ~func ~tenv (lv : expr) (p : prop) =
  match lv.e with
  | EVar v ->
      if Types.is_ptr (Types.lvalue_type tenv lv) then
        (* stored into a DRAM local: materializes as a virtual address
           (pdy = pxr converts), unless nothing is known yet *)
        set_var st ~func v (match p with Bottom -> Bottom | _ -> Va)
  | EDeref a | EIndex (a, _) | EArrow (a, _) ->
      ignore (flow st ~func ~tenv a)
  | _ -> ()

(* The property an EVar lvalue holds *after* the assignment. *)
and assigned_prop (lv : expr) (p : prop) =
  match lv.e with EVar _ -> (match p with Bottom -> Bottom | _ -> Va) | _ -> p

let flow_stmt st ~func ~tenv_ref stmt =
  let tenv = !tenv_ref in
  match stmt with
  | SExpr e -> ignore (flow st ~func ~tenv e)
  | SDecl (v, ty, init) ->
      (match init with
      | Some e ->
          let p = flow st ~func ~tenv e in
          if Types.is_ptr ty then
            set_var st ~func v (match p with Bottom -> Bottom | _ -> Va)
      | None -> ());
      tenv_ref := { tenv with Types.vars = (v, ty) :: tenv.Types.vars }
  | SIf (c, _, _) | SWhile (c, _) -> ignore (flow st ~func ~tenv c)
  | SFor _ -> () (* handled entirely by flow_stmts: the init scopes
                    the condition and step *)
  | SBreak | SContinue -> ()
  | SReturn (Some e) -> set_return st func (flow st ~func ~tenv e)
  | SReturn None -> ()

(* Walk a function body, maintaining the type scope. *)
let rec flow_stmts st ~func ~tenv_ref stmts =
  List.iter
    (fun s ->
      flow_stmt st ~func ~tenv_ref s;
      match s with
      | SIf (_, a, b) ->
          let saved = !tenv_ref in
          flow_stmts st ~func ~tenv_ref a;
          tenv_ref := saved;
          flow_stmts st ~func ~tenv_ref b;
          tenv_ref := saved
      | SWhile (_, body) ->
          let saved = !tenv_ref in
          flow_stmts st ~func ~tenv_ref body;
          tenv_ref := saved
      | SFor (init, c, step, body) ->
          let saved = !tenv_ref in
          Option.iter (flow_stmt st ~func ~tenv_ref) init;
          let tenv = !tenv_ref in
          Option.iter (fun e -> ignore (flow st ~func ~tenv e)) c;
          Option.iter (fun e -> ignore (flow st ~func ~tenv e)) step;
          flow_stmts st ~func ~tenv_ref body;
          tenv_ref := saved
      | SExpr _ | SDecl _ | SReturn _ | SBreak | SContinue -> ())
    stmts

let run_fixpoint st (p : program) =
  let continue = ref true in
  let rounds = ref 0 in
  while !continue && !rounds < 50 do
    incr rounds;
    st.changed <- false;
    List.iter
      (fun f ->
        let tenv_ref =
          ref { st.env with Types.vars = f.params }
        in
        (* Body statements may loop; run the body flow twice per round
           so loop-carried properties stabilize quickly. *)
        flow_stmts st ~func:f.fname ~tenv_ref f.body;
        let tenv_ref = ref { st.env with Types.vars = f.params } in
        flow_stmts st ~func:f.fname ~tenv_ref f.body)
      p.funcs;
    continue := st.changed
  done

(* --- site classification ------------------------------------------------ *)

(* After the fixpoint, walk the program once more and classify every
   pointer-operation site: does it still need a dynamic check? *)
let classify st (p : program) : result =
  let needs_check = Hashtbl.create 64 in
  let total = ref 0 and checked = ref 0 in
  let prop_of (e : expr) =
    Option.value ~default:Either (Hashtbl.find_opt st.expr_props e.id)
  in
  let site id needed =
    incr total;
    if needed then incr checked;
    Hashtbl.replace needs_check id needed
  in
  let unresolved = function Either | Bottom -> true | Va | Rel -> false in
  let visit_func (f : func) =
    let tenv_ref = ref { st.env with Types.vars = f.params } in
    let rec visit_expr (e : expr) =
      let tenv = !tenv_ref in
      (match e.e with
      | EDeref a -> site e.id (unresolved (prop_of a))
      | EIndex (a, _) ->
          if Types.is_ptr (Types.type_of tenv a) then
            site e.id (unresolved (prop_of a))
      | EArrow (a, _) -> site e.id (unresolved (prop_of a))
      | EAssign (lv, rhs) ->
          if Types.is_ptr (Types.lvalue_type tenv lv) then begin
            (* pointerAssignment: resolved only when both the cell's
               location and the value's format are known. *)
            let dst_known =
              (not st.heap_relative)
              ||
              match lv.e with
              | EVar _ -> true (* stack slot: DRAM *)
              | EDeref a | EIndex (a, _) | EArrow (a, _) ->
                  prop_of a = Rel (* known-NVM cell *)
              | _ -> false
            in
            site e.id (not (dst_known && not (unresolved (prop_of rhs))))
          end
      | EBinop ((Lt | Gt | Le | Ge | Eq | Ne | Sub), a, b)
        when Types.is_ptr (Types.type_of tenv a)
             || Types.is_ptr (Types.type_of tenv b) ->
          site e.id (unresolved (prop_of a) || unresolved (prop_of b))
      | ECast (Tint, a) when Types.is_ptr (Types.type_of tenv a) ->
          site e.id (unresolved (prop_of a))
      | EUnop (Not, a) when Types.is_ptr (Types.type_of tenv a) ->
          site e.id (unresolved (prop_of a))
      | ECallPtr (callee, _) -> site e.id (unresolved (prop_of callee))
      | ECall (name, _)
        when List.assoc_opt name tenv.Types.vars = Some Tfunptr ->
          site e.id (unresolved (get_var st ~func:f.fname name))
      | _ -> ());
      iter_children visit_expr e
    and iter_children f (e : expr) =
      match e.e with
      | EInt _ | ENull | EVar _ | ESizeof _ -> ()
      | EUnop (_, a) | EDeref a | EAddr a | ECast (_, a) | EArrow (a, _) -> f a
      | EBinop (_, a, b) | EAssign (a, b) | EIndex (a, b) ->
          f a;
          f b
      | ECond (a, b, c) ->
          f a;
          f b;
          f c
      | ECall (_, args) -> List.iter f args
      | ECallPtr (callee, args) ->
          f callee;
          List.iter f args
      | EIncr { lv; _ } -> f lv
    in
    let rec visit_stmts stmts =
      List.iter
        (fun s ->
          (match s with
          | SExpr e -> visit_expr e
          | SDecl (v, ty, init) ->
              (match init with Some e -> visit_expr e | None -> ());
              tenv_ref :=
                { !tenv_ref with Types.vars = (v, ty) :: !tenv_ref.Types.vars }
          | SIf (c, _, _) | SWhile (c, _) -> visit_expr c
          | SFor _ -> () (* scoped below, after the init *)
          | SBreak | SContinue -> ()
          | SReturn (Some e) -> visit_expr e
          | SReturn None -> ());
          match s with
          | SIf (_, a, b) ->
              let saved = !tenv_ref in
              visit_stmts a;
              tenv_ref := saved;
              visit_stmts b;
              tenv_ref := saved
          | SWhile (_, body) ->
              let saved = !tenv_ref in
              visit_stmts body;
              tenv_ref := saved
          | SFor (init, c, step, body) ->
              let saved = !tenv_ref in
              (match init with
              | Some (SDecl (v, ty, iexpr)) ->
                  (match iexpr with Some e -> visit_expr e | None -> ());
                  tenv_ref :=
                    { !tenv_ref with
                      Types.vars = (v, ty) :: !tenv_ref.Types.vars }
              | Some s -> visit_stmts [ s ]
              | None -> ());
              Option.iter visit_expr c;
              Option.iter visit_expr step;
              visit_stmts body;
              tenv_ref := saved
          | SExpr _ | SDecl _ | SReturn _ | SBreak | SContinue -> ())
        stmts
    in
    visit_stmts f.body
  in
  List.iter visit_func p.funcs;
  {
    expr_props = st.expr_props;
    needs_check;
    total_sites = !total;
    checked_sites = !checked;
  }

let infer ?(heap_relative = true) (p : program) : result =
  let env = Types.check_program p in
  let st =
    {
      env;
      heap_relative;
      vars = Hashtbl.create 64;
      returns = Hashtbl.create 16;
      expr_props = Hashtbl.create 256;
      changed = false;
    }
  in
  run_fixpoint st p;
  classify st p
