lib/comp/codegen.mli: Inference Nvml_minic
