lib/comp/inference.mli: Fmt Hashtbl Nvml_minic
