lib/comp/inference.ml: Fmt Hashtbl List Nvml_minic Option Stdlib
