lib/comp/codegen.ml: Hashtbl Inference List Nvml_minic Option Stdlib
