(* The code-generation half of the compiler pass: rewrite every
   pointer-operation site into the explicit runtime calls the LLVM pass
   of the paper emits (Fig. 9) — [determineY]/[ra2va] conditionals at
   dynamically checked sites, bare [ra2va] where inference proved the
   operand relative, and [pointerAssignment] calls at unresolved
   pointer stores.

   The output is a *display* program: it shows, in C syntax, exactly
   what the SW version executes (and what the interpreter charges for),
   for inspection and for the Fig. 9 reproduction in the bench
   harness. *)

module Ast = Nvml_minic.Ast
module Types = Nvml_minic.Types
module Pretty = Nvml_minic.Pretty
open Ast

let ( = ) = Stdlib.( = )
let ( && ) = Stdlib.( && )
let ( || ) = Stdlib.( || )

(* determineY(e) == Relative ? ra2va(e) : e *)
let checked_resolve (e : expr) : expr =
  cond
    (binop Eq (call "determineY" [ e ]) (var "Relative"))
    (call "ra2va" [ e ])
    e

let direct_resolve (e : expr) : expr = call "ra2va" [ e ]

type decision = Keep | Convert | Check

(* What the inference decided for the pointer operand of site [id]. *)
let decision_for (r : Inference.result) (operand : expr) id =
  match Hashtbl.find_opt r.Inference.needs_check id with
  | Some true -> Check
  | Some false -> (
      match Hashtbl.find_opt r.Inference.expr_props operand.id with
      | Some Inference.Rel -> Convert
      | _ -> Keep)
  | None -> Keep

let apply_decision r ~site_id (operand : expr) =
  match decision_for r operand site_id with
  | Keep -> operand
  | Convert -> direct_resolve operand
  | Check -> checked_resolve operand

(* Rewrite an expression tree bottom-up. *)
let rec rewrite_expr (r : Inference.result) tenv (e : expr) : expr =
  let rw = rewrite_expr r tenv in
  match e.e with
  | EInt _ | ENull | EVar _ | ESizeof _ -> e
  | EUnop (op, a) -> unop op (rw a)
  | EDeref a -> deref (apply_decision r ~site_id:e.id (rw a))
  | EAddr a -> addr (rw a)
  | EIndex (a, i) ->
      if Types.is_ptr (Types.type_of tenv a) then
        index (apply_decision r ~site_id:e.id (rw a)) (rw i)
      else index (rw a) (rw i)
  | EArrow (a, f) -> arrow (apply_decision r ~site_id:e.id (rw a)) f
  | EAssign (lv, rhs) ->
      if
        Types.is_ptr (Types.lvalue_type tenv lv)
        && Hashtbl.find_opt r.Inference.needs_check e.id = Some true
      then
        (* The unresolved pointer store becomes the shared helper call
           of Fig. 9: pointerAssignment(&lv, rhs). *)
        call "pointerAssignment" [ addr (rewrite_lvalue r tenv lv); rw rhs ]
      else assign (rewrite_lvalue r tenv lv) (rw rhs)
  | ECall (f, args) -> call f (List.map rw args)
  | ECallPtr (callee, args) ->
      call_ptr (apply_decision r ~site_id:e.id (rw callee)) (List.map rw args)
  | ECast (ty, a) ->
      if
        ty = Tint
        && Types.is_ptr (Types.type_of tenv a)
        && Hashtbl.find_opt r.Inference.needs_check e.id = Some true
      then cast ty (checked_resolve (rw a))
      else cast ty (rw a)
  | ECond (c, a, b) -> cond (rw c) (rw a) (rw b)
  | EBinop (op, a, b) -> (
      match op with
      | Lt | Gt | Le | Ge | Eq | Ne | Sub
        when Types.is_ptr (Types.type_of tenv a)
             || Types.is_ptr (Types.type_of tenv b) ->
          let fix operand =
            if Types.is_ptr (Types.type_of tenv operand) then
              apply_decision r ~site_id:e.id (rw operand)
            else rw operand
          in
          binop op (fix a) (fix b)
      | _ -> binop op (rw a) (rw b))
  | EIncr { pre; up; lv } ->
      let lv' = rewrite_lvalue r tenv lv in
      mk (EIncr { pre; up; lv = lv' })

(* Lvalues keep their shape; only embedded addresses are resolved. *)
and rewrite_lvalue r tenv (e : expr) : expr =
  match e.e with
  | EVar _ -> e
  | EDeref a ->
      deref (apply_decision r ~site_id:e.id (rewrite_expr r tenv a))
  | EIndex (a, i) ->
      index
        (apply_decision r ~site_id:e.id (rewrite_expr r tenv a))
        (rewrite_expr r tenv i)
  | EArrow (a, f) ->
      arrow (apply_decision r ~site_id:e.id (rewrite_expr r tenv a)) f
  | _ -> rewrite_expr r tenv e

let rec rewrite_stmts r tenv_ref stmts =
  List.map
    (fun s ->
      let tenv = !tenv_ref in
      match s with
      | SExpr e -> SExpr (rewrite_expr r tenv e)
      | SDecl (v, ty, init) ->
          let init' = Option.map (rewrite_expr r tenv) init in
          tenv_ref := { tenv with Types.vars = (v, ty) :: tenv.Types.vars };
          SDecl (v, ty, init')
      | SIf (c, a, b) ->
          let c' = rewrite_expr r tenv c in
          let saved = !tenv_ref in
          let a' = rewrite_stmts r tenv_ref a in
          tenv_ref := saved;
          let b' = rewrite_stmts r tenv_ref b in
          tenv_ref := saved;
          SIf (c', a', b')
      | SWhile (c, body) ->
          let c' = rewrite_expr r tenv c in
          let saved = !tenv_ref in
          let body' = rewrite_stmts r tenv_ref body in
          tenv_ref := saved;
          SWhile (c', body')
      | SFor (init, c, step, body) ->
          let init' =
            Option.map (fun s -> List.hd (rewrite_stmts r tenv_ref [ s ])) init
          in
          let tenv = !tenv_ref in
          let c' = Option.map (rewrite_expr r tenv) c in
          let step' = Option.map (rewrite_expr r tenv) step in
          let saved = !tenv_ref in
          let body' = rewrite_stmts r tenv_ref body in
          tenv_ref := saved;
          SFor (init', c', step', body')
      | SBreak -> SBreak
      | SContinue -> SContinue
      | SReturn e -> SReturn (Option.map (rewrite_expr r tenv) e))
    stmts

(* Instrument a whole program according to an inference result. *)
let instrument (r : Inference.result) (p : program) : program =
  let env = Types.check_program p in
  let funcs =
    List.map
      (fun (f : func) ->
        let tenv_ref = ref { env with Types.vars = f.params } in
        { f with body = rewrite_stmts r tenv_ref f.body })
      p.funcs
  in
  { p with funcs }

(* Convenience: infer + instrument + pretty-print. *)
let generated_source ?(heap_relative = true) (p : program) : string =
  let r = Inference.infer ~heap_relative p in
  Pretty.program_text (instrument r p)
