(** The compiler-based method of Section V-B: whole-program dataflow
    inference of pointer-format properties over mini-C, used to elide
    dynamic checks at statically resolved sites.

    Lattice: [Bottom] (unreached) ⊑ [Va]/[Rel] ⊑ [Either].  The pass
    seeds from the marked allocator functions and address-of operations
    and iterates assignments, loads and interprocedural parameter joins
    to a fixpoint; pointers loaded out of possibly-NVM cells come back
    [Either], which is what keeps traversal code checked. *)

module Ast = Nvml_minic.Ast

type prop = Bottom | Va | Rel | Either

val join : prop -> prop -> prop
val pp_prop : prop Fmt.t

type result = {
  expr_props : (int, prop) Hashtbl.t;
      (** property per pointer-typed expression node *)
  needs_check : (int, bool) Hashtbl.t;
      (** pointer-op site → does it still need a dynamic check? *)
  total_sites : int;
  checked_sites : int;
}

val fraction_checked : result -> float

val plan : result -> int -> bool
(** The interpreter plan: [true] = statically resolved (site is check
    free). *)

val infer : ?heap_relative:bool -> Ast.program -> result
(** [heap_relative] (default true) marks malloc as returning relative
    addresses — the persistent-heap configuration. *)
