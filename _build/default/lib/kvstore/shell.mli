(** An interactive persistent key-value store over the simulator: one
    pool, one index structure anchored at the pool root, a line-oriented
    command interpreter ([put]/[get]/[del]/[size]/[keys]/[crash]/
    [stats]/[help]) and a [crash] command that power-cycles the machine
    — committed data survives, relocated to a fresh mapping. *)

module Runtime = Nvml_runtime.Runtime

type t

val create : ?mode:Runtime.mode -> ?structure:string -> unit -> t
(** [structure] names any registry structure (default "RB"). *)

val exec : t -> string -> string list
(** Execute one command line; returns the reply lines. *)
