(* An interactive persistent key-value store: the "aha" demo of the
   whole stack.  A session owns a simulated machine with one pool and an
   index structure anchored at the pool root; commands mutate it, and
   `crash` power-cycles the machine — everything committed to the pool
   survives, relocated to a fresh mapping.

   Commands (one per line):
     put <key> <value>      insert or update (integers)
     get <key>              look up
     del <key>              remove
     size                   number of keys
     keys                   list keys in order
     crash                  power-cycle; recover from the pool root
     stats                  timing-model counters so far
     help                   this list

   The command interpreter is a plain function over strings so tests can
   drive a session without a terminal. *)

module Cpu = Nvml_arch.Cpu
module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Intf = Nvml_structures.Intf

let site = Site.make ~static:true "shell"

type t = {
  rt : Runtime.t;
  pool : int;
  structure : Intf.ordered_map;
  mutable map_header : Nvml_core.Ptr.t;
  mutable crashes : int;
}

let pool_size = 1 lsl 22

let create ?(mode = Runtime.Hw) ?(structure = "RB") () =
  let rt = Runtime.create ~mode () in
  let pool = Runtime.create_pool rt ~name:"shell" ~size:pool_size in
  let structure = Nvml_structures.Registry.find_map structure in
  let module M = (val structure : Intf.ORDERED_MAP) in
  let m = M.create rt (Runtime.Pool_region pool) in
  Runtime.set_root rt ~site ~pool (M.header m);
  { rt; pool; structure; map_header = M.header m; crashes = 0 }

(* Monomorphic operation record over the existentially typed map. *)
type ops = {
  insert : key:int64 -> value:int64 -> unit;
  find : int64 -> int64 option;
  remove : int64 -> bool;
  size : unit -> int;
  iter : (key:int64 -> value:int64 -> unit) -> unit;
  check : unit -> unit;
}

let ops t : ops =
  let module M = (val t.structure : Intf.ORDERED_MAP) in
  let m = M.attach t.rt t.map_header in
  {
    insert = (fun ~key ~value -> M.insert m ~key ~value);
    find = (fun k -> M.find m k);
    remove = (fun k -> M.remove m k);
    size = (fun () -> M.size m);
    iter = (fun f -> M.iter m f);
    check = (fun () -> M.check_invariants m);
  }

(* One command in, list of reply lines out. *)
let exec t (line : string) : string list =
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  let int_arg s =
    match Int64.of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Fmt.str "not an integer: %S" s)
  in
  match words with
  | [] -> []
  | [ "help" ] ->
      [
        "put <key> <value>   insert or update";
        "get <key>           look up";
        "del <key>           remove";
        "size                number of keys";
        "keys                list keys in order";
        "crash               power-cycle the machine";
        "stats               timing-model counters";
        "quit                leave";
      ]
  | [ "put"; k; v ] -> (
      match (int_arg k, int_arg v) with
      | Ok key, Ok value ->
          (ops t).insert ~key ~value;
          [ "ok" ]
      | Error e, _ | _, Error e -> [ "error: " ^ e ])
  | [ "get"; k ] -> (
      match int_arg k with
      | Ok key -> (
          match (ops t).find key with
          | Some v -> [ Int64.to_string v ]
          | None -> [ "(not found)" ])
      | Error e -> [ "error: " ^ e ])
  | [ "del"; k ] -> (
      match int_arg k with
      | Ok key -> if (ops t).remove key then [ "ok" ] else [ "(not found)" ]
      | Error e -> [ "error: " ^ e ])
  | [ "size" ] -> [ string_of_int ((ops t).size ()) ]
  | [ "keys" ] -> (
      let acc = ref [] in
      (ops t).iter (fun ~key ~value:_ -> acc := Int64.to_string key :: !acc);
      match List.rev !acc with [] -> [ "(empty)" ] | keys -> keys)
  | [ "crash" ] ->
      t.crashes <- t.crashes + 1;
      Runtime.crash_and_restart t.rt;
      ignore (Runtime.open_pool t.rt "shell");
      t.map_header <- Runtime.get_root t.rt ~site ~pool:t.pool;
      let o = ops t in
      o.check ();
      [
        Fmt.str "crashed and recovered (%d keys intact, crash #%d)"
          (o.size ()) t.crashes;
      ]
  | [ "stats" ] ->
      let s = Runtime.snapshot t.rt in
      [
        Fmt.str "cycles       %d" s.Cpu.cycles;
        Fmt.str "instructions %d" s.Cpu.instrs;
        Fmt.str "accesses     %d (%d NVM, %d storeP)" s.Cpu.mem_accesses
          s.Cpu.nvm_accesses s.Cpu.storeps;
        Fmt.str "POLB         %d accesses, %d misses" s.Cpu.polb_accesses
          s.Cpu.polb_misses;
        Fmt.str "crashes      %d" t.crashes;
      ]
  | cmd :: _ -> [ Fmt.str "unknown command %S (try help)" cmd ]
