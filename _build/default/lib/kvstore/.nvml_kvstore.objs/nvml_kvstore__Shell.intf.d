lib/kvstore/shell.mli: Nvml_runtime
