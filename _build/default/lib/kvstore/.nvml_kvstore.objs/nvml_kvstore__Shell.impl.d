lib/kvstore/shell.ml: Fmt Int64 List Nvml_arch Nvml_core Nvml_runtime Nvml_structures String
