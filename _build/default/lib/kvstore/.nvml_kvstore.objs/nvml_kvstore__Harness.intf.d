lib/kvstore/harness.mli: Nvml_arch Nvml_core Nvml_runtime Nvml_structures Nvml_ycsb
