lib/kvstore/harness.ml: Array Int64 List Nvml_arch Nvml_core Nvml_runtime Nvml_simmem Nvml_structures Nvml_ycsb Random String
