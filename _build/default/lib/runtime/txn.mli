(** Persistent undo-log transactions — the crash-consistency layer the
    paper's Section VI assumes the application provides.

    The undo log lives inside the pool, so it survives crashes; every
    tracked store first appends (cell, previous value) to the log, and
    a crash that interrupts an active transaction is healed by
    {!recover}, which replays the log backwards. *)

module Ptr = Nvml_core.Ptr

type t

exception Log_full
exception Not_active
exception Already_active

val default_capacity : int

val create : Runtime.t -> pool:int -> ?capacity:int -> unit -> t
(** Allocate a fresh log inside [pool]. *)

val header : t -> Ptr.t
(** The log object's handle — anchor it (e.g. in the pool root) so
    {!attach} can find it after a restart. *)

val attach : Runtime.t -> Ptr.t -> t

val is_active : t -> bool
val count : t -> int
(** Entries currently in the log. *)

val begin_ : t -> unit
(** @raise Already_active on nested transactions. *)

val store_word : t -> site:Site.t -> Ptr.t -> off:int -> int64 -> unit
(** Logged store; the target must be pool memory.
    @raise Not_active outside a transaction.
    @raise Log_full past the log capacity. *)

val store_ptr : t -> site:Site.t -> Ptr.t -> off:int -> Ptr.t -> unit

val commit : t -> unit
val abort : t -> unit
(** Roll every logged store back, newest first. *)

type recovery = Clean | Rolled_back of int

val recover : t -> recovery
(** Post-crash: undo an interrupted transaction if the log is active. *)

val run : t -> (unit -> 'a) -> 'a
(** Run the function transactionally: commit on return, roll back and
    re-raise on exception. *)
