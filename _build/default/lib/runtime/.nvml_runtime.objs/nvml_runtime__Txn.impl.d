lib/runtime/txn.ml: Int64 Nvml_core Runtime Site
