lib/runtime/site.mli: Fmt
