lib/runtime/runtime.mli: Fmt Nvml_arch Nvml_core Nvml_pool Nvml_simmem Site
