lib/runtime/site.ml: Fmt List String
