lib/runtime/runtime.ml: Fmt Hashtbl Int64 List Nvml_arch Nvml_core Nvml_pool Nvml_simmem Option Queue Site
