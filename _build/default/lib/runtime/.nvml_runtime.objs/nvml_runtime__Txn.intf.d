lib/runtime/txn.mli: Nvml_core Runtime Site
