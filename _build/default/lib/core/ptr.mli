(** User-transparent persistent pointer representation (paper, Fig. 2).

    Every pointer is a 64-bit word.  Bit 63 selects the interpretation
    of the remaining bits:

    - bit 63 = 0: {e virtual-address format} — bits 0..47 are a virtual
      address, and bit 47 tells whether it lies in the DRAM half (0) or
      the NVM half (1) of the address space;
    - bit 63 = 1: {e relative-address format} — bits 32..62 hold a
      31-bit persistent-pool ID and bits 0..31 a 32-bit intra-pool byte
      offset.

    Because bit 63 is the sign bit of an [int64], discriminating the two
    formats is a single sign test. *)

type t = int64
(** A pointer value, in either format. *)

val null : t
(** The null pointer (all zero — null in both interpretations). *)

(** Format of a pointer value — what the paper's [determineY] returns. *)
type format = Virtual | Relative

type location = Nvml_simmem.Layout.region = Dram | Nvm
(** Where the cell a pointer designates lives — what [determineX]
    returns. *)

val equal_format : format -> format -> bool
val pp_format : format Fmt.t

val is_relative : t -> bool
(** [is_relative p] is the bit-63 test: one instruction. *)

val is_virtual : t -> bool
val is_null : t -> bool
val format : t -> format

val max_pool_id : int
(** Largest representable pool ID: [2^31 - 1]. *)

val max_pool_size : int64
(** Pool size limit imposed by the 32-bit offset field: 4 GiB. *)

val make_relative : pool:int -> offset:int64 -> t
(** Pack a pool ID and byte offset into relative format.
    @raise Invalid_argument if either field is out of range. *)

val pool_of : t -> int
(** Pool ID of a relative pointer.  Undefined on virtual pointers. *)

val offset_of : t -> int64
(** Intra-pool offset of a relative pointer. *)

val location : t -> location
(** [determineX]: a relative pointer designates NVM; a virtual address
    is classified by bit 47. *)

val add : t -> int64 -> t
(** Byte-granular pointer arithmetic; format-preserving (it moves the
    address in virtual format and the offset in relative format). *)

val sub : t -> int64 -> t

val same_pool : t -> t -> bool
(** Both relative and into the same pool — the case where comparisons
    and differences need no translation. *)

val pp : t Fmt.t
val to_string : t -> string
val equal_raw : t -> t -> bool
val compare_raw : t -> t -> int
