(* User-transparent persistent pointer representation (paper, Fig. 2).

   Every pointer is a 64-bit word.  Bit 63 selects the interpretation of
   the other 63 bits:

     bit 63 = 0   virtual-address format: bits 0..47 are a virtual
                  address; bit 47 tells whether the address is in the
                  DRAM half (0) or the NVM half (1) of the space.
     bit 63 = 1   relative-address format: bits 32..62 hold a 31-bit
                  persistent-pool ID and bits 0..31 a 32-bit intra-pool
                  byte offset.

   Because bit 63 is the sign bit of an [int64], format discrimination is
   a single sign test. *)

module Layout = Nvml_simmem.Layout

type t = int64

let null : t = 0L

let relative_tag = Int64.min_int (* bit 63 *)

(* Format of the pointer value — the paper's determineY. *)
type format = Virtual | Relative

(* Location a memory cell lives in — the paper's determineX result. *)
type location = Layout.region = Dram | Nvm

let equal_format a b =
  match (a, b) with
  | Virtual, Virtual | Relative, Relative -> true
  | (Virtual | Relative), _ -> false

let pp_format ppf = function
  | Virtual -> Fmt.string ppf "virtual"
  | Relative -> Fmt.string ppf "relative"

let is_relative (p : t) = Int64.compare p 0L < 0
let is_virtual (p : t) = not (is_relative p)
let is_null (p : t) = Int64.equal p 0L

let format (p : t) = if is_relative p then Relative else Virtual

let max_pool_id = (1 lsl 31) - 1
let max_pool_size = Int64.shift_left 1L 32 (* 4 GiB, 32-bit offsets *)

let make_relative ~pool ~offset : t =
  if pool < 0 || pool > max_pool_id then
    Fmt.invalid_arg "Ptr.make_relative: pool id %d out of range" pool;
  if offset < 0L || offset >= max_pool_size then
    Fmt.invalid_arg "Ptr.make_relative: offset %Ld out of range" offset;
  Int64.logor relative_tag
    (Int64.logor (Int64.shift_left (Int64.of_int pool) 32) offset)

let pool_of (p : t) =
  assert (is_relative p);
  Int64.to_int (Int64.logand (Int64.shift_right_logical p 32) 0x7FFFFFFFL)

let offset_of (p : t) =
  assert (is_relative p);
  Int64.logand p 0xFFFFFFFFL

(* determineX in Fig. 3: where does the cell this pointer designates
   live?  A relative pointer necessarily designates NVM; a virtual one is
   classified by bit 47. *)
let location (p : t) : location =
  if is_relative p then Nvm else Layout.region_of_va p

(* Pointer arithmetic (p + i, p - i, ++, --, p[i] address computation).
   Works uniformly in both formats: in virtual format it moves the
   address, in relative format it moves the intra-pool offset.  The
   result keeps the operand's format (Fig. 4, additive operators). *)
let add (p : t) (bytes : int64) : t = Int64.add p bytes

let sub (p : t) (bytes : int64) : t = Int64.sub p bytes

(* Whether an [add] stayed inside the 32-bit offset field of a relative
   pointer (otherwise it silently changed the pool id — undefined
   behaviour, as is overflowing an object in C). *)
let same_pool (p : t) (q : t) =
  is_relative p && is_relative q && pool_of p = pool_of q

let pp ppf (p : t) =
  if is_null p then Fmt.string ppf "NULL"
  else if is_relative p then
    Fmt.pf ppf "rel(pool=%d, off=0x%Lx)" (pool_of p) (offset_of p)
  else Fmt.pf ppf "va(0x%Lx, %a)" p Layout.pp_region (Layout.region_of_va p)

let to_string p = Fmt.str "%a" pp p
let equal_raw (a : t) (b : t) = Int64.equal a b
let compare_raw (a : t) (b : t) = Int64.compare a b
