(* The full C11 pointer-operation semantics under user-transparent
   persistent references — every row of the paper's Fig. 4.

   Each operation accepts pointer values in either format and produces
   the result the ISO C11 standard specifies for the corresponding
   operation on plain pointers; the format differences are resolved
   internally by [Xlate] conversions exactly where the filled boxes of
   Fig. 4 place them.  Conversions are counted in the [Xlate.counters];
   dynamic-check accounting is layered on top by the runtime and the
   compiler pass, because whether a check is *executed* depends on what
   static inference resolved. *)

type comparison = Lt | Gt | Le | Ge | Eq | Ne

let eval_comparison op (c : int) =
  match op with
  | Lt -> c < 0
  | Gt -> c > 0
  | Le -> c <= 0
  | Ge -> c >= 0
  | Eq -> c = 0
  | Ne -> c <> 0

let pp_comparison ppf op =
  Fmt.string ppf
    (match op with
    | Lt -> "<"
    | Gt -> ">"
    | Le -> "<="
    | Ge -> ">="
    | Eq -> "=="
    | Ne -> "!=")

(* --- cast operators ------------------------------------------------- *)

(* (T* )p — pointer-to-pointer cast: value unchanged, format preserved. *)
let cast_ptr (p : Ptr.t) : Ptr.t = p

(* (T* )i — integer-to-pointer cast: bit pattern reinterpreted. *)
let cast_int_to_ptr (i : int64) : Ptr.t = i

(* (I)p — pointer-to-integer cast: a persistent pointer must expose its
   virtual address, not its relative bits, so that integer arithmetic on
   the result behaves as C11 prescribes (row "(I)pxr": ra2va first). *)
let cast_ptr_to_int (x : Xlate.t) (p : Ptr.t) : int64 = Xlate.ra2va x p

(* --- unary operators ------------------------------------------------ *)

(* ++p / --p / p++ / p-- with the element size of the pointed-to type.
   Raw arithmetic preserves the operand's format (Fig. 4). *)
let incr (p : Ptr.t) ~elem_size : Ptr.t = Ptr.add p (Int64.of_int elem_size)
let decr (p : Ptr.t) ~elem_size : Ptr.t = Ptr.sub p (Int64.of_int elem_size)

(* !p — logical negation; a relative pointer is never the null pointer
   (bit 63 is set), so raw zero-testing is correct in both formats. *)
let logical_not (p : Ptr.t) : bool = Ptr.is_null p

(* ~p is an integer operation on (I)p. *)
let bitwise_not (x : Xlate.t) (p : Ptr.t) : int64 =
  Int64.lognot (cast_ptr_to_int x p)

(* *p — the virtual address issued to the memory system (row "*pxr":
   ra2va before access). *)
let deref_address (x : Xlate.t) (p : Ptr.t) : int64 = Xlate.ra2va x p

(* sizeof p / alignof p are type-level and format-independent: a
   user-transparent persistent pointer is exactly one word. *)
let sizeof_ptr = 8
let alignof_ptr = 8

(* --- assignment operators ------------------------------------------- *)

(* p = q where p's cell lives at [dst] (either format): delegate to the
   Fig. 3 pointerAssignment check. *)
let assign = Checks.pointer_assignment

(* p += i / p -= i: raw, format-preserving (Fig. 4). *)
let add_assign (p : Ptr.t) (i : int64) ~elem_size : Ptr.t =
  Ptr.add p (Int64.mul i (Int64.of_int elem_size))

let sub_assign (p : Ptr.t) (i : int64) ~elem_size : Ptr.t =
  Ptr.sub p (Int64.mul i (Int64.of_int elem_size))

(* --- additive operators --------------------------------------------- *)

(* p + i, i + p, p - i: format-preserving offset arithmetic. *)
let add_int (p : Ptr.t) (i : int64) ~elem_size : Ptr.t =
  Ptr.add p (Int64.mul i (Int64.of_int elem_size))

let sub_int (p : Ptr.t) (i : int64) ~elem_size : Ptr.t =
  Ptr.sub p (Int64.mul i (Int64.of_int elem_size))

(* p - q in elements.  Fig. 4 converts mixed-format operands to virtual
   addresses; two relative pointers into the same pool may subtract raw
   offsets — same result, no translation (the "just an optimization"
   case of Section IV). *)
let diff (x : Xlate.t) (p : Ptr.t) (q : Ptr.t) ~elem_size : int64 =
  let bytes =
    if Ptr.same_pool p q then Int64.sub (Ptr.offset_of p) (Ptr.offset_of q)
    else Int64.sub (Xlate.ra2va x p) (Xlate.ra2va x q)
  in
  Int64.div bytes (Int64.of_int elem_size)

(* --- relational and equality operators ------------------------------ *)

(* p op q: C11 compares the addresses of the designated objects, so
   mixed formats are normalized to virtual addresses first (Fig. 4).
   Same-pool relative pairs compare by offset, translation-free.
   Comparisons against NULL are raw: the null pointer is all-zero in
   both interpretations and a relative pointer is never zero. *)
let compare_ptr (x : Xlate.t) op (p : Ptr.t) (q : Ptr.t) : bool =
  let c =
    if Ptr.is_null p || Ptr.is_null q then Int64.compare p q
    else if Ptr.same_pool p q then
      Int64.compare (Ptr.offset_of p) (Ptr.offset_of q)
    else Int64.compare (Xlate.ra2va x p) (Xlate.ra2va x q)
  in
  eval_comparison op c

let equal_ptr (x : Xlate.t) (p : Ptr.t) (q : Ptr.t) : bool =
  compare_ptr x Eq p q

(* --- logical and conditional operators ------------------------------ *)

(* p && e, p || e, p ? e1 : e2 all reduce to the truth value of p. *)
let is_true (p : Ptr.t) : bool = not (Ptr.is_null p)

(* --- postfix operators ---------------------------------------------- *)

(* p[i] — address of the i-th element: *(p + i). *)
let index_address (x : Xlate.t) (p : Ptr.t) (i : int64) ~elem_size : int64 =
  deref_address x (add_int p i ~elem_size)

(* p->f and dereference-then-member — address of a member at byte
   offset [field_offset]. *)
let member_address (x : Xlate.t) (p : Ptr.t) ~field_offset : int64 =
  deref_address x (Ptr.add p (Int64.of_int field_offset))

(* pxr(args) — calling through a function pointer first resolves the
   code address (row "pxr(argument list)"). *)
let call_target (x : Xlate.t) (p : Ptr.t) : int64 = Xlate.ra2va x p
