lib/core/checks.ml: Nvml_simmem Ptr Xlate
