lib/core/semantics.mli: Fmt Ptr Xlate
