lib/core/semantics.ml: Checks Fmt Int64 Ptr Xlate
