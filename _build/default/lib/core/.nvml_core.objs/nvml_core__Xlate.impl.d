lib/core/xlate.ml: Int64 Nvml_simmem Ptr
