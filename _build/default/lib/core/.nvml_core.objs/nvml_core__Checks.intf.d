lib/core/checks.mli: Ptr Xlate
