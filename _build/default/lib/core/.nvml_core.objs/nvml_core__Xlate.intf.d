lib/core/xlate.mli: Ptr
