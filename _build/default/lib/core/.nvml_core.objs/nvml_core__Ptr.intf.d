lib/core/ptr.mli: Fmt Nvml_simmem
