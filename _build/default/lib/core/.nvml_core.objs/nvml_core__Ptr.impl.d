lib/core/ptr.ml: Fmt Int64 Nvml_simmem
