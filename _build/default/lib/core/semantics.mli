(** The full C11 pointer-operation semantics under user-transparent
    persistent references — every row of the paper's Fig. 4.

    Each operation accepts pointer values in either format and produces
    the result ISO C11 specifies for the corresponding operation on
    plain pointers, resolving format differences internally exactly
    where Fig. 4's filled boxes place the conversions.  Conversions are
    counted in the {!Xlate.counters}. *)

type comparison = Lt | Gt | Le | Ge | Eq | Ne

val eval_comparison : comparison -> int -> bool
(** Interpret a [compare]-style result under a comparison operator. *)

val pp_comparison : comparison Fmt.t

(** {1 Cast operators} *)

val cast_ptr : Ptr.t -> Ptr.t
(** [(T* )p] — value unchanged, format preserved. *)

val cast_int_to_ptr : int64 -> Ptr.t
(** [(T* )i] — bit pattern reinterpreted. *)

val cast_ptr_to_int : Xlate.t -> Ptr.t -> int64
(** [(I)p] — a persistent pointer exposes its virtual address. *)

(** {1 Unary operators} *)

val incr : Ptr.t -> elem_size:int -> Ptr.t
val decr : Ptr.t -> elem_size:int -> Ptr.t

val logical_not : Ptr.t -> bool
(** [!p] — format-agnostic: a relative pointer is never null. *)

val bitwise_not : Xlate.t -> Ptr.t -> int64
val deref_address : Xlate.t -> Ptr.t -> int64
(** [*p] — the virtual address issued to the memory system. *)

val sizeof_ptr : int
val alignof_ptr : int

(** {1 Assignment operators} *)

val assign : Xlate.t -> dst:Ptr.t -> value:Ptr.t -> Ptr.t
(** [p = q] — delegates to {!Checks.pointer_assignment}. *)

val add_assign : Ptr.t -> int64 -> elem_size:int -> Ptr.t
val sub_assign : Ptr.t -> int64 -> elem_size:int -> Ptr.t

(** {1 Additive operators} *)

val add_int : Ptr.t -> int64 -> elem_size:int -> Ptr.t
val sub_int : Ptr.t -> int64 -> elem_size:int -> Ptr.t

val diff : Xlate.t -> Ptr.t -> Ptr.t -> elem_size:int -> int64
(** [p - q] in elements.  Same-pool relative pairs subtract raw
    offsets without translation. *)

(** {1 Relational and equality operators} *)

val compare_ptr : Xlate.t -> comparison -> Ptr.t -> Ptr.t -> bool
(** Mixed formats are normalized to virtual addresses; same-pool
    relative pairs compare by offset; NULL tests are raw. *)

val equal_ptr : Xlate.t -> Ptr.t -> Ptr.t -> bool

(** {1 Logical / conditional operators} *)

val is_true : Ptr.t -> bool

(** {1 Postfix operators} *)

val index_address : Xlate.t -> Ptr.t -> int64 -> elem_size:int -> int64
(** Address of [p[i]]. *)

val member_address : Xlate.t -> Ptr.t -> field_offset:int -> int64
(** Address of [p->f]. *)

val call_target : Xlate.t -> Ptr.t -> int64
(** Code address of a call through a (possibly relative) function
    pointer. *)
