(* The runtime checks of Fig. 3: [determine_x], [determine_y] and
   [pointer_assignment].  These are the software fallback the SW version
   executes at every pointer-operation site the compiler could not
   resolve statically; the HW version implements the same logic in the
   storeP functional unit. *)

module Layout = Nvml_simmem.Layout

(* determineY: format of a pointer value — one sign test. *)
let determine_y (p : Ptr.t) : Ptr.format = Ptr.format p

(* determineX: location of the cell a pointer designates.  A relative
   pointer is necessarily into NVM; a virtual address is classified by
   bit 47. *)
let determine_x (p : Ptr.t) : Ptr.location = Ptr.location p

let count_check (x : Xlate.t) =
  (Xlate.counters x).dynamic_checks <- (Xlate.counters x).dynamic_checks + 1

(* pointerAssignment(to, p) from Fig. 3: decide the representation in
   which the pointer value [value] must be stored into the cell
   designated by [dst]:

     destination in NVM  -> store relative form  (va2ra if needed)
     destination in DRAM -> store virtual form   (ra2va if needed)

   Returns the value to store.  [dst] itself may be in either format. *)
let pointer_assignment (x : Xlate.t) ~(dst : Ptr.t) ~(value : Ptr.t) : Ptr.t =
  count_check x;
  match determine_x dst with
  | Nvm -> (
      count_check x;
      match determine_y value with
      | Relative -> value
      | Virtual -> Xlate.va2ra x value)
  | Dram -> (
      count_check x;
      match determine_y value with
      | Relative -> Xlate.ra2va x value
      | Virtual -> value)

(* Resolve a pointer to the virtual address to issue to memory on a
   dereference, counting the dynamic check the SW version performs. *)
let checked_deref (x : Xlate.t) (p : Ptr.t) : int64 =
  count_check x;
  Xlate.ra2va x p
