(** The runtime checks of the paper's Fig. 3.

    These are the software fallback executed by the SW version at every
    pointer-operation site static inference could not resolve; the HW
    version implements the same logic inside the storeP functional
    unit. *)

val determine_y : Ptr.t -> Ptr.format
(** Format of a pointer value: one sign test on bit 63. *)

val determine_x : Ptr.t -> Ptr.location
(** Location of the cell a pointer designates: a relative pointer is
    necessarily into NVM; a virtual address is classified by bit 47. *)

val pointer_assignment : Xlate.t -> dst:Ptr.t -> value:Ptr.t -> Ptr.t
(** [pointer_assignment x ~dst ~value] decides the representation in
    which the pointer [value] must be stored into the cell designated by
    [dst] (itself in either format): NVM cells receive relative form,
    DRAM cells receive virtual form.  Returns the value to store and
    counts the dynamic checks performed. *)

val checked_deref : Xlate.t -> Ptr.t -> int64
(** Resolve a pointer to the virtual address to issue on a dereference,
    counting the dynamic check the SW version performs. *)

val count_check : Xlate.t -> unit
(** Record one executed dynamic check. *)
