(* Address-space layout constants shared by the whole simulator.

   The simulated machine has a 48-bit virtual address space split in two
   equal halves by bit 47: the low half backs DRAM pages, the high half
   backs NVM pages (paper, Fig. 2).  Physical memory is likewise split in
   two regions; the region of a physical frame is determined by comparing
   its frame number against [nvm_phys_frame_base]. *)

let va_bits = 48
let nvm_va_bit = 47
let page_shift = 12
let page_size = 1 lsl page_shift
let word_size = 8
let words_per_page = page_size / word_size

(* First virtual address of the NVM half: 2^47. *)
let nvm_va_base = Int64.shift_left 1L nvm_va_bit

(* One past the last valid virtual address: 2^48. *)
let va_limit = Int64.shift_left 1L va_bits

(* Physical frames [0, nvm_phys_frame_base) are DRAM; frames at or above
   it are NVM.  2^34 frames of 4 KiB = 64 TiB per region, far more than
   any simulation will touch. *)
let nvm_phys_frame_base = 1 lsl 34

type region = Dram | Nvm

let pp_region ppf = function
  | Dram -> Fmt.string ppf "DRAM"
  | Nvm -> Fmt.string ppf "NVM"

let equal_region a b =
  match (a, b) with Dram, Dram | Nvm, Nvm -> true | (Dram | Nvm), _ -> false

(* Region of a *virtual* address, per the bit-47 convention.  The argument
   must be a virtual address (bit 63 clear); relative-format pointers are
   not addresses and must be translated first. *)
let region_of_va va =
  if Int64.logand va (Int64.shift_left 1L nvm_va_bit) <> 0L then Nvm else Dram

let is_nvm_va va = equal_region (region_of_va va) Nvm

let va_in_range va = va >= 0L && va < va_limit

let page_of_va va = Int64.to_int (Int64.shift_right_logical va page_shift)

let page_offset_of_va va = Int64.to_int (Int64.logand va 0xFFFL)

let va_of_page page = Int64.shift_left (Int64.of_int page) page_shift

let is_word_aligned va = Int64.logand va 7L = 0L

let align_up_words n = (n + word_size - 1) / word_size * word_size

(* Round a byte count up to a whole number of pages. *)
let pages_of_bytes bytes = (bytes + page_size - 1) / page_size
