lib/simmem/vspace.mli: Layout
