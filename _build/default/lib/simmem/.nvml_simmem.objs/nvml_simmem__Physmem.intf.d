lib/simmem/physmem.mli: Bigarray Layout
