lib/simmem/mem.ml: Char Int64 Layout List Physmem String Vspace
