lib/simmem/physmem.ml: Bigarray Fmt Hashtbl Int64 Layout List
