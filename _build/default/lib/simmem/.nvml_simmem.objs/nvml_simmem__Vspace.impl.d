lib/simmem/vspace.ml: Hashtbl Int64 Layout List
