lib/simmem/layout.ml: Fmt Int64
