lib/simmem/mem.mli: Layout Physmem Vspace
