lib/simmem/layout.mli: Fmt
