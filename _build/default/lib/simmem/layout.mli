(** Address-space layout constants shared by the whole simulator.

    The simulated machine has a 48-bit virtual address space split into
    two equal halves by bit 47 — the low half backs DRAM pages, the high
    half backs NVM pages (paper, Fig. 2) — and a physical frame space
    likewise split by {!nvm_phys_frame_base}. *)

val va_bits : int
val nvm_va_bit : int
val page_shift : int
val page_size : int
val word_size : int
val words_per_page : int

val nvm_va_base : int64
(** First virtual address of the NVM half: [2^47]. *)

val va_limit : int64
(** One past the last valid virtual address: [2^48]. *)

val nvm_phys_frame_base : int
(** Physical frames at or above this number are NVM. *)

type region = Dram | Nvm

val pp_region : region Fmt.t
val equal_region : region -> region -> bool

val region_of_va : int64 -> region
(** Classify a {e virtual address} by bit 47.  The argument must be in
    virtual-address format (bit 63 clear). *)

val is_nvm_va : int64 -> bool
val va_in_range : int64 -> bool
val page_of_va : int64 -> int
val page_offset_of_va : int64 -> int
val va_of_page : int -> int64
val is_word_aligned : int64 -> bool
val align_up_words : int -> int
val pages_of_bytes : int -> int
