(* The combined simulated memory: physical frames plus one process
   address space, with word- and byte-granular accessors keyed by virtual
   address.  This is the functional backing store; timing is modeled
   separately in [nvml_arch] from the event stream the runtime emits. *)

type t = { phys : Physmem.t; vspace : Vspace.t }

exception Unaligned of int64

let create () = { phys = Physmem.create (); vspace = Vspace.create () }

let phys t = t.phys
let vspace t = t.vspace

(* Map [bytes] fresh bytes of [region] memory at a fresh virtual base.
   Returns the base VA.  Physical frames come from the matching region. *)
let map_fresh t region bytes =
  let base = Vspace.reserve t.vspace region bytes in
  let frames = Physmem.alloc_frames t.phys region (Layout.pages_of_bytes bytes) in
  Vspace.map_range t.vspace ~base ~frames;
  base

(* Map an existing list of physical frames (e.g. a persistent pool's
   frames after restart) at a fresh virtual base in the NVM half. *)
let map_existing t region frames =
  let bytes = List.length frames * Layout.page_size in
  let base = Vspace.reserve t.vspace region bytes in
  Vspace.map_range t.vspace ~base ~frames;
  base

let unmap t ~base ~bytes =
  Vspace.unmap_range t.vspace ~base ~pages:(Layout.pages_of_bytes bytes)

let check_word_aligned va =
  if not (Layout.is_word_aligned va) then raise (Unaligned va)

(* Translate a virtual address; raises [Vspace.Fault] if unmapped. *)
let phys_of_va t va =
  let frame, offset = Vspace.translate_exn t.vspace va in
  Physmem.phys_addr_of ~frame ~offset

let read_word t va =
  check_word_aligned va;
  let frame, offset = Vspace.translate_exn t.vspace va in
  Physmem.read_word t.phys ~frame ~word_index:(offset / Layout.word_size)

let write_word t va value =
  check_word_aligned va;
  let frame, offset = Vspace.translate_exn t.vspace va in
  Physmem.write_word t.phys ~frame ~word_index:(offset / Layout.word_size) value

let read_byte t va =
  let word = read_word t (Int64.logand va (Int64.lognot 7L)) in
  let shift = 8 * Int64.to_int (Int64.logand va 7L) in
  Int64.to_int (Int64.logand (Int64.shift_right_logical word shift) 0xFFL)

let write_byte t va byte =
  let aligned = Int64.logand va (Int64.lognot 7L) in
  let shift = 8 * Int64.to_int (Int64.logand va 7L) in
  let mask = Int64.shift_left 0xFFL shift in
  let old = read_word t aligned in
  let cleared = Int64.logand old (Int64.lognot mask) in
  let inserted = Int64.shift_left (Int64.of_int (byte land 0xFF)) shift in
  write_word t aligned (Int64.logor cleared inserted)

let read_f64 t va = Int64.float_of_bits (read_word t va)
let write_f64 t va x = write_word t va (Int64.bits_of_float x)

(* Fixed-width string helpers: store up to [len] bytes starting at [va].
   Used by the key-value harness for 8-byte keys/values. *)
let write_string t va s =
  String.iteri
    (fun i c -> write_byte t (Int64.add va (Int64.of_int i)) (Char.code c))
    s

let read_string t va len =
  String.init len (fun i ->
      Char.chr (read_byte t (Int64.add va (Int64.of_int i))))

let crash t =
  Physmem.crash t.phys;
  Vspace.crash t.vspace
