(* A process virtual address space: a page table mapping virtual pages to
   physical frames, plus simple bump reservations for fresh mapping bases
   in each half of the address space.

   The page table is volatile kernel state: a simulated crash clears it;
   persistent pools are re-mapped (possibly at different bases) when they
   are re-opened after restart. *)

exception Fault of int64
(* Raised on access to an unmapped virtual address. *)

type t = {
  page_table : (int, int) Hashtbl.t; (* virtual page -> physical frame *)
  mutable dram_brk : int64; (* next fresh VA in the DRAM half *)
  mutable nvm_brk : int64; (* next fresh VA in the NVM half *)
}

let create () =
  {
    page_table = Hashtbl.create 4096;
    (* Leave the first page unmapped so VA 0 (NULL) always faults. *)
    dram_brk = Int64.of_int Layout.page_size;
    nvm_brk = Layout.nvm_va_base;
  }

let reserve t region bytes =
  let size = Int64.of_int (Layout.pages_of_bytes bytes * Layout.page_size) in
  match region with
  | Layout.Dram ->
      let base = t.dram_brk in
      t.dram_brk <- Int64.add base size;
      if t.dram_brk >= Layout.nvm_va_base then
        invalid_arg "Vspace.reserve: DRAM half exhausted";
      base
  | Layout.Nvm ->
      let base = t.nvm_brk in
      t.nvm_brk <- Int64.add base size;
      if t.nvm_brk >= Layout.va_limit then
        invalid_arg "Vspace.reserve: NVM half exhausted";
      base

(* Skip some pages in the NVM half, so that re-opened pools land at a
   different base than before — exercising pointer relocatability. *)
let skew_nvm_brk t pages =
  t.nvm_brk <-
    Int64.add t.nvm_brk (Int64.of_int (pages * Layout.page_size))

let map_page t ~vpage ~frame = Hashtbl.replace t.page_table vpage frame

let map_range t ~base ~frames =
  assert (Int64.logand base (Int64.of_int (Layout.page_size - 1)) = 0L);
  List.iteri
    (fun i frame -> map_page t ~vpage:(Layout.page_of_va base + i) ~frame)
    frames

let unmap_range t ~base ~pages =
  let first = Layout.page_of_va base in
  for vpage = first to first + pages - 1 do
    Hashtbl.remove t.page_table vpage
  done

let translate t va =
  match Hashtbl.find_opt t.page_table (Layout.page_of_va va) with
  | Some frame -> Some (frame, Layout.page_offset_of_va va)
  | None -> None

let translate_exn t va =
  match translate t va with Some x -> x | None -> raise (Fault va)

let is_mapped t va = translate t va <> None

let mapped_pages t = Hashtbl.length t.page_table

(* Crash: all virtual mappings are volatile kernel state and vanish.
   The bump pointers are reset too — a fresh process address space. *)
let crash t =
  Hashtbl.reset t.page_table;
  t.dram_brk <- Int64.of_int Layout.page_size;
  t.nvm_brk <- Layout.nvm_va_base
