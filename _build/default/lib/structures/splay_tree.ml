(* The Splay benchmark: a self-adjusting binary search tree with
   bottom-up splaying (zig / zig-zig / zig-zag) through parent pointers.
   Under the YCSB "latest" distribution the splaying keeps hot keys near
   the root — and writes to the root region on every operation, which is
   why the paper observes its largest HW overhead (~12 %) here. *)

module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Ptr = Nvml_core.Ptr

let name = "Splay"
let description = "splay tree, bottom-up splaying with parent pointers"

(* Node layout. *)
let o_key = 0
let o_value = 8
let o_left = 16
let o_right = 24
let o_parent = 32
let node_size = 40

(* Header layout. *)
let h_root = 0
let h_size = 8
let header_size = 16

type t = { rt : Runtime.t; region : Runtime.region; header : Ptr.t }

let s_hdr = Site.make "splay.header"
let s_search = Site.make "splay.search"
let s_child = Site.make "splay.child"
let s_node = Site.make "splay.node"
let s_rot = Site.make "splay.rotate"
let s_splay = Site.make "splay.splay"

let create rt region =
  let header = Runtime.alloc_in rt region header_size in
  Runtime.store_ptr rt ~site:s_hdr header ~off:h_root Ptr.null;
  Runtime.store_word rt ~site:s_hdr header ~off:h_size 0L;
  { rt; region; header }

let header t = t.header
let attach rt header =
  { rt; region = Runtime.region_of_ptr rt header; header }

let size t =
  Int64.to_int (Runtime.load_word t.rt ~site:s_hdr t.header ~off:h_size)

let set_size t n =
  Runtime.store_word t.rt ~site:s_hdr t.header ~off:h_size (Int64.of_int n)

let is_null t node = Runtime.ptr_is_null t.rt ~site:s_search node
let eq t a b = Runtime.ptr_eq t.rt ~site:s_child a b

let left t n = Runtime.load_ptr t.rt ~site:s_child n ~off:o_left
let right t n = Runtime.load_ptr t.rt ~site:s_child n ~off:o_right
let parent t n = Runtime.load_ptr t.rt ~site:s_child n ~off:o_parent
let set_left t n v = Runtime.store_ptr t.rt ~site:s_child n ~off:o_left v
let set_right t n v = Runtime.store_ptr t.rt ~site:s_child n ~off:o_right v
let set_parent t n v = Runtime.store_ptr t.rt ~site:s_child n ~off:o_parent v

let set_root t node =
  Runtime.store_ptr t.rt ~site:s_hdr t.header ~off:h_root node;
  if not (Runtime.branch t.rt ~site:s_hdr (is_null t node)) then
    set_parent t node Ptr.null

let root t = Runtime.load_ptr t.rt ~site:s_hdr t.header ~off:h_root

(* Rotate [x] up over its parent, preserving BST order and fixing the
   grandparent link. *)
let rotate t x =
  let rt = t.rt in
  let p = parent t x in
  let g = parent t p in
  let x_is_left = eq t x (left t p) in
  if Runtime.branch rt ~site:s_rot x_is_left then begin
    let b = right t x in
    set_left t p b;
    if not (Runtime.branch rt ~site:s_rot (is_null t b)) then set_parent t b p;
    set_right t x p
  end
  else begin
    let b = left t x in
    set_right t p b;
    if not (Runtime.branch rt ~site:s_rot (is_null t b)) then set_parent t b p;
    set_left t x p
  end;
  set_parent t p x;
  set_parent t x g;
  if Runtime.branch rt ~site:s_rot (is_null t g) then
    Runtime.store_ptr rt ~site:s_hdr t.header ~off:h_root x
  else if Runtime.branch rt ~site:s_rot (eq t p (left t g)) then set_left t g x
  else set_right t g x

(* Splay [x] to the root. *)
let splay t x =
  let rt = t.rt in
  let continue = ref true in
  while !continue do
    let p = parent t x in
    if Runtime.branch rt ~site:s_splay (is_null t p) then continue := false
    else begin
      let g = parent t p in
      if Runtime.branch rt ~site:s_splay (is_null t g) then rotate t x (* zig *)
      else begin
        let p_is_left = eq t p (left t g) in
        let x_is_left = eq t x (left t p) in
        Runtime.instr rt 1;
        if Runtime.branch rt ~site:s_splay (p_is_left = x_is_left) then begin
          (* zig-zig: rotate parent first *)
          rotate t p;
          rotate t x
        end
        else begin
          (* zig-zag: rotate x twice *)
          rotate t x;
          rotate t x
        end
      end
    end
  done

(* Walk down to [key]; returns the node if present and the last visited
   node otherwise (to be splayed either way). *)
let descend t key =
  let rt = t.rt in
  let rec go node last =
    if Runtime.branch rt ~site:s_search (is_null t node) then (None, last)
    else
      let k = Runtime.load_word rt ~site:s_search node ~off:o_key in
      Runtime.instr rt 1;
      if Runtime.branch rt ~site:s_search (Int64.equal key k) then
        (Some node, Some node)
      else if Runtime.branch rt ~site:s_search (key < k) then
        go (left t node) (Some node)
      else go (right t node) (Some node)
  in
  go (root t) None

let find t key =
  match descend t key with
  | Some node, _ ->
      splay t node;
      Some (Runtime.load_word t.rt ~site:s_node node ~off:o_value)
  | None, Some last ->
      splay t last;
      None
  | None, None -> None

let insert t ~key ~value =
  let rt = t.rt in
  match descend t key with
  | Some node, _ ->
      Runtime.store_word rt ~site:s_node node ~off:o_value value;
      splay t node
  | None, last ->
      let node = Runtime.alloc_in rt t.region node_size in
      Runtime.store_word rt ~site:s_node node ~off:o_key key;
      Runtime.store_word rt ~site:s_node node ~off:o_value value;
      Runtime.store_ptr rt ~site:s_node node ~off:o_left Ptr.null;
      Runtime.store_ptr rt ~site:s_node node ~off:o_right Ptr.null;
      (match last with
      | None ->
          Runtime.store_ptr rt ~site:s_node node ~off:o_parent Ptr.null;
          set_root t node
      | Some p ->
          Runtime.store_ptr rt ~site:s_node node ~off:o_parent p;
          let pk = Runtime.load_word rt ~site:s_search p ~off:o_key in
          Runtime.instr rt 1;
          if Runtime.branch rt ~site:s_search (key < pk) then set_left t p node
          else set_right t p node;
          splay t node);
      set_size t (size t + 1)

(* Splay the maximum of the subtree rooted at [node] to that subtree's
   root (the subtree is detached: its root has a null parent). *)
let splay_max t node =
  let rec go n =
    let r = right t n in
    if Runtime.branch t.rt ~site:s_search (is_null t r) then n else go r
  in
  let m = go node in
  splay t m;
  m

let remove t key =
  let rt = t.rt in
  match descend t key with
  | None, Some last ->
      splay t last;
      false
  | None, None -> false
  | Some node, _ ->
      splay t node;
      let l = left t node in
      let r = right t node in
      (if Runtime.branch rt ~site:s_search (is_null t l) then set_root t r
       else begin
         set_parent t l Ptr.null;
         let m = splay_max t l in
         (* m is now the root of the left subtree and has no right child. *)
         set_right t m r;
         if not (Runtime.branch rt ~site:s_search (is_null t r)) then
           set_parent t r m;
         set_root t m
       end);
      Runtime.dealloc rt node;
      set_size t (size t - 1);
      true

let iter t f =
  let rt = t.rt in
  let rec go node =
    if not (Runtime.ptr_is_null rt ~site:s_search node) then begin
      go (left t node);
      let key = Runtime.load_word rt ~site:s_node node ~off:o_key in
      let value = Runtime.load_word rt ~site:s_node node ~off:o_value in
      f ~key ~value;
      go (right t node)
    end
  in
  go (root t)

(* BST order, parent-link symmetry and size. *)
let check_invariants t =
  let rt = t.rt in
  let count = ref 0 in
  let rec check node expected_parent lo hi =
    if not (Runtime.ptr_is_null rt ~site:s_search node) then begin
      incr count;
      let k = Runtime.load_word rt ~site:s_node node ~off:o_key in
      (match lo with
      | Some l when k <= l -> failwith "Splay: BST order violated (low)"
      | _ -> ());
      (match hi with
      | Some h when k >= h -> failwith "Splay: BST order violated (high)"
      | _ -> ());
      if not (Runtime.ptr_eq rt ~site:s_child (parent t node) expected_parent)
      then failwith "Splay: parent link broken";
      check (left t node) node lo (Some k);
      check (right t node) node (Some k) hi
    end
  in
  check (root t) Ptr.null None None;
  if !count <> size t then failwith "Splay: size mismatch"
