(* An extended-set structure: a fixed-stride radix tree (16-ary trie)
   over 64-bit keys — 4 bits consumed per level, 16 levels to a leaf.
   Lookups are pure pointer chasing with no comparisons, a different
   access mix from the search trees.  Empty subtrees are pruned on
   removal.

   Interior node: 16 child pointers (128 bytes).
   Leaf node: value(0), present flag(8). *)

module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Ptr = Nvml_core.Ptr

let name = "Radix"
let description = "16-ary radix tree over 64-bit keys, 4 bits per level"

let fanout = 16
let levels = 16
let node_size = fanout * 8

let l_value = 0
let l_present = 8
let leaf_size = 16

let h_root = 0
let h_size = 8
let header_size = 16

type t = { rt : Runtime.t; region : Runtime.region; header : Ptr.t }

let s_hdr = Site.make "radix.header"
let s_child = Site.make "radix.child"
let s_leaf = Site.make "radix.leaf"
let s_node = Site.make "radix.node"

(* 4-bit digit of [key] at [level] (most significant first). *)
let digit key level =
  Int64.to_int
    (Int64.logand (Int64.shift_right_logical key ((levels - 1 - level) * 4)) 0xFL)

let new_interior t =
  let n = Runtime.alloc_in t.rt t.region node_size in
  for i = 0 to fanout - 1 do
    Runtime.store_ptr t.rt ~site:s_node n ~off:(i * 8) Ptr.null
  done;
  n

let create rt region =
  let header = Runtime.alloc_in rt region header_size in
  let t = { rt; region; header } in
  Runtime.store_ptr rt ~site:s_hdr header ~off:h_root (new_interior t);
  Runtime.store_word rt ~site:s_hdr header ~off:h_size 0L;
  t

let header t = t.header

let attach rt header =
  { rt; region = Runtime.region_of_ptr rt header; header }

let size t =
  Int64.to_int (Runtime.load_word t.rt ~site:s_hdr t.header ~off:h_size)

let set_size t n =
  Runtime.store_word t.rt ~site:s_hdr t.header ~off:h_size (Int64.of_int n)

let root t = Runtime.load_ptr t.rt ~site:s_hdr t.header ~off:h_root
let child t n i = Runtime.load_ptr t.rt ~site:s_child n ~off:(i * 8)
let set_child t n i v = Runtime.store_ptr t.rt ~site:s_child n ~off:(i * 8) v

let find t key =
  let rt = t.rt in
  let rec go n level =
    if Runtime.branch rt ~site:s_child (Runtime.ptr_is_null rt ~site:s_child n)
    then None
    else if level = levels then
      if
        Int64.equal (Runtime.load_word rt ~site:s_leaf n ~off:l_present) 1L
      then Some (Runtime.load_word rt ~site:s_leaf n ~off:l_value)
      else None
    else begin
      Runtime.instr rt 2 (* digit extraction *);
      go (child t n (digit key level)) (level + 1)
    end
  in
  go (root t) 0

let insert t ~key ~value =
  let rt = t.rt in
  let rec go n level =
    if level = levels then begin
      if
        not
          (Int64.equal (Runtime.load_word rt ~site:s_leaf n ~off:l_present) 1L)
      then begin
        Runtime.store_word rt ~site:s_leaf n ~off:l_present 1L;
        set_size t (size t + 1)
      end;
      Runtime.store_word rt ~site:s_leaf n ~off:l_value value
    end
    else begin
      Runtime.instr rt 2;
      let d = digit key level in
      let next = child t n d in
      let next =
        if Runtime.branch rt ~site:s_child (Runtime.ptr_is_null rt ~site:s_child next)
        then begin
          let fresh =
            if level = levels - 1 then begin
              let leaf = Runtime.alloc_in rt t.region leaf_size in
              Runtime.store_word rt ~site:s_leaf leaf ~off:l_present 0L;
              Runtime.store_word rt ~site:s_leaf leaf ~off:l_value 0L;
              leaf
            end
            else new_interior t
          in
          set_child t n d fresh;
          fresh
        end
        else next
      in
      go next (level + 1)
    end
  in
  go (root t) 0

(* Remove with pruning: empty interior nodes along the path are freed.
   Returns whether the subtree became empty. *)
let remove t key =
  let rt = t.rt in
  let removed = ref false in
  (* Returns true when [n] is now empty and should be unlinked. *)
  let rec go n level =
    if Runtime.ptr_is_null rt ~site:s_child n then false
    else if level = levels then begin
      if Int64.equal (Runtime.load_word rt ~site:s_leaf n ~off:l_present) 1L
      then begin
        removed := true;
        Runtime.dealloc rt n;
        true
      end
      else false
    end
    else begin
      Runtime.instr rt 2;
      let d = digit key level in
      let c = child t n d in
      if go c (level + 1) then begin
        set_child t n d Ptr.null;
        (* Empty if no other children remain. *)
        let any = ref false in
        for i = 0 to fanout - 1 do
          if not (Runtime.ptr_is_null rt ~site:s_child (child t n i)) then
            any := true
        done;
        if (not !any) && level > 0 then begin
          Runtime.dealloc rt n;
          true
        end
        else false
      end
      else false
    end
  in
  ignore (go (root t) 0);
  if !removed then set_size t (size t - 1);
  !removed

let iter t f =
  let rt = t.rt in
  let rec go n level prefix =
    if not (Runtime.ptr_is_null rt ~site:s_child n) then
      if level = levels then begin
        if Int64.equal (Runtime.load_word rt ~site:s_leaf n ~off:l_present) 1L
        then f ~key:prefix ~value:(Runtime.load_word rt ~site:s_leaf n ~off:l_value)
      end
      else
        for d = 0 to fanout - 1 do
          go (child t n d) (level + 1)
            (Int64.logor (Int64.shift_left prefix 4) (Int64.of_int d))
        done
  in
  go (root t) 0 0L

(* Every stored key must reproduce through [find]; reachable leaf count
   must match the size; interior nodes must never be childless. *)
let check_invariants t =
  let rt = t.rt in
  let count = ref 0 in
  let rec walk n level =
    if not (Runtime.ptr_is_null rt ~site:s_child n) then
      if level = levels then begin
        if Int64.equal (Runtime.load_word rt ~site:s_leaf n ~off:l_present) 1L
        then incr count
        else failwith "Radix: unpruned empty leaf"
      end
      else begin
        let children = ref 0 in
        for d = 0 to fanout - 1 do
          if not (Runtime.ptr_is_null rt ~site:s_child (child t n d)) then begin
            incr children;
            walk (child t n d) (level + 1)
          end
        done;
        if !children = 0 && level > 0 then failwith "Radix: childless interior"
      end
  in
  walk (root t) 0;
  if !count <> size t then failwith "Radix: size mismatch";
  iter t (fun ~key ~value ->
      if find t key <> Some value then failwith "Radix: key does not roundtrip")
