(** First-class-module registry of the benchmark structures, in the
    order of Table III.  LL is not a key-value mapping and is driven by
    its own harness, so it is exposed separately. *)

module Hash : Intf.ORDERED_MAP
module Rb : Intf.ORDERED_MAP
module Splay : Intf.ORDERED_MAP
module Avl : Intf.ORDERED_MAP
module Sg : Intf.ORDERED_MAP

(** Extended set: structures beyond Table III (skip list, B-tree map,
    radix tree), runnable through the same harness. *)
module Skip : Intf.ORDERED_MAP
module Btree : Intf.ORDERED_MAP
module Radix : Intf.ORDERED_MAP

val maps : Intf.ordered_map list
val extended_maps : Intf.ordered_map list
val all_maps : Intf.ordered_map list
val map_names : string list

val find_map : string -> Intf.ordered_map
(** Case-insensitive lookup.  @raise Invalid_argument on unknown names. *)

val benchmark_names : string list
(** All six benchmark names, LL included. *)
