lib/structures/btree_map.mli: Nvml_core Nvml_runtime
