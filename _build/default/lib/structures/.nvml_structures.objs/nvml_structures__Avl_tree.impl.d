lib/structures/avl_tree.ml: Int64 Nvml_core Nvml_runtime
