lib/structures/splay_tree.mli: Nvml_core Nvml_runtime
