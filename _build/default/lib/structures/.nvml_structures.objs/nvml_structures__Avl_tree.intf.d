lib/structures/avl_tree.mli: Nvml_core Nvml_runtime
