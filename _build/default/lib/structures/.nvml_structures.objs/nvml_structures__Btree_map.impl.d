lib/structures/btree_map.ml: Int64 Nvml_core Nvml_runtime
