lib/structures/linked_list.mli: Nvml_core Nvml_runtime
