lib/structures/linked_list.ml: Int64 Nvml_core Nvml_runtime
