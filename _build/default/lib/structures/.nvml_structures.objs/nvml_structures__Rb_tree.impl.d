lib/structures/rb_tree.ml: Int64 Nvml_core Nvml_runtime
