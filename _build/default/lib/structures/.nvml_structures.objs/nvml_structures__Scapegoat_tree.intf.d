lib/structures/scapegoat_tree.mli: Nvml_core Nvml_runtime
