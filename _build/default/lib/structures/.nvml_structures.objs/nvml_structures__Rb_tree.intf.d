lib/structures/rb_tree.mli: Nvml_core Nvml_runtime
