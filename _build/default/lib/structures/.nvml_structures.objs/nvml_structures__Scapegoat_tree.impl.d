lib/structures/scapegoat_tree.ml: Array Int64 List Nvml_core Nvml_runtime
