lib/structures/intf.ml: Nvml_core Nvml_runtime
