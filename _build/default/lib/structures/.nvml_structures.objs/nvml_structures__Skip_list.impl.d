lib/structures/skip_list.ml: Array Hashtbl Int64 Nvml_core Nvml_runtime
