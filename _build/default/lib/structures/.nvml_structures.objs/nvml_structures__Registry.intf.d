lib/structures/registry.mli: Intf
