lib/structures/hash_table.ml: Int64 Nvml_core Nvml_runtime
