lib/structures/hash_table.mli: Nvml_core Nvml_runtime
