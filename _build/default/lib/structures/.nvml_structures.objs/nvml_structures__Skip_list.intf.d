lib/structures/skip_list.mli: Nvml_core Nvml_runtime
