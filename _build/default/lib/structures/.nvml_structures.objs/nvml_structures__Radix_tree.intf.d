lib/structures/radix_tree.mli: Nvml_core Nvml_runtime
