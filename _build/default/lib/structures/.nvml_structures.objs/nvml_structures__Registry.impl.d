lib/structures/registry.ml: Avl_tree Btree_map Fmt Hash_table Intf List Radix_tree Rb_tree Scapegoat_tree Skip_list Splay_tree String
