(* An extended-set structure: a skip list with deterministic tower
   heights (derived from a key hash, so every runtime mode sees the
   same shape).  Variable-sized nodes: a fixed prefix plus one forward
   pointer per level — the kind of layout that exercises pointer
   arithmetic over persistent objects.

   Node layout: key(0), value(8), level(16), forward[0..level-1] from
   offset 24.  Header: head-node pointer(0), size(8), list level(16).
   The head node is a full-height tower with no key. *)

module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Ptr = Nvml_core.Ptr

let name = "Skip"
let description = "skip list, deterministic tower heights"

let max_level = 16

let o_key = 0
let o_value = 8
let o_level = 16
let o_forward = 24
let node_size level = o_forward + (8 * level)

let h_head = 0
let h_size = 8
let h_level = 16
let header_size = 24

type t = { rt : Runtime.t; region : Runtime.region; header : Ptr.t }

let s_hdr = Site.make "skip.header"
let s_search = Site.make "skip.search"
let s_fwd = Site.make "skip.forward"
let s_node = Site.make "skip.node"

(* Tower height from the key bits: geometric with p = 1/2, identical in
   every mode and across restarts. *)
let level_of_key key =
  let h = Int64.mul (Int64.logxor key (Int64.shift_right_logical key 33))
      0xff51afd7ed558ccdL in
  let h = Int64.logxor h (Int64.shift_right_logical h 29) in
  let rec count lvl bits =
    if lvl >= max_level then max_level
    else if Int64.logand bits 1L = 1L then count (lvl + 1) (Int64.shift_right_logical bits 1)
    else lvl
  in
  count 1 h

let forward t node i = Runtime.load_ptr t.rt ~site:s_fwd node ~off:(o_forward + (8 * i))

let set_forward t node i v =
  Runtime.store_ptr t.rt ~site:s_fwd node ~off:(o_forward + (8 * i)) v

let create rt region =
  let header = Runtime.alloc_in rt region header_size in
  let t = { rt; region; header } in
  let head = Runtime.alloc_in rt region (node_size max_level) in
  Runtime.store_word rt ~site:s_node head ~off:o_key Int64.min_int;
  Runtime.store_word rt ~site:s_node head ~off:o_value 0L;
  Runtime.store_word rt ~site:s_node head ~off:o_level (Int64.of_int max_level);
  for i = 0 to max_level - 1 do
    set_forward t head i Ptr.null
  done;
  Runtime.store_ptr rt ~site:s_hdr header ~off:h_head head;
  Runtime.store_word rt ~site:s_hdr header ~off:h_size 0L;
  Runtime.store_word rt ~site:s_hdr header ~off:h_level 1L;
  t

let header t = t.header

let attach rt header =
  { rt; region = Runtime.region_of_ptr rt header; header }

let size t =
  Int64.to_int (Runtime.load_word t.rt ~site:s_hdr t.header ~off:h_size)

let set_size t n =
  Runtime.store_word t.rt ~site:s_hdr t.header ~off:h_size (Int64.of_int n)

let list_level t =
  Int64.to_int (Runtime.load_word t.rt ~site:s_hdr t.header ~off:h_level)

let head t = Runtime.load_ptr t.rt ~site:s_hdr t.header ~off:h_head

(* Walk down from the top level; [update.(i)] receives the rightmost
   node at level [i] whose key is smaller than [key]. *)
let find_predecessors t key update =
  let rt = t.rt in
  let node = ref (head t) in
  for i = list_level t - 1 downto 0 do
    let continue = ref true in
    while !continue do
      let next = forward t !node i in
      if Runtime.branch rt ~site:s_search (Runtime.ptr_is_null rt ~site:s_search next)
      then continue := false
      else begin
        let k = Runtime.load_word rt ~site:s_search next ~off:o_key in
        Runtime.instr rt 1;
        if Runtime.branch rt ~site:s_search (k < key) then node := next
        else continue := false
      end
    done;
    update.(i) <- !node
  done

let find_node t key =
  let update = Array.make max_level Ptr.null in
  find_predecessors t key update;
  let candidate = forward t update.(0) 0 in
  let rt = t.rt in
  if Runtime.branch rt ~site:s_search (Runtime.ptr_is_null rt ~site:s_search candidate)
  then None
  else
    let k = Runtime.load_word rt ~site:s_search candidate ~off:o_key in
    Runtime.instr rt 1;
    if Runtime.branch rt ~site:s_search (Int64.equal k key) then
      Some (candidate, update)
    else None

let find t key =
  match find_node t key with
  | Some (node, _) -> Some (Runtime.load_word t.rt ~site:s_node node ~off:o_value)
  | None -> None

let insert t ~key ~value =
  let rt = t.rt in
  match find_node t key with
  | Some (node, _) -> Runtime.store_word rt ~site:s_node node ~off:o_value value
  | None ->
      let update = Array.make max_level Ptr.null in
      find_predecessors t key update;
      let level = level_of_key key in
      (* New levels start from the head. *)
      if level > list_level t then begin
        for i = list_level t to level - 1 do
          update.(i) <- head t
        done;
        Runtime.store_word rt ~site:s_hdr t.header ~off:h_level
          (Int64.of_int level)
      end;
      let node = Runtime.alloc_in rt t.region (node_size level) in
      Runtime.store_word rt ~site:s_node node ~off:o_key key;
      Runtime.store_word rt ~site:s_node node ~off:o_value value;
      Runtime.store_word rt ~site:s_node node ~off:o_level (Int64.of_int level);
      for i = 0 to level - 1 do
        set_forward t node i (forward t update.(i) i);
        set_forward t update.(i) i node
      done;
      set_size t (size t + 1)

let remove t key =
  let rt = t.rt in
  match find_node t key with
  | None -> false
  | Some (node, update) ->
      let level =
        Int64.to_int (Runtime.load_word rt ~site:s_node node ~off:o_level)
      in
      for i = 0 to level - 1 do
        if Runtime.ptr_eq rt ~site:s_fwd (forward t update.(i) i) node then
          set_forward t update.(i) i (forward t node i)
      done;
      Runtime.dealloc rt node;
      set_size t (size t - 1);
      true

let iter t f =
  let rt = t.rt in
  let node = ref (forward t (head t) 0) in
  while not (Runtime.ptr_is_null rt ~site:s_search !node) do
    let key = Runtime.load_word rt ~site:s_node !node ~off:o_key in
    let value = Runtime.load_word rt ~site:s_node !node ~off:o_value in
    f ~key ~value;
    node := forward t !node 0
  done

(* Level-0 ordering + size, and every higher level must be a
   subsequence of level 0. *)
let check_invariants t =
  let rt = t.rt in
  (* Level 0: strictly ascending keys. *)
  let count = ref 0 in
  let node = ref (forward t (head t) 0) in
  let last = ref Int64.min_int in
  while not (Runtime.ptr_is_null rt ~site:s_search !node) do
    incr count;
    let k = Runtime.load_word rt ~site:s_node !node ~off:o_key in
    if k <= !last then failwith "Skip: level-0 order violated";
    last := k;
    node := forward t !node 0
  done;
  if !count <> size t then failwith "Skip: size mismatch";
  (* Higher levels: ascending and present at level 0. *)
  let keys0 = Hashtbl.create 64 in
  iter t (fun ~key ~value:_ -> Hashtbl.replace keys0 key ());
  for i = 1 to list_level t - 1 do
    let node = ref (forward t (head t) i) in
    let last = ref Int64.min_int in
    while not (Runtime.ptr_is_null rt ~site:s_search !node) do
      let k = Runtime.load_word rt ~site:s_node !node ~off:o_key in
      if k <= !last then failwith "Skip: upper-level order violated";
      if not (Hashtbl.mem keys0 k) then
        failwith "Skip: upper-level node missing from level 0";
      let lvl = Int64.to_int (Runtime.load_word rt ~site:s_node !node ~off:o_level) in
      if lvl <= i then failwith "Skip: node linked above its level";
      last := k;
      node := forward t !node i
    done
  done

let node_size = node_size 4 (* representative: a 4-level tower *)
