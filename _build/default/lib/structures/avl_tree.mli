(** The AVL benchmark: height-balanced AVL tree, laid out in simulated
    memory and driven through the runtime pointer API so every access
    flows through the timing model.  Conforms to
    {!Intf.ORDERED_MAP}. *)

module Runtime = Nvml_runtime.Runtime
module Ptr = Nvml_core.Ptr

type t

val name : string
val description : string

val node_size : int
(** Bytes per node (Table III). *)

val create : Runtime.t -> Runtime.region -> t
val header : t -> Ptr.t
val attach : Runtime.t -> Ptr.t -> t
val insert : t -> key:int64 -> value:int64 -> unit
val find : t -> int64 -> int64 option
val remove : t -> int64 -> bool
val size : t -> int
val iter : t -> (key:int64 -> value:int64 -> unit) -> unit
val check_invariants : t -> unit
