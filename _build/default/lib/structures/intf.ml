(* The common shape of the six benchmark data structures (Table III).
   Each is a from-scratch implementation laid out in simulated memory
   and driven through the runtime's pointer API, so every node access,
   pointer check and conversion flows through the timing model.

   Structures store a small header object in their region; for
   persistent instances the header is anchored in the pool's root slot,
   so [attach] can re-find a structure after a crash. *)

module type ORDERED_MAP = sig
  type t

  val name : string
  (* Short benchmark name, e.g. "RB". *)

  val description : string

  val create : Nvml_runtime.Runtime.t -> Nvml_runtime.Runtime.region -> t
  (* Allocate an empty structure with its header in the given region. *)

  val header : t -> Nvml_core.Ptr.t
  (* The header object pointer (store it in a pool root to persist). *)

  val attach : Nvml_runtime.Runtime.t -> Nvml_core.Ptr.t -> t
  (* Reconstruct a handle from a header pointer, e.g. after restart. *)

  val insert : t -> key:int64 -> value:int64 -> unit
  (* Insert or update the mapping for [key]. *)

  val find : t -> int64 -> int64 option

  val remove : t -> int64 -> bool
  (* Remove the mapping; returns whether the key was present. *)

  val size : t -> int

  val iter : t -> (key:int64 -> value:int64 -> unit) -> unit
  (* Visit all mappings (ascending key order for the trees). *)

  val check_invariants : t -> unit
  (* Raise [Failure] if a structural invariant is broken. *)
end

type ordered_map = (module ORDERED_MAP)
