(* The RB benchmark: a classic red-black tree (CLRS-style) with parent
   pointers.  NULL plays the role of the nil sentinel and is considered
   black; the delete fixup therefore tracks the parent of the current
   node explicitly. *)

module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Ptr = Nvml_core.Ptr

let name = "RB"
let description = "red-black tree with parent pointers"

(* Node layout. *)
let o_key = 0
let o_value = 8
let o_left = 16
let o_right = 24
let o_parent = 32
let o_color = 40
let node_size = 48

let red = 0L
let black = 1L

(* Header layout. *)
let h_root = 0
let h_size = 8
let header_size = 16

type t = { rt : Runtime.t; region : Runtime.region; header : Ptr.t }

let s_hdr = Site.make "rb.header"
let s_search = Site.make "rb.search"
let s_child = Site.make "rb.child"
let s_node = Site.make "rb.node"
let s_rot = Site.make "rb.rotate"
let s_fix = Site.make "rb.fixup"

let create rt region =
  let header = Runtime.alloc_in rt region header_size in
  Runtime.store_ptr rt ~site:s_hdr header ~off:h_root Ptr.null;
  Runtime.store_word rt ~site:s_hdr header ~off:h_size 0L;
  { rt; region; header }

let header t = t.header
let attach rt header =
  { rt; region = Runtime.region_of_ptr rt header; header }

let size t =
  Int64.to_int (Runtime.load_word t.rt ~site:s_hdr t.header ~off:h_size)

let set_size t n =
  Runtime.store_word t.rt ~site:s_hdr t.header ~off:h_size (Int64.of_int n)

let is_null t node = Runtime.ptr_is_null t.rt ~site:s_search node
let eq t a b = Runtime.ptr_eq t.rt ~site:s_child a b

let left t n = Runtime.load_ptr t.rt ~site:s_child n ~off:o_left
let right t n = Runtime.load_ptr t.rt ~site:s_child n ~off:o_right
let parent t n = Runtime.load_ptr t.rt ~site:s_child n ~off:o_parent
let set_left t n v = Runtime.store_ptr t.rt ~site:s_child n ~off:o_left v
let set_right t n v = Runtime.store_ptr t.rt ~site:s_child n ~off:o_right v
let set_parent t n v = Runtime.store_ptr t.rt ~site:s_child n ~off:o_parent v
let root t = Runtime.load_ptr t.rt ~site:s_hdr t.header ~off:h_root
let set_root t v = Runtime.store_ptr t.rt ~site:s_hdr t.header ~off:h_root v

(* NULL is black. *)
let color t n =
  if Runtime.branch t.rt ~site:s_fix (is_null t n) then black
  else Runtime.load_word t.rt ~site:s_node n ~off:o_color

let set_color t n c = Runtime.store_word t.rt ~site:s_node n ~off:o_color c
let is_red t n = Int64.equal (color t n) red

let left_rotate t x =
  let rt = t.rt in
  let y = right t x in
  let b = left t y in
  set_right t x b;
  if not (Runtime.branch rt ~site:s_rot (is_null t b)) then set_parent t b x;
  let p = parent t x in
  set_parent t y p;
  if Runtime.branch rt ~site:s_rot (is_null t p) then set_root t y
  else if Runtime.branch rt ~site:s_rot (eq t x (left t p)) then set_left t p y
  else set_right t p y;
  set_left t y x;
  set_parent t x y

let right_rotate t x =
  let rt = t.rt in
  let y = left t x in
  let b = right t y in
  set_left t x b;
  if not (Runtime.branch rt ~site:s_rot (is_null t b)) then set_parent t b x;
  let p = parent t x in
  set_parent t y p;
  if Runtime.branch rt ~site:s_rot (is_null t p) then set_root t y
  else if Runtime.branch rt ~site:s_rot (eq t x (right t p)) then
    set_right t p y
  else set_left t p y;
  set_right t y x;
  set_parent t x y

let insert_fixup t z0 =
  let rt = t.rt in
  let z = ref z0 in
  while Runtime.branch rt ~site:s_fix (is_red t (parent t !z)) do
    let p = parent t !z in
    let g = parent t p in
    if Runtime.branch rt ~site:s_fix (eq t p (left t g)) then begin
      let u = right t g in
      if Runtime.branch rt ~site:s_fix (is_red t u) then begin
        set_color t p black;
        set_color t u black;
        set_color t g red;
        z := g
      end
      else begin
        (if Runtime.branch rt ~site:s_fix (eq t !z (right t p)) then begin
           z := p;
           left_rotate t !z
         end);
        let p = parent t !z in
        let g = parent t p in
        set_color t p black;
        set_color t g red;
        right_rotate t g
      end
    end
    else begin
      let u = left t g in
      if Runtime.branch rt ~site:s_fix (is_red t u) then begin
        set_color t p black;
        set_color t u black;
        set_color t g red;
        z := g
      end
      else begin
        (if Runtime.branch rt ~site:s_fix (eq t !z (left t p)) then begin
           z := p;
           right_rotate t !z
         end);
        let p = parent t !z in
        let g = parent t p in
        set_color t p black;
        set_color t g red;
        left_rotate t g
      end
    end
  done;
  set_color t (root t) black

(* Walk down to [key]; Some node when present, otherwise the would-be
   parent for an insertion. *)
let descend t key =
  let rt = t.rt in
  let rec go node last =
    if Runtime.branch rt ~site:s_search (is_null t node) then (None, last)
    else
      let k = Runtime.load_word rt ~site:s_search node ~off:o_key in
      Runtime.instr rt 1;
      if Runtime.branch rt ~site:s_search (Int64.equal key k) then
        (Some node, last)
      else if Runtime.branch rt ~site:s_search (key < k) then
        go (left t node) (Some node)
      else go (right t node) (Some node)
  in
  go (root t) None

let find t key =
  match descend t key with
  | Some node, _ ->
      Some (Runtime.load_word t.rt ~site:s_node node ~off:o_value)
  | None, _ -> None

let insert t ~key ~value =
  let rt = t.rt in
  match descend t key with
  | Some node, _ -> Runtime.store_word rt ~site:s_node node ~off:o_value value
  | None, p ->
      let z = Runtime.alloc_in rt t.region node_size in
      Runtime.store_word rt ~site:s_node z ~off:o_key key;
      Runtime.store_word rt ~site:s_node z ~off:o_value value;
      Runtime.store_ptr rt ~site:s_node z ~off:o_left Ptr.null;
      Runtime.store_ptr rt ~site:s_node z ~off:o_right Ptr.null;
      set_color t z red;
      (match p with
      | None ->
          Runtime.store_ptr rt ~site:s_node z ~off:o_parent Ptr.null;
          set_root t z
      | Some p ->
          Runtime.store_ptr rt ~site:s_node z ~off:o_parent p;
          let pk = Runtime.load_word rt ~site:s_search p ~off:o_key in
          Runtime.instr rt 1;
          if Runtime.branch rt ~site:s_search (key < pk) then set_left t p z
          else set_right t p z);
      insert_fixup t z;
      set_size t (size t + 1)

(* Replace subtree [u] by subtree [v] (v may be NULL). *)
let transplant t u v =
  let rt = t.rt in
  let p = parent t u in
  if Runtime.branch rt ~site:s_fix (is_null t p) then set_root t v
  else if Runtime.branch rt ~site:s_fix (eq t u (left t p)) then set_left t p v
  else set_right t p v;
  if not (Runtime.branch rt ~site:s_fix (is_null t v)) then set_parent t v p

let rec minimum t node =
  let l = left t node in
  if Runtime.branch t.rt ~site:s_search (is_null t l) then node
  else minimum t l

(* Delete fixup with explicit parent tracking, since NULL stands in for
   the nil sentinel. *)
let delete_fixup t x0 xp0 =
  let rt = t.rt in
  let x = ref x0 and xp = ref xp0 in
  while
    Runtime.branch rt ~site:s_fix
      ((not (eq t !x (root t))) && not (is_red t !x))
  do
    if Runtime.branch rt ~site:s_fix (eq t !x (left t !xp)) then begin
      let w = ref (right t !xp) in
      (if Runtime.branch rt ~site:s_fix (is_red t !w) then begin
         set_color t !w black;
         set_color t !xp red;
         left_rotate t !xp;
         w := right t !xp
       end);
      if
        Runtime.branch rt ~site:s_fix
          ((not (is_red t (left t !w))) && not (is_red t (right t !w)))
      then begin
        set_color t !w red;
        x := !xp;
        xp := parent t !x
      end
      else begin
        (if Runtime.branch rt ~site:s_fix (not (is_red t (right t !w)))
         then begin
           set_color t (left t !w) black;
           set_color t !w red;
           right_rotate t !w;
           w := right t !xp
         end);
        set_color t !w (color t !xp);
        set_color t !xp black;
        if not (Runtime.branch rt ~site:s_fix (is_null t (right t !w))) then
          set_color t (right t !w) black;
        left_rotate t !xp;
        x := root t;
        xp := Ptr.null
      end
    end
    else begin
      let w = ref (left t !xp) in
      (if Runtime.branch rt ~site:s_fix (is_red t !w) then begin
         set_color t !w black;
         set_color t !xp red;
         right_rotate t !xp;
         w := left t !xp
       end);
      if
        Runtime.branch rt ~site:s_fix
          ((not (is_red t (left t !w))) && not (is_red t (right t !w)))
      then begin
        set_color t !w red;
        x := !xp;
        xp := parent t !x
      end
      else begin
        (if Runtime.branch rt ~site:s_fix (not (is_red t (left t !w)))
         then begin
           set_color t (right t !w) black;
           set_color t !w red;
           left_rotate t !w;
           w := left t !xp
         end);
        set_color t !w (color t !xp);
        set_color t !xp black;
        if not (Runtime.branch rt ~site:s_fix (is_null t (left t !w))) then
          set_color t (left t !w) black;
        right_rotate t !xp;
        x := root t;
        xp := Ptr.null
      end
    end
  done;
  if not (Runtime.branch rt ~site:s_fix (is_null t !x)) then
    set_color t !x black

let remove t key =
  let rt = t.rt in
  match descend t key with
  | None, _ -> false
  | Some z, _ ->
      let y_color = ref (color t z) in
      let x = ref Ptr.null and xp = ref Ptr.null in
      let zl = left t z and zr = right t z in
      (if Runtime.branch rt ~site:s_search (is_null t zl) then begin
         x := zr;
         xp := parent t z;
         transplant t z zr
       end
       else if Runtime.branch rt ~site:s_search (is_null t zr) then begin
         x := zl;
         xp := parent t z;
         transplant t z zl
       end
       else begin
         let y = minimum t zr in
         y_color := color t y;
         x := right t y;
         if Runtime.branch rt ~site:s_fix (eq t (parent t y) z) then xp := y
         else begin
           xp := parent t y;
           transplant t y (right t y);
           set_right t y (right t z);
           set_parent t (right t y) y
         end;
         transplant t z y;
         set_left t y (left t z);
         set_parent t (left t y) y;
         set_color t y (color t z)
       end);
      if Runtime.branch rt ~site:s_fix (Int64.equal !y_color black) then
        delete_fixup t !x !xp;
      Runtime.dealloc rt z;
      set_size t (size t - 1);
      true

let iter t f =
  let rt = t.rt in
  let rec go node =
    if not (Runtime.ptr_is_null rt ~site:s_search node) then begin
      go (left t node);
      let key = Runtime.load_word rt ~site:s_node node ~off:o_key in
      let value = Runtime.load_word rt ~site:s_node node ~off:o_value in
      f ~key ~value;
      go (right t node)
    end
  in
  go (root t)

(* Full red-black invariants: BST order, no red node with a red child,
   equal black height on every path, black root, parent links, size. *)
let check_invariants t =
  let rt = t.rt in
  let count = ref 0 in
  let rec check node expected_parent lo hi =
    if Runtime.ptr_is_null rt ~site:s_search node then 1
    else begin
      incr count;
      let k = Runtime.load_word rt ~site:s_node node ~off:o_key in
      (match lo with
      | Some l when k <= l -> failwith "RB: BST order violated (low)"
      | _ -> ());
      (match hi with
      | Some h when k >= h -> failwith "RB: BST order violated (high)"
      | _ -> ());
      if not (Runtime.ptr_eq rt ~site:s_child (parent t node) expected_parent)
      then failwith "RB: parent link broken";
      let c = Runtime.load_word rt ~site:s_node node ~off:o_color in
      if Int64.equal c red then begin
        if is_red t (left t node) || is_red t (right t node) then
          failwith "RB: red node with red child"
      end;
      let bl = check (left t node) node lo (Some k) in
      let br = check (right t node) node (Some k) hi in
      if bl <> br then failwith "RB: unequal black heights";
      bl + (if Int64.equal c black then 1 else 0)
    end
  in
  let r = root t in
  if not (Runtime.ptr_is_null rt ~site:s_search r) then begin
    if is_red t r then failwith "RB: red root";
    ignore (check r Ptr.null None None)
  end;
  if !count <> size t then failwith "RB: size mismatch"
