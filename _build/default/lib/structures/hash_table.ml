(* The Hash benchmark: a separate-chaining hash table with power-of-two
   bucket arrays and doubling resize at load factor 1.0.  Buckets and
   nodes live in the structure's region, so in persistent configurations
   the bucket array itself is full of persistent pointers. *)

module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Ptr = Nvml_core.Ptr

let name = "Hash"
let description = "chained hash table, doubling resize at load factor 1"

(* Node layout. *)
let o_key = 0
let o_value = 8
let o_next = 16
let node_size = 24

(* Header layout. *)
let h_buckets = 0
let h_nbuckets = 8
let h_size = 16
let header_size = 24

let initial_buckets = 16

type t = { rt : Runtime.t; region : Runtime.region; header : Ptr.t }

let s_hdr = Site.make "hash.header"
let s_bucket = Site.make "hash.bucket"
let s_chain_null = Site.make "hash.chain.null"
let s_chain_key = Site.make "hash.chain.key"
let s_chain_next = Site.make "hash.chain.next"
let s_node = Site.make "hash.node"
let s_resize = Site.make "hash.resize"

(* A 64-bit mix (splitmix64 finalizer); the harness charges the ALU
   work it would cost. *)
let mix k =
  let k = Int64.mul (Int64.logxor k (Int64.shift_right_logical k 30))
      0xbf58476d1ce4e5b9L in
  let k = Int64.mul (Int64.logxor k (Int64.shift_right_logical k 27))
      0x94d049bb133111ebL in
  Int64.logxor k (Int64.shift_right_logical k 31)

let bucket_index rt key nbuckets =
  Runtime.instr rt 6;
  Int64.to_int (Int64.logand (mix key) (Int64.of_int (nbuckets - 1)))

let alloc_bucket_array t n =
  let rt = t.rt in
  let arr = Runtime.alloc_in rt t.region (n * 8) in
  for i = 0 to n - 1 do
    Runtime.store_ptr rt ~site:s_bucket arr ~off:(i * 8) Ptr.null
  done;
  arr

let create rt region =
  let header = Runtime.alloc_in rt region header_size in
  let t = { rt; region; header } in
  let arr = alloc_bucket_array t initial_buckets in
  Runtime.store_ptr rt ~site:s_hdr header ~off:h_buckets arr;
  Runtime.store_word rt ~site:s_hdr header ~off:h_nbuckets
    (Int64.of_int initial_buckets);
  Runtime.store_word rt ~site:s_hdr header ~off:h_size 0L;
  t

let header t = t.header
let attach rt header =
  { rt; region = Runtime.region_of_ptr rt header; header }

let size t =
  Int64.to_int (Runtime.load_word t.rt ~site:s_hdr t.header ~off:h_size)

let nbuckets t =
  Int64.to_int (Runtime.load_word t.rt ~site:s_hdr t.header ~off:h_nbuckets)

let set_size t n =
  Runtime.store_word t.rt ~site:s_hdr t.header ~off:h_size (Int64.of_int n)

(* Double the bucket array and relink every node. *)
let resize t =
  let rt = t.rt in
  let old_n = nbuckets t in
  let new_n = old_n * 2 in
  let old_arr = Runtime.load_ptr rt ~site:s_hdr t.header ~off:h_buckets in
  let new_arr = alloc_bucket_array t new_n in
  for i = 0 to old_n - 1 do
    let node = ref (Runtime.load_ptr rt ~site:s_resize old_arr ~off:(i * 8)) in
    while
      not
        (Runtime.branch rt ~site:s_resize
           (Runtime.ptr_is_null rt ~site:s_resize !node))
    do
      let next = Runtime.load_ptr rt ~site:s_resize !node ~off:o_next in
      let key = Runtime.load_word rt ~site:s_resize !node ~off:o_key in
      let b = bucket_index rt key new_n in
      let head = Runtime.load_ptr rt ~site:s_resize new_arr ~off:(b * 8) in
      Runtime.store_ptr rt ~site:s_resize !node ~off:o_next head;
      Runtime.store_ptr rt ~site:s_resize new_arr ~off:(b * 8) !node;
      node := next
    done
  done;
  Runtime.store_ptr rt ~site:s_hdr t.header ~off:h_buckets new_arr;
  Runtime.store_word rt ~site:s_hdr t.header ~off:h_nbuckets
    (Int64.of_int new_n);
  Runtime.dealloc rt old_arr

(* Find the node for [key] in its chain; None if absent. *)
let find_node t key =
  let rt = t.rt in
  let arr = Runtime.load_ptr rt ~site:s_hdr t.header ~off:h_buckets in
  let b = bucket_index rt key (nbuckets t) in
  let rec go node =
    if
      Runtime.branch rt ~site:s_chain_null
        (Runtime.ptr_is_null rt ~site:s_chain_null node)
    then None
    else
      let k = Runtime.load_word rt ~site:s_chain_key node ~off:o_key in
      Runtime.instr rt 1;
      if Runtime.branch rt ~site:s_chain_key (Int64.equal k key) then Some node
      else go (Runtime.load_ptr rt ~site:s_chain_next node ~off:o_next)
  in
  go (Runtime.load_ptr rt ~site:s_bucket arr ~off:(b * 8))

let find t key =
  match find_node t key with
  | Some node -> Some (Runtime.load_word t.rt ~site:s_node node ~off:o_value)
  | None -> None

let insert t ~key ~value =
  let rt = t.rt in
  match find_node t key with
  | Some node -> Runtime.store_word rt ~site:s_node node ~off:o_value value
  | None ->
      if Runtime.branch rt ~site:s_resize (size t >= nbuckets t) then resize t;
      let arr = Runtime.load_ptr rt ~site:s_hdr t.header ~off:h_buckets in
      let b = bucket_index rt key (nbuckets t) in
      let node = Runtime.alloc_in rt t.region node_size in
      Runtime.store_word rt ~site:s_node node ~off:o_key key;
      Runtime.store_word rt ~site:s_node node ~off:o_value value;
      let head = Runtime.load_ptr rt ~site:s_bucket arr ~off:(b * 8) in
      Runtime.store_ptr rt ~site:s_node node ~off:o_next head;
      Runtime.store_ptr rt ~site:s_bucket arr ~off:(b * 8) node;
      set_size t (size t + 1)

let remove t key =
  let rt = t.rt in
  let arr = Runtime.load_ptr rt ~site:s_hdr t.header ~off:h_buckets in
  let b = bucket_index rt key (nbuckets t) in
  let rec go ~prev node =
    if
      Runtime.branch rt ~site:s_chain_null
        (Runtime.ptr_is_null rt ~site:s_chain_null node)
    then false
    else
      let k = Runtime.load_word rt ~site:s_chain_key node ~off:o_key in
      Runtime.instr rt 1;
      if Runtime.branch rt ~site:s_chain_key (Int64.equal k key) then begin
        let next = Runtime.load_ptr rt ~site:s_chain_next node ~off:o_next in
        (match prev with
        | None -> Runtime.store_ptr rt ~site:s_bucket arr ~off:(b * 8) next
        | Some p -> Runtime.store_ptr rt ~site:s_chain_next p ~off:o_next next);
        Runtime.dealloc rt node;
        set_size t (size t - 1);
        true
      end
      else go ~prev:(Some node) (Runtime.load_ptr rt ~site:s_chain_next node ~off:o_next)
  in
  go ~prev:None (Runtime.load_ptr rt ~site:s_bucket arr ~off:(b * 8))

let iter t f =
  let rt = t.rt in
  let arr = Runtime.load_ptr rt ~site:s_hdr t.header ~off:h_buckets in
  for b = 0 to nbuckets t - 1 do
    let node = ref (Runtime.load_ptr rt ~site:s_bucket arr ~off:(b * 8)) in
    while not (Runtime.ptr_is_null rt ~site:s_chain_null !node) do
      let key = Runtime.load_word rt ~site:s_node !node ~off:o_key in
      let value = Runtime.load_word rt ~site:s_node !node ~off:o_value in
      f ~key ~value;
      node := Runtime.load_ptr rt ~site:s_chain_next !node ~off:o_next
    done
  done

(* Every chained node must hash to its bucket; the size field must
   match the number of reachable nodes. *)
let check_invariants t =
  let rt = t.rt in
  let n = nbuckets t in
  if n land (n - 1) <> 0 then failwith "Hash: bucket count not a power of 2";
  let arr = Runtime.load_ptr rt ~site:s_hdr t.header ~off:h_buckets in
  let count = ref 0 in
  for b = 0 to n - 1 do
    let node = ref (Runtime.load_ptr rt ~site:s_bucket arr ~off:(b * 8)) in
    while not (Runtime.ptr_is_null rt ~site:s_chain_null !node) do
      incr count;
      let key = Runtime.load_word rt ~site:s_node !node ~off:o_key in
      if bucket_index rt key n <> b then failwith "Hash: node in wrong bucket";
      node := Runtime.load_ptr rt ~site:s_chain_next !node ~off:o_next
    done
  done;
  if !count <> size t then failwith "Hash: size mismatch"
