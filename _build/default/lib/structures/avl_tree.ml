(* The AVL benchmark: a height-balanced binary search tree with
   recursive insert/remove and single/double rotations. *)

module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Ptr = Nvml_core.Ptr

let name = "AVL"
let description = "AVL tree, recursive rebalancing"

(* Node layout. *)
let o_key = 0
let o_value = 8
let o_left = 16
let o_right = 24
let o_height = 32
let node_size = 40

(* Header layout. *)
let h_root = 0
let h_size = 8
let header_size = 16

type t = { rt : Runtime.t; region : Runtime.region; header : Ptr.t }

let s_hdr = Site.make "avl.header"
let s_search = Site.make "avl.search"
let s_child = Site.make "avl.child"
let s_node = Site.make "avl.node"
let s_rot = Site.make "avl.rotate"
let s_bal = Site.make "avl.balance"

let create rt region =
  let header = Runtime.alloc_in rt region header_size in
  Runtime.store_ptr rt ~site:s_hdr header ~off:h_root Ptr.null;
  Runtime.store_word rt ~site:s_hdr header ~off:h_size 0L;
  { rt; region; header }

let header t = t.header
let attach rt header =
  { rt; region = Runtime.region_of_ptr rt header; header }

let size t =
  Int64.to_int (Runtime.load_word t.rt ~site:s_hdr t.header ~off:h_size)

let set_size t n =
  Runtime.store_word t.rt ~site:s_hdr t.header ~off:h_size (Int64.of_int n)

let is_null t node = Runtime.ptr_is_null t.rt ~site:s_search node

let height t node =
  if Runtime.branch t.rt ~site:s_bal (is_null t node) then 0
  else Int64.to_int (Runtime.load_word t.rt ~site:s_node node ~off:o_height)

let update_height t node =
  let hl = height t (Runtime.load_ptr t.rt ~site:s_child node ~off:o_left) in
  let hr = height t (Runtime.load_ptr t.rt ~site:s_child node ~off:o_right) in
  Runtime.instr t.rt 2;
  Runtime.store_word t.rt ~site:s_node node ~off:o_height
    (Int64.of_int (1 + max hl hr))

let balance_factor t node =
  let hl = height t (Runtime.load_ptr t.rt ~site:s_child node ~off:o_left) in
  let hr = height t (Runtime.load_ptr t.rt ~site:s_child node ~off:o_right) in
  Runtime.instr t.rt 1;
  hl - hr

(*      y            x
       / \          / \
      x   C  -->   A   y
     / \              / \
    A   B            B   C   *)
let rotate_right t y =
  let rt = t.rt in
  let x = Runtime.load_ptr rt ~site:s_rot y ~off:o_left in
  let b = Runtime.load_ptr rt ~site:s_rot x ~off:o_right in
  Runtime.store_ptr rt ~site:s_rot y ~off:o_left b;
  Runtime.store_ptr rt ~site:s_rot x ~off:o_right y;
  update_height t y;
  update_height t x;
  x

let rotate_left t x =
  let rt = t.rt in
  let y = Runtime.load_ptr rt ~site:s_rot x ~off:o_right in
  let b = Runtime.load_ptr rt ~site:s_rot y ~off:o_left in
  Runtime.store_ptr rt ~site:s_rot x ~off:o_right b;
  Runtime.store_ptr rt ~site:s_rot y ~off:o_left x;
  update_height t x;
  update_height t y;
  y

(* Rebalance [node] after an insertion/removal in one of its subtrees;
   returns the (possibly new) subtree root. *)
let rebalance t node =
  let rt = t.rt in
  update_height t node;
  let bf = balance_factor t node in
  if Runtime.branch rt ~site:s_bal (bf > 1) then begin
    let l = Runtime.load_ptr rt ~site:s_child node ~off:o_left in
    if Runtime.branch rt ~site:s_bal (balance_factor t l < 0) then
      Runtime.store_ptr rt ~site:s_child node ~off:o_left (rotate_left t l);
    rotate_right t node
  end
  else if Runtime.branch rt ~site:s_bal (bf < -1) then begin
    let r = Runtime.load_ptr rt ~site:s_child node ~off:o_right in
    if Runtime.branch rt ~site:s_bal (balance_factor t r > 0) then
      Runtime.store_ptr rt ~site:s_child node ~off:o_right (rotate_right t r);
    rotate_left t node
  end
  else node

let new_node t ~key ~value =
  let rt = t.rt in
  let node = Runtime.alloc_in rt t.region node_size in
  Runtime.store_word rt ~site:s_node node ~off:o_key key;
  Runtime.store_word rt ~site:s_node node ~off:o_value value;
  Runtime.store_ptr rt ~site:s_node node ~off:o_left Ptr.null;
  Runtime.store_ptr rt ~site:s_node node ~off:o_right Ptr.null;
  Runtime.store_word rt ~site:s_node node ~off:o_height 1L;
  node

let insert t ~key ~value =
  let rt = t.rt in
  let added = ref false in
  let rec ins node =
    if Runtime.branch rt ~site:s_search (is_null t node) then begin
      added := true;
      new_node t ~key ~value
    end
    else begin
      let k = Runtime.load_word rt ~site:s_search node ~off:o_key in
      Runtime.instr rt 1;
      if Runtime.branch rt ~site:s_search (Int64.equal key k) then begin
        Runtime.store_word rt ~site:s_node node ~off:o_value value;
        node
      end
      else if Runtime.branch rt ~site:s_search (key < k) then begin
        let l = Runtime.load_ptr rt ~site:s_child node ~off:o_left in
        Runtime.store_ptr rt ~site:s_child node ~off:o_left (ins l);
        rebalance t node
      end
      else begin
        let r = Runtime.load_ptr rt ~site:s_child node ~off:o_right in
        Runtime.store_ptr rt ~site:s_child node ~off:o_right (ins r);
        rebalance t node
      end
    end
  in
  let root = Runtime.load_ptr rt ~site:s_hdr t.header ~off:h_root in
  Runtime.store_ptr rt ~site:s_hdr t.header ~off:h_root (ins root);
  if !added then set_size t (size t + 1)

let find t key =
  let rt = t.rt in
  let rec go node =
    if Runtime.branch rt ~site:s_search (is_null t node) then None
    else
      let k = Runtime.load_word rt ~site:s_search node ~off:o_key in
      Runtime.instr rt 1;
      if Runtime.branch rt ~site:s_search (Int64.equal key k) then
        Some (Runtime.load_word rt ~site:s_node node ~off:o_value)
      else if Runtime.branch rt ~site:s_search (key < k) then
        go (Runtime.load_ptr rt ~site:s_child node ~off:o_left)
      else go (Runtime.load_ptr rt ~site:s_child node ~off:o_right)
  in
  go (Runtime.load_ptr rt ~site:s_hdr t.header ~off:h_root)

(* Remove the minimum of a non-empty subtree, returning (new root of
   the subtree, the detached minimum node). *)
let rec detach_min t node =
  let rt = t.rt in
  let l = Runtime.load_ptr rt ~site:s_child node ~off:o_left in
  if Runtime.branch rt ~site:s_search (Runtime.ptr_is_null rt ~site:s_search l)
  then (Runtime.load_ptr rt ~site:s_child node ~off:o_right, node)
  else begin
    let l', m = detach_min t l in
    Runtime.store_ptr rt ~site:s_child node ~off:o_left l';
    (rebalance t node, m)
  end

let remove t key =
  let rt = t.rt in
  let removed = ref false in
  let rec del node =
    if Runtime.branch rt ~site:s_search (is_null t node) then node
    else begin
      let k = Runtime.load_word rt ~site:s_search node ~off:o_key in
      Runtime.instr rt 1;
      if Runtime.branch rt ~site:s_search (Int64.equal key k) then begin
        removed := true;
        let l = Runtime.load_ptr rt ~site:s_child node ~off:o_left in
        let r = Runtime.load_ptr rt ~site:s_child node ~off:o_right in
        let replacement =
          if
            Runtime.branch rt ~site:s_search
              (Runtime.ptr_is_null rt ~site:s_search l)
          then r
          else if
            Runtime.branch rt ~site:s_search
              (Runtime.ptr_is_null rt ~site:s_search r)
          then l
          else begin
            (* Two children: the in-order successor replaces the node. *)
            let r', succ = detach_min t r in
            Runtime.store_ptr rt ~site:s_child succ ~off:o_left l;
            Runtime.store_ptr rt ~site:s_child succ ~off:o_right r';
            rebalance t succ
          end
        in
        Runtime.dealloc rt node;
        replacement
      end
      else if Runtime.branch rt ~site:s_search (key < k) then begin
        let l = Runtime.load_ptr rt ~site:s_child node ~off:o_left in
        Runtime.store_ptr rt ~site:s_child node ~off:o_left (del l);
        rebalance t node
      end
      else begin
        let r = Runtime.load_ptr rt ~site:s_child node ~off:o_right in
        Runtime.store_ptr rt ~site:s_child node ~off:o_right (del r);
        rebalance t node
      end
    end
  in
  let root = Runtime.load_ptr rt ~site:s_hdr t.header ~off:h_root in
  Runtime.store_ptr rt ~site:s_hdr t.header ~off:h_root (del root);
  if !removed then set_size t (size t - 1);
  !removed

let iter t f =
  let rt = t.rt in
  let rec go node =
    if not (Runtime.ptr_is_null rt ~site:s_search node) then begin
      go (Runtime.load_ptr rt ~site:s_child node ~off:o_left);
      let key = Runtime.load_word rt ~site:s_node node ~off:o_key in
      let value = Runtime.load_word rt ~site:s_node node ~off:o_value in
      f ~key ~value;
      go (Runtime.load_ptr rt ~site:s_child node ~off:o_right)
    end
  in
  go (Runtime.load_ptr rt ~site:s_hdr t.header ~off:h_root)

(* BST ordering, recorded heights, AVL balance and size must all hold. *)
let check_invariants t =
  let rt = t.rt in
  let count = ref 0 in
  let rec check node lo hi =
    if Runtime.ptr_is_null rt ~site:s_search node then 0
    else begin
      incr count;
      let k = Runtime.load_word rt ~site:s_node node ~off:o_key in
      (match lo with
      | Some l when k <= l -> failwith "AVL: BST order violated (low)"
      | _ -> ());
      (match hi with
      | Some h when k >= h -> failwith "AVL: BST order violated (high)"
      | _ -> ());
      let hl = check (Runtime.load_ptr rt ~site:s_child node ~off:o_left) lo (Some k) in
      let hr = check (Runtime.load_ptr rt ~site:s_child node ~off:o_right) (Some k) hi in
      if abs (hl - hr) > 1 then failwith "AVL: unbalanced node";
      let h = 1 + max hl hr in
      let stored =
        Int64.to_int (Runtime.load_word rt ~site:s_node node ~off:o_height)
      in
      if h <> stored then failwith "AVL: stale height";
      h
    end
  in
  ignore (check (Runtime.load_ptr rt ~site:s_hdr t.header ~off:h_root) None None);
  if !count <> size t then failwith "AVL: size mismatch"
