(* The SG benchmark: a scapegoat tree (alpha = 0.7).  No per-node
   balance metadata: inserts that land too deep trigger a search up the
   access path for a "scapegoat" ancestor whose subtree is then rebuilt
   perfectly balanced; deletions rebuild the whole tree when the size
   drops below alpha times its historical maximum. *)

module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Ptr = Nvml_core.Ptr

let name = "SG"
let description = "scapegoat tree, alpha = 0.7, subtree rebuilding"

let alpha = 0.7

(* Node layout. *)
let o_key = 0
let o_value = 8
let o_left = 16
let o_right = 24
let node_size = 32

(* Header layout. *)
let h_root = 0
let h_size = 8
let h_max_size = 16
let header_size = 24

type t = { rt : Runtime.t; region : Runtime.region; header : Ptr.t }

let s_hdr = Site.make "sg.header"
let s_search = Site.make "sg.search"
let s_child = Site.make "sg.child"
let s_node = Site.make "sg.node"
let s_rebuild = Site.make "sg.rebuild"

let create rt region =
  let header = Runtime.alloc_in rt region header_size in
  Runtime.store_ptr rt ~site:s_hdr header ~off:h_root Ptr.null;
  Runtime.store_word rt ~site:s_hdr header ~off:h_size 0L;
  Runtime.store_word rt ~site:s_hdr header ~off:h_max_size 0L;
  { rt; region; header }

let header t = t.header
let attach rt header =
  { rt; region = Runtime.region_of_ptr rt header; header }

let size t =
  Int64.to_int (Runtime.load_word t.rt ~site:s_hdr t.header ~off:h_size)

let max_size t =
  Int64.to_int (Runtime.load_word t.rt ~site:s_hdr t.header ~off:h_max_size)

let set_size t n =
  Runtime.store_word t.rt ~site:s_hdr t.header ~off:h_size (Int64.of_int n)

let set_max_size t n =
  Runtime.store_word t.rt ~site:s_hdr t.header ~off:h_max_size (Int64.of_int n)

let is_null t node = Runtime.ptr_is_null t.rt ~site:s_search node
let left t n = Runtime.load_ptr t.rt ~site:s_child n ~off:o_left
let right t n = Runtime.load_ptr t.rt ~site:s_child n ~off:o_right
let set_left t n v = Runtime.store_ptr t.rt ~site:s_child n ~off:o_left v
let set_right t n v = Runtime.store_ptr t.rt ~site:s_child n ~off:o_right v
let root t = Runtime.load_ptr t.rt ~site:s_hdr t.header ~off:h_root
let set_root t v = Runtime.store_ptr t.rt ~site:s_hdr t.header ~off:h_root v

(* Depth limit: floor(log_{1/alpha} size). *)
let depth_limit t n =
  Runtime.instr t.rt 5;
  if n <= 1 then 0
  else int_of_float (floor (log (float_of_int n) /. log (1.0 /. alpha)))

let rec subtree_size t node =
  if Runtime.branch t.rt ~site:s_rebuild (is_null t node) then 0
  else 1 + subtree_size t (left t node) + subtree_size t (right t node)

(* Flatten the subtree in order into an OCaml array of node pointers
   (compiler temporaries — stack data, not simulated memory). *)
let flatten t node =
  let acc = ref [] in
  let rec go node =
    if not (Runtime.branch t.rt ~site:s_rebuild (is_null t node)) then begin
      go (right t node);
      acc := node :: !acc;
      go (left t node)
    end
  in
  go node;
  Array.of_list !acc

(* Relink nodes [lo, hi) of the flattened array into a perfectly
   balanced subtree; returns its root. *)
let rec build_balanced t nodes lo hi =
  if lo >= hi then Ptr.null
  else begin
    let mid = (lo + hi) / 2 in
    let node = nodes.(mid) in
    Runtime.instr t.rt 3;
    set_left t node (build_balanced t nodes lo mid);
    set_right t node (build_balanced t nodes (mid + 1) hi);
    node
  end

let rebuild_subtree t node =
  let nodes = flatten t node in
  build_balanced t nodes 0 (Array.length nodes)

(* Replace [old_child] of [parent] (or the root) by [new_child]. *)
let replace_child t ~parent ~old_child ~new_child =
  match parent with
  | None -> set_root t new_child
  | Some p ->
      if
        Runtime.branch t.rt ~site:s_child
          (Runtime.ptr_eq t.rt ~site:s_child (left t p) old_child)
      then set_left t p new_child
      else set_right t p new_child

let find t key =
  let rt = t.rt in
  let rec go node =
    if Runtime.branch rt ~site:s_search (is_null t node) then None
    else
      let k = Runtime.load_word rt ~site:s_search node ~off:o_key in
      Runtime.instr rt 1;
      if Runtime.branch rt ~site:s_search (Int64.equal key k) then
        Some (Runtime.load_word rt ~site:s_node node ~off:o_value)
      else if Runtime.branch rt ~site:s_search (key < k) then go (left t node)
      else go (right t node)
  in
  go (root t)

let insert t ~key ~value =
  let rt = t.rt in
  (* Descend, recording the path root-first is not needed: leaf-first. *)
  let rec descend node path =
    if Runtime.branch rt ~site:s_search (is_null t node) then `Insert_at path
    else
      let k = Runtime.load_word rt ~site:s_search node ~off:o_key in
      Runtime.instr rt 1;
      if Runtime.branch rt ~site:s_search (Int64.equal key k) then `Found node
      else if Runtime.branch rt ~site:s_search (key < k) then
        descend (left t node) (node :: path)
      else descend (right t node) (node :: path)
  in
  match descend (root t) [] with
  | `Found node -> Runtime.store_word rt ~site:s_node node ~off:o_value value
  | `Insert_at path ->
      let node = Runtime.alloc_in rt t.region node_size in
      Runtime.store_word rt ~site:s_node node ~off:o_key key;
      Runtime.store_word rt ~site:s_node node ~off:o_value value;
      Runtime.store_ptr rt ~site:s_node node ~off:o_left Ptr.null;
      Runtime.store_ptr rt ~site:s_node node ~off:o_right Ptr.null;
      (match path with
      | [] -> set_root t node
      | p :: _ ->
          let pk = Runtime.load_word rt ~site:s_search p ~off:o_key in
          Runtime.instr rt 1;
          if Runtime.branch rt ~site:s_search (key < pk) then set_left t p node
          else set_right t p node);
      let n = size t + 1 in
      set_size t n;
      if n > max_size t then set_max_size t n;
      let depth = List.length path in
      if Runtime.branch rt ~site:s_rebuild (depth > depth_limit t n) then begin
        (* Walk up the access path looking for the scapegoat: the first
           ancestor whose child on the path holds more than alpha of its
           subtree. *)
        let rec hunt child child_size = function
          | [] -> ()
          | anc :: rest ->
              let sibling =
                if Runtime.ptr_eq rt ~site:s_child (left t anc) child then
                  right t anc
                else left t anc
              in
              let anc_size = child_size + 1 + subtree_size t sibling in
              Runtime.instr rt 4;
              if
                Runtime.branch rt ~site:s_rebuild
                  (float_of_int child_size > alpha *. float_of_int anc_size)
              then begin
                let parent = match rest with [] -> None | p :: _ -> Some p in
                let rebuilt = rebuild_subtree t anc in
                replace_child t ~parent ~old_child:anc ~new_child:rebuilt
              end
              else hunt anc anc_size rest
        in
        hunt node 1 path
      end

let remove t key =
  let rt = t.rt in
  let removed = ref false in
  (* Plain BST deletion (successor replacement), no rebalancing. *)
  let rec detach_min node =
    let l = left t node in
    if Runtime.branch rt ~site:s_search (is_null t l) then (right t node, node)
    else begin
      let l', m = detach_min l in
      set_left t node l';
      (node, m)
    end
  in
  let rec del node =
    if Runtime.branch rt ~site:s_search (is_null t node) then node
    else begin
      let k = Runtime.load_word rt ~site:s_search node ~off:o_key in
      Runtime.instr rt 1;
      if Runtime.branch rt ~site:s_search (Int64.equal key k) then begin
        removed := true;
        let l = left t node and r = right t node in
        let replacement =
          if Runtime.branch rt ~site:s_search (is_null t l) then r
          else if Runtime.branch rt ~site:s_search (is_null t r) then l
          else begin
            let r', succ = detach_min r in
            set_left t succ l;
            set_right t succ r';
            succ
          end
        in
        Runtime.dealloc rt node;
        replacement
      end
      else if Runtime.branch rt ~site:s_search (key < k) then begin
        set_left t node (del (left t node));
        node
      end
      else begin
        set_right t node (del (right t node));
        node
      end
    end
  in
  set_root t (del (root t));
  if !removed then begin
    let n = size t - 1 in
    set_size t n;
    Runtime.instr rt 3;
    if
      Runtime.branch rt ~site:s_rebuild
        (float_of_int n < alpha *. float_of_int (max_size t))
    then begin
      set_root t (rebuild_subtree t (root t));
      set_max_size t n
    end
  end;
  !removed

let iter t f =
  let rt = t.rt in
  let rec go node =
    if not (Runtime.ptr_is_null rt ~site:s_search node) then begin
      go (left t node);
      let key = Runtime.load_word rt ~site:s_node node ~off:o_key in
      let value = Runtime.load_word rt ~site:s_node node ~off:o_value in
      f ~key ~value;
      go (right t node)
    end
  in
  go (root t)

(* BST order, size accounting and the alpha-weight bound after a
   rebuild trigger point. *)
let check_invariants t =
  let rt = t.rt in
  let count = ref 0 in
  let rec check node lo hi =
    if Runtime.ptr_is_null rt ~site:s_search node then 0
    else begin
      incr count;
      let k = Runtime.load_word rt ~site:s_node node ~off:o_key in
      (match lo with
      | Some l when k <= l -> failwith "SG: BST order violated (low)"
      | _ -> ());
      (match hi with
      | Some h when k >= h -> failwith "SG: BST order violated (high)"
      | _ -> ());
      let sl = check (left t node) lo (Some k) in
      let sr = check (right t node) (Some k) hi in
      1 + sl + sr
    end
  in
  let total = check (root t) None None in
  if total <> size t then failwith "SG: size mismatch";
  if !count <> total then failwith "SG: inconsistent walk";
  if size t > max_size t then failwith "SG: size exceeds max_size"
