(* First-class-module registry of the benchmark structures, in the
   order of Table III.  LL is not a key-value mapping and is driven by
   its own harness (Section VII-A), so it is exposed separately. *)

module Hash : Intf.ORDERED_MAP = Hash_table
module Rb : Intf.ORDERED_MAP = Rb_tree
module Splay : Intf.ORDERED_MAP = Splay_tree
module Avl : Intf.ORDERED_MAP = Avl_tree
module Sg : Intf.ORDERED_MAP = Scapegoat_tree

(* Extended set: structures beyond the paper's Table III, demonstrating
   that further legacy containers run unchanged on the same runtime. *)
module Skip : Intf.ORDERED_MAP = Skip_list
module Btree : Intf.ORDERED_MAP = Btree_map
module Radix : Intf.ORDERED_MAP = Radix_tree

let maps : Intf.ordered_map list =
  [ (module Hash); (module Rb); (module Splay); (module Avl); (module Sg) ]

let extended_maps : Intf.ordered_map list =
  [ (module Skip); (module Btree); (module Radix) ]

let all_maps = maps @ extended_maps

let map_names = List.map (fun (module M : Intf.ORDERED_MAP) -> M.name) maps

let find_map name : Intf.ordered_map =
  match
    List.find_opt
      (fun (module M : Intf.ORDERED_MAP) ->
        String.lowercase_ascii M.name = String.lowercase_ascii name)
      all_maps
  with
  | Some m -> m
  | None -> Fmt.invalid_arg "unknown structure %S" name

(* All six benchmark names, LL included, as listed in Table III. *)
let benchmark_names = "LL" :: map_names
