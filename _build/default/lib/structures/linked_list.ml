(* The LL benchmark: a doubly linked list whose nodes carry two pointers
   and a 16-byte value (Table III / Section VII-A).  The evaluation
   harness builds 10,000 nodes and iterates, accumulating the values —
   a pure pointer-chasing workload with almost no computation. *)

module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Ptr = Nvml_core.Ptr

(* Node layout (byte offsets). *)
let o_next = 0
let o_prev = 8
let o_v0 = 16
let o_v1 = 24
let node_size = 32

(* Header layout. *)
let h_head = 0
let h_tail = 8
let h_len = 16
let header_size = 24

type t = { rt : Runtime.t; region : Runtime.region; header : Ptr.t }

let name = "LL"
let description = "doubly linked list, two pointers + 16-byte value per node"

(* Sites: library code reached through opaque parameters — the SW
   compiler cannot resolve pointer formats here (static = false). *)
let s_hdr = Site.make "ll.header"
let s_link = Site.make "ll.link"
let s_iter_null = Site.make "ll.iter.null"
let s_iter_next = Site.make "ll.iter.next"
let s_iter_val = Site.make "ll.iter.value"
let s_find_cmp = Site.make "ll.find.cmp"
let s_unlink = Site.make "ll.unlink"

let create rt region =
  let header = Runtime.alloc_in rt region header_size in
  Runtime.store_ptr rt ~site:s_hdr header ~off:h_head Ptr.null;
  Runtime.store_ptr rt ~site:s_hdr header ~off:h_tail Ptr.null;
  Runtime.store_word rt ~site:s_hdr header ~off:h_len 0L;
  { rt; region; header }

let header t = t.header
let attach rt header =
  { rt; region = Runtime.region_of_ptr rt header; header }

let length t =
  Int64.to_int (Runtime.load_word t.rt ~site:s_hdr t.header ~off:h_len)

let set_length t n =
  Runtime.store_word t.rt ~site:s_hdr t.header ~off:h_len (Int64.of_int n)

(* Append a node carrying the two value words at the tail. *)
let append t ~v0 ~v1 =
  let rt = t.rt in
  let node = Runtime.alloc_in rt t.region node_size in
  Runtime.store_word rt ~site:s_link node ~off:o_v0 v0;
  Runtime.store_word rt ~site:s_link node ~off:o_v1 v1;
  Runtime.store_ptr rt ~site:s_link node ~off:o_next Ptr.null;
  let tail = Runtime.load_ptr rt ~site:s_hdr t.header ~off:h_tail in
  Runtime.store_ptr rt ~site:s_link node ~off:o_prev tail;
  if Runtime.branch rt ~site:s_link (Runtime.ptr_is_null rt ~site:s_link tail)
  then Runtime.store_ptr rt ~site:s_hdr t.header ~off:h_head node
  else Runtime.store_ptr rt ~site:s_link tail ~off:o_next node;
  Runtime.store_ptr rt ~site:s_hdr t.header ~off:h_tail node;
  set_length t (length t + 1)

(* Prepend at the head. *)
let prepend t ~v0 ~v1 =
  let rt = t.rt in
  let node = Runtime.alloc_in rt t.region node_size in
  Runtime.store_word rt ~site:s_link node ~off:o_v0 v0;
  Runtime.store_word rt ~site:s_link node ~off:o_v1 v1;
  Runtime.store_ptr rt ~site:s_link node ~off:o_prev Ptr.null;
  let head = Runtime.load_ptr rt ~site:s_hdr t.header ~off:h_head in
  Runtime.store_ptr rt ~site:s_link node ~off:o_next head;
  if Runtime.branch rt ~site:s_link (Runtime.ptr_is_null rt ~site:s_link head)
  then Runtime.store_ptr rt ~site:s_hdr t.header ~off:h_tail node
  else Runtime.store_ptr rt ~site:s_link head ~off:o_prev node;
  Runtime.store_ptr rt ~site:s_hdr t.header ~off:h_head node;
  set_length t (length t + 1)

(* The benchmark kernel: iterate the list and accumulate both value
   words of every node. *)
let iterate_sum t =
  let rt = t.rt in
  let sum = ref 0L in
  let node = ref (Runtime.load_ptr rt ~site:s_hdr t.header ~off:h_head) in
  while
    not
      (Runtime.branch rt ~site:s_iter_null
         (Runtime.ptr_is_null rt ~site:s_iter_null !node))
  do
    let v0 = Runtime.load_word rt ~site:s_iter_val !node ~off:o_v0 in
    let v1 = Runtime.load_word rt ~site:s_iter_val !node ~off:o_v1 in
    Runtime.instr rt 2;
    sum := Int64.add !sum (Int64.add v0 v1);
    node := Runtime.load_ptr rt ~site:s_iter_next !node ~off:o_next
  done;
  !sum

let iter t f =
  let rt = t.rt in
  let node = ref (Runtime.load_ptr rt ~site:s_hdr t.header ~off:h_head) in
  while
    not
      (Runtime.branch rt ~site:s_iter_null
         (Runtime.ptr_is_null rt ~site:s_iter_null !node))
  do
    let v0 = Runtime.load_word rt ~site:s_iter_val !node ~off:o_v0 in
    let v1 = Runtime.load_word rt ~site:s_iter_val !node ~off:o_v1 in
    f ~v0 ~v1;
    node := Runtime.load_ptr rt ~site:s_iter_next !node ~off:o_next
  done

(* Find the first node whose first value word equals [v0]. *)
let find t v0 =
  let rt = t.rt in
  let rec go node =
    if
      Runtime.branch rt ~site:s_iter_null
        (Runtime.ptr_is_null rt ~site:s_iter_null node)
    then None
    else
      let v = Runtime.load_word rt ~site:s_find_cmp node ~off:o_v0 in
      Runtime.instr rt 1;
      if Runtime.branch rt ~site:s_find_cmp (Int64.equal v v0) then Some node
      else go (Runtime.load_ptr rt ~site:s_iter_next node ~off:o_next)
  in
  go (Runtime.load_ptr rt ~site:s_hdr t.header ~off:h_head)

(* Unlink and free a node found by [find]. *)
let remove_node t node =
  let rt = t.rt in
  let prev = Runtime.load_ptr rt ~site:s_unlink node ~off:o_prev in
  let next = Runtime.load_ptr rt ~site:s_unlink node ~off:o_next in
  if Runtime.branch rt ~site:s_unlink (Runtime.ptr_is_null rt ~site:s_unlink prev)
  then Runtime.store_ptr rt ~site:s_hdr t.header ~off:h_head next
  else Runtime.store_ptr rt ~site:s_unlink prev ~off:o_next next;
  if Runtime.branch rt ~site:s_unlink (Runtime.ptr_is_null rt ~site:s_unlink next)
  then Runtime.store_ptr rt ~site:s_hdr t.header ~off:h_tail prev
  else Runtime.store_ptr rt ~site:s_unlink next ~off:o_prev prev;
  Runtime.dealloc rt node;
  set_length t (length t - 1)

let remove_value t v0 =
  match find t v0 with
  | Some node ->
      remove_node t node;
      true
  | None -> false

(* Walk the list both ways and verify link symmetry and the recorded
   length. *)
let check_invariants t =
  let rt = t.rt in
  let count = ref 0 in
  let prev = ref Ptr.null in
  let node = ref (Runtime.load_ptr rt ~site:s_hdr t.header ~off:h_head) in
  while not (Runtime.ptr_is_null rt ~site:s_iter_null !node) do
    incr count;
    let back = Runtime.load_ptr rt ~site:s_unlink !node ~off:o_prev in
    if not (Runtime.ptr_eq rt ~site:s_unlink back !prev) then
      failwith "LL: prev link broken";
    prev := !node;
    node := Runtime.load_ptr rt ~site:s_iter_next !node ~off:o_next
  done;
  let tail = Runtime.load_ptr rt ~site:s_hdr t.header ~off:h_tail in
  if not (Runtime.ptr_eq rt ~site:s_unlink tail !prev) then
    failwith "LL: tail does not match last node";
  if !count <> length t then failwith "LL: length mismatch"
