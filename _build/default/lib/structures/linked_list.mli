(** The LL benchmark: a doubly linked list whose nodes carry two
    pointers and a 16-byte value (Table III).  Its harness builds
    10,000 nodes and iterates, accumulating the values — a pure
    pointer-chasing workload. *)

module Runtime = Nvml_runtime.Runtime
module Ptr = Nvml_core.Ptr

type t

val name : string
val description : string

val node_size : int
(** Bytes per node (two pointers + 16-byte value). *)

val create : Runtime.t -> Runtime.region -> t
val header : t -> Ptr.t
val attach : Runtime.t -> Ptr.t -> t
val length : t -> int

val append : t -> v0:int64 -> v1:int64 -> unit
val prepend : t -> v0:int64 -> v1:int64 -> unit

val iterate_sum : t -> int64
(** The benchmark kernel: walk the list accumulating both value words
    of every node. *)

val iter : t -> (v0:int64 -> v1:int64 -> unit) -> unit

val find : t -> int64 -> Ptr.t option
(** First node whose first value word matches. *)

val remove_node : t -> Ptr.t -> unit
val remove_value : t -> int64 -> bool

val check_invariants : t -> unit
(** Link symmetry both ways plus the recorded length. *)
