(* An extended-set structure: a CLRS-style B-tree map of minimum degree
   4 laid out in simulated memory — wide nodes with key/value/child
   arrays, the classic NVM-friendly index shape (fewer pointer hops per
   lookup than a binary tree, at the price of intra-node scans).

   Node layout (192 bytes):
     0    nkeys
     8    leaf flag
     16   keys[0..6]
     72   values[0..6]
     128  children[0..7]
   Header: root(0), size(8). *)

module Runtime = Nvml_runtime.Runtime
module Site = Nvml_runtime.Site
module Ptr = Nvml_core.Ptr

let name = "BTree"
let description = "B-tree map, minimum degree 4 (7 keys / 8 children per node)"

let degree = 4
let max_keys = (2 * degree) - 1 (* 7 *)
let min_keys = degree - 1 (* 3 *)

let o_nkeys = 0
let o_leaf = 8
let o_key i = 16 + (8 * i)
let o_val i = 72 + (8 * i)
let o_child i = 128 + (8 * i)
let node_size = 192

let h_root = 0
let h_size = 8
let header_size = 16

type t = { rt : Runtime.t; region : Runtime.region; header : Ptr.t }

let s_hdr = Site.make "btree.header"
let s_scan = Site.make "btree.scan"
let s_node = Site.make "btree.node"
let s_child = Site.make "btree.child"
let s_shift = Site.make "btree.shift"

(* --- node accessors ---------------------------------------------------- *)

let nkeys t n = Int64.to_int (Runtime.load_word t.rt ~site:s_node n ~off:o_nkeys)

let set_nkeys t n k =
  Runtime.store_word t.rt ~site:s_node n ~off:o_nkeys (Int64.of_int k)

let is_leaf t n =
  Int64.equal (Runtime.load_word t.rt ~site:s_node n ~off:o_leaf) 1L

let key_at t n i = Runtime.load_word t.rt ~site:s_scan n ~off:(o_key i)
let val_at t n i = Runtime.load_word t.rt ~site:s_node n ~off:(o_val i)
let child_at t n i = Runtime.load_ptr t.rt ~site:s_child n ~off:(o_child i)
let set_key t n i v = Runtime.store_word t.rt ~site:s_node n ~off:(o_key i) v
let set_val t n i v = Runtime.store_word t.rt ~site:s_node n ~off:(o_val i) v
let set_child t n i v = Runtime.store_ptr t.rt ~site:s_child n ~off:(o_child i) v

let new_node t ~leaf =
  let n = Runtime.alloc_in t.rt t.region node_size in
  set_nkeys t n 0;
  Runtime.store_word t.rt ~site:s_node n ~off:o_leaf (if leaf then 1L else 0L);
  for i = 0 to (2 * degree) - 1 do
    Runtime.store_ptr t.rt ~site:s_node n ~off:(o_child i) Ptr.null
  done;
  n

let create rt region =
  let header = Runtime.alloc_in rt region header_size in
  let t = { rt; region; header } in
  let root = new_node t ~leaf:true in
  Runtime.store_ptr rt ~site:s_hdr header ~off:h_root root;
  Runtime.store_word rt ~site:s_hdr header ~off:h_size 0L;
  t

let header t = t.header

let attach rt header =
  { rt; region = Runtime.region_of_ptr rt header; header }

let size t =
  Int64.to_int (Runtime.load_word t.rt ~site:s_hdr t.header ~off:h_size)

let set_size t n =
  Runtime.store_word t.rt ~site:s_hdr t.header ~off:h_size (Int64.of_int n)

let root t = Runtime.load_ptr t.rt ~site:s_hdr t.header ~off:h_root
let set_root t v = Runtime.store_ptr t.rt ~site:s_hdr t.header ~off:h_root v

(* First index i with keys[i] >= key (linear scan, as the flat node
   layout invites). *)
let lower_bound t n key =
  let count = nkeys t n in
  let rec scan i =
    if i >= count then i
    else begin
      let k = key_at t n i in
      Runtime.instr t.rt 1;
      if Runtime.branch t.rt ~site:s_scan (k < key) then scan (i + 1) else i
    end
  in
  scan 0

(* --- find ---------------------------------------------------------------- *)

let find t key =
  let rt = t.rt in
  let rec go n =
    let i = lower_bound t n key in
    if
      i < nkeys t n
      && Runtime.branch rt ~site:s_scan (Int64.equal (key_at t n i) key)
    then Some (val_at t n i)
    else if Runtime.branch rt ~site:s_scan (is_leaf t n) then None
    else go (child_at t n i)
  in
  go (root t)

(* --- insertion -------------------------------------------------------------- *)

(* Split the full child [i] of [parent]. *)
let split_child t parent i =
  let full = child_at t parent i in
  let right = new_node t ~leaf:(is_leaf t full) in
  set_nkeys t right min_keys;
  for j = 0 to min_keys - 1 do
    set_key t right j (key_at t full (j + degree));
    set_val t right j (val_at t full (j + degree))
  done;
  if not (is_leaf t full) then
    for j = 0 to degree - 1 do
      set_child t right j (child_at t full (j + degree))
    done;
  set_nkeys t full min_keys;
  (* Shift the parent's keys and children right. *)
  let pk = nkeys t parent in
  for j = pk - 1 downto i do
    set_key t parent (j + 1) (key_at t parent j);
    set_val t parent (j + 1) (val_at t parent j)
  done;
  for j = pk downto i + 1 do
    set_child t parent (j + 1) (child_at t parent j)
  done;
  Runtime.instr t.rt 2;
  set_key t parent i (key_at t full min_keys);
  set_val t parent i (val_at t full min_keys);
  set_child t parent (i + 1) right;
  set_nkeys t parent (pk + 1)

let rec insert_nonfull t n key value added =
  let rt = t.rt in
  let i = lower_bound t n key in
  if
    i < nkeys t n
    && Runtime.branch rt ~site:s_scan (Int64.equal (key_at t n i) key)
  then set_val t n i value
  else if Runtime.branch rt ~site:s_scan (is_leaf t n) then begin
    for j = nkeys t n - 1 downto i do
      set_key t n (j + 1) (key_at t n j);
      set_val t n (j + 1) (val_at t n j)
    done;
    set_key t n i key;
    set_val t n i value;
    set_nkeys t n (nkeys t n + 1);
    added := true
  end
  else begin
    let i =
      if Runtime.branch rt ~site:s_shift (nkeys t (child_at t n i) = max_keys)
      then begin
        split_child t n i;
        let k = key_at t n i in
        Runtime.instr rt 1;
        if Runtime.branch rt ~site:s_shift (Int64.equal k key) then begin
          (* The separator that moved up is exactly our key. *)
          set_val t n i value;
          -1
        end
        else if Runtime.branch rt ~site:s_shift (key > k) then i + 1
        else i
      end
      else i
    in
    if i >= 0 then insert_nonfull t (child_at t n i) key value added
  end

let insert t ~key ~value =
  let added = ref false in
  let r = root t in
  (if nkeys t r = max_keys then begin
     let new_root = new_node t ~leaf:false in
     set_child t new_root 0 r;
     set_root t new_root;
     split_child t new_root 0;
     insert_nonfull t new_root key value added
   end
   else insert_nonfull t r key value added);
  if !added then set_size t (size t + 1)

(* --- deletion ----------------------------------------------------------------- *)

let rec max_entry t n =
  if is_leaf t n then
    let k = nkeys t n - 1 in
    (key_at t n k, val_at t n k)
  else max_entry t (child_at t n (nkeys t n))

let rec min_entry t n =
  if is_leaf t n then (key_at t n 0, val_at t n 0)
  else min_entry t (child_at t n 0)

(* Merge child i, separator i and child i+1 into child i. *)
let merge_children t n i =
  let left = child_at t n i and right = child_at t n (i + 1) in
  let lk = nkeys t left in
  set_key t left lk (key_at t n i);
  set_val t left lk (val_at t n i);
  for j = 0 to nkeys t right - 1 do
    set_key t left (lk + 1 + j) (key_at t right j);
    set_val t left (lk + 1 + j) (val_at t right j)
  done;
  if not (is_leaf t left) then
    for j = 0 to nkeys t right do
      set_child t left (lk + 1 + j) (child_at t right j)
    done;
  set_nkeys t left (lk + 1 + nkeys t right);
  for j = i to nkeys t n - 2 do
    set_key t n j (key_at t n (j + 1));
    set_val t n j (val_at t n (j + 1))
  done;
  for j = i + 1 to nkeys t n - 1 do
    set_child t n j (child_at t n (j + 1))
  done;
  set_nkeys t n (nkeys t n - 1);
  Runtime.dealloc t.rt right

(* Ensure child [i] has at least [degree] keys; returns the (possibly
   shifted) child index to descend into. *)
let fill t n i =
  if i > 0 && nkeys t (child_at t n (i - 1)) > min_keys then begin
    (* Borrow from the left sibling. *)
    let c = child_at t n i and left = child_at t n (i - 1) in
    let ck = nkeys t c in
    for j = ck - 1 downto 0 do
      set_key t c (j + 1) (key_at t c j);
      set_val t c (j + 1) (val_at t c j)
    done;
    if not (is_leaf t c) then
      for j = ck downto 0 do
        set_child t c (j + 1) (child_at t c j)
      done;
    set_key t c 0 (key_at t n (i - 1));
    set_val t c 0 (val_at t n (i - 1));
    let lk = nkeys t left in
    if not (is_leaf t c) then set_child t c 0 (child_at t left lk);
    set_key t n (i - 1) (key_at t left (lk - 1));
    set_val t n (i - 1) (val_at t left (lk - 1));
    set_nkeys t left (lk - 1);
    set_nkeys t c (ck + 1);
    i
  end
  else if i < nkeys t n && nkeys t (child_at t n (i + 1)) > min_keys then begin
    (* Borrow from the right sibling. *)
    let c = child_at t n i and right = child_at t n (i + 1) in
    let ck = nkeys t c in
    set_key t c ck (key_at t n i);
    set_val t c ck (val_at t n i);
    if not (is_leaf t c) then set_child t c (ck + 1) (child_at t right 0);
    set_key t n i (key_at t right 0);
    set_val t n i (val_at t right 0);
    let rk = nkeys t right in
    for j = 0 to rk - 2 do
      set_key t right j (key_at t right (j + 1));
      set_val t right j (val_at t right (j + 1))
    done;
    if not (is_leaf t right) then
      for j = 0 to rk - 1 do
        set_child t right j (child_at t right (j + 1))
      done;
    set_nkeys t right (rk - 1);
    set_nkeys t c (ck + 1);
    i
  end
  else if i < nkeys t n then begin
    merge_children t n i;
    i
  end
  else begin
    merge_children t n (i - 1);
    i - 1
  end

let rec remove_from t n key : bool =
  let rt = t.rt in
  let i = lower_bound t n key in
  if
    i < nkeys t n
    && Runtime.branch rt ~site:s_scan (Int64.equal (key_at t n i) key)
  then
    if Runtime.branch rt ~site:s_scan (is_leaf t n) then begin
      for j = i to nkeys t n - 2 do
        set_key t n j (key_at t n (j + 1));
        set_val t n j (val_at t n (j + 1))
      done;
      set_nkeys t n (nkeys t n - 1);
      true
    end
    else if nkeys t (child_at t n i) > min_keys then begin
      let pk, pv = max_entry t (child_at t n i) in
      set_key t n i pk;
      set_val t n i pv;
      remove_from t (child_at t n i) pk
    end
    else if nkeys t (child_at t n (i + 1)) > min_keys then begin
      let sk, sv = min_entry t (child_at t n (i + 1)) in
      set_key t n i sk;
      set_val t n i sv;
      remove_from t (child_at t n (i + 1)) sk
    end
    else begin
      merge_children t n i;
      remove_from t (child_at t n i) key
    end
  else if Runtime.branch rt ~site:s_scan (is_leaf t n) then false
  else begin
    let i =
      if nkeys t (child_at t n i) = min_keys then fill t n i else i
    in
    remove_from t (child_at t n (min i (nkeys t n))) key
  end

let remove t key =
  let removed = remove_from t (root t) key in
  if removed then begin
    set_size t (size t - 1);
    let r = root t in
    if nkeys t r = 0 && not (is_leaf t r) then begin
      set_root t (child_at t r 0);
      Runtime.dealloc t.rt r
    end
  end;
  removed

let iter t f =
  let rec go n =
    let count = nkeys t n in
    if is_leaf t n then
      for i = 0 to count - 1 do
        f ~key:(key_at t n i) ~value:(val_at t n i)
      done
    else begin
      for i = 0 to count - 1 do
        go (child_at t n i);
        f ~key:(key_at t n i) ~value:(val_at t n i)
      done;
      go (child_at t n count)
    end
  in
  go (root t)

(* Occupancy bounds, key ordering, uniform leaf depth and size. *)
let check_invariants t =
  let count = ref 0 in
  let leaf_depth = ref None in
  let rec check n ~is_root ~depth lo hi =
    let k = nkeys t n in
    if k > max_keys then failwith "BTree: node overfull";
    if (not is_root) && k < min_keys then failwith "BTree: node underfull";
    count := !count + k;
    for i = 0 to k - 1 do
      let key = key_at t n i in
      (match lo with
      | Some l when key <= l -> failwith "BTree: order violated (low)"
      | _ -> ());
      (match hi with
      | Some h when key >= h -> failwith "BTree: order violated (high)"
      | _ -> ());
      if i > 0 && key_at t n (i - 1) >= key then
        failwith "BTree: keys out of order"
    done;
    if is_leaf t n then begin
      match !leaf_depth with
      | None -> leaf_depth := Some depth
      | Some d -> if d <> depth then failwith "BTree: uneven leaf depth"
    end
    else
      for i = 0 to k do
        let lo' = if i = 0 then lo else Some (key_at t n (i - 1)) in
        let hi' = if i = k then hi else Some (key_at t n i) in
        check (child_at t n i) ~is_root:false ~depth:(depth + 1) lo' hi'
      done
  in
  check (root t) ~is_root:true ~depth:0 None None;
  if !count <> size t then failwith "BTree: size mismatch"
