(** Persistent memory object pool (PMOP) manager — the OS side of the
    design: pool creation, mapping into the NVM half of the address
    space, detaching, the POT/VAT kernel tables behind the hardware
    lookaside buffers, and the persistent allocator.

    Pools are long-lived: their physical frames and registry entries
    survive a simulated crash; their mappings do not.  Re-opening after
    a restart maps at a {e different} base, exercising relocatability. *)

module Ptr = Nvml_core.Ptr
module Xlate = Nvml_core.Xlate

type t

exception Unknown_pool of string
exception Already_open of string

val create : Nvml_simmem.Mem.t -> t
val mem : t -> Nvml_simmem.Mem.t

val create_pool : t -> name:string -> size:int -> int
(** Create, map and initialize a pool (allocator metadata lives in the
    pool's own memory); returns its system-wide unique ID.
    @raise Invalid_argument on duplicate names or sizes over 4 GiB. *)

val open_pool : t -> string -> int64
(** Map an existing pool at a fresh, restart-dependent base; returns
    the base.  @raise Already_open if it is currently mapped. *)

val detach_pool : t -> int -> unit

val crash : t -> unit
(** Machine crash: volatile memory and all mappings vanish; pool frames
    and the registry survive. *)

val restarts : t -> int
val pool_base : t -> int -> int64 option
val pool_id_of_name : t -> string -> int
val pool_size : t -> int -> int
val pool_ids : t -> int list

val pool_of_va : t -> int64 -> (int * int64) option
(** VAT lookup: the (pool, base) whose mapping covers an address. *)

val provider : t -> Xlate.provider
(** The POT/VAT view handed to {!Nvml_core.Xlate}. *)

val pmalloc : t -> pool:int -> int -> Ptr.t
(** Allocate inside a pool; returns a {e relative-format} pointer. *)

val pfree : t -> Ptr.t -> unit
val get_root : t -> pool:int -> int64
val set_root : t -> pool:int -> int64 -> unit
val allocated_bytes : t -> pool:int -> int64
val check_pool_invariants : t -> pool:int -> int64
