(** The volatile (DRAM) allocator — the ordinary malloc of the
    simulated process.  Shares the free-list implementation with the
    persistent allocator; contents are lost on crash. *)

type t

val create : Nvml_simmem.Mem.t -> capacity:int -> t
val base : t -> int64

val malloc : t -> int -> Nvml_core.Ptr.t
(** Returns an ordinary DRAM virtual address. *)

val free : t -> Nvml_core.Ptr.t -> unit
val allocated_bytes : t -> int64
val check_invariants : t -> int64
