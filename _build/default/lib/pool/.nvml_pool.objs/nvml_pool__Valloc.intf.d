lib/pool/valloc.mli: Nvml_core Nvml_simmem
