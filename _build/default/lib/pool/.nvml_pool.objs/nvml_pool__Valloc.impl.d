lib/pool/valloc.ml: Freelist Int64 Nvml_core Nvml_simmem
