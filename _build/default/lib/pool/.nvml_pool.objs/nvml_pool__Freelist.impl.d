lib/pool/freelist.ml: Fmt Int64
