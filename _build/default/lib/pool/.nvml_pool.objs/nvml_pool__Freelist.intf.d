lib/pool/freelist.mli:
