lib/pool/pmop.ml: Array Fmt Freelist Hashtbl Int64 List Nvml_core Nvml_simmem
