lib/pool/pmop.mli: Nvml_core Nvml_simmem
